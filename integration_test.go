package tkcm_test

import (
	"math"
	"testing"

	"tkcm"
	"tkcm/internal/dataset"
	"tkcm/internal/stats"
	"tkcm/internal/timeseries"
)

// TestEngineOnGeneratedDatasets streams each synthetic dataset through the
// public engine with realistic failures (a block outage in one stream plus
// scattered dropouts in another, overlapping in time) and checks that the
// recovery error stays within a sane multiple of the measurement noise and
// that the retained window never holds a missing value.
func TestEngineOnGeneratedDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration streams are slow")
	}
	cases := []struct {
		name    string
		frame   *timeseries.Frame
		window  int
		pattern int
		// maxRMSE is a loose sanity ceiling, not a tuned expectation.
		maxRMSE float64
	}{
		{
			name:    "SBR-1d",
			frame:   dataset.SBR1d(dataset.SBRConfig{Stations: 6, Ticks: 16 * 288, Seed: 5, NoiseSD: 0.25}),
			window:  12 * 288,
			pattern: 48,
			maxRMSE: 3.0,
		},
		{
			name:    "Flights",
			frame:   dataset.Flights(dataset.FlightsConfig{Airports: 6, Ticks: 7 * 1440, Seed: 5}),
			window:  5 * 1440,
			pattern: 48,
			maxRMSE: 12,
		},
		{
			name:    "Chlorine",
			frame:   dataset.Chlorine(dataset.ChlorineConfig{Junctions: 8, Ticks: 8 * 288, Seed: 5, MaxDelayTicks: 144}),
			window:  6 * 288,
			pattern: 48,
			maxRMSE: 0.05,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			names := tc.frame.Names()
			cfg := tkcm.DefaultConfig()
			cfg.WindowLength = tc.window
			cfg.PatternLength = tc.pattern
			cfg.K = 3
			cfg.D = 2
			eng, err := tkcm.NewEngine(cfg, names, nil)
			if err != nil {
				t.Fatal(err)
			}

			n := tc.frame.Len()
			blockFrom, blockTo := n-n/8, n-n/16 // outage in stream 0
			var truth0, rec0 []float64
			var truth1, rec1 []float64
			for i := 0; i < n; i++ {
				row := tc.frame.Row(i)
				t0, t1 := row[0], row[1]
				miss0 := i >= blockFrom && i < blockTo
				miss1 := i >= blockFrom && i%11 == 0 // scattered dropouts, overlapping
				if miss0 {
					row[0] = tkcm.Missing
				}
				if miss1 {
					row[1] = tkcm.Missing
				}
				out, _, err := eng.Tick(row)
				if err != nil {
					t.Fatal(err)
				}
				if miss0 {
					truth0 = append(truth0, t0)
					rec0 = append(rec0, out[0])
				}
				if miss1 {
					truth1 = append(truth1, t1)
					rec1 = append(rec1, out[1])
				}
				for j := 0; j < eng.Window().Width(); j++ {
					if math.IsNaN(out[j]) {
						t.Fatalf("tick %d: stream %d left missing", i, j)
					}
				}
			}
			if got := stats.RMSE(truth0, rec0); math.IsNaN(got) || got > tc.maxRMSE {
				t.Fatalf("block recovery RMSE = %v, ceiling %v", got, tc.maxRMSE)
			}
			if got := stats.RMSE(truth1, rec1); math.IsNaN(got) || got > tc.maxRMSE {
				t.Fatalf("scattered recovery RMSE = %v, ceiling %v", got, tc.maxRMSE)
			}
			if eng.Stats.Imputations == 0 {
				t.Fatal("no TKCM imputations recorded")
			}
		})
	}
}
