// Package tkcm is a streaming missing-value imputation library implementing
// Top-k Case Matching (Wellenzohn, Böhlen, Dignös, Gamper & Mitterer:
// "Continuous Imputation of Missing Values in Streams of Pattern-Determining
// Time Series", EDBT 2017), together with the baselines the paper evaluates
// against (SPIRIT, MUSCLES, centroid decomposition, and classic single-series
// imputers).
//
// # Quickstart
//
//	cfg := tkcm.DefaultConfig()
//	cfg.WindowLength = 4032 // two weeks at 5-minute sampling
//
//	eng, err := tkcm.NewEngine(cfg, []string{"s", "r1", "r2", "r3"}, nil)
//	if err != nil { ... }
//	for rows.Next() {
//		completed, results, err := eng.Tick(rows.Values()) // NaN = missing
//		...
//	}
//
// The engine keeps a ring-buffered window of the last L ticks per stream and
// imputes every missing value the moment it arrives, so the retained history
// is always complete (the paper's continuous-imputation setting). One-shot
// imputation over slices is available via Impute; bulk ingest via
// Engine.TickBatch.
//
// # Pattern extraction strategies
//
// Computing the dissimilarity profile (pattern extraction) dominates TKCM's
// runtime — the paper measures it at ~92% (Sec. 7.4) and names speeding it
// up as the main future-work direction (Sec. 8). Config.Profiler selects
// the implementation:
//
//   - ProfilerNaive — the paper's Def. 2 loop, O(d·l·L) per profile, all
//     norms.
//   - ProfilerFFT — FFT cross-correlation, O(d·L·log L), L2 only.
//   - ProfilerIncremental — engine-maintained aggregates, demand-driven:
//     recording a tick is O(1) per stream, and a stream's aggregates are
//     caught up only when it is consulted as a reference, so on wide stream
//     sets untouched streams cost nothing (Config.EagerProfiler restores
//     per-tick maintenance of every stream). L2 only.
//   - ProfilerAuto (default) — incremental in the streaming engine, naive
//     for one-shot slice imputations.
//
// All implementations produce identical imputations up to floating-point
// rounding; equivalence is enforced by tests.
//
// # Engine hot path
//
// Within one tick, profile contributions and anchor selections are shared:
// missing streams with identical reference sets run pattern extraction and
// the selection DP once and only aggregate their own anchor values.
// Config.Workers > 1 fans a tick's extraction + selection jobs out across a
// persistent worker pool (call Engine.Close when discarding such an
// engine). Engine.Tick returns engine-owned buffers (valid until the next
// tick) and performs zero allocations when nothing is missing;
// Config.SkipDiagnostics additionally skips per-imputation Result
// diagnostics for allocation-free throughput ingest.
//
// TKCM's key property: imputation quality does not depend on linear
// correlation between streams. By matching a two-dimensional pattern of the
// last l measurements across d reference streams, it recovers values
// correctly even when references are phase shifted (Pearson ≈ 0), where
// regression- and decomposition-based methods degrade.
//
// # Persistence and serving
//
// Engine.Snapshot writes a versioned binary image of the engine (config,
// reference sets, retained windows, counters) and RestoreEngine rebuilds a
// continuing engine from it, so long-running streams survive process
// restarts. cmd/tkcm-serve wraps engines in a sharded multi-tenant HTTP
// service with NDJSON streaming ingest and periodic checkpoints built on
// exactly these two calls (see the README's Architecture section).
package tkcm

import (
	"io"

	"tkcm/internal/core"
	"tkcm/internal/timeseries"
)

// Missing is the missing-value marker (NaN). Feed it to Engine.Tick for
// absent measurements.
var Missing = timeseries.Missing

// IsMissing reports whether v denotes a missing measurement.
func IsMissing(v float64) bool { return timeseries.IsMissing(v) }

// Config holds TKCM's parameters (paper Table 1): K anchor points,
// PatternLength l, D reference series, WindowLength L, plus the dissimilarity
// norm and anchor-selection strategy.
type Config = core.Config

// Norm selects the pattern dissimilarity norm.
type Norm = core.Norm

// Dissimilarity norms. L2 is the paper's Def. 2; L1 and LInf are the Sec. 8
// future-work alternatives.
const (
	L2   = core.L2
	L1   = core.L1
	LInf = core.LInf
)

// ProfilerKind selects the pattern-extraction strategy (see the package
// documentation); set it via Config.Profiler.
type ProfilerKind = core.ProfilerKind

// Pattern-extraction strategies. ProfilerAuto picks the incremental
// profiler in the streaming engine and the naive Def. 2 loop for one-shot
// slice imputations; non-L2 norms always degrade to naive.
const (
	ProfilerAuto        = core.ProfilerAuto
	ProfilerNaive       = core.ProfilerNaive
	ProfilerFFT         = core.ProfilerFFT
	ProfilerIncremental = core.ProfilerIncremental
)

// ParseProfilerKind maps a flag value ("auto", "naive", "fft",
// "incremental") to its ProfilerKind.
func ParseProfilerKind(s string) (ProfilerKind, error) { return core.ParseProfilerKind(s) }

// Selection selects the anchor-selection strategy.
type Selection = core.Selection

// Anchor selection strategies. SelectDP is the paper's dynamic program;
// the others are ablations.
const (
	SelectDP          = core.SelectDP
	SelectGreedy      = core.SelectGreedy
	SelectOverlapping = core.SelectOverlapping
)

// Result describes one imputation: the value, the chosen anchor points, and
// the pattern-determining diagnostics (ε of Def. 5).
type Result = core.Result

// ReferenceSet is the ordered candidate reference series of one stream.
type ReferenceSet = core.ReferenceSet

// Columns is a stream-major batch of ticks for Engine.TickColumns:
// Columns[i][t] is stream i's measurement at the t-th tick of the batch
// (Missing/NaN = absent). All columns must have equal length. The layout is
// the transpose of TickBatch's row-major rows and is what the columnar
// ingest hot path consumes without further shuffling.
type Columns = core.Columns

// Engine performs continuous imputation over a set of co-evolving streams.
// Feed it one row per tick (Tick) or many at once (TickBatch, or
// TickColumns for the allocation-free columnar path); select the extraction
// strategy with Config.Profiler and intra-tick parallelism with
// Config.Workers.
type Engine = core.Engine

// EngineStats counts engine activity.
type EngineStats = core.EngineStats

// DefaultConfig returns the paper's calibrated defaults (Sec. 7.2):
// d = 3, k = 5, l = 72, L = 105120 (one year at 5-minute sampling).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewEngine creates a continuous-imputation engine over the named streams.
// refs maps a stream name to its ordered candidate reference series (best
// first); streams without an entry get a correlation-ranked reference set
// automatically on their first missing value.
func NewEngine(cfg Config, names []string, refs map[string]ReferenceSet) (*Engine, error) {
	return core.NewEngine(cfg, names, refs)
}

// RestoreEngine reconstructs an engine from an Engine.Snapshot image. The
// restored engine resumes exactly where the snapshotted one left off;
// subsequent imputations match an uninterrupted engine within ~1e-9.
func RestoreEngine(r io.Reader) (*Engine, error) {
	return core.RestoreEngine(r)
}

// Impute recovers the missing last value of series s. s and every refs[i]
// hold the retained window (oldest first, equal lengths); the last element
// of s is the missing value being recovered and is ignored. The reference
// windows must be complete.
func Impute(cfg Config, s []float64, refs [][]float64) (*Result, error) {
	return core.Impute(cfg, s, refs)
}

// RankReferences orders the candidate streams for target by descending
// absolute Pearson correlation with it over the supplied aligned histories —
// a data-driven substitute for the paper's expert-provided rankings.
func RankReferences(target string, histories map[string][]float64) ReferenceSet {
	return core.RankCandidates(target, histories)
}
