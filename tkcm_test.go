package tkcm_test

import (
	"fmt"
	"math"
	"testing"

	"tkcm"
)

// TestPublicImputeRunningExample exercises the public façade on the paper's
// Table 2 running example.
func TestPublicImputeRunningExample(t *testing.T) {
	s := []float64{22.8, 21.4, 21.8, 23.1, 23.5, 22.8, 21.2, 21.9, 23.5, 22.8, 21.2, tkcm.Missing}
	r1 := []float64{16.5, 17.2, 17.8, 16.6, 15.8, 16.2, 17.4, 17.7, 15.3, 16.3, 17.1, 17.5}
	r2 := []float64{20.3, 19.8, 18.6, 18.8, 20.0, 20.5, 19.8, 18.2, 20.1, 20.2, 19.9, 18.2}

	cfg := tkcm.Config{K: 2, PatternLength: 3, D: 2, WindowLength: 12}
	res, err := tkcm.Impute(cfg, s, [][]float64{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-21.85) > 1e-9 {
		t.Fatalf("imputed %v, want 21.85 (paper Example 4)", res.Value)
	}
}

func TestMissingHelpers(t *testing.T) {
	if !tkcm.IsMissing(tkcm.Missing) {
		t.Fatal("Missing must be missing")
	}
	if tkcm.IsMissing(1.5) {
		t.Fatal("1.5 is not missing")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := tkcm.DefaultConfig()
	if cfg.K != 5 || cfg.PatternLength != 72 || cfg.D != 3 || cfg.WindowLength != 105120 {
		t.Fatalf("defaults %+v do not match Sec. 7.2", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRankReferences(t *testing.T) {
	n := 100
	tgt := make([]float64, n)
	good := make([]float64, n)
	bad := make([]float64, n)
	for i := 0; i < n; i++ {
		tgt[i] = math.Sin(float64(i) / 5)
		good[i] = 3 * tgt[i]
		bad[i] = float64(i % 7)
	}
	rs := tkcm.RankReferences("t", map[string][]float64{"t": tgt, "good": good, "bad": bad})
	if len(rs.Candidates) != 2 || rs.Candidates[0] != "good" {
		t.Fatalf("ranking = %v", rs.Candidates)
	}
}

func TestEngineEndToEnd(t *testing.T) {
	const period = 96
	cfg := tkcm.Config{K: 2, PatternLength: 12, D: 1, WindowLength: 3 * period}
	eng, err := tkcm.NewEngine(cfg, []string{"s", "r"}, map[string]tkcm.ReferenceSet{
		"s": {Stream: "s", Candidates: []string{"r"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := 0; i < 5*period; i++ {
		ph := 2 * math.Pi * float64(i) / period
		truth := math.Sin(ph)
		sv := truth
		missing := i > 4*period && i%5 == 0
		if missing {
			sv = tkcm.Missing
		}
		out, _, err := eng.Tick([]float64{sv, math.Cos(ph)})
		if err != nil {
			t.Fatal(err)
		}
		if missing {
			if e := math.Abs(out[0] - truth); e > worst {
				worst = e
			}
		}
	}
	if worst > 1e-9 {
		t.Fatalf("worst error %v on noiseless shifted sines", worst)
	}
}

// ExampleImpute recovers the missing value of the paper's running example
// (Table 2).
func ExampleImpute() {
	s := []float64{22.8, 21.4, 21.8, 23.1, 23.5, 22.8, 21.2, 21.9, 23.5, 22.8, 21.2, tkcm.Missing}
	r1 := []float64{16.5, 17.2, 17.8, 16.6, 15.8, 16.2, 17.4, 17.7, 15.3, 16.3, 17.1, 17.5}
	r2 := []float64{20.3, 19.8, 18.6, 18.8, 20.0, 20.5, 19.8, 18.2, 20.1, 20.2, 19.9, 18.2}

	cfg := tkcm.Config{K: 2, PatternLength: 3, D: 2, WindowLength: 12}
	res, err := tkcm.Impute(cfg, s, [][]float64{r1, r2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("imputed %.2f °C from anchors %v\n", res.Value, res.Anchors)
	// Output: imputed 21.85 °C from anchors [2 7]
}

// ExampleNewEngine streams two phase-shifted sines and imputes a dropped
// measurement on arrival.
func ExampleNewEngine() {
	cfg := tkcm.Config{K: 2, PatternLength: 8, D: 1, WindowLength: 128}
	eng, _ := tkcm.NewEngine(cfg, []string{"s", "r"}, map[string]tkcm.ReferenceSet{
		"s": {Stream: "s", Candidates: []string{"r"}},
	})
	const period = 32
	var lastImputed float64
	for i := 0; i < 4*period; i++ {
		ph := 2 * math.Pi * float64(i) / period
		sv := math.Sin(ph)
		if i == 4*period-1 {
			sv = tkcm.Missing // the newest measurement is lost
		}
		out, _, _ := eng.Tick([]float64{sv, math.Cos(ph)})
		lastImputed = out[0]
	}
	truth := math.Sin(2 * math.Pi * float64(4*period-1) / period)
	fmt.Printf("error below 1e-9: %v\n", math.Abs(lastImputed-truth) < 1e-9)
	// Output: error below 1e-9: true
}
