// Benchmarks reproducing every table and figure of the paper's evaluation
// (Sec. 7). Each figure bench runs the corresponding experiment from
// internal/experiments at the active scale ("small" by default; set
// TKCM_FULL=1 for the paper-scale dimensions) and reports the headline
// numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's rows. cmd/tkcm-bench prints the same experiments
// as full tables; EXPERIMENTS.md records paper-vs-measured.
package tkcm_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"tkcm"
	"tkcm/internal/benchcases"
	"tkcm/internal/core"
	"tkcm/internal/experiments"
)

// benchScale is resolved once; all figure benches share it.
var benchScale = experiments.ActiveScale()

// BenchmarkFig10Calibration — Fig. 10: RMSE as a function of d and k on
// SBR-1d, Flights, and Chlorine.
func BenchmarkFig10Calibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10Calibration(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.RMSE, fmt.Sprintf("rmse-%s-%s%d", r.Dataset, r.Param, r.Value))
			}
		}
	}
}

// BenchmarkFig11PatternLength — Fig. 11: RMSE as a function of the pattern
// length l on all four datasets.
func BenchmarkFig11PatternLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11PatternLength(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.RMSE, fmt.Sprintf("rmse-%s-l%d", r.Dataset, r.L))
			}
		}
	}
}

// BenchmarkFig12Recovery — Fig. 12: qualitative recovery with l = 1 vs
// l = 72; the reported metrics quantify the l = 1 oscillation.
func BenchmarkFig12Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig12Recovery(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				b.ReportMetric(s.RMSEShort, fmt.Sprintf("rmse-%s-l1", s.Dataset))
				b.ReportMetric(s.RMSELong, fmt.Sprintf("rmse-%s-l72", s.Dataset))
				b.ReportMetric(s.OscShort, fmt.Sprintf("osc-%s-l1", s.Dataset))
				b.ReportMetric(s.OscLong, fmt.Sprintf("osc-%s-l72", s.Dataset))
			}
		}
	}
}

// BenchmarkFig13Epsilon — Fig. 13: average anchor spread ε vs l on Chlorine.
func BenchmarkFig13Epsilon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13Epsilon(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.PearsonTargetRef, "pearson-s-r1")
			for _, r := range res.Rows {
				b.ReportMetric(r.AvgEpsilon, fmt.Sprintf("eps-l%d", r.L))
			}
		}
	}
}

// BenchmarkFig14BlockLength — Fig. 14: RMSE vs missing-block length.
func BenchmarkFig14BlockLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14BlockLength(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.RMSE, fmt.Sprintf("rmse-%s-%s", r.Dataset, r.Label))
			}
		}
	}
}

// BenchmarkFig15Comparison — Fig. 15: one block per dataset recovered by
// TKCM, SPIRIT, MUSCLES, and CD.
func BenchmarkFig15Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig15Comparison(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				for _, r := range s.Rows {
					b.ReportMetric(r.RMSE, fmt.Sprintf("rmse-%s-%s", s.Dataset, r.Algorithm))
				}
			}
		}
	}
}

// BenchmarkFig16Summary — Fig. 16: the headline RMSE comparison, averaged
// over 4 target series per dataset.
func BenchmarkFig16Summary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig16Summary(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.RMSE, fmt.Sprintf("rmse-%s-%s", r.Dataset, r.Algorithm))
			}
		}
	}
}

// BenchmarkFig17Runtime — Fig. 17: per-imputation runtime while varying
// l, d, k, and L one at a time (expected: linear in each, Lemma 6.2).
func BenchmarkFig17Runtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig17Runtime(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.PerImputation.Microseconds()),
					fmt.Sprintf("us-%s%d", r.Param, r.Value))
			}
		}
	}
}

// BenchmarkPerfBreakdown — Sec. 7.4: share of runtime in pattern extraction
// vs pattern selection (paper: extraction ≈ 92% at k = 5).
func BenchmarkPerfBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PerfBreakdown(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(100*r.ExtractionFraction, fmt.Sprintf("extract-pct-k%d", r.K))
				b.ReportMetric(100*r.SelectionFraction, fmt.Sprintf("select-pct-k%d", r.K))
			}
		}
	}
}

// BenchmarkAblationGreedyVsDP — DESIGN.md §4: DP vs greedy vs overlapping
// anchor selection on SBR-1d.
func BenchmarkAblationGreedyVsDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSelection(benchScale, experiments.DSSBR1d)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.RMSE, "rmse-"+r.Variant)
				b.ReportMetric(r.SumDissimilarity, "sumdelta-"+r.Variant)
			}
		}
	}
}

// BenchmarkAblationNorms — DESIGN.md §4: L2 vs L1 vs L∞ dissimilarity.
func BenchmarkAblationNorms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationNorms(benchScale, experiments.DSSBR1d)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.RMSE, "rmse-"+r.Variant)
			}
		}
	}
}

// BenchmarkAblationWeighting — DESIGN.md §4: plain vs similarity-weighted
// anchor mean.
func BenchmarkAblationWeighting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationWeighting(benchScale, experiments.DSSBR1d)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.RMSE, "rmse-"+r.Variant)
			}
		}
	}
}

// BenchmarkAlignmentExperiment — Sec. 8 future work: DTW-aligned references
// with l = 1 vs shifted references with l > 1 on SBR-1d.
func BenchmarkAlignmentExperiment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AlignmentExperiment(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				// Metric units must not contain whitespace.
				b.ReportMetric(r.RMSE, "rmse-"+strings.ReplaceAll(r.Variant, " ", "-"))
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the core primitive (complexity Lemmas 6.1–6.3).
// ---------------------------------------------------------------------------

// benchWindows builds one SBR-1d imputation problem at the bench scale.
func benchWindows(b *testing.B, cfg core.Config) (s []float64, refs [][]float64) {
	b.Helper()
	sp := benchScale.Spec(experiments.DSSBR1d)
	frame := sp.Generate()
	t := sp.BlockStart
	lo := t - cfg.WindowLength + 1
	if lo < 0 {
		b.Fatalf("window %d too long for block start %d", cfg.WindowLength, t)
	}
	s = append([]float64(nil), frame.ByName(sp.Target).Values[lo:t+1]...)
	s[len(s)-1] = tkcm.Missing
	names := frame.Names()
	for _, name := range names {
		if name == sp.Target || len(refs) == cfg.D {
			continue
		}
		refs = append(refs, frame.ByName(name).Values[lo:t+1])
	}
	return s, refs
}

// BenchmarkImputeSingle times one TKCM imputation at the scale defaults —
// the paper reports ≈ 2 s per imputation at full scale on 2010 hardware.
func BenchmarkImputeSingle(b *testing.B) {
	cfg := benchScale.Spec(experiments.DSSBR1d).Cfg
	s, refs := benchWindows(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Impute(cfg, s, refs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImputeGreedy times the greedy-selection ablation.
func BenchmarkImputeGreedy(b *testing.B) {
	cfg := benchScale.Spec(experiments.DSSBR1d).Cfg
	cfg.Selection = core.SelectGreedy
	s, refs := benchWindows(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Impute(cfg, s, refs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImputeL1 times the L1-norm ablation.
func BenchmarkImputeL1(b *testing.B) {
	cfg := benchScale.Spec(experiments.DSSBR1d).Cfg
	cfg.Norm = core.L1
	s, refs := benchWindows(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Impute(cfg, s, refs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImputeFastExtraction times the FFT-based pattern extraction
// (Sec. 8 future work) against BenchmarkImputeSingle's naive path; the gap
// widens with l (O(d·L·log L) vs O(d·l·L)).
func BenchmarkImputeFastExtraction(b *testing.B) {
	cfg := benchScale.Spec(experiments.DSSBR1d).Cfg
	cfg.FastExtraction = true
	s, refs := benchWindows(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Impute(cfg, s, refs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImputeLongPatternNaive and ...FFT contrast the two extraction
// paths at a long pattern (l = 144), where the FFT advantage is largest.
func BenchmarkImputeLongPatternNaive(b *testing.B) {
	cfg := benchScale.Spec(experiments.DSSBR1d).Cfg
	cfg.PatternLength = 144
	s, refs := benchWindows(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Impute(cfg, s, refs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImputeLongPatternFFT(b *testing.B) {
	cfg := benchScale.Spec(experiments.DSSBR1d).Cfg
	cfg.PatternLength = 144
	cfg.FastExtraction = true
	s, refs := benchWindows(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Impute(cfg, s, refs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTick times the O(1) streaming advance plus imputation of
// one missing value through the public engine (default configuration, i.e.
// the incremental profiler).
func BenchmarkEngineTick(b *testing.B) {
	benchEngineTick(b, tkcm.Config{K: 5, PatternLength: 72, D: 3, WindowLength: 4032})
}

// benchEngineTick streams warm SBR-1d data with the target missing every
// bench iteration.
func benchEngineTick(b *testing.B, cfg tkcm.Config) {
	b.Helper()
	eng, err := tkcm.NewEngine(cfg, []string{"s", "r1", "r2", "r3"}, map[string]tkcm.ReferenceSet{
		"s": {Stream: "s", Candidates: []string{"r1", "r2", "r3"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	sp := benchScale.Spec(experiments.DSSBR1d)
	frame := sp.Generate()
	rows := make([][]float64, frame.Len())
	for t := range rows {
		rows[t] = []float64{
			frame.Series[0].Values[t],
			frame.Series[1].Values[t],
			frame.Series[2].Values[t],
			frame.Series[3].Values[t],
		}
	}
	if cfg.WindowLength+512 > len(rows) {
		// The window outgrows the generated dataset (e.g. the L = 8760
		// profiler benches at the small scale): extend with deterministic
		// daily-periodic rows so every configuration warms fully.
		n := cfg.WindowLength + 2048
		rows = make([][]float64, n)
		state := uint64(17)
		noise := func() float64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return float64(state%1000) / 2000
		}
		for t := range rows {
			ph := 2 * math.Pi * float64(t) / 288
			rows[t] = []float64{
				math.Sin(ph) + noise(),
				math.Sin(ph-1.0) + noise(),
				math.Cos(ph+0.4) + noise(),
				math.Sin(2*ph) + noise(),
			}
		}
	}
	// Warm the window completely.
	for t := 0; t < cfg.WindowLength; t++ {
		if _, _, err := eng.Tick(rows[t]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := cfg.WindowLength + i%(len(rows)-cfg.WindowLength)
		row := []float64{tkcm.Missing, rows[t][1], rows[t][2], rows[t][3]}
		if _, _, err := eng.Tick(row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTickProfilers contrasts the extraction strategies on the
// streaming hot path at the paper's default pattern length (l = 72) and a
// year-of-hours window (L = 8760): the per-tick cost drops from the naive
// O(d·l·L) recompute to incremental maintenance, and the demand-driven
// default ("incremental") defers even that until a stream is consulted,
// unlike the eager PR 1-style variant.
func BenchmarkEngineTickProfilers(b *testing.B) {
	for _, kind := range []tkcm.ProfilerKind{tkcm.ProfilerNaive, tkcm.ProfilerFFT, tkcm.ProfilerIncremental} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := tkcm.Config{K: 5, PatternLength: 72, D: 3, WindowLength: 8760, Profiler: kind}
			benchEngineTick(b, cfg)
		})
	}
	b.Run("incremental-eager", func(b *testing.B) {
		cfg := tkcm.Config{K: 5, PatternLength: 72, D: 3, WindowLength: 8760,
			Profiler: tkcm.ProfilerIncremental, EagerProfiler: true}
		benchEngineTick(b, cfg)
	})
}

// BenchmarkEngineWide streams the wide-engine scenario (W = 256 streams,
// 5% missing per tick, shared reference pool — the same generator behind
// `tkcm-bench -experiment wide`) through the public engine at the
// demand-driven default in throughput mode. The full eager-vs-lazy sweep,
// including W = 1024, runs via the tkcm-bench experiment.
func BenchmarkEngineWide(b *testing.B) {
	const width = 256
	sc, err := experiments.NewWideScenario(width, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	cfg := tkcm.Config{K: 5, PatternLength: 72, D: 3, WindowLength: 4032, SkipDiagnostics: true}
	eng, err := tkcm.NewEngine(cfg, sc.Names(), sc.Refs())
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	row := make([]float64, width)
	for t := 0; t < cfg.WindowLength; t++ {
		sc.FillRow(t, row)
		if _, _, err := eng.Tick(row); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.FillRow(cfg.WindowLength+i, row)
		sc.MarkMissing(i, row)
		if _, _, err := eng.Tick(row); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngineTickParallel streams eight co-evolving streams and drops four
// of them on every bench iteration, so one Tick carries four imputations
// for the worker pool to fan out. It pins the naive profiler: with
// incremental extraction the per-imputation work is already tiny and the
// serial state maintenance dominates, so fan-out has nothing to win there.
func benchEngineTickParallel(b *testing.B, workers int) {
	b.Helper()
	const width = 8
	cfg := tkcm.Config{K: 5, PatternLength: 72, D: 3, WindowLength: 4032, Workers: workers, Profiler: tkcm.ProfilerNaive}
	names := make([]string, width)
	refs := make(map[string]tkcm.ReferenceSet, 4)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	// Streams 0-3 are targets referencing the always-present streams 4-7.
	for i := 0; i < 4; i++ {
		refs[names[i]] = tkcm.ReferenceSet{Stream: names[i], Candidates: names[4:]}
	}
	eng, err := tkcm.NewEngine(cfg, names, refs)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	sp := benchScale.Spec(experiments.DSSBR1d)
	frame := sp.Generate()
	nSeries := len(frame.Series)
	row := make([]float64, width)
	fill := func(t int) {
		for j := 0; j < width; j++ {
			s := frame.Series[j%nSeries].Values
			row[j] = s[t%len(s)] + float64(j)
		}
	}
	for t := 0; t < cfg.WindowLength; t++ {
		fill(t)
		if _, _, err := eng.Tick(row); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill(cfg.WindowLength + i)
		for j := 0; j < 4; j++ {
			row[j] = tkcm.Missing
		}
		if _, _, err := eng.Tick(row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTickSerial vs BenchmarkEngineTickParallel measure the
// worker-pool fan-out of one Tick's imputations across missing streams.
func BenchmarkEngineTickSerial(b *testing.B)   { benchEngineTickParallel(b, 1) }
func BenchmarkEngineTickParallel(b *testing.B) { benchEngineTickParallel(b, 4) }

// BenchmarkEngineTickColumns streams the pinned steady-state workload
// (width 4, stream 0 missing every 20th tick) through the columnar ingest
// path, 64 ticks per TickColumns call; ns/op is per tick, directly
// comparable to BenchmarkEngineTickRowBaseline. The same bodies run in CI's
// regression gate via `tkcm-bench -experiment pinned`.
func BenchmarkEngineTickColumns(b *testing.B) { benchcases.EngineTickColumns(b, 64) }

// BenchmarkEngineTickRowBaseline is the row-at-a-time baseline of the pinned
// workload (BenchmarkEngineTick measures a different, impute-every-tick
// workload).
func BenchmarkEngineTickRowBaseline(b *testing.B) { benchcases.EngineTick(b) }

// BenchmarkWALAppendBatch appends 64-row batches — one record, one CRC, one
// group-commit slot per batch; ns/op is per row, comparable to
// BenchmarkWALAppend.
func BenchmarkWALAppendBatch(b *testing.B) { benchcases.WALAppendBatch(b, 64) }

// BenchmarkWALAppend is the per-row WAL append baseline.
func BenchmarkWALAppend(b *testing.B) { benchcases.WALAppend(b) }

// BenchmarkShardTick runs the pinned workload through the shard layer
// (routing, queue handoff, stage clocks, engine tick), bounding the serving
// overhead over BenchmarkEngineTickRowBaseline.
func BenchmarkShardTick(b *testing.B) { benchcases.ShardTick(b) }

// BenchmarkShardTickCold is the residency tier's worst case: every measured
// tick hydrates a parked tenant (mmap checkpoint restore) before ticking, so
// the delta over BenchmarkShardTick is the cost a cold tenant's first tick
// pays.
func BenchmarkShardTickCold(b *testing.B) { benchcases.ShardTickCold(b) }

// BenchmarkEngineTickBatch measures bulk ingest through TickBatch at the
// default (incremental) configuration.
func BenchmarkEngineTickBatch(b *testing.B) {
	cfg := tkcm.Config{K: 5, PatternLength: 72, D: 3, WindowLength: 4032}
	eng, err := tkcm.NewEngine(cfg, []string{"s", "r1", "r2", "r3"}, map[string]tkcm.ReferenceSet{
		"s": {Stream: "s", Candidates: []string{"r1", "r2", "r3"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	sp := benchScale.Spec(experiments.DSSBR1d)
	frame := sp.Generate()
	rows := make([][]float64, frame.Len())
	for t := range rows {
		rows[t] = []float64{
			frame.Series[0].Values[t],
			frame.Series[1].Values[t],
			frame.Series[2].Values[t],
			frame.Series[3].Values[t],
		}
		if t >= cfg.WindowLength && t%5 == 0 {
			rows[t][0] = tkcm.Missing
		}
	}
	if _, _, err := eng.TickBatch(rows[:cfg.WindowLength]); err != nil {
		b.Fatal(err)
	}
	batch := rows[cfg.WindowLength:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.TickBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
