package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Client is a tkcm-serve API client. It is safe for concurrent use; one
// Client can serve any number of goroutines and tick streams.
type Client struct {
	base string
	hc   *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default
// http.DefaultClient). Tick streams are long-lived full-duplex requests, so
// the client must not impose an overall request timeout; use dial and
// header timeouts on the transport instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New creates a client for the tkcm-serve instance at baseURL (e.g.
// "http://localhost:8080"). A trailing slash is tolerated.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response from the server, decoded from its uniform
// {"error": "..."} body.
type APIError struct {
	// StatusCode is the HTTP status of the response.
	StatusCode int
	// Message is the server's error text.
	Message string
	// Retry reports the server marked the failure recoverable: reconnect
	// and replay unacknowledged rows (sequenced streams do so automatically).
	Retry bool
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("tkcm: server returned %d: %s", e.StatusCode, e.Message)
}

// decodeError turns a non-2xx response into an *APIError.
func decodeError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
		Retry bool   `json:"retry"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(raw, &body); err != nil || body.Error == "" {
		body.Error = strings.TrimSpace(string(raw))
	}
	return &APIError{StatusCode: resp.StatusCode, Message: body.Error, Retry: body.Retry}
}

// Config selects a tenant's TKCM parameters. Zero fields keep the server's
// calibrated defaults (the paper's Sec. 7.1 values).
type Config struct {
	// K is the number of anchor points (paper default 5).
	K int `json:"k,omitempty"`
	// PatternLength is l, the query pattern length in ticks (default 72).
	PatternLength int `json:"pattern_length,omitempty"`
	// D is the number of reference series consulted per imputation
	// (default 3).
	D int `json:"d,omitempty"`
	// WindowLength is L, the retained history per stream in ticks.
	WindowLength int `json:"window_length,omitempty"`
	// Workers fans one tick's imputations across a worker pool when > 1.
	Workers int `json:"workers,omitempty"`
	// Profiler pins the pattern-extraction strategy: "naive", "fft" or
	// "incremental" (default: auto).
	Profiler string `json:"profiler,omitempty"`
	// WeightedMean weights anchor values by inverse dissimilarity.
	WeightedMean bool `json:"weighted_mean,omitempty"`
	// SkipDiagnostics drops per-imputation diagnostics for throughput.
	SkipDiagnostics bool `json:"skip_diagnostics,omitempty"`
	// Float32Profiles stores the engine's profile aggregates in float32 —
	// half the profile memory traffic for imputed values within 1e-6 of the
	// float64 engine. The precision is fixed for the tenant's lifetime.
	Float32Profiles bool `json:"float32_profiles,omitempty"`
}

// CreateTenantRequest describes a tenant to create.
type CreateTenantRequest struct {
	// Streams names the tenant's co-evolving series, in column order.
	// Required, non-empty.
	Streams []string `json:"streams"`
	// Config overrides TKCM parameters (nil = server defaults).
	Config *Config `json:"config,omitempty"`
	// Refs optionally pins each stream's ordered candidate reference
	// streams; streams without an entry get correlation-ranked references
	// on their first missing value.
	Refs map[string][]string `json:"refs,omitempty"`
}

// TenantInfo describes one hosted tenant.
type TenantInfo struct {
	// ID is the tenant id.
	ID string `json:"id"`
	// Shard is the engine shard hosting the tenant.
	Shard int `json:"shard"`
	// Streams names the tenant's series in column order.
	Streams []string `json:"streams"`
	// Ticks counts rows ingested (caller-visible engine counter).
	Ticks int `json:"ticks"`
	// Seq is the engine's sequence number; a sequenced stream resumes
	// sending at Seq+1.
	Seq uint64 `json:"seq"`
}

// Health is the /healthz document. The server pairs non-"ok" statuses with
// HTTP 503 so load-balancer probes fail, but still sends the full document;
// Client.Health returns it with a nil error either way — check Status.
type Health struct {
	// Status is "ok", "degraded" (some tenants' write-ahead logs have
	// fail-stopped; see FailedWALTenants) or "follower" (an unpromoted
	// replica: every API route except health, metrics and promotion
	// answers 503).
	Status string `json:"status"`
	// Shards is the engine shard count.
	Shards int `json:"shards"`
	// Tenants is the hosted tenant count.
	Tenants int `json:"tenants"`
	// UptimeSeconds is seconds since the server started.
	UptimeSeconds int `json:"uptime_seconds"`
	// FailedWALTenants names the fail-stopped tenants when Status is
	// "degraded"; their ticks are rejected until the operator intervenes.
	FailedWALTenants []string `json:"failed_wal_tenants,omitempty"`
	// Primary is the followed server's base URL when Status is "follower".
	Primary string `json:"primary,omitempty"`
	// ReplicationLagSeconds is the follower's staleness: seconds since the
	// last fully-applied manifest was generated on the primary.
	ReplicationLagSeconds float64 `json:"replication_lag_seconds,omitempty"`
}

// do issues one JSON request/response round trip.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("tkcm: encoding request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("tkcm: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("tkcm: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("tkcm: decoding response: %w", err)
		}
	}
	return nil
}

// Health fetches the /healthz document. Unlike the other methods it decodes
// the body even on a 503: "degraded" and "follower" states are reported in
// the returned document (with a nil error), not as an *APIError.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return h, fmt.Errorf("tkcm: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return h, fmt.Errorf("tkcm: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return h, fmt.Errorf("tkcm: %w", err)
	}
	if jerr := json.Unmarshal(raw, &h); jerr == nil && h.Status != "" {
		return h, nil
	}
	if resp.StatusCode/100 != 2 {
		// Not a health document — e.g. a proxy error page.
		var body struct {
			Error string `json:"error"`
			Retry bool   `json:"retry"`
		}
		if err := json.Unmarshal(raw, &body); err != nil || body.Error == "" {
			body.Error = strings.TrimSpace(string(raw))
		}
		return h, &APIError{StatusCode: resp.StatusCode, Message: body.Error, Retry: body.Retry}
	}
	return h, fmt.Errorf("tkcm: decoding health document: unexpected body %.80q", raw)
}

// CreateTenant creates tenant id. The server answers 409 (an *APIError)
// when the id is already hosted.
func (c *Client) CreateTenant(ctx context.Context, id string, req CreateTenantRequest) error {
	return c.do(ctx, http.MethodPost, "/v1/tenants/"+url.PathEscape(id), req, nil)
}

// DeleteTenant deletes tenant id, including its durable state (checkpoint
// and write-ahead log) — the tenant will not resurrect on a server restart.
func (c *Client) DeleteTenant(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/tenants/"+url.PathEscape(id), nil, nil)
}

// GetTenant fetches one tenant's description, including the sequence number
// a sequenced stream should resume from.
func (c *Client) GetTenant(ctx context.Context, id string) (TenantInfo, error) {
	var info TenantInfo
	err := c.do(ctx, http.MethodGet, "/v1/tenants/"+url.PathEscape(id), nil, &info)
	return info, err
}

// ListTenants lists every hosted tenant, sorted by id.
func (c *Client) ListTenants(ctx context.Context) ([]TenantInfo, error) {
	var out struct {
		Tenants []TenantInfo `json:"tenants"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/tenants", nil, &out)
	return out.Tenants, err
}

// MigrateResult reports one completed tenant migration.
type MigrateResult struct {
	// Tenant is the migrated tenant id.
	Tenant string `json:"tenant"`
	// From is the shard the tenant left.
	From int `json:"from"`
	// To is the shard hosting the tenant now.
	To int `json:"to"`
}

// MigrateTenant moves tenant id onto shard dst live: in-flight ticks drain,
// the engine moves with its durability state intact, and streaming resumes
// on the destination — acknowledged ticks are never lost and sequenced
// streams never observe a gap. Migrating a tenant onto the shard it already
// occupies is a no-op that still verifies the tenant exists.
func (c *Client) MigrateTenant(ctx context.Context, id string, dst int) (MigrateResult, error) {
	var res MigrateResult
	err := c.do(ctx, http.MethodPost, "/v1/tenants/"+url.PathEscape(id)+"/migrate",
		map[string]int{"shard": dst}, &res)
	return res, err
}

// RoutingInfo is the cluster routing document: the versioned tenant→shard
// table plus migration counters.
type RoutingInfo struct {
	// Version counts routing-table mutations.
	Version uint64 `json:"version"`
	// Shards is the shard count the table routes onto.
	Shards int `json:"shards"`
	// DefaultMod is the modulus of the default hash route (pinned at table
	// creation, so growing the shard count never reroutes tenants).
	DefaultMod int `json:"default_mod"`
	// Assignments maps explicitly-routed tenants to shards; absent tenants
	// follow the default hash route.
	Assignments map[string]int `json:"assignments"`
	// MigrationsTotal counts completed migrations since the server started.
	MigrationsTotal uint64 `json:"migrations_total"`
	// Imbalance is the last sampled hottest-shard/mean tick-rate ratio
	// (1 = balanced; 0 = not sampled yet).
	Imbalance float64 `json:"imbalance"`
}

// Routing fetches the cluster routing table.
func (c *Client) Routing(ctx context.Context) (RoutingInfo, error) {
	var info RoutingInfo
	err := c.do(ctx, http.MethodGet, "/v1/cluster/routing", nil, &info)
	return info, err
}

// Checkpoint asks the server to snapshot every tenant now and returns how
// many tenants were written.
func (c *Client) Checkpoint(ctx context.Context) (int, error) {
	var out struct {
		Checkpointed int `json:"checkpointed"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/checkpoint", nil, &out)
	return out.Checkpointed, err
}

// Snapshot downloads tenant id's engine snapshot (core snapshot format,
// restorable with tkcm.RestoreEngine) into w, returning the bytes copied.
func (c *Client) Snapshot(ctx context.Context, id string, w io.Writer) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/tenants/"+url.PathEscape(id)+"/snapshot", nil)
	if err != nil {
		return 0, fmt.Errorf("tkcm: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("tkcm: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, decodeError(resp)
	}
	n, err := io.Copy(w, resp.Body)
	if err != nil {
		return n, fmt.Errorf("tkcm: downloading snapshot: %w", err)
	}
	return n, nil
}

// Metrics fetches the raw Prometheus text exposition from /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("tkcm: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("tkcm: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("tkcm: %w", err)
	}
	return string(raw), nil
}
