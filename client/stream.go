package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"tkcm/internal/wire"
)

// StreamOptions tunes a TickStream. The zero value is usable.
type StreamOptions struct {
	// MaxInFlight bounds rows sent but not yet acknowledged (default 128).
	// Send blocks at the bound — the client-side backpressure that keeps a
	// fast producer from outrunning the server and bounds replay cost after
	// a reconnect.
	MaxInFlight int
	// Sequenced assigns each row a sequence number continuing the server's
	// (fetched when the stream opens). Sequenced streams survive reconnects
	// exactly-once: unacknowledged rows are replayed and the server
	// idempotently acks those it already applied. Requires this stream to
	// be the tenant's only writer.
	Sequenced bool
	// MaxAttempts bounds consecutive failed reconnect attempts before the
	// stream fails permanently (default 40). The counter resets whenever a
	// connection delivers an ack.
	MaxAttempts int
	// RetryBackoff is the pause between reconnect attempts (default 250ms).
	RetryBackoff time.Duration
	// Batch, when > 1, coalesces up to this many queued rows into one batch
	// line ({"seq":N,"rows":[...]}), which the server applies in one shard
	// operation and one write-ahead-log record — the amortization that
	// multiplies throughput under backpressure. Acks still arrive one per
	// row, so Recv is oblivious to batching. A producer running in lock-step
	// with the server sends plain single-row lines as before; batches form
	// exactly when rows queue up.
	Batch int
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 128
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 40
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 250 * time.Millisecond
	}
	return o
}

// Ack is the server's acknowledgement of one row. Once received, the row is
// applied — and, on a server running with a write-ahead log, durable: it
// survives even a kill -9 of the server.
type Ack struct {
	// Tick is the engine's window tick index after the row.
	Tick int `json:"tick"`
	// Seq is the row's engine sequence number.
	Seq uint64 `json:"seq"`
	// Values is the completed row (missing values imputed). Empty for a
	// Duplicate ack.
	Values []float64 `json:"values"`
	// Imputed lists the indices that were missing in the input.
	Imputed []int `json:"imputed"`
	// Duplicate reports the row was already applied before (it was replayed
	// across a reconnect); Values is empty then.
	Duplicate bool `json:"duplicate"`
}

// pendingRow is one sent-but-unacked row, retained for replay.
type pendingRow struct {
	seq    uint64 // 0 when unsequenced
	values []float64
}

// TickStream is one full-duplex NDJSON tick stream to a tenant. Send and
// Recv may be used from different goroutines (one sender, one receiver);
// acknowledgements arrive in send order, exactly one per sent row.
type TickStream struct {
	c      *Client
	tenant string
	opts   StreamOptions

	ctx    context.Context
	cancel context.CancelFunc

	// tokens holds one entry per in-flight row; acks buffers delivered
	// acknowledgements for Recv.
	tokens chan struct{}
	acks   chan Ack

	mu       sync.Mutex
	unacked  []pendingRow
	writeIdx int // next unacked row the current connection's writer sends
	nextSeq  uint64
	closing  bool
	err      error // terminal outcome; io.EOF = clean close
	acked    bool  // an ack arrived on the current connection

	notify    chan struct{} // kicks the writer after Send/Close
	done      chan struct{} // closed on terminal failure or clean shutdown
	doneOnce  sync.Once
	flushed   chan struct{} // closed when closing and nothing is unacked
	flOnce    sync.Once
	closeDrop chan struct{} // closed by Close: overflow acks may be dropped
	cdOnce    sync.Once
	wg        sync.WaitGroup
}

// ErrStreamBroken wraps the cause when a stream fails permanently with rows
// still unacknowledged; those rows may or may not have been applied.
var ErrStreamBroken = errors.New("tkcm: tick stream broken")

// OpenStream opens a tick stream to tenant. With opts.Sequenced the current
// sequence number is fetched first, so opening fails fast when the tenant
// does not exist. Always Close the stream; cancelling ctx aborts it along
// with every blocked Send/Recv.
func (c *Client) OpenStream(ctx context.Context, tenant string, opts StreamOptions) (*TickStream, error) {
	opts = opts.withDefaults()
	sctx, cancel := context.WithCancel(ctx)
	s := &TickStream{
		c:         c,
		tenant:    tenant,
		opts:      opts,
		ctx:       sctx,
		cancel:    cancel,
		tokens:    make(chan struct{}, opts.MaxInFlight),
		acks:      make(chan Ack, opts.MaxInFlight),
		notify:    make(chan struct{}, 1),
		done:      make(chan struct{}),
		flushed:   make(chan struct{}),
		closeDrop: make(chan struct{}),
	}
	if opts.Sequenced {
		info, err := c.GetTenant(ctx, tenant)
		if err != nil {
			cancel()
			return nil, err
		}
		s.nextSeq = info.Seq + 1
	}
	s.wg.Add(1)
	go s.run()
	return s, nil
}

// Send queues one row (NaN marks a missing value) and returns once it is
// accepted into the in-flight window — NOT once it is acknowledged; consume
// Recv for that. Send blocks while MaxInFlight rows are outstanding. A nil
// error means the row will be delivered or the stream will report a
// terminal error; it never silently disappears.
func (s *TickStream) Send(ctx context.Context, values []float64) error {
	// Refuse ±Inf up front: the server would reject the row anyway, and the
	// wire format cannot even represent it (strconv would emit +Inf, which
	// is not JSON and would corrupt the NDJSON framing for batched rows).
	for i, v := range values {
		if math.IsInf(v, 0) {
			return fmt.Errorf("tkcm: row value %d is %v: non-finite measurements are not accepted (use NaN for missing)", i, v)
		}
	}
	select {
	case s.tokens <- struct{}{}:
	case <-s.done:
		return s.terminalErr()
	case <-ctx.Done():
		return ctx.Err()
	case <-s.ctx.Done():
		return s.terminalErr()
	}
	s.mu.Lock()
	if s.err != nil || s.closing {
		err := s.err
		s.mu.Unlock()
		<-s.tokens
		if err == nil {
			err = errors.New("tkcm: Send on closed stream")
		}
		return err
	}
	row := pendingRow{values: append([]float64(nil), values...)}
	if s.opts.Sequenced {
		row.seq = s.nextSeq
		s.nextSeq++
	}
	s.unacked = append(s.unacked, row)
	s.mu.Unlock()
	s.kick()
	return nil
}

// Recv returns the next acknowledgement, in send order. After Close, Recv
// drains the remaining acks and then returns io.EOF; after a permanent
// failure it returns the terminal error (wrapping ErrStreamBroken when
// unacknowledged rows were lost).
func (s *TickStream) Recv(ctx context.Context) (Ack, error) {
	select {
	case a := <-s.acks:
		return a, nil
	case <-ctx.Done():
		return Ack{}, ctx.Err()
	case <-s.done:
		// Acks buffered before termination still count.
		select {
		case a := <-s.acks:
			return a, nil
		default:
		}
		return Ack{}, s.terminalErr()
	}
}

// Close flushes queued rows, waits for their acknowledgements to arrive
// (consume them with Recv — buffered acks survive Close), and shuts the
// stream down. Returns nil on a clean flush, or the terminal error.
func (s *TickStream) Close() error {
	s.mu.Lock()
	s.closing = true
	drained := len(s.unacked) == 0
	s.mu.Unlock()
	if drained {
		s.flOnce.Do(func() { close(s.flushed) })
	}
	// From here on, a full ack buffer no longer blocks delivery: a caller
	// that stopped consuming Recv must not wedge the flush (acks the
	// buffer cannot hold are dropped; the rows themselves are acked and
	// durable server-side).
	s.cdOnce.Do(func() { close(s.closeDrop) })
	s.kick()
	select {
	case <-s.flushed:
		s.finish(io.EOF)
	case <-s.done:
		// run() already recorded the terminal outcome.
	case <-s.ctx.Done():
		// Cancelled mid-flush: rows may still be unacknowledged, and a
		// clean io.EOF here would report them as flushed and durable.
		// finish wraps the cause in ErrStreamBroken when any remain.
		s.mu.Lock()
		drained := len(s.unacked) == 0
		s.mu.Unlock()
		if drained {
			s.finish(io.EOF)
		} else {
			s.finish(s.ctx.Err())
		}
	}
	s.cancel()
	s.wg.Wait()
	if err := s.terminalErr(); err != io.EOF {
		return err
	}
	return nil
}

func (s *TickStream) kick() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

func (s *TickStream) terminalErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		return s.ctx.Err()
	}
	return s.err
}

// finish records the stream's terminal outcome exactly once.
func (s *TickStream) finish(err error) {
	s.mu.Lock()
	if s.err == nil {
		if err != io.EOF && len(s.unacked) > 0 {
			err = fmt.Errorf("%w (%d rows unacknowledged): %w", ErrStreamBroken, len(s.unacked), err)
		}
		s.err = err
	}
	s.mu.Unlock()
	s.doneOnce.Do(func() { close(s.done) })
}

// run owns the transport: it dials connections, replays unacknowledged rows
// onto each new one, and retries with backoff while failures stay
// retryable (sequenced streams only — without sequence numbers a replay
// could double-apply rows).
func (s *TickStream) run() {
	defer s.wg.Done()
	attempts := 0
	for {
		err, retryable := s.connect()
		if err == nil {
			s.finish(io.EOF)
			return
		}
		s.mu.Lock()
		if s.acked {
			attempts = 0
			s.acked = false
		}
		s.mu.Unlock()
		if !retryable || !s.opts.Sequenced {
			s.finish(err)
			return
		}
		attempts++
		if attempts >= s.opts.MaxAttempts {
			s.finish(fmt.Errorf("tkcm: giving up after %d reconnect attempts: %w", attempts, err))
			return
		}
		select {
		case <-time.After(s.opts.RetryBackoff):
		case <-s.ctx.Done():
			s.finish(s.ctx.Err())
			return
		}
	}
}

// serverLine is one NDJSON response line: an ack, or a terminal error.
type serverLine struct {
	Ack
	Error string `json:"error"`
	Retry bool   `json:"retry"`
}

// connect runs one connection to completion. A nil error is a clean
// shutdown (Close flushed everything); otherwise retryable reports whether
// replaying on a fresh connection may succeed.
func (s *TickStream) connect() (err error, retryable bool) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(s.ctx, http.MethodPost,
		s.c.base+"/v1/tenants/"+url.PathEscape(s.tenant)+"/ticks", pr)
	if err != nil {
		return fmt.Errorf("tkcm: %w", err), false
	}
	req.Header.Set("Content-Type", "application/x-ndjson")

	s.mu.Lock()
	s.writeIdx = 0 // replay every unacknowledged row onto this connection
	s.mu.Unlock()

	connDead := make(chan struct{})
	var dieOnce sync.Once
	die := func() { dieOnce.Do(func() { close(connDead) }) }
	writerDone := make(chan struct{})
	go s.writeLoop(pw, connDead, writerDone)
	defer func() { die(); pw.CloseWithError(err); <-writerDone }()

	// Do returns when response headers arrive — which the full-duplex
	// server sends with the first ack (or a pre-stream error), while the
	// writer above is already pumping rows.
	resp, herr := s.c.hc.Do(req)
	if herr != nil {
		if s.ctx.Err() != nil {
			return s.ctx.Err(), false
		}
		return fmt.Errorf("tkcm: %w", herr), true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		aerr := decodeError(resp)
		// 503 = draining or shard manager closed: the server is going down
		// or rebooting; replay may succeed against its successor. The body's
		// retry flag covers the rest (e.g. a durability hiccup on the first
		// row, marked recoverable just like the same failure mid-stream).
		var apiErr *APIError
		retry := resp.StatusCode == http.StatusServiceUnavailable ||
			(errors.As(aerr, &apiErr) && apiErr.Retry)
		return aerr, retry
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var wa wire.Ack
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		// Hot path: the strict single-pass parser handles the exact ack
		// shape the server emits; error lines and anything unusual fall back
		// to encoding/json below. The Ack handed to deliver escapes to the
		// caller, so its slices are fresh copies of the parser's scratch.
		if wire.ParseAck(line, &wa) {
			a := Ack{
				Tick:      wa.Tick,
				Seq:       wa.Seq,
				Values:    make([]float64, len(wa.Values)),
				Imputed:   make([]int, len(wa.Imputed)),
				Duplicate: wa.Duplicate,
			}
			copy(a.Values, wa.Values)
			copy(a.Imputed, wa.Imputed)
			if derr := s.deliver(a); derr != nil {
				return derr, false
			}
			continue
		}
		var sl serverLine
		if jerr := json.Unmarshal(line, &sl); jerr != nil {
			return fmt.Errorf("tkcm: decoding ack line: %w", jerr), false
		}
		if sl.Error != "" {
			return &APIError{StatusCode: http.StatusOK, Message: sl.Error, Retry: sl.Retry}, sl.Retry
		}
		if derr := s.deliver(sl.Ack); derr != nil {
			return derr, false
		}
	}
	if serr := sc.Err(); serr != nil {
		return fmt.Errorf("tkcm: reading acks: %w", serr), true
	}
	// Clean EOF: the server ended the stream. If we were closing and
	// everything is acked this is the expected end; otherwise treat it as a
	// drop and replay.
	s.mu.Lock()
	clean := s.closing && len(s.unacked) == 0
	s.mu.Unlock()
	if clean {
		return nil, false
	}
	return errors.New("tkcm: server ended the tick stream"), true
}

// writeLoop streams queued rows onto one connection, replaying from
// writeIdx. It owns pw and closes it when a graceful Close has flushed
// every row.
func (s *TickStream) writeLoop(pw *io.PipeWriter, connDead <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	var buf bytes.Buffer
	for {
		s.mu.Lock()
		for s.writeIdx >= len(s.unacked) {
			if s.closing || s.err != nil {
				s.mu.Unlock()
				pw.Close() // EOF tells the server we are done sending
				return
			}
			s.mu.Unlock()
			select {
			case <-s.notify:
			case <-connDead:
				return
			case <-s.ctx.Done():
				return
			}
			s.mu.Lock()
		}
		// Batch every queued row into one pipe write: the pipe is an
		// unbuffered synchronous handoff to the HTTP transport, so per-row
		// writes would cost a goroutine park/wake and a tiny TCP chunk each
		// — the difference between ~5k and ~50k rows/s per connection.
		buf.Reset()
		for s.writeIdx < len(s.unacked) && buf.Len() < 32<<10 {
			// With Batch > 1 and several rows queued, fold them into one
			// batch line — rows in unacked always carry consecutive seqs, the
			// shape the server's batch ingest requires. A lone row keeps the
			// plain single-row format.
			if n := len(s.unacked) - s.writeIdx; s.opts.Batch > 1 && n > 1 {
				if n > s.opts.Batch {
					n = s.opts.Batch
				}
				rows := s.unacked[s.writeIdx : s.writeIdx+n]
				s.writeIdx += n
				encodeBatch(&buf, rows[0].seq, rows)
				continue
			}
			row := s.unacked[s.writeIdx]
			s.writeIdx++
			encodeRow(&buf, row.seq, row.values)
		}
		s.mu.Unlock()

		if _, err := pw.Write(buf.Bytes()); err != nil {
			return // connection is dead; connect's reader handles the retry
		}
	}
}

// deliver matches one ack against the oldest unacknowledged row, hands the
// token back, and buffers the ack for Recv.
func (s *TickStream) deliver(a Ack) error {
	s.mu.Lock()
	if len(s.unacked) == 0 {
		s.mu.Unlock()
		return fmt.Errorf("tkcm: ack for seq %d with no row outstanding", a.Seq)
	}
	head := s.unacked[0]
	if head.seq != 0 && a.Seq != head.seq {
		s.mu.Unlock()
		return fmt.Errorf("tkcm: ack seq %d does not match oldest in-flight row %d", a.Seq, head.seq)
	}
	s.unacked = s.unacked[1:]
	if s.writeIdx > 0 {
		s.writeIdx--
	}
	s.acked = true
	flushedNow := s.closing && len(s.unacked) == 0
	s.mu.Unlock()

	// Buffer the ack for Recv. Prefer delivery; once Close has been called
	// and the buffer is full, drop instead of blocking — otherwise a caller
	// that abandoned Recv would deadlock the flush.
	select {
	case s.acks <- a:
	default:
		select {
		case s.acks <- a:
		case <-s.closeDrop:
		case <-s.ctx.Done():
			return s.ctx.Err()
		}
	}
	<-s.tokens
	if flushedNow {
		s.flOnce.Do(func() { close(s.flushed) })
	}
	return nil
}

// encodeBatch appends one NDJSON batch line to buf: seq numbers the first
// row, and each row is encoded like a values array (NaN → null).
func encodeBatch(buf *bytes.Buffer, seq uint64, rows []pendingRow) {
	buf.WriteByte('{')
	if seq > 0 {
		buf.WriteString(`"seq":`)
		buf.Write(strconv.AppendUint(buf.AvailableBuffer(), seq, 10))
		buf.WriteByte(',')
	}
	buf.WriteString(`"rows":[`)
	for j, row := range rows {
		if j > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('[')
		for i, v := range row.values {
			if i > 0 {
				buf.WriteByte(',')
			}
			if math.IsNaN(v) {
				buf.WriteString("null")
			} else {
				buf.Write(strconv.AppendFloat(buf.AvailableBuffer(), v, 'g', -1, 64))
			}
		}
		buf.WriteByte(']')
	}
	buf.WriteString("]}\n")
}

// encodeRow appends one NDJSON input line to buf. NaN becomes null, the
// missing-value marker of the wire format.
func encodeRow(buf *bytes.Buffer, seq uint64, values []float64) {
	buf.WriteByte('{')
	if seq > 0 {
		buf.WriteString(`"seq":`)
		buf.Write(strconv.AppendUint(buf.AvailableBuffer(), seq, 10))
		buf.WriteByte(',')
	}
	buf.WriteString(`"values":[`)
	for i, v := range values {
		if i > 0 {
			buf.WriteByte(',')
		}
		if math.IsNaN(v) {
			buf.WriteString("null")
		} else {
			buf.Write(strconv.AppendFloat(buf.AvailableBuffer(), v, 'g', -1, 64))
		}
	}
	buf.WriteString("]}\n")
}
