// Package client is the official Go client for tkcm-serve, the sharded
// multi-tenant streaming-imputation service. It covers the full HTTP API —
// tenant CRUD, health, metrics, on-demand checkpoints, snapshot download —
// and, through TickStream, the full-duplex NDJSON tick stream with
// backpressure, pipelined acknowledgements, and automatic reconnect.
//
// # Quick start
//
//	c := client.New("http://localhost:8080")
//	err := c.CreateTenant(ctx, "plant-a", client.CreateTenantRequest{
//		Streams: []string{"s", "r1", "r2", "r3"},
//		Config:  &client.Config{K: 5, PatternLength: 72, D: 3, WindowLength: 4032},
//	})
//	st, err := c.OpenStream(ctx, "plant-a", client.StreamOptions{Sequenced: true})
//	go func() {
//		for {
//			ack, err := st.Recv(ctx) // completed rows, in send order
//			...
//		}
//	}()
//	st.Send(ctx, []float64{21.3, math.NaN(), 19.8, 20.1}) // NaN = missing
//	st.Close()
//
// # Delivery semantics
//
// Send accepts a row into a bounded in-flight window (StreamOptions.
// MaxInFlight) and blocks when it is full — backpressure that mirrors the
// server's bounded shard queues. Every sent row produces exactly one Ack on
// Recv, in send order. Against a server running with a write-ahead log, an
// Ack means the row is on stable storage and will survive a hard crash.
//
// Sequenced streams (StreamOptions.Sequenced) number each row continuing
// the tenant's engine sequence. If the connection drops — including the
// server being killed and restarted — the stream reconnects with backoff
// and replays every unacknowledged row; the server applies each row at most
// once, answering already-applied rows with Duplicate acks. The combination
// is exactly-once ingestion from the producer's point of view, provided
// the stream is the tenant's only writer.
package client
