package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tkcm/internal/core"
	"tkcm/internal/server"
	"tkcm/internal/shard"
	"tkcm/internal/wal"
)

// boot assembles a full serving stack (shards + WAL + checkpoints) over the
// given directories and serves it on l.
func boot(t *testing.T, l net.Listener, ckDir, walDir string) (*server.Server, *http.Server, *wal.Manager, *shard.Manager) {
	t.Helper()
	walMgr := wal.NewManager(walDir, wal.Options{SyncInterval: time.Millisecond})
	m := shard.New(shard.Options{Shards: 2, WAL: walMgr})
	srv := server.New(server.Options{Manager: m, CheckpointDir: ckDir, WAL: walMgr})
	if _, err := srv.RestoreFromCheckpoints(context.Background()); err != nil {
		t.Fatalf("restore: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(l)
	return srv, hs, walMgr, m
}

func TestClientEndToEnd(t *testing.T) {
	walMgr := wal.NewManager(t.TempDir(), wal.Options{SyncInterval: time.Millisecond})
	m := shard.New(shard.Options{Shards: 2, WAL: walMgr})
	srv := server.New(server.Options{Manager: m, CheckpointDir: t.TempDir(), WAL: walMgr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer m.Close()
	defer walMgr.Close()

	ctx := context.Background()
	c := New(ts.URL)

	if h, err := c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("health: %+v, %v", h, err)
	}
	req := CreateTenantRequest{
		Streams: []string{"s", "r1", "r2", "r3"},
		Config:  &Config{K: 2, PatternLength: 3, D: 2, WindowLength: 32},
	}
	if err := c.CreateTenant(ctx, "e2e", req); err != nil {
		t.Fatalf("create: %v", err)
	}
	var apiErr *APIError
	if err := c.CreateTenant(ctx, "e2e", req); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: %v", err)
	}

	st, err := c.OpenStream(ctx, "e2e", StreamOptions{Sequenced: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	go func() {
		for i := 0; i < n; i++ {
			row := []float64{20 + float64(i%5), 19, 21, 20.5}
			if i > 20 {
				row[0] = math.NaN()
			}
			if err := st.Send(ctx, row); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		ack, err := st.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ack.Seq != uint64(i+1) {
			t.Fatalf("ack %d: seq %d, want %d", i, ack.Seq, i+1)
		}
		if len(ack.Values) != 4 {
			t.Fatalf("ack %d: %d values", i, len(ack.Values))
		}
		if i > 20 && (len(ack.Imputed) != 1 || ack.Imputed[0] != 0 || math.IsNaN(ack.Values[0])) {
			t.Fatalf("ack %d: imputed %v values %v", i, ack.Imputed, ack.Values)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	info, err := c.GetTenant(ctx, "e2e")
	if err != nil || info.Seq != n {
		t.Fatalf("get tenant: %+v, %v", info, err)
	}
	infos, err := c.ListTenants(ctx)
	if err != nil || len(infos) != 1 || infos[0].ID != "e2e" {
		t.Fatalf("list: %+v, %v", infos, err)
	}
	if nck, err := c.Checkpoint(ctx); err != nil || nck != 1 {
		t.Fatalf("checkpoint: %d, %v", nck, err)
	}
	var snap bytes.Buffer
	if sz, err := c.Snapshot(ctx, "e2e", &snap); err != nil || sz == 0 {
		t.Fatalf("snapshot: %d, %v", sz, err)
	}
	eng, err := core.RestoreEngine(&snap)
	if err != nil {
		t.Fatalf("restoring downloaded snapshot: %v", err)
	}
	if eng.Seq() != n {
		t.Fatalf("downloaded snapshot seq %d, want %d", eng.Seq(), n)
	}
	eng.Close()
	if s, err := c.Metrics(ctx); err != nil || !bytes.Contains([]byte(s), []byte("tkcm_wal_appends_total")) {
		t.Fatalf("metrics: %v\n%s", err, s)
	}
	if err := c.DeleteTenant(ctx, "e2e"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := c.GetTenant(ctx, "e2e"); err == nil {
		t.Fatal("get after delete succeeded")
	}
}

// TestStreamReconnectReplays hard-stops the HTTP server mid-stream (no
// graceful shutdown, no final checkpoint — the WAL is the only thing
// covering acked rows), boots a fresh stack over the same directories and
// the same address, and requires the sequenced stream to deliver exactly
// one ack per row with nothing lost.
func TestStreamReconnectReplays(t *testing.T) {
	ckDir, walDir := t.TempDir(), t.TempDir()
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	_, hs1, wal1, _ := boot(t, l1, ckDir, walDir)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := New("http://" + addr)
	if err := c.CreateTenant(ctx, "re", CreateTenantRequest{
		Streams: []string{"a", "b", "c"},
		Config:  &Config{K: 2, PatternLength: 3, D: 2, WindowLength: 64},
	}); err != nil {
		t.Fatalf("create: %v", err)
	}

	st, err := c.OpenStream(ctx, "re", StreamOptions{Sequenced: true, MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	const total = 60
	sendErr := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			row := []float64{float64(i), float64(2 * i), float64(3 * i)}
			if err := st.Send(ctx, row); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()

	acked := make(map[uint64]int)
	killAfter := 20
	for i := 0; i < total; i++ {
		ack, err := st.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		acked[ack.Seq]++
		if len(acked) == killAfter && hs1 != nil {
			// Hard-stop: abort every connection, no drain, no checkpoint.
			hs1.Close()
			wal1.Close() // release the logs for the successor stack
			hs1 = nil
			l2, err := net.Listen("tcp", addr)
			if err != nil {
				t.Fatalf("rebinding %s: %v", addr, err)
			}
			_, hs2, wal2, m2 := boot(t, l2, ckDir, walDir)
			defer func() { hs2.Close(); m2.Close(); wal2.Close() }()
		}
	}
	if err := <-sendErr; err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for seq := uint64(1); seq <= total; seq++ {
		if acked[seq] != 1 {
			t.Fatalf("seq %d acked %d times (want exactly 1); acks: %v", seq, acked[seq], acked)
		}
	}
	info, err := c.GetTenant(ctx, "re")
	if err != nil || info.Seq != total {
		t.Fatalf("final tenant info: %+v, %v", info, err)
	}
}

func TestRecvAfterCloseDrainsThenEOF(t *testing.T) {
	walMgr := wal.NewManager(t.TempDir(), wal.Options{})
	m := shard.New(shard.Options{Shards: 1, WAL: walMgr})
	srv := server.New(server.Options{Manager: m, CheckpointDir: t.TempDir(), WAL: walMgr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer m.Close()
	defer walMgr.Close()

	ctx := context.Background()
	c := New(ts.URL)
	if err := c.CreateTenant(ctx, "d", CreateTenantRequest{Streams: []string{"x", "y"}}); err != nil {
		t.Fatal(err)
	}
	st, err := c.OpenStream(ctx, "d", StreamOptions{Sequenced: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Send(ctx, []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- st.Close() }()
	got := 0
	for {
		_, err := st.Recv(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		got++
	}
	if got != 3 {
		t.Fatalf("drained %d acks, want 3", got)
	}
	if err := <-done; err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestCloseWithoutRecvDoesNotDeadlock: a caller that sends more rows than
// MaxInFlight ack-buffer slots and never consumes Recv must still be able
// to Close (overflow acks are dropped, not deadlocked on).
func TestCloseWithoutRecvDoesNotDeadlock(t *testing.T) {
	walMgr := wal.NewManager(t.TempDir(), wal.Options{})
	m := shard.New(shard.Options{Shards: 1, WAL: walMgr})
	srv := server.New(server.Options{Manager: m, CheckpointDir: t.TempDir(), WAL: walMgr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer m.Close()
	defer walMgr.Close()

	ctx := context.Background()
	c := New(ts.URL)
	if err := c.CreateTenant(ctx, "noread", CreateTenantRequest{Streams: []string{"x", "y"}}); err != nil {
		t.Fatal(err)
	}
	st, err := c.OpenStream(ctx, "noread", StreamOptions{Sequenced: true, MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 4 rows: 2 fill the ack buffer, the 3rd's delivery blocks on it, the
	// 4th occupies the second in-flight token — the exact overflow state
	// whose acks only Close's drop permission can unwedge. (More sends
	// would block in Send itself: that is backpressure working.)
	for i := 0; i < 4; i++ {
		sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err := st.Send(sctx, []float64{1, 2})
		cancel()
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- st.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked with unconsumed acks")
	}
}
