package client

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tkcm/internal/core"
	"tkcm/internal/server"
	"tkcm/internal/shard"
	"tkcm/internal/wal"
)

// boot assembles a full serving stack (shards + WAL + checkpoints) over the
// given directories and serves it on l.
func boot(t *testing.T, l net.Listener, ckDir, walDir string) (*server.Server, *http.Server, *wal.Manager, *shard.Manager) {
	t.Helper()
	walMgr := wal.NewManager(walDir, wal.Options{SyncInterval: time.Millisecond})
	m := shard.New(shard.Options{Shards: 2, WAL: walMgr})
	srv := server.New(server.Options{Manager: m, CheckpointDir: ckDir, WAL: walMgr})
	if _, err := srv.RestoreFromCheckpoints(context.Background()); err != nil {
		t.Fatalf("restore: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(l)
	return srv, hs, walMgr, m
}

func TestClientEndToEnd(t *testing.T) {
	walMgr := wal.NewManager(t.TempDir(), wal.Options{SyncInterval: time.Millisecond})
	m := shard.New(shard.Options{Shards: 2, WAL: walMgr})
	srv := server.New(server.Options{Manager: m, CheckpointDir: t.TempDir(), WAL: walMgr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer m.Close()
	defer walMgr.Close()

	ctx := context.Background()
	c := New(ts.URL)

	if h, err := c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("health: %+v, %v", h, err)
	}
	req := CreateTenantRequest{
		Streams: []string{"s", "r1", "r2", "r3"},
		Config:  &Config{K: 2, PatternLength: 3, D: 2, WindowLength: 32},
	}
	if err := c.CreateTenant(ctx, "e2e", req); err != nil {
		t.Fatalf("create: %v", err)
	}
	var apiErr *APIError
	if err := c.CreateTenant(ctx, "e2e", req); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: %v", err)
	}

	st, err := c.OpenStream(ctx, "e2e", StreamOptions{Sequenced: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	go func() {
		for i := 0; i < n; i++ {
			row := []float64{20 + float64(i%5), 19, 21, 20.5}
			if i > 20 {
				row[0] = math.NaN()
			}
			if err := st.Send(ctx, row); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		ack, err := st.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ack.Seq != uint64(i+1) {
			t.Fatalf("ack %d: seq %d, want %d", i, ack.Seq, i+1)
		}
		if len(ack.Values) != 4 {
			t.Fatalf("ack %d: %d values", i, len(ack.Values))
		}
		if i > 20 && (len(ack.Imputed) != 1 || ack.Imputed[0] != 0 || math.IsNaN(ack.Values[0])) {
			t.Fatalf("ack %d: imputed %v values %v", i, ack.Imputed, ack.Values)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	info, err := c.GetTenant(ctx, "e2e")
	if err != nil || info.Seq != n {
		t.Fatalf("get tenant: %+v, %v", info, err)
	}
	infos, err := c.ListTenants(ctx)
	if err != nil || len(infos) != 1 || infos[0].ID != "e2e" {
		t.Fatalf("list: %+v, %v", infos, err)
	}
	if nck, err := c.Checkpoint(ctx); err != nil || nck != 1 {
		t.Fatalf("checkpoint: %d, %v", nck, err)
	}
	var snap bytes.Buffer
	if sz, err := c.Snapshot(ctx, "e2e", &snap); err != nil || sz == 0 {
		t.Fatalf("snapshot: %d, %v", sz, err)
	}
	eng, err := core.RestoreEngine(&snap)
	if err != nil {
		t.Fatalf("restoring downloaded snapshot: %v", err)
	}
	if eng.Seq() != n {
		t.Fatalf("downloaded snapshot seq %d, want %d", eng.Seq(), n)
	}
	eng.Close()
	if s, err := c.Metrics(ctx); err != nil || !bytes.Contains([]byte(s), []byte("tkcm_wal_appends_total")) {
		t.Fatalf("metrics: %v\n%s", err, s)
	}
	if err := c.DeleteTenant(ctx, "e2e"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := c.GetTenant(ctx, "e2e"); err == nil {
		t.Fatal("get after delete succeeded")
	}
}

// TestStreamReconnectReplays hard-stops the HTTP server mid-stream (no
// graceful shutdown, no final checkpoint — the WAL is the only thing
// covering acked rows), boots a fresh stack over the same directories and
// the same address, and requires the sequenced stream to deliver exactly
// one ack per row with nothing lost.
func TestStreamReconnectReplays(t *testing.T) {
	ckDir, walDir := t.TempDir(), t.TempDir()
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	_, hs1, wal1, _ := boot(t, l1, ckDir, walDir)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := New("http://" + addr)
	if err := c.CreateTenant(ctx, "re", CreateTenantRequest{
		Streams: []string{"a", "b", "c"},
		Config:  &Config{K: 2, PatternLength: 3, D: 2, WindowLength: 64},
	}); err != nil {
		t.Fatalf("create: %v", err)
	}

	st, err := c.OpenStream(ctx, "re", StreamOptions{Sequenced: true, MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	const total = 60
	sendErr := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			row := []float64{float64(i), float64(2 * i), float64(3 * i)}
			if err := st.Send(ctx, row); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()

	acked := make(map[uint64]int)
	killAfter := 20
	for i := 0; i < total; i++ {
		ack, err := st.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		acked[ack.Seq]++
		if len(acked) == killAfter && hs1 != nil {
			// Hard-stop: abort every connection, no drain, no checkpoint.
			hs1.Close()
			wal1.Close() // release the logs for the successor stack
			hs1 = nil
			l2, err := net.Listen("tcp", addr)
			if err != nil {
				t.Fatalf("rebinding %s: %v", addr, err)
			}
			_, hs2, wal2, m2 := boot(t, l2, ckDir, walDir)
			defer func() { hs2.Close(); m2.Close(); wal2.Close() }()
		}
	}
	if err := <-sendErr; err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for seq := uint64(1); seq <= total; seq++ {
		if acked[seq] != 1 {
			t.Fatalf("seq %d acked %d times (want exactly 1); acks: %v", seq, acked[seq], acked)
		}
	}
	info, err := c.GetTenant(ctx, "re")
	if err != nil || info.Seq != total {
		t.Fatalf("final tenant info: %+v, %v", info, err)
	}
}

func TestRecvAfterCloseDrainsThenEOF(t *testing.T) {
	walMgr := wal.NewManager(t.TempDir(), wal.Options{})
	m := shard.New(shard.Options{Shards: 1, WAL: walMgr})
	srv := server.New(server.Options{Manager: m, CheckpointDir: t.TempDir(), WAL: walMgr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer m.Close()
	defer walMgr.Close()

	ctx := context.Background()
	c := New(ts.URL)
	if err := c.CreateTenant(ctx, "d", CreateTenantRequest{Streams: []string{"x", "y"}}); err != nil {
		t.Fatal(err)
	}
	st, err := c.OpenStream(ctx, "d", StreamOptions{Sequenced: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Send(ctx, []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- st.Close() }()
	got := 0
	for {
		_, err := st.Recv(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		got++
	}
	if got != 3 {
		t.Fatalf("drained %d acks, want 3", got)
	}
	if err := <-done; err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestSendRejectsInfinity: ±Inf is not representable on the wire (strconv
// would emit +Inf, which is not JSON) and the server would refuse the row
// anyway; Send must fail fast client-side instead of corrupting the NDJSON
// framing for every row batched after it.
func TestSendRejectsInfinity(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	ctx := context.Background()
	st, err := New(ts.URL).OpenStream(ctx, "t", StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Send(ctx, []float64{1, math.Inf(1)}); err == nil {
		t.Fatal("Send accepted +Inf")
	}
	if err := st.Send(ctx, []float64{math.Inf(-1)}); err == nil {
		t.Fatal("Send accepted -Inf")
	}
}

// TestCloseAfterCancelReportsUnacked: cancelling the stream's context with
// rows still in flight must surface ErrStreamBroken from Close — a nil
// return would tell the caller every row was flushed and durable.
func TestCloseAfterCancelReportsUnacked(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) // accept rows, never ack
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	st, err := New(ts.URL).OpenStream(ctx, "t", StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Send(context.Background(), []float64{1, 2}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	cancel()
	if err := st.Close(); !errors.Is(err, ErrStreamBroken) {
		t.Fatalf("Close after cancel with unacked rows: %v, want ErrStreamBroken", err)
	}
}

// TestPreStreamErrorHonorsRetryFlag: a retry-marked failure on the very
// first row arrives as an HTTP error status rather than an NDJSON line; the
// sequenced client must still treat it as reconnect-and-replay instead of
// failing terminally.
func TestPreStreamErrorHonorsRetryFlag(t *testing.T) {
	var attempts atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/tenants/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"id":"t","streams":["x","y"],"ticks":0,"seq":0}`)
	})
	mux.HandleFunc("POST /v1/tenants/{id}/ticks", func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		// Mirror the real handler: full duplex (so the response is not
		// stuck behind a drain of the still-streaming request body) and the
		// first row consumed before its commit fails.
		if err := http.NewResponseController(w).EnableFullDuplex(); err != nil {
			t.Errorf("full duplex: %v", err)
		}
		bufio.NewReader(r.Body).ReadString('\n')
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"tick 1 not durable: disk hiccup","retry":true}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ctx := context.Background()
	st, err := New(ts.URL).OpenStream(ctx, "t", StreamOptions{
		Sequenced: true, MaxAttempts: 3, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(ctx, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, rerr := st.Recv(ctx); rerr == nil {
		t.Fatal("Recv succeeded against a permanently failing server")
	}
	if got := attempts.Load(); got < 3 {
		t.Fatalf("connection attempts = %d, want MaxAttempts (3): pre-stream retry flag not honored", got)
	}
	st.Close()
}

// TestCloseWithoutRecvDoesNotDeadlock: a caller that sends more rows than
// MaxInFlight ack-buffer slots and never consumes Recv must still be able
// to Close (overflow acks are dropped, not deadlocked on).
func TestCloseWithoutRecvDoesNotDeadlock(t *testing.T) {
	walMgr := wal.NewManager(t.TempDir(), wal.Options{})
	m := shard.New(shard.Options{Shards: 1, WAL: walMgr})
	srv := server.New(server.Options{Manager: m, CheckpointDir: t.TempDir(), WAL: walMgr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer m.Close()
	defer walMgr.Close()

	ctx := context.Background()
	c := New(ts.URL)
	if err := c.CreateTenant(ctx, "noread", CreateTenantRequest{Streams: []string{"x", "y"}}); err != nil {
		t.Fatal(err)
	}
	st, err := c.OpenStream(ctx, "noread", StreamOptions{Sequenced: true, MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 4 rows: 2 fill the ack buffer, the 3rd's delivery blocks on it, the
	// 4th occupies the second in-flight token — the exact overflow state
	// whose acks only Close's drop permission can unwedge. (More sends
	// would block in Send itself: that is backpressure working.)
	for i := 0; i < 4; i++ {
		sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err := st.Send(sctx, []float64{1, 2})
		cancel()
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- st.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked with unconsumed acks")
	}
}

// TestStreamBatchCoalescing: a stream opened with Batch > 1 must deliver
// exactly the acks of an unbatched stream on the same rows — and the rows
// must actually travel as batch lines (visible in the server's metrics),
// since the producer runs far ahead of the connection.
func TestStreamBatchCoalescing(t *testing.T) {
	walMgr := wal.NewManager(t.TempDir(), wal.Options{SyncInterval: time.Millisecond})
	m := shard.New(shard.Options{Shards: 2, WAL: walMgr})
	srv := server.New(server.Options{Manager: m, CheckpointDir: t.TempDir(), WAL: walMgr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer m.Close()
	defer walMgr.Close()

	ctx := context.Background()
	c := New(ts.URL)
	req := CreateTenantRequest{
		Streams: []string{"s", "r1", "r2", "r3"},
		Config:  &Config{K: 2, PatternLength: 3, D: 2, WindowLength: 32},
	}
	for _, id := range []string{"bat", "row"} {
		if err := c.CreateTenant(ctx, id, req); err != nil {
			t.Fatalf("create %s: %v", id, err)
		}
	}

	const n = 200
	row := func(i int) []float64 {
		r := []float64{20 + math.Sin(float64(i)/3), 19 + math.Cos(float64(i)/5), 21, 20.5}
		if i > 20 && i%4 == 0 {
			r[0] = math.NaN()
		}
		return r
	}
	drive := func(id string, opts StreamOptions) []Ack {
		st, err := c.OpenStream(ctx, id, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Queue every row before consuming acks: the producer runs ahead, so
		// the batched stream has material to coalesce.
		for i := 0; i < n; i++ {
			if err := st.Send(ctx, row(i)); err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
		}
		acks := make([]Ack, 0, n)
		for i := 0; i < n; i++ {
			a, err := st.Recv(ctx)
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			acks = append(acks, a)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		return acks
	}
	batched := drive("bat", StreamOptions{Sequenced: true, Batch: 16, MaxInFlight: n})
	plain := drive("row", StreamOptions{Sequenced: true, MaxInFlight: n})

	for i := range plain {
		b, p := batched[i], plain[i]
		if b.Seq != p.Seq || b.Tick != p.Tick || b.Duplicate != p.Duplicate {
			t.Fatalf("ack %d: batched %+v, plain %+v", i, b, p)
		}
		if len(b.Values) != len(p.Values) {
			t.Fatalf("ack %d: %d values vs %d", i, len(b.Values), len(p.Values))
		}
		for j := range p.Values {
			if b.Values[j] != p.Values[j] {
				t.Fatalf("ack %d value %d: batched %v, plain %v", i, j, b.Values[j], p.Values[j])
			}
		}
	}
	mtx, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	for _, line := range bytes.Split([]byte(mtx), []byte("\n")) {
		if bytes.HasPrefix(line, []byte("tkcm_ticks_batched_total ")) {
			if _, err := fmtSscan(string(line[len("tkcm_ticks_batched_total "):]), &got); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
		}
	}
	if got == 0 {
		t.Fatal("no rows traveled as batch lines (tkcm_ticks_batched_total 0)")
	}
}

// fmtSscan keeps the fmt import local to this test's single use.
func fmtSscan(s string, v *uint64) (int, error) {
	u, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, err
	}
	*v = u
	return 1, nil
}
