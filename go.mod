module tkcm

go 1.24
