// Flights example: streaming dashboards for airborne departures. Airports in
// different time zones report per-minute counts; one feed goes dark for six
// hours and TKCM fills the dashboard in real time. The example also shows
// how the pattern length changes the recovery quality on shifted streams
// (the paper's Fig. 11/12 effect).
//
// Run with:
//
//	go run ./examples/flights
package main

import (
	"fmt"
	"log"

	"tkcm"
	"tkcm/internal/dataset"
	"tkcm/internal/stats"
	"tkcm/internal/timeseries"
)

func main() {
	frame := dataset.Flights(dataset.FlightsConfig{
		Airports: 6,
		Ticks:    7 * 1440, // one week at 1-minute sampling
		Seed:     3,
	})

	const target = "a0"
	gapStart := 6*1440 + 480 // day 7, 08:00 — mid morning wave
	gapLen := 360            // six hours dark

	truth := frame.ByName(target).EraseBlock(gapStart, gapLen)

	fmt.Println("feed a0 dark for 6h; recovery by pattern length:")
	fmt.Printf("%-8s %s\n", "l", "RMSE (#flights)")
	for _, l := range []int{1, 30, 60, 120} {
		cfg := tkcm.DefaultConfig()
		cfg.WindowLength = 5 * 1440
		cfg.PatternLength = l
		cfg.K = 4
		cfg.D = 3
		rec, err := recoverGap(frame, target, cfg, gapStart, gapLen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %.3f\n", l, stats.RMSE(truth, rec))
	}
	fmt.Println("\nlonger patterns disambiguate the time-zone shifts between airports;")
	fmt.Println("l = 1 matches raw counts and confuses morning with evening waves.")
}

// recoverGap imputes the gap tick by tick (continuous imputation) using the
// other airports as references, in dashboard order. The frame itself is not
// modified.
func recoverGap(frame *timeseries.Frame, target string, cfg tkcm.Config, gapStart, gapLen int) ([]float64, error) {
	work := frame.ByName(target).Clone()
	refs := make([][]float64, 0, cfg.D)
	for _, s := range frame.Series {
		if s.Name == target || len(refs) == cfg.D {
			continue
		}
		refs = append(refs, s.Values)
	}
	out := make([]float64, gapLen)
	for off := 0; off < gapLen; off++ {
		t := gapStart + off
		lo := t - cfg.WindowLength + 1
		if lo < 0 {
			lo = 0
		}
		refWins := make([][]float64, len(refs))
		for i, r := range refs {
			refWins[i] = r[lo : t+1]
		}
		res, err := tkcm.Impute(cfg, work.Values[lo:t+1], refWins)
		if err != nil {
			return nil, err
		}
		work.Values[t] = res.Value
		out[off] = res.Value
	}
	return out, nil
}
