// Serving example: run the tkcm-serve subsystem in-process — write-ahead
// log and checkpoints included — and drive it with the official Go client:
// create a tenant, stream ticks, and print the imputations that come back.
//
// This is the service-shaped version of examples/quickstart: the same
// phase-shifted streams, but the engine lives behind the sharded
// multi-tenant HTTP API (internal/server + internal/shard) and every
// acknowledged tick is crash-durable (internal/wal), exactly as a fleet of
// sensor gateways would use a deployed tkcm-serve.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"tkcm/client"
	"tkcm/internal/server"
	"tkcm/internal/shard"
	"tkcm/internal/wal"
)

const (
	period = 288 // one day of 5-minute ticks
	warm   = 2 * period
	live   = 48 // streamed live ticks, some with the monitored value lost
)

func value(stream, tick int) float64 {
	ph := 2 * math.Pi * float64(tick) / period
	shape := func(x float64) float64 { return math.Sin(x) + 0.4*math.Sin(2*x+0.7) }
	switch stream {
	case 0:
		return 20 + 5*shape(ph)
	case 1:
		return 15 + 4*shape(ph-2.1) // phase shifted: Pearson ≈ 0 against s
	default:
		return 18 + 6*shape(ph+1.3)
	}
}

func main() {
	ctx := context.Background()

	// 1. Boot the serving subsystem in-process: 2 shards behind the HTTP
	//    API, with checkpoints and a per-tenant write-ahead log so every
	//    acked tick would survive even a kill -9.
	slog.SetLogLoggerLevel(slog.LevelWarn)
	dir, err := os.MkdirTemp("", "tkcm-serving-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	walMgr := wal.NewManager(filepath.Join(dir, "wal"), wal.Options{SyncInterval: 2 * time.Millisecond})
	defer walMgr.Close()
	mgr := shard.New(shard.Options{Shards: 2, WAL: walMgr})
	srv := server.New(server.Options{
		Manager:       mgr,
		CheckpointDir: filepath.Join(dir, "checkpoints"),
		WAL:           walMgr,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 2. Create a tenant through the client: one monitored stream s, two
	//    phase-shifted references, a two-day window.
	c := client.New(ts.URL)
	err = c.CreateTenant(ctx, "plant-a", client.CreateTenantRequest{
		Streams: []string{"s", "r1", "r2"},
		Config:  &client.Config{K: 2, PatternLength: 36, D: 2, WindowLength: 2 * period},
		Refs:    map[string][]string{"s": {"r1", "r2"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant plant-a created on %s (WAL + checkpoints in %s)\n\n", ts.URL, dir)

	// 3. Open one sequenced tick stream. Sequenced means exactly-once: if
	//    the connection dropped, the client would reconnect and replay
	//    unacked rows, and the server would dedupe them by sequence number.
	st, err := c.OpenStream(ctx, "plant-a", client.StreamOptions{Sequenced: true})
	if err != nil {
		log.Fatal(err)
	}
	send := func(vals []float64) client.Ack {
		if err := st.Send(ctx, vals); err != nil {
			log.Fatal(err)
		}
		ack, err := st.Recv(ctx)
		if err != nil {
			log.Fatal(err)
		}
		return ack
	}

	// Warm the window with complete rows.
	for t := 0; t < warm; t++ {
		send([]float64{value(0, t), value(1, t), value(2, t)})
	}

	// 4. Live phase: the monitored sensor drops out every third tick; the
	//    service imputes it from the phase-shifted references. Every ack
	//    printed below is already on stable storage.
	fmt.Println("tick   truth    imputed  |err|   refs at tick")
	var worst float64
	for t := warm; t < warm+live; t++ {
		truth := value(0, t)
		vals := []float64{truth, value(1, t), value(2, t)}
		lost := t%3 == 0
		if lost {
			vals[0] = math.NaN() // NaN = missing on the wire (JSON null)
		}
		ack := send(vals)
		if !lost {
			continue
		}
		got := ack.Values[0]
		err := math.Abs(got - truth)
		if err > worst {
			worst = err
		}
		fmt.Printf("%5d  %7.3f  %7.3f  %5.3f   r1=%.3f r2=%.3f\n",
			ack.Tick, truth, got, err, vals[1], vals[2])
	}
	fmt.Printf("\nworst absolute error over %d imputations: %.4f\n", live/3, worst)

	// 5. Tear down: flush the stream, then shut the service down (final
	//    checkpoint + drained shards).
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}
