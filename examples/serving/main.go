// Serving example: run the tkcm-serve subsystem in-process, stream NDJSON
// ticks to it over HTTP, and print the imputations it sends back.
//
// This is the service-shaped version of examples/quickstart: the same
// phase-shifted streams, but the engine lives behind the sharded
// multi-tenant HTTP API (internal/server + internal/shard) instead of being
// called as a library, exactly as a fleet of sensor gateways would use a
// deployed tkcm-serve.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"

	"tkcm/internal/server"
	"tkcm/internal/shard"
)

const (
	period = 288 // one day of 5-minute ticks
	warm   = 2 * period
	live   = 48 // streamed live ticks, some with the monitored value lost
)

func value(stream, tick int) float64 {
	ph := 2 * math.Pi * float64(tick) / period
	shape := func(x float64) float64 { return math.Sin(x) + 0.4*math.Sin(2*x+0.7) }
	switch stream {
	case 0:
		return 20 + 5*shape(ph)
	case 1:
		return 15 + 4*shape(ph-2.1) // phase shifted: Pearson ≈ 0 against s
	default:
		return 18 + 6*shape(ph+1.3)
	}
}

func main() {
	// 1. Boot the serving subsystem in-process: 2 shards behind the HTTP API.
	slog.SetLogLoggerLevel(slog.LevelWarn)
	mgr := shard.New(shard.Options{Shards: 2})
	srv := server.New(server.Options{Manager: mgr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 2. Create a tenant: one monitored stream s, two phase-shifted
	//    references, a two-day window.
	create := fmt.Sprintf(`{
		"streams": ["s", "r1", "r2"],
		"config": {"k": 2, "pattern_length": 36, "d": 2, "window_length": %d},
		"refs": {"s": ["r1", "r2"]}
	}`, 2*period)
	resp, err := http.Post(ts.URL+"/v1/tenants/plant-a", "application/json", strings.NewReader(create))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		log.Fatalf("create tenant: %s: %s", resp.Status, b)
	}
	resp.Body.Close()
	fmt.Printf("tenant plant-a created on %s\n\n", ts.URL)

	// 3. Open one long-lived NDJSON tick stream and drive it in lock-step:
	//    write a row, read the completed row.
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/tenants/plant-a/ticks", pr)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	respc := make(chan *http.Response, 1)
	go func() {
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		respc <- r
	}()
	enc := json.NewEncoder(pw)

	type tickIn struct {
		Values []*f64 `json:"values"`
	}
	type tickOut struct {
		Tick    int       `json:"tick"`
		Values  []float64 `json:"values"`
		Imputed []int     `json:"imputed"`
	}
	var sc *bufio.Scanner
	var body io.ReadCloser
	send := func(vals []*f64) tickOut {
		if err := enc.Encode(tickIn{Values: vals}); err != nil {
			log.Fatal(err)
		}
		if sc == nil {
			r := <-respc
			body = r.Body
			sc = bufio.NewScanner(r.Body)
		}
		if !sc.Scan() {
			log.Fatalf("stream ended early: %v", sc.Err())
		}
		var out tickOut
		if err := json.Unmarshal(sc.Bytes(), &out); err != nil {
			log.Fatalf("bad line %q: %v", sc.Bytes(), err)
		}
		return out
	}

	// Warm the window with complete rows.
	for t := 0; t < warm; t++ {
		send(row(value(0, t), value(1, t), value(2, t)))
	}

	// 4. Live phase: the monitored sensor drops out every third tick; the
	//    service imputes it from the phase-shifted references.
	fmt.Println("tick   truth    imputed  |err|   refs at tick")
	var worst float64
	for t := warm; t < warm+live; t++ {
		truth := value(0, t)
		vals := row(truth, value(1, t), value(2, t))
		lost := t%3 == 0
		if lost {
			vals[0] = nil // NDJSON null = missing
		}
		out := send(vals)
		if !lost {
			continue
		}
		got := out.Values[0]
		err := math.Abs(got - truth)
		if err > worst {
			worst = err
		}
		fmt.Printf("%5d  %7.3f  %7.3f  %5.3f   r1=%.3f r2=%.3f\n",
			out.Tick, truth, got, err, *vals[1], *vals[2])
	}
	fmt.Printf("\nworst absolute error over %d imputations: %.4f\n", live/3, worst)

	// 5. Tear down: close the stream, then the server.
	pw.Close()
	if body != nil {
		io.Copy(io.Discard, body)
		body.Close()
	}
	srv.Shutdown(req.Context())
}

// f64 aliases float64 for pointer-literal brevity.
type f64 = float64

func row(vs ...float64) []*f64 {
	out := make([]*f64, len(vs))
	for i := range vs {
		v := vs[i]
		out[i] = &v
	}
	return out
}
