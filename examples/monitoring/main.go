// Monitoring example: using the ε diagnostic (Def. 5) to decide whether an
// imputation is trustworthy. TKCM reports, for every recovered value, the
// spread ε of the target series at the k chosen anchor points. Small ε means
// the references pattern-determine the target at this tick — the consistency
// precondition of Lemma 5.2 — while large ε flags situations the window has
// not seen often enough, so a downstream alerting system (the paper's frost
// warnings) can route those values to a human instead of acting on them.
//
// Run with:
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"tkcm"
	"tkcm/internal/dataset"
)

func main() {
	frame := dataset.SBR1d(dataset.SBRConfig{
		Stations: 6,
		Ticks:    20 * 288,
		Seed:     3,
		NoiseSD:  0.25,
	})

	cfg := tkcm.DefaultConfig()
	cfg.WindowLength = 14 * 288
	cfg.D = 3

	refs := map[string]tkcm.ReferenceSet{
		"s0": {Stream: "s0", Candidates: []string{"s1", "s2", "s3", "s4", "s5"}},
	}
	eng, err := tkcm.NewEngine(cfg, frame.Names(), refs)
	if err != nil {
		log.Fatal(err)
	}

	// Scatter individual sensor dropouts through the last three days.
	failFrom := frame.Len() - 3*288
	var observations []obs
	for t := 0; t < frame.Len(); t++ {
		row := frame.Row(t)
		truth := row[0]
		missing := t >= failFrom && t%3 == 0
		if missing {
			row[0] = tkcm.Missing
		}
		out, results, err := eng.Tick(row)
		if err != nil {
			log.Fatal(err)
		}
		if missing && results[0] != nil {
			observations = append(observations, obs{
				eps: results[0].Epsilon,
				err: math.Abs(out[0] - truth),
			})
		}
	}

	// Split imputations by their ε and compare the actual errors: ε is only
	// useful as a trust signal if low-ε imputations really are better.
	sort.Slice(observations, func(i, j int) bool { return observations[i].eps < observations[j].eps })
	half := len(observations) / 2
	trusted, flagged := observations[:half], observations[half:]

	fmt.Printf("imputations: %d  (ε median split at %.3f °C)\n\n", len(observations), observations[half].eps)
	fmt.Printf("%-28s %-10s %s\n", "group", "mean |err|", "p90 |err|")
	fmt.Printf("%-28s %-10s %s\n", "-----", "----------", "---------")
	fmt.Printf("%-28s %-10.3f %.3f\n", "trusted  (low ε, auto-use)", meanErr(trusted), p90(trusted))
	fmt.Printf("%-28s %-10.3f %.3f\n", "flagged  (high ε, review)", meanErr(flagged), p90(flagged))
	fmt.Println("\nlow-ε imputations are measurably more reliable: ε is a usable")
	fmt.Println("per-value confidence signal, not just a proof device (Lemma 5.2).")
}

// obs pairs one imputation's ε diagnostic with its realized absolute error.
type obs struct {
	eps float64
	err float64
}

func meanErr(xs []obs) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, o := range xs {
		sum += o.err
	}
	return sum / float64(len(xs))
}

func p90(xs []obs) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	errs := make([]float64, len(xs))
	for i, o := range xs {
		errs[i] = o.err
	}
	sort.Float64s(errs)
	return errs[int(0.9*float64(len(errs)-1))]
}
