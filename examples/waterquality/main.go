// Water-quality example: the Chlorine scenario. Chlorine sensors at network
// junctions see the source's daily dosing pattern at junction-specific
// delays (phase shifts). A sensor drops out for a long block; TKCM recovers
// it and the example compares against linear interpolation and kNNI — the
// simple methods a practitioner would try first.
//
// Run with:
//
//	go run ./examples/waterquality
package main

import (
	"fmt"
	"log"

	"tkcm"
	"tkcm/internal/baseline"
	"tkcm/internal/dataset"
	"tkcm/internal/stats"
	"tkcm/internal/timeseries"
)

func main() {
	frame := dataset.Chlorine(dataset.ChlorineConfig{
		Junctions:     12,
		Ticks:         10 * 288, // 10 days at 5-minute sampling
		Seed:          7,
		MaxDelayTicks: 288,
	})

	const target = "j5"
	gapStart := 8 * 288
	gapLen := 288 // one full day missing

	// Keep the ground truth, then erase.
	truth, err := erase(frame, target, gapStart, gapLen)
	if err != nil {
		log.Fatal(err)
	}

	// --- TKCM ---
	cfg := tkcm.DefaultConfig()
	cfg.WindowLength = 7 * 288
	cfg.PatternLength = 108 // 9-hour pattern
	cfg.K = 5
	cfg.D = 3
	tkcmOut, err := imputeContinuously(frame, target, cfg, gapStart, gapLen)
	if err != nil {
		log.Fatal(err)
	}

	// --- Baselines on the same gap ---
	s := frame.ByName(target)
	interp := baseline.Interpolate(s.Values)[gapStart : gapStart+gapLen]

	data := make([][]float64, frame.Len())
	for t := range data {
		data[t] = frame.Row(t)
	}
	knniAll := baseline.KNNI(baseline.KNNIConfig{K: 5, Weighted: true}, data, frame.IndexOf(target))
	knni := knniAll[gapStart : gapStart+gapLen]

	fmt.Printf("junctions: %d, gap: 1 day in %s\n\n", frame.Width(), target)
	fmt.Printf("%-22s RMSE (mg/L)\n", "method")
	fmt.Printf("%-22s -----------\n", "------")
	fmt.Printf("%-22s %.5f\n", "TKCM (l=108, k=5, d=3)", stats.RMSE(truth, tkcmOut))
	fmt.Printf("%-22s %.5f\n", "linear interpolation", stats.RMSE(truth, interp))
	fmt.Printf("%-22s %.5f\n", "kNNI (k=5, weighted)", stats.RMSE(truth, knni))
	fmt.Println("\nnote: kNNI scans the full matrix per tick and needs the other junctions")
	fmt.Println("complete; TKCM streams with a fixed window and tolerates concurrent gaps.")
}

// erase removes [start, start+length) of the named series and returns the
// removed ground truth.
func erase(frame *timeseries.Frame, name string, start, length int) ([]float64, error) {
	s := frame.ByName(name)
	if s == nil {
		return nil, fmt.Errorf("unknown series %q", name)
	}
	return s.EraseBlock(start, length), nil
}

// imputeContinuously recovers the gap in stream order with one TKCM call per
// missing tick, mirroring the paper's continuous setting. It does not modify
// the frame.
func imputeContinuously(frame *timeseries.Frame, target string, cfg tkcm.Config, gapStart, gapLen int) ([]float64, error) {
	work := frame.ByName(target).Clone()
	histories := make(map[string][]float64, frame.Width())
	for _, s := range frame.Series {
		histories[s.Name] = s.Values[:gapStart]
	}
	ranked := tkcm.RankReferences(target, histories)
	refs := make([][]float64, cfg.D)
	for i := 0; i < cfg.D; i++ {
		refs[i] = frame.ByName(ranked.Candidates[i]).Values
	}
	out := make([]float64, gapLen)
	for off := 0; off < gapLen; off++ {
		t := gapStart + off
		lo := t - cfg.WindowLength + 1
		if lo < 0 {
			lo = 0
		}
		refWins := make([][]float64, len(refs))
		for i, r := range refs {
			refWins[i] = r[lo : t+1]
		}
		res, err := tkcm.Impute(cfg, work.Values[lo:t+1], refWins)
		if err != nil {
			return nil, err
		}
		work.Values[t] = res.Value
		out[off] = res.Value
	}
	return out, nil
}
