// Weather-station example: the paper's motivating SBR scenario. A network of
// weather stations streams 5-minute temperatures; one station's sensor fails
// for a day and TKCM imputes the gap continuously from phase-shifted
// neighbouring stations, using the streaming Engine API.
//
// Run with:
//
//	go run ./examples/weather
package main

import (
	"fmt"
	"log"
	"math"

	"tkcm"
	"tkcm/internal/dataset"
	"tkcm/internal/stats"
)

func main() {
	// 20 days of 5-minute data from 6 stations; each station's clock is
	// shifted by up to a day against the others (the SBR-1d construction).
	frame := dataset.SBR1d(dataset.SBRConfig{
		Stations: 6,
		Ticks:    20 * 288,
		Seed:     42,
		NoiseSD:  0.25,
	})

	cfg := tkcm.DefaultConfig()
	cfg.WindowLength = 14 * 288 // two-week streaming window
	cfg.PatternLength = 72      // 6-hour pattern
	cfg.D = 3

	// The failing sensor and its expert-provided candidate references
	// (nearby stations, best first).
	refs := map[string]tkcm.ReferenceSet{
		"s0": {Stream: "s0", Candidates: []string{"s1", "s2", "s3", "s4", "s5"}},
	}
	eng, err := tkcm.NewEngine(cfg, frame.Names(), refs)
	if err != nil {
		log.Fatal(err)
	}

	// The sensor fails for one day near the end of the stream.
	failFrom := frame.Len() - 2*288
	failTo := failFrom + 288

	var truth, imputed []float64
	for t := 0; t < frame.Len(); t++ {
		row := frame.Row(t)
		if t >= failFrom && t < failTo {
			truth = append(truth, row[0])
			row[0] = tkcm.Missing
		}
		out, _, err := eng.Tick(row)
		if err != nil {
			log.Fatal(err)
		}
		if t >= failFrom && t < failTo {
			imputed = append(imputed, out[0])
		}
	}

	fmt.Printf("stations       : %d, streamed %d ticks (%d days)\n",
		frame.Width(), frame.Len(), frame.Len()/288)
	fmt.Printf("sensor failure : station s0, ticks %d..%d (1 day)\n", failFrom, failTo-1)
	fmt.Printf("imputations    : %d (cold-start fills: %d)\n",
		eng.Stats.Imputations, eng.Stats.ColdStartFills)
	fmt.Printf("RMSE           : %.3f °C\n", stats.RMSE(truth, imputed))
	fmt.Printf("MAE            : %.3f °C\n", stats.MAE(truth, imputed))

	// Show a few sample points across the gap.
	fmt.Println("\n  tick   truth   imputed")
	for i := 0; i < len(truth); i += 48 {
		fmt.Printf("  %4d  %6.2f  %8.2f\n", failFrom+i, truth[i], imputed[i])
	}
	worst := 0.0
	for i := range truth {
		if e := math.Abs(truth[i] - imputed[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("\nworst single-tick error: %.3f °C\n", worst)
}
