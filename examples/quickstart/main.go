// Quickstart: impute a missing value in a stream with two phase-shifted
// reference streams — the situation linear methods cannot handle and TKCM is
// built for.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"tkcm"
)

func main() {
	const (
		period = 288 // one day of 5-minute ticks
		n      = 5 * period
	)

	// s is the stream we monitor; r1 and r2 are reference streams that are
	// phase shifted against s (Pearson correlation ≈ 0), e.g. sensors
	// downstream of the same physical process.
	s := make([]float64, n)
	r1 := make([]float64, n)
	r2 := make([]float64, n)
	for i := range s {
		ph := 2 * math.Pi * float64(i) / period
		shape := func(x float64) float64 { return math.Sin(x) + 0.4*math.Sin(2*x+0.7) }
		s[i] = 20 + 5*shape(ph)
		r1[i] = 15 + 4*shape(ph-2.1) // shifted by ~2.4 h
		r2[i] = 18 + 6*shape(ph+1.3) // shifted the other way
	}

	// The newest measurement of s is lost.
	truth := s[n-1]
	s[n-1] = tkcm.Missing

	cfg := tkcm.DefaultConfig()
	cfg.WindowLength = n   // keep the whole history
	cfg.PatternLength = 48 // 4-hour pattern
	cfg.K = 3
	cfg.D = 2

	res, err := tkcm.Impute(cfg, s, [][]float64{r1, r2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("true value      : %.3f\n", truth)
	fmt.Printf("imputed value   : %.3f\n", res.Value)
	fmt.Printf("absolute error  : %.4f\n", math.Abs(res.Value-truth))
	fmt.Printf("anchor ticks    : %v\n", res.Anchors)
	fmt.Printf("anchor values   : %v\n", round3(res.AnchorValues))
	fmt.Printf("ε (Def. 5)      : %.4f — pattern-determining: %v\n",
		res.Epsilon, res.PatternDetermining(0.1))
}

func round3(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = math.Round(v*1000) / 1000
	}
	return out
}
