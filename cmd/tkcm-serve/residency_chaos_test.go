package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"tkcm/client"
	"tkcm/internal/audit"
)

// scrapeCounter fetches /metrics and returns the named (unlabeled) counter.
// A degraded server answers 503 but still writes the body, so the scrape
// reads it either way.
func scrapeCounter(t *testing.T, addr, name string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scraping metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.e+-]+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in /metrics", name)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("metric %s: parsing %q: %v", name, m[1], err)
	}
	return v
}

// TestHardKillDuringResidencyChurn is the chaos acceptance test for the
// residency tier: 12 tenants share a server capped at 3 resident engines, so
// a skewed (hot-head, long-tail) load keeps engines constantly parking and
// hydrating, while a churn goroutine walks tenants between shards. The
// process is SIGKILLed mid-storm — evictions, hydrations, and possibly a
// migration in flight — and restarted over the same directories. Every acked
// tick of every tenant must survive exactly once, every tenant must land on
// exactly one shard, hydrations must be observed after the restart (the storm
// really exercised the tier), and the offline integrity audit must prove
// durability through every ack.
func TestHardKillDuringResidencyChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	args := []string{
		"-addr", addr,
		"-shards", "2",
		"-checkpoint-dir", dir + "/ck",
		"-wal-dir", dir + "/wal",
		"-wal-sync", "1ms",
		// Recovery and every hydration must come from the base image plus the
		// WAL alone — no periodic checkpoint narrows the replayed tail.
		"-checkpoint-every", "1h",
		"-resident-engines", "3",
	}
	proc := spawnServe(t, args)

	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()
	c := client.New("http://" + addr)

	const nTenants = 12
	const width = 4
	cfg := &client.Config{K: 2, PatternLength: 3, D: 2, WindowLength: 64}
	ids := make([]string, nTenants)
	totals := make([]int, nTenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("rc-%02d", i)
		// Zipfian-ish skew: tenant 0 is hot, the tail barely ticks — cold
		// tenants park and must hydrate when their occasional tick arrives.
		totals[i] = 240 / (i + 1)
		if totals[i] < 20 {
			totals[i] = 20
		}
		if err := c.CreateTenant(ctx, ids[i], client.CreateTenantRequest{
			Streams: []string{"s", "r1", "r2", "r3"},
			Config:  cfg,
		}); err != nil {
			t.Fatalf("create %s: %v", ids[i], err)
		}
	}

	// One sequenced stream per tenant; a shared ack counter triggers the kill
	// from a dedicated goroutine so no worker ever owns process lifecycle.
	var ackTotal atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, nTenants)
	ackedBy := make([]map[uint64]int, nTenants)
	for i := range ids {
		ackedBy[i] = make(map[uint64]int)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.OpenStream(ctx, ids[i], client.StreamOptions{Sequenced: true, MaxInFlight: 8})
			if err != nil {
				errc <- fmt.Errorf("%s: open stream: %w", ids[i], err)
				return
			}
			sendErr := make(chan error, 1)
			go func() {
				for n := 1; n <= totals[i]; n++ {
					if err := st.Send(ctx, rowAt(n, width)); err != nil {
						sendErr <- fmt.Errorf("%s: send %d: %w", ids[i], n, err)
						return
					}
				}
				sendErr <- nil
			}()
			for len(ackedBy[i]) < totals[i] {
				ack, err := st.Recv(ctx)
				if err != nil {
					errc <- fmt.Errorf("%s: recv after %d acks: %w", ids[i], len(ackedBy[i]), err)
					return
				}
				ackedBy[i][ack.Seq]++
				ackTotal.Add(1)
			}
			if err := <-sendErr; err != nil {
				errc <- err
				return
			}
			if err := st.Close(); err != nil {
				errc <- fmt.Errorf("%s: close: %w", ids[i], err)
			}
		}(i)
	}

	// Migration churn: walk tenants round-robin between the shards so the
	// SIGKILL can land with a move in flight — and so migrations race
	// evictions and hydrations the whole run. Errors (server down, tenant
	// mid-anything) are expected; the loop just keeps going.
	churnStop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-churnStop:
				return
			case <-time.After(3 * time.Millisecond):
			}
			mctx, mcancel := context.WithTimeout(ctx, 5*time.Second)
			// i and i/nTenants have independent parities, so every tenant
			// alternates between both shards across rounds.
			c.MigrateTenant(mctx, ids[i%nTenants], (i/nTenants)%2)
			mcancel()
		}
	}()

	// The killer: once a third of the expected acks have flowed — the cap is
	// long since saturated and hydrations are happening — SIGKILL and
	// restart. No drain, no final checkpoint, no handler.
	grandTotal := 0
	for _, n := range totals {
		grandTotal += n
	}
	killAt := int64(grandTotal / 3)
	killDone := make(chan struct{})
	var killedAt int64
	go func() {
		defer close(killDone)
		for ackTotal.Load() < killAt {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
		if err := proc.Process.Kill(); err != nil {
			t.Error(err)
			return
		}
		killedAt = ackTotal.Load()
		proc.Wait()
		proc = spawnServe(t, args)
	}()

	wg.Wait()
	close(churnStop)
	<-churnDone
	<-killDone
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if killedAt >= int64(grandTotal) {
		t.Fatalf("SIGKILL landed after all %d acks — the crash never interrupted the storm", grandTotal)
	}
	for i := range ids {
		for seq := uint64(1); seq <= uint64(totals[i]); seq++ {
			if ackedBy[i][seq] != 1 {
				t.Fatalf("%s seq %d acked %d times, want exactly 1", ids[i], seq, ackedBy[i][seq])
			}
		}
	}

	// The restart re-hosted all 12 tenants over a 3-engine budget, so the
	// post-kill load must have hydrated — the storm provably exercised the
	// residency tier on both sides of the crash.
	if hyd := scrapeCounter(t, addr, "tkcm_engine_hydrations_total"); hyd == 0 {
		t.Fatal("no hydrations after restart: the chaos run never exercised the residency tier")
	}
	if parked := scrapeCounter(t, addr, "tkcm_engines_parked"); parked == 0 {
		t.Fatal("no tenants parked after the run despite 12 tenants over a 3-engine budget")
	}

	// Every tenant hosted exactly once, at the sequence its acks reached.
	tenants, err := c.ListTenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hosted := make(map[string]int)
	for _, info := range tenants {
		hosted[info.ID]++
	}
	for i, id := range ids {
		if hosted[id] != 1 {
			t.Fatalf("tenant %s hosted %d times after recovery, want exactly 1", id, hosted[id])
		}
		info, err := c.GetTenant(ctx, id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if info.Seq != uint64(totals[i]) {
			t.Fatalf("%s seq after recovery = %d, want %d", id, info.Seq, totals[i])
		}
	}

	// Graceful goodbye, then the offline audit must prove durability through
	// every tenant's last ack — same proof tkcm-verify prints.
	proc.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- proc.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		proc.Process.Kill()
		t.Fatal("restarted server did not shut down on SIGTERM")
	}
	results, err := audit.All(dir+"/ck", dir+"/wal", nil)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	byTenant := make(map[string]audit.Result, len(results))
	for _, res := range results {
		byTenant[res.Tenant] = res
	}
	for i, id := range ids {
		res, ok := byTenant[id]
		if !ok {
			t.Fatalf("audit found no tenant %q", id)
		}
		if res.Err != nil {
			t.Fatalf("audit of %s after hard kill: %v", id, res.Err)
		}
		if res.Report.DurableThrough < uint64(totals[i]) {
			t.Fatalf("%s: audit proves durable through %d, want >= %d", id, res.Report.DurableThrough, totals[i])
		}
	}
}
