// Command tkcm-serve runs the sharded multi-tenant imputation service: the
// TKCM streaming engine (internal/core) behind the shard manager
// (internal/shard) and the HTTP/NDJSON API (internal/server).
//
// Usage:
//
//	tkcm-serve -addr :8080 -shards 8 -checkpoint-dir /var/lib/tkcm
//
// Create a tenant and stream ticks:
//
//	curl -X POST localhost:8080/v1/tenants/plant-a -d '{
//	    "streams": ["s", "r1", "r2", "r3"],
//	    "config": {"k": 5, "pattern_length": 72, "d": 3, "window_length": 4032}}'
//	printf '%s\n' '{"values": [21.3, null, 19.8, 20.1]}' |
//	    curl -sN -X POST --data-binary @- localhost:8080/v1/tenants/plant-a/ticks
//
// With -checkpoint-dir set, every tenant's engine is snapshotted
// periodically and on shutdown, and restored on the next start, so a
// restart resumes imputation where it left off. Tenant placement is
// governed by a persisted routing table (<checkpoint-dir>/routing.tkcmrt):
// tenants can be migrated between shards live (POST
// /v1/tenants/{id}/migrate, or automatically with -rebalance-interval),
// and -shards may grow across restarts without rerouting existing tenants. Adding -wal-dir makes the
// service crash-durable: every tick is write-ahead-logged and acknowledged
// only after its group commit (-wal-sync) reaches stable storage, and
// recovery replays the log on top of the newest checkpoint — a kill -9
// mid-stream loses zero acknowledged ticks. SIGINT/SIGTERM trigger a
// graceful shutdown: the HTTP server drains in-flight tick streams, a final
// checkpoint is written, and the shards close their engines.
//
// -resident-engines (or -resident-bytes) enables the tiered residency
// engine: only that many tenant engines stay in memory, and colder tenants
// park on disk as their checkpoint plus WAL tail — eviction writes nothing —
// until their next tick hydrates them back. This lets one process host far
// more tenants than fit in RAM; it requires both -wal-dir and
// -checkpoint-dir.
//
// -integrity-key-file keys the WAL's tamper-evident layer (Merkle roots,
// signed commit frames and head files); audit the directories offline with
// tkcm-verify. -follow turns the process into an asynchronous follower that
// replicates another server's checkpoints and WAL (verifying every byte)
// instead of serving writes; promote it to primary with SIGHUP or
// POST /v1/promote.
//
// See docs/API.md for the full HTTP/NDJSON reference (including the
// tick-stream ack protocol and the durability contract) and
// docs/OPERATIONS.md for metrics, integrity auditing, and failover.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"tkcm/internal/server"
	"tkcm/internal/shard"
	"tkcm/internal/wal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "tkcm-serve:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until ctx is cancelled, then shuts down
// gracefully. ready, when non-nil, receives the bound listen address once
// the server accepts connections (used by tests and the serving example).
func run(ctx context.Context, args []string, ready func(net.Addr)) error {
	fs := flag.NewFlagSet("tkcm-serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "HTTP listen address")
		shards     = fs.Int("shards", 4, "engine shards (single-goroutine tenant hosts); may grow across restarts — the routing table keeps existing tenants in place")
		queue      = fs.Int("queue", 64, "bounded request queue length per shard")
		ckDir      = fs.String("checkpoint-dir", "", "directory for tenant snapshots (empty = no persistence)")
		ckEvery    = fs.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval")
		walDir     = fs.String("wal-dir", "", "directory for per-tenant write-ahead logs (empty = acks are not crash-durable; requires -checkpoint-dir)")
		walSync    = fs.Duration("wal-sync", 2*time.Millisecond, "WAL group-commit interval (0 = fsync every tick)")
		walSegment = fs.Int64("wal-segment-bytes", 64<<20, "WAL segment rotation threshold")
		keyFile    = fs.String("integrity-key-file", "", "file holding the WAL integrity key (HMACs commit frames, head files, and replication manifests); empty = tamper-evidence without authenticity")
		follow     = fs.String("follow", "", "base URL of a primary to follow (e.g. http://primary:8080): replicate its checkpoints and WAL instead of serving writes, until promoted via SIGHUP or POST /v1/promote; requires -wal-dir and the primary's integrity key")
		followInt  = fs.Duration("follow-interval", 2*time.Second, "follower pull period")
		rebalance  = fs.Duration("rebalance-interval", 0, "load-aware rebalancer period: migrate at most one tenant off the hottest shard per interval (0 = disabled)")
		resEngines = fs.Int("resident-engines", 0, "cap on tenant engines kept in memory across all shards (0 = unlimited); cold tenants park as checkpoint + WAL tail and hydrate on their next tick; requires -wal-dir and -checkpoint-dir")
		resBytes   = fs.Int64("resident-bytes", 0, "cap on the estimated in-memory engine footprint in bytes, same parking behavior (0 = unlimited); requires -wal-dir and -checkpoint-dir")
		drainGrace = fs.Duration("drain-grace", 15*time.Second, "graceful shutdown budget for in-flight requests")
		logLevel   = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		logFormat  = fs.String("log-format", "text", "log output format: text or json")
		slowTick   = fs.Duration("slow-tick-threshold", 0, "log a structured stage-breakdown trace for every tick whose end-to-end ack latency breaches this (0 = disabled; histograms stay on regardless)")
		sampleN    = fs.Int("trace-sample", 0, "additionally trace a deterministic 1-in-N sample of all ticks (0 = disabled)")
		sampleSeed = fs.Uint64("trace-sample-seed", 0, "fixes the trace sampler's phase for reproducible selections")
		debugAddr  = fs.String("debug-addr", "", "opt-in diagnostics listen address (e.g. 127.0.0.1:6060) serving /debug/pprof/ and /v1/debug/tenants; empty = no debug listener. Bind to loopback: the tree is unauthenticated")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := buildLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(log)

	key, err := wal.LoadKeyFile(*keyFile)
	if err != nil {
		return err
	}
	var walMgr *wal.Manager
	if *walDir != "" {
		if *ckDir == "" {
			return errors.New("-wal-dir requires -checkpoint-dir (the log replays on top of checkpoints)")
		}
		walMgr = wal.NewManager(*walDir, wal.Options{SyncInterval: *walSync, SegmentBytes: *walSegment, Key: key})
		defer walMgr.Close()
	}
	if *follow != "" && walMgr == nil {
		return errors.New("-follow requires -wal-dir and -checkpoint-dir (replication transports the write-ahead log and checkpoints)")
	}
	// With persistence, the tenant→shard routing table lives next to the
	// checkpoints and survives restarts: -shards may grow (existing tenants
	// stay put, new shards fill via migration/rebalancing), and shrinking is
	// refused while any tenant still routes to a doomed shard.
	var routing *shard.Table
	if *ckDir != "" {
		var err error
		routing, err = shard.OpenTable(filepath.Join(*ckDir, "routing.tkcmrt"), *shards)
		if err != nil {
			return fmt.Errorf("opening routing table: %w", err)
		}
	}
	shardOpts := shard.Options{Shards: *shards, QueueLen: *queue, Routing: routing, WAL: walMgr}
	if *resEngines > 0 || *resBytes > 0 {
		// The residency tier needs both halves of the durable state it parks
		// tenants onto: the checkpoint the hydrator restores and the WAL tail
		// that replays on top of it. Without the WAL, evicting a ticked
		// tenant would discard acked rows only its in-memory engine held.
		if walMgr == nil {
			return errors.New("-resident-engines/-resident-bytes require -wal-dir and -checkpoint-dir (parked tenants rebuild from checkpoint + WAL tail)")
		}
		shardOpts.Hydrate = server.CheckpointHydrator(*ckDir)
		shardOpts.Parkable = server.CheckpointParkable(*ckDir)
		shardOpts.ResidentEngines = *resEngines
		shardOpts.ResidentBytes = *resBytes
	}
	m := shard.New(shardOpts)
	srv := server.New(server.Options{
		Manager:            m,
		CheckpointDir:      *ckDir,
		CheckpointInterval: *ckEvery,
		WAL:                walMgr,
		RebalanceInterval:  *rebalance,
		FollowURL:          *follow,
		FollowInterval:     *followInt,
		Log:                log,
		SlowTickThreshold:  *slowTick,
		TraceSampleEvery:   *sampleN,
		TraceSampleSeed:    *sampleSeed,
	})
	if *follow != "" {
		// Follower: no restore and no checkpoint loop until promotion — the
		// data directories belong to the replication puller. SIGHUP promotes
		// (as does POST /v1/promote).
		srv.StartFollower()
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				log.Info("SIGHUP received; promoting to primary")
				if err := srv.Promote(context.Background()); err != nil {
					log.Error("promotion failed; retry with SIGHUP or POST /v1/promote", "err", err)
				}
			}
		}()
		log.Info("following primary", "primary", *follow, "interval", *followInt)
	} else {
		if *ckDir != "" {
			n, err := srv.RestoreFromCheckpoints(ctx)
			if err != nil {
				return fmt.Errorf("restoring checkpoints: %w", err)
			}
			log.Info("checkpoint restore", "dir", *ckDir, "tenants", n)
		}
		srv.StartCheckpointLoop()
		srv.StartRebalancer()
	}

	// The diagnostics tree (pprof, per-tenant debug listing) lives on its own
	// listener so it never shares exposure with the public API.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		ds := &http.Server{Handler: srv.DebugHandler()}
		defer ds.Close()
		go func() {
			if err := ds.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("debug listener", "err", err)
			}
		}()
		log.Info("debug listener up", "addr", dln.Addr().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Info("tkcm-serve listening", "addr", ln.Addr().String(), "shards", *shards, "queue", *queue)
	if ready != nil {
		ready(ln.Addr())
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Info("shutting down", "grace", *drainGrace)
	// Order matters for the no-acked-row-lost guarantee: (1) BeginDrain
	// makes every streaming /ticks handler terminate before applying its
	// next row, (2) hs.Shutdown waits for those handlers (so every acked
	// row has been applied), (3) the final checkpoint captures them. A
	// client stalled mid-line can still hold its connection past the grace
	// budget; hs.Close force-closes it — such a client never got an ack for
	// an unapplied row, so replaying from its last acked tick is lossless.
	srv.BeginDrain()
	httpCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := hs.Shutdown(httpCtx); err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			log.Error("http shutdown", "err", err)
		}
		hs.Close()
	}
	// The final checkpoint gets its own budget — httpCtx may already be
	// spent, and an expired context would abort the snapshot writes.
	ckCtx, cancel2 := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel2()
	return srv.Shutdown(ckCtx)
}

// buildLogger assembles the process logger from the -log-level and
// -log-format flags, with the same keys in both formats so log pipelines can
// switch formats without re-mapping fields.
func buildLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn or error", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}
