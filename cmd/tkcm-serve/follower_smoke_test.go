package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"tkcm/client"
	"tkcm/internal/audit"
	"tkcm/internal/wal"
)

// pump streams rows from..through to (inclusive) over st, receiving acks
// concurrently so the in-flight window never wedges the sender.
func pump(ctx context.Context, st *client.TickStream, from, to, width int) error {
	recvDone := make(chan error, 1)
	go func() {
		for n := from; n <= to; n++ {
			if _, err := st.Recv(ctx); err != nil {
				recvDone <- fmt.Errorf("recv of row %d: %w", n, err)
				return
			}
		}
		recvDone <- nil
	}()
	for n := from; n <= to; n++ {
		if err := st.Send(ctx, rowAt(n, width)); err != nil {
			return fmt.Errorf("send %d: %w", n, err)
		}
	}
	return <-recvDone
}

// TestFollowerFailoverSmoke is the two-process failover acceptance test: a
// real primary tkcm-serve streams acked ticks while a real follower process
// replicates them, the primary is SIGKILLed, the follower is promoted with
// SIGHUP, and the promoted process must serve every acked-and-replicated
// tick and keep accepting writes. Both directory trees must then pass the
// offline integrity audit (the library behind tkcm-verify).
func TestFollowerFailoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	keyFile := filepath.Join(dir, "integrity.key")
	if err := os.WriteFile(keyFile, []byte("smoke-test-integrity-key\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	key, err := wal.LoadKeyFile(keyFile)
	if err != nil {
		t.Fatal(err)
	}
	reserve := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr().String()
		l.Close()
		return addr
	}
	pAddr, fAddr := reserve(), reserve()
	pCk, pWal := filepath.Join(dir, "p", "ck"), filepath.Join(dir, "p", "wal")
	fCk, fWal := filepath.Join(dir, "f", "ck"), filepath.Join(dir, "f", "wal")

	primary := spawnServe(t, []string{
		"-addr", pAddr, "-shards", "2",
		"-checkpoint-dir", pCk, "-wal-dir", pWal,
		"-wal-sync", "1ms", "-checkpoint-every", "2s",
		"-integrity-key-file", keyFile,
	})
	follower := spawnServe(t, []string{
		"-addr", fAddr, "-shards", "2",
		"-checkpoint-dir", fCk, "-wal-dir", fWal,
		"-wal-sync", "1ms",
		"-integrity-key-file", keyFile,
		"-follow", "http://" + pAddr, "-follow-interval", "100ms",
	})

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	pc := client.New("http://" + pAddr)
	fc := client.New("http://" + fAddr)

	// The follower advertises itself as such and refuses writes.
	fh, err := fc.Health(ctx)
	if err != nil {
		t.Fatalf("follower health: %v", err)
	}
	if fh.Status != "follower" || fh.Primary != "http://"+pAddr {
		t.Fatalf("follower health = %+v, want status follower pointing at the primary", fh)
	}
	if err := fc.CreateTenant(ctx, "nope", client.CreateTenantRequest{Streams: []string{"s"}}); err == nil {
		t.Fatal("unpromoted follower accepted a write")
	}

	const width = 4
	cfg := &client.Config{K: 2, PatternLength: 3, D: 2, WindowLength: 64}
	if err := pc.CreateTenant(ctx, "fo", client.CreateTenantRequest{
		Streams: []string{"s", "r1", "r2", "r3"},
		Config:  cfg,
	}); err != nil {
		t.Fatalf("create: %v", err)
	}
	st, err := pc.OpenStream(ctx, "fo", client.StreamOptions{Sequenced: true, MaxInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Receive concurrently: Send blocks once MaxInFlight rows await a Recv,
	// so a send-everything-then-receive loop would wedge itself.
	const total = 300
	if err := pump(ctx, st, 1, total, width); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Wait for the follower to provably hold every acked tick: poll the
	// offline audit of its directories until it proves durable through the
	// last acked seq. Mid-round transients (a segment ahead of its head) are
	// expected and simply retried.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if converged := func() bool {
			results, err := audit.All(fCk, fWal, key)
			if err != nil {
				return false
			}
			for _, res := range results {
				if res.Tenant == "fo" && res.Err == nil && res.Report.DurableThrough >= total {
					return true
				}
			}
			return false
		}(); converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never converged to the primary's durable state")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Primary dies hard: no drain, no final checkpoint, mid-life.
	if err := primary.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	primary.Wait()

	// SIGHUP promotes the follower; poll until it serves as a primary.
	if err := follower.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	for {
		fh, err := fc.Health(ctx)
		if err == nil && fh.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never promoted (last health: %+v, err %v)", fh, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Every acked-and-replicated tick survived the failover.
	info, err := fc.GetTenant(ctx, "fo")
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != total {
		t.Fatalf("promoted follower serves seq %d, want %d", info.Seq, total)
	}
	// And it accepts writes now: continue the same sequenced stream.
	st2, err := fc.OpenStream(ctx, "fo", client.StreamOptions{Sequenced: true, MaxInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	const extra = 10
	if err := pump(ctx, st2, total+1, total+extra, width); err != nil {
		t.Fatalf("post-promotion: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// Graceful exit, then both trees must audit clean: the dead primary's
	// post-mortem proves everything it acked, the new primary's proves the
	// failover plus the post-promotion writes.
	follower.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- follower.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		follower.Process.Kill()
		t.Fatal("promoted follower did not shut down on SIGTERM")
	}

	for _, tree := range []struct {
		name    string
		ck, wal string
		through uint64
	}{
		{"primary (post-mortem)", pCk, pWal, total},
		{"promoted follower", fCk, fWal, total + extra},
	} {
		results, err := audit.All(tree.ck, tree.wal, key)
		if err != nil {
			t.Fatalf("audit %s: %v", tree.name, err)
		}
		found := false
		for _, res := range results {
			if res.Tenant != "fo" {
				continue
			}
			found = true
			if res.Err != nil {
				t.Fatalf("audit %s: %v", tree.name, res.Err)
			}
			if res.Report.DurableThrough < tree.through {
				t.Fatalf("audit %s: durable through %d, want >= %d", tree.name, res.Report.DurableThrough, tree.through)
			}
		}
		if !found {
			t.Fatalf("audit %s: tenant fo missing", tree.name)
		}
	}
}

// TestFollowerRefusesWithoutWAL: -follow without the directories replication
// transports is a configuration error, not a silent no-op.
func TestFollowerRefusesWithoutWAL(t *testing.T) {
	err := run(context.Background(), []string{"-follow", "http://localhost:1"}, nil)
	if err == nil || !strings.Contains(err.Error(), "-follow requires") {
		t.Fatalf("run -follow without dirs: err = %v, want configuration refusal", err)
	}
}
