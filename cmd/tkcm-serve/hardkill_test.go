package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"tkcm/client"
	"tkcm/internal/audit"
	"tkcm/internal/core"
)

// auditSurvivor runs the offline integrity audit over the kill -9 survivor's
// directories (after its graceful exit) and requires a provable "durable
// through" at least covering every acked tick — the same proof tkcm-verify
// prints for an operator.
func auditSurvivor(t *testing.T, ckDir, walDir, tenant string, through uint64) {
	t.Helper()
	results, err := audit.All(ckDir, walDir, nil)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	found := false
	for _, res := range results {
		if res.Tenant != tenant {
			continue
		}
		found = true
		if res.Err != nil {
			t.Fatalf("audit of %s after hard kill: %v", tenant, res.Err)
		}
		if res.Report.DurableThrough < through {
			t.Fatalf("audit proves durable through %d, want >= %d", res.Report.DurableThrough, through)
		}
	}
	if !found {
		t.Fatalf("audit found no tenant %q in %s / %s", tenant, ckDir, walDir)
	}
}

// TestServeHelperProcess is not a test: re-executed with TKCM_SERVE_HELPER=1
// it becomes a real tkcm-serve process, so the hard-kill test below can
// kill -9 an actual OS process rather than simulate a crash in-process.
func TestServeHelperProcess(t *testing.T) {
	if os.Getenv("TKCM_SERVE_HELPER") != "1" {
		t.Skip("helper process for TestHardKillLosesNoAckedTick")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	args := strings.Fields(os.Getenv("TKCM_SERVE_ARGS"))
	err := run(ctx, args, func(a net.Addr) {
		fmt.Printf("TKCM_READY %s\n", a)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// spawnServe re-executes the test binary as a tkcm-serve on addr and waits
// until it accepts connections.
func spawnServe(t *testing.T, args []string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestServeHelperProcess")
	cmd.Env = append(os.Environ(),
		"TKCM_SERVE_HELPER=1",
		"TKCM_SERVE_ARGS="+strings.Join(args, " "))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// A test that fails mid-flight must not leave the child serving (and
	// logging) against a TempDir the framework is about to delete.
	t.Cleanup(func() { cmd.Process.Kill() })
	ready := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "TKCM_READY ") {
				close(ready)
				break
			}
		}
		// Keep draining so the child never blocks on a full stdout pipe.
		for sc.Scan() {
		}
	}()
	select {
	case <-ready:
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		t.Fatal("helper server never became ready")
	}
	return cmd
}

// rowAt deterministically generates the n-th input row (1-based sequence):
// seasonal values with stream 0 missing on every third tick past warmup.
func rowAt(n, width int) []float64 {
	row := make([]float64, width)
	for i := range row {
		row[i] = 20 + 5*math.Sin(2*math.Pi*float64(n)/24+float64(i)) + 0.01*float64(n%7)
	}
	if n > 30 && n%3 == 0 {
		row[0] = math.NaN()
	}
	return row
}

// TestHardKillLosesNoAckedTick is the durability acceptance test: a real
// tkcm-serve process is SIGKILLed mid-stream (no drain, no final
// checkpoint) and restarted over the same directories. Every acknowledged
// tick must survive, and the restored engine must match an uninterrupted
// engine fed the same rows to within 1e-9.
func TestHardKillLosesNoAckedTick(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	// Reserve a port so the restarted server can reuse the address the
	// client keeps reconnecting to.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	args := []string{
		"-addr", addr,
		"-shards", "2",
		"-checkpoint-dir", dir + "/ck",
		"-wal-dir", dir + "/wal",
		"-wal-sync", "1ms",
		// No periodic checkpoints: recovery must come from the WAL alone
		// (plus the base image written at tenant creation).
		"-checkpoint-every", "1h",
	}
	proc := spawnServe(t, args)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c := client.New("http://" + addr)
	const width = 4
	cfg := &client.Config{K: 2, PatternLength: 3, D: 2, WindowLength: 64}
	if err := c.CreateTenant(ctx, "hk", client.CreateTenantRequest{
		Streams: []string{"s", "r1", "r2", "r3"},
		Config:  cfg,
	}); err != nil {
		t.Fatalf("create: %v", err)
	}

	st, err := c.OpenStream(ctx, "hk", client.StreamOptions{Sequenced: true, MaxInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	const total = 400
	const killAt = 150
	sendErr := make(chan error, 1)
	go func() {
		for n := 1; n <= total; n++ {
			if err := st.Send(ctx, rowAt(n, width)); err != nil {
				sendErr <- fmt.Errorf("send %d: %w", n, err)
				return
			}
		}
		sendErr <- nil
	}()

	acked := make(map[uint64]int)
	killed := false
	for len(acked) < total {
		ack, err := st.Recv(ctx)
		if err != nil {
			t.Fatalf("recv after %d acks: %v", len(acked), err)
		}
		acked[ack.Seq]++
		if !killed && len(acked) >= killAt {
			killed = true
			// SIGKILL: no signal handler runs, no drain, no checkpoint —
			// the process is simply gone mid-stream.
			if err := proc.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			proc.Wait()
			proc = spawnServe(t, args)
		}
	}
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for seq := uint64(1); seq <= total; seq++ {
		if acked[seq] != 1 {
			t.Fatalf("seq %d acked %d times, want exactly 1", seq, acked[seq])
		}
	}

	// The restored tenant must match an engine that saw every row without
	// interruption.
	info, err := c.GetTenant(ctx, "hk")
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != total {
		t.Fatalf("tenant seq after recovery = %d, want %d", info.Seq, total)
	}
	var snap bytes.Buffer
	if _, err := c.Snapshot(ctx, "hk", &snap); err != nil {
		t.Fatal(err)
	}
	restored, err := core.RestoreEngine(&snap)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	coreCfg := core.DefaultConfig()
	coreCfg.K, coreCfg.PatternLength, coreCfg.D, coreCfg.WindowLength =
		cfg.K, cfg.PatternLength, cfg.D, cfg.WindowLength
	ref, err := core.NewEngine(coreCfg, []string{"s", "r1", "r2", "r3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for n := 1; n <= total; n++ {
		if _, _, err := ref.Tick(rowAt(n, width)); err != nil {
			t.Fatalf("reference tick %d: %v", n, err)
		}
	}
	if restored.Seq() != ref.Seq() {
		t.Fatalf("restored seq %d != reference %d", restored.Seq(), ref.Seq())
	}
	for i := 0; i < width; i++ {
		got := restored.Window().Snapshot(i)
		want := ref.Window().Snapshot(i)
		if len(got) != len(want) {
			t.Fatalf("stream %d: %d retained ticks, want %d", i, len(got), len(want))
		}
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-9 {
				t.Fatalf("stream %d tick %d: restored %v, uninterrupted %v (Δ=%g)",
					i, j, got[j], want[j], math.Abs(got[j]-want[j]))
			}
		}
	}

	// Graceful goodbye for the survivor.
	proc.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- proc.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		proc.Process.Kill()
		t.Fatal("restarted server did not shut down on SIGTERM")
	}

	auditSurvivor(t, dir+"/ck", dir+"/wal", "hk", total)
}

// TestHardKillDuringMigrationLosesNoAckedTick is the chaos acceptance test
// for live migration: while a sequenced client streams, the tenant is
// walked across the shards continuously, and the server process is
// SIGKILLed with migrations in flight — no drain, no final checkpoint, the
// routing table possibly mid-flip. After restart every acked tick must
// survive exactly once, the tenant must land whole on exactly one shard,
// and the recovered engine must match an uninterrupted control within 1e-9.
func TestHardKillDuringMigrationLosesNoAckedTick(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	args := []string{
		"-addr", addr,
		"-shards", "3",
		"-checkpoint-dir", dir + "/ck",
		"-wal-dir", dir + "/wal",
		"-wal-sync", "1ms",
		// Recovery must come from the WAL + base image + routing table alone.
		"-checkpoint-every", "1h",
	}
	proc := spawnServe(t, args)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c := client.New("http://" + addr)
	const width = 4
	cfg := &client.Config{K: 2, PatternLength: 3, D: 2, WindowLength: 64}
	if err := c.CreateTenant(ctx, "mg", client.CreateTenantRequest{
		Streams: []string{"s", "r1", "r2", "r3"},
		Config:  cfg,
	}); err != nil {
		t.Fatalf("create: %v", err)
	}

	st, err := c.OpenStream(ctx, "mg", client.StreamOptions{Sequenced: true, MaxInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	const total = 400
	const killAt = 150
	sendErr := make(chan error, 1)
	go func() {
		for n := 1; n <= total; n++ {
			if err := st.Send(ctx, rowAt(n, width)); err != nil {
				sendErr <- fmt.Errorf("send %d: %w", n, err)
				return
			}
		}
		sendErr <- nil
	}()

	// Migration churn: walk the tenant round-robin across the shards for
	// the whole run, so the SIGKILL below lands with a migration in flight
	// (or between a flip and its next move — both must be safe). Errors
	// while the server is down are expected; the loop just keeps trying.
	churnStop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-churnStop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			mctx, mcancel := context.WithTimeout(ctx, 5*time.Second)
			c.MigrateTenant(mctx, "mg", i%3)
			mcancel()
		}
	}()

	acked := make(map[uint64]int)
	killed := false
	for len(acked) < total {
		ack, err := st.Recv(ctx)
		if err != nil {
			t.Fatalf("recv after %d acks: %v", len(acked), err)
		}
		acked[ack.Seq]++
		if !killed && len(acked) >= killAt {
			killed = true
			// SIGKILL with the churn still running: no handler, no drain —
			// if a migration is mid-flight, its parked requests, the moved
			// engine image, and possibly a half-written routing table die
			// with the process.
			if err := proc.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			proc.Wait()
			proc = spawnServe(t, args)
		}
	}
	close(churnStop)
	<-churnDone
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for seq := uint64(1); seq <= total; seq++ {
		if acked[seq] != 1 {
			t.Fatalf("seq %d acked %d times, want exactly 1", seq, acked[seq])
		}
	}

	// The tenant landed whole on exactly one shard: it is listed exactly
	// once, and the routing table agrees with where it is hosted.
	tenants, err := c.ListTenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hosted := 0
	shardOf := -1
	for _, info := range tenants {
		if info.ID == "mg" {
			hosted++
			shardOf = info.Shard
		}
	}
	if hosted != 1 {
		t.Fatalf("tenant hosted %d times after recovery, want exactly 1", hosted)
	}
	doc, err := c.Routing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if assigned, ok := doc.Assignments["mg"]; ok && assigned != shardOf {
		t.Fatalf("routing table says shard %d but tenant hosted on %d", assigned, shardOf)
	}
	// Migration still works after recovery.
	if _, err := c.MigrateTenant(ctx, "mg", (shardOf+1)%3); err != nil {
		t.Fatalf("post-recovery migration: %v", err)
	}

	info, err := c.GetTenant(ctx, "mg")
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != total {
		t.Fatalf("tenant seq after recovery = %d, want %d", info.Seq, total)
	}
	var snap bytes.Buffer
	if _, err := c.Snapshot(ctx, "mg", &snap); err != nil {
		t.Fatal(err)
	}
	restored, err := core.RestoreEngine(&snap)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	coreCfg := core.DefaultConfig()
	coreCfg.K, coreCfg.PatternLength, coreCfg.D, coreCfg.WindowLength =
		cfg.K, cfg.PatternLength, cfg.D, cfg.WindowLength
	ref, err := core.NewEngine(coreCfg, []string{"s", "r1", "r2", "r3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for n := 1; n <= total; n++ {
		if _, _, err := ref.Tick(rowAt(n, width)); err != nil {
			t.Fatalf("reference tick %d: %v", n, err)
		}
	}
	if restored.Seq() != ref.Seq() {
		t.Fatalf("restored seq %d != reference %d", restored.Seq(), ref.Seq())
	}
	for i := 0; i < width; i++ {
		got := restored.Window().Snapshot(i)
		want := ref.Window().Snapshot(i)
		if len(got) != len(want) {
			t.Fatalf("stream %d: %d retained ticks, want %d", i, len(got), len(want))
		}
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-9 {
				t.Fatalf("stream %d tick %d: restored %v, uninterrupted %v (Δ=%g)",
					i, j, got[j], want[j], math.Abs(got[j]-want[j]))
			}
		}
	}

	proc.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- proc.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		proc.Process.Kill()
		t.Fatal("restarted server did not shut down on SIGTERM")
	}

	auditSurvivor(t, dir+"/ck", dir+"/wal", "mg", total)
}
