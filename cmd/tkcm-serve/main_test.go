package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServeSmoke boots the full binary path (flags → shards → HTTP), creates
// a tenant, streams ticks, then shuts down via context cancellation and
// verifies the final checkpoint landed.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx,
			[]string{"-addr", "127.0.0.1:0", "-shards", "2", "-checkpoint-dir", dir, "-checkpoint-every", "1h"},
			func(a net.Addr) { addrc <- a },
		)
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	body := `{"streams": ["s", "r1", "r2", "r3"], "config": {"k": 2, "pattern_length": 3, "d": 2, "window_length": 24}}`
	resp, err := http.Post(base+"/v1/tenants/smoke", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Stream 30 ticks as one complete NDJSON body (no lock-step needed for
	// the smoke test), one missing value per row past warmup.
	var sb strings.Builder
	for tk := 0; tk < 30; tk++ {
		a, b, c, d := "20.1", "19.2", "21.4", "20.9"
		if tk > 15 {
			a = "null"
		}
		fmt.Fprintf(&sb, `{"values": [%s, %s, %s, %s]}`+"\n", a, b, c, d)
	}
	tr, err := http.Post(base+"/v1/tenants/smoke/ticks", "application/x-ndjson", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("ticks: %d", tr.StatusCode)
	}
	out, err := io.ReadAll(tr.Body)
	tr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(out, []byte("\n")); lines != 30 {
		t.Fatalf("streamed %d response lines, want 30:\n%s", lines, out)
	}
	if bytes.Contains(out, []byte(`"error"`)) {
		t.Fatalf("stream contained an error line:\n%s", out)
	}

	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hr.StatusCode)
	}
	hr.Body.Close()

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server did not shut down")
	}
	if _, err := os.Stat(filepath.Join(dir, "smoke.tkcm")); err != nil {
		t.Fatalf("final checkpoint missing: %v", err)
	}
}

// TestBuildLogger pins the -log-level / -log-format surface: level
// filtering, both output formats, and rejection of unknown values.
func TestBuildLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := buildLogger(&buf, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden", "k", 1)
	log.Warn("shown", "k", 2)
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("warn level leaked an info record: %s", out)
	}
	if !strings.Contains(out, `"msg":"shown"`) || !strings.Contains(out, `"k":2`) {
		t.Errorf("json format lost the record: %s", out)
	}

	buf.Reset()
	log, err = buildLogger(&buf, "debug", "text")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("verbose")
	if !strings.Contains(buf.String(), "msg=verbose") {
		t.Errorf("text format lost the debug record: %s", buf.String())
	}

	if _, err := buildLogger(&buf, "loud", "text"); err == nil {
		t.Error("bad -log-level accepted")
	}
	if _, err := buildLogger(&buf, "info", "xml"); err == nil {
		t.Error("bad -log-format accepted")
	}
}

// TestServeDebugListener boots with -debug-addr and checks the diagnostics
// tree answers there — and only there: the public port must 404 pprof.
func TestServeDebugListener(t *testing.T) {
	// Reserve an ephemeral port for the debug listener, then release it for
	// run() to bind (the ready callback only reports the public address).
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	debugAddr := probe.Addr().String()
	probe.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx,
			[]string{"-addr", "127.0.0.1:0", "-shards", "2", "-debug-addr", debugAddr,
				"-log-format", "json", "-log-level", "warn", "-slow-tick-threshold", "5s"},
			func(a net.Addr) { addrc <- a },
		)
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	get := func(url string) int {
		t.Helper()
		var last error
		for i := 0; i < 50; i++ {
			resp, err := http.Get(url)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				return resp.StatusCode
			}
			last = err
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("GET %s: %v", url, last)
		return 0
	}
	debugBase := "http://" + debugAddr
	if code := get(debugBase + "/v1/debug/tenants"); code != http.StatusOK {
		t.Errorf("debug tenants: %d", code)
	}
	if code := get(debugBase + "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("debug pprof: %d", code)
	}
	if code := get(base + "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("public pprof answered %d, must 404", code)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server did not shut down")
	}
}
