package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServeSmoke boots the full binary path (flags → shards → HTTP), creates
// a tenant, streams ticks, then shuts down via context cancellation and
// verifies the final checkpoint landed.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx,
			[]string{"-addr", "127.0.0.1:0", "-shards", "2", "-checkpoint-dir", dir, "-checkpoint-every", "1h"},
			func(a net.Addr) { addrc <- a },
		)
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	body := `{"streams": ["s", "r1", "r2", "r3"], "config": {"k": 2, "pattern_length": 3, "d": 2, "window_length": 24}}`
	resp, err := http.Post(base+"/v1/tenants/smoke", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Stream 30 ticks as one complete NDJSON body (no lock-step needed for
	// the smoke test), one missing value per row past warmup.
	var sb strings.Builder
	for tk := 0; tk < 30; tk++ {
		a, b, c, d := "20.1", "19.2", "21.4", "20.9"
		if tk > 15 {
			a = "null"
		}
		fmt.Fprintf(&sb, `{"values": [%s, %s, %s, %s]}`+"\n", a, b, c, d)
	}
	tr, err := http.Post(base+"/v1/tenants/smoke/ticks", "application/x-ndjson", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("ticks: %d", tr.StatusCode)
	}
	out, err := io.ReadAll(tr.Body)
	tr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(out, []byte("\n")); lines != 30 {
		t.Fatalf("streamed %d response lines, want 30:\n%s", lines, out)
	}
	if bytes.Contains(out, []byte(`"error"`)) {
		t.Fatalf("stream contained an error line:\n%s", out)
	}

	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hr.StatusCode)
	}
	hr.Body.Close()

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server did not shut down")
	}
	if _, err := os.Stat(filepath.Join(dir, "smoke.tkcm")); err != nil {
		t.Fatalf("final checkpoint missing: %v", err)
	}
}
