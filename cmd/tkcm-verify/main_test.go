package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tkcm/internal/core"
	"tkcm/internal/wal"
)

// buildTenant writes a realistic data layout for one tenant: a checkpoint
// covering the first rows and a keyed WAL carrying the rest, closed cleanly.
func buildTenant(t *testing.T, ckDir, walDir, id string, key []byte, total int) {
	t.Helper()
	eng, err := core.NewEngine(core.Config{K: 2, PatternLength: 3, D: 2, WindowLength: 24},
		[]string{"a", "b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	l, err := wal.Open(filepath.Join(walDir, id), wal.Options{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	ckAt := total / 2
	for n := 1; n <= total; n++ {
		row := []float64{20 + float64(n%5), 19.5}
		if _, _, err := eng.Tick(row); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(uint64(n), row); err != nil {
			t.Fatal(err)
		}
		if n == ckAt {
			f, err := os.Create(filepath.Join(ckDir, id+".tkcm"))
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Snapshot(f); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCleanDirectoriesAndTamperDetection(t *testing.T) {
	ckDir, walDir := t.TempDir(), t.TempDir()
	keyPath := filepath.Join(t.TempDir(), "key")
	if err := os.WriteFile(keyPath, []byte("cli-test-key\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	key, err := wal.LoadKeyFile(keyPath)
	if err != nil {
		t.Fatal(err)
	}
	const total = 12
	buildTenant(t, ckDir, walDir, "t1", key, total)
	buildTenant(t, ckDir, walDir, "t2", key, total)

	args := []string{"-checkpoint-dir", ckDir, "-wal-dir", walDir, "-integrity-key-file", keyPath}
	var out, errw bytes.Buffer
	if code := run(args, &out, &errw); code != 0 {
		t.Fatalf("clean audit exited %d: %s%s", code, out.String(), errw.String())
	}
	for _, want := range []string{
		"tenant t1: durable through seq 12",
		"tenant t2: durable through seq 12",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}

	// Single-tenant mode.
	out.Reset()
	if code := run(append(args, "-tenant", "t1"), &out, &errw); code != 0 {
		t.Fatalf("single-tenant audit exited %d: %s", code, errw.String())
	}
	if strings.Contains(out.String(), "tenant t2") {
		t.Fatalf("-tenant t1 audited t2 too:\n%s", out.String())
	}

	// Tamper with one byte of t2's log: the audit must fail it, still pass
	// t1, and exit non-zero.
	segDir := filepath.Join(walDir, "t2")
	entries, err := os.ReadDir(segDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("reading %s: %v", segDir, err)
	}
	var seg string
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".wal") {
			seg = filepath.Join(segDir, ent.Name())
		}
	}
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errw.Reset()
	if code := run(args, &out, &errw); code != 1 {
		t.Fatalf("audit of tampered log exited %d, want 1\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "tenant t2: FAIL") {
		t.Fatalf("tampered tenant not failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "tenant t1: durable through seq 12") {
		t.Fatalf("clean tenant dragged down by tampered one:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "1 of 2 tenants FAILED") {
		t.Fatalf("summary missing:\n%s", errw.String())
	}

	// Wrong key: everything fails (commit HMACs no longer verify).
	wrongKey := filepath.Join(t.TempDir(), "wrong")
	if err := os.WriteFile(wrongKey, []byte("not-the-key"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, append(raw[:len(raw)/2], append([]byte{raw[len(raw)/2] ^ 0x01}, raw[len(raw)/2+1:]...)...), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errw.Reset()
	if code := run([]string{"-checkpoint-dir", ckDir, "-wal-dir", walDir, "-integrity-key-file", wrongKey}, &out, &errw); code != 1 {
		t.Fatalf("audit under wrong key exited %d, want 1\n%s", code, out.String())
	}

	// No directories at all is a usage error.
	if code := run(nil, &out, &errw); code != 2 {
		t.Fatalf("no-args run exited %d, want 2", code)
	}
}

func TestVerifyGapNotCoveredByCheckpointFails(t *testing.T) {
	ckDir, walDir := t.TempDir(), t.TempDir()
	// A WAL whose sequence jumps (SetNextSeq after a restore) with NO
	// checkpoint covering the gap: rows 4..9 are provably in neither place.
	l, err := wal.Open(filepath.Join(walDir, "gap"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 3; n++ {
		if _, err := l.Append(uint64(n), []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.SetNextSeq(10); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(10, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-checkpoint-dir", ckDir, "-wal-dir", walDir}, &out, &errw); code != 1 {
		t.Fatalf("uncovered gap exited %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "in no checkpoint") {
		t.Fatalf("gap failure not explained:\n%s", out.String())
	}
}
