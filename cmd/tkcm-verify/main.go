// Command tkcm-verify audits a tkcm server's data directories offline: it
// verifies every checkpoint's CRC and every tenant's tamper-evident WAL
// chain (segment Merkle roots, commit HMACs, the signed head, sequence
// contiguity, checkpoint coverage of truncated/jumped ranges) and prints a
// provable "durable through seq S" statement per tenant. Any mismatch makes
// the process exit non-zero — fit for cron, CI, and post-incident forensics.
//
// Usage:
//
//	tkcm-verify -checkpoint-dir /data/ck -wal-dir /data/wal \
//	    -integrity-key-file /etc/tkcm/key [-tenant id]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tkcm/internal/audit"
	"tkcm/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("tkcm-verify", flag.ContinueOnError)
	fs.SetOutput(errw)
	ckDir := fs.String("checkpoint-dir", "", "server checkpoint directory (tkcm-serve -checkpoint-dir)")
	walDir := fs.String("wal-dir", "", "server write-ahead-log root (tkcm-serve -wal-dir)")
	keyFile := fs.String("integrity-key-file", "", "file holding the integrity key; empty audits integrity without authenticity")
	tenant := fs.String("tenant", "", "audit only this tenant (default: every tenant found)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ckDir == "" && *walDir == "" {
		fmt.Fprintln(errw, "tkcm-verify: at least one of -checkpoint-dir or -wal-dir is required")
		return 2
	}
	key, err := wal.LoadKeyFile(*keyFile)
	if err != nil {
		fmt.Fprintf(errw, "tkcm-verify: %v\n", err)
		return 2
	}

	var results []audit.Result
	if *tenant != "" {
		rep, err := audit.Tenant(*ckDir, *walDir, *tenant, key)
		results = []audit.Result{{Tenant: *tenant, Report: rep, Err: err}}
	} else {
		results, err = audit.All(*ckDir, *walDir, key)
		if err != nil {
			fmt.Fprintf(errw, "tkcm-verify: %v\n", err)
			return 2
		}
	}
	if len(results) == 0 {
		fmt.Fprintln(out, "no tenants found")
		return 0
	}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(out, "tenant %s: FAIL: %v\n", r.Tenant, r.Err)
			continue
		}
		rep := r.Report
		ck := "none"
		if rep.HasCheckpoint {
			ck = fmt.Sprintf("seq %d", rep.CheckpointSeq)
		}
		fmt.Fprintf(out, "tenant %s: durable through seq %d (wal: %d segments, %d sealed, %d records, %d commits; checkpoint: %s)\n",
			r.Tenant, rep.DurableThrough, rep.WAL.Segments, rep.WAL.Sealed, rep.WAL.Records, rep.WAL.Commits, ck)
		for _, w := range rep.WAL.Warnings {
			fmt.Fprintf(out, "tenant %s: warning: %s\n", r.Tenant, w)
		}
	}
	if failed > 0 {
		fmt.Fprintf(errw, "tkcm-verify: %d of %d tenants FAILED\n", failed, len(results))
		return 1
	}
	return 0
}
