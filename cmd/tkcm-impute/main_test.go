package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tkcm/internal/dataset"
	"tkcm/internal/stats"
	"tkcm/internal/timeseries"
)

// writeTestCSV writes a small co-evolving frame with a gap in the target and
// returns the input path, the erased truth, and the gap bounds.
func writeTestCSV(t *testing.T) (path string, truth []float64, gapStart, gapLen int) {
	t.Helper()
	const period = 96
	const n = 6 * period
	s := make([]float64, n)
	r1 := make([]float64, n)
	r2 := make([]float64, n)
	for i := 0; i < n; i++ {
		ph := 2 * math.Pi * float64(i) / period
		s[i] = math.Sin(ph) + 0.3*math.Sin(2*ph)
		r1[i] = math.Sin(ph - 1.2)
		r2[i] = math.Cos(ph + 0.4)
	}
	gapStart, gapLen = n-period, period/2
	frame := timeseries.NewFrame(
		timeseries.New("s", s),
		timeseries.New("r1", r1),
		timeseries.New("r2", r2),
	)
	truth = frame.ByName("s").EraseBlock(gapStart, gapLen)

	path = filepath.Join(t.TempDir(), "in.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, frame); err != nil {
		t.Fatal(err)
	}
	return path, truth, gapStart, gapLen
}

func TestRunImputesGap(t *testing.T) {
	in, truth, gapStart, gapLen := writeTestCSV(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	if err := run(in, out, 3, 12, 2, 4*96, false, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()
	frame, err := dataset.ReadCSV(data)
	if err != nil {
		t.Fatal(err)
	}
	s := frame.ByName("s")
	if s == nil || !s.Complete() {
		t.Fatal("output target incomplete")
	}
	rec := s.Values[gapStart : gapStart+gapLen]
	if rmse := stats.RMSE(truth, rec); rmse > 0.05 {
		t.Fatalf("RMSE %v too high on clean periodic data", rmse)
	}
}

func TestRunWeightedAndWindowDefault(t *testing.T) {
	in, _, _, _ := writeTestCSV(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	// window=0 means "whole input"; weighted mean enabled.
	if err := run(in, out, 3, 12, 2, 0, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunClampsD(t *testing.T) {
	in, _, _, _ := writeTestCSV(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	// d exceeds available references; run must clamp, not fail.
	if err := run(in, out, 2, 12, 99, 0, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.csv")
	if err := os.WriteFile(single, []byte("only\n1\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(single, filepath.Join(dir, "o.csv"), 2, 3, 1, 0, false, false); err == nil {
		t.Fatal("single-series input accepted")
	}
	if err := run(filepath.Join(dir, "missing.csv"), "-", 2, 3, 1, 0, false, false); err == nil {
		t.Fatal("nonexistent input accepted")
	}
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("a,b\n1,notanumber\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "-", 2, 3, 1, 0, false, false); err == nil {
		t.Fatal("malformed CSV accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	in, _, _, _ := writeTestCSV(t)
	if err := run(in, "-", 0, 12, 2, 0, false, false); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := run(in, "-", 2, 0, 2, 0, false, false); err == nil {
		t.Fatal("l=0 accepted")
	}
}

func TestOutputPreservesHeader(t *testing.T) {
	in, _, _, _ := writeTestCSV(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	if err := run(in, out, 2, 12, 2, 0, false, false); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(string(b), "\n", 2)[0]
	if first != "s,r1,r2" {
		t.Fatalf("header = %q, want s,r1,r2", first)
	}
}
