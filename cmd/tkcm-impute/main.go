// Command tkcm-impute recovers missing values in a CSV of co-evolving time
// series using TKCM. The input format matches cmd/tkcm-datagen: a header row
// of series names, one row per tick, missing values as empty/NaN fields.
//
// Every series is imputed continuously in stream order: at each tick the row
// is fed to the engine and any missing value is recovered before the next
// row is consumed, exactly like the paper's streaming setting.
//
// Usage:
//
//	tkcm-datagen -dataset sbr1d -ticks 4032 | tkcm-impute -l 72 -k 5 -d 3 -window 2016 > completed.csv
//	tkcm-impute -in measurements.csv -out completed.csv -report
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tkcm"
	"tkcm/internal/dataset"
	"tkcm/internal/timeseries"
)

func main() {
	var (
		in       = flag.String("in", "-", "input CSV path ('-' for stdin)")
		out      = flag.String("out", "-", "output CSV path ('-' for stdout)")
		k        = flag.Int("k", 5, "number of anchor points")
		l        = flag.Int("l", 72, "pattern length")
		d        = flag.Int("d", 3, "number of reference series")
		window   = flag.Int("window", 0, "streaming window length L (0 = whole input)")
		weighted = flag.Bool("weighted", false, "similarity-weighted anchor mean instead of the plain mean")
		report   = flag.Bool("report", false, "print imputation statistics to stderr")
	)
	flag.Parse()

	if err := run(*in, *out, *k, *l, *d, *window, *weighted, *report); err != nil {
		fmt.Fprintln(os.Stderr, "tkcm-impute:", err)
		os.Exit(1)
	}
}

func run(in, out string, k, l, d, window int, weighted, report bool) error {
	frame, err := readFrame(in)
	if err != nil {
		return err
	}
	if frame.Width() < 2 {
		return fmt.Errorf("need at least 2 series, got %d", frame.Width())
	}
	if d > frame.Width()-1 {
		d = frame.Width() - 1
	}
	if window <= 0 {
		window = frame.Len()
	}
	cfg := tkcm.DefaultConfig()
	cfg.K = k
	cfg.PatternLength = l
	cfg.D = d
	cfg.WindowLength = window
	cfg.WeightedMean = weighted
	if err := cfg.Validate(); err != nil {
		return err
	}

	eng, err := tkcm.NewEngine(cfg, frame.Names(), nil)
	if err != nil {
		return err
	}
	completed := timeseries.NewFrame()
	for _, s := range frame.Series {
		cs := timeseries.NewEmpty(s.Name, 0)
		cs.Sampling = s.Sampling
		completed.Add(cs)
	}
	missing := 0
	for t := 0; t < frame.Len(); t++ {
		row := frame.Row(t)
		for _, v := range row {
			if timeseries.IsMissing(v) {
				missing++
			}
		}
		outRow, _, err := eng.Tick(row)
		if err != nil {
			return fmt.Errorf("tick %d: %w", t, err)
		}
		for i, v := range outRow {
			completed.Series[i].Append(v)
		}
	}
	if err := writeFrame(out, completed); err != nil {
		return err
	}
	if report {
		st := eng.Stats
		fmt.Fprintf(os.Stderr, "ticks: %d streams: %d missing: %d tkcm-imputations: %d cold-start fills: %d reference errors: %d\n",
			st.Ticks, frame.Width(), missing, st.Imputations, st.ColdStartFills, st.ReferenceErrors)
	}
	return nil
}

func readFrame(path string) (*timeseries.Frame, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return dataset.ReadCSV(r)
}

func writeFrame(path string, f *timeseries.Frame) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		file, err := os.Create(path)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	return dataset.WriteCSV(w, f)
}
