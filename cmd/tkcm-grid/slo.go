package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tkcm/client"
	"tkcm/internal/experiments"
	"tkcm/internal/obs"
)

// sloResult is one sweep's verdict: the measured p99s against the declared
// budgets, written to paper_runs/slo.json.
type sloResult struct {
	Name        string  `json:"name"`
	Shards      int     `json:"shards"`
	Tenants     int     `json:"tenants"`
	Width       int     `json:"width"`
	Missing     float64 `json:"missing"`
	Migrations  uint64  `json:"migrations"`
	Ticks       uint64  `json:"ticks"`
	TicksPerSec float64 `json:"ticks_per_sec"`
	// AckP99Ms is the server-observed end-to-end ack p99 (tkcm_ack_seconds)
	// in milliseconds; StageP99Ms breaks it down per tick stage
	// (tkcm_tick_stage_seconds).
	AckP99Ms   experiments.JSONFloat `json:"ack_p99_ms"`
	StageP99Ms map[string]float64    `json:"stage_p99_ms"`
	Budgets    []string              `json:"budget_breaches,omitempty"`
	Pass       bool                  `json:"pass"`
}

// runSLO executes every SLO sweep of the spec against a real tkcm-serve
// process and fails on any budget breach.
func runSLO(spec *experiments.GridSpec, o options, out io.Writer) error {
	sweeps := spec.SLO.Sweeps
	if len(sweeps) == 0 {
		return fmt.Errorf("spec %q declares no slo sweeps", spec.Name)
	}
	serveBin := o.serveBin
	if serveBin == "" {
		dir, err := os.MkdirTemp("", "tkcm-grid-serve")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		serveBin = filepath.Join(dir, "tkcm-serve")
		fmt.Fprintf(out, "# building %s\n", serveBin)
		build := exec.Command("go", "build", "-o", serveBin, "tkcm/cmd/tkcm-serve")
		if raw, err := build.CombinedOutput(); err != nil {
			return fmt.Errorf("building tkcm-serve: %v\n%s", err, raw)
		}
	}

	var results []sloResult
	failed := 0
	for _, sw := range sweeps {
		res, err := runSweep(serveBin, sw, out)
		if err != nil {
			return fmt.Errorf("sweep %q: %w", sw.Name, err)
		}
		if !res.Pass {
			failed++
		}
		results = append(results, *res)
	}

	if o.outDir != "" {
		if err := os.MkdirAll(o.outDir, 0o755); err != nil {
			return err
		}
		raw, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(o.outDir, "slo.json")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", path)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d slo sweeps breached their latency budgets", failed, len(sweeps))
	}
	fmt.Fprintf(out, "all %d slo sweeps within budget\n", len(sweeps))
	return nil
}

// runSweep boots one tkcm-serve process sized for the sweep, drives it for
// the sweep's duration, scrapes /metrics, and judges the budgets.
func runSweep(serveBin string, sw experiments.SLOSweep, out io.Writer) (*sloResult, error) {
	duration, err := time.ParseDuration(sw.Duration)
	if err != nil {
		return nil, fmt.Errorf("bad duration %q: %w", sw.Duration, err)
	}
	var migrate time.Duration
	if sw.MigrateEvery != "" {
		if migrate, err = time.ParseDuration(sw.MigrateEvery); err != nil {
			return nil, fmt.Errorf("bad migrate_every %q: %w", sw.MigrateEvery, err)
		}
	}
	addr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	workDir, err := os.MkdirTemp("", "tkcm-grid-slo")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(workDir)

	fmt.Fprintf(out, "# sweep %q — %d shards × %d tenants × width %d, %.0f%% missing, %v",
		sw.Name, sw.Shards, sw.Tenants, sw.Width, 100*sw.Missing, duration)
	if migrate > 0 {
		fmt.Fprintf(out, ", migration churn every %v", migrate)
	}
	fmt.Fprintln(out)

	serve := exec.Command(serveBin,
		"-addr", addr,
		"-shards", fmt.Sprint(sw.Shards),
		"-checkpoint-dir", filepath.Join(workDir, "ck"),
		"-wal-dir", filepath.Join(workDir, "wal"),
		"-log-level", "warn",
	)
	serve.Stdout = os.Stderr
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", serveBin, err)
	}
	defer func() {
		serve.Process.Kill()
		serve.Wait()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), duration+60*time.Second)
	defer cancel()
	c := client.New("http://" + addr)
	if err := waitHealthy(ctx, c); err != nil {
		return nil, err
	}

	res := &sloResult{
		Name: sw.Name, Shards: sw.Shards, Tenants: sw.Tenants,
		Width: sw.Width, Missing: sw.Missing,
	}
	if err := driveSweep(ctx, c, sw, duration, migrate, res); err != nil {
		return nil, err
	}
	if err := scrapeSweep(ctx, c, res); err != nil {
		return nil, err
	}

	// Judge the budgets.
	ack := float64(res.AckP99Ms)
	if math.IsNaN(ack) {
		res.Budgets = append(res.Budgets, "ack p99 unavailable from /metrics")
	} else if ack > sw.BudgetAckP99Ms {
		res.Budgets = append(res.Budgets,
			fmt.Sprintf("ack p99 %.3fms exceeds budget %.3fms", ack, sw.BudgetAckP99Ms))
	}
	for _, stage := range sortedStageKeys(sw.BudgetStageP99Ms) {
		budget := sw.BudgetStageP99Ms[stage]
		got, ok := res.StageP99Ms[stage]
		if !ok {
			res.Budgets = append(res.Budgets, fmt.Sprintf("stage %q p99 unavailable from /metrics", stage))
			continue
		}
		if got > budget {
			res.Budgets = append(res.Budgets,
				fmt.Sprintf("stage %q p99 %.3fms exceeds budget %.3fms", stage, got, budget))
		}
	}
	res.Pass = len(res.Budgets) == 0

	fmt.Fprintf(out, "  ticks %d (%.0f/s), migrations %d, ack p99 %.3fms (budget %.3fms)\n",
		res.Ticks, res.TicksPerSec, res.Migrations, ack, sw.BudgetAckP99Ms)
	for stage, ms := range res.StageP99Ms {
		fmt.Fprintf(out, "  stage %-12s p99 %.3fms\n", stage, ms)
	}
	for _, b := range res.Budgets {
		fmt.Fprintf(out, "  BREACH: %s\n", b)
	}
	return res, nil
}

// driveSweep creates the sweep's tenants and pumps sequenced streams at the
// configured missing rate until the deadline, with optional live-migration
// churn, filling the throughput fields of res.
func driveSweep(ctx context.Context, c *client.Client, sw experiments.SLOSweep,
	duration, migrate time.Duration, res *sloResult) error {

	streams := make([]string, sw.Width)
	for i := range streams {
		streams[i] = fmt.Sprintf("s%03d", i)
	}
	ids := make([]string, sw.Tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("slo-%s-%04d", sanitize(sw.Name), i)
		err := c.CreateTenant(ctx, ids[i], client.CreateTenantRequest{
			Streams: streams,
			Config: &client.Config{
				K: 3, PatternLength: 8, D: 2, WindowLength: 1024, SkipDiagnostics: true,
			},
		})
		if err != nil {
			return fmt.Errorf("creating %s: %w", ids[i], err)
		}
	}

	var (
		ticks      atomic.Uint64
		migrations atomic.Uint64
		wg         sync.WaitGroup
	)
	deadline := time.Now().Add(duration)
	start := time.Now()
	errCh := make(chan error, len(ids)+1)
	for ti := range ids {
		wg.Add(1)
		go func(tenant string, seed uint64) {
			defer wg.Done()
			if err := pump(ctx, c, tenant, sw, seed, deadline, &ticks); err != nil {
				errCh <- fmt.Errorf("%s: %w", tenant, err)
			}
		}(ids[ti], uint64(ti)+1)
	}
	if migrate > 0 && sw.Shards > 1 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(migrate)
			defer t.Stop()
			for i := 0; time.Now().Before(deadline); i++ {
				select {
				case <-t.C:
				case <-ctx.Done():
					return
				}
				id := ids[(i/sw.Shards)%len(ids)]
				mres, err := c.MigrateTenant(ctx, id, i%sw.Shards)
				if err != nil {
					errCh <- fmt.Errorf("migrating %s: %w", id, err)
					return
				}
				if mres.From != mres.To {
					migrations.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err // any stream or migration error fails the sweep
	}
	elapsed := time.Since(start)
	res.Ticks = ticks.Load()
	res.TicksPerSec = float64(res.Ticks) / elapsed.Seconds()
	res.Migrations = migrations.Load()
	if res.Ticks == 0 {
		return fmt.Errorf("no ticks were acknowledged")
	}
	if migrate > 0 && sw.Shards > 1 && res.Migrations == 0 {
		return fmt.Errorf("migration churn requested but zero migrations completed")
	}
	return nil
}

// pump drives one tenant's sequenced stream until the deadline.
func pump(ctx context.Context, c *client.Client, tenant string, sw experiments.SLOSweep,
	seed uint64, deadline time.Time, ticks *atomic.Uint64) error {

	batch := sw.Batch
	if batch <= 0 {
		batch = 1
	}
	st, err := c.OpenStream(ctx, tenant, client.StreamOptions{
		Sequenced: true, MaxInFlight: 128, Batch: batch,
	})
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() {
		for {
			if _, err := st.Recv(ctx); err == io.EOF {
				done <- nil
				return
			} else if err != nil {
				done <- err
				return
			}
			ticks.Add(1)
		}
	}()

	// splitmix64, matching the deterministic generator idiom of
	// internal/dataset: the sweep's load is reproducible per (sweep, tenant).
	next := func() float64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return float64(z^(z>>31)) / float64(math.MaxUint64)
	}
	row := make([]float64, sw.Width)
	const warmup = 16
	var serr error
	for n := 0; time.Now().Before(deadline); n++ {
		for i := range row {
			base := math.Sin(2*math.Pi*float64(n)/96 + float64(i))
			row[i] = math.Round(100*(20+5*base+0.1*next())) / 100
			if n > warmup && next() < sw.Missing {
				row[i] = math.NaN()
			}
		}
		if serr = st.Send(ctx, row); serr != nil {
			break
		}
	}
	cerr := st.Close()
	rerr := <-done
	if serr == nil {
		serr = rerr
	}
	if serr == nil {
		serr = cerr
	}
	return serr
}

// scrapeSweep pulls the server's /metrics and fills the p99 fields.
func scrapeSweep(ctx context.Context, c *client.Client, res *sloResult) error {
	text, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("scraping /metrics: %w", err)
	}
	sc, err := obs.ParseProm(text)
	if err != nil {
		return fmt.Errorf("parsing /metrics: %w", err)
	}
	res.AckP99Ms = experiments.JSONFloat(sc.StageQuantile("tkcm_ack_seconds", 0.99, nil) * 1e3)
	res.StageP99Ms = make(map[string]float64)
	for st := 0; st < obs.NumStages; st++ {
		name := obs.Stage(st).String()
		p99 := sc.StageQuantile("tkcm_tick_stage_seconds", 0.99, map[string]string{"stage": name})
		if !math.IsNaN(p99) {
			res.StageP99Ms[name] = p99 * 1e3
		}
	}
	return nil
}

// waitHealthy polls the server until it answers /v1/health (or the context
// dies).
func waitHealthy(ctx context.Context, c *client.Client) error {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Health(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
	return fmt.Errorf("server did not become healthy within 15s")
}

// freeAddr reserves a loopback port for the serve process.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// sanitize keeps tenant IDs to the safe charset.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' {
			out = append(out, c)
		} else {
			out = append(out, '-')
		}
	}
	return string(out)
}

// sortedStageKeys returns the budget map's keys in stable order.
func sortedStageKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
