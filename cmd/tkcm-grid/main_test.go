package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tkcm/internal/experiments"
)

// writeSpec writes a minimal 2-cell grid spec (SBR × block × {TKCM, Interp})
// and returns its path.
func writeSpec(t *testing.T, dir string) string {
	t.Helper()
	spec := map[string]any{
		"schema":     experiments.GridSchema,
		"name":       "cli-test",
		"seed":       5,
		"datasets":   []string{"SBR"},
		"algorithms": []string{"TKCM", "Interp"},
		"scenarios":  []map[string]any{{"kind": "block"}},
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "experiments.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-repeat", "0"}, &out); err == nil {
		t.Fatal("-repeat 0 accepted")
	}
	if err := run([]string{"-rebaseline"}, &out); err == nil {
		t.Fatal("-rebaseline without -baseline accepted")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-spec", filepath.Join(t.TempDir(), "nope.json")}, &out); err == nil {
		t.Fatal("missing spec accepted")
	}
}

func TestListCells(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	var out bytes.Buffer
	if err := run([]string{"-spec", spec, "-list"}, &out); err != nil {
		t.Fatal(err)
	}
	listing := out.String()
	for _, want := range []string{"SBR/block/l=72/TKCM", "SBR/block/l=72/Interp"} {
		if !strings.Contains(listing, want) {
			t.Fatalf("listing missing %s:\n%s", want, listing)
		}
	}
	if n := strings.Count(listing, "\n"); n != 2 {
		t.Fatalf("expected 2 cells, got %d:\n%s", n, listing)
	}
}

func TestSLOWithoutSweeps(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	var out bytes.Buffer
	err := run([]string{"-spec", spec, "-slo"}, &out)
	if err == nil || !strings.Contains(err.Error(), "no slo sweeps") {
		t.Fatalf("err = %v, want no-sweeps error", err)
	}
}

// TestGridCLIGate runs the real CLI end to end on a 2-cell grid: re-baseline,
// gate-pass, artifact writing — then doctors the committed baseline to
// simulate an accuracy regression and asserts the gate makes run() fail
// (exit ≠ 0 in main), which is the CI behaviour the quick gate relies on.
func TestGridCLIGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real SmallScale grid cell")
	}
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	baseline := filepath.Join(dir, "ACCURACY.json")
	outDir := filepath.Join(dir, "paper_runs")

	var out bytes.Buffer
	if err := run([]string{"-spec", spec, "-out", outDir, "-rebaseline", "-baseline", baseline}, &out); err != nil {
		t.Fatalf("rebaseline run: %v\n%s", err, out.String())
	}
	for _, f := range []string{"summary.json", "summary.md"} {
		if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
			t.Fatalf("artifact %s not written: %v", f, err)
		}
	}

	out.Reset()
	if err := run([]string{"-spec", spec, "-baseline", baseline}, &out); err != nil {
		t.Fatalf("gate should pass against its own baseline: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "accuracy gate passed") {
		t.Fatalf("no pass message:\n%s", out.String())
	}

	// Doctor the baseline: pretend the pinned TKCM accuracy was 100× better,
	// making the (unchanged) current run look like a huge regression.
	b, err := experiments.LoadBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	doctored := false
	for key, cell := range b.Cells {
		if strings.HasSuffix(key, "/TKCM") && !math.IsNaN(float64(cell.RMSE)) {
			cell.RMSE /= 100
			cell.SMAPE /= 100
			b.Cells[key] = cell
			doctored = true
		}
	}
	if !doctored {
		t.Fatal("no TKCM cell to doctor")
	}
	if err := b.Save(baseline); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run([]string{"-spec", spec, "-baseline", baseline}, &out)
	if err == nil {
		t.Fatalf("gate passed against a doctored baseline:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ACCURACY GATE FAILED") {
		t.Fatalf("no failure report:\n%s", out.String())
	}
}

// TestGridCLIRepeatDeterminism: -repeat 2 re-runs the grid and verifies the
// renderings match byte for byte.
func TestGridCLIRepeatDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real SmallScale grid cell twice")
	}
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	var out bytes.Buffer
	if err := run([]string{"-spec", spec, "-repeat", "2"}, &out); err != nil {
		t.Fatalf("repeat run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "repeat 2: byte-identical summary") {
		t.Fatalf("no determinism confirmation:\n%s", out.String())
	}
}
