package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"tkcm/internal/experiments"
)

// buildServe compiles tkcm-serve once for the SLO tests.
func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tkcm-serve")
	out, err := exec.Command("go", "build", "-o", bin, "tkcm/cmd/tkcm-serve").CombinedOutput()
	if err != nil {
		t.Fatalf("building tkcm-serve: %v\n%s", err, out)
	}
	return bin
}

// writeSLOSpec writes a spec whose only content is one short SLO sweep with
// the given latency budgets.
func writeSLOSpec(t *testing.T, dir string, ackBudgetMs float64, stageBudgets map[string]float64) string {
	t.Helper()
	spec := experiments.GridSpec{
		Schema:     experiments.GridSchema,
		Name:       "slo-test",
		Seed:       1,
		Datasets:   []string{"SBR"},
		Algorithms: []string{"TKCM"},
		Scenarios:  []experiments.GridScenario{{Kind: "block"}},
	}
	spec.SLO.Sweeps = []experiments.SLOSweep{{
		Name: "smoke", Shards: 2, Tenants: 2, Width: 4, Batch: 16,
		Missing: 0.1, Duration: "2s", MigrateEvery: "300ms",
		BudgetAckP99Ms: ackBudgetMs, BudgetStageP99Ms: stageBudgets,
	}}
	raw, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "slo.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSLOSweepEndToEnd drives a real tkcm-serve process through one sweep
// with generous budgets and asserts the per-stage p99s were scraped from
// /metrics and the run passes; then re-judges the same machinery against an
// impossible ack budget and asserts the breach fails the run.
func TestSLOSweepEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real server process")
	}
	bin := buildServe(t)
	dir := t.TempDir()

	// Pass: budgets no local run should breach.
	spec := writeSLOSpec(t, dir, 10_000, map[string]float64{"engine": 5_000, "wal_commit": 5_000})
	outDir := filepath.Join(dir, "runs")
	var out bytes.Buffer
	if err := run([]string{"-spec", spec, "-slo", "-serve-bin", bin, "-out", outDir}, &out); err != nil {
		t.Fatalf("sweep failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all 1 slo sweeps within budget") {
		t.Fatalf("no pass confirmation:\n%s", out.String())
	}
	raw, err := os.ReadFile(filepath.Join(outDir, "slo.json"))
	if err != nil {
		t.Fatal(err)
	}
	var results []sloResult
	if err := json.Unmarshal(raw, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Pass {
		t.Fatalf("slo.json = %+v", results)
	}
	r := results[0]
	if r.Ticks == 0 {
		t.Fatal("sweep acknowledged zero ticks")
	}
	if r.Migrations == 0 {
		t.Fatal("migration churn completed zero migrations")
	}
	// Per-stage p99s must come from the server's own histograms.
	for _, stage := range []string{"decode", "engine", "ack"} {
		if _, ok := r.StageP99Ms[stage]; !ok {
			t.Fatalf("stage %q p99 missing from scrape: %+v", stage, r.StageP99Ms)
		}
	}
	if float64(r.AckP99Ms) <= 0 {
		t.Fatalf("ack p99 = %v, want > 0", r.AckP99Ms)
	}

	// Breach: an ack budget no real server can meet must fail the run with
	// a named breach in the report.
	spec = writeSLOSpec(t, dir, 0.000001, nil)
	out.Reset()
	err = run([]string{"-spec", spec, "-slo", "-serve-bin", bin, "-out", outDir}, &out)
	if err == nil || !strings.Contains(err.Error(), "breached") {
		t.Fatalf("err = %v, want budget breach\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "BREACH: ack p99") {
		t.Fatalf("no breach detail:\n%s", out.String())
	}
}
