// Command tkcm-grid runs the reproducible paper grid: every dataset ×
// missingness-scenario × pattern-length × algorithm cell of a declarative
// spec (experiments.json), deterministically seeded, writing the
// machine-readable summary plus human tables into a paper_runs/ directory —
// and gates accuracy against the committed ACCURACY.json baseline the same
// way tkcm-bench gates performance against BENCH_engine.json.
//
// Usage:
//
//	tkcm-grid -spec experiments.json -out paper_runs/            # full grid
//	tkcm-grid -spec experiments.json -out paper_runs/ -quick \
//	          -baseline ACCURACY.json                            # CI gate
//	tkcm-grid -spec experiments.json -quick -rebaseline \
//	          -baseline ACCURACY.json                            # re-pin
//	tkcm-grid -spec experiments.json -out paper_runs/ -slo       # SLO sweeps
//
// The grid is a pure function of (spec, scale): -repeat 2 re-runs it and
// fails on any byte difference between the rendered summaries, which CI uses
// to pin determinism. The accuracy gate fails (exit 1) when any TKCM cell's
// RMSE or SMAPE regresses by more than -regress (default 5%) against the
// baseline. -slo runs the spec's serving sweeps instead: each drives a real
// tkcm-serve process (shards × tenants × missing-rate × migration churn) and
// fails on any declared ack- or stage-latency budget breach, measured from
// the server's own /metrics histograms. TKCM_FULL=1 selects the paper-scale
// datasets (nightly); the default is the CI-sized small scale.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tkcm/internal/experiments"
)

type options struct {
	specPath     string
	outDir       string
	quick        bool
	baselinePath string
	regress      float64
	rebaseline   bool
	repeat       int
	slo          bool
	serveBin     string
	listCells    bool
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tkcm-grid:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tkcm-grid", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.specPath, "spec", "experiments.json", "grid spec to run")
	fs.StringVar(&o.outDir, "out", "", "directory for summary.json / summary.md / slo.json (empty = don't write)")
	fs.BoolVar(&o.quick, "quick", false, "run the spec's CI-sized quick view instead of the full grid")
	fs.StringVar(&o.baselinePath, "baseline", "", "gate TKCM cells against this committed ACCURACY.json (with -rebaseline: write it)")
	fs.Float64Var(&o.regress, "regress", 0.05, "fractional RMSE/SMAPE regression tolerance for the accuracy gate")
	fs.BoolVar(&o.rebaseline, "rebaseline", false, "re-pin -baseline from this run instead of gating against it")
	fs.IntVar(&o.repeat, "repeat", 1, "run the grid this many times and fail unless all renderings are byte-identical")
	fs.BoolVar(&o.slo, "slo", false, "run the spec's serving-SLO sweeps (drives real tkcm-serve processes) instead of the accuracy grid")
	fs.StringVar(&o.serveBin, "serve-bin", "", "tkcm-serve binary for -slo (empty = go build ./cmd/tkcm-serve into a temp dir)")
	fs.BoolVar(&o.listCells, "list", false, "print the cell keys the grid would run, then exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.repeat < 1 {
		return fmt.Errorf("-repeat must be ≥ 1")
	}
	if o.rebaseline && o.baselinePath == "" {
		return fmt.Errorf("-rebaseline needs -baseline to know where to write")
	}

	spec, err := experiments.LoadGridSpec(o.specPath)
	if err != nil {
		return err
	}
	scale := experiments.ActiveScale()

	if o.slo {
		return runSLO(spec, o, out)
	}
	if o.listCells {
		return listCells(scale, spec, o, out)
	}

	mode := "full"
	if o.quick {
		mode = "quick"
	}
	fmt.Fprintf(out, "# tkcm-grid — %s grid %q, seed %d, scale %s\n", mode, spec.Name, spec.Seed, scale.Name)

	res, js, md, err := runOnce(scale, spec, o, out)
	if err != nil {
		return err
	}
	for i := 1; i < o.repeat; i++ {
		_, js2, md2, err := runOnce(scale, spec, o, io.Discard)
		if err != nil {
			return fmt.Errorf("repeat %d: %w", i+1, err)
		}
		if !bytes.Equal(js, js2) || !bytes.Equal(md, md2) {
			return fmt.Errorf("repeat %d rendered a different summary — the grid is not deterministic", i+1)
		}
		fmt.Fprintf(out, "repeat %d: byte-identical summary\n", i+1)
	}

	if o.outDir != "" {
		if err := os.MkdirAll(o.outDir, 0o755); err != nil {
			return err
		}
		jsPath := filepath.Join(o.outDir, "summary.json")
		mdPath := filepath.Join(o.outDir, "summary.md")
		if err := os.WriteFile(jsPath, js, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(mdPath, md, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s and %s (%d cells)\n", jsPath, mdPath, len(res.Cells))
	}
	out.Write(md)

	if o.baselinePath == "" {
		return nil
	}
	if o.rebaseline {
		if err := experiments.NewBaseline(res).Save(o.baselinePath); err != nil {
			return err
		}
		fmt.Fprintf(out, "re-pinned %s (%d cells)\n", o.baselinePath, len(res.Cells))
		return nil
	}
	baseline, err := experiments.LoadBaseline(o.baselinePath)
	if err != nil {
		return err
	}
	failures := baseline.Gate(res, o.regress)
	if len(failures) > 0 {
		fmt.Fprintf(out, "\nACCURACY GATE FAILED (%d cells):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(out, "  %s\n", f)
		}
		return fmt.Errorf("accuracy regressed beyond %.0f%% on %d TKCM cells (re-pin with -rebaseline only for a justified change)", o.regress*100, len(failures))
	}
	fmt.Fprintf(out, "accuracy gate passed: no TKCM cell regressed beyond %.0f%% of %s\n", o.regress*100, o.baselinePath)
	return nil
}

// runOnce executes the grid and renders both summaries.
func runOnce(scale experiments.Scale, spec *experiments.GridSpec, o options, out io.Writer) (*experiments.GridResult, []byte, []byte, error) {
	res, err := experiments.RunGrid(scale, spec, experiments.GridOptions{
		Quick: o.quick,
		Progress: func(c experiments.CellResult) {
			fmt.Fprintf(out, "  %-40s rmse %-10.4g smape %.3g%%\n", c.Key(), float64(c.RMSE), float64(c.SMAPE))
		},
	})
	if err != nil {
		return nil, nil, nil, err
	}
	js, err := experiments.RenderSummaryJSON(res)
	if err != nil {
		return nil, nil, nil, err
	}
	md, err := experiments.RenderSummaryMD(res)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, js, md, nil
}

// listCells prints the cell keys the configured run would execute, without
// running anything — a cheap way to preview a spec edit.
func listCells(scale experiments.Scale, spec *experiments.GridSpec, o options, out io.Writer) error {
	for _, key := range experiments.GridCellKeys(scale, spec, o.quick) {
		fmt.Fprintln(out, key)
	}
	return nil
}
