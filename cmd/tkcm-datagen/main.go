// Command tkcm-datagen emits the synthetic datasets of the evaluation as CSV
// (header row of series names, one row per tick, "NaN" for missing values).
// Optionally it erases a block of values from one series so the output can
// be fed straight into tkcm-impute.
//
// Usage:
//
//	tkcm-datagen -dataset sbr1d -ticks 5760 > sbr1d.csv
//	tkcm-datagen -dataset chlorine -erase j3:2000:288 > chlorine-with-gap.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tkcm/internal/dataset"
	"tkcm/internal/timeseries"
)

func main() {
	var (
		name   = flag.String("dataset", "sbr", "dataset: sbr, sbr1d, flights, chlorine")
		ticks  = flag.Int("ticks", 0, "series length in ticks (0 = dataset default)")
		series = flag.Int("series", 0, "number of series (0 = dataset default)")
		seed   = flag.Uint64("seed", 0, "generator seed (0 = dataset default)")
		erase  = flag.String("erase", "", "erase a block: series:start:length (e.g. s0:4000:288)")
		out    = flag.String("out", "-", "output CSV path ('-' for stdout)")
	)
	flag.Parse()

	frame, err := generate(*name, *ticks, *series, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tkcm-datagen:", err)
		os.Exit(2)
	}
	if *erase != "" {
		if err := eraseBlock(frame, *erase); err != nil {
			fmt.Fprintln(os.Stderr, "tkcm-datagen:", err)
			os.Exit(2)
		}
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tkcm-datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, frame); err != nil {
		fmt.Fprintln(os.Stderr, "tkcm-datagen:", err)
		os.Exit(1)
	}
}

func generate(name string, ticks, series int, seed uint64) (*timeseries.Frame, error) {
	switch strings.ToLower(name) {
	case "sbr":
		cfg := dataset.DefaultSBRConfig()
		applySBR(&cfg, ticks, series, seed)
		return dataset.SBR(cfg), nil
	case "sbr1d", "sbr-1d":
		cfg := dataset.DefaultSBRConfig()
		applySBR(&cfg, ticks, series, seed)
		return dataset.SBR1d(cfg), nil
	case "flights":
		cfg := dataset.DefaultFlightsConfig()
		if ticks > 0 {
			cfg.Ticks = ticks
		}
		if series > 0 {
			cfg.Airports = series
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return dataset.Flights(cfg), nil
	case "chlorine":
		cfg := dataset.DefaultChlorineConfig()
		if ticks > 0 {
			cfg.Ticks = ticks
		}
		if series > 0 {
			cfg.Junctions = series
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		return dataset.Chlorine(cfg), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (sbr, sbr1d, flights, chlorine)", name)
	}
}

func applySBR(cfg *dataset.SBRConfig, ticks, series int, seed uint64) {
	if ticks > 0 {
		cfg.Ticks = ticks
	}
	if series > 0 {
		cfg.Stations = series
	}
	if seed != 0 {
		cfg.Seed = seed
	}
}

func eraseBlock(frame *timeseries.Frame, spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return fmt.Errorf("erase spec %q is not series:start:length", spec)
	}
	start, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("erase start: %w", err)
	}
	length, err := strconv.Atoi(parts[2])
	if err != nil {
		return fmt.Errorf("erase length: %w", err)
	}
	_, err = dataset.InjectBlock(frame, parts[0], start, length)
	return err
}
