package main

import (
	"testing"

	"tkcm/internal/timeseries"
)

func TestGenerateKnownDatasets(t *testing.T) {
	cases := []struct {
		name          string
		ticks, series int
		wantW, wantL  int
	}{
		{"sbr", 600, 3, 3, 600},
		{"sbr1d", 600, 3, 3, 600},
		{"SBR-1d", 600, 3, 3, 600}, // case-insensitive alias
		{"flights", 1500, 4, 4, 1500},
		{"chlorine", 600, 5, 5, 600},
	}
	for _, c := range cases {
		f, err := generate(c.name, c.ticks, c.series, 9)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if f.Width() != c.wantW || f.Len() != c.wantL {
			t.Fatalf("%s: shape %dx%d, want %dx%d", c.name, f.Width(), f.Len(), c.wantW, c.wantL)
		}
	}
}

func TestGenerateDefaultsApplied(t *testing.T) {
	f, err := generate("flights", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Width() != 8 || f.Len() != 8801 {
		t.Fatalf("flights defaults: %dx%d, want 8x8801", f.Width(), f.Len())
	}
}

func TestGenerateUnknownDataset(t *testing.T) {
	if _, err := generate("nope", 0, 0, 0); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestEraseBlockSpec(t *testing.T) {
	f, err := generate("sbr", 500, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eraseBlock(f, "s0:100:50"); err != nil {
		t.Fatal(err)
	}
	s := f.ByName("s0")
	if s.CountMissing() != 50 || !s.MissingAt(100) || !s.MissingAt(149) {
		t.Fatalf("erase wrong: %d missing", s.CountMissing())
	}
	for _, bad := range []string{"s0:100", "s0:x:50", "s0:100:y", "zz:0:10", "s0:490:50"} {
		g, _ := generate("sbr", 500, 2, 1)
		if err := eraseBlock(g, bad); err == nil {
			t.Errorf("bad erase spec %q accepted", bad)
		}
	}
}

func TestGeneratedDataComplete(t *testing.T) {
	for _, name := range []string{"sbr", "sbr1d", "flights", "chlorine"} {
		f, err := generate(name, 400, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range f.Series {
			if !s.Complete() {
				t.Fatalf("%s emitted missing values", name)
			}
			for _, v := range s.Values {
				if timeseries.IsMissing(v) {
					t.Fatalf("%s emitted NaN", name)
				}
			}
		}
	}
}
