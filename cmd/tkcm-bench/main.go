// Command tkcm-bench regenerates the tables and figures of the paper's
// evaluation (Sec. 7). Each experiment prints the same rows/series the paper
// reports; see EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	tkcm-bench -experiment all            # every experiment at the active scale
//	tkcm-bench -experiment fig16          # one experiment
//	tkcm-bench -experiment fig11 -full    # paper-scale dimensions (slow)
//	tkcm-bench -list                      # list experiment ids
//
// The active scale is "small" unless -full or TKCM_FULL=1 selects the
// paper-scale dimensions (1-year SBR windows etc.).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"tkcm/internal/benchcases"
	"tkcm/internal/benchfmt"
	"tkcm/internal/core"
	"tkcm/internal/experiments"
)

type experiment struct {
	id    string
	about string
	run   func(experiments.Scale) error
}

// Flags consumed by the engine-throughput experiments.
var (
	profilerFlag = flag.String("profiler", "", "pin the engine experiment to one extraction strategy: naive|fft|incremental (default: sweep all)")
	parallelFlag = flag.Int("parallel", 0, "pin the engine experiment to one Tick worker count (default: sweep 1 and 4)")
	widthFlag    = flag.Int("width", 0, "pin the wide experiment to one stream count (default: sweep 256, plus 1024 at -full)")
	wideTicks    = flag.Int("wide-ticks", 0, "measured steady-state ticks of the wide experiment (default 300, 200 at -full)")
	jsonFlag     = flag.String("json", "", "write machine-readable engine/wide results to this file (e.g. BENCH_engine.json)")
	baselineFlag = flag.String("baseline", "", "pinned experiment: compare against this committed report (e.g. BENCH_engine.json) and fail on regression")
	regressFlag  = flag.Float64("regress", 0.30, "pinned experiment: tolerated ns/op increase over -baseline before failing (0.30 = +30%)")
	benchtime    = flag.String("benchtime", "200ms", "pinned experiment: per-case measurement time (testing -test.benchtime)")
)

// jsonRows collects engine/wide measurements for the -json report (schema
// benchfmt.SchemaV2, shared with cmd/tkcm-loadgen).
var jsonRows []benchfmt.Record

func recordJSON(experiment string, row any) {
	jsonRows = append(jsonRows, benchfmt.Record{Experiment: experiment, Row: row})
}

func writeJSON(path, scale string) error {
	return benchfmt.NewReport(scale, jsonRows).WriteFile(path)
}

func main() {
	var (
		expID = flag.String("experiment", "all", "experiment id (see -list), comma-separated ids, or 'all'")
		full  = flag.Bool("full", false, "use paper-scale dimensions (slow; equivalent to TKCM_FULL=1)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	exps := allExperiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.id, e.about)
		}
		return
	}
	if *full {
		os.Setenv("TKCM_FULL", "1")
	}
	scale := experiments.ActiveScale()
	fmt.Printf("# TKCM benchmark suite — scale %q\n\n", scale.Name)

	known := make(map[string]bool, len(exps))
	for _, e := range exps {
		known[e.id] = true
	}
	wanted := make(map[string]bool)
	for _, id := range strings.Split(*expID, ",") {
		id = strings.TrimSpace(id)
		if id != "all" && !known[id] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
			os.Exit(2)
		}
		wanted[id] = true
	}
	selected := exps[:0:0]
	for _, e := range exps {
		if wanted["all"] || wanted[e.id] {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "no experiment selected; use -list\n")
		os.Exit(2)
	}
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("== %s — %s\n", e.id, e.about)
		if err := e.run(scale); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if *jsonFlag != "" {
		if err := writeJSON(*jsonFlag, scale.Name); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonFlag, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d machine-readable rows to %s\n", len(jsonRows), *jsonFlag)
	}
}

func allExperiments() []experiment {
	return []experiment{
		{"analysis", "Figs. 4–7: sine-wave correlation and pattern-length analysis", runAnalysis},
		{"fig10", "Fig. 10: calibration of d and k", runFig10},
		{"fig11", "Fig. 11: pattern length l on all datasets", runFig11},
		{"fig12", "Fig. 12: recovery with l = 1 vs l = 72", runFig12},
		{"fig13", "Fig. 13: non-linear correlation and average ε vs l (Chlorine)", runFig13},
		{"fig14", "Fig. 14: missing-block length", runFig14},
		{"fig15", "Fig. 15: qualitative comparison with SPIRIT, MUSCLES, CD", runFig15},
		{"fig16", "Fig. 16: RMSE summary comparison (headline result)", runFig16},
		{"fig17", "Fig. 17: runtime linearity in l, d, k, L", runFig17},
		{"perf", "Sec. 7.4: runtime breakdown of TKCM's phases", runPerf},
		{"engine", "streaming-engine throughput: naive vs FFT vs incremental extraction, serial vs parallel ticks", runEngine},
		{"pinned", "pinned hot-path micro-benchmarks (engine tick, columnar batch, WAL append) — CI's regression gate via -baseline", runPinned},
		{"wide", "wide-engine throughput: eager vs demand-driven state over 256+ streams with sparse missingness", runWide},
		{"ablation", "DESIGN.md §4: DP vs greedy vs overlapping, norms, weighting", runAblation},
		{"alignment", "Sec. 8 future work: DTW-aligned series + l=1 vs shifted series + l>1", runAlignment},
	}
}

func runEngine(scale experiments.Scale) error {
	kinds := []core.ProfilerKind{core.ProfilerNaive, core.ProfilerFFT, core.ProfilerIncremental}
	if *profilerFlag != "" {
		k, err := core.ParseProfilerKind(*profilerFlag)
		if err != nil {
			return err
		}
		kinds = []core.ProfilerKind{k}
	}
	workers := []int{1, 4}
	if *parallelFlag > 0 {
		workers = []int{*parallelFlag}
	}
	const missingStreams = 4
	tbl := experiments.NewTable(
		"Streaming engine throughput on SBR-1d (targets dropped every 5th tick)",
		"profiler", "workers", "missing", "ticks", "imputations", "ticks/s", "allocs/tick", "per imputation")
	var baseline float64
	var speedups []string
	for _, k := range kinds {
		for _, w := range workers {
			row, err := experiments.EngineThroughput(scale, k, w, missingStreams)
			if err != nil {
				return err
			}
			recordJSON("engine", row)
			tbl.AddRow(row.Profiler, row.Workers, row.MissingStreams, row.Ticks, row.Imputations,
				fmt.Sprintf("%.0f", row.TicksPerSec), fmt.Sprintf("%.1f", row.AllocsPerTick),
				row.PerImputation.Round(time.Microsecond))
			if baseline == 0 {
				baseline = row.TicksPerSec
			} else {
				speedups = append(speedups, fmt.Sprintf("%s/w%d %.1fx", row.Profiler, row.Workers, row.TicksPerSec/baseline))
			}
		}
	}
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		return err
	}
	if len(speedups) > 0 {
		fmt.Printf("speedup vs first row: %s\n", strings.Join(speedups, ", "))
	}
	return nil
}

// pinnedRow is one pinned micro-benchmark measurement; its Name keys the
// -baseline comparison across revisions.
type pinnedRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// testingInit prepares the testing package for standalone testing.Benchmark
// runs exactly once (a second testing.Init would panic on flag redefinition).
var testingInit sync.Once

// runPinned runs the shared benchcases bodies through testing.Benchmark —
// the same code the root bench_test.go wrappers measure — and, with
// -baseline, fails when any case's ns/op regressed more than -regress over
// the committed report. CI runs this against the checked-in
// BENCH_engine.json before refreshing it.
func runPinned(experiments.Scale) error {
	testingInit.Do(testing.Init)
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		return err
	}
	base := map[string]pinnedRow{}
	if *baselineFlag != "" {
		var err error
		if base, err = loadPinnedBaseline(*baselineFlag); err != nil {
			return err
		}
	}
	tbl := experiments.NewTable(
		fmt.Sprintf("Pinned hot-path micro-benchmarks (benchtime %s; ns/op is per tick / per WAL row)", *benchtime),
		"case", "batch", "ns/op", "allocs/op", "baseline ns/op", "Δ")
	var failures []string
	for _, c := range benchcases.Cases() {
		// Min of three runs: scheduling noise only ever inflates a
		// measurement, so the minimum is the robust per-op estimate and
		// keeps the ±30% gate from tripping on a noisy neighbor.
		row := pinnedRow{Name: c.Name}
		for run := 0; run < 3; run++ {
			r := testing.Benchmark(c.Fn)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if run == 0 || ns < row.NsPerOp {
				row.NsPerOp = ns
				row.AllocsPerOp = r.AllocsPerOp()
			}
		}
		jsonRows = append(jsonRows, benchfmt.Record{Experiment: "pinned", BatchSize: c.Batch, Row: row})
		baseNs, delta := "—", "—"
		if b, ok := base[c.Name]; ok && b.NsPerOp > 0 {
			ratio := row.NsPerOp/b.NsPerOp - 1
			baseNs = fmt.Sprintf("%.1f", b.NsPerOp)
			delta = fmt.Sprintf("%+.1f%%", 100*ratio)
			if ratio > *regressFlag {
				failures = append(failures, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (%+.1f%% > +%.0f%%)",
					c.Name, row.NsPerOp, b.NsPerOp, 100*ratio, 100**regressFlag))
			}
		}
		tbl.AddRow(c.Name, c.Batch, fmt.Sprintf("%.1f", row.NsPerOp), row.AllocsPerOp, baseNs, delta)
	}
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		return err
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// loadPinnedBaseline reads the pinned rows of a committed benchfmt report.
func loadPinnedBaseline(path string) (map[string]pinnedRow, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var doc struct {
		Rows []struct {
			Experiment string          `json:"experiment"`
			Row        json.RawMessage `json:"row"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	base := make(map[string]pinnedRow)
	for _, r := range doc.Rows {
		if r.Experiment != "pinned" {
			continue
		}
		var row pinnedRow
		if err := json.Unmarshal(r.Row, &row); err != nil {
			return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
		}
		base[row.Name] = row
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("baseline %s has no pinned rows", path)
	}
	return base, nil
}

// runWide measures the production-scale workload the demand-driven profiler
// state targets: hundreds to thousands of co-evolving streams with ≤5% of
// them missing per tick, references drawn from a small shared pool. The
// "eager" row is the PR 1-style default (every stream's aggregates
// maintained every tick); "lazy" is the demand-driven default; "lazy+lean"
// additionally skips Result diagnostics (throughput mode).
func runWide(scale experiments.Scale) error {
	widths := []int{256}
	winLen := 4032
	ticks := 300
	if scale.Name == "paper" {
		widths = []int{256, 1024}
		winLen = 8760
		ticks = 200
	}
	if *widthFlag > 0 {
		widths = []int{*widthFlag}
	}
	if *wideTicks > 0 {
		ticks = *wideTicks
	}
	tbl := experiments.NewTable(
		fmt.Sprintf("Wide-engine throughput (L=%d, 5%% of streams missing per tick, shared reference pool)", winLen),
		"mode", "width", "missing", "workers", "ticks/s", "ns/tick", "allocs/tick")
	var summaries []string
	for _, width := range widths {
		var baseline float64
		var speedups []string
		for _, wc := range experiments.WideCases() {
			row, err := experiments.WideEngineThroughput(width, winLen, ticks, 0.05, wc)
			if err != nil {
				return err
			}
			recordJSON("wide", row)
			tbl.AddRow(row.Mode, row.Width, row.MissingPerTick, row.Workers,
				fmt.Sprintf("%.0f", row.TicksPerSec), fmt.Sprintf("%.0f", row.NsPerTick),
				fmt.Sprintf("%.1f", row.AllocsPerTick))
			if baseline == 0 {
				baseline = row.NsPerTick
			} else {
				speedups = append(speedups, fmt.Sprintf("%s %.1fx", row.Mode, baseline/row.NsPerTick))
			}
		}
		if len(speedups) > 0 {
			summaries = append(summaries, fmt.Sprintf("width %d speedup vs eager: %s", width, strings.Join(speedups, ", ")))
		}
	}
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		return err
	}
	for _, s := range summaries {
		fmt.Println(s)
	}
	return nil
}

func runAlignment(scale experiments.Scale) error {
	rows, err := experiments.AlignmentExperiment(scale)
	if err != nil {
		return err
	}
	tbl := experiments.NewTable("Sec. 8 — alignment experiment on SBR-1d", "variant", "RMSE")
	for _, r := range rows {
		tbl.AddRow(r.Variant, r.RMSE)
	}
	_, err = tbl.WriteTo(os.Stdout)
	return err
}

func runAnalysis(experiments.Scale) error {
	a := experiments.AnalyzeSines()
	tbl := experiments.NewTable("Sec. 5 analysis on s = sind(t), r1 = 1.5·sind(t)+1, r2 = sind(t−90)",
		"quantity", "value", "paper")
	tbl.AddRow("ρ(s, r1)", a.PearsonLinear, "1.0")
	tbl.AddRow("ρ(s, r2)", a.PearsonShifted, "−0.0085")
	tbl.AddRow("near-zero patterns r1, l=1", a.NearZeroR1L1, "5 (Fig. 6a)")
	tbl.AddRow("near-zero patterns r1, l=60", a.NearZeroR1L60, "2 (Fig. 6b)")
	tbl.AddRow("near-zero patterns r2, l=1", a.NearZeroR2L1, "several (Fig. 7a)")
	tbl.AddRow("near-zero patterns r2, l=60", a.NearZeroR2L60, "2 (Fig. 7b)")
	tbl.AddRow("spread of s at matches, r2, l=1", a.SpreadR2L1, "≈1.72 (±0.86)")
	tbl.AddRow("spread of s at matches, r2, l=60", a.SpreadR2L60, "0")
	_, err := tbl.WriteTo(os.Stdout)
	return err
}

func runFig10(scale experiments.Scale) error {
	rows, err := experiments.Fig10Calibration(scale)
	if err != nil {
		return err
	}
	tbl := experiments.NewTable("Fig. 10 — RMSE vs d (left) and k (right)", "dataset", "param", "value", "RMSE")
	for _, r := range rows {
		tbl.AddRow(r.Dataset, r.Param, r.Value, r.RMSE)
	}
	_, err = tbl.WriteTo(os.Stdout)
	return err
}

func runFig11(scale experiments.Scale) error {
	rows, err := experiments.Fig11PatternLength(scale)
	if err != nil {
		return err
	}
	tbl := experiments.NewTable("Fig. 11 — RMSE vs pattern length l", "dataset", "l", "RMSE")
	for _, r := range rows {
		tbl.AddRow(r.Dataset, r.L, r.RMSE)
	}
	_, err = tbl.WriteTo(os.Stdout)
	return err
}

func runFig12(scale experiments.Scale) error {
	series, err := experiments.Fig12Recovery(scale)
	if err != nil {
		return err
	}
	tbl := experiments.NewTable("Fig. 12 — recovery with l = 1 vs l = 72 (oscillation = std of first difference)",
		"dataset", "RMSE l=1", "RMSE l=72", "osc l=1", "osc l=72", "osc truth")
	for _, s := range series {
		tbl.AddRow(s.Dataset, s.RMSEShort, s.RMSELong, s.OscShort, s.OscLong, s.OscTruth)
	}
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		return err
	}
	for _, s := range series {
		fmt.Printf("%-9s truth %s\n", s.Dataset, experiments.Sparkline(s.Truth, 60))
		fmt.Printf("%-9s l=1   %s\n", "", experiments.Sparkline(s.ShortPattern, 60))
		fmt.Printf("%-9s l=72  %s\n", "", experiments.Sparkline(s.LongPattern, 60))
	}
	return nil
}

func runFig13(scale experiments.Scale) error {
	res, err := experiments.Fig13Epsilon(scale)
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 13a — ρ(s, r1) on Chlorine: %.4f (paper: 0.5, weak linear correlation)\n", res.PearsonTargetRef)
	tbl := experiments.NewTable("Fig. 13b — average ε vs pattern length l", "l", "avg ε", "RMSE")
	for _, r := range res.Rows {
		tbl.AddRow(r.L, r.AvgEpsilon, r.RMSE)
	}
	_, err = tbl.WriteTo(os.Stdout)
	return err
}

func runFig14(scale experiments.Scale) error {
	rows, err := experiments.Fig14BlockLength(scale)
	if err != nil {
		return err
	}
	tbl := experiments.NewTable("Fig. 14 — RMSE vs missing-block length", "dataset", "block", "ticks", "RMSE")
	for _, r := range rows {
		tbl.AddRow(r.Dataset, r.Label, r.Ticks, r.RMSE)
	}
	_, err = tbl.WriteTo(os.Stdout)
	return err
}

func runFig15(scale experiments.Scale) error {
	series, err := experiments.Fig15Comparison(scale)
	if err != nil {
		return err
	}
	tbl := experiments.NewTable("Fig. 15 — one block per dataset, all algorithms", "dataset", "algorithm", "RMSE", "time")
	for _, s := range series {
		for _, r := range s.Rows {
			tbl.AddRow(s.Dataset, r.Algorithm, r.RMSE, r.Elapsed.Round(time.Millisecond))
		}
	}
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		return err
	}
	for _, s := range series {
		fmt.Printf("%-9s truth   %s\n", s.Dataset, experiments.Sparkline(s.Truth, 60))
		algs := make([]string, 0, len(s.Recoveries))
		for alg := range s.Recoveries {
			algs = append(algs, alg)
		}
		sort.Strings(algs)
		for _, alg := range algs {
			fmt.Printf("%-9s %-7s %s\n", "", alg, experiments.Sparkline(s.Recoveries[alg], 60))
		}
	}
	return nil
}

func runFig16(scale experiments.Scale) error {
	rows, err := experiments.Fig16Summary(scale)
	if err != nil {
		return err
	}
	tbl := experiments.NewTable("Fig. 16 — mean RMSE over 4 target series per dataset (headline comparison)",
		"dataset", "algorithm", "RMSE")
	for _, r := range rows {
		tbl.AddRow(r.Dataset, r.Algorithm, r.RMSE)
	}
	_, err = tbl.WriteTo(os.Stdout)
	return err
}

func runFig17(scale experiments.Scale) error {
	rows, err := experiments.Fig17Runtime(scale)
	if err != nil {
		return err
	}
	tbl := experiments.NewTable("Fig. 17 — per-imputation runtime (linear in each parameter)",
		"param", "value", "time per imputation")
	for _, r := range rows {
		tbl.AddRow(r.Param, r.Value, r.PerImputation.Round(time.Microsecond))
	}
	_, err = tbl.WriteTo(os.Stdout)
	return err
}

func runPerf(scale experiments.Scale) error {
	rows, err := experiments.PerfBreakdown(scale)
	if err != nil {
		return err
	}
	tbl := experiments.NewTable("Sec. 7.4 — phase breakdown (paper: extraction ≈ 92% at k = 5)",
		"k", "extraction", "selection")
	for _, r := range rows {
		tbl.AddRow(r.K, fmt.Sprintf("%.1f%%", 100*r.ExtractionFraction), fmt.Sprintf("%.1f%%", 100*r.SelectionFraction))
	}
	_, err = tbl.WriteTo(os.Stdout)
	return err
}

func runAblation(scale experiments.Scale) error {
	var all []experiments.AblationRow
	for _, fn := range []func(experiments.Scale, string) ([]experiments.AblationRow, error){
		experiments.AblationSelection, experiments.AblationNorms, experiments.AblationWeighting,
	} {
		rows, err := fn(scale, experiments.DSSBR1d)
		if err != nil {
			return err
		}
		all = append(all, rows...)
	}
	tbl := experiments.NewTable("Ablations on SBR-1d (DESIGN.md §4)", "variant", "RMSE", "mean Σδ")
	for _, r := range all {
		sum := "—"
		if r.SumDissimilarity != 0 {
			sum = fmt.Sprintf("%.4g", r.SumDissimilarity)
		}
		tbl.AddRow(r.Variant, r.RMSE, sum)
	}
	_, err := tbl.WriteTo(os.Stdout)
	if err != nil {
		return err
	}
	fmt.Println(strings.TrimSpace(`
Notes: 'dp' is the paper's dynamic program (Eq. 5); 'greedy' and
'overlapping' are the failure modes discussed in Secs. 6.1 and 4.1.`))
	return nil
}
