package main

import (
	"testing"

	"tkcm/internal/experiments"
)

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range allExperiments() {
		if e.id == "" || e.about == "" || e.run == nil {
			t.Fatalf("incomplete experiment entry %+v", e)
		}
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
	}
	// Every paper artifact of DESIGN.md §3 must be present.
	for _, want := range []string{"analysis", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "perf", "ablation", "alignment"} {
		if !seen[want] {
			t.Fatalf("experiment %q missing from the table", want)
		}
	}
}

func TestRunAnalysis(t *testing.T) {
	// The analysis experiment is scale-independent and fast; it must not
	// error (output goes to stdout).
	if err := runAnalysis(experiments.SmallScale()); err != nil {
		t.Fatal(err)
	}
}
