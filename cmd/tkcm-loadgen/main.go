// Command tkcm-loadgen drives a running tkcm-serve instance at full tilt
// and reports what the service actually sustains end-to-end: aggregate
// ticks/s, ack latency percentiles (p50/p99), and imputation counts —
// through the real HTTP/NDJSON protocol, the public client package, and
// (when the server runs with -wal-dir) the full durability path.
//
// Usage:
//
//	tkcm-serve   -addr :8080 -checkpoint-dir /tmp/ck -wal-dir /tmp/wal &
//	tkcm-loadgen -addr http://localhost:8080 -tenants 8 -streams 2 \
//	    -duration 30s -missing 0.05 -json LOADGEN.json
//
// The generator creates -tenants fresh tenants (deleted afterwards unless
// -keep), opens -streams concurrent tick streams per tenant, and pumps
// synthetic seasonal rows with a -missing fraction of values dropped. A
// single stream per tenant runs sequenced (exactly-once, reconnecting);
// multiple writers per tenant run unsequenced. With -batch N each stream
// coalesces up to N queued rows into one batch tick line — one shard
// operation and one WAL record per batch instead of per row. With -migrate-interval set
// the run doubles as a live-migration soak: tenants are walked across the
// shards round-robin while their streams pump, and any stream error or
// lost ack under migration is reported as the server bug it would be. The
// -json report uses the tkcm-bench machine-readable schema
// (internal/benchfmt), so CI archives both under the same format.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tkcm/client"
	"tkcm/internal/benchfmt"
	"tkcm/internal/obs"
)

type options struct {
	addr        string
	tenants     int
	streams     int
	width       int
	duration    time.Duration
	missing     float64
	missPattern string
	missRun     int
	zipf        float64
	inflight    int
	batch       int
	window      int
	k, l, d     int
	migrate     time.Duration
	jsonPath    string
	keep        bool
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tkcm-loadgen:", err)
		os.Exit(1)
	}
}

// result aggregates one run for the report and the human summary.
type result struct {
	Tenants      int     `json:"tenants"`
	Streams      int     `json:"streams_per_tenant"`
	Batch        int     `json:"batch"`
	Width        int     `json:"width"`
	MissingRate  float64 `json:"missing_rate"`
	Duration     float64 `json:"duration_seconds"`
	Ticks        uint64  `json:"ticks"`
	TicksPerSec  float64 `json:"ticks_per_sec"`
	Imputations  uint64  `json:"imputations"`
	Duplicates   uint64  `json:"duplicates"`
	Migrations   uint64  `json:"migrations"`
	AckP50Millis float64 `json:"ack_p50_ms"`
	AckP99Millis float64 `json:"ack_p99_ms"`
	AckMaxMillis float64 `json:"ack_max_ms"`
	// Server-side attribution, scraped from the target's /metrics after the
	// run: p99 of each tick stage and of the server-observed end-to-end ack
	// latency, in milliseconds. Absent (zero map) when the scrape failed or
	// the server predates the stage histograms.
	ServerStageP99Millis map[string]float64 `json:"server_stage_p99_ms,omitempty"`
	ServerAckP99Millis   float64            `json:"server_ack_p99_ms,omitempty"`
	// Residency-tier observations, present when the target runs with a
	// resident-engine cap and the run forced hydrations: how many parked
	// engines were rebuilt during the run and the server-observed p99 of
	// doing so (checkpoint restore + WAL tail replay), in milliseconds.
	Hydrations         uint64  `json:"hydrations,omitempty"`
	HydrationP99Millis float64 `json:"hydration_p99_ms,omitempty"`
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("tkcm-loadgen", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.addr, "addr", "http://localhost:8080", "tkcm-serve base URL")
	fs.IntVar(&o.tenants, "tenants", 4, "concurrent tenants to create and drive")
	fs.IntVar(&o.streams, "streams", 1, "concurrent tick streams per tenant (1 = sequenced/exactly-once)")
	fs.IntVar(&o.width, "width", 8, "streams (columns) per tenant row")
	fs.DurationVar(&o.duration, "duration", 10*time.Second, "measurement duration")
	fs.Float64Var(&o.missing, "missing", 0.05, "fraction of values missing (after warmup)")
	fs.StringVar(&o.missPattern, "missing-pattern", "uniform", "how missing values arrive: uniform (i.i.d. per value) or bursty (geometric run lengths per stream, like a flaky sensor)")
	fs.IntVar(&o.missRun, "missing-run", 16, "mean missing-run length in rows for -missing-pattern bursty")
	fs.Float64Var(&o.zipf, "zipf", 0, "skew tenant load with a Zipf exponent: tenant 0 is hottest, weight ∝ 1/(rank+1)^s (0 = uniform load)")
	fs.IntVar(&o.inflight, "inflight", 128, "max unacked rows per stream (backpressure window)")
	fs.IntVar(&o.batch, "batch", 1, "coalesce up to this many queued rows into one batch tick line (1 = row-at-a-time)")
	fs.IntVar(&o.window, "window", 1024, "tenant window length L")
	fs.IntVar(&o.k, "k", 3, "tenant anchor count k")
	fs.IntVar(&o.l, "l", 8, "tenant pattern length l")
	fs.IntVar(&o.d, "d", 2, "tenant reference count d")
	fs.DurationVar(&o.migrate, "migrate-interval", 0, "migrate one tenant to the next shard (round-robin) this often during the run — a live-migration soak (0 = off)")
	fs.StringVar(&o.jsonPath, "json", "", "write a machine-readable report (tkcm-bench schema) to this file")
	fs.BoolVar(&o.keep, "keep", false, "keep the generated tenants after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.missPattern != "uniform" && o.missPattern != "bursty" {
		return fmt.Errorf("unknown -missing-pattern %q (want uniform or bursty)", o.missPattern)
	}
	if o.missRun < 1 {
		return fmt.Errorf("-missing-run must be ≥ 1")
	}
	if o.zipf < 0 {
		return fmt.Errorf("-zipf must be ≥ 0")
	}
	weights := zipfWeights(o.tenants, o.zipf)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := client.New(o.addr)
	health, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("server not reachable: %w", err)
	}
	if health.Status == "follower" {
		return fmt.Errorf("target is an unpromoted follower of %s — point -addr at the primary, or promote the follower first (POST /v1/promote)", health.Primary)
	}

	streams := make([]string, o.width)
	for i := range streams {
		streams[i] = fmt.Sprintf("s%03d", i)
	}
	ids := make([]string, o.tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("loadgen-%d-%04d", os.Getpid(), i)
		err := c.CreateTenant(ctx, ids[i], client.CreateTenantRequest{
			Streams: streams,
			Config: &client.Config{
				K: o.k, PatternLength: o.l, D: o.d,
				WindowLength: o.window, SkipDiagnostics: true,
			},
		})
		if err != nil {
			return fmt.Errorf("creating %s: %w", ids[i], err)
		}
	}
	if !o.keep {
		defer func() {
			dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer dcancel()
			for _, id := range ids {
				if err := c.DeleteTenant(dctx, id); err != nil {
					fmt.Fprintf(os.Stderr, "tkcm-loadgen: deleting %s: %v\n", id, err)
				}
			}
		}()
	}

	var (
		ticks      atomic.Uint64
		imputes    atomic.Uint64
		duplicates atomic.Uint64
		latMu      sync.Mutex
		latencies  []int64
		driveErrs  int
		firstDrive error
		wg         sync.WaitGroup
	)
	deadline := time.Now().Add(o.duration)
	runCtx, stop := context.WithDeadline(ctx, deadline.Add(30*time.Second))
	defer stop()

	fmt.Fprintf(out, "# tkcm-loadgen — %d tenants × %d streams, width %d, batch %d, %.0f%% missing, %v\n",
		o.tenants, o.streams, o.width, o.batch, 100*o.missing, o.duration)
	start := time.Now()
	for ti := range ids {
		for si := 0; si < o.streams; si++ {
			wg.Add(1)
			go func(tenant string, worker int, sendProb float64) {
				defer wg.Done()
				lats, err := drive(runCtx, c, tenant, worker, o, sendProb, deadline, &ticks, &imputes, &duplicates)
				latMu.Lock()
				latencies = append(latencies, lats...)
				if err != nil {
					driveErrs++
					if firstDrive == nil {
						firstDrive = fmt.Errorf("%s/%d: %w", tenant, worker, err)
					}
				}
				latMu.Unlock()
				if err != nil {
					fmt.Fprintf(os.Stderr, "tkcm-loadgen: %s/%d: %v\n", tenant, worker, err)
				}
			}(ids[ti], si, weights[ti])
		}
	}
	// Live-migration soak: while the streams pump, walk the tenants across
	// the shards round-robin. Every move must be invisible to the drivers —
	// a stream error or a lost ack under migration is a server bug, not an
	// expected casualty, so failures are reported loudly.
	var migrations atomic.Uint64
	if o.migrate > 0 && health.Shards <= 1 {
		fmt.Fprintln(os.Stderr, "tkcm-loadgen: -migrate-interval set but the server has one shard; soak disabled")
	}
	if o.migrate > 0 && health.Shards > 1 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(o.migrate)
			defer t.Stop()
			for i := 0; time.Now().Before(deadline); i++ {
				select {
				case <-t.C:
				case <-runCtx.Done():
					return
				}
				// Inner index walks the shards, outer walks the tenants, so
				// every tenant visits every shard regardless of how the two
				// counts divide (tenant i%N with shard i%M degenerates to a
				// fixed pairing whenever M divides N).
				id := ids[(i/health.Shards)%len(ids)]
				dst := i % health.Shards
				res, err := c.MigrateTenant(runCtx, id, dst)
				if err != nil {
					fmt.Fprintf(os.Stderr, "tkcm-loadgen: migrating %s to %d: %v\n", id, dst, err)
					continue
				}
				if res.From != res.To {
					migrations.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := result{
		Tenants:     o.tenants,
		Streams:     o.streams,
		Batch:       o.batch,
		Width:       o.width,
		MissingRate: o.missing,
		Duration:    elapsed.Seconds(),
		Ticks:       ticks.Load(),
		TicksPerSec: float64(ticks.Load()) / elapsed.Seconds(),
		Imputations: imputes.Load(),
		Duplicates:  duplicates.Load(),
		Migrations:  migrations.Load(),
	}
	res.AckP50Millis, res.AckP99Millis, res.AckMaxMillis = percentiles(latencies)
	attribution := scrapeStageP99(ctx, c, &res)

	fmt.Fprintf(out, "ticks        %d\n", res.Ticks)
	fmt.Fprintf(out, "ticks/s      %.0f\n", res.TicksPerSec)
	fmt.Fprintf(out, "imputations  %d\n", res.Imputations)
	fmt.Fprintf(out, "duplicates   %d\n", res.Duplicates)
	if o.migrate > 0 {
		fmt.Fprintf(out, "migrations   %d\n", res.Migrations)
	}
	fmt.Fprintf(out, "ack p50      %.3f ms\n", res.AckP50Millis)
	fmt.Fprintf(out, "ack p99      %.3f ms\n", res.AckP99Millis)
	fmt.Fprintf(out, "ack max      %.3f ms\n", res.AckMaxMillis)
	if attribution != "" {
		fmt.Fprintf(out, "server p99   %s\n", attribution)
	}

	if o.jsonPath != "" {
		report := benchfmt.NewReport("loadgen", []benchfmt.Record{{Experiment: "loadgen", BatchSize: o.batch, Row: res}})
		if err := report.WriteFile(o.jsonPath); err != nil {
			return fmt.Errorf("writing %s: %w", o.jsonPath, err)
		}
		fmt.Fprintf(out, "wrote report to %s\n", o.jsonPath)
	}
	if res.Ticks == 0 {
		return fmt.Errorf("no ticks were acknowledged")
	}
	// The soak's whole point is that migrations succeed under load; a run
	// that asked for them and completed none means the migrate path is
	// broken, and must fail the run (and CI), not just mutter on stderr.
	if o.migrate > 0 && health.Shards > 1 && res.Migrations == 0 {
		return fmt.Errorf("live-migration soak completed zero migrations")
	}
	// A sequenced driver errors on any ack gap or mid-stream failure, so a
	// clean run is a zero-lost-acks proof; a failed driver must fail the run
	// (and CI), not just mutter on stderr under the summary.
	if driveErrs > 0 {
		return fmt.Errorf("%d of %d drivers failed; first: %v", driveErrs, o.tenants*o.streams, firstDrive)
	}
	return nil
}

// drive pumps one tick stream until the deadline: a sender goroutine
// generates seasonal rows with missing values, the receiver consumes acks
// and measures the send→ack round trip per row.
func drive(ctx context.Context, c *client.Client, tenant string, worker int, o options,
	sendProb float64, deadline time.Time, ticks, imputes, duplicates *atomic.Uint64) ([]int64, error) {

	st, err := c.OpenStream(ctx, tenant, client.StreamOptions{
		Sequenced:   o.streams == 1,
		MaxInFlight: o.inflight,
		Batch:       o.batch,
	})
	if err != nil {
		return nil, err
	}

	// tsCh carries each accepted row's timestamp to the receiver in send
	// order — acks arrive in the same order, so the head of the channel is
	// always the ack's row. Capacity beyond MaxInFlight means the sender
	// never blocks here.
	tsCh := make(chan int64, o.inflight+1)
	lats := make([]int64, 0, 1<<16)
	recvErr := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			ack, err := st.Recv(ctx)
			if err == io.EOF {
				recvErr <- nil
				return
			}
			if err != nil {
				recvErr <- err
				return
			}
			t := <-tsCh
			lats = append(lats, time.Now().UnixNano()-t)
			ticks.Add(1)
			imputes.Add(uint64(len(ack.Imputed)))
			if ack.Duplicate {
				duplicates.Add(1)
			}
		}
	}()

	rng := rand.New(rand.NewSource(int64(worker)*7919 + 17))
	row := make([]float64, o.width)
	miss := newMissingGen(o.missPattern, o.missing, o.missRun, o.width)
	warmup := o.l + o.d + 4 // first rows complete so the window has history
	var serr error
	for n := 0; time.Now().Before(deadline); n++ {
		// Zipf duty cycle: an unpopular tenant's driver skips most of its
		// send slots, so tenant throughput follows the configured skew while
		// the hottest tenant still runs flat out.
		if sendProb < 1 && rng.Float64() >= sendProb {
			select {
			case <-time.After(time.Millisecond):
			case <-ctx.Done():
			}
			continue
		}
		for i := range row {
			base := math.Sin(2*math.Pi*float64(n)/96 + float64(i))
			// Quantize to 0.01, like a real sensor feed: raw float64 noise
			// would put ~17 significant digits on the wire per value, which
			// no instrument emits and which would make the run measure
			// decimal-text codec throughput instead of the serving stack.
			row[i] = math.Round(100*(20+5*base+0.1*rng.Float64())) / 100
			if n > warmup && miss.missing(rng, i) {
				row[i] = math.NaN()
			}
		}
		if serr = st.Send(ctx, row); serr != nil {
			break
		}
		tsCh <- time.Now().UnixNano()
	}
	// Close flushes the queued rows and waits for their acks; the receiver
	// consumes them and ends on the stream's EOF.
	cerr := st.Close()
	<-done
	if rerr := <-recvErr; rerr != nil && serr == nil {
		serr = rerr
	}
	if serr == nil {
		serr = cerr
	}
	return lats, serr
}

// zipfWeights returns the per-tenant send probability under a Zipf skew:
// tenant i (rank order) gets weight (i+1)^-s, normalized so the hottest
// tenant runs at full duty cycle. s = 0 (or a single tenant) yields uniform
// full-speed load.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
		if s > 0 {
			w[i] = math.Pow(float64(i+1), -s)
		}
	}
	// w[0] is the maximum by construction; normalize to it.
	for i := range w {
		w[i] /= w[0]
	}
	return w
}

// missingGen decides which values go missing. The uniform pattern drops each
// value i.i.d.; the bursty pattern drops per-stream runs with geometric
// lengths around -missing-run, holding the same long-run missing fraction —
// the difference a real flaky sensor makes to the serving stack (imputation
// bursts, coldFill pressure) that i.i.d. dropout never exercises.
type missingGen struct {
	bursty    bool
	rate      float64
	meanRun   int
	remaining []int
}

func newMissingGen(pattern string, rate float64, meanRun, width int) *missingGen {
	return &missingGen{
		bursty:    pattern == "bursty",
		rate:      rate,
		meanRun:   meanRun,
		remaining: make([]int, width),
	}
}

// missing reports whether stream col's value in the current row is dropped.
func (g *missingGen) missing(rng *rand.Rand, col int) bool {
	if g.rate <= 0 {
		return false
	}
	if !g.bursty {
		return rng.Float64() < g.rate
	}
	if g.remaining[col] > 0 {
		g.remaining[col]--
		return true
	}
	if g.rate >= 1 {
		g.remaining[col] = g.meanRun
		return true
	}
	// A run starts with probability p at each present row; geometric run
	// lengths with the configured mean give a long-run missing fraction of
	// p·mean/(1+p·mean) = rate.
	p := g.rate / ((1 - g.rate) * float64(g.meanRun))
	if rng.Float64() >= p {
		return false
	}
	run := 1
	q := 1 - 1/float64(g.meanRun)
	for rng.Float64() < q && run < 8*g.meanRun {
		run++
	}
	g.remaining[col] = run - 1
	return true
}

// percentiles returns p50, p99 and max in milliseconds.
func percentiles(lats []int64) (p50, p99, max float64) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return float64(lats[i]) / 1e6
	}
	return at(0.50), at(0.99), float64(lats[len(lats)-1]) / 1e6
}

// scrapeStageP99 pulls the server's /metrics after the run and attributes
// the observed ack latency to its stages: p99 of each
// tkcm_tick_stage_seconds stage and of tkcm_ack_seconds, across all shards.
// It fills res and returns the human-readable attribution line ("" when the
// scrape failed or the server does not expose the stage histograms —
// attribution is best-effort and never fails the run).
func scrapeStageP99(ctx context.Context, c *client.Client, res *result) string {
	text, err := c.Metrics(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tkcm-loadgen: scraping /metrics for stage attribution: %v\n", err)
		return ""
	}
	sc, err := obs.ParseProm(text)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tkcm-loadgen: parsing /metrics: %v\n", err)
		return ""
	}
	stages := make(map[string]float64)
	var line strings.Builder
	for st := 0; st < obs.NumStages; st++ {
		name := obs.Stage(st).String()
		p99 := sc.StageQuantile("tkcm_tick_stage_seconds", 0.99, map[string]string{"stage": name})
		if math.IsNaN(p99) {
			continue
		}
		stages[name] = p99 * 1e3
		fmt.Fprintf(&line, "%s %.3fms  ", name, p99*1e3)
	}
	if len(stages) == 0 {
		return ""
	}
	res.ServerStageP99Millis = stages
	if e2e := sc.StageQuantile("tkcm_ack_seconds", 0.99, nil); !math.IsNaN(e2e) {
		res.ServerAckP99Millis = e2e * 1e3
		fmt.Fprintf(&line, "e2e %.3fms", e2e*1e3)
	}
	// Residency tier: when the run forced hydrations (resident-engine cap set
	// and the tenant set overflowed it), record how many and their p99 — the
	// cost a cold tenant's first tick pays.
	for _, smp := range sc.Samples {
		if smp.Name == "tkcm_engine_hydrations_total" && smp.Labels == "" {
			res.Hydrations = uint64(smp.Value)
		}
	}
	if res.Hydrations > 0 {
		if h := sc.StageQuantile("tkcm_hydration_seconds", 0.99, nil); !math.IsNaN(h) {
			res.HydrationP99Millis = h * 1e3
			fmt.Fprintf(&line, "  hydrate %.3fms (%d hydrations)", h*1e3, res.Hydrations)
		}
	}
	return strings.TrimRight(line.String(), " ")
}
