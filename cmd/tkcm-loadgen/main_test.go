package main

import (
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tkcm/internal/benchfmt"
	"tkcm/internal/server"
	"tkcm/internal/shard"
	"tkcm/internal/wal"
)

func TestZipfWeights(t *testing.T) {
	// s = 0: uniform full duty cycle.
	for _, w := range zipfWeights(4, 0) {
		if w != 1 {
			t.Fatalf("uniform weights = %v", zipfWeights(4, 0))
		}
	}
	// s = 1: strictly decreasing, hottest tenant at 1, classic 1/rank decay.
	w := zipfWeights(4, 1)
	if w[0] != 1 {
		t.Fatalf("w[0] = %v, want 1", w[0])
	}
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Fatalf("weights not decreasing: %v", w)
		}
		want := 1 / float64(i+1)
		if diff := w[i] - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("w[%d] = %v, want %v", i, w[i], want)
		}
	}
}

func TestMissingGen(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const rows = 200_000

	// Uniform: long-run fraction ≈ rate.
	g := newMissingGen("uniform", 0.1, 16, 1)
	miss := 0
	for i := 0; i < rows; i++ {
		if g.missing(rng, 0) {
			miss++
		}
	}
	if frac := float64(miss) / rows; frac < 0.09 || frac > 0.11 {
		t.Fatalf("uniform missing fraction %v, want ≈ 0.1", frac)
	}

	// Bursty: same long-run fraction, but arranged in runs near the mean.
	g = newMissingGen("bursty", 0.1, 16, 1)
	miss = 0
	runs, runLen, inRun := 0, 0, false
	for i := 0; i < rows; i++ {
		m := g.missing(rng, 0)
		if m {
			miss++
			runLen++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if frac := float64(miss) / rows; frac < 0.07 || frac > 0.13 {
		t.Fatalf("bursty missing fraction %v, want ≈ 0.1", frac)
	}
	if mean := float64(runLen) / float64(runs); mean < 10 || mean > 24 {
		t.Fatalf("bursty mean run length %v over %d runs, want ≈ 16", mean, runs)
	}

	// Zero rate never drops; per-column state is independent.
	g = newMissingGen("bursty", 0, 16, 2)
	for i := 0; i < 100; i++ {
		if g.missing(rng, 0) || g.missing(rng, 1) {
			t.Fatal("zero rate dropped a value")
		}
	}
}

func TestRunRejectsBadPatternFlags(t *testing.T) {
	if err := run([]string{"-missing-pattern", "fancy"}, os.Stdout); err == nil {
		t.Fatal("bad -missing-pattern accepted")
	}
	if err := run([]string{"-missing-run", "0"}, os.Stdout); err == nil {
		t.Fatal("bad -missing-run accepted")
	}
	if err := run([]string{"-zipf", "-1"}, os.Stdout); err == nil {
		t.Fatal("negative -zipf accepted")
	}
}

// serveMain boots a WAL-enabled serving stack for the smoke test and tears
// it down when ctx ends. resident > 0 additionally caps in-memory engines,
// wiring the residency tier the way cmd/tkcm-serve does.
func serveMain(ctx context.Context, dir string, addrc chan net.Addr, resident int) error {
	ckDir := filepath.Join(dir, "ck")
	walMgr := wal.NewManager(filepath.Join(dir, "wal"), wal.Options{SyncInterval: time.Millisecond})
	defer walMgr.Close()
	opts := shard.Options{Shards: 2, WAL: walMgr}
	if resident > 0 {
		opts.Hydrate = server.CheckpointHydrator(ckDir)
		opts.Parkable = server.CheckpointParkable(ckDir)
		opts.ResidentEngines = resident
	}
	m := shard.New(opts)
	srv := server.New(server.Options{Manager: m, CheckpointDir: ckDir, WAL: walMgr})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	addrc <- ln.Addr()
	<-ctx.Done()
	srv.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(sctx)
	return srv.Shutdown(sctx)
}

// TestLoadgenSmoke drives a real tkcm-serve (full binary path, WAL enabled)
// for a second and checks the run acked ticks, imputed values, and emitted
// a valid machine-readable report.
func TestLoadgenSmoke(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan net.Addr, 1)
	srvErr := make(chan error, 1)
	go func() { srvErr <- serveMain(ctx, dir, addrc, 0) }()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-srvErr:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	jsonPath := filepath.Join(dir, "LOADGEN.json")
	err := run([]string{
		"-addr", base,
		"-tenants", "2", "-streams", "1", "-width", "4",
		"-duration", "1s", "-missing", "0.1",
		"-window", "64", "-l", "4", "-k", "2",
		"-json", jsonPath,
	}, os.Stdout)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report benchfmt.Report
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if report.Schema != benchfmt.SchemaV2 {
		t.Fatalf("schema %q, want %q", report.Schema, benchfmt.SchemaV2)
	}
	if len(report.Rows) != 1 || report.Rows[0].Experiment != "loadgen" {
		t.Fatalf("rows: %+v", report.Rows)
	}
	row, err := json.Marshal(report.Rows[0].Row)
	if err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal(row, &res); err != nil {
		t.Fatal(err)
	}
	if res.Ticks == 0 || res.TicksPerSec <= 0 {
		t.Fatalf("no throughput recorded: %+v", res)
	}
	if res.Imputations == 0 {
		t.Fatalf("no imputations recorded: %+v", res)
	}
	if res.AckP99Millis < res.AckP50Millis {
		t.Fatalf("p99 < p50: %+v", res)
	}

	cancel()
	select {
	case <-srvErr:
	case <-time.After(20 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestLoadgenResidencySmoke drives Zipfian load against a server whose
// resident-engine budget is far smaller than its tenant count: the run must
// sustain load (acks flow, exactly-once holds — drive() fails on any gap),
// force hydrations, and surface the hydration p99 in the report artifact.
func TestLoadgenResidencySmoke(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan net.Addr, 1)
	srvErr := make(chan error, 1)
	go func() { srvErr <- serveMain(ctx, dir, addrc, 2) }()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-srvErr:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	jsonPath := filepath.Join(dir, "LOADGEN.json")
	err := run([]string{
		"-addr", base,
		"-tenants", "8", "-streams", "1", "-width", "4",
		"-duration", "2s", "-missing", "0.1", "-zipf", "1",
		"-window", "64", "-l", "4", "-k", "2",
		"-json", jsonPath,
	}, os.Stdout)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report benchfmt.Report
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	row, err := json.Marshal(report.Rows[0].Row)
	if err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal(row, &res); err != nil {
		t.Fatal(err)
	}
	if res.Ticks == 0 {
		t.Fatalf("no throughput under the residency cap: %+v", res)
	}
	if res.Hydrations == 0 {
		t.Fatalf("8 tenants over a 2-engine budget forced no hydrations: %+v", res)
	}
	if res.HydrationP99Millis <= 0 {
		t.Fatalf("hydration p99 missing from the artifact: %+v", res)
	}

	cancel()
	select {
	case <-srvErr:
	case <-time.After(20 * time.Second):
		t.Fatal("server did not shut down")
	}
}
