package baseline

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"tkcm/internal/stats"
	"tkcm/internal/timeseries"
)

var nan = math.NaN()

func TestMeanImpute(t *testing.T) {
	got := MeanImpute([]float64{1, nan, 3})
	if !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
	got = MeanImpute([]float64{nan, nan})
	if !reflect.DeepEqual(got, []float64{0, 0}) {
		t.Fatalf("all-missing got %v, want zeros", got)
	}
}

func TestLOCF(t *testing.T) {
	got := LOCF([]float64{nan, 2, nan, nan, 5, nan})
	if !reflect.DeepEqual(got, []float64{2, 2, 2, 2, 5, 5}) {
		t.Fatalf("got %v", got)
	}
	got = LOCF([]float64{nan, nan})
	if !reflect.DeepEqual(got, []float64{0, 0}) {
		t.Fatalf("all-missing got %v", got)
	}
}

func TestInterpolate(t *testing.T) {
	got := Interpolate([]float64{nan, 1, nan, nan, 4, nan})
	want := []float64{1, 1, 2, 3, 4, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if got := Interpolate([]float64{nan}); got[0] != 0 {
		t.Fatalf("all-missing got %v", got)
	}
}

// TestInterpolatePreservesPresent: interpolation never changes observed
// values, and fills every gap with values inside the bracketing range.
func TestInterpolatePreservesPresent(t *testing.T) {
	f := func(mask uint16, seed int64) bool {
		n := 16
		xs := make([]float64, n)
		state := uint64(seed) | 1
		for i := range xs {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			if mask&(1<<i) != 0 {
				xs[i] = nan
			} else {
				xs[i] = float64(state % 100)
			}
		}
		out := Interpolate(xs)
		for i, v := range xs {
			if !math.IsNaN(v) && out[i] != v {
				return false
			}
			if math.IsNaN(out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestInterpolateLongGapSineFailure demonstrates the Sec. 2 observation: a
// missing full sine period interpolates to a near-straight line with a large
// error — the motivating failure of interpolation on long gaps.
func TestInterpolateLongGapSineFailure(t *testing.T) {
	const period = 100
	n := 3 * period
	xs := make([]float64, n)
	truth := make([]float64, 0, period)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / period)
	}
	for i := period; i < 2*period; i++ {
		truth = append(truth, xs[i])
		xs[i] = nan
	}
	out := Interpolate(xs)
	rmse := stats.RMSE(truth, out[period:2*period])
	// RMS of a sine is 1/√2 ≈ 0.707; the straight-line fill must leave
	// nearly all of it.
	if rmse < 0.5 {
		t.Fatalf("interpolation over a full period has RMSE %v; expected ≈ 0.7", rmse)
	}
}

func TestKNNIRecoverLinearRelation(t *testing.T) {
	const n = 500
	data := make([][]float64, n)
	var truthIdx []int
	var truth []float64
	for i := 0; i < n; i++ {
		x := math.Sin(2 * math.Pi * float64(i) / 97)
		y := math.Cos(2 * math.Pi * float64(i) / 61)
		row := []float64{x + y, x, y}
		if i%10 == 3 {
			truthIdx = append(truthIdx, i)
			truth = append(truth, row[0])
			row[0] = nan
		}
		data[i] = row
	}
	out := KNNI(KNNIConfig{K: 3, Weighted: true}, data, 0)
	var rec []float64
	for _, i := range truthIdx {
		rec = append(rec, out[i])
	}
	if rmse := stats.RMSE(truth, rec); rmse > 0.05 {
		t.Fatalf("kNNI RMSE = %v, want small on dense attribute space", rmse)
	}
}

func TestKNNIUnweightedAveragesNeighbours(t *testing.T) {
	data := [][]float64{
		{10, 1.0},
		{20, 1.1},
		{nan, 1.05},
		{99, 9.0},
	}
	out := KNNI(KNNIConfig{K: 2}, data, 0)
	if math.Abs(out[2]-15) > 1e-9 {
		t.Fatalf("imputed %v, want 15 (mean of the two nearest donors)", out[2])
	}
}

func TestKNNIDefaultsAndNoDonors(t *testing.T) {
	// K ≤ 0 falls back to 5; with no comparable attribute the value stays
	// missing.
	data := [][]float64{
		{nan, nan},
		{5, nan},
	}
	out := KNNI(KNNIConfig{}, data, 0)
	if !math.IsNaN(out[0]) {
		t.Fatalf("imputed %v with no comparable attributes, want NaN", out[0])
	}
	if out[1] != 5 {
		t.Fatalf("present value altered: %v", out[1])
	}
}

func TestRowDistanceNormalizes(t *testing.T) {
	a := []float64{0, 1, 1, nan}
	b := []float64{0, 2, 2, 7}
	d1, ok1 := rowDistance(a, b, 0)
	if !ok1 {
		t.Fatal("comparable rows reported incomparable")
	}
	// Two comparable attributes each differing by 1 → normalized distance 1.
	if math.Abs(d1-1) > 1e-12 {
		t.Fatalf("distance = %v, want 1", d1)
	}
	_, ok := rowDistance([]float64{0, nan}, []float64{0, 1}, 0)
	if ok {
		t.Fatal("incomparable rows reported comparable")
	}
}

func TestBaselinesLeaveInputUntouched(t *testing.T) {
	orig := []float64{1, nan, 3}
	in := append([]float64(nil), orig...)
	MeanImpute(in)
	LOCF(in)
	Interpolate(in)
	if !timeseries.IsMissing(in[1]) || in[0] != 1 || in[2] != 3 {
		t.Fatal("baseline imputers must not mutate their input")
	}
}
