// Package baseline implements the simple imputation techniques the paper
// surveys in Sec. 2: mean imputation, linear interpolation, last observation
// carried forward, and k-nearest-neighbour imputation (kNNI, Batista &
// Monard 2003 with the similarity weighting of Troyanskaya et al. 2001).
//
// These serve as sanity floors in the experiment harness: a competent
// streaming method must beat them, and linear interpolation in particular
// degrades catastrophically on long gaps (the sine-wave example of Sec. 2),
// which the block-length experiments make visible.
package baseline
