package baseline

import (
	"math"
	"sort"

	"tkcm/internal/stats"
)

// MeanImpute returns a copy of xs with every missing value replaced by the
// mean of the present values (0 when all values are missing).
func MeanImpute(xs []float64) []float64 {
	m := stats.Mean(xs)
	if math.IsNaN(m) {
		m = 0
	}
	out := make([]float64, len(xs))
	for i, v := range xs {
		if math.IsNaN(v) {
			out[i] = m
		} else {
			out[i] = v
		}
	}
	return out
}

// LOCF returns a copy of xs with every missing value replaced by the most
// recent present value (and leading missing values by the first present
// value; 0 when all values are missing).
func LOCF(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	last := math.NaN()
	for i, v := range out {
		if math.IsNaN(v) {
			out[i] = last
		} else {
			last = v
		}
	}
	// Back-fill a leading gap.
	first := math.NaN()
	for _, v := range out {
		if !math.IsNaN(v) {
			first = v
			break
		}
	}
	if math.IsNaN(first) {
		first = 0
	}
	for i := range out {
		if math.IsNaN(out[i]) {
			out[i] = first
		}
	}
	return out
}

// Interpolate returns a copy of xs with every gap filled by linear
// interpolation between the nearest present neighbours, extending flat at
// the boundaries. A fully missing input becomes all zeros.
func Interpolate(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	n := len(out)
	first := -1
	for i := 0; i < n; i++ {
		if !math.IsNaN(out[i]) {
			first = i
			break
		}
	}
	if first < 0 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	for i := 0; i < first; i++ {
		out[i] = out[first]
	}
	last := first
	for i := first + 1; i < n; i++ {
		if math.IsNaN(out[i]) {
			continue
		}
		if i > last+1 {
			span := float64(i - last)
			for k := last + 1; k < i; k++ {
				frac := float64(k-last) / span
				out[k] = out[last]*(1-frac) + out[i]*frac
			}
		}
		last = i
	}
	for i := last + 1; i < n; i++ {
		out[i] = out[last]
	}
	return out
}

// KNNIConfig parameterizes kNNI.
type KNNIConfig struct {
	// K is the number of neighbours averaged (Batista & Monard use small k).
	K int
	// Weighted applies inverse-distance weighting (Troyanskaya et al.).
	Weighted bool
}

// KNNI imputes the missing entries of the target column of data (rows =
// observations/ticks, columns = attributes/streams). For each row with a
// missing target, it finds the K rows most similar on the non-missing,
// non-target attributes (Euclidean distance over commonly present
// attributes) whose target is present, and averages their targets.
//
// This is the multi-attribute-object method of Sec. 2 applied to the stream
// setting by treating each tick as an object — exactly the l = 1 degenerate
// case TKCM generalizes.
func KNNI(cfg KNNIConfig, data [][]float64, target int) []float64 {
	if cfg.K <= 0 {
		cfg.K = 5
	}
	n := len(data)
	out := make([]float64, n)
	// Candidate rows: target present.
	var donors []int
	for i, row := range data {
		out[i] = row[target]
		if !math.IsNaN(row[target]) {
			donors = append(donors, i)
		}
	}
	for i, row := range data {
		if !math.IsNaN(row[target]) {
			continue
		}
		type nb struct {
			dist float64
			val  float64
		}
		var nbs []nb
		for _, j := range donors {
			d, ok := rowDistance(row, data[j], target)
			if !ok {
				continue
			}
			nbs = append(nbs, nb{d, data[j][target]})
		}
		if len(nbs) == 0 {
			out[i] = math.NaN()
			continue
		}
		sort.Slice(nbs, func(a, b int) bool { return nbs[a].dist < nbs[b].dist })
		if len(nbs) > cfg.K {
			nbs = nbs[:cfg.K]
		}
		if cfg.Weighted {
			num, den := 0.0, 0.0
			for _, nbv := range nbs {
				w := 1.0 / (nbv.dist + 1e-9)
				num += w * nbv.val
				den += w
			}
			out[i] = num / den
		} else {
			sum := 0.0
			for _, nbv := range nbs {
				sum += nbv.val
			}
			out[i] = sum / float64(len(nbs))
		}
	}
	return out
}

// rowDistance is the Euclidean distance between two rows over the attributes
// (excluding the target) present in both; ok is false when no attribute is
// comparable.
func rowDistance(a, b []float64, target int) (float64, bool) {
	sum, cnt := 0.0, 0
	for j := range a {
		if j == target {
			continue
		}
		if math.IsNaN(a[j]) || math.IsNaN(b[j]) {
			continue
		}
		d := a[j] - b[j]
		sum += d * d
		cnt++
	}
	if cnt == 0 {
		return 0, false
	}
	// Normalize by the number of comparable attributes so rows with
	// different missingness are commensurable.
	return math.Sqrt(sum / float64(cnt)), true
}
