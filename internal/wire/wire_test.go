package wire

import (
	"encoding/json"
	"math"
	"testing"
)

// jsonTickIn mirrors the server's tickIn decode target.
type jsonTickIn struct {
	Seq    uint64       `json:"seq"`
	Values []*float64   `json:"values"`
	Rows   [][]*float64 `json:"rows"`
}

// jsonAck mirrors the client's serverLine decode target.
type jsonAck struct {
	Tick      int       `json:"tick"`
	Seq       uint64    `json:"seq"`
	Values    []float64 `json:"values"`
	Imputed   []int     `json:"imputed"`
	Duplicate bool      `json:"duplicate"`
	Error     string    `json:"error"`
	Retry     bool      `json:"retry"`
}

// checkTickInAgainstJSON enforces the fast path's contract on one line: it
// may reject anything (the caller falls back), but when it accepts, the line
// must also be valid for encoding/json and both decodes must agree.
func checkTickInAgainstJSON(t *testing.T, line string, in *TickIn) {
	t.Helper()
	fastOK := ParseTickIn([]byte(line), in)
	var ref jsonTickIn
	jsonErr := json.Unmarshal([]byte(line), &ref)
	if !fastOK {
		return
	}
	if jsonErr != nil {
		t.Fatalf("fast path accepted %q which encoding/json rejects: %v", line, jsonErr)
	}
	if in.Seq != ref.Seq {
		t.Fatalf("%q: seq %d, json %d", line, in.Seq, ref.Seq)
	}
	if in.HasValues != (ref.Values != nil) {
		t.Fatalf("%q: HasValues %v, json values nil=%v", line, in.HasValues, ref.Values == nil)
	}
	if in.HasRows != (ref.Rows != nil) {
		t.Fatalf("%q: HasRows %v, json rows nil=%v", line, in.HasRows, ref.Rows == nil)
	}
	if in.HasValues {
		if len(in.Values) != len(ref.Values) {
			t.Fatalf("%q: %d values, json %d", line, len(in.Values), len(ref.Values))
		}
		for i, v := range in.Values {
			checkSameValue(t, line, v, ref.Values[i])
		}
	}
	if in.HasRows {
		if len(in.Rows) != len(ref.Rows) {
			t.Fatalf("%q: %d rows, json %d", line, len(in.Rows), len(ref.Rows))
		}
		for j, row := range in.Rows {
			if len(row) != len(ref.Rows[j]) {
				t.Fatalf("%q row %d: %d values, json %d", line, j, len(row), len(ref.Rows[j]))
			}
			for i, v := range row {
				checkSameValue(t, line, v, ref.Rows[j][i])
			}
		}
	}
}

func checkSameValue(t *testing.T, line string, fast float64, ref *float64) {
	t.Helper()
	if ref == nil {
		if !math.IsNaN(fast) {
			t.Fatalf("%q: fast %v for json null", line, fast)
		}
		return
	}
	if fast != *ref {
		t.Fatalf("%q: fast %v, json %v", line, fast, *ref)
	}
}

// tickInCorpus exercises both accepted shapes and every rejection trigger.
var tickInCorpus = []string{
	`{"seq":1,"values":[20.5,null,19.25]}`,
	`{"values":[1,2,3],"seq":42}`,
	`{"seq":18446744073709551615,"values":[0]}`,
	`{"seq":7,"values":[]}`,
	`{"seq":7,"values":null}`,
	`{"values":[-0.5,1e3,2.5e-4,0.0,1E+2]}`,
	`{"seq":3,"rows":[[1,2],[null,4],[5,null]]}`,
	`{"rows":[]}`,
	`{"rows":[[]]}`,
	`{"rows":null}`,
	`{"seq":1,"values":[1],"rows":[[2]]}`, // both set: fast may accept, shapes agree
	`{}`,
	`  { "seq" : 2 , "values" : [ 1 , null ] }  `,
	// Rejections (fall back to encoding/json):
	`{"seq":1,"values":[1],"extra":true}`,
	`{"seq":-1,"values":[1]}`,
	`{"seq":1.5,"values":[1]}`,
	`{"seq":1e2,"values":[1]}`,
	`{"seq":01,"values":[1]}`,
	`{"values":[+1]}`,
	`{"values":[.5]}`,
	`{"values":[1.]}`,
	`{"values":[0x1p3]}`,
	`{"values":[1_0]}`,
	`{"values":[Infinity]}`,
	`{"values":[NaN]}`,
	`{"values":[1e999]}`,
	`{"values":[1,]}`,
	`{"values":[01]}`,
	`{"values":["1"]}`,
	`{"se\u0071":1}`,
	`{"seq":1}trailing`,
	`[1,2,3]`,
	`null`,
	``,
	`{`,
	`{"values":[1}`,
	`{"rows":[[1],]}`,
	`{"rows":[1]}`,
}

func TestParseTickInMatchesJSON(t *testing.T) {
	var in TickIn
	for _, line := range tickInCorpus {
		checkTickInAgainstJSON(t, line, &in)
	}
}

// TestParseTickInAcceptsHotShapes pins that the two lines the client
// actually emits take the fast path — a silent fall-through to
// encoding/json would be a performance regression with no functional
// symptom.
func TestParseTickInAcceptsHotShapes(t *testing.T) {
	var in TickIn
	if !ParseTickIn([]byte(`{"seq":9,"values":[20.5,null,19.25]}`), &in) {
		t.Fatal("single-row line missed the fast path")
	}
	if in.Seq != 9 || !in.HasValues || len(in.Values) != 3 || !math.IsNaN(in.Values[1]) {
		t.Fatalf("bad decode: %+v", in)
	}
	if !ParseTickIn([]byte(`{"seq":10,"rows":[[1,2],[null,3.5]]}`), &in) {
		t.Fatal("batch line missed the fast path")
	}
	if in.Seq != 10 || !in.HasRows || len(in.Rows) != 2 || !math.IsNaN(in.Rows[1][0]) {
		t.Fatalf("bad batch decode: %+v", in)
	}
}

// TestParseTickInReusesScratch pins the zero-alloc property of the hot loop.
func TestParseTickInReusesScratch(t *testing.T) {
	var in TickIn
	line := []byte(`{"seq":10,"rows":[[1,2],[null,3.5],[4,5]]}`)
	if !ParseTickIn(line, &in) {
		t.Fatal("batch line missed the fast path")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if !ParseTickIn(line, &in) {
			t.Fatal("fast path lost")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm ParseTickIn allocates %v per line; want 0", allocs)
	}
}

var ackCorpus = []string{
	`{"tick":4032,"seq":12,"values":[20.5,19.25],"imputed":[0]}`,
	`{"tick":1,"seq":2,"values":[],"imputed":[],"duplicate":true}`,
	`{"tick":0,"seq":0,"values":[1e-7,123456789.123],"imputed":[0,1]}`,
	`{"seq":2,"tick":1,"imputed":[3],"values":[1],"duplicate":false}`,
	// Rejections:
	`{"error":"boom","retry":true}`,
	`{"tick":1,"seq":2,"values":[null],"imputed":[]}`,
	`{"tick":1,"seq":2,"values":[1]}`,
	`{"tick":1,"seq":2}`,
	`{}`,
	`{"tick":-1,"seq":2,"values":[],"imputed":[]}`,
	`{"tick":1,"seq":2,"values":[],"imputed":[-1]}`,
	`{"tick":1,"seq":2,"values":[],"imputed":[],"duplicate":1}`,
	`{"tick":1,"seq":2,"values":[],"imputed":[],"x":1}`,
}

func TestParseAckMatchesJSON(t *testing.T) {
	var a Ack
	for _, line := range ackCorpus {
		fastOK := ParseAck([]byte(line), &a)
		var ref jsonAck
		jsonErr := json.Unmarshal([]byte(line), &ref)
		if !fastOK {
			continue
		}
		if jsonErr != nil {
			t.Fatalf("fast path accepted %q which encoding/json rejects: %v", line, jsonErr)
		}
		if ref.Error != "" {
			t.Fatalf("fast path accepted error line %q", line)
		}
		if a.Tick != ref.Tick || a.Seq != ref.Seq || a.Duplicate != ref.Duplicate {
			t.Fatalf("%q: got (%d,%d,%v), json (%d,%d,%v)",
				line, a.Tick, a.Seq, a.Duplicate, ref.Tick, ref.Seq, ref.Duplicate)
		}
		if len(a.Values) != len(ref.Values) {
			t.Fatalf("%q: %d values, json %d", line, len(a.Values), len(ref.Values))
		}
		for i := range a.Values {
			if a.Values[i] != ref.Values[i] {
				t.Fatalf("%q: value %d = %v, json %v", line, i, a.Values[i], ref.Values[i])
			}
		}
		if len(a.Imputed) != len(ref.Imputed) {
			t.Fatalf("%q: %d imputed, json %d", line, len(a.Imputed), len(ref.Imputed))
		}
		for i := range a.Imputed {
			if a.Imputed[i] != ref.Imputed[i] {
				t.Fatalf("%q: imputed %d = %v, json %v", line, i, a.Imputed[i], ref.Imputed[i])
			}
		}
	}
}

// TestAppendAckMatchesJSONEncoder pins byte equality with a json.Encoder
// over the server's tickOut shape, including float formatting.
func TestAppendAckMatchesJSONEncoder(t *testing.T) {
	type tickOut struct {
		Tick      int       `json:"tick"`
		Seq       uint64    `json:"seq"`
		Values    []float64 `json:"values"`
		Imputed   []int     `json:"imputed"`
		Duplicate bool      `json:"duplicate,omitempty"`
	}
	cases := []tickOut{
		{Tick: 4032, Seq: 12, Values: []float64{20.5, 19.25, -3}, Imputed: []int{0, 2}},
		{Tick: 1, Seq: 2, Values: []float64{}, Imputed: []int{}, Duplicate: true},
		{Tick: 0, Seq: 0, Values: []float64{0, -0.0000001, 1e21, 123456789.123456, math.Pi}, Imputed: []int{}},
		{Tick: 7, Seq: 9, Values: []float64{5e-324, math.MaxFloat64, 1e-6, 1e-7, 0.1}, Imputed: []int{1}},
		{Tick: 7, Seq: 9, Values: []float64{-1e-9, 3e20, 1e20, 2e21, 1.5e-8}, Imputed: []int{}},
	}
	var buf []byte
	for _, c := range cases {
		want, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n') // json.Encoder.Encode appends a newline
		got, ok := AppendAck(buf[:0], c.Tick, c.Seq, c.Values, c.Imputed, c.Duplicate)
		if !ok {
			t.Fatalf("AppendAck refused %+v", c)
		}
		if string(got) != string(want) {
			t.Fatalf("AppendAck %+v:\n got %q\nwant %q", c, got, want)
		}
		buf = got
	}
	if _, ok := AppendAck(buf[:0], 1, 2, []float64{math.NaN()}, nil, false); ok {
		t.Fatal("AppendAck accepted NaN")
	}
	if _, ok := AppendAck(buf[:0], 1, 2, []float64{math.Inf(1)}, nil, false); ok {
		t.Fatal("AppendAck accepted +Inf")
	}
}

// TestAckRoundTrip feeds AppendAck's output back through ParseAck.
func TestAckRoundTrip(t *testing.T) {
	values := []float64{20.5, 19.25, 0.125}
	imputed := []int{1}
	line, ok := AppendAck(nil, 4032, 77, values, imputed, false)
	if !ok {
		t.Fatal("AppendAck refused finite values")
	}
	var a Ack
	if !ParseAck(line[:len(line)-1], &a) {
		t.Fatalf("ParseAck rejected AppendAck output %q", line)
	}
	if a.Tick != 4032 || a.Seq != 77 || a.Duplicate {
		t.Fatalf("round trip lost header: %+v", a)
	}
	for i, v := range values {
		if a.Values[i] != v {
			t.Fatalf("value %d: %v != %v", i, a.Values[i], v)
		}
	}
	if len(a.Imputed) != 1 || a.Imputed[0] != 1 {
		t.Fatalf("round trip lost imputed: %v", a.Imputed)
	}
}

// FuzzParseTickIn fuzzes the contract: the fast parser never accepts a line
// encoding/json rejects, and agrees with encoding/json whenever it accepts.
func FuzzParseTickIn(f *testing.F) {
	for _, line := range tickInCorpus {
		f.Add([]byte(line))
	}
	var in TickIn
	f.Fuzz(func(t *testing.T, line []byte) {
		checkTickInAgainstJSON(t, string(line), &in)
	})
}

// FuzzParseAck fuzzes the same contract for ack lines.
func FuzzParseAck(f *testing.F) {
	for _, line := range ackCorpus {
		f.Add([]byte(line))
	}
	var a Ack
	f.Fuzz(func(t *testing.T, line []byte) {
		fastOK := ParseAck(line, &a)
		if !fastOK {
			return
		}
		var ref jsonAck
		if err := json.Unmarshal(line, &ref); err != nil {
			t.Fatalf("fast path accepted %q which encoding/json rejects: %v", line, err)
		}
		if ref.Error != "" || ref.Retry {
			t.Fatalf("fast path accepted error line %q", line)
		}
		if a.Tick != ref.Tick || a.Seq != ref.Seq || a.Duplicate != ref.Duplicate {
			t.Fatalf("%q: got (%d,%d,%v), json (%d,%d,%v)",
				line, a.Tick, a.Seq, a.Duplicate, ref.Tick, ref.Seq, ref.Duplicate)
		}
		if len(a.Values) != len(ref.Values) || len(a.Imputed) != len(ref.Imputed) {
			t.Fatalf("%q: lengths (%d,%d), json (%d,%d)",
				line, len(a.Values), len(a.Imputed), len(ref.Values), len(ref.Imputed))
		}
		for i := range a.Values {
			if a.Values[i] != ref.Values[i] {
				t.Fatalf("%q: value %d = %v, json %v", line, i, a.Values[i], ref.Values[i])
			}
		}
		for i := range a.Imputed {
			if a.Imputed[i] != ref.Imputed[i] {
				t.Fatalf("%q: imputed %d = %v, json %v", line, i, a.Imputed[i], ref.Imputed[i])
			}
		}
	})
}
