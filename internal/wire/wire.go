// Package wire hand-codes the NDJSON tick-stream hot path shared by the
// server and the client: input tick lines ({"seq":…,"values":[…]} and the
// batch form {"seq":…,"rows":[[…],…]}) and output ack lines. encoding/json
// spends most of a streaming CPU core in reflection, validity re-scanning
// and interface plumbing; these parsers do one strict pass over the line and
// report !ok for ANYTHING outside the plain shapes — unknown keys, string
// escapes, numbers outside JSON's grammar — so callers fall back to
// encoding/json and observable behavior (including error text) is identical
// to a pure encoding/json implementation. The fast path is deliberately
// conservative: it never accepts a line encoding/json would reject.
package wire

import (
	"math"
	"strconv"
	"unsafe"
)

// TickIn is one decoded input line. Values and Rows (and Rows' row slices)
// are caller-owned scratch reused across lines; null values arrive as NaN.
// Has* distinguish an absent key from a present-but-empty array, matching
// encoding/json's nil-vs-empty slice semantics.
type TickIn struct {
	// Seq is the row's (or batch's first row's) sequence number; 0 = absent.
	Seq uint64
	// Values holds the single-row form's values (NaN = null).
	Values []float64
	// HasValues reports the "values" key was present and non-null.
	HasValues bool
	// Rows holds the batch form's rows (NaN = null).
	Rows [][]float64
	// HasRows reports the "rows" key was present and non-null.
	HasRows bool
}

// parser is a single-pass cursor over one line.
type parser struct {
	b []byte
	i int
}

func (p *parser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\r', '\n':
			p.i++
		default:
			return
		}
	}
}

// eat consumes c (after whitespace) or reports false.
func (p *parser) eat(c byte) bool {
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// lit consumes the exact literal s (no leading whitespace skip).
func (p *parser) lit(s string) bool {
	if len(p.b)-p.i < len(s) || string(p.b[p.i:p.i+len(s)]) != s {
		return false
	}
	p.i += len(s)
	return true
}

// key parses a plain "name" object key (no escapes) and its ':'.
func (p *parser) key() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case '"':
			k := p.b[start:p.i]
			p.i++
			if !p.eat(':') {
				return nil, false
			}
			return k, true
		case '\\':
			return nil, false // escapes: fall back to encoding/json
		}
		p.i++
	}
	return nil, false
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// numberToken scans one JSON number token and validates it against JSON's
// number grammar (strconv alone is laxer: it would take "+1", hex floats and
// underscores, which encoding/json rejects).
func (p *parser) numberToken() ([]byte, bool) {
	start := p.i
	i := p.i
	if i < len(p.b) && p.b[i] == '-' {
		i++
	}
	switch {
	case i < len(p.b) && p.b[i] == '0':
		i++
	case i < len(p.b) && p.b[i] >= '1' && p.b[i] <= '9':
		for i < len(p.b) && isDigit(p.b[i]) {
			i++
		}
	default:
		return nil, false
	}
	if i < len(p.b) && p.b[i] == '.' {
		i++
		if i >= len(p.b) || !isDigit(p.b[i]) {
			return nil, false
		}
		for i < len(p.b) && isDigit(p.b[i]) {
			i++
		}
	}
	if i < len(p.b) && (p.b[i] == 'e' || p.b[i] == 'E') {
		i++
		if i < len(p.b) && (p.b[i] == '+' || p.b[i] == '-') {
			i++
		}
		if i >= len(p.b) || !isDigit(p.b[i]) {
			return nil, false
		}
		for i < len(p.b) && isDigit(p.b[i]) {
			i++
		}
	}
	p.i = i
	return p.b[start:i], true
}

// float parses a number or null; null yields NaN.
func (p *parser) float() (float64, bool) {
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == 'n' {
		if p.lit("null") {
			return math.NaN(), true
		}
		return 0, false
	}
	tok, ok := p.numberToken()
	if !ok {
		return 0, false
	}
	// The token is read-only for ParseFloat's duration, so the unsafe
	// string view saves a per-value copy.
	v, err := strconv.ParseFloat(unsafe.String(unsafe.SliceData(tok), len(tok)), 64)
	if err != nil {
		return 0, false // e.g. out of range — encoding/json errors too
	}
	return v, true
}

// uintVal parses a plain digits-only number. encoding/json rejects "1e2",
// "-1" or "1.0" for a uint64 field, so any other shape reports false.
func (p *parser) uintVal() (uint64, bool) {
	p.ws()
	start := p.i
	for p.i < len(p.b) && isDigit(p.b[p.i]) {
		p.i++
	}
	tok := p.b[start:p.i]
	if len(tok) == 0 || (len(tok) > 1 && tok[0] == '0') {
		return 0, false
	}
	v, err := strconv.ParseUint(unsafe.String(unsafe.SliceData(tok), len(tok)), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// floatArray parses [v, v, …] (null allowed) into dst.
func (p *parser) floatArray(dst []float64) ([]float64, bool) {
	if !p.eat('[') {
		return nil, false
	}
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == ']' {
		p.i++
		return dst, true
	}
	for {
		v, ok := p.float()
		if !ok {
			return nil, false
		}
		dst = append(dst, v)
		p.ws()
		if p.i >= len(p.b) {
			return nil, false
		}
		switch p.b[p.i] {
		case ',':
			p.i++
		case ']':
			p.i++
			return dst, true
		default:
			return nil, false
		}
	}
}

// end verifies only whitespace remains (json.Unmarshal rejects trailing
// bytes after the value).
func (p *parser) end() bool {
	p.ws()
	return p.i == len(p.b)
}

// ParseTickIn decodes one input tick line into in, reusing in's scratch
// slices. It reports false — leaving in unspecified — when the line is
// anything but the plain {"seq":…,"values":[…]} / {"seq":…,"rows":[[…],…]}
// shapes; the caller then falls back to encoding/json for identical
// semantics (unknown-key tolerance, escape handling, exact error text).
func ParseTickIn(line []byte, in *TickIn) bool {
	in.Seq = 0
	in.Values = in.Values[:0]
	in.HasValues = false
	in.Rows = in.Rows[:0]
	in.HasRows = false
	p := parser{b: line}
	if !p.eat('{') {
		return false
	}
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == '}' {
		p.i++
		return p.end()
	}
	for {
		k, ok := p.key()
		if !ok {
			return false
		}
		switch string(k) {
		case "seq":
			v, ok := p.uintVal()
			if !ok {
				return false
			}
			in.Seq = v
		case "values":
			p.ws()
			if p.i < len(p.b) && p.b[p.i] == 'n' {
				if !p.lit("null") {
					return false
				}
				in.HasValues = false // JSON null leaves the field nil
				break
			}
			vals, ok := p.floatArray(in.Values[:0])
			if !ok {
				return false
			}
			in.Values = vals
			in.HasValues = true
		case "rows":
			p.ws()
			if p.i < len(p.b) && p.b[p.i] == 'n' {
				if !p.lit("null") {
					return false
				}
				in.HasRows = false
				break
			}
			if !p.eat('[') {
				return false
			}
			in.Rows = in.Rows[:0]
			in.HasRows = true
			p.ws()
			if p.i < len(p.b) && p.b[p.i] == ']' {
				p.i++
			} else {
				for {
					var row []float64
					if n := len(in.Rows); n < cap(in.Rows) {
						row = in.Rows[:n+1][n][:0]
					}
					row, ok := p.floatArray(row)
					if !ok {
						return false
					}
					in.Rows = append(in.Rows, row)
					p.ws()
					if p.i >= len(p.b) {
						return false
					}
					if p.b[p.i] == ',' {
						p.i++
						continue
					}
					if p.b[p.i] == ']' {
						p.i++
						break
					}
					return false
				}
			}
		default:
			return false // unknown key: let encoding/json's tolerance decide
		}
		p.ws()
		if p.i >= len(p.b) {
			return false
		}
		switch p.b[p.i] {
		case ',':
			p.i++
		case '}':
			p.i++
			return p.end()
		default:
			return false
		}
	}
}

// Ack is one decoded ack line. Values and Imputed are caller-owned scratch.
type Ack struct {
	// Tick is the engine tick index after the row.
	Tick int
	// Seq is the row's sequence number.
	Seq uint64
	// Values is the completed row.
	Values []float64
	// Imputed lists the indices that were missing.
	Imputed []int
	// Duplicate marks a replayed, already-applied row.
	Duplicate bool
}

// ParseAck decodes one server ack line into a, reusing a's scratch slices.
// It reports false for anything but the exact ack shape the server emits —
// tick, seq, values and imputed all present, duplicate optional — so in
// particular the in-stream {"error":…} form and any foreign server's
// variations fall back to encoding/json.
func ParseAck(line []byte, a *Ack) bool {
	a.Tick = 0
	a.Seq = 0
	a.Values = a.Values[:0]
	a.Imputed = a.Imputed[:0]
	a.Duplicate = false
	var sawTick, sawSeq, sawValues, sawImputed bool
	p := parser{b: line}
	if !p.eat('{') {
		return false
	}
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == '}' {
		return false // empty object: not an ack
	}
	for {
		k, ok := p.key()
		if !ok {
			return false
		}
		switch string(k) {
		case "tick":
			v, ok := p.uintVal()
			if !ok || v > math.MaxInt64 {
				return false
			}
			a.Tick = int(v)
			sawTick = true
		case "seq":
			v, ok := p.uintVal()
			if !ok {
				return false
			}
			a.Seq = v
			sawSeq = true
		case "values":
			vals, ok := p.floatArray(a.Values[:0])
			if !ok {
				return false
			}
			for _, v := range vals {
				if math.IsNaN(v) { // null element: not a fast-path shape
					return false
				}
			}
			a.Values = vals
			sawValues = true
		case "imputed":
			sawImputed = true
			if !p.eat('[') {
				return false
			}
			p.ws()
			if p.i < len(p.b) && p.b[p.i] == ']' {
				p.i++
				break
			}
			for {
				v, ok := p.uintVal()
				if !ok || v > math.MaxInt64 {
					return false
				}
				a.Imputed = append(a.Imputed, int(v))
				p.ws()
				if p.i >= len(p.b) {
					return false
				}
				if p.b[p.i] == ',' {
					p.i++
					continue
				}
				if p.b[p.i] == ']' {
					p.i++
					break
				}
				return false
			}
		case "duplicate":
			p.ws()
			switch {
			case p.lit("true"):
				a.Duplicate = true
			case p.lit("false"):
				a.Duplicate = false
			default:
				return false
			}
		default:
			return false
		}
		p.ws()
		if p.i >= len(p.b) {
			return false
		}
		switch p.b[p.i] {
		case ',':
			p.i++
		case '}':
			p.i++
			return sawTick && sawSeq && sawValues && sawImputed && p.end()
		default:
			return false
		}
	}
}

// AppendAck appends one ack line (with trailing newline) to dst. It reports
// false — leaving dst's extension unspecified — when values contains a
// non-finite number, which JSON cannot carry; the caller falls back to
// encoding/json for the identical error.
func AppendAck(dst []byte, tick int, seq uint64, values []float64, imputed []int, duplicate bool) ([]byte, bool) {
	dst = append(dst, `{"tick":`...)
	dst = strconv.AppendInt(dst, int64(tick), 10)
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, seq, 10)
	dst = append(dst, `,"values":[`...)
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return dst, false
		}
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONFloat(dst, v)
	}
	dst = append(dst, `],"imputed":[`...)
	for i, v := range imputed {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(v), 10)
	}
	dst = append(dst, ']')
	if duplicate {
		dst = append(dst, `,"duplicate":true`...)
	}
	dst = append(dst, '}', '\n')
	return dst, true
}

// appendJSONFloat formats v the way encoding/json does: %g with the
// exponent rewritten into plain notation for the e-1..e20 range, so the
// wire bytes match a json.Encoder's output exactly.
func appendJSONFloat(dst []byte, v float64) []byte {
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	start := len(dst)
	dst = strconv.AppendFloat(dst, v, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 → e-9, matching encoding/json.
		n := len(dst)
		if n-start >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}
