// Package spirit implements the SPIRIT baseline (Papadimitriou, Sun &
// Faloutsos, VLDB 2005): streaming discovery of k hidden variables that
// summarize n co-evolving streams via an online PCA (PAST-style tracking of
// the principal participation weights), with one autoregressive forecaster
// per hidden variable used to impute missing stream values.
//
// When a value is missing at the current tick, SPIRIT forecasts each hidden
// variable with its AR model, reconstructs the full measurement vector from
// the forecasted hidden variables and the current weight matrix, and imputes
// the missing entries from the reconstruction. The imputed vector then
// updates the weights and the AR models — the same imputed-feedback loop the
// TKCM paper identifies as SPIRIT's weakness for shifted data (Sec. 2, 7.3.3).
//
// Following the TKCM paper's setup (Sec. 7.1): the number of hidden
// variables is fixed at 2 (no adaptive growth), the AR order is p = 6, and
// the exponential forgetting factor is λ = 1.
package spirit
