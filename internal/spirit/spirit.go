package spirit

import (
	"fmt"
	"math"

	"tkcm/internal/linalg"
)

// Config parameterizes a SPIRIT tracker.
type Config struct {
	// HiddenVariables is the fixed number k of hidden variables (paper
	// comparison setting: 2).
	HiddenVariables int
	// AROrder is the order p of each hidden variable's autoregressive
	// forecaster (paper setting: 6).
	AROrder int
	// Lambda is the exponential forgetting factor for both the PCA weight
	// updates and the AR model RLS updates (paper setting: 1).
	Lambda float64
}

// DefaultConfig returns the settings used in the TKCM paper's evaluation.
func DefaultConfig() Config { return Config{HiddenVariables: 2, AROrder: 6, Lambda: 1} }

// Tracker tracks hidden variables over a fixed set of streams and imputes
// missing values by reconstruction.
type Tracker struct {
	cfg   Config
	width int
	// w[i] is the participation-weight vector of hidden variable i (length
	// width). Maintained approximately orthonormal by the PAST update with
	// deflation.
	w [][]float64
	// d[i] is the energy estimate of hidden variable i.
	d []float64
	// ar[i] forecasts hidden variable i from its own p past values.
	ar []*linalg.RLS
	// hist[i] holds the last AROrder values of hidden variable i (newest
	// last).
	hist [][]float64
	tick int
}

// NewTracker creates a SPIRIT tracker over width streams.
func NewTracker(cfg Config, width int) (*Tracker, error) {
	if cfg.HiddenVariables <= 0 || cfg.HiddenVariables > width {
		return nil, fmt.Errorf("spirit: hidden variables k=%d must be in [1,%d]", cfg.HiddenVariables, width)
	}
	if cfg.AROrder <= 0 {
		return nil, fmt.Errorf("spirit: AR order must be positive, got %d", cfg.AROrder)
	}
	if cfg.Lambda <= 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("spirit: forgetting factor λ must be in (0,1], got %g", cfg.Lambda)
	}
	t := &Tracker{cfg: cfg, width: width}
	t.w = make([][]float64, cfg.HiddenVariables)
	t.d = make([]float64, cfg.HiddenVariables)
	t.ar = make([]*linalg.RLS, cfg.HiddenVariables)
	t.hist = make([][]float64, cfg.HiddenVariables)
	for i := 0; i < cfg.HiddenVariables; i++ {
		t.w[i] = make([]float64, width)
		// Initialize with distinct unit vectors so the deflation has
		// independent directions to start from.
		t.w[i][i%width] = 1
		t.d[i] = 1e-3
		t.ar[i] = linalg.NewRLS(cfg.AROrder+1, cfg.Lambda, 1e4)
		t.hist[i] = make([]float64, 0, cfg.AROrder)
	}
	return t, nil
}

// forecastHidden predicts the next value of hidden variable i from its AR
// model; before the model is warm it falls back to the most recent value.
func (t *Tracker) forecastHidden(i int) float64 {
	h := t.hist[i]
	if len(h) < t.cfg.AROrder {
		if len(h) == 0 {
			return 0
		}
		return h[len(h)-1]
	}
	x := t.arFeatures(i)
	return t.ar[i].Predict(x)
}

// estimateHidden estimates the current hidden-variable vector for
// reconstruction. When the observed coordinates of row determine the k
// hidden variables (at least k observed values and a non-singular normal
// system), it solves the least-squares problem
//
//	min_y Σ_{j observed} (row[j] − Σ_i y_i w_i[j])²,
//
// anchoring the estimate on real measurements. Otherwise (or when the
// system is singular) it returns the per-variable AR forecasts.
func (t *Tracker) estimateHidden(row []float64) []float64 {
	k := t.cfg.HiddenVariables
	var obs []int
	for j, v := range row {
		if !math.IsNaN(v) {
			obs = append(obs, j)
		}
	}
	if len(obs) >= k {
		// Normal equations: (Wᵀ_obs W_obs) y = Wᵀ_obs x_obs, where W_obs
		// has one column per hidden variable restricted to observed rows.
		a := linalg.NewMatrix(k, k)
		b := make([]float64, k)
		for i := 0; i < k; i++ {
			for i2 := i; i2 < k; i2++ {
				s := 0.0
				for _, j := range obs {
					s += t.w[i][j] * t.w[i2][j]
				}
				a.Set(i, i2, s)
				a.Set(i2, i, s)
			}
			s := 0.0
			for _, j := range obs {
				s += t.w[i][j] * row[j]
			}
			b[i] = s
		}
		if y, ok := linalg.Solve(a, b); ok {
			return y
		}
	}
	y := make([]float64, k)
	for i := 0; i < k; i++ {
		y[i] = t.forecastHidden(i)
	}
	return y
}

// arFeatures returns [1, y(t-1), ..., y(t-p)] for hidden variable i.
func (t *Tracker) arFeatures(i int) []float64 {
	h := t.hist[i]
	x := make([]float64, 0, t.cfg.AROrder+1)
	x = append(x, 1)
	for lag := 1; lag <= t.cfg.AROrder; lag++ {
		x = append(x, h[len(h)-lag])
	}
	return x
}

// Step consumes one tick of measurements (NaN = missing) and returns the
// completed vector: observed values pass through, missing values are imputed
// from the hidden-variable reconstruction.
func (t *Tracker) Step(row []float64) []float64 {
	if len(row) != t.width {
		panic(fmt.Sprintf("spirit: row width %d != %d", len(row), t.width))
	}
	out := make([]float64, t.width)
	copy(out, row)

	anyMissing := false
	for _, v := range row {
		if math.IsNaN(v) {
			anyMissing = true
			break
		}
	}
	if anyMissing {
		// Estimate the hidden variables, reconstruct x̂ = Σ ŷᵢ wᵢ, and
		// impute the missing coordinates. The hidden-variable estimate
		// anchors on the observed coordinates when they determine it
		// (least squares on the observed subsystem); otherwise it falls
		// back to the AR forecasts. Pure AR feedback alone drifts out of
		// phase over long gaps because an imputed coordinate with a large
		// participation weight dominates its own next estimate.
		y := t.estimateHidden(row)
		recon := make([]float64, t.width)
		for i := 0; i < t.cfg.HiddenVariables; i++ {
			linalg.AXPY(y[i], t.w[i], recon)
		}
		for j := range out {
			if math.IsNaN(out[j]) {
				out[j] = recon[j]
			}
		}
	}

	// PAST update with deflation on the completed vector.
	x := make([]float64, t.width)
	copy(x, out)
	ys := make([]float64, t.cfg.HiddenVariables)
	for i := 0; i < t.cfg.HiddenVariables; i++ {
		wi := t.w[i]
		y := linalg.Dot(wi, x)
		t.d[i] = t.cfg.Lambda*t.d[i] + y*y
		// e = x − y·wᵢ ; wᵢ += (y/dᵢ)·e
		if t.d[i] > 0 {
			g := y / t.d[i]
			for j := range wi {
				wi[j] += g * (x[j] - y*wi[j])
			}
		}
		// Re-normalize to curb drift.
		if n := linalg.Norm2(wi); n > 0 {
			linalg.Scale(wi, 1/n)
		}
		// Deflate the input for the next hidden variable.
		y = linalg.Dot(wi, x)
		ys[i] = y
		linalg.AXPY(-y, wi, x)
	}

	// Train the AR models on the realized hidden-variable values, then push
	// them into the histories.
	for i := 0; i < t.cfg.HiddenVariables; i++ {
		if len(t.hist[i]) >= t.cfg.AROrder {
			feat := t.arFeatures(i)
			t.ar[i].Update(feat, ys[i])
		}
		t.hist[i] = append(t.hist[i], ys[i])
		if len(t.hist[i]) > t.cfg.AROrder {
			t.hist[i] = t.hist[i][1:]
		}
	}
	t.tick++
	return out
}

// HiddenValues returns the most recent value of every hidden variable
// (useful for tests and diagnostics).
func (t *Tracker) HiddenValues() []float64 {
	out := make([]float64, t.cfg.HiddenVariables)
	for i := range out {
		h := t.hist[i]
		if len(h) > 0 {
			out[i] = h[len(h)-1]
		}
	}
	return out
}

// Weights returns a copy of the current participation-weight vectors.
func (t *Tracker) Weights() [][]float64 {
	out := make([][]float64, len(t.w))
	for i, wi := range t.w {
		out[i] = append([]float64(nil), wi...)
	}
	return out
}

// Recover imputes all missing values of data (rows = ticks, columns =
// streams) by streaming through it and returns the completed copy.
func Recover(cfg Config, data [][]float64) ([][]float64, error) {
	if len(data) == 0 {
		return nil, nil
	}
	tr, err := NewTracker(cfg, len(data[0]))
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(data))
	for i, row := range data {
		out[i] = tr.Step(row)
	}
	return out, nil
}
