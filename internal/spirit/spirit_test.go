package spirit

import (
	"math"
	"testing"

	"tkcm/internal/linalg"
	"tkcm/internal/stats"
)

func TestNewTrackerValidation(t *testing.T) {
	cases := []Config{
		{HiddenVariables: 0, AROrder: 6, Lambda: 1},
		{HiddenVariables: 4, AROrder: 6, Lambda: 1}, // k > width
		{HiddenVariables: 2, AROrder: 0, Lambda: 1},
		{HiddenVariables: 2, AROrder: 6, Lambda: 0},
		{HiddenVariables: 2, AROrder: 6, Lambda: 1.1},
	}
	for i, cfg := range cases {
		if _, err := NewTracker(cfg, 3); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
}

func TestStepWidthMismatchPanics(t *testing.T) {
	tr, err := NewTracker(DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch accepted")
		}
	}()
	tr.Step([]float64{1, 2})
}

// TestTracksRankOneSubspace: on streams that are exact multiples of one
// hidden signal, the leading weight vector must align with the true
// participation direction.
func TestTracksRankOneSubspace(t *testing.T) {
	cfg := Config{HiddenVariables: 1, AROrder: 4, Lambda: 1}
	tr, err := NewTracker(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	true_ := []float64{1, 2, -1}
	linalg.Scale(true_, 1/linalg.Norm2(true_))
	for i := 0; i < 2000; i++ {
		h := math.Sin(2 * math.Pi * float64(i) / 37)
		tr.Step([]float64{h * true_[0] * linalg.Norm2([]float64{1, 2, -1}), h * 2, h * -1})
	}
	w := tr.Weights()[0]
	// Alignment up to sign.
	cos := math.Abs(linalg.Dot(w, true_))
	if cos < 0.99 {
		t.Fatalf("weight alignment |cos| = %v, want ≈ 1 (w = %v)", cos, w)
	}
}

// TestImputesLinearlyCorrelatedStreams: the regime SPIRIT is designed for —
// co-evolving linearly correlated streams — must recover well.
func TestImputesLinearlyCorrelatedStreams(t *testing.T) {
	const n = 3000
	data := make([][]float64, n)
	var truth []float64
	for i := 0; i < n; i++ {
		h := math.Sin(2*math.Pi*float64(i)/288) + 0.3*math.Sin(2*math.Pi*float64(i)/41)
		row := []float64{2 * h, -h, 0.5 * h}
		if i >= 2500 && i < 2560 {
			truth = append(truth, row[0])
			row[0] = math.NaN()
		}
		data[i] = row
	}
	out, err := Recover(DefaultConfig(), data)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]float64, 60)
	for i := range rec {
		rec[i] = out[2500+i][0]
	}
	if rmse := stats.RMSE(truth, rec); rmse > 0.25 {
		t.Fatalf("RMSE on linearly correlated streams = %v, want small", rmse)
	}
}

// TestWeightsStayNormalized: the participation weights must remain unit
// vectors under long streaming (the explicit renormalization).
func TestWeightsStayNormalized(t *testing.T) {
	tr, err := NewTracker(DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	state := uint64(3)
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%2000)/100 - 10
	}
	for i := 0; i < 5000; i++ {
		tr.Step([]float64{next(), next(), next(), next()})
	}
	for i, w := range tr.Weights() {
		if math.Abs(linalg.Norm2(w)-1) > 1e-6 {
			t.Fatalf("weight %d has norm %v", i, linalg.Norm2(w))
		}
	}
}

func TestHiddenValuesExposed(t *testing.T) {
	tr, err := NewTracker(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Step([]float64{1, 2})
	hv := tr.HiddenValues()
	if len(hv) != 2 {
		t.Fatalf("hidden values = %v", hv)
	}
}

func TestPassThroughWhenPresent(t *testing.T) {
	tr, err := NewTracker(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		out := tr.Step([]float64{float64(i), float64(-i)})
		if out[0] != float64(i) || out[1] != float64(-i) {
			t.Fatalf("tick %d: present values altered: %v", i, out)
		}
	}
}

func TestImputationsStayFinite(t *testing.T) {
	const n = 2000
	data := make([][]float64, n)
	for i := 0; i < n; i++ {
		h := math.Sin(float64(i) / 13)
		row := []float64{h, h * 2, -h}
		if i >= 300 { // long gap, imputed feedback throughout
			row[0] = math.NaN()
		}
		data[i] = row
	}
	out, err := Recover(DefaultConfig(), data)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range out {
		if math.IsNaN(row[0]) || math.IsInf(row[0], 0) {
			t.Fatalf("tick %d: non-finite imputation %v", i, row[0])
		}
	}
}

func TestRecoverEmpty(t *testing.T) {
	out, err := Recover(DefaultConfig(), nil)
	if err != nil || out != nil {
		t.Fatalf("empty recover = %v, %v", out, err)
	}
}
