package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"strconv"
	"sync/atomic"
)

// The histogram's bucket geometry: NumBuckets exponential upper bounds,
// 10µs · 2^i for i = 0..NumBuckets-1 (10µs … ~10.5s), then an implicit
// +Inf bucket. The smallest bound sits below a warm engine tick and the
// largest above any group-commit stall worth alerting on, with factor-2
// resolution in between — enough for p99-by-stage without per-series
// configuration.
const (
	// NumBuckets is the number of finite buckets (a +Inf bucket follows).
	NumBuckets = 21
	// bucket0Nanos is the smallest upper bound in nanoseconds (10µs).
	bucket0Nanos = 10_000
)

// BucketBounds returns the finite upper bounds in seconds, smallest first.
func BucketBounds() []float64 {
	out := make([]float64, NumBuckets)
	for i := range out {
		out[i] = float64(int64(bucket0Nanos)<<i) / 1e9
	}
	return out
}

// bucketLabels are the precomputed le="..." label values (shortest float
// round-tripping representation, matching what a parser reads back).
var bucketLabels = func() [NumBuckets]string {
	var out [NumBuckets]string
	for i, b := range BucketBounds() {
		out[i] = strconv.FormatFloat(b, 'g', -1, 64)
	}
	return out
}()

// Histogram is a fixed-bucket latency histogram with preallocated atomic
// buckets: Observe is two atomic adds and a bit scan, no allocation, no
// lock. The zero value is ready to use, so arrays and slices of Histogram
// need no constructor. Scrape-time readers derive _count from the bucket
// cumulative sum, so buckets and count can never disagree.
type Histogram struct {
	counts [NumBuckets + 1]atomic.Uint64
	sum    atomic.Int64 // total observed nanoseconds
}

// Observe records one latency in nanoseconds (values < 0 clamp to 0).
func (h *Histogram) Observe(nanos int64) {
	if nanos < 0 {
		nanos = 0
	}
	h.counts[bucketIndex(nanos)].Add(1)
	h.sum.Add(nanos)
}

// bucketIndex maps nanos to its bucket in O(1): the smallest i with
// nanos <= bucket0Nanos << i, else the +Inf bucket.
func bucketIndex(nanos int64) int {
	q := (uint64(nanos) + bucket0Nanos - 1) / bucket0Nanos // ceil(nanos/10µs)
	if q <= 1 {
		return 0
	}
	i := bits.Len64(q - 1) // smallest i with 2^i >= q
	if i >= NumBuckets {
		return NumBuckets
	}
	return i
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// WriteProm writes the histogram as Prometheus text-exposition sample lines
// (no HELP/TYPE header — the caller owns the family header, since several
// label sets share one family). labels is the rendered label prefix, e.g.
// `stage="engine",shard="0"`, or empty. _count is the +Inf cumulative by
// construction.
func (h *Histogram) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i := 0; i < NumBuckets; i++ {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, bucketLabels[i], cum)
	}
	cum += h.counts[NumBuckets].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sum.Load())/1e9)
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.sum.Load())/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, cum)
	}
}

// Quantile estimates the q-quantile (0..1) in seconds from parallel slices
// of bucket upper bounds (seconds, +Inf last) and cumulative counts — the
// same estimate Prometheus's histogram_quantile computes, with linear
// interpolation inside the landing bucket. Returns NaN when empty.
func Quantile(q float64, les []float64, cums []uint64) float64 {
	if len(les) == 0 || len(les) != len(cums) || cums[len(cums)-1] == 0 {
		return math.NaN()
	}
	total := cums[len(cums)-1]
	rank := q * float64(total)
	for i, cum := range cums {
		if float64(cum) < rank {
			continue
		}
		hi := les[i]
		if math.IsInf(hi, 1) {
			// The landing bucket is +Inf: report the largest finite bound.
			if i == 0 {
				return math.NaN()
			}
			return les[i-1]
		}
		lo, below := 0.0, uint64(0)
		if i > 0 {
			lo, below = les[i-1], cums[i-1]
		}
		in := float64(cum - below)
		if in <= 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(below))/in
	}
	return les[len(les)-1]
}
