package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestNowMonotonic(t *testing.T) {
	a := Now()
	time.Sleep(time.Millisecond)
	b := Now()
	if b <= a {
		t.Fatalf("Now not monotonic: %d then %d", a, b)
	}
	if d := b - a; d < int64(500*time.Microsecond) || d > int64(time.Second) {
		t.Fatalf("1ms sleep measured as %v", time.Duration(d))
	}
}

func TestStageStrings(t *testing.T) {
	want := []string{"decode", "queue", "engine", "wal_commit", "ack"}
	if NumStages != len(want) {
		t.Fatalf("NumStages = %d, want %d", NumStages, len(want))
	}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Errorf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if got := Stage(99).String(); got != "unknown" {
		t.Errorf("out-of-range stage = %q", got)
	}
}

// TestSamplerDeterministic pins the 1-in-N contract: same seed, same call
// count, same selections — and exactly one hit per n consecutive calls.
func TestSamplerDeterministic(t *testing.T) {
	record := func(n int, seed uint64, calls int) []bool {
		s := NewSampler(n, seed)
		out := make([]bool, calls)
		for i := range out {
			out[i] = s.Hit()
		}
		return out
	}
	a := record(3, 42, 30)
	b := record(3, 42, 30)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i+1)
		}
	}
	hits := 0
	for _, h := range a {
		if h {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("30 calls at 1-in-3: %d hits, want 10", hits)
	}
	// Different seeds may select a different phase, but always 1-in-n.
	c := record(3, 7, 30)
	hits = 0
	for _, h := range c {
		if h {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("seed 7: %d hits, want 10", hits)
	}
	var nilSampler *Sampler
	if nilSampler.Hit() {
		t.Fatal("nil sampler must never hit")
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		nanos int64
		want  int
	}{
		{0, 0}, {1, 0}, {9_999, 0}, {10_000, 0},
		{10_001, 1}, {20_000, 1}, {20_001, 2}, {40_000, 2},
		{int64(10_000) << 20, NumBuckets - 1}, // exactly the largest bound
		{int64(10_000)<<20 + 1, NumBuckets},   // just past it: +Inf
		{int64(time.Hour), NumBuckets},        // way past: +Inf
		{-5, 0},                               // clamped by Observe; index of 0
	}
	for _, c := range cases {
		n := c.nanos
		if n < 0 {
			n = 0
		}
		if got := bucketIndex(n); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.nanos, got, c.want)
		}
	}
}

func TestHistogramObserveAndWrite(t *testing.T) {
	var h Histogram
	h.Observe(5_000)              // bucket 0 (10µs)
	h.Observe(15_000)             // bucket 1 (20µs)
	h.Observe(15_000)             // bucket 1
	h.Observe(int64(time.Minute)) // +Inf
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	var b strings.Builder
	h.WriteProm(&b, "x_seconds", `stage="engine",shard="0"`)
	out := b.String()
	for _, want := range []string{
		`x_seconds_bucket{stage="engine",shard="0",le="1e-05"} 1`,
		`x_seconds_bucket{stage="engine",shard="0",le="2e-05"} 3`,
		`x_seconds_bucket{stage="engine",shard="0",le="+Inf"} 4`,
		`x_seconds_count{stage="engine",shard="0"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// _sum in seconds: 5µs + 15µs + 15µs + 60s.
	sc, err := ParseProm(out)
	if err != nil {
		t.Fatalf("parsing own exposition: %v", err)
	}
	for _, sm := range sc.Samples {
		if sm.Name == "x_seconds_sum" {
			if want := 60.000035; math.Abs(sm.Value-want) > 1e-9 {
				t.Errorf("sum = %v, want %v", sm.Value, want)
			}
		}
	}
}

// TestHistogramCumulativeMonotone checks bucket cumulativity across every
// bound for a spread of observations.
func TestHistogramCumulativeMonotone(t *testing.T) {
	var h Histogram
	for i := int64(1); i < 60; i++ {
		h.Observe(i * i * 997)
	}
	var b strings.Builder
	h.WriteProm(&b, "y", "")
	sc, err := ParseProm(b.String())
	if err != nil {
		t.Fatal(err)
	}
	prev := uint64(0)
	seen := 0
	for _, sm := range sc.Samples {
		if sm.Name != "y_bucket" {
			continue
		}
		seen++
		if uint64(sm.Value) < prev {
			t.Fatalf("cumulative decreased at le=%s", sm.LabelMap["le"])
		}
		prev = uint64(sm.Value)
	}
	if seen != NumBuckets+1 {
		t.Fatalf("emitted %d buckets, want %d", seen, NumBuckets+1)
	}
	if prev != 59 {
		t.Fatalf("+Inf cumulative = %d, want 59", prev)
	}
}

func TestQuantile(t *testing.T) {
	les := []float64{0.001, 0.002, 0.004, math.Inf(1)}
	cums := []uint64{10, 90, 100, 100}
	p50 := Quantile(0.5, les, cums)
	// rank 50 lands in (0.001, 0.002] holding counts 10..90.
	want := 0.001 + 0.001*(50-10)/80
	if math.Abs(p50-want) > 1e-12 {
		t.Fatalf("p50 = %v, want %v", p50, want)
	}
	if !math.IsNaN(Quantile(0.5, nil, nil)) {
		t.Fatal("empty quantile must be NaN")
	}
	// Everything in +Inf: degrade to the largest finite bound.
	if got := Quantile(0.99, les, []uint64{0, 0, 0, 7}); got != 0.004 {
		t.Fatalf("all-inf quantile = %v, want 0.004", got)
	}
}

// TestHotPathAllocations pins the instrumentation primitives at zero
// allocations — the hard constraint that lets timestamps stay always-on in
// the tick hot path.
func TestHotPathAllocations(t *testing.T) {
	var h Histogram
	s := NewSampler(16, 3)
	if n := testing.AllocsPerRun(1000, func() { _ = Now() }); n != 0 {
		t.Errorf("Now allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() { _ = s.Hit() }); n != 0 {
		t.Errorf("Sampler.Hit allocates %v per call", n)
	}
}

func TestRuntimeCollector(t *testing.T) {
	c := NewRuntimeCollector()
	var b strings.Builder
	c.WriteProm(&b)
	out := b.String()
	sc, err := ParseProm(out)
	if err != nil {
		t.Fatalf("runtime exposition does not parse: %v\n%s", err, out)
	}
	// Goroutines and heap bytes exist on every supported toolchain.
	found := map[string]bool{}
	for _, sm := range sc.Samples {
		found[sm.Name] = true
	}
	for _, want := range []string{"tkcm_go_goroutines", "tkcm_go_heap_objects_bytes", "tkcm_go_gc_cycles_total"} {
		if !found[want] {
			t.Errorf("runtime telemetry missing %s:\n%s", want, out)
		}
		if sc.Help[want] == "" || sc.Type[want] == "" {
			t.Errorf("%s missing HELP/TYPE", want)
		}
	}
	// Histogram families, when supported, must be internally consistent.
	for _, fam := range []string{"tkcm_go_gc_pause_seconds", "tkcm_go_sched_latency_seconds"} {
		if !found[fam+"_count"] {
			continue // toolchain without the source metric
		}
		var inf, count float64
		hasInf := false
		for _, sm := range sc.Samples {
			if sm.Name == fam+"_bucket" && sm.LabelMap["le"] == "+Inf" {
				inf, hasInf = sm.Value, true
			}
			if sm.Name == fam+"_count" {
				count = sm.Value
			}
		}
		if !hasInf || inf != count {
			t.Errorf("%s: +Inf bucket %v != count %v (hasInf=%v)", fam, inf, count, hasInf)
		}
	}
}

func TestParsePromErrors(t *testing.T) {
	if _, err := ParseProm("metric_without_value\n"); err == nil {
		t.Error("want error for value-less line")
	}
	if _, err := ParseProm("m{a=\"unterminated} 1\n"); err == nil {
		t.Error("want error for unterminated label value")
	}
	sc, err := ParseProm("# random comment\nm{a=\"x\",b=\"y\"} 4.5\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Samples) != 1 || sc.Samples[0].Labels != `a="x",b="y"` || sc.Samples[0].Value != 4.5 {
		t.Fatalf("parsed %+v", sc.Samples)
	}
}

func TestFamilyOf(t *testing.T) {
	if f, h := FamilyOf("x_seconds_bucket"); f != "x_seconds" || !h {
		t.Errorf("FamilyOf bucket = %q,%v", f, h)
	}
	if f, h := FamilyOf("x_total"); f != "x_total" || h {
		t.Errorf("FamilyOf counter = %q,%v", f, h)
	}
}
