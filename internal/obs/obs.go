// Package obs is the serving stack's observability kit: a monotonic stage
// clock, fixed-bucket zero-allocation latency histograms, a deterministic
// 1-in-N trace sampler, Go runtime telemetry, and a small Prometheus
// text-exposition parser (used by the conformance test and tkcm-loadgen's
// server-side latency attribution).
//
// The design constraint throughout is the hot path: Now, Histogram.Observe,
// and Sampler.Hit are allocation-free and lock-free (atomics only), cheap
// enough to run on every tick unconditionally — sampling gates logging,
// never measurement.
package obs

import (
	"sync/atomic"
	"time"
)

// base anchors the process-local monotonic clock. Only differences of Now
// values are meaningful.
var base = time.Now()

// Now returns nanoseconds since process start on the monotonic clock — a
// single vDSO read, no allocation. Timestamps are only comparable within
// this process.
func Now() int64 { return int64(time.Since(base)) }

// Stage identifies one leg of a tick's end-to-end path. The values index
// per-shard histogram arrays and label the tkcm_tick_stage_seconds series.
type Stage int

// The tick path's stages, in wire order: NDJSON decode, shard-queue wait,
// engine compute (including the WAL append memcpy), group-commit durability
// wait, and the ack write back to the client.
const (
	StageDecode Stage = iota
	StageQueue
	StageEngine
	StageWALCommit
	StageAck

	// NumStages sizes per-stage arrays.
	NumStages int = iota
)

// stageNames are the {stage=...} label values.
var stageNames = [NumStages]string{"decode", "queue", "engine", "wal_commit", "ack"}

// String returns the stage's metric label value.
func (s Stage) String() string {
	if s < 0 || int(s) >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Sampler is a deterministic 1-in-N selector: of every n consecutive Hit
// calls, exactly one returns true, at a fixed phase derived from the seed.
// Determinism is what makes sampled traces test-assertable: the same seed
// and the same call count always select the same ticks. Concurrent use is
// safe; the counter is a single atomic.
type Sampler struct {
	n     uint64
	phase uint64
	ctr   atomic.Uint64
}

// NewSampler returns a sampler hitting once every n calls (n <= 1 hits every
// call; use nil or n = 0 via NeverSampler semantics to disable — a nil
// *Sampler's Hit is valid and always false).
func NewSampler(n int, seed uint64) *Sampler {
	if n < 1 {
		n = 1
	}
	un := uint64(n)
	return &Sampler{n: un, phase: seed % un}
}

// Hit advances the sampler and reports whether this call is the 1-in-N
// selection. Call it unconditionally (never short-circuit behind another
// condition), or the call count — and with it the selection — diverges
// between runs.
func (s *Sampler) Hit() bool {
	if s == nil {
		return false
	}
	return s.ctr.Add(1)%s.n == s.phase
}
