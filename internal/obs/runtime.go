package obs

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"strconv"
)

// runtimeSeries maps one runtime/metrics sample onto a Prometheus family.
// Histogram-kind samples render as _bucket/_sum/_count; numeric kinds as a
// single sample line.
type runtimeSeries struct {
	src   string // runtime/metrics name
	name  string // exposed family name
	typ   string // "gauge", "counter", or "histogram"
	help  string
	scale float64 // multiplier for numeric kinds (0 = 1)
}

// runtimeCatalog is the fixed telemetry set exposed on /metrics. Names the
// running toolchain does not support are skipped at sample time (KindBad),
// so the set can include newer metrics without breaking older toolchains.
var runtimeCatalog = []runtimeSeries{
	{src: "/sched/goroutines:goroutines", name: "tkcm_go_goroutines", typ: "gauge",
		help: "Live goroutines."},
	{src: "/memory/classes/heap/objects:bytes", name: "tkcm_go_heap_objects_bytes", typ: "gauge",
		help: "Bytes of live heap objects plus dead objects not yet swept."},
	{src: "/memory/classes/total:bytes", name: "tkcm_go_memory_total_bytes", typ: "gauge",
		help: "All memory mapped by the Go runtime."},
	{src: "/gc/cycles/total:gc-cycles", name: "tkcm_go_gc_cycles_total", typ: "counter",
		help: "Completed garbage-collection cycles."},
	{src: "/sched/pauses/total/gc:seconds", name: "tkcm_go_gc_pause_seconds", typ: "histogram",
		help: "Distribution of individual stop-the-world GC pause latencies (approximate _sum: bucket midpoints)."},
	{src: "/sched/latencies:seconds", name: "tkcm_go_sched_latency_seconds", typ: "histogram",
		help: "Distribution of time goroutines spent runnable before running (approximate _sum: bucket midpoints)."},
}

// RuntimeCollector samples Go runtime telemetry (runtime/metrics) and
// renders it as Prometheus families. One instance is reused across scrapes;
// the sample slice is allocated once.
type RuntimeCollector struct {
	samples []metrics.Sample
}

// NewRuntimeCollector prepares the sample set for the fixed catalog.
func NewRuntimeCollector() *RuntimeCollector {
	c := &RuntimeCollector{samples: make([]metrics.Sample, len(runtimeCatalog))}
	for i, rs := range runtimeCatalog {
		c.samples[i].Name = rs.src
	}
	return c
}

// WriteProm samples the runtime and writes every supported family, headers
// included. Metrics the toolchain does not know are silently skipped.
func (c *RuntimeCollector) WriteProm(w io.Writer) {
	metrics.Read(c.samples)
	for i, rs := range runtimeCatalog {
		v := c.samples[i].Value
		switch v.Kind() {
		case metrics.KindUint64:
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", rs.name, rs.help, rs.name, rs.typ, rs.name, v.Uint64())
		case metrics.KindFloat64:
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", rs.name, rs.help, rs.name, rs.typ, rs.name, v.Float64())
		case metrics.KindFloat64Histogram:
			writeRuntimeHistogram(w, rs, v.Float64Histogram())
		default:
			// KindBad: unsupported on this toolchain — skip the family.
		}
	}
}

// writeRuntimeHistogram converts a runtime Float64Histogram into Prometheus
// text form: cumulative buckets at the runtime's own upper bounds (zero-count
// buckets elided to bound series cardinality — the cumulative stays
// monotonic), a final +Inf bucket, and a _count derived from the cumulative.
// The runtime does not track a sum, so _sum is approximated from bucket
// midpoints; the HELP string says so.
func writeRuntimeHistogram(w io.Writer, rs runtimeSeries, h *metrics.Float64Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", rs.name, rs.help, rs.name)
	cum := uint64(0)
	sum := 0.0
	for i, n := range h.Counts {
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if n > 0 {
			cum += n
			sum += float64(n) * bucketMid(lo, hi)
			if !math.IsInf(hi, 1) {
				fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", rs.name, strconv.FormatFloat(hi, 'g', -1, 64), cum)
			}
		}
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", rs.name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", rs.name, sum)
	fmt.Fprintf(w, "%s_count %d\n", rs.name, cum)
}

// bucketMid is the representative value of a runtime bucket for the
// approximate sum: the midpoint, degrading to the finite edge when the
// other edge is infinite.
func bucketMid(lo, hi float64) float64 {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return (lo + hi) / 2
	}
}
