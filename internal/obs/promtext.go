package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed Prometheus text-exposition line: a metric name, its
// sorted rendered label set (`a="1",b="2"`, empty for none), and the value.
type Sample struct {
	// Name is the full sample name, suffixes included (e.g.
	// "tkcm_ack_seconds_bucket").
	Name string
	// Labels is the canonical label rendering, sorted by key.
	Labels string
	// LabelMap holds the individual label pairs.
	LabelMap map[string]string
	// Value is the sample value.
	Value float64
}

// Scrape is a parsed exposition: every sample in input order plus the HELP
// and TYPE declarations by family name.
type Scrape struct {
	// Samples holds every value line in input order.
	Samples []Sample
	// Help maps family name to its HELP text.
	Help map[string]string
	// Type maps family name to its TYPE ("counter", "gauge", "histogram", ...).
	Type map[string]string
}

// ParseProm parses a Prometheus text-format exposition (the subset the
// hand-rolled writers emit: no escaped label values beyond \" \\ \n, no
// timestamps). It exists so the conformance test and loadgen's latency
// attribution read the real wire format instead of private state.
func ParseProm(text string) (*Scrape, error) {
	s := &Scrape{Help: make(map[string]string), Type: make(map[string]string)}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			s.Help[name] = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: TYPE without a type: %q", ln+1, line)
			}
			s.Type[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comment
		}
		sm, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		s.Samples = append(s.Samples, sm)
	}
	return s, nil
}

// parseSample parses one `name{labels} value` line.
func parseSample(line string) (Sample, error) {
	var sm Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return sm, fmt.Errorf("no value: %q", line)
	} else {
		sm.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return sm, fmt.Errorf("unterminated label set: %q", line)
		}
		lm, err := parseLabels(rest[1:end])
		if err != nil {
			return sm, fmt.Errorf("%w in %q", err, line)
		}
		sm.LabelMap = lm
		sm.Labels = renderLabels(lm)
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return sm, fmt.Errorf("bad value in %q: %w", line, err)
	}
	sm.Value = v
	return sm, nil
}

// parseLabels parses `k="v",k2="v2"` (values may contain \" \\ \n escapes).
func parseLabels(body string) (map[string]string, error) {
	out := make(map[string]string)
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label pair near %q", body)
		}
		key := strings.TrimPrefix(strings.TrimSpace(body[:eq]), ",")
		key = strings.TrimSpace(key)
		rest := body[eq+2:]
		var b strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		out[key] = b.String()
		body = rest[i+1:]
	}
	return out, nil
}

// renderLabels renders a label map canonically: sorted keys, `k="v"` pairs
// joined by commas, escapes reapplied.
func renderLabels(lm map[string]string) string {
	if len(lm) == 0 {
		return ""
	}
	keys := make([]string, 0, len(lm))
	for k := range lm {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(lm[k])
		fmt.Fprintf(&b, "%s=%q", k, v)
	}
	return b.String()
}

// FamilyOf strips a histogram sample suffix (_bucket, _sum, _count) from a
// sample name, returning the family it belongs to and whether a suffix was
// stripped.
func FamilyOf(sampleName string) (family string, histogramPart bool) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(sampleName, suf) {
			return strings.TrimSuffix(sampleName, suf), true
		}
	}
	return sampleName, false
}

// StageQuantile computes the q-quantile in seconds of one histogram family
// from a scrape, aggregating every series of the family that matches the
// given label filter (nil = all). It returns NaN when the family is absent
// or empty.
func (s *Scrape) StageQuantile(family string, q float64, match map[string]string) float64 {
	type bucket struct {
		le  float64
		cum uint64
	}
	byLE := make(map[float64]uint64)
	for _, sm := range s.Samples {
		if sm.Name != family+"_bucket" {
			continue
		}
		ok := true
		for k, v := range match {
			if sm.LabelMap[k] != v {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		le, err := parseLE(sm.LabelMap["le"])
		if err != nil {
			continue
		}
		byLE[le] += uint64(sm.Value)
	}
	if len(byLE) == 0 {
		return math.NaN()
	}
	bs := make([]bucket, 0, len(byLE))
	for le, cum := range byLE {
		bs = append(bs, bucket{le, cum})
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	les := make([]float64, len(bs))
	cums := make([]uint64, len(bs))
	for i, b := range bs {
		les[i], cums[i] = b.le, b.cum
	}
	return Quantile(q, les, cums)
}

// parseLE parses an le label value ("+Inf" included).
func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}
