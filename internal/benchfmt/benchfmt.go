// Package benchfmt defines the machine-readable benchmark report format
// shared by cmd/tkcm-bench and cmd/tkcm-loadgen (schema
// "tkcm-bench/engine-v2"). Keeping one definition ensures every BENCH_*.json
// artifact in CI carries the same run metadata and parses the same way
// across tools and revisions.
package benchfmt

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// SchemaV2 identifies the current report schema.
const SchemaV2 = "tkcm-bench/engine-v2"

// Record is one measurement row, tagged with the experiment that produced
// it.
type Record struct {
	// Experiment names the producing experiment (e.g. "engine", "loadgen").
	Experiment string `json:"experiment"`
	// BatchSize is the ingest batch size the measurement ran at (0 or 1 =
	// unbatched row-at-a-time ingest).
	BatchSize int `json:"batch_size,omitempty"`
	// Row is the experiment-specific measurement payload.
	Row any `json:"row"`
}

// Report is the top-level -json document. The run metadata (Go version,
// GOOS/GOARCH, GOMAXPROCS, CPU count, VCS commit) makes BENCH_*.json
// trajectories comparable across machines and revisions.
type Report struct {
	// Schema is the document schema id (SchemaV2).
	Schema string `json:"schema"`
	// Scale is the experiment scale ("small", "paper", or a tool-specific
	// label).
	Scale string `json:"scale"`
	// Go is the toolchain version that built the producing binary.
	Go string `json:"go"`
	// GOOS/GOARCH locate the run's platform.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// NumCPU is the machine's logical CPU count.
	NumCPU int `json:"num_cpu"`
	// GOMAXPROCS is the scheduler width the run used.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Commit is the VCS revision (suffixed "+dirty"), or "unknown".
	Commit string `json:"commit"`
	// Timestamp is the report creation time, RFC 3339 UTC.
	Timestamp string `json:"timestamp"`
	// Rows holds the measurements.
	Rows []Record `json:"rows"`
}

// NewReport assembles a Report around rows, stamping schema, platform and
// VCS metadata.
func NewReport(scale string, rows []Record) Report {
	return Report{
		Schema:     SchemaV2,
		Scale:      scale,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Commit:     VCSCommit(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Rows:       rows,
	}
}

// WriteFile marshals the report (indented, trailing newline) to path.
func (r Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// VCSCommit reports the VCS revision stamped into the binary (suffixed
// "+dirty" for modified working trees), or "unknown" when built without
// VCS information (e.g. go run from a non-repo).
func VCSCommit() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}
