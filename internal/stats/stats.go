// Package stats provides the descriptive statistics and error measures used
// throughout the reproduction: means and variances that skip missing values,
// Pearson correlation (Sec. 5.1), RMSE/MAE (Sec. 7), and autocorrelation
// used by the dataset generators' self-checks.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, skipping NaNs. It returns NaN if
// no non-missing value exists.
func Mean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Variance returns the population variance of xs, skipping NaNs. It returns
// NaN if no non-missing value exists.
func Variance(xs []float64) float64 {
	m := Mean(xs)
	if math.IsNaN(m) {
		return math.NaN()
	}
	sum, n := 0.0, 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		d := x - m
		sum += d * d
		n++
	}
	return sum / float64(n)
}

// Std returns the population standard deviation of xs, skipping NaNs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest non-missing values. It returns
// (NaN, NaN) if every value is missing.
func MinMax(xs []float64) (lo, hi float64) {
	lo, hi = math.NaN(), math.NaN()
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if math.IsNaN(lo) || x < lo {
			lo = x
		}
		if math.IsNaN(hi) || x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Pearson returns the Pearson correlation coefficient ρ(s, r) over the pairs
// where both values are present (Sec. 5.1). It returns NaN when fewer than
// two complete pairs exist or either side has zero variance.
func Pearson(s, r []float64) float64 {
	n := len(s)
	if len(r) < n {
		n = len(r)
	}
	// First pass: means over complete pairs.
	var ms, mr float64
	cnt := 0
	for i := 0; i < n; i++ {
		if math.IsNaN(s[i]) || math.IsNaN(r[i]) {
			continue
		}
		ms += s[i]
		mr += r[i]
		cnt++
	}
	if cnt < 2 {
		return math.NaN()
	}
	ms /= float64(cnt)
	mr /= float64(cnt)
	var cov, vs, vr float64
	for i := 0; i < n; i++ {
		if math.IsNaN(s[i]) || math.IsNaN(r[i]) {
			continue
		}
		ds, dr := s[i]-ms, r[i]-mr
		cov += ds * dr
		vs += ds * ds
		vr += dr * dr
	}
	if vs == 0 || vr == 0 {
		return math.NaN()
	}
	return cov / (math.Sqrt(vs) * math.Sqrt(vr))
}

// RMSE returns the root mean square error between the truth and the estimate
// over positions where both are present. This is the paper's accuracy
// measure (Sec. 7). It returns NaN if no comparable position exists.
func RMSE(truth, est []float64) float64 {
	n := len(truth)
	if len(est) < n {
		n = len(est)
	}
	sum, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		if math.IsNaN(truth[i]) || math.IsNaN(est[i]) {
			continue
		}
		d := truth[i] - est[i]
		sum += d * d
		cnt++
	}
	if cnt == 0 {
		return math.NaN()
	}
	return math.Sqrt(sum / float64(cnt))
}

// SMAPE returns the symmetric mean absolute percentage error (in percent,
// 0–200) between truth and estimate over positions where both are present:
// mean of 200·|est−truth| / (|truth|+|est|). Positions where both values are
// exactly zero contribute 0 (the estimate is perfect there). It returns NaN
// if no comparable position exists. SMAPE complements RMSE in the accuracy
// gate: it is scale-free, so a regression on a low-amplitude dataset cannot
// hide behind a high-amplitude one.
func SMAPE(truth, est []float64) float64 {
	n := len(truth)
	if len(est) < n {
		n = len(est)
	}
	sum, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		if math.IsNaN(truth[i]) || math.IsNaN(est[i]) {
			continue
		}
		denom := math.Abs(truth[i]) + math.Abs(est[i])
		if denom > 0 {
			sum += 200 * math.Abs(est[i]-truth[i]) / denom
		}
		cnt++
	}
	if cnt == 0 {
		return math.NaN()
	}
	return sum / float64(cnt)
}

// MAE returns the mean absolute error between truth and estimate over
// positions where both are present, or NaN if none exists.
func MAE(truth, est []float64) float64 {
	n := len(truth)
	if len(est) < n {
		n = len(est)
	}
	sum, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		if math.IsNaN(truth[i]) || math.IsNaN(est[i]) {
			continue
		}
		sum += math.Abs(truth[i] - est[i])
		cnt++
	}
	if cnt == 0 {
		return math.NaN()
	}
	return sum / float64(cnt)
}

// Autocorrelation returns the lag-k autocorrelation of xs (NaNs skipped
// pairwise). It returns NaN for k >= len(xs).
func Autocorrelation(xs []float64, k int) float64 {
	if k < 0 || k >= len(xs) {
		return math.NaN()
	}
	return Pearson(xs[:len(xs)-k], xs[k:])
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the non-missing values
// using linear interpolation between order statistics. It returns NaN when
// no non-missing value exists.
func Quantile(xs []float64, q float64) float64 {
	var clean []float64
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sort.Float64s(clean)
	if len(clean) == 1 {
		return clean[0]
	}
	pos := q * float64(len(clean)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return clean[lo]
	}
	frac := pos - float64(lo)
	return clean[lo]*(1-frac) + clean[hi]*frac
}

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	Count   int
	Missing int
	Mean    float64
	Std     float64
	Min     float64
	Max     float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{Count: len(xs)}
	for _, x := range xs {
		if math.IsNaN(x) {
			s.Missing++
		}
	}
	s.Mean = Mean(xs)
	s.Std = Std(xs)
	s.Min, s.Max = MinMax(xs)
	return s
}
