package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMeanSkipsMissing(t *testing.T) {
	if got := Mean([]float64{1, math.NaN(), 3}); got != 2 {
		t.Fatalf("mean = %v, want 2", got)
	}
	if got := Mean([]float64{math.NaN()}); !math.IsNaN(got) {
		t.Fatalf("all-missing mean = %v, want NaN", got)
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Fatalf("empty mean = %v, want NaN", got)
	}
}

func TestVarianceAndStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("variance = %v, want 4", got)
	}
	if got := Std(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("std = %v, want 2", got)
	}
	if got := Variance([]float64{math.NaN()}); !math.IsNaN(got) {
		t.Fatal("all-missing variance must be NaN")
	}
	if got := Variance([]float64{5, math.NaN(), 5}); got != 0 {
		t.Fatalf("constant variance = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, math.NaN(), -1, 7})
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax = %v/%v", lo, hi)
	}
	lo, hi = MinMax([]float64{math.NaN()})
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatal("all-missing minmax must be NaN")
	}
}

// TestPearsonExamples56 reproduces the paper's Examples 5 and 6: a scaled
// and offset sine is perfectly linearly correlated (ρ = 1) while a
// 90°-shifted sine has ρ ≈ 0 (the paper reports −0.0085 over its sampling).
func TestPearsonExamples56(t *testing.T) {
	n := 841 // minutes 0..840 as in Figs. 4–5
	s := make([]float64, n)
	r1 := make([]float64, n)
	r2 := make([]float64, n)
	for i := 0; i < n; i++ {
		deg := float64(i)
		s[i] = math.Sin(deg * math.Pi / 180)
		r1[i] = 1.5*math.Sin(deg*math.Pi/180) + 1
		r2[i] = math.Sin((deg - 90) * math.Pi / 180)
	}
	if got := Pearson(s, r1); !almostEqual(got, 1, 1e-9) {
		t.Fatalf("ρ(s, r1) = %v, want 1", got)
	}
	// Over a non-integer number of periods the shifted correlation is not
	// exactly zero (the paper reports −0.0085 on its sampling); it must be
	// negligible compared to the |ρ| = 1 of the linear pair.
	if got := Pearson(s, r2); math.Abs(got) > 0.05 {
		t.Fatalf("ρ(s, r2) = %v, want ≈ 0", got)
	}
	if got := Pearson(s, negate(s)); !almostEqual(got, -1, 1e-9) {
		t.Fatalf("ρ(s, −s) = %v, want −1", got)
	}
}

func negate(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = -v
	}
	return out
}

func TestPearsonEdgeCases(t *testing.T) {
	if got := Pearson([]float64{1}, []float64{2}); !math.IsNaN(got) {
		t.Fatal("single pair must be NaN")
	}
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); !math.IsNaN(got) {
		t.Fatal("zero variance must be NaN")
	}
	// Missing pairs are skipped.
	got := Pearson([]float64{1, math.NaN(), 3}, []float64{2, 5, 6})
	if !almostEqual(got, 1, 1e-12) {
		t.Fatalf("pairwise-complete ρ = %v, want 1", got)
	}
}

// TestPearsonBounds: |ρ| ≤ 1 on random data.
func TestPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		state := uint64(seed) | 1
		next := func() float64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return float64(state%1000) / 100
		}
		a := make([]float64, 50)
		b := make([]float64, 50)
		for i := range a {
			a[i], b[i] = next(), next()
		}
		rho := Pearson(a, b)
		return math.IsNaN(rho) || (rho >= -1-1e-9 && rho <= 1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("identical RMSE = %v, want 0", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("RMSE = %v, want √12.5", got)
	}
	if got := RMSE([]float64{1, math.NaN()}, []float64{2, 5}); got != 1 {
		t.Fatalf("missing-skipping RMSE = %v, want 1", got)
	}
	if got := RMSE(nil, nil); !math.IsNaN(got) {
		t.Fatal("empty RMSE must be NaN")
	}
}

func TestMAE(t *testing.T) {
	if got := MAE([]float64{1, 2}, []float64{2, 0}); !almostEqual(got, 1.5, 1e-12) {
		t.Fatalf("MAE = %v, want 1.5", got)
	}
	if got := MAE([]float64{math.NaN()}, []float64{1}); !math.IsNaN(got) {
		t.Fatal("no comparable positions must be NaN")
	}
}

// TestRMSEDominatesMAE: RMSE ≥ MAE always.
func TestRMSEDominatesMAE(t *testing.T) {
	f := func(seed int64) bool {
		state := uint64(seed) | 1
		next := func() float64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return float64(state%200) - 100
		}
		a := make([]float64, 30)
		b := make([]float64, 30)
		for i := range a {
			a[i], b[i] = next(), next()
		}
		return RMSE(a, b) >= MAE(a, b)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	n := 400
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Sin(2 * math.Pi * float64(i) / 100)
	}
	if got := Autocorrelation(s, 100); !almostEqual(got, 1, 1e-6) {
		t.Fatalf("full-period autocorr = %v, want 1", got)
	}
	if got := Autocorrelation(s, 50); !almostEqual(got, -1, 1e-6) {
		t.Fatalf("half-period autocorr = %v, want −1", got)
	}
	if got := Autocorrelation(s, n); !math.IsNaN(got) {
		t.Fatal("lag ≥ length must be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v, want 4", got)
	}
	if got := Quantile(xs, 0.5); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("median = %v, want 2.5", got)
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Fatalf("single-element quantile = %v, want 7", got)
	}
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Fatal("empty quantile must be NaN")
	}
	if got := Quantile(xs, 1.5); !math.IsNaN(got) {
		t.Fatal("out-of-range q must be NaN")
	}
	if got := Quantile([]float64{math.NaN(), 5}, 0.5); got != 5 {
		t.Fatalf("NaN-skipping quantile = %v, want 5", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, math.NaN(), 3})
	if s.Count != 3 || s.Missing != 1 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("summary = %+v", s)
	}
}
