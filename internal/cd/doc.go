// Package cd implements the Centroid Decomposition recovery baseline
// (Khayati et al., ICDE 2014 / SSTD 2015): offline recovery of missing
// blocks in a matrix of time series by iterative matrix decomposition.
//
// The algorithm builds an n×m matrix (rows = ticks, columns = the
// incomplete series plus its reference series), initializes missing entries
// by linear interpolation, and then repeats until convergence:
//
//  1. compute the centroid decomposition X = Σ lᵢ rᵢᵀ,
//  2. truncate to the leading components (dropping the least significant
//     ones, which capture noise and — per the TKCM paper's critique — the
//     non-linear residue of shifted series),
//  3. replace the missing entries with the truncated reconstruction.
//
// CD assumes a linear correlation between the incomplete series and its
// references; on phase-shifted data its accuracy degrades, which is exactly
// the behaviour the TKCM evaluation (Sec. 7.3.3) demonstrates.
package cd
