package cd

import (
	"fmt"
	"math"

	"tkcm/internal/linalg"
)

// Config parameterizes the CD recovery. The TKCM paper notes CD "has no
// parameters to tune" (Sec. 7.1); the fields here fix the internals (rank
// truncation and iteration control) at the conventional values.
type Config struct {
	// Truncate is the number of leading centroid components kept in the
	// reconstruction; 0 selects the rank automatically: the smallest rank
	// whose components capture EnergyThreshold of the squared centroid
	// values (CDRec-style automatic rank detection). Keeping too many
	// components makes the reconstruction reproduce the initialization of
	// the missing entries exactly, so the truncation must be strict.
	Truncate int
	// EnergyThreshold is the captured-energy fraction for automatic rank
	// detection (default 0.95).
	EnergyThreshold float64
	// MaxIter bounds the decompose→reconstruct iterations.
	MaxIter int
	// Tol stops iterating once the Frobenius norm of the change of the
	// imputed entries falls below Tol.
	Tol float64
}

// DefaultConfig returns conventional CD recovery settings.
func DefaultConfig() Config {
	return Config{Truncate: 0, EnergyThreshold: 0.95, MaxIter: 100, Tol: 1e-5}
}

// Recover fills the missing entries (NaN) of data, a tick-major matrix
// (data[t][j] = value of series j at tick t), and returns the completed
// copy. The original matrix is not modified.
func Recover(cfg Config, data [][]float64) ([][]float64, error) {
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-5
	}
	n := len(data)
	if n == 0 {
		return nil, nil
	}
	m := len(data[0])
	for i, row := range data {
		if len(row) != m {
			return nil, fmt.Errorf("cd: ragged row %d: %d != %d", i, len(row), m)
		}
	}
	x := linalg.FromRows(data)
	type hole struct{ i, j int }
	var holes []hole
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if math.IsNaN(x.At(i, j)) {
				holes = append(holes, hole{i, j})
			}
		}
	}
	if len(holes) == 0 {
		return toRows(x), nil
	}
	// Initialize holes by per-column linear interpolation.
	for j := 0; j < m; j++ {
		col := x.Col(j)
		interpolateColumn(col)
		for i := 0; i < n; i++ {
			x.Set(i, j, col[i])
		}
	}
	keep := cfg.Truncate
	if keep <= 0 {
		keep = autoRank(x, cfg.EnergyThreshold)
	}
	if keep < 1 {
		keep = 1
	}
	if keep > m {
		keep = m
	}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		comps := linalg.CentroidDecomposition(x, keep)
		recon := linalg.ReconstructCentroid(comps, n, m)
		change := 0.0
		for _, h := range holes {
			nv := recon.At(h.i, h.j)
			d := nv - x.At(h.i, h.j)
			change += d * d
			x.Set(h.i, h.j, nv)
		}
		if math.Sqrt(change) < cfg.Tol {
			break
		}
	}
	return toRows(x), nil
}

// RecoverSeries is a convenience wrapper: it assembles the matrix from the
// target series and its references (columns: target first), recovers, and
// returns the completed target series.
func RecoverSeries(cfg Config, target []float64, refs [][]float64) ([]float64, error) {
	n := len(target)
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, 1+len(refs))
		row[0] = target[i]
		for j, r := range refs {
			if i < len(r) {
				row[j+1] = r[i]
			} else {
				row[j+1] = math.NaN()
			}
		}
		rows[i] = row
	}
	out, err := Recover(cfg, rows)
	if err != nil {
		return nil, err
	}
	rec := make([]float64, n)
	for i := 0; i < n; i++ {
		rec[i] = out[i][0]
	}
	return rec, nil
}

// autoRank picks the truncation rank: the smallest r whose leading centroid
// components capture `threshold` of the total squared centroid values of a
// full decomposition of the initialized matrix, capped at m−1 so at least
// one component is always dropped (otherwise the iteration cannot move the
// missing entries off their initialization).
func autoRank(x *linalg.Matrix, threshold float64) int {
	if threshold <= 0 || threshold >= 1 {
		threshold = 0.95
	}
	comps := linalg.CentroidDecomposition(x, 0)
	total := 0.0
	for _, c := range comps {
		total += c.Value * c.Value
	}
	if total == 0 {
		return 1
	}
	cum := 0.0
	r := 1
	for i, c := range comps {
		cum += c.Value * c.Value
		if cum/total >= threshold {
			r = i + 1
			break
		}
		r = i + 1
	}
	if max := x.Cols - 1; r > max && max >= 1 {
		r = max
	}
	return r
}

// interpolateColumn fills NaN runs in col by linear interpolation between
// the nearest present neighbours, extending flat at the edges. A column with
// no present value becomes all zeros.
func interpolateColumn(col []float64) {
	n := len(col)
	first := -1
	for i := 0; i < n; i++ {
		if !math.IsNaN(col[i]) {
			first = i
			break
		}
	}
	if first < 0 {
		for i := range col {
			col[i] = 0
		}
		return
	}
	for i := 0; i < first; i++ {
		col[i] = col[first]
	}
	last := first
	for i := first + 1; i < n; i++ {
		if math.IsNaN(col[i]) {
			continue
		}
		if i > last+1 {
			// Fill (last, i) linearly.
			span := float64(i - last)
			for k := last + 1; k < i; k++ {
				frac := float64(k-last) / span
				col[k] = col[last]*(1-frac) + col[i]*frac
			}
		}
		last = i
	}
	for i := last + 1; i < n; i++ {
		col[i] = col[last]
	}
}

func toRows(x *linalg.Matrix) [][]float64 {
	out := make([][]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		out[i] = append([]float64(nil), x.Row(i)...)
	}
	return out
}
