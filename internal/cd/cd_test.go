package cd

import (
	"math"
	"testing"

	"tkcm/internal/linalg"
	"tkcm/internal/stats"
)

// TestRecoversLinearlyCorrelatedBlock: on noiseless linearly correlated
// streams, CD recovery must be near-exact — the regime the decomposition is
// designed for (Khayati et al.).
func TestRecoversLinearlyCorrelatedBlock(t *testing.T) {
	const n = 2000
	data := make([][]float64, n)
	var truth []float64
	for i := 0; i < n; i++ {
		x := float64(i) * 2 * math.Pi / 288
		base := math.Sin(x) + 0.4*math.Sin(3*x+1)
		row := []float64{base, 1.5*base + 1, 0.8*base - 2, 2 * base}
		if i >= 1000 && i < 1288 {
			truth = append(truth, row[0])
			row[0] = math.NaN()
		}
		data[i] = row
	}
	out, err := Recover(DefaultConfig(), data)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]float64, 288)
	for i := range rec {
		rec[i] = out[1000+i][0]
	}
	if rmse := stats.RMSE(truth, rec); rmse > 1e-3 {
		t.Fatalf("RMSE = %v, want ≈ 0 on noiseless linear data", rmse)
	}
}

func TestRecoverNoHolesIsIdentity(t *testing.T) {
	data := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	out, err := Recover(DefaultConfig(), data)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range data {
		for j, v := range row {
			if out[i][j] != v {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, out[i][j], v)
			}
		}
	}
	// And the input must not be aliased.
	out[0][0] = 99
	if data[0][0] != 1 {
		t.Fatal("Recover must not alias its input")
	}
}

func TestRecoverRaggedRowsRejected(t *testing.T) {
	if _, err := Recover(DefaultConfig(), [][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestRecoverEmpty(t *testing.T) {
	out, err := Recover(DefaultConfig(), nil)
	if err != nil || out != nil {
		t.Fatalf("empty recover = %v, %v", out, err)
	}
}

func TestRecoverSeries(t *testing.T) {
	const n = 1200
	target := make([]float64, n)
	ref1 := make([]float64, n)
	ref2 := make([]float64, n)
	var truth []float64
	for i := 0; i < n; i++ {
		x := float64(i) * 2 * math.Pi / 144
		target[i] = 2 * math.Sin(x)
		ref1[i] = math.Sin(x) + 3
		ref2[i] = -math.Sin(x)
	}
	for i := 600; i < 744; i++ {
		truth = append(truth, target[i])
		target[i] = math.NaN()
	}
	rec, err := RecoverSeries(DefaultConfig(), target, [][]float64{ref1, ref2})
	if err != nil {
		t.Fatal(err)
	}
	if rmse := stats.RMSE(truth, rec[600:744]); rmse > 1e-3 {
		t.Fatalf("RecoverSeries RMSE = %v", rmse)
	}
	// The observed region must pass through unchanged.
	if rec[0] != 0 {
		t.Fatalf("observed tick altered: %v", rec[0])
	}
}

func TestInterpolateColumn(t *testing.T) {
	col := []float64{math.NaN(), 1, math.NaN(), math.NaN(), 4, math.NaN()}
	interpolateColumn(col)
	want := []float64{1, 1, 2, 3, 4, 4}
	for i, v := range want {
		if math.Abs(col[i]-v) > 1e-12 {
			t.Fatalf("col[%d] = %v, want %v (col = %v)", i, col[i], v, col)
		}
	}
	all := []float64{math.NaN(), math.NaN()}
	interpolateColumn(all)
	if all[0] != 0 || all[1] != 0 {
		t.Fatalf("all-missing column = %v, want zeros", all)
	}
}

func TestAutoRankDetectsLowRank(t *testing.T) {
	// Rank-1 data: automatic truncation must pick 1 component.
	const n = 300
	data := make([][]float64, n)
	for i := 0; i < n; i++ {
		h := math.Sin(float64(i) / 9)
		data[i] = []float64{h, 2 * h, -h, 0.5 * h}
	}
	x := linalg.FromRows(data)
	if r := autoRank(x, 0.95); r != 1 {
		t.Fatalf("autoRank = %d, want 1 for rank-one data", r)
	}
	// Degenerate thresholds fall back to the default.
	if r := autoRank(x, 0); r != 1 {
		t.Fatalf("autoRank with bad threshold = %d, want 1", r)
	}
}

func TestAutoRankCapsAtColsMinusOne(t *testing.T) {
	// Full-rank random-ish data: the cap must leave at least one component
	// dropped.
	const n = 50
	state := uint64(5)
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%2000)/100 - 10
	}
	data := make([][]float64, n)
	for i := range data {
		data[i] = []float64{next(), next(), next()}
	}
	x := linalg.FromRows(data)
	if r := autoRank(x, 0.9999); r > 2 {
		t.Fatalf("autoRank = %d, must be ≤ cols−1 = 2", r)
	}
}
