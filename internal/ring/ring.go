// Package ring implements the fixed-capacity ring buffer that backs the
// paper's streaming window (Sec. 6.2): one buffer of length L per time
// series, with an offset O such that the value at the current time tn sits
// at buf[O] and the oldest value at buf[(O+1)%L]. Advancing the stream is
// O(1) (Lemma 6.1).
package ring

import (
	"fmt"
	"math"
)

// Buffer is a fixed-capacity circular buffer of float64 measurements.
// It mirrors the paper's layout: after Fill/Push operations the newest
// value is at logical index L-1 and the oldest at logical index 0.
//
// The zero value is unusable; construct with New.
type Buffer struct {
	data []float64
	// off is the physical index of the newest element (the paper's O).
	off int
	// n is the number of valid elements, at most len(data). The buffer
	// reports logical length n until it first wraps, after which n == L.
	n int
}

// New returns a buffer with capacity capacity. It panics if capacity <= 0.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("ring: capacity must be positive, got %d", capacity))
	}
	return &Buffer{data: make([]float64, capacity), off: capacity - 1}
}

// FromSlice returns a full buffer holding the given values with values[len-1]
// as the newest element. The slice is copied.
func FromSlice(values []float64) *Buffer {
	b := New(len(values))
	for _, v := range values {
		b.Push(v)
	}
	return b
}

// Cap returns the fixed capacity L.
func (b *Buffer) Cap() int { return len(b.data) }

// Len returns the number of values pushed so far, capped at the capacity.
func (b *Buffer) Len() int { return b.n }

// Full reports whether the buffer holds Cap() values.
func (b *Buffer) Full() bool { return b.n == len(b.data) }

// Push appends v as the newest value, evicting the oldest when full.
// This is the paper's O(1) window advance.
func (b *Buffer) Push(v float64) {
	b.off = (b.off + 1) % len(b.data)
	b.data[b.off] = v
	if b.n < len(b.data) {
		b.n++
	}
}

// PushBulk appends values oldest-to-newest, exactly as pushing them one by
// one but with at most two contiguous copies instead of per-element modulo
// arithmetic. This is the columnar ingest substrate: a run of complete ticks
// lands in each stream's ring as one memmove.
func (b *Buffer) PushBulk(values []float64) {
	L := len(b.data)
	n := len(values)
	if n == 0 {
		return
	}
	if n >= L {
		// Only the newest L values survive; lay them out contiguously with
		// the newest at the end of the backing array.
		copy(b.data, values[n-L:])
		b.off = L - 1
		b.n = L
		return
	}
	start := (b.off + 1) % L
	c := copy(b.data[start:], values)
	copy(b.data, values[c:])
	b.off = (b.off + n) % L
	if b.n += n; b.n > L {
		b.n = L
	}
}

// At returns the value at logical index i, where index Len()-1 is the newest
// value and index 0 the oldest. It panics if i is out of range.
func (b *Buffer) At(i int) float64 {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("ring: index %d out of range [0,%d)", i, b.n))
	}
	return b.data[b.physical(i)]
}

// Set overwrites the value at logical index i. The paper's Algorithm 1
// stores the imputed value back into the buffer this way (s[O] ← ...).
func (b *Buffer) Set(i int, v float64) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("ring: index %d out of range [0,%d)", i, b.n))
	}
	b.data[b.physical(i)] = v
}

// Newest returns the value at the current time tn (logical index Len()-1).
func (b *Buffer) Newest() float64 {
	if b.n == 0 {
		panic("ring: Newest on empty buffer")
	}
	return b.data[b.off]
}

// SetNewest overwrites the value at the current time tn.
func (b *Buffer) SetNewest(v float64) {
	if b.n == 0 {
		panic("ring: SetNewest on empty buffer")
	}
	b.data[b.off] = v
}

// Oldest returns the oldest retained value.
func (b *Buffer) Oldest() float64 {
	if b.n == 0 {
		panic("ring: Oldest on empty buffer")
	}
	return b.data[b.physical(0)]
}

// physical maps a logical index (0 = oldest) to a position in data.
func (b *Buffer) physical(i int) int {
	L := len(b.data)
	// The newest element is at off and has logical index n-1.
	return ((b.off-(b.n-1)+i)%L + L) % L
}

// Views returns the retained contents as at most two contiguous segments of
// the underlying storage, oldest first: logically the window is the
// concatenation a ++ b, with b empty while the buffer has not wrapped. The
// segments alias the buffer — they are valid until the next Push and must not
// be written through. This is the zero-copy substrate for profile loops that
// want plain slices instead of per-element At calls (Lemma 6.1 keeps the
// advance O(1); Views keeps the scan O(L) with no copies).
func (b *Buffer) Views() (a, v []float64) {
	if b.n == 0 {
		return nil, nil
	}
	start := b.physical(0)
	if start+b.n <= len(b.data) {
		return b.data[start : start+b.n], nil
	}
	return b.data[start:], b.data[:b.n-(len(b.data)-start)]
}

// Snapshot copies the logical contents (oldest first) into dst, which must
// have length Len(); it returns dst. If dst is nil a new slice is allocated.
// The copy runs segment-wise (at most two copies) rather than per element.
func (b *Buffer) Snapshot(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, b.n)
	}
	if len(dst) != b.n {
		panic(fmt.Sprintf("ring: snapshot dst length %d != %d", len(dst), b.n))
	}
	a, v := b.Views()
	copy(dst, a)
	copy(dst[len(a):], v)
	return dst
}

// CountMissing returns how many retained values are NaN.
func (b *Buffer) CountMissing() int {
	m := 0
	for i := 0; i < b.n; i++ {
		if math.IsNaN(b.data[b.physical(i)]) {
			m++
		}
	}
	return m
}
