package ring

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d accepted", c)
				}
			}()
			New(c)
		}()
	}
}

func TestPushBeforeFull(t *testing.T) {
	b := New(4)
	if b.Len() != 0 || b.Full() {
		t.Fatal("fresh buffer must be empty")
	}
	b.Push(1)
	b.Push(2)
	if b.Len() != 2 || b.Full() {
		t.Fatalf("len = %d, full = %v", b.Len(), b.Full())
	}
	if b.At(0) != 1 || b.At(1) != 2 {
		t.Fatalf("contents = [%v %v]", b.At(0), b.At(1))
	}
	if b.Oldest() != 1 || b.Newest() != 2 {
		t.Fatal("oldest/newest wrong before wrap")
	}
}

func TestPushEvictsOldest(t *testing.T) {
	b := New(3)
	for i := 1; i <= 5; i++ {
		b.Push(float64(i))
	}
	if !b.Full() || b.Cap() != 3 {
		t.Fatal("buffer must be full at capacity 3")
	}
	want := []float64{3, 4, 5}
	if got := b.Snapshot(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	if b.Oldest() != 3 || b.Newest() != 5 {
		t.Fatalf("oldest/newest = %v/%v", b.Oldest(), b.Newest())
	}
}

func TestFromSlice(t *testing.T) {
	b := FromSlice([]float64{7, 8, 9})
	if b.Len() != 3 || b.At(0) != 7 || b.At(2) != 9 {
		t.Fatalf("FromSlice wrong: %v", b.Snapshot(nil))
	}
}

func TestSetAndSetNewest(t *testing.T) {
	b := FromSlice([]float64{1, 2, 3})
	b.Set(1, 20)
	if b.At(1) != 20 {
		t.Fatal("Set failed")
	}
	b.SetNewest(30)
	if b.Newest() != 30 || b.At(2) != 30 {
		t.Fatal("SetNewest failed")
	}
	// Behaviour after wrap: the logical indices stay consistent.
	b.Push(4)
	if b.At(0) != 20 || b.At(2) != 4 {
		t.Fatalf("post-wrap contents = %v", b.Snapshot(nil))
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	b := FromSlice([]float64{1, 2})
	for _, idx := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("index %d accepted", idx)
				}
			}()
			b.At(idx)
		}()
	}
}

func TestEmptyAccessorsPanic(t *testing.T) {
	b := New(2)
	for name, fn := range map[string]func(){
		"Newest":    func() { b.Newest() },
		"Oldest":    func() { b.Oldest() },
		"SetNewest": func() { b.SetNewest(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty buffer did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSnapshotReuse(t *testing.T) {
	b := FromSlice([]float64{1, 2, 3})
	dst := make([]float64, 3)
	got := b.Snapshot(dst)
	if &got[0] != &dst[0] {
		t.Fatal("snapshot must reuse dst")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong-length dst accepted")
			}
		}()
		b.Snapshot(make([]float64, 2))
	}()
}

// TestViewsMatchLogicalOrder: the two zero-copy segments concatenate to the
// logical contents (oldest first) at every fill level and wrap position.
func TestViewsMatchLogicalOrder(t *testing.T) {
	const L = 5
	b := New(L)
	if a, v := b.Views(); a != nil || v != nil {
		t.Fatal("empty buffer must return nil views")
	}
	for i := 0; i < 3*L; i++ {
		b.Push(float64(i))
		a, v := b.Views()
		if len(a)+len(v) != b.Len() {
			t.Fatalf("push %d: views cover %d values, want %d", i, len(a)+len(v), b.Len())
		}
		joined := append(append([]float64(nil), a...), v...)
		for j, got := range joined {
			if want := b.At(j); got != want {
				t.Fatalf("push %d: views[%d] = %v, want %v", i, j, got, want)
			}
		}
	}
}

// TestViewsAlias: views alias the live storage — a SetNewest is visible
// through them without re-fetching.
func TestViewsAlias(t *testing.T) {
	b := FromSlice([]float64{1, 2, 3})
	a, v := b.Views()
	b.SetNewest(42)
	joined := append(append([]float64(nil), a...), v...)
	if joined[len(joined)-1] != 42 {
		t.Fatal("views must alias the buffer storage")
	}
}

func TestCountMissing(t *testing.T) {
	b := FromSlice([]float64{1, math.NaN(), 3, math.NaN()})
	if got := b.CountMissing(); got != 2 {
		t.Fatalf("missing = %d, want 2", got)
	}
}

// TestRingMatchesSliceModel drives a ring buffer and a plain-slice reference
// model with the same operations and compares their visible state — the key
// correctness property of the paper's O(1) window maintenance.
func TestRingMatchesSliceModel(t *testing.T) {
	f := func(ops []uint16, capRaw uint8) bool {
		capacity := int(capRaw)%8 + 1
		b := New(capacity)
		var model []float64
		for _, op := range ops {
			v := float64(op % 97)
			b.Push(v)
			model = append(model, v)
			if len(model) > capacity {
				model = model[1:]
			}
			if b.Len() != len(model) {
				return false
			}
			for i, want := range model {
				if b.At(i) != want {
					return false
				}
			}
			if len(model) > 0 && (b.Newest() != model[len(model)-1] || b.Oldest() != model[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
