package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tkcm/internal/shard"
	"tkcm/internal/wal"
)

// logBuffer is a concurrency-safe sink for the server's slog output; trace
// lines are emitted from per-stream writer goroutines.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (lb *logBuffer) Write(p []byte) (int, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.b.Write(p)
}

// traceLines parses the buffered JSON log and returns every "tick trace"
// record.
func (lb *logBuffer) traceLines(t *testing.T) []map[string]any {
	t.Helper()
	lb.mu.Lock()
	raw := lb.b.String()
	lb.mu.Unlock()
	var out []map[string]any
	for _, line := range strings.Split(raw, "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		if rec["msg"] == "tick trace" {
			out = append(out, rec)
		}
	}
	return out
}

// waitTraceLines polls until exactly want trace lines have been logged (the
// trace is written after the ack, so the client can observe the ack first).
func (lb *logBuffer) waitTraceLines(t *testing.T, want int) []map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := lb.traceLines(t)
		if len(got) > want {
			t.Fatalf("logged %d trace lines, want %d", len(got), want)
		}
		if len(got) == want {
			// Settle briefly to catch spurious extras.
			time.Sleep(20 * time.Millisecond)
			if again := lb.traceLines(t); len(again) != want {
				t.Fatalf("trace lines grew from %d to %d after settling", want, len(again))
			}
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d trace lines, want %d", len(got), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// dur reads a slog duration attribute (JSON-encoded as nanoseconds).
func dur(t *testing.T, rec map[string]any, key string) time.Duration {
	t.Helper()
	v, ok := rec[key].(float64)
	if !ok {
		t.Fatalf("trace line missing duration %q: %v", key, rec)
	}
	return time.Duration(int64(v))
}

// TestSlowTickTrace injects a sleeping fsync via the WAL fault seam so the
// group-commit window dominates a tick's end-to-end latency, and asserts
// the breach produces exactly one structured trace whose stage breakdown
// points at wal_commit.
func TestSlowTickTrace(t *testing.T) {
	var lb logBuffer
	var slowSync atomic.Bool
	walOpts := wal.Options{SyncInterval: time.Millisecond}.WithFailSync(func() error {
		if slowSync.Load() {
			time.Sleep(30 * time.Millisecond)
		}
		return nil
	})
	walMgr := wal.NewManager(t.TempDir(), walOpts)
	m := shard.New(shard.Options{Shards: 2, QueueLen: 16, WAL: walMgr})
	s := New(Options{
		Manager:           m,
		CheckpointDir:     t.TempDir(),
		WAL:               walMgr,
		Log:               slog.New(slog.NewJSONHandler(&lb, nil)),
		SlowTickThreshold: 5 * time.Millisecond,
	})
	ts := newHTTPServer(t, s)

	if resp := createTenant(t, ts.URL, "slowpoke", testTenantBody); resp.StatusCode != 201 {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	slowSync.Store(true) // only tick commits crawl; creation ran at full speed
	st := openTickStream(t, ts.URL, "slowpoke")
	if _, err := st.send(e2eRow(0, 0)); err != nil {
		t.Fatalf("tick: %v", err)
	}
	st.close()

	traces := lb.waitTraceLines(t, 1)
	rec := traces[0]
	if rec["reason"] != "slow" {
		t.Errorf("reason = %v, want slow", rec["reason"])
	}
	if rec["tenant"] != "slowpoke" {
		t.Errorf("tenant = %v", rec["tenant"])
	}
	if got := rec["batch"].(float64); got != 1 {
		t.Errorf("batch = %v, want 1", got)
	}
	walCommit := dur(t, rec, "wal_commit")
	if walCommit < 25*time.Millisecond {
		t.Errorf("wal_commit = %v, want ≥ 25ms (the injected stall)", walCommit)
	}
	for _, stage := range []string{"decode", "queue", "engine", "ack"} {
		if d := dur(t, rec, stage); d >= walCommit {
			t.Errorf("stage %s (%v) not dominated by wal_commit (%v)", stage, d, walCommit)
		}
	}
	if total := dur(t, rec, "total"); total < walCommit {
		t.Errorf("total %v < wal_commit %v", total, walCommit)
	}
}

// TestTraceSamplerDeterministic runs the same 9-tick workload twice against
// servers sharing a sampler seed: both must trace exactly 3 lines (1-in-3)
// and select the same sequence numbers.
func TestTraceSamplerDeterministic(t *testing.T) {
	run := func() []uint64 {
		var lb logBuffer
		m := shard.New(shard.Options{Shards: 2, QueueLen: 16})
		s := New(Options{
			Manager:          m,
			Log:              slog.New(slog.NewJSONHandler(&lb, nil)),
			TraceSampleEvery: 3,
			TraceSampleSeed:  7,
		})
		ts := newHTTPServer(t, s)
		if resp := createTenant(t, ts.URL, "sampled", testTenantBody); resp.StatusCode != 201 {
			t.Fatalf("create: %d", resp.StatusCode)
		}
		st := openTickStream(t, ts.URL, "sampled")
		for i := 0; i < 9; i++ {
			if _, err := st.send(e2eRow(i, 0)); err != nil {
				t.Fatalf("tick %d: %v", i, err)
			}
		}
		st.close()
		traces := lb.waitTraceLines(t, 3)
		var seqs []uint64
		for _, rec := range traces {
			if rec["reason"] != "sampled" {
				t.Errorf("reason = %v, want sampled", rec["reason"])
			}
			seqs = append(seqs, uint64(rec["seq"].(float64)))
		}
		return seqs
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("runs traced %d and %d lines, want 3 each", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed selected different ticks: %v vs %v", a, b)
		}
	}
}

// TestDegradedEndpointsConsistent latches a tenant's WAL fail-stop through
// the fault seam and requires /healthz, /metrics and /v1/debug/tenants to
// all answer 503 — with /metrics and the debug listing still carrying their
// full bodies for triage.
func TestDegradedEndpointsConsistent(t *testing.T) {
	var failSync atomic.Bool
	walOpts := wal.Options{SyncInterval: time.Millisecond}.WithFailSync(func() error {
		if failSync.Load() {
			return errors.New("injected fsync failure")
		}
		return nil
	})
	walMgr := wal.NewManager(t.TempDir(), walOpts)
	m := shard.New(shard.Options{Shards: 2, QueueLen: 16, WAL: walMgr})
	s := New(Options{Manager: m, CheckpointDir: t.TempDir(), WAL: walMgr, Log: quietLog()})
	ts := newHTTPServer(t, s)
	debug := httptest.NewServer(s.DebugHandler())
	t.Cleanup(debug.Close)

	if resp := createTenant(t, ts.URL, "doomed", testTenantBody); resp.StatusCode != 201 {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	// Healthy first: all three answer 200.
	for _, url := range []string{ts.URL + "/healthz", ts.URL + "/metrics", debug.URL + "/v1/debug/tenants"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s while healthy: %d", url, resp.StatusCode)
		}
	}

	failSync.Store(true)
	st := openTickStream(t, ts.URL, "doomed")
	if _, err := st.send(e2eRow(0, 0)); err == nil {
		t.Fatal("tick acked despite failed fsync")
	}
	st.close()

	for _, url := range []string{ts.URL + "/healthz", ts.URL + "/metrics", debug.URL + "/v1/debug/tenants"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s while degraded: %d, want 503", url, resp.StatusCode)
		}
		switch {
		case strings.HasSuffix(url, "/metrics"):
			if !strings.Contains(string(body), "tkcm_wal_failed_logs 1") {
				t.Errorf("degraded /metrics body lost its counters")
			}
		case strings.HasSuffix(url, "/v1/debug/tenants"):
			if !strings.Contains(string(body), `"doomed"`) {
				t.Errorf("degraded debug listing lost its tenants: %s", body)
			}
		}
	}
}

// TestPprofOnlyOnDebugListener pins the security posture: profiling and the
// tenant debug listing exist solely on the opt-in DebugHandler tree, never
// on the public Handler.
func TestPprofOnlyOnDebugListener(t *testing.T) {
	s, ts := newTestServer(t, "")
	debug := httptest.NewServer(s.DebugHandler())
	t.Cleanup(debug.Close)

	if resp := createTenant(t, ts.URL, "peek", testTenantBody); resp.StatusCode != 201 {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	st := openTickStream(t, ts.URL, "peek")
	for i := 0; i < 3; i++ {
		if _, err := st.send(e2eRow(i, 0)); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	st.close()

	for _, path := range []string{"/debug/pprof/", "/v1/debug/tenants"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("public handler serves %s (%d), must 404", path, resp.StatusCode)
		}
	}

	resp, err := http.Get(debug.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("debug pprof index: %d", resp.StatusCode)
	}

	// The tenant listing reflects the ticks just streamed; the last-ack
	// gauge is stored just after the ack line flushes, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(debug.URL + "/v1/debug/tenants")
		if err != nil {
			t.Fatal(err)
		}
		var listing struct {
			Tenants []debugTenant `json:"tenants"`
		}
		err = json.NewDecoder(resp.Body).Decode(&listing)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(listing.Tenants) == 1 {
			dt := listing.Tenants[0]
			if dt.ID != "peek" || dt.Ticks != 3 || dt.Seq != 3 {
				t.Fatalf("debug listing = %+v, want peek with 3 ticks", dt)
			}
			if dt.LastAckSeconds > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("debug listing never showed a last-ack latency: %+v", listing.Tenants)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
