package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tkcm/internal/core"
	"tkcm/internal/shard"
	"tkcm/internal/wal"
	"tkcm/internal/wire"
)

// Options configures a Server.
type Options struct {
	// Manager hosts the tenant engines. Required.
	Manager *shard.Manager
	// CheckpointDir, when non-empty, enables snapshot persistence:
	// restore-on-start, the periodic checkpoint loop, and the final
	// checkpoint during Shutdown.
	CheckpointDir string
	// CheckpointInterval is the period of the background checkpoint loop
	// (default 30s; ignored without CheckpointDir).
	CheckpointInterval time.Duration
	// WAL is the write-ahead-log manager shared with the shard manager
	// (shard.Options.WAL). When set, the server replays tenant logs on
	// restore, truncates them after each checkpoint, prunes logs of
	// unhosted tenants, and exposes WAL counters on /metrics. Requires
	// CheckpointDir: the log replays on top of checkpoints.
	WAL *wal.Manager
	// RebalanceInterval is the period of the load-aware rebalancer, which
	// samples per-shard tick rates and migrates at most one tenant off the
	// hottest shard per interval (0 = disabled). Start it with
	// StartRebalancer.
	RebalanceInterval time.Duration
	// FollowURL, when non-empty, starts the server as an asynchronous
	// follower of the primary at this base URL (e.g. "http://primary:8080"):
	// it pulls and verifies the primary's checkpoints and WAL segments
	// instead of serving writes, until Promote. Requires WAL (whose Key must
	// match the primary's) and CheckpointDir. Start pulling with
	// StartFollower.
	FollowURL string
	// FollowInterval is the follower's pull period (default 2s).
	FollowInterval time.Duration
	// Log receives request and checkpoint events (default slog.Default()).
	Log *slog.Logger
}

// Server is the HTTP face of the sharded imputation service. Create with
// New, mount Handler, and call Shutdown to drain and checkpoint.
type Server struct {
	m        *shard.Manager
	wal      *wal.Manager
	mux      *http.ServeMux
	routes   []string
	log      *slog.Logger
	dir      string
	interval time.Duration

	started time.Time

	// Checkpoint loop and shutdown lifecycle. draining tells long-lived
	// tick streams to terminate so the HTTP server can finish Shutdown
	// before the final checkpoint is taken.
	stopCk    chan struct{}
	stopOnce  sync.Once
	ckWG      sync.WaitGroup
	ckMu      sync.Mutex // serializes CheckpointAll (endpoint, ticker, shutdown)
	draining  chan struct{}
	drainOnce sync.Once
	shutOnce  sync.Once
	shutErr   error

	// Service-level counters surfaced on /metrics.
	requests       atomic.Uint64
	tickRows       atomic.Uint64
	checkpoints    atomic.Uint64
	checkpointErrs atomic.Uint64

	// Batched-ingest counters: rows that arrived on batched tick lines, and
	// a histogram of rows-per-batch (buckets batchSizeBuckets, then +Inf).
	batchedRows  atomic.Uint64
	batchCount   atomic.Uint64
	batchSum     atomic.Uint64
	batchBuckets [len(batchSizeBuckets) + 1]atomic.Uint64

	// Rebalancer state: the interval, the last imbalance sample
	// (float64 bits; see imbalanceValue), and the previous per-shard /
	// per-tenant tick counts, touched only by the rebalancer goroutine.
	rbInterval time.Duration
	imbalance  atomic.Uint64
	rbShards   []uint64
	rbTenants  map[string]uint64

	// Follower (replication) state, set when Options.FollowURL is non-empty.
	// replicas is touched only by the puller goroutine (and by Promote, after
	// the puller has been joined).
	follower       bool
	followURL      string
	followEvery    time.Duration
	replClient     *http.Client
	replicas       map[string]*wal.Replica
	stopFollow     chan struct{}
	stopFollowOnce sync.Once
	followWG       sync.WaitGroup
	promoteMu      sync.Mutex
	promoted       atomic.Bool

	// Replication counters surfaced on /metrics. lastManifestNano is the
	// generated-at stamp of the last manifest fully applied (the lag gauge's
	// anchor).
	replRounds       atomic.Uint64
	replErrors       atomic.Uint64
	replSegmentsCtr  atomic.Uint64
	replBytesCtr     atomic.Uint64
	lastManifestNano atomic.Int64

	// Checkpoint digest cache for replication manifests (primary side) and
	// local change detection (follower side), keyed by checkpoint file name.
	ckHashMu sync.Mutex
	ckHashes map[string]ckHashEntry
}

// batchSizeBuckets are the upper bounds of the rows-per-batch histogram on
// /metrics (a final +Inf bucket follows implicitly).
var batchSizeBuckets = [...]uint64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// observeBatch records one batched tick line of n rows.
func (s *Server) observeBatch(n int) {
	s.batchedRows.Add(uint64(n))
	s.batchCount.Add(1)
	s.batchSum.Add(uint64(n))
	for i, le := range batchSizeBuckets {
		if uint64(n) <= le {
			s.batchBuckets[i].Add(1)
			return
		}
	}
	s.batchBuckets[len(batchSizeBuckets)].Add(1)
}

// tenantIDPattern bounds tenant ids to names that are safe as path segments
// and checkpoint file names.
var tenantIDPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// New builds a server over opts.Manager. Call StartCheckpointLoop (or let
// cmd/tkcm-serve do it) to begin periodic persistence.
func New(opts Options) *Server {
	if opts.Manager == nil {
		panic("server: Options.Manager is required")
	}
	log := opts.Log
	if log == nil {
		log = slog.Default()
	}
	interval := opts.CheckpointInterval
	if interval <= 0 {
		interval = 30 * time.Second
	}
	followEvery := opts.FollowInterval
	if followEvery <= 0 {
		followEvery = 2 * time.Second
	}
	s := &Server{
		m:           opts.Manager,
		wal:         opts.WAL,
		mux:         http.NewServeMux(),
		log:         log,
		dir:         opts.CheckpointDir,
		interval:    interval,
		rbInterval:  opts.RebalanceInterval,
		started:     time.Now(),
		stopCk:      make(chan struct{}),
		draining:    make(chan struct{}),
		follower:    opts.FollowURL != "",
		followURL:   strings.TrimRight(opts.FollowURL, "/"),
		followEvery: followEvery,
		replClient:  &http.Client{Timeout: 60 * time.Second},
		replicas:    make(map[string]*wal.Replica),
		stopFollow:  make(chan struct{}),
		ckHashes:    make(map[string]ckHashEntry),
	}
	if s.wal != nil && s.dir == "" {
		panic("server: Options.WAL requires Options.CheckpointDir (the log replays on top of checkpoints)")
	}
	if s.follower && s.wal == nil {
		panic("server: Options.FollowURL requires Options.WAL (replication transports the write-ahead log)")
	}
	// handle registers a route on the mux AND in the route manifest that
	// Routes exposes; docs/API.md coverage is asserted against the manifest,
	// so an endpoint added here without documentation fails the build's
	// route-coverage test.
	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, h)
		s.routes = append(s.routes, pattern)
	}
	handle("GET /healthz", s.handleHealth)
	handle("GET /metrics", s.handleMetrics)
	handle("GET /v1/tenants", s.handleListTenants)
	handle("GET /v1/tenants/{id}", s.handleGetTenant)
	handle("POST /v1/tenants/{id}", s.handleCreateTenant)
	handle("DELETE /v1/tenants/{id}", s.handleDeleteTenant)
	handle("POST /v1/tenants/{id}/ticks", s.handleTicks)
	handle("GET /v1/tenants/{id}/snapshot", s.handleSnapshot)
	handle("POST /v1/tenants/{id}/migrate", s.handleMigrate)
	handle("POST /v1/checkpoint", s.handleCheckpoint)
	handle("GET /v1/cluster/routing", s.handleRouting)
	handle("GET /v1/replication/manifest", s.handleReplManifest)
	handle("GET /v1/replication/segment/{tenant}/{name}", s.handleReplSegment)
	handle("GET /v1/replication/checkpoint/{tenant}", s.handleReplCheckpoint)
	handle("POST /v1/promote", s.handlePromote)
	return s
}

// Routes returns every registered route pattern ("METHOD /path"), the
// ground truth the API documentation is tested against.
func (s *Server) Routes() []string {
	return append([]string(nil), s.routes...)
}

// Handler returns the HTTP handler tree. An unpromoted follower answers 503
// on everything but health, metrics and promotion — including the
// replication endpoints, which would otherwise advertise its (empty) set of
// open logs as truth to a chained follower.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if s.follower && !s.promoted.Load() && !s.followerAllowed(r.URL.Path) {
			writeJSON(w, http.StatusServiceUnavailable, apiError{
				Error: fmt.Sprintf("this server is an unpromoted follower of %s; promote it (POST /v1/promote) or address the primary", s.followURL),
				Retry: true,
			})
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// apiError is the uniform JSON error body. Retry marks mid-stream errors a
// sequenced client should answer by reconnecting and replaying from its
// last acked row (drain, durability hiccup) rather than giving up.
type apiError struct {
	Error string `json:"error"`
	Retry bool   `json:"retry,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// statusFor maps manager errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, shard.ErrNoTenant):
		return http.StatusNotFound
	case errors.Is(err, shard.ErrTenantExists):
		return http.StatusConflict
	case errors.Is(err, shard.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, shard.ErrSeqGap):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// handleHealth reports liveness AND data-plane health. "ok" is 200;
// "follower" (unpromoted replica: correct config, not serving writes) and
// "degraded" (some tenant's WAL has fail-stopped: its appends are refused
// and nothing more is acknowledged for it) are 503, with enough body for an
// operator — or the client library — to see exactly what is wrong.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	tenants := int64(0)
	for _, st := range s.m.Stats() {
		tenants += st.Tenants
	}
	status, code := "ok", http.StatusOK
	body := map[string]any{
		"shards":         s.m.Shards(),
		"tenants":        tenants,
		"uptime_seconds": int(time.Since(s.started).Seconds()),
	}
	if s.follower && !s.promoted.Load() {
		status, code = "follower", http.StatusServiceUnavailable
		body["primary"] = s.followURL
		body["replication_lag_seconds"] = s.replLagSeconds()
	} else if s.wal != nil {
		if failed := s.wal.FailedTenants(); len(failed) > 0 {
			status, code = "degraded", http.StatusServiceUnavailable
			body["failed_wal_tenants"] = failed
		}
	}
	body["status"] = status
	writeJSON(w, code, body)
}

// replLagSeconds is time since the last fully-applied manifest was generated
// on the primary (time since start when no round has succeeded yet).
func (s *Server) replLagSeconds() float64 {
	if gen := s.lastManifestNano.Load(); gen > 0 {
		return time.Since(time.Unix(0, gen)).Seconds()
	}
	return time.Since(s.started).Seconds()
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	infos, err := s.m.Tenants(r.Context())
	if err != nil {
		writeError(w, statusFor(err), "listing tenants: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": infos})
}

func (s *Server) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, err := s.m.Info(r.Context(), id)
	if err != nil {
		writeError(w, statusFor(err), "tenant %q: %v", id, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// apiConfig is the JSON shape of a tenant's TKCM configuration. Zero fields
// keep the paper's calibrated defaults (core.DefaultConfig).
type apiConfig struct {
	K               int    `json:"k"`
	PatternLength   int    `json:"pattern_length"`
	D               int    `json:"d"`
	WindowLength    int    `json:"window_length"`
	Workers         int    `json:"workers"`
	Profiler        string `json:"profiler"`
	WeightedMean    bool   `json:"weighted_mean"`
	SkipDiagnostics bool   `json:"skip_diagnostics"`
	Float32Profiles bool   `json:"float32_profiles"`
}

// toCore overlays the request config onto the defaults.
func (a *apiConfig) toCore() (core.Config, error) {
	cfg := core.DefaultConfig()
	if a == nil {
		return cfg, nil
	}
	if a.K > 0 {
		cfg.K = a.K
	}
	if a.PatternLength > 0 {
		cfg.PatternLength = a.PatternLength
	}
	if a.D > 0 {
		cfg.D = a.D
	}
	if a.WindowLength > 0 {
		cfg.WindowLength = a.WindowLength
	}
	if a.Workers > 0 {
		cfg.Workers = a.Workers
	}
	if a.Profiler != "" {
		k, err := core.ParseProfilerKind(a.Profiler)
		if err != nil {
			return cfg, err
		}
		cfg.Profiler = k
	}
	cfg.WeightedMean = a.WeightedMean
	cfg.SkipDiagnostics = a.SkipDiagnostics
	cfg.Float32Profiles = a.Float32Profiles
	return cfg, nil
}

type createRequest struct {
	Streams []string            `json:"streams"`
	Config  *apiConfig          `json:"config"`
	Refs    map[string][]string `json:"refs"`
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !tenantIDPattern.MatchString(id) {
		writeError(w, http.StatusBadRequest, "invalid tenant id %q (want %s)", id, tenantIDPattern)
		return
	}
	var req createRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Streams) == 0 {
		writeError(w, http.StatusBadRequest, "streams must be non-empty")
		return
	}
	cfg, err := req.Config.toCore()
	if err != nil {
		writeError(w, http.StatusBadRequest, "config: %v", err)
		return
	}
	var refs map[string]core.ReferenceSet
	if len(req.Refs) > 0 {
		refs = make(map[string]core.ReferenceSet, len(req.Refs))
		for stream, cands := range req.Refs {
			refs[stream] = core.ReferenceSet{Stream: stream, Candidates: cands}
		}
	}
	// Once we commit to creating the tenant, finish the job even if the
	// client hangs up: a canceled request context aborting halfway (tenant
	// hosted, base checkpoint missing, rollback also canceled) would leave
	// a WAL with no image to replay onto — acked ticks unrestorable.
	ctx := context.WithoutCancel(r.Context())
	// ckMu spans the engine create (which opens the tenant's WAL directory)
	// and the base-image write, mirroring the delete path: a concurrent
	// CheckpointAll then either runs wholly before (its stale tenant
	// listing cannot see a WAL directory that does not exist yet, so its
	// prune cannot remove it) or wholly after (the tenant and its base
	// checkpoint are both visible).
	s.ckMu.Lock()
	err = s.m.Create(ctx, id, cfg, req.Streams, refs)
	if err == nil && s.wal != nil {
		// With a WAL, every acked tick must be recoverable — which needs a
		// base image (config + streams) the log can replay onto. If it
		// cannot be written the creation is rolled back rather than hosting
		// a tenant whose acks would be empty promises.
		ckErr := os.MkdirAll(s.dir, 0o755)
		if ckErr == nil {
			ckErr = s.checkpointTenant(ctx, id)
		}
		if ckErr != nil {
			s.log.Error("base checkpoint of new tenant failed; rolling back", "tenant", id, "err", ckErr)
			if derr := s.deleteTenantLocked(ctx, id); derr != nil {
				s.log.Error("rolling back tenant create", "tenant", id, "err", derr)
			}
			s.ckMu.Unlock()
			writeError(w, http.StatusInternalServerError, "creating tenant %q: writing base checkpoint: %v", id, ckErr)
			return
		}
	}
	s.ckMu.Unlock()
	if err != nil {
		writeError(w, statusFor(err), "creating tenant %q: %v", id, err)
		return
	}
	s.log.Info("tenant created", "tenant", id, "streams", len(req.Streams), "window", cfg.WindowLength)
	writeJSON(w, http.StatusCreated, map[string]any{"tenant": id, "streams": req.Streams})
}

// deleteTenantLocked removes the tenant's engine, WAL, and checkpoint file.
// Callers must hold ckMu.
func (s *Server) deleteTenantLocked(ctx context.Context, id string) error {
	if err := s.m.Delete(ctx, id); err != nil {
		return err
	}
	return s.removeCheckpoint(id)
}

func (s *Server) handleDeleteTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// ckMu spans both the engine delete and the file removal so a concurrent
	// CheckpointAll cannot interleave: it either runs wholly before (its file
	// is removed below) or wholly after (the tenant is gone from its listing,
	// so it writes nothing and prunes leftovers). Without the lock, a rename
	// of an already-captured snapshot could re-create the file after the
	// delete was acknowledged.
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	if err := s.m.Delete(r.Context(), id); err != nil {
		writeError(w, statusFor(err), "deleting tenant %q: %v", id, err)
		return
	}
	// Deleting only the engine would not be durable: the tenant's checkpoint
	// file would re-host it — with all its data — on the next restart.
	if err := s.removeCheckpoint(id); err != nil {
		s.log.Error("removing checkpoint of deleted tenant", "tenant", id, "err", err)
		writeError(w, http.StatusInternalServerError,
			"tenant %q deleted, but removing its checkpoint failed (it would resurrect on restart): %v", id, err)
		return
	}
	s.log.Info("tenant deleted", "tenant", id)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

// tickIn is one NDJSON input line: values with null marking missing, plus
// an optional client sequence number for exactly-once replay (0/absent =
// unsequenced). A BATCH line instead carries rows — consecutive ticks
// applied in one shard operation and one WAL record; seq then numbers the
// first row, and the server acks each row with its own output line, so the
// response stream is identical to sending the rows one per line.
type tickIn struct {
	Seq    uint64       `json:"seq"`
	Values []*float64   `json:"values"`
	Rows   [][]*float64 `json:"rows"`
}

// tickOut is one NDJSON output line: the completed row. A Duplicate ack
// carries no values — the row was already applied and durable.
type tickOut struct {
	Tick      int       `json:"tick"`
	Seq       uint64    `json:"seq"`
	Values    []float64 `json:"values"`
	Imputed   []int     `json:"imputed"`
	Duplicate bool      `json:"duplicate,omitempty"`
}

// maxTickLine bounds one NDJSON input line (1 MiB ≈ a few tens of thousands
// of streams per row), so a hostile line cannot force unbounded allocation
// before the engine's width check runs.
const maxTickLine = 1 << 20

// tickInFlight bounds the acks pending durability per connection. It is the
// window over which one fsync amortizes; past it the reader blocks, which
// is the connection-level backpressure.
const tickInFlight = 256

// ackMsg is one unit of the tick stream's reader→writer pipeline: either an
// ack awaiting its durability commit, or a terminal error.
type ackMsg struct {
	out     tickOut
	commit  wal.Commit
	errText string // terminal NDJSON error when non-empty
	status  int    // HTTP status for the error if nothing streamed yet
	retry   bool   // the client should reconnect and replay
}

func (s *Server) handleTicks(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// The stream interleaves reads of the request body with writes of the
	// response; without full duplex the HTTP/1 server would first drain the
	// (still-open) request body before the first write and deadlock against
	// a lock-step client.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		writeError(w, http.StatusInternalServerError, "full-duplex streaming unsupported: %v", err)
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxTickLine)
	w.Header().Set("Content-Type", "application/x-ndjson")

	// The handler splits into a reader (decode → apply → enqueue) and a
	// writer (wait durable → encode ack), joined by a bounded channel.
	// While row i's group commit is pending, rows i+1… keep flowing into
	// the engine and into the same commit window, so the WAL fsync
	// amortizes over the whole in-flight window instead of serializing the
	// connection at one fsync round-trip per row. Only the writer touches w
	// after the split, so status-code and line ordering stay coherent.
	acks := make(chan *ackMsg, tickInFlight)
	free := make(chan *ackMsg, tickInFlight)
	writerGone := make(chan struct{})
	go func() {
		defer close(writerGone)
		enc := json.NewEncoder(w)
		var lineBuf []byte
		streamed := false
		for msg := range acks {
			if msg.errText == "" {
				if err := msg.commit.Wait(); err != nil {
					// The row is applied in memory but not durable: never
					// ack it. The client replays it after reconnecting.
					msg.errText = fmt.Sprintf("tick %d not durable: %v", msg.out.Seq, err)
					msg.status = http.StatusInternalServerError
					msg.retry = true
				}
			}
			if msg.errText != "" {
				if !streamed {
					// Keep the retry marker even pre-stream: a durability
					// hiccup on the first row is as recoverable as on any
					// later one, and the client replays on it.
					writeJSON(w, msg.status, apiError{Error: msg.errText, Retry: msg.retry})
				} else {
					enc.Encode(apiError{Error: msg.errText, Retry: msg.retry})
					rc.Flush()
				}
				return
			}
			if !streamed {
				streamed = true
				w.WriteHeader(http.StatusOK)
			}
			// Hot path: append-encode the ack line; json.Encoder (reflection
			// plus a validity re-scan per line) costs a measurable share of a
			// streaming core. Non-finite values (unencodable in JSON) fall
			// back to the encoder for the identical error behavior.
			if out, ok := wire.AppendAck(lineBuf[:0], msg.out.Tick, msg.out.Seq,
				msg.out.Values, msg.out.Imputed, msg.out.Duplicate); ok {
				lineBuf = out
				if _, err := w.Write(lineBuf); err != nil {
					return // client gone
				}
			} else if err := enc.Encode(&msg.out); err != nil {
				return // client gone
			}
			// Flush when the pipeline is drained (a lock-step client gets
			// its ack immediately); while more acks queue behind, let them
			// coalesce into one write.
			if len(acks) == 0 {
				rc.Flush()
			}
			select {
			case free <- msg:
			default:
			}
		}
	}()

	// send hands msg to the writer, or reports that the writer is gone
	// (terminal error already written, or client disconnected).
	send := func(msg *ackMsg) bool {
		select {
		case acks <- msg:
			return true
		case <-writerGone:
			return false
		}
	}
	fail := func(status int, format string, args ...any) {
		// 503s (drain, shard manager closing) are the recoverable goodbyes:
		// the row was not applied and a reconnect + replay will succeed.
		send(&ackMsg{
			errText: fmt.Sprintf(format, args...),
			status:  status,
			retry:   status == http.StatusServiceUnavailable,
		})
	}

	var (
		rsp  shard.TickResponse
		brsp shard.BatchResponse
		in   wire.TickIn
	)
reading:
	for {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				fail(http.StatusBadRequest, "reading tick line: %v", err)
			}
			break
		}
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		// Hot path: the strict single-pass parser handles the plain shapes
		// the client emits, reusing in's scratch with zero allocations.
		// Anything unusual — escapes, unknown keys, malformed numbers —
		// falls back to encoding/json for identical semantics and errors.
		if !wire.ParseTickIn(line, &in) {
			var jin tickIn
			if err := json.Unmarshal(line, &jin); err != nil {
				fail(http.StatusBadRequest, "decoding tick line: %v", err)
				break
			}
			in.Seq = jin.Seq
			in.HasValues = jin.Values != nil
			in.Values = in.Values[:0]
			for _, v := range jin.Values {
				if v == nil {
					in.Values = append(in.Values, math.NaN())
				} else {
					in.Values = append(in.Values, *v)
				}
			}
			in.HasRows = jin.Rows != nil
			in.Rows = in.Rows[:0]
			for _, vals := range jin.Rows {
				var dst []float64
				if n := len(in.Rows); n < cap(in.Rows) {
					dst = in.Rows[:n+1][n][:0]
				}
				for _, v := range vals {
					if v == nil {
						dst = append(dst, math.NaN())
					} else {
						dst = append(dst, *v)
					}
				}
				in.Rows = append(in.Rows, dst)
			}
		}
		// A drain (graceful shutdown) terminates the stream before the next
		// row is applied, so every row acked below is covered by the final
		// checkpoint; the client replays from its last acked tick.
		select {
		case <-s.draining:
			fail(http.StatusServiceUnavailable, "server draining; replay from the last acked tick")
			break reading
		default:
		}
		if in.HasRows {
			// Batch line: one shard operation and one WAL record for the
			// lot, but still one ack line per row — the response stream is
			// the same whether the client batched or not.
			if in.HasValues {
				fail(http.StatusBadRequest, "tick line sets both values and rows")
				break
			}
			if err := s.m.TickBatch(r.Context(), id, in.Seq, in.Rows, &brsp); err != nil {
				fail(statusFor(err), "tick batch: %v", err)
				break
			}
			s.tickRows.Add(uint64(len(in.Rows)))
			s.observeBatch(len(in.Rows))
			for i := range brsp.Rows {
				res := &brsp.Rows[i]
				var msg *ackMsg
				select {
				case msg = <-free:
				default:
					msg = &ackMsg{}
				}
				msg.errText = ""
				msg.commit = brsp.Durable
				msg.out.Tick = res.Tick
				msg.out.Seq = res.Seq
				msg.out.Duplicate = res.Duplicate
				msg.out.Values = append(msg.out.Values[:0], res.Row...)
				msg.out.Imputed = append(msg.out.Imputed[:0], res.Imputed...)
				if !send(msg) {
					break reading
				}
			}
			continue
		}
		if err := s.m.Tick(r.Context(), id, in.Seq, in.Values, &rsp); err != nil {
			fail(statusFor(err), "tick: %v", err)
			break
		}
		s.tickRows.Add(1)
		var msg *ackMsg
		select {
		case msg = <-free:
		default:
			msg = &ackMsg{}
		}
		msg.errText = ""
		msg.commit = rsp.Durable
		msg.out.Tick = rsp.Tick
		msg.out.Seq = rsp.Seq
		msg.out.Duplicate = rsp.Duplicate
		msg.out.Values = append(msg.out.Values[:0], rsp.Row...)
		msg.out.Imputed = append(msg.out.Imputed[:0], rsp.Imputed...)
		if !send(msg) {
			break
		}
	}
	close(acks)
	<-writerGone
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Serialize to a local temp file on the shard goroutine, then stream the
	// file to the client from the handler goroutine. Writing straight into
	// the ResponseWriter would let one slow client stall the shard loop — and
	// every tenant on that shard — for as long as it pleases; buffering in
	// memory instead would let N concurrent downloads of a large tenant
	// (window bytes ≈ streams × L × 8) multiply the engine's footprint.
	// Local disk is the same cost the checkpoint path already pays.
	f, err := os.CreateTemp("", "tkcm-snap-*")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot of %q: %v", id, err)
		return
	}
	// Unlink the spool immediately (the open fd keeps it readable): the file
	// then cannot outlive the handler no matter how it exits — a client
	// disconnect mid-download, a panic, or the whole process being killed
	// mid-copy all reclaim the space, where a deferred Remove would leak it
	// on a hard kill.
	os.Remove(f.Name())
	defer f.Close()
	if _, err := s.m.Snapshot(r.Context(), id, f); err != nil {
		writeError(w, statusFor(err), "snapshot of %q: %v", id, err)
		return
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err == nil {
		_, err = f.Seek(0, io.SeekStart)
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot of %q: %v", id, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".tkcm"))
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	io.Copy(w, f)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.dir == "" {
		writeError(w, http.StatusPreconditionFailed, "no checkpoint directory configured")
		return
	}
	n, err := s.CheckpointAll(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"checkpointed": n})
}

// handleMetrics writes a Prometheus text exposition of the service, shard,
// and checkpoint counters (hand-rolled: the repo takes no dependencies).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	stats := s.m.Stats()
	var tenants int64
	var ticks, imputations, backpressure, processed uint64
	for _, st := range stats {
		tenants += st.Tenants
		ticks += st.Ticks
		imputations += st.Imputations
		backpressure += st.Backpressure
		processed += st.Processed
	}
	fmt.Fprintf(w, "# HELP tkcm_tenants Hosted tenant engines.\n# TYPE tkcm_tenants gauge\ntkcm_tenants %d\n", tenants)
	fmt.Fprintf(w, "# HELP tkcm_shards Engine shards.\n# TYPE tkcm_shards gauge\ntkcm_shards %d\n", len(stats))
	fmt.Fprintf(w, "# HELP tkcm_ticks_total Rows ingested across all tenants.\n# TYPE tkcm_ticks_total counter\ntkcm_ticks_total %d\n", ticks)
	fmt.Fprintf(w, "# HELP tkcm_imputations_total Missing values imputed.\n# TYPE tkcm_imputations_total counter\ntkcm_imputations_total %d\n", imputations)
	fmt.Fprintf(w, "# HELP tkcm_shard_requests_total Requests processed per shard.\n# TYPE tkcm_shard_requests_total counter\n")
	for _, st := range stats {
		fmt.Fprintf(w, "tkcm_shard_requests_total{shard=\"%d\"} %d\n", st.Shard, st.Processed)
	}
	fmt.Fprintf(w, "# HELP tkcm_shard_queue_depth Instantaneous queued requests per shard.\n# TYPE tkcm_shard_queue_depth gauge\n")
	for _, st := range stats {
		fmt.Fprintf(w, "tkcm_shard_queue_depth{shard=\"%d\"} %d\n", st.Shard, st.QueueDepth)
	}
	fmt.Fprintf(w, "# HELP tkcm_shard_backpressure_total Submissions that found a full shard queue.\n# TYPE tkcm_shard_backpressure_total counter\n")
	for _, st := range stats {
		fmt.Fprintf(w, "tkcm_shard_backpressure_total{shard=\"%d\"} %d\n", st.Shard, st.Backpressure)
	}
	fmt.Fprintf(w, "# HELP tkcm_shard_migrations_total Completed live tenant migrations.\n# TYPE tkcm_shard_migrations_total counter\ntkcm_shard_migrations_total %d\n", s.m.Migrations())
	fmt.Fprintf(w, "# HELP tkcm_shard_imbalance Hottest shard's tick rate over the mean, last rebalance sample (1 = balanced, 0 = no sample).\n# TYPE tkcm_shard_imbalance gauge\ntkcm_shard_imbalance %g\n", s.imbalanceValue())
	fmt.Fprintf(w, "# HELP tkcm_http_requests_total HTTP requests served.\n# TYPE tkcm_http_requests_total counter\ntkcm_http_requests_total %d\n", s.requests.Load())
	fmt.Fprintf(w, "# HELP tkcm_tick_rows_total NDJSON tick rows streamed.\n# TYPE tkcm_tick_rows_total counter\ntkcm_tick_rows_total %d\n", s.tickRows.Load())
	fmt.Fprintf(w, "# HELP tkcm_ticks_batched_total Tick rows that arrived on batched lines.\n# TYPE tkcm_ticks_batched_total counter\ntkcm_ticks_batched_total %d\n", s.batchedRows.Load())
	fmt.Fprintf(w, "# HELP tkcm_tick_batch_size Rows per batched tick line.\n# TYPE tkcm_tick_batch_size histogram\n")
	cum := uint64(0)
	for i, le := range batchSizeBuckets {
		cum += s.batchBuckets[i].Load()
		fmt.Fprintf(w, "tkcm_tick_batch_size_bucket{le=\"%d\"} %d\n", le, cum)
	}
	cum += s.batchBuckets[len(batchSizeBuckets)].Load()
	fmt.Fprintf(w, "tkcm_tick_batch_size_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "tkcm_tick_batch_size_sum %d\n", s.batchSum.Load())
	fmt.Fprintf(w, "tkcm_tick_batch_size_count %d\n", s.batchCount.Load())
	fmt.Fprintf(w, "# HELP tkcm_checkpoints_total Tenant snapshots written to disk.\n# TYPE tkcm_checkpoints_total counter\ntkcm_checkpoints_total %d\n", s.checkpoints.Load())
	fmt.Fprintf(w, "# HELP tkcm_checkpoint_errors_total Failed tenant snapshot writes.\n# TYPE tkcm_checkpoint_errors_total counter\ntkcm_checkpoint_errors_total %d\n", s.checkpointErrs.Load())
	if s.wal != nil {
		ws := s.wal.Stats()
		fmt.Fprintf(w, "# HELP tkcm_wal_appends_total Tick records appended to write-ahead logs.\n# TYPE tkcm_wal_appends_total counter\ntkcm_wal_appends_total %d\n", ws.Appends)
		fmt.Fprintf(w, "# HELP tkcm_wal_syncs_total WAL group commits (fsync batches) completed.\n# TYPE tkcm_wal_syncs_total counter\ntkcm_wal_syncs_total %d\n", ws.Syncs)
		fmt.Fprintf(w, "# HELP tkcm_wal_sync_errors_total WAL fsyncs that failed (their batch was never acked).\n# TYPE tkcm_wal_sync_errors_total counter\ntkcm_wal_sync_errors_total %d\n", ws.SyncErrors)
		fmt.Fprintf(w, "# HELP tkcm_wal_bytes_total WAL bytes written, framing included.\n# TYPE tkcm_wal_bytes_total counter\ntkcm_wal_bytes_total %d\n", ws.Bytes)
		fmt.Fprintf(w, "# HELP tkcm_wal_truncations_total WAL segment files reclaimed after checkpoints.\n# TYPE tkcm_wal_truncations_total counter\ntkcm_wal_truncations_total %d\n", ws.Truncations)
		fmt.Fprintf(w, "# HELP tkcm_wal_open_logs Tenants with an open write-ahead log.\n# TYPE tkcm_wal_open_logs gauge\ntkcm_wal_open_logs %d\n", ws.OpenLogs)
		fmt.Fprintf(w, "# HELP tkcm_wal_failed_logs Tenants whose write-ahead log has fail-stopped (appends refused, acks withheld).\n# TYPE tkcm_wal_failed_logs gauge\ntkcm_wal_failed_logs %d\n", len(s.wal.FailedTenants()))
	}
	if s.follower {
		fmt.Fprintf(w, "# HELP tkcm_repl_lag_seconds Age of the last fully-applied replication manifest.\n# TYPE tkcm_repl_lag_seconds gauge\ntkcm_repl_lag_seconds %g\n", s.replLagSeconds())
		fmt.Fprintf(w, "# HELP tkcm_repl_rounds_total Replication rounds completed.\n# TYPE tkcm_repl_rounds_total counter\ntkcm_repl_rounds_total %d\n", s.replRounds.Load())
		fmt.Fprintf(w, "# HELP tkcm_repl_errors_total Replication rounds or tenant syncs that failed.\n# TYPE tkcm_repl_errors_total counter\ntkcm_repl_errors_total %d\n", s.replErrors.Load())
		fmt.Fprintf(w, "# HELP tkcm_repl_segments_total Segment fetches applied (verified deltas).\n# TYPE tkcm_repl_segments_total counter\ntkcm_repl_segments_total %d\n", s.replSegmentsCtr.Load())
		fmt.Fprintf(w, "# HELP tkcm_repl_bytes_total WAL bytes fetched and verified from the primary.\n# TYPE tkcm_repl_bytes_total counter\ntkcm_repl_bytes_total %d\n", s.replBytesCtr.Load())
		promoted := 0
		if s.promoted.Load() {
			promoted = 1
		}
		fmt.Fprintf(w, "# HELP tkcm_repl_promoted Whether this follower has been promoted to primary.\n# TYPE tkcm_repl_promoted gauge\ntkcm_repl_promoted %d\n", promoted)
	}
}
