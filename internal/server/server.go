package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tkcm/internal/core"
	"tkcm/internal/obs"
	"tkcm/internal/shard"
	"tkcm/internal/wal"
	"tkcm/internal/wire"
)

// Options configures a Server.
type Options struct {
	// Manager hosts the tenant engines. Required.
	Manager *shard.Manager
	// CheckpointDir, when non-empty, enables snapshot persistence:
	// restore-on-start, the periodic checkpoint loop, and the final
	// checkpoint during Shutdown.
	CheckpointDir string
	// CheckpointInterval is the period of the background checkpoint loop
	// (default 30s; ignored without CheckpointDir).
	CheckpointInterval time.Duration
	// WAL is the write-ahead-log manager shared with the shard manager
	// (shard.Options.WAL). When set, the server replays tenant logs on
	// restore, truncates them after each checkpoint, prunes logs of
	// unhosted tenants, and exposes WAL counters on /metrics. Requires
	// CheckpointDir: the log replays on top of checkpoints.
	WAL *wal.Manager
	// RebalanceInterval is the period of the load-aware rebalancer, which
	// samples per-shard tick rates and migrates at most one tenant off the
	// hottest shard per interval (0 = disabled). Start it with
	// StartRebalancer.
	RebalanceInterval time.Duration
	// FollowURL, when non-empty, starts the server as an asynchronous
	// follower of the primary at this base URL (e.g. "http://primary:8080"):
	// it pulls and verifies the primary's checkpoints and WAL segments
	// instead of serving writes, until Promote. Requires WAL (whose Key must
	// match the primary's) and CheckpointDir. Start pulling with
	// StartFollower.
	FollowURL string
	// FollowInterval is the follower's pull period (default 2s).
	FollowInterval time.Duration
	// Log receives request and checkpoint events (default slog.Default()).
	Log *slog.Logger
	// SlowTickThreshold, when positive, logs one structured trace line (full
	// stage breakdown: decode, queue, engine, wal_commit, ack) for every tick
	// line whose end-to-end ack latency breaches it. Zero disables slow-tick
	// logging. The stage histograms are always on regardless.
	SlowTickThreshold time.Duration
	// TraceSampleEvery, when positive, additionally traces a deterministic
	// 1-in-N sample of all tick lines (N = this value), independent of the
	// threshold. Zero disables sampling.
	TraceSampleEvery int
	// TraceSampleSeed fixes the sampler's phase, making the selection
	// reproducible across runs with the same tick count.
	TraceSampleSeed uint64
}

// Server is the HTTP face of the sharded imputation service. Create with
// New, mount Handler, and call Shutdown to drain and checkpoint.
type Server struct {
	m        *shard.Manager
	wal      *wal.Manager
	mux      *http.ServeMux
	routes   []string
	log      *slog.Logger
	dir      string
	interval time.Duration

	started time.Time

	// Checkpoint loop and shutdown lifecycle. draining tells long-lived
	// tick streams to terminate so the HTTP server can finish Shutdown
	// before the final checkpoint is taken.
	stopCk    chan struct{}
	stopOnce  sync.Once
	ckWG      sync.WaitGroup
	ckMu      sync.Mutex // serializes CheckpointAll (endpoint, ticker, shutdown)
	draining  chan struct{}
	drainOnce sync.Once
	shutOnce  sync.Once
	shutErr   error

	// Service-level counters surfaced on /metrics.
	requests       atomic.Uint64
	tickRows       atomic.Uint64
	checkpoints    atomic.Uint64
	checkpointErrs atomic.Uint64

	// Batched-ingest counters: rows that arrived on batched tick lines, and
	// a histogram of rows-per-batch (buckets batchSizeBuckets, then +Inf).
	batchedRows  atomic.Uint64
	batchCount   atomic.Uint64
	batchSum     atomic.Uint64
	batchBuckets [len(batchSizeBuckets) + 1]atomic.Uint64

	// Rebalancer state: the interval, the last imbalance sample
	// (float64 bits; see imbalanceValue), and the previous per-shard /
	// per-tenant tick counts, touched only by the rebalancer goroutine.
	rbInterval time.Duration
	imbalance  atomic.Uint64
	rbShards   []uint64
	rbTenants  map[string]uint64

	// Follower (replication) state, set when Options.FollowURL is non-empty.
	// replicas is touched only by the puller goroutine (and by Promote, after
	// the puller has been joined).
	follower       bool
	followURL      string
	followEvery    time.Duration
	replClient     *http.Client
	replicas       map[string]*wal.Replica
	stopFollow     chan struct{}
	stopFollowOnce sync.Once
	followWG       sync.WaitGroup
	promoteMu      sync.Mutex
	promoted       atomic.Bool

	// Replication counters surfaced on /metrics. lastManifestNano is the
	// generated-at stamp of the last manifest fully applied (the lag gauge's
	// anchor).
	replRounds       atomic.Uint64
	replErrors       atomic.Uint64
	replSegmentsCtr  atomic.Uint64
	replBytesCtr     atomic.Uint64
	lastManifestNano atomic.Int64

	// Checkpoint digest cache for replication manifests (primary side) and
	// local change detection (follower side), keyed by checkpoint file name.
	ckHashMu sync.Mutex
	ckHashes map[string]ckHashEntry

	// Stage-latency instrumentation: one fixed set of zero-allocation
	// histograms per shard (allocated once in New; Observe is atomics only),
	// the Go runtime telemetry sampler, and the slow/sampled trace recorder.
	// lastAck maps tenant id → *atomic.Int64 end-to-end nanos of the
	// tenant's most recent ack (surfaced by /v1/debug/tenants).
	latency    []shardLatency
	rt         *obs.RuntimeCollector
	sampler    *obs.Sampler
	slowNanos  int64
	traceLines atomic.Uint64
	lastAck    sync.Map
}

// shardLatency is one shard's latency surface: a histogram per tick stage
// plus the end-to-end ack histogram, with the Prometheus label strings
// prerendered so the scrape path never rebuilds them.
type shardLatency struct {
	stages      [obs.NumStages]obs.Histogram
	ack         obs.Histogram
	stageLabels [obs.NumStages]string
	ackLabel    string
}

// batchSizeBuckets are the upper bounds of the rows-per-batch histogram on
// /metrics (a final +Inf bucket follows implicitly).
var batchSizeBuckets = [...]uint64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// observeBatch records one batched tick line of n rows.
func (s *Server) observeBatch(n int) {
	s.batchedRows.Add(uint64(n))
	s.batchCount.Add(1)
	s.batchSum.Add(uint64(n))
	for i, le := range batchSizeBuckets {
		if uint64(n) <= le {
			s.batchBuckets[i].Add(1)
			return
		}
	}
	s.batchBuckets[len(batchSizeBuckets)].Add(1)
}

// tenantIDPattern bounds tenant ids to names that are safe as path segments
// and checkpoint file names.
var tenantIDPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// New builds a server over opts.Manager. Call StartCheckpointLoop (or let
// cmd/tkcm-serve do it) to begin periodic persistence.
func New(opts Options) *Server {
	if opts.Manager == nil {
		panic("server: Options.Manager is required")
	}
	log := opts.Log
	if log == nil {
		log = slog.Default()
	}
	interval := opts.CheckpointInterval
	if interval <= 0 {
		interval = 30 * time.Second
	}
	followEvery := opts.FollowInterval
	if followEvery <= 0 {
		followEvery = 2 * time.Second
	}
	s := &Server{
		m:           opts.Manager,
		wal:         opts.WAL,
		mux:         http.NewServeMux(),
		log:         log,
		dir:         opts.CheckpointDir,
		interval:    interval,
		rbInterval:  opts.RebalanceInterval,
		started:     time.Now(),
		stopCk:      make(chan struct{}),
		draining:    make(chan struct{}),
		follower:    opts.FollowURL != "",
		followURL:   strings.TrimRight(opts.FollowURL, "/"),
		followEvery: followEvery,
		replClient:  &http.Client{Timeout: 60 * time.Second},
		replicas:    make(map[string]*wal.Replica),
		stopFollow:  make(chan struct{}),
		ckHashes:    make(map[string]ckHashEntry),
		rt:          obs.NewRuntimeCollector(),
		slowNanos:   opts.SlowTickThreshold.Nanoseconds(),
	}
	if opts.TraceSampleEvery > 0 {
		s.sampler = obs.NewSampler(opts.TraceSampleEvery, opts.TraceSampleSeed)
	}
	s.latency = make([]shardLatency, opts.Manager.Shards())
	for i := range s.latency {
		sl := &s.latency[i]
		for st := 0; st < obs.NumStages; st++ {
			sl.stageLabels[st] = fmt.Sprintf("stage=%q,shard=\"%d\"", obs.Stage(st).String(), i)
		}
		sl.ackLabel = fmt.Sprintf("shard=\"%d\"", i)
	}
	if s.wal != nil && s.dir == "" {
		panic("server: Options.WAL requires Options.CheckpointDir (the log replays on top of checkpoints)")
	}
	if s.follower && s.wal == nil {
		panic("server: Options.FollowURL requires Options.WAL (replication transports the write-ahead log)")
	}
	// handle registers a route on the mux AND in the route manifest that
	// Routes exposes; docs/API.md coverage is asserted against the manifest,
	// so an endpoint added here without documentation fails the build's
	// route-coverage test.
	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, h)
		s.routes = append(s.routes, pattern)
	}
	handle("GET /healthz", s.handleHealth)
	handle("GET /metrics", s.handleMetrics)
	handle("GET /v1/tenants", s.handleListTenants)
	handle("GET /v1/tenants/{id}", s.handleGetTenant)
	handle("POST /v1/tenants/{id}", s.handleCreateTenant)
	handle("DELETE /v1/tenants/{id}", s.handleDeleteTenant)
	handle("POST /v1/tenants/{id}/ticks", s.handleTicks)
	handle("GET /v1/tenants/{id}/snapshot", s.handleSnapshot)
	handle("POST /v1/tenants/{id}/migrate", s.handleMigrate)
	handle("POST /v1/checkpoint", s.handleCheckpoint)
	handle("GET /v1/cluster/routing", s.handleRouting)
	handle("GET /v1/replication/manifest", s.handleReplManifest)
	handle("GET /v1/replication/segment/{tenant}/{name}", s.handleReplSegment)
	handle("GET /v1/replication/checkpoint/{tenant}", s.handleReplCheckpoint)
	handle("POST /v1/promote", s.handlePromote)
	return s
}

// Routes returns every registered route pattern ("METHOD /path"), the
// ground truth the API documentation is tested against.
func (s *Server) Routes() []string {
	return append([]string(nil), s.routes...)
}

// Handler returns the HTTP handler tree. An unpromoted follower answers 503
// on everything but health, metrics and promotion — including the
// replication endpoints, which would otherwise advertise its (empty) set of
// open logs as truth to a chained follower.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if s.follower && !s.promoted.Load() && !s.followerAllowed(r.URL.Path) {
			writeJSON(w, http.StatusServiceUnavailable, apiError{
				Error: fmt.Sprintf("this server is an unpromoted follower of %s; promote it (POST /v1/promote) or address the primary", s.followURL),
				Retry: true,
			})
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// apiError is the uniform JSON error body. Retry marks mid-stream errors a
// sequenced client should answer by reconnecting and replaying from its
// last acked row (drain, durability hiccup) rather than giving up.
type apiError struct {
	Error string `json:"error"`
	Retry bool   `json:"retry,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// statusFor maps manager errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, shard.ErrNoTenant):
		return http.StatusNotFound
	case errors.Is(err, shard.ErrTenantExists):
		return http.StatusConflict
	case errors.Is(err, shard.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, shard.ErrSeqGap):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// handleHealth reports liveness AND data-plane health. "ok" is 200;
// "follower" (unpromoted replica: correct config, not serving writes) and
// "degraded" (some tenant's WAL has fail-stopped: its appends are refused
// and nothing more is acknowledged for it) are 503, with enough body for an
// operator — or the client library — to see exactly what is wrong.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	tenants := int64(0)
	for _, st := range s.m.Stats() {
		tenants += st.Tenants
	}
	status, code := "ok", http.StatusOK
	body := map[string]any{
		"shards":         s.m.Shards(),
		"tenants":        tenants,
		"uptime_seconds": int(time.Since(s.started).Seconds()),
	}
	if s.follower && !s.promoted.Load() {
		status, code = "follower", http.StatusServiceUnavailable
		body["primary"] = s.followURL
		body["replication_lag_seconds"] = s.replLagSeconds()
	} else if failed := s.failedWALTenants(); len(failed) > 0 {
		status, code = "degraded", http.StatusServiceUnavailable
		body["failed_wal_tenants"] = failed
	}
	body["status"] = status
	writeJSON(w, code, body)
}

// failedWALTenants lists the tenants latched fail-stopped, from either
// direction of the durability contract: a write-ahead log that can no longer
// accept appends (nothing more is acknowledged for the tenant), or a
// hydration that could not rebuild the engine a parked tenant was evicted
// with (acked ticks would be lost by serving the rewound engine). Non-empty
// means the data plane is degraded: /healthz, /metrics, and /v1/debug/tenants
// all answer 503 so every consumer — health checker, scraper, dashboard —
// sees the same world.
func (s *Server) failedWALTenants() []string {
	var failed []string
	if s.wal != nil {
		failed = s.wal.FailedTenants()
	}
	hyd := s.m.FailedTenants()
	if len(hyd) == 0 {
		return failed
	}
	seen := make(map[string]bool, len(failed))
	for _, id := range failed {
		seen[id] = true
	}
	for _, id := range hyd {
		if !seen[id] {
			failed = append(failed, id)
		}
	}
	sort.Strings(failed)
	return failed
}

// replLagSeconds is time since the last fully-applied manifest was generated
// on the primary (time since start when no round has succeeded yet).
func (s *Server) replLagSeconds() float64 {
	if gen := s.lastManifestNano.Load(); gen > 0 {
		return time.Since(time.Unix(0, gen)).Seconds()
	}
	return time.Since(s.started).Seconds()
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	infos, err := s.m.Tenants(r.Context())
	if err != nil {
		writeError(w, statusFor(err), "listing tenants: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": infos})
}

func (s *Server) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, err := s.m.Info(r.Context(), id)
	if err != nil {
		writeError(w, statusFor(err), "tenant %q: %v", id, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// apiConfig is the JSON shape of a tenant's TKCM configuration. Zero fields
// keep the paper's calibrated defaults (core.DefaultConfig).
type apiConfig struct {
	K               int    `json:"k"`
	PatternLength   int    `json:"pattern_length"`
	D               int    `json:"d"`
	WindowLength    int    `json:"window_length"`
	Workers         int    `json:"workers"`
	Profiler        string `json:"profiler"`
	WeightedMean    bool   `json:"weighted_mean"`
	SkipDiagnostics bool   `json:"skip_diagnostics"`
	Float32Profiles bool   `json:"float32_profiles"`
}

// toCore overlays the request config onto the defaults.
func (a *apiConfig) toCore() (core.Config, error) {
	cfg := core.DefaultConfig()
	if a == nil {
		return cfg, nil
	}
	if a.K > 0 {
		cfg.K = a.K
	}
	if a.PatternLength > 0 {
		cfg.PatternLength = a.PatternLength
	}
	if a.D > 0 {
		cfg.D = a.D
	}
	if a.WindowLength > 0 {
		cfg.WindowLength = a.WindowLength
	}
	if a.Workers > 0 {
		cfg.Workers = a.Workers
	}
	if a.Profiler != "" {
		k, err := core.ParseProfilerKind(a.Profiler)
		if err != nil {
			return cfg, err
		}
		cfg.Profiler = k
	}
	cfg.WeightedMean = a.WeightedMean
	cfg.SkipDiagnostics = a.SkipDiagnostics
	cfg.Float32Profiles = a.Float32Profiles
	return cfg, nil
}

type createRequest struct {
	Streams []string            `json:"streams"`
	Config  *apiConfig          `json:"config"`
	Refs    map[string][]string `json:"refs"`
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !tenantIDPattern.MatchString(id) {
		writeError(w, http.StatusBadRequest, "invalid tenant id %q (want %s)", id, tenantIDPattern)
		return
	}
	var req createRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.Streams) == 0 {
		writeError(w, http.StatusBadRequest, "streams must be non-empty")
		return
	}
	cfg, err := req.Config.toCore()
	if err != nil {
		writeError(w, http.StatusBadRequest, "config: %v", err)
		return
	}
	var refs map[string]core.ReferenceSet
	if len(req.Refs) > 0 {
		refs = make(map[string]core.ReferenceSet, len(req.Refs))
		for stream, cands := range req.Refs {
			refs[stream] = core.ReferenceSet{Stream: stream, Candidates: cands}
		}
	}
	// Once we commit to creating the tenant, finish the job even if the
	// client hangs up: a canceled request context aborting halfway (tenant
	// hosted, base checkpoint missing, rollback also canceled) would leave
	// a WAL with no image to replay onto — acked ticks unrestorable.
	ctx := context.WithoutCancel(r.Context())
	// ckMu spans the engine create (which opens the tenant's WAL directory)
	// and the base-image write, mirroring the delete path: a concurrent
	// CheckpointAll then either runs wholly before (its stale tenant
	// listing cannot see a WAL directory that does not exist yet, so its
	// prune cannot remove it) or wholly after (the tenant and its base
	// checkpoint are both visible).
	s.ckMu.Lock()
	err = s.m.Create(ctx, id, cfg, req.Streams, refs)
	if err == nil && s.wal != nil {
		// With a WAL, every acked tick must be recoverable — which needs a
		// base image (config + streams) the log can replay onto. If it
		// cannot be written the creation is rolled back rather than hosting
		// a tenant whose acks would be empty promises.
		ckErr := os.MkdirAll(s.dir, 0o755)
		if ckErr == nil {
			ckErr = s.checkpointTenant(ctx, id)
		}
		if ckErr != nil {
			s.log.Error("base checkpoint of new tenant failed; rolling back", "tenant", id, "err", ckErr)
			if derr := s.deleteTenantLocked(ctx, id); derr != nil {
				s.log.Error("rolling back tenant create", "tenant", id, "err", derr)
			}
			s.ckMu.Unlock()
			writeError(w, http.StatusInternalServerError, "creating tenant %q: writing base checkpoint: %v", id, ckErr)
			return
		}
	}
	s.ckMu.Unlock()
	if err != nil {
		writeError(w, statusFor(err), "creating tenant %q: %v", id, err)
		return
	}
	s.log.Info("tenant created", "tenant", id, "streams", len(req.Streams), "window", cfg.WindowLength)
	writeJSON(w, http.StatusCreated, map[string]any{"tenant": id, "streams": req.Streams})
}

// deleteTenantLocked removes the tenant's engine, WAL, and checkpoint file.
// Callers must hold ckMu.
func (s *Server) deleteTenantLocked(ctx context.Context, id string) error {
	if err := s.m.Delete(ctx, id); err != nil {
		return err
	}
	return s.removeCheckpoint(id)
}

func (s *Server) handleDeleteTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// ckMu spans both the engine delete and the file removal so a concurrent
	// CheckpointAll cannot interleave: it either runs wholly before (its file
	// is removed below) or wholly after (the tenant is gone from its listing,
	// so it writes nothing and prunes leftovers). Without the lock, a rename
	// of an already-captured snapshot could re-create the file after the
	// delete was acknowledged.
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	if err := s.m.Delete(r.Context(), id); err != nil {
		writeError(w, statusFor(err), "deleting tenant %q: %v", id, err)
		return
	}
	// Deleting only the engine would not be durable: the tenant's checkpoint
	// file would re-host it — with all its data — on the next restart.
	if err := s.removeCheckpoint(id); err != nil {
		s.log.Error("removing checkpoint of deleted tenant", "tenant", id, "err", err)
		writeError(w, http.StatusInternalServerError,
			"tenant %q deleted, but removing its checkpoint failed (it would resurrect on restart): %v", id, err)
		return
	}
	s.lastAck.Delete(id)
	s.log.Info("tenant deleted", "tenant", id)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

// tickIn is one NDJSON input line: values with null marking missing, plus
// an optional client sequence number for exactly-once replay (0/absent =
// unsequenced). A BATCH line instead carries rows — consecutive ticks
// applied in one shard operation and one WAL record; seq then numbers the
// first row, and the server acks each row with its own output line, so the
// response stream is identical to sending the rows one per line.
type tickIn struct {
	Seq    uint64       `json:"seq"`
	Values []*float64   `json:"values"`
	Rows   [][]*float64 `json:"rows"`
}

// tickOut is one NDJSON output line: the completed row. A Duplicate ack
// carries no values — the row was already applied and durable.
type tickOut struct {
	Tick      int       `json:"tick"`
	Seq       uint64    `json:"seq"`
	Values    []float64 `json:"values"`
	Imputed   []int     `json:"imputed"`
	Duplicate bool      `json:"duplicate,omitempty"`
}

// maxTickLine bounds one NDJSON input line (1 MiB ≈ a few tens of thousands
// of streams per row), so a hostile line cannot force unbounded allocation
// before the engine's width check runs.
const maxTickLine = 1 << 20

// tickInFlight bounds the acks pending durability per connection. It is the
// window over which one fsync amortizes; past it the reader blocks, which
// is the connection-level backpressure.
const tickInFlight = 256

// ackMsg is one unit of the tick stream's reader→writer pipeline: either an
// ack awaiting its durability commit, or a terminal error.
type ackMsg struct {
	out     tickOut
	commit  wal.Commit
	errText string // terminal NDJSON error when non-empty
	status  int    // HTTP status for the error if nothing streamed yet
	retry   bool   // the client should reconnect and replay

	// Stage-clock payload, observed by the writer once per input line. A
	// batch line carries it on its LAST row only (the row whose ack
	// completes the line): batchN > 0 marks that row and holds the line's
	// row count; the other rows of the batch leave batchN 0.
	t0          int64 // obs.Now at line receipt
	decNanos    int64 // NDJSON decode
	queueNanos  int64 // shard-queue wait (shard.TickResponse.QueueNanos)
	engineNanos int64 // engine compute
	appliedAt   int64 // shard op completion; anchors the wal_commit wait
	shard       int   // histogram attribution
	batchN      int
}

func (s *Server) handleTicks(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// The stream interleaves reads of the request body with writes of the
	// response; without full duplex the HTTP/1 server would first drain the
	// (still-open) request body before the first write and deadlock against
	// a lock-step client.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		writeError(w, http.StatusInternalServerError, "full-duplex streaming unsupported: %v", err)
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxTickLine)
	w.Header().Set("Content-Type", "application/x-ndjson")

	// The handler splits into a reader (decode → apply → enqueue) and a
	// writer (wait durable → encode ack), joined by a bounded channel.
	// While row i's group commit is pending, rows i+1… keep flowing into
	// the engine and into the same commit window, so the WAL fsync
	// amortizes over the whole in-flight window instead of serializing the
	// connection at one fsync round-trip per row. Only the writer touches w
	// after the split, so status-code and line ordering stay coherent.
	acks := make(chan *ackMsg, tickInFlight)
	free := make(chan *ackMsg, tickInFlight)
	writerGone := make(chan struct{})
	ackCell := s.ackCell(id)
	go func() {
		defer close(writerGone)
		enc := json.NewEncoder(w)
		var lineBuf []byte
		streamed := false
		for msg := range acks {
			if msg.errText == "" {
				if err := msg.commit.Wait(); err != nil {
					// The row is applied in memory but not durable: never
					// ack it. The client replays it after reconnecting.
					msg.errText = fmt.Sprintf("tick %d not durable: %v", msg.out.Seq, err)
					msg.status = http.StatusInternalServerError
					msg.retry = true
				}
			}
			if msg.errText != "" {
				if !streamed {
					// Keep the retry marker even pre-stream: a durability
					// hiccup on the first row is as recoverable as on any
					// later one, and the client replays on it. Flush
					// explicitly — the handler goroutine is still blocked
					// reading the request body (full duplex), so nothing
					// else pushes the buffered response out until the
					// client gives up.
					writeJSON(w, msg.status, apiError{Error: msg.errText, Retry: msg.retry})
					rc.Flush()
				} else {
					enc.Encode(apiError{Error: msg.errText, Retry: msg.retry})
					rc.Flush()
				}
				return
			}
			// The durability wait ends here; what follows is the ack write.
			// Under pipelining the measured wal_commit also absorbs time the
			// ack spent queued behind its predecessors — time the client
			// experienced waiting for durability, so the attribution holds.
			var walNanos, ackStart int64
			if msg.batchN > 0 {
				now := obs.Now()
				if walNanos = now - msg.appliedAt; walNanos < 0 {
					walNanos = 0
				}
				ackStart = now
			}
			if !streamed {
				streamed = true
				w.WriteHeader(http.StatusOK)
			}
			// Hot path: append-encode the ack line; json.Encoder (reflection
			// plus a validity re-scan per line) costs a measurable share of a
			// streaming core. Non-finite values (unencodable in JSON) fall
			// back to the encoder for the identical error behavior.
			if out, ok := wire.AppendAck(lineBuf[:0], msg.out.Tick, msg.out.Seq,
				msg.out.Values, msg.out.Imputed, msg.out.Duplicate); ok {
				lineBuf = out
				if _, err := w.Write(lineBuf); err != nil {
					return // client gone
				}
			} else if err := enc.Encode(&msg.out); err != nil {
				return // client gone
			}
			// Flush when the pipeline is drained (a lock-step client gets
			// its ack immediately); while more acks queue behind, let them
			// coalesce into one write.
			if len(acks) == 0 {
				rc.Flush()
			}
			if msg.batchN > 0 {
				s.observeTick(id, msg, walNanos, ackStart, ackCell)
			}
			select {
			case free <- msg:
			default:
			}
		}
	}()

	// send hands msg to the writer, or reports that the writer is gone
	// (terminal error already written, or client disconnected).
	send := func(msg *ackMsg) bool {
		select {
		case acks <- msg:
			return true
		case <-writerGone:
			return false
		}
	}
	fail := func(status int, format string, args ...any) {
		// 503s (drain, shard manager closing) are the recoverable goodbyes:
		// the row was not applied and a reconnect + replay will succeed.
		send(&ackMsg{
			errText: fmt.Sprintf(format, args...),
			status:  status,
			retry:   status == http.StatusServiceUnavailable,
		})
	}

	var (
		rsp  shard.TickResponse
		brsp shard.BatchResponse
		in   wire.TickIn
	)
reading:
	for {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				fail(http.StatusBadRequest, "reading tick line: %v", err)
			}
			break
		}
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		t0 := obs.Now()
		// Hot path: the strict single-pass parser handles the plain shapes
		// the client emits, reusing in's scratch with zero allocations.
		// Anything unusual — escapes, unknown keys, malformed numbers —
		// falls back to encoding/json for identical semantics and errors.
		if !wire.ParseTickIn(line, &in) {
			var jin tickIn
			if err := json.Unmarshal(line, &jin); err != nil {
				fail(http.StatusBadRequest, "decoding tick line: %v", err)
				break
			}
			in.Seq = jin.Seq
			in.HasValues = jin.Values != nil
			in.Values = in.Values[:0]
			for _, v := range jin.Values {
				if v == nil {
					in.Values = append(in.Values, math.NaN())
				} else {
					in.Values = append(in.Values, *v)
				}
			}
			in.HasRows = jin.Rows != nil
			in.Rows = in.Rows[:0]
			for _, vals := range jin.Rows {
				var dst []float64
				if n := len(in.Rows); n < cap(in.Rows) {
					dst = in.Rows[:n+1][n][:0]
				}
				for _, v := range vals {
					if v == nil {
						dst = append(dst, math.NaN())
					} else {
						dst = append(dst, *v)
					}
				}
				in.Rows = append(in.Rows, dst)
			}
		}
		decNanos := obs.Now() - t0
		shardIdx := s.m.ShardOf(id)
		// A drain (graceful shutdown) terminates the stream before the next
		// row is applied, so every row acked below is covered by the final
		// checkpoint; the client replays from its last acked tick.
		select {
		case <-s.draining:
			fail(http.StatusServiceUnavailable, "server draining; replay from the last acked tick")
			break reading
		default:
		}
		if in.HasRows {
			// Batch line: one shard operation and one WAL record for the
			// lot, but still one ack line per row — the response stream is
			// the same whether the client batched or not.
			if in.HasValues {
				fail(http.StatusBadRequest, "tick line sets both values and rows")
				break
			}
			if err := s.m.TickBatch(r.Context(), id, in.Seq, in.Rows, &brsp); err != nil {
				fail(statusFor(err), "tick batch: %v", err)
				break
			}
			s.tickRows.Add(uint64(len(in.Rows)))
			s.observeBatch(len(in.Rows))
			for i := range brsp.Rows {
				res := &brsp.Rows[i]
				var msg *ackMsg
				select {
				case msg = <-free:
				default:
					msg = &ackMsg{}
				}
				msg.errText = ""
				msg.commit = brsp.Durable
				msg.out.Tick = res.Tick
				msg.out.Seq = res.Seq
				msg.out.Duplicate = res.Duplicate
				msg.out.Values = append(msg.out.Values[:0], res.Row...)
				msg.out.Imputed = append(msg.out.Imputed[:0], res.Imputed...)
				// The batch's last row carries the line's stage clocks: its
				// ack completes the line, so the end-to-end measurement ends
				// with it.
				msg.batchN = 0
				if i == len(brsp.Rows)-1 {
					msg.t0 = t0
					msg.decNanos = decNanos
					msg.queueNanos = brsp.QueueNanos
					msg.engineNanos = brsp.EngineNanos
					msg.appliedAt = brsp.AppliedAt
					msg.shard = shardIdx
					msg.batchN = len(in.Rows)
				}
				if !send(msg) {
					break reading
				}
			}
			continue
		}
		if err := s.m.Tick(r.Context(), id, in.Seq, in.Values, &rsp); err != nil {
			fail(statusFor(err), "tick: %v", err)
			break
		}
		s.tickRows.Add(1)
		var msg *ackMsg
		select {
		case msg = <-free:
		default:
			msg = &ackMsg{}
		}
		msg.errText = ""
		msg.commit = rsp.Durable
		msg.out.Tick = rsp.Tick
		msg.out.Seq = rsp.Seq
		msg.out.Duplicate = rsp.Duplicate
		msg.out.Values = append(msg.out.Values[:0], rsp.Row...)
		msg.out.Imputed = append(msg.out.Imputed[:0], rsp.Imputed...)
		msg.t0 = t0
		msg.decNanos = decNanos
		msg.queueNanos = rsp.QueueNanos
		msg.engineNanos = rsp.EngineNanos
		msg.appliedAt = rsp.AppliedAt
		msg.shard = shardIdx
		msg.batchN = 1
		if !send(msg) {
			break
		}
	}
	close(acks)
	<-writerGone
}

// ackCell returns the tenant's last-ack latency cell, creating it on first
// use. The cell outlives connections (it is the /v1/debug/tenants source)
// and is dropped when the tenant is deleted.
func (s *Server) ackCell(id string) *atomic.Int64 {
	if c, ok := s.lastAck.Load(id); ok {
		return c.(*atomic.Int64)
	}
	c, _ := s.lastAck.LoadOrStore(id, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// observeTick records one completed tick line into the per-shard stage and
// end-to-end histograms (always), then decides whether to emit the
// structured trace line: the deterministic 1-in-N sample is advanced
// unconditionally — never short-circuited behind the slow check, or the
// sampler's call count (and with it its determinism) would depend on
// timing — and a tick is traced when it is sampled OR breaches the
// slow-tick threshold.
func (s *Server) observeTick(tenant string, msg *ackMsg, walNanos, ackStart int64, cell *atomic.Int64) {
	now := obs.Now()
	ackNanos := now - ackStart
	e2e := now - msg.t0
	sl := &s.latency[msg.shard]
	sl.stages[obs.StageDecode].Observe(msg.decNanos)
	sl.stages[obs.StageQueue].Observe(msg.queueNanos)
	sl.stages[obs.StageEngine].Observe(msg.engineNanos)
	sl.stages[obs.StageWALCommit].Observe(walNanos)
	sl.stages[obs.StageAck].Observe(ackNanos)
	sl.ack.Observe(e2e)
	cell.Store(e2e)

	sampled := s.sampler.Hit()
	slow := s.slowNanos > 0 && e2e >= s.slowNanos
	if !sampled && !slow {
		return
	}
	reason := "sampled"
	if slow {
		reason = "slow"
	}
	s.traceLines.Add(1)
	s.log.Info("tick trace",
		"reason", reason,
		"tenant", tenant,
		"shard", msg.shard,
		"seq", msg.out.Seq,
		"batch", msg.batchN,
		"total", time.Duration(e2e),
		"decode", time.Duration(msg.decNanos),
		"queue", time.Duration(msg.queueNanos),
		"engine", time.Duration(msg.engineNanos),
		"wal_commit", time.Duration(walNanos),
		"ack", time.Duration(ackNanos),
	)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Serialize to a local temp file on the shard goroutine, then stream the
	// file to the client from the handler goroutine. Writing straight into
	// the ResponseWriter would let one slow client stall the shard loop — and
	// every tenant on that shard — for as long as it pleases; buffering in
	// memory instead would let N concurrent downloads of a large tenant
	// (window bytes ≈ streams × L × 8) multiply the engine's footprint.
	// Local disk is the same cost the checkpoint path already pays.
	f, err := os.CreateTemp("", "tkcm-snap-*")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot of %q: %v", id, err)
		return
	}
	// Unlink the spool immediately (the open fd keeps it readable): the file
	// then cannot outlive the handler no matter how it exits — a client
	// disconnect mid-download, a panic, or the whole process being killed
	// mid-copy all reclaim the space, where a deferred Remove would leak it
	// on a hard kill.
	os.Remove(f.Name())
	defer f.Close()
	if _, err := s.m.Snapshot(r.Context(), id, f); err != nil {
		writeError(w, statusFor(err), "snapshot of %q: %v", id, err)
		return
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err == nil {
		_, err = f.Seek(0, io.SeekStart)
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot of %q: %v", id, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".tkcm"))
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	io.Copy(w, f)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.dir == "" {
		writeError(w, http.StatusPreconditionFailed, "no checkpoint directory configured")
		return
	}
	n, err := s.CheckpointAll(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"checkpointed": n})
}
