package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tkcm/internal/wal"
)

// Follower mode: the server starts with no hosted tenants and pulls the
// primary's replication manifest every FollowInterval, mirroring checkpoints
// and WAL segments into its own data directories — every byte verified
// (manifest HMAC, then wal.Replica's Merkle/chain/HMAC checks, then the
// checkpoint digest) before it is fsynced. Until promoted, every API route
// except health, metrics and promotion answers 503, so a misconfigured
// client cannot write to a replica. Promote (POST /v1/promote, or SIGHUP in
// cmd/tkcm-serve) stops the puller, restores every replicated tenant, and
// starts the normal primary duties; a failed promotion is retryable.

// maxReplFetch bounds one replication response body (a segment delta, a
// checkpoint, or the manifest). Segments rotate at tens of MiB, far below.
const maxReplFetch = 1 << 30

// followerAllowed reports whether a route is served while unpromoted.
func (s *Server) followerAllowed(path string) bool {
	return path == "/healthz" || path == "/metrics" || path == "/v1/promote"
}

// StartFollower launches the replication puller. No-op unless the server
// was configured with Options.FollowURL.
func (s *Server) StartFollower() {
	if !s.follower {
		return
	}
	s.followWG.Add(1)
	go func() {
		defer s.followWG.Done()
		t := time.NewTicker(s.followEvery)
		defer t.Stop()
		for {
			// Round first, then wait: a fresh follower starts converging
			// immediately instead of idling a full interval.
			if err := s.followRound(); err != nil {
				s.replErrors.Add(1)
				s.log.Warn("replication round failed", "primary", s.followURL, "err", err)
			}
			select {
			case <-s.stopFollow:
				return
			case <-t.C:
			}
		}
	}()
}

// Promote turns the follower into a primary: stop pulling, restore every
// replicated tenant from its checkpoint + verified WAL, then start the
// checkpoint loop and rebalancer. Serialized and retryable — if the restore
// fails (e.g. a tenant synced mid-divergence), the server stays an
// unpromoted follower whose next Promote tries again. Promoting a server
// that was never a follower is an error; promoting twice is a no-op.
func (s *Server) Promote(ctx context.Context) error {
	if !s.follower {
		return fmt.Errorf("server: not a follower")
	}
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.promoted.Load() {
		return nil
	}
	s.stopFollowOnce.Do(func() { close(s.stopFollow) })
	s.followWG.Wait()
	n, err := s.RestoreFromCheckpoints(ctx)
	if err != nil {
		return fmt.Errorf("server: promote: %w", err)
	}
	s.StartCheckpointLoop()
	s.StartRebalancer()
	s.promoted.Store(true)
	s.log.Info("promoted to primary", "tenants", n)
	return nil
}

// StopFollower halts the puller without promoting (shutdown path).
func (s *Server) StopFollower() {
	if !s.follower {
		return
	}
	s.stopFollowOnce.Do(func() { close(s.stopFollow) })
	s.followWG.Wait()
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if !s.follower {
		writeError(w, http.StatusPreconditionFailed, "not a follower (-follow was not set)")
		return
	}
	already := s.promoted.Load()
	// The restore must outlive an impatient client: aborting halfway would
	// leave some tenants hosted and some not, pointlessly.
	if err := s.Promote(context.WithoutCancel(r.Context())); err != nil {
		writeError(w, http.StatusInternalServerError, "promote: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"promoted": true, "already": already})
}

// followRound pulls one manifest and converges the local directories to it.
// Per-tenant failures are logged and counted but do not abort the round —
// one diverged tenant must not stall replication of the rest.
func (s *Server) followRound() error {
	raw, err := s.replGet(s.followURL + "/v1/replication/manifest")
	if err != nil {
		return err
	}
	var m replManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("decoding manifest: %v", err)
	}
	if err := verifyManifestMAC(s.wal.Key(), &m); err != nil {
		return err
	}
	var body replBody
	if err := json.Unmarshal(m.Body, &body); err != nil {
		return fmt.Errorf("decoding manifest body: %v", err)
	}
	seen := make(map[string]bool, len(body.Tenants))
	for _, t := range body.Tenants {
		if !tenantIDPattern.MatchString(t.ID) {
			return fmt.Errorf("manifest names invalid tenant id %q", t.ID)
		}
		seen[t.ID] = true
		if t.Failed {
			continue // fail-stopped on the primary; keep our copy as-is
		}
		if err := s.syncTenant(t); err != nil {
			s.replErrors.Add(1)
			s.log.Warn("tenant replication failed", "tenant", t.ID, "err", err)
		}
	}
	s.pruneReplicated(seen)
	s.replRounds.Add(1)
	s.lastManifestNano.Store(body.GeneratedUnixNano)
	return nil
}

// syncTenant converges one tenant. Checkpoint BEFORE WAL: the manifest's
// head may raise the chain base past records only its (equally new)
// checkpoint covers, so installing the head first and crashing would leave
// a hole neither file fills. Checkpoint-ahead-of-WAL is always safe — the
// restore path tolerates a checkpoint newer than the log.
func (s *Server) syncTenant(t replTenant) error {
	if t.Checkpoint != nil {
		if err := s.syncCheckpointFile(t.ID, t.Checkpoint); err != nil {
			return err
		}
	}
	if len(t.Head) == 0 {
		return nil
	}
	rep := s.replicas[t.ID]
	if rep == nil {
		rep = wal.NewReplica(filepath.Join(s.wal.Root(), t.ID), s.wal.Key())
		s.replicas[t.ID] = rep
	}
	segs := make([]wal.SegmentInfo, len(t.Segments))
	for i, sg := range t.Segments {
		segs[i] = wal.SegmentInfo{Name: sg.Name, FirstSeq: sg.FirstSeq, LastSeq: sg.LastSeq,
			Size: sg.Size, Sealed: sg.Sealed, Root: sg.Root}
	}
	st, err := rep.Sync(t.Head, segs, func(name string, from int64) ([]byte, error) {
		return s.replGet(fmt.Sprintf("%s/v1/replication/segment/%s/%s?from=%d",
			s.followURL, url.PathEscape(t.ID), name, from))
	})
	s.replSegmentsCtr.Add(uint64(st.SegmentsFetched))
	s.replBytesCtr.Add(uint64(st.BytesFetched))
	return err
}

// syncCheckpointFile fetches the tenant's checkpoint when the local copy's
// digest differs, verifying the digest while spooling and installing via
// temp + fsync + rename + dir sync, like every checkpoint write.
func (s *Server) syncCheckpointFile(id string, want *replFile) error {
	name := id + checkpointExt
	path := filepath.Join(s.dir, name)
	if fi, err := os.Stat(path); err == nil && fi.Size() == want.Size {
		s.ckHashMu.Lock()
		ent, ok := s.ckHashes[name]
		s.ckHashMu.Unlock()
		if !ok || ent.size != fi.Size() || !ent.mtime.Equal(fi.ModTime()) {
			if sum, herr := fileSHA256(path); herr == nil {
				ent = ckHashEntry{size: fi.Size(), mtime: fi.ModTime(), sum: sum}
				s.ckHashMu.Lock()
				s.ckHashes[name] = ent
				s.ckHashMu.Unlock()
				ok = true
			}
		}
		if ok && ent.sum == want.SHA256 {
			return nil
		}
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	resp, err := s.replClient.Get(s.followURL + "/v1/replication/checkpoint/" + url.PathEscape(id))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching checkpoint: %s", replErrorOf(resp))
	}
	f, err := os.CreateTemp(s.dir, id+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	h := sha256.New()
	_, err = io.Copy(io.MultiWriter(f, h), io.LimitReader(resp.Body, maxReplFetch))
	if err == nil && hex.EncodeToString(h.Sum(nil)) != want.SHA256 {
		// The primary checkpointed between manifest and fetch; the next
		// round's manifest will carry the digest of what we just saw.
		err = fmt.Errorf("checkpoint of %q changed mid-fetch (digest mismatch)", id)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	if fi, serr := os.Stat(path); serr == nil {
		s.ckHashMu.Lock()
		s.ckHashes[name] = ckHashEntry{size: fi.Size(), mtime: fi.ModTime(), sum: want.SHA256}
		s.ckHashMu.Unlock()
	}
	return nil
}

// pruneReplicated removes local checkpoints and WAL directories of tenants
// the manifest no longer names — deleted on the primary, so deleted here.
// Tenants that merely failed to sync this round stay (they are in seen).
func (s *Server) pruneReplicated(seen map[string]bool) {
	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, ent := range entries {
			name := ent.Name()
			if ent.IsDir() || !strings.HasSuffix(name, checkpointExt) {
				continue
			}
			if id := strings.TrimSuffix(name, checkpointExt); !seen[id] {
				if err := os.Remove(filepath.Join(s.dir, name)); err == nil {
					s.log.Info("pruned checkpoint of deleted tenant", "tenant", id)
				}
			}
		}
	}
	if entries, err := os.ReadDir(s.wal.Root()); err == nil {
		for _, ent := range entries {
			if !ent.IsDir() || seen[ent.Name()] {
				continue
			}
			if err := os.RemoveAll(filepath.Join(s.wal.Root(), ent.Name())); err == nil {
				s.log.Info("pruned write-ahead log of deleted tenant", "tenant", ent.Name())
				delete(s.replicas, ent.Name())
			}
		}
	}
}

// replGet fetches one replication URL into memory (bounded).
func (s *Server) replGet(u string) ([]byte, error) {
	resp, err := s.replClient.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", u, replErrorOf(resp))
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxReplFetch))
}

// replErrorOf condenses an error response into one log-friendly line.
func replErrorOf(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	var ae apiError
	if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
		return fmt.Sprintf("%s: %s", resp.Status, ae.Error)
	}
	return resp.Status
}
