package server

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tkcm/internal/core"
	"tkcm/internal/shard"
	"tkcm/internal/wal"
)

// newWALServer assembles a WAL-enabled stack over the given directories.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func newWALServer(t *testing.T, ckDir, walDir string, walOpts wal.Options) (*Server, *shard.Manager, *wal.Manager) {
	t.Helper()
	walMgr := wal.NewManager(walDir, walOpts)
	m := shard.New(shard.Options{Shards: 2, QueueLen: 16, WAL: walMgr})
	s := New(Options{Manager: m, CheckpointDir: ckDir, WAL: walMgr, Log: quietLog()})
	return s, m, walMgr
}

// TestWALRecoveryWithoutGracefulShutdown simulates a crash: the first stack
// is abandoned with no drain and no final checkpoint — only the tenant's
// base image (written at creation) and the WAL survive. The second stack
// must replay every acked row and match a direct engine bit-for-bit within
// the restore tolerance.
func TestWALRecoveryWithoutGracefulShutdown(t *testing.T) {
	ckDir, walDir := t.TempDir(), t.TempDir()
	walOpts := wal.Options{SyncInterval: time.Millisecond}
	s1, m1, wal1 := newWALServer(t, ckDir, walDir, walOpts)
	ts1 := newHTTPServer(t, s1)

	if resp := createTenant(t, ts1.URL, "crash", testTenantBody); resp.StatusCode != 201 {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	// The base image must exist before the first tick is ever acked.
	if _, err := os.Stat(filepath.Join(ckDir, "crash.tkcm")); err != nil {
		t.Fatalf("base checkpoint missing after create: %v", err)
	}

	direct, err := core.NewEngine(testCoreConfig(), []string{"s", "r1", "r2", "r3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()

	st := openTickStream(t, ts1.URL, "crash")
	const rows = 40
	for n := 0; n < rows; n++ {
		row := []float64{20.5 + float64(n%4), 19.2, 21.4, 20.9}
		if n > 10 && n%2 == 0 {
			row[0] = math.NaN()
		}
		if _, err := st.send(row); err != nil {
			t.Fatalf("tick %d: %v", n, err)
		}
		if _, _, err := direct.Tick(row); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: tear the HTTP front off and abandon the stack — no BeginDrain,
	// no Shutdown, no CheckpointAll. Closing the stream and the WAL manager
	// only releases handles; every acked row above is already fsynced.
	st.close()
	ts1.Close()
	wal1.Close()
	_ = m1

	s2, m2, wal2 := newWALServer(t, ckDir, walDir, walOpts)
	defer m2.Close()
	defer wal2.Close()
	n, err := s2.RestoreFromCheckpoints(context.Background())
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if n != 1 {
		t.Fatalf("restored %d tenants, want 1", n)
	}
	info, err := m2.Info(context.Background(), "crash")
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != rows {
		t.Fatalf("recovered seq %d, want %d (acked rows lost)", info.Seq, rows)
	}
	// Window equivalence against the uninterrupted direct engine.
	var buf bytes.Buffer
	if _, err := m2.Snapshot(context.Background(), "crash", &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := core.RestoreEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	for i := 0; i < 4; i++ {
		got, want := restored.Window().Snapshot(i), direct.Window().Snapshot(i)
		if len(got) != len(want) {
			t.Fatalf("stream %d: %d ticks, want %d", i, len(got), len(want))
		}
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-9 {
				t.Fatalf("stream %d tick %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
}

// TestRestoreFailsOnCorruptWALSegment flips a byte in a non-final WAL
// segment: acked rows behind it are unreadable, and the restore must
// refuse to serve a silently rolled-back tenant.
func TestRestoreFailsOnCorruptWALSegment(t *testing.T) {
	ckDir, walDir := t.TempDir(), t.TempDir()
	// Tiny segments force several rotations over a short stream.
	walOpts := wal.Options{SegmentBytes: 256}
	s1, m1, wal1 := newWALServer(t, ckDir, walDir, walOpts)
	ts1 := newHTTPServer(t, s1)
	if resp := createTenant(t, ts1.URL, "corrupt", testTenantBody); resp.StatusCode != 201 {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	st := openTickStream(t, ts1.URL, "corrupt")
	for n := 0; n < 30; n++ {
		if _, err := st.send([]float64{20, 19, 21, 20.5}); err != nil {
			t.Fatal(err)
		}
	}
	st.close()
	ts1.Close()
	wal1.Close()
	_ = m1

	tenantDir := filepath.Join(walDir, "corrupt")
	segs, err := os.ReadDir(tenantDir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want ≥2 segments, got %v (%v)", segs, err)
	}
	first := filepath.Join(tenantDir, segs[0].Name())
	raw, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(first, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, m2, wal2 := newWALServer(t, ckDir, walDir, walOpts)
	defer m2.Close()
	defer wal2.Close()
	if _, err := s2.RestoreFromCheckpoints(context.Background()); err == nil {
		t.Fatal("restore over a corrupt WAL segment succeeded; acked rows were silently dropped")
	}
}

// TestCheckpointTruncatesWAL verifies the log is reclaimed once a
// checkpoint covers it.
func TestCheckpointTruncatesWAL(t *testing.T) {
	ckDir, walDir := t.TempDir(), t.TempDir()
	walOpts := wal.Options{SegmentBytes: 256}
	s, m, walMgr := newWALServer(t, ckDir, walDir, walOpts)
	defer m.Close()
	defer walMgr.Close()
	ts := newHTTPServer(t, s)
	if resp := createTenant(t, ts.URL, "trunc", testTenantBody); resp.StatusCode != 201 {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	st := openTickStream(t, ts.URL, "trunc")
	for n := 0; n < 30; n++ {
		if _, err := st.send([]float64{20, 19, 21, 20.5}); err != nil {
			t.Fatal(err)
		}
	}
	st.close()
	before := walMgr.Get("trunc").Segments()
	if before < 2 {
		t.Fatalf("want ≥2 segments before checkpoint, got %d", before)
	}
	if _, err := s.CheckpointAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if after := walMgr.Get("trunc").Segments(); after >= before {
		t.Fatalf("checkpoint reclaimed nothing: %d -> %d segments", before, after)
	}
	if st := walMgr.Stats(); st.Truncations == 0 {
		t.Fatal("truncation counter did not move")
	}
}

// TestDeleteRemovesWAL: a deleted tenant's log must not resurrect it.
func TestDeleteRemovesWAL(t *testing.T) {
	ckDir, walDir := t.TempDir(), t.TempDir()
	s, m, walMgr := newWALServer(t, ckDir, walDir, wal.Options{})
	defer m.Close()
	defer walMgr.Close()
	ts := newHTTPServer(t, s)
	if resp := createTenant(t, ts.URL, "bye", testTenantBody); resp.StatusCode != 201 {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	st := openTickStream(t, ts.URL, "bye")
	if _, err := st.send([]float64{20, 19, 21, 20.5}); err != nil {
		t.Fatal(err)
	}
	st.close()
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/tenants/bye", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("delete: %v %v", resp, err)
	}
	if _, err := os.Stat(filepath.Join(walDir, "bye")); !os.IsNotExist(err) {
		t.Fatalf("WAL dir survived delete: %v", err)
	}
	if _, err := os.Stat(filepath.Join(ckDir, "bye.tkcm")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survived delete: %v", err)
	}
}
