package server

import (
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// debugTenant is one row of GET /v1/debug/tenants: the tenant's placement
// and ingest counters plus the end-to-end latency of its most recent ack.
type debugTenant struct {
	ID          string `json:"id"`
	Shard       int    `json:"shard"`
	Ticks       int    `json:"ticks"`
	Seq         uint64 `json:"seq"`
	Imputations int    `json:"imputations"`
	// Resident reports whether the tenant's engine is live in memory; false
	// means it is parked on disk (checkpoint + WAL tail) awaiting hydration.
	Resident bool `json:"resident"`
	// Failed marks a tenant latched fail-stopped by a hydration failure;
	// every operation on it errors until it is deleted.
	Failed bool `json:"failed,omitempty"`
	// LastAckSeconds is the wire-decode-to-ack latency of the tenant's most
	// recent acked tick line, 0 until the tenant has been ticked through
	// this process.
	LastAckSeconds float64 `json:"last_ack_seconds"`
}

// DebugHandler returns the diagnostics handler tree meant for a loopback
// listener (cmd/tkcm-serve's -debug-addr): net/http/pprof under
// /debug/pprof/ and the per-tenant introspection endpoint. It is a separate
// tree from Handler on purpose — the public mux never exposes profiling,
// and the route-manifest test asserts these routes only through
// DebugRoutes.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/debug/tenants", s.handleDebugTenants)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugRoutes returns the route manifest of DebugHandler, the ground truth
// docs/API.md's debug section is tested against (pprof's sub-pages are
// covered by the one prefix route).
func (s *Server) DebugRoutes() []string {
	return []string{
		"GET /v1/debug/tenants",
		"GET /debug/pprof/",
	}
}

// handleDebugTenants lists every hosted tenant with its shard, counters and
// last ack latency. Degrades to 503 alongside /healthz and /metrics when a
// tenant WAL has latched fail-stop, but still writes the listing — the
// whole point of the endpoint is triage.
func (s *Server) handleDebugTenants(w http.ResponseWriter, r *http.Request) {
	infos, err := s.m.Tenants(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "listing tenants: %v", err)
		return
	}
	out := make([]debugTenant, 0, len(infos))
	for _, info := range infos {
		dt := debugTenant{
			ID:          info.ID,
			Shard:       info.Shard,
			Ticks:       info.Ticks,
			Seq:         info.Seq,
			Imputations: info.Imputations,
			Resident:    info.Resident,
			Failed:      info.Failed,
		}
		if cell, ok := s.lastAck.Load(info.ID); ok {
			dt.LastAckSeconds = time.Duration(cell.(*atomic.Int64).Load()).Seconds()
		}
		out = append(out, dt)
	}
	status := http.StatusOK
	if failed := s.failedWALTenants(); len(failed) > 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"tenants": out})
}
