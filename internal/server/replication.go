package server

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"time"

	"tkcm/internal/wal"
)

// Replication wire format. The manifest is a point-in-time snapshot of every
// tenant's durable state: the signed WAL head image, the committed extent of
// each segment, and the checkpoint file's digest. The body travels as raw
// JSON bytes under an HMAC-SHA256 of exactly those bytes (keyed with the WAL
// integrity key), so a follower verifies the manifest before parsing
// anything of consequence — and the per-segment / per-head MACs inside are
// verified again by wal.Replica before any byte reaches the follower's disk.
type replManifest struct {
	Body json.RawMessage `json:"body"`
	MAC  string          `json:"mac"`
}

type replBody struct {
	GeneratedUnixNano int64        `json:"generated_unix_nano"`
	Tenants           []replTenant `json:"tenants"`
}

type replTenant struct {
	ID string `json:"id"`
	// Failed marks a tenant whose WAL has fail-stopped: it cannot be
	// snapshotted, and the follower keeps (rather than prunes) its copy.
	Failed     bool          `json:"failed,omitempty"`
	DurableSeq uint64        `json:"durable_seq,omitempty"`
	Head       []byte        `json:"head,omitempty"`
	Segments   []replSegment `json:"segments,omitempty"`
	Checkpoint *replFile     `json:"checkpoint,omitempty"`
}

type replSegment struct {
	Name     string `json:"name"`
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq,omitempty"`
	Size     int64  `json:"size"`
	Sealed   bool   `json:"sealed,omitempty"`
	Root     []byte `json:"root,omitempty"`
}

type replFile struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// manifestMAC authenticates the manifest body bytes under the WAL key.
func manifestMAC(key, body []byte) string {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("tkcm-manifest\x00"))
	mac.Write(body)
	return hex.EncodeToString(mac.Sum(nil))
}

// verifyManifestMAC checks a received manifest's MAC (constant-time).
func verifyManifestMAC(key []byte, m *replManifest) error {
	got, err := hex.DecodeString(m.MAC)
	if err != nil {
		return fmt.Errorf("manifest MAC is not hex: %v", err)
	}
	want, _ := hex.DecodeString(manifestMAC(key, m.Body))
	if !hmac.Equal(got, want) {
		return fmt.Errorf("manifest HMAC mismatch (tampered, or integrity keys differ)")
	}
	return nil
}

// segNamePattern bounds segment names a replication request may address —
// exactly the shape the WAL generates, so no request can walk the tree.
var segNamePattern = regexp.MustCompile(`^seg-\d{20}\.wal$`)

func (s *Server) handleReplManifest(w http.ResponseWriter, r *http.Request) {
	if s.wal == nil {
		writeError(w, http.StatusPreconditionFailed, "replication requires a write-ahead log (-wal-dir)")
		return
	}
	body := replBody{GeneratedUnixNano: time.Now().UnixNano()}
	for _, id := range s.wal.OpenTenants() {
		t := replTenant{ID: id}
		st, err := s.wal.ReplState(id)
		if err != nil {
			t.Failed = true
		} else {
			t.DurableSeq = st.DurableSeq
			t.Head = st.Head
			for _, seg := range st.Segments {
				t.Segments = append(t.Segments, replSegment{
					Name: seg.Name, FirstSeq: seg.FirstSeq, LastSeq: seg.LastSeq,
					Size: seg.Size, Sealed: seg.Sealed, Root: seg.Root,
				})
			}
		}
		if ck, err := s.checkpointInfo(id); err == nil {
			t.Checkpoint = ck
		} else if !os.IsNotExist(err) {
			writeError(w, http.StatusInternalServerError, "manifest: checkpoint of %q: %v", id, err)
			return
		}
		body.Tenants = append(body.Tenants, t)
	}
	raw, err := json.Marshal(body)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "manifest: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, replManifest{Body: raw, MAC: manifestMAC(s.wal.Key(), raw)})
}

// ckHashEntry caches one checkpoint file's digest keyed by (size, mtime), so
// a manifest request hashes only checkpoints that actually changed.
type ckHashEntry struct {
	size  int64
	mtime time.Time
	sum   string
}

// checkpointInfo returns the tenant's checkpoint descriptor, hashing the
// file only when its size or mtime moved since the last look.
func (s *Server) checkpointInfo(id string) (*replFile, error) {
	name := id + checkpointExt
	path := filepath.Join(s.dir, name)
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	s.ckHashMu.Lock()
	ent, ok := s.ckHashes[name]
	s.ckHashMu.Unlock()
	if !ok || ent.size != fi.Size() || !ent.mtime.Equal(fi.ModTime()) {
		sum, err := fileSHA256(path)
		if err != nil {
			return nil, err
		}
		// Keyed by the pre-hash stat: if the file is replaced mid-hash, the
		// next stat disagrees and triggers a rehash — and the follower
		// verifies the digest of what it actually fetched anyway.
		ent = ckHashEntry{size: fi.Size(), mtime: fi.ModTime(), sum: sum}
		s.ckHashMu.Lock()
		s.ckHashes[name] = ent
		s.ckHashMu.Unlock()
	}
	return &replFile{Name: name, Size: ent.size, SHA256: ent.sum}, nil
}

func fileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// handleReplSegment serves one segment's committed bytes from an absolute
// file offset (?from=N). The extent is re-snapshotted from the live log at
// request time, so the response never includes bytes past the last commit
// frame — a follower can trust length, though it verifies content anyway.
func (s *Server) handleReplSegment(w http.ResponseWriter, r *http.Request) {
	if s.wal == nil {
		writeError(w, http.StatusPreconditionFailed, "replication requires a write-ahead log (-wal-dir)")
		return
	}
	tenant, name := r.PathValue("tenant"), r.PathValue("name")
	if !tenantIDPattern.MatchString(tenant) || !segNamePattern.MatchString(name) {
		writeError(w, http.StatusBadRequest, "invalid tenant id or segment name")
		return
	}
	var from int64
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "invalid from offset %q", q)
			return
		}
		from = v
	}
	st, err := s.wal.ReplState(tenant)
	if err != nil {
		writeError(w, http.StatusNotFound, "tenant %q: %v", tenant, err)
		return
	}
	var seg *wal.SegmentInfo
	for i := range st.Segments {
		if st.Segments[i].Name == name {
			seg = &st.Segments[i]
			break
		}
	}
	if seg == nil {
		writeError(w, http.StatusNotFound, "tenant %q has no segment %s", tenant, name)
		return
	}
	if from > seg.Size {
		writeError(w, http.StatusRequestedRangeNotSatisfiable, "offset %d past committed size %d", from, seg.Size)
		return
	}
	f, err := os.Open(filepath.Join(s.wal.Root(), tenant, name))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "opening segment: %v", err)
		return
	}
	defer f.Close()
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		writeError(w, http.StatusInternalServerError, "seeking segment: %v", err)
		return
	}
	n := seg.Size - from
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	io.CopyN(w, f, n)
}

// handleReplCheckpoint serves a tenant's checkpoint file. The open fd pins
// the inode, so a concurrent checkpoint rename cannot tear the response; the
// follower verifies the digest against the manifest it is syncing to.
func (s *Server) handleReplCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.dir == "" {
		writeError(w, http.StatusPreconditionFailed, "no checkpoint directory configured")
		return
	}
	tenant := r.PathValue("tenant")
	if !tenantIDPattern.MatchString(tenant) {
		writeError(w, http.StatusBadRequest, "invalid tenant id %q", tenant)
		return
	}
	f, err := os.Open(filepath.Join(s.dir, tenant+checkpointExt))
	if os.IsNotExist(err) {
		writeError(w, http.StatusNotFound, "tenant %q has no checkpoint", tenant)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "opening checkpoint: %v", err)
		return
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
	io.Copy(w, f)
}
