package server

import (
	"os"
	"strings"
	"testing"

	"tkcm/internal/shard"
)

// TestAPIDocsCoverEveryRoute walks the server's route manifest and requires
// docs/API.md to name every registered route verbatim (in backticks, e.g.
// `GET /v1/tenants/{id}`). Adding an endpoint without documenting it fails
// here; documenting a route that no longer exists fails the reverse check.
func TestAPIDocsCoverEveryRoute(t *testing.T) {
	m := shard.New(shard.Options{Shards: 1})
	defer m.Close()
	s := New(Options{Manager: m})

	raw, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist and document the full API: %v", err)
	}
	doc := string(raw)
	// The manifest is the union of the public tree and the opt-in debug
	// tree: both must be documented, and nothing else may claim to be a
	// route.
	routes := append(s.Routes(), s.DebugRoutes()...)
	if len(routes) == 0 {
		t.Fatal("server registered no routes")
	}
	for _, r := range routes {
		if !strings.Contains(doc, "`"+r+"`") {
			t.Errorf("docs/API.md does not document route `%s`", r)
		}
	}

	// Reverse direction: every documented route must still exist.
	known := make(map[string]bool, len(routes))
	for _, r := range routes {
		known[r] = true
	}
	for _, line := range strings.Split(doc, "\n") {
		for _, method := range []string{"GET ", "POST ", "DELETE ", "PUT ", "PATCH "} {
			i := strings.Index(line, "`"+method)
			if i < 0 {
				continue
			}
			rest := line[i+1:]
			j := strings.Index(rest, "`")
			if j < 0 {
				continue
			}
			if doc := rest[:j]; !known[doc] {
				t.Errorf("docs/API.md documents `%s`, which is not a registered route", doc)
			}
		}
	}
}
