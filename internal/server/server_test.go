package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tkcm/internal/core"
	"tkcm/internal/shard"
)

func quietLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	m := shard.New(shard.Options{Shards: 3, QueueLen: 16})
	s := New(Options{Manager: m, CheckpointDir: dir, Log: quietLog()})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func createTenant(t *testing.T, base, id string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/tenants/"+id, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

const testTenantBody = `{
	"streams": ["s", "r1", "r2", "r3"],
	"config": {"k": 2, "pattern_length": 3, "d": 2, "window_length": 24}
}`

func testCoreConfig() core.Config {
	return core.Config{K: 2, PatternLength: 3, D: 2, WindowLength: 24}
}

// tickStream drives one NDJSON /ticks request in lock-step: send a row, read
// the completed row. The Go HTTP transport's split read/write loops make the
// request fully duplex.
type tickStream struct {
	t    *testing.T
	pw   *io.PipeWriter
	enc  *json.Encoder
	sc   *bufio.Scanner
	resp *http.Response
	rc   chan *http.Response
	ec   chan error
}

func openTickStream(t *testing.T, base, tenant string) *tickStream {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", base+"/v1/tenants/"+tenant+"/ticks", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	st := &tickStream{t: t, pw: pw, enc: json.NewEncoder(pw), rc: make(chan *http.Response, 1), ec: make(chan error, 1)}
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			st.ec <- err
			return
		}
		st.rc <- resp
	}()
	return st
}

// send writes one row (NaN → null) and returns the server's completed row.
func (st *tickStream) send(row []float64) (tickOut, error) {
	vals := make([]*float64, len(row))
	for i := range row {
		if !math.IsNaN(row[i]) {
			v := row[i]
			vals[i] = &v
		}
	}
	if err := st.enc.Encode(tickIn{Values: vals}); err != nil {
		return tickOut{}, err
	}
	if st.resp == nil {
		select {
		case st.resp = <-st.rc:
		case err := <-st.ec:
			return tickOut{}, err
		case <-time.After(10 * time.Second):
			st.t.Fatal("timeout waiting for response headers")
		}
		st.sc = bufio.NewScanner(st.resp.Body)
		st.sc.Buffer(make([]byte, 1<<20), 1<<20)
	}
	if !st.sc.Scan() {
		if err := st.sc.Err(); err != nil {
			return tickOut{}, err
		}
		return tickOut{}, io.EOF
	}
	line := st.sc.Bytes()
	var e apiError
	if json.Unmarshal(line, &e) == nil && e.Error != "" {
		return tickOut{}, fmt.Errorf("server error line: %s", e.Error)
	}
	var out tickOut
	if err := json.Unmarshal(line, &out); err != nil {
		return tickOut{}, fmt.Errorf("bad line %q: %w", line, err)
	}
	return out, nil
}

func (st *tickStream) close() {
	st.pw.Close()
	if st.resp == nil {
		select {
		case st.resp = <-st.rc:
		case err := <-st.ec:
			st.t.Logf("stream close: %v", err)
			return
		case <-time.After(10 * time.Second):
			st.t.Fatal("timeout closing stream")
		}
	}
	io.Copy(io.Discard, st.resp.Body)
	st.resp.Body.Close()
}

// e2eRow synthesizes tick t for a 4-stream tenant; offset decorrelates
// tenants so they exercise different values.
func e2eRow(t int, offset float64) []float64 {
	row := make([]float64, 4)
	for i := range row {
		ph := 2*math.Pi*float64(t)/16 + 1.1*float64(i) + offset
		row[i] = 10 + 3*math.Sin(ph) + math.Sin(2*ph)
	}
	if t > 10 && t%4 == 0 {
		row[0] = math.NaN()
	}
	if t > 10 && t%6 == 0 {
		row[2] = math.NaN()
	}
	return row
}

// TestEndToEndTwoTenantsMatchDirectEngines is the tentpole acceptance test:
// two tenants streamed concurrently over HTTP must produce responses
// numerically identical to directly-driven engines on the same rows.
func TestEndToEndTwoTenantsMatchDirectEngines(t *testing.T) {
	_, ts := newTestServer(t, "")
	for _, id := range []string{"alpha", "beta"} {
		resp := createTenant(t, ts.URL, id, testTenantBody)
		if resp.StatusCode != http.StatusCreated {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("create %s: %d %s", id, resp.StatusCode, b)
		}
		resp.Body.Close()
	}

	const ticks = 200
	var wg sync.WaitGroup
	for ti, id := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			offset := 0.7 * float64(ti)
			direct, err := core.NewEngine(testCoreConfig(), []string{"s", "r1", "r2", "r3"}, nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer direct.Close()
			st := openTickStream(t, ts.URL, id)
			defer st.close()
			for tk := 0; tk < ticks; tk++ {
				row := e2eRow(tk, offset)
				want, _, err := direct.Tick(append([]float64(nil), row...))
				if err != nil {
					t.Errorf("%s direct tick %d: %v", id, tk, err)
					return
				}
				got, err := st.send(row)
				if err != nil {
					t.Errorf("%s stream tick %d: %v", id, tk, err)
					return
				}
				if got.Tick != tk {
					t.Errorf("%s tick index %d, want %d", id, got.Tick, tk)
					return
				}
				for i := range want {
					if got.Values[i] != want[i] {
						t.Errorf("%s tick %d stream %d: served %v, direct %v", id, tk, i, got.Values[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// The metrics endpoint must reflect the streamed work.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte(fmt.Sprintf("tkcm_ticks_total %d", 2*ticks))) {
		t.Errorf("metrics missing tick totals:\n%s", body)
	}
	if !bytes.Contains(body, []byte("tkcm_tenants 2")) {
		t.Errorf("metrics missing tenant gauge:\n%s", body)
	}
}

// TestCheckpointRestoreMidStream kills a serving process mid-stream (no
// graceful shutdown) and restores a fresh one from the last checkpoint; a
// client replaying from the checkpointed tick must then see imputations
// matching an uninterrupted engine within 1e-9 — the snapshot/restore
// acceptance criterion end to end.
func TestCheckpointRestoreMidStream(t *testing.T) {
	dir := t.TempDir()
	const preCk, lost, post = 120, 7, 80

	sA, tsA := newTestServer(t, dir)
	resp := createTenant(t, tsA.URL, "ten", testTenantBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	resp.Body.Close()

	stA := openTickStream(t, tsA.URL, "ten")
	for tk := 0; tk < preCk; tk++ {
		if _, err := stA.send(e2eRow(tk, 0)); err != nil {
			t.Fatalf("tick %d: %v", tk, err)
		}
	}
	// Force a checkpoint, then stream a few more rows that will be lost in
	// the "crash".
	cr, err := http.Post(tsA.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cr.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d", cr.StatusCode)
	}
	cr.Body.Close()
	for tk := preCk; tk < preCk+lost; tk++ {
		if _, err := stA.send(e2eRow(tk, 0)); err != nil {
			t.Fatalf("post-checkpoint tick %d: %v", tk, err)
		}
	}
	stA.close()
	tsA.Close() // kill: no Shutdown, no final checkpoint
	_ = sA

	// New process: restore from the checkpoint directory.
	sB, tsB := newTestServer(t, dir)
	n, err := sB.RestoreFromCheckpoints(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d tenants, want 1", n)
	}

	// Uninterrupted reference: the rows the restored engine has actually
	// seen — everything up to the checkpoint, then the replayed tail.
	direct, err := core.NewEngine(testCoreConfig(), []string{"s", "r1", "r2", "r3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	for tk := 0; tk < preCk; tk++ {
		if _, _, err := direct.Tick(e2eRow(tk, 0)); err != nil {
			t.Fatal(err)
		}
	}

	stB := openTickStream(t, tsB.URL, "ten")
	defer stB.close()
	imputed := 0
	for tk := preCk; tk < preCk+post; tk++ {
		row := e2eRow(tk, 0)
		want, _, err := direct.Tick(append([]float64(nil), row...))
		if err != nil {
			t.Fatal(err)
		}
		got, err := stB.send(row)
		if err != nil {
			t.Fatalf("restored tick %d: %v", tk, err)
		}
		if got.Tick != tk {
			t.Fatalf("restored tick index %d, want %d (checkpoint lost ticks?)", got.Tick, tk)
		}
		imputed += len(got.Imputed)
		for i := range want {
			if d := math.Abs(got.Values[i] - want[i]); !(d <= 1e-9) {
				t.Fatalf("tick %d stream %d: restored %v, uninterrupted %v (|Δ|=%g)", tk, i, got.Values[i], want[i], d)
			}
		}
	}
	if imputed == 0 {
		t.Fatal("restored stream exercised no imputations")
	}
}

// TestGracefulShutdownWritesFinalSnapshot: Shutdown after the HTTP layer
// drains must persist every applied tick, restorable with full state.
func TestGracefulShutdownWritesFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, dir)
	resp := createTenant(t, ts.URL, "tg", testTenantBody)
	resp.Body.Close()

	const ticks = 60
	st := openTickStream(t, ts.URL, "tg")
	for tk := 0; tk < ticks; tk++ {
		if _, err := st.send(e2eRow(tk, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	st.close()
	ts.Close() // HTTP layer drained (httptest.Close waits for handlers)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}

	f, err := os.Open(filepath.Join(dir, "tg.tkcm"))
	if err != nil {
		t.Fatalf("final checkpoint missing: %v", err)
	}
	defer f.Close()
	eng, err := core.RestoreEngine(f)
	if err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	if eng.Stats.Ticks != ticks {
		t.Fatalf("final checkpoint holds %d ticks, want %d", eng.Stats.Ticks, ticks)
	}
}

// TestBeginDrainTerminatesStream: once a drain starts, an open tick stream
// must end with a terminal error line before applying another row, so every
// acked row is covered by the final checkpoint.
func TestBeginDrainTerminatesStream(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir())
	resp := createTenant(t, ts.URL, "dr", testTenantBody)
	resp.Body.Close()

	st := openTickStream(t, ts.URL, "dr")
	defer st.close()
	const applied = 20
	for tk := 0; tk < applied; tk++ {
		if _, err := st.send(e2eRow(tk, 0)); err != nil {
			t.Fatal(err)
		}
	}
	s.BeginDrain()
	if _, err := st.send(e2eRow(applied, 0)); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("post-drain send: err = %v, want draining error line", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(s.dir, "dr.tkcm"))
	if err != nil {
		t.Fatalf("final checkpoint missing: %v", err)
	}
	defer f.Close()
	eng, err := core.RestoreEngine(f)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats.Ticks != applied {
		t.Fatalf("final checkpoint holds %d ticks, want %d (acked rows must all be checkpointed)", eng.Stats.Ticks, applied)
	}
}

// TestDeleteRemovesCheckpoint: deleting a tenant must be durable — its
// checkpoint file goes too, so a restart cannot resurrect the tenant and its
// data via RestoreFromCheckpoints. Also covers the orphan-file backstop:
// CheckpointAll prunes a stray .tkcm whose tenant is not hosted.
func TestDeleteRemovesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, dir)
	resp := createTenant(t, ts.URL, "doomed", testTenantBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	resp.Body.Close()

	st := openTickStream(t, ts.URL, "doomed")
	for tk := 0; tk < 30; tk++ {
		if _, err := st.send(e2eRow(tk, 0)); err != nil {
			t.Fatal(err)
		}
	}
	st.close()
	cr, err := http.Post(ts.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cr.Body.Close()
	ckFile := filepath.Join(dir, "doomed.tkcm")
	if _, err := os.Stat(ckFile); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	dr, _ := http.NewRequest("DELETE", ts.URL+"/v1/tenants/doomed", nil)
	dresp, err := http.DefaultClient.Do(dr)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	dresp.Body.Close()
	if _, err := os.Stat(ckFile); !os.IsNotExist(err) {
		t.Fatalf("checkpoint survived delete (stat err = %v); tenant would resurrect on restart", err)
	}

	// A fresh process over the same directory must restore nothing.
	sB, _ := newTestServer(t, dir)
	if n, err := sB.RestoreFromCheckpoints(context.Background()); err != nil || n != 0 {
		t.Fatalf("restored %d tenants (err %v), want 0 — deleted tenant resurrected", n, err)
	}

	// Orphan-file backstop: a stray checkpoint with no hosted tenant (e.g. a
	// manual copy, or a removal that failed and was only logged) is pruned by
	// the next CheckpointAll, as is a temp file left by a crash mid-write.
	if err := os.WriteFile(filepath.Join(dir, "ghost.tkcm"), []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ghost.tmp-12345"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A hosted tenant whose id itself contains ".tmp-" must keep its
	// checkpoint: pruning matches temp names, not tenant names.
	if err := sB.m.Create(context.Background(), "dot.tmp-1", testCoreConfig(), []string{"s", "r1", "r2", "r3"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sB.CheckpointAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "dot.tmp-1.tkcm")); err != nil {
		t.Fatalf("checkpoint of tenant with .tmp- in its id was pruned: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ghost.tkcm")); !os.IsNotExist(err) {
		t.Fatalf("orphaned checkpoint not pruned (stat err = %v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ghost.tmp-12345")); !os.IsNotExist(err) {
		t.Fatalf("stale checkpoint temp file not pruned (stat err = %v)", err)
	}
}

// TestAPIValidation covers the non-streaming surface: bad ids, bad bodies,
// unknown tenants, delete, list, health, snapshot download.
func TestAPIValidation(t *testing.T) {
	_, ts := newTestServer(t, "")

	if resp := createTenant(t, ts.URL, "bad..%2f..id!", testTenantBody); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("hostile id: %d", resp.StatusCode)
	}
	if resp := createTenant(t, ts.URL, "x", `{"streams": []}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty streams: %d", resp.StatusCode)
	}
	if resp := createTenant(t, ts.URL, "x", `{"streams": ["a","b"], "config": {"profiler": "warp"}}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad profiler: %d", resp.StatusCode)
	}
	if resp := createTenant(t, ts.URL, "x", `{"streams": ["a","b","c"], "config": {"k": 2, "pattern_length": 50, "window_length": 10}}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid core config: %d", resp.StatusCode)
	}

	resp := createTenant(t, ts.URL, "ok", testTenantBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	resp.Body.Close()
	if resp := createTenant(t, ts.URL, "ok", testTenantBody); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate create: %d", resp.StatusCode)
	}

	lr, err := http.Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	var listed struct {
		Tenants []shard.TenantInfo `json:"tenants"`
	}
	if err := json.NewDecoder(lr.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if len(listed.Tenants) != 1 || listed.Tenants[0].ID != "ok" {
		t.Errorf("list: %+v", listed)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", hr.StatusCode)
	}
	hr.Body.Close()

	// Snapshot download of a live tenant round-trips through RestoreEngine.
	sr, err := http.Get(ts.URL + "/v1/tenants/ok/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if sr.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d", sr.StatusCode)
	}
	if _, err := core.RestoreEngine(sr.Body); err != nil {
		t.Errorf("downloaded snapshot unreadable: %v", err)
	}
	sr.Body.Close()

	// Ticks against an unknown tenant must 404 before any stream output.
	tr, err := http.Post(ts.URL+"/v1/tenants/ghost/ticks", "application/x-ndjson",
		strings.NewReader(`{"values": [1, 2, 3, 4]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.StatusCode != http.StatusNotFound {
		t.Errorf("ticks for unknown tenant: %d", tr.StatusCode)
	}
	tr.Body.Close()

	// A row the engine rejects (wrong width) terminates with an error line.
	tr2, err := http.Post(ts.URL+"/v1/tenants/ok/ticks", "application/x-ndjson",
		strings.NewReader(`{"values": [1, 2]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(tr2.Body)
	tr2.Body.Close()
	if !bytes.Contains(b, []byte("error")) {
		t.Errorf("wrong-width row: got %q", b)
	}

	dr, err := http.NewRequest("DELETE", ts.URL+"/v1/tenants/ok", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(dr)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("delete: %d", dresp.StatusCode)
	}
	dresp.Body.Close()
	if resp := createTenant(t, ts.URL, "ok", testTenantBody); resp.StatusCode != http.StatusCreated {
		t.Errorf("recreate after delete: %d", resp.StatusCode)
	}
}

// sendBatch writes one batch line (NaN → null, seq numbering the first row)
// and returns the per-row ack lines the server answers with.
func (st *tickStream) sendBatch(seq uint64, rows [][]float64) ([]tickOut, error) {
	in := tickIn{Seq: seq, Rows: make([][]*float64, len(rows))}
	for j, row := range rows {
		vals := make([]*float64, len(row))
		for i := range row {
			if !math.IsNaN(row[i]) {
				v := row[i]
				vals[i] = &v
			}
		}
		in.Rows[j] = vals
	}
	if err := st.enc.Encode(in); err != nil {
		return nil, err
	}
	if st.resp == nil {
		select {
		case st.resp = <-st.rc:
		case err := <-st.ec:
			return nil, err
		case <-time.After(10 * time.Second):
			st.t.Fatal("timeout waiting for response headers")
		}
		st.sc = bufio.NewScanner(st.resp.Body)
		st.sc.Buffer(make([]byte, 1<<20), 1<<20)
	}
	outs := make([]tickOut, 0, len(rows))
	for range rows {
		if !st.sc.Scan() {
			if err := st.sc.Err(); err != nil {
				return outs, err
			}
			return outs, io.EOF
		}
		line := st.sc.Bytes()
		var e apiError
		if json.Unmarshal(line, &e) == nil && e.Error != "" {
			return outs, fmt.Errorf("server error line: %s", e.Error)
		}
		var out tickOut
		if err := json.Unmarshal(line, &out); err != nil {
			return outs, fmt.Errorf("bad line %q: %w", line, err)
		}
		outs = append(outs, out)
	}
	return outs, nil
}

// TestBatchTickLines: a tenant fed batch lines must stream back exactly the
// acks of a tenant fed the same rows one line at a time; replayed batches
// ack as duplicates; and the batch metrics count rows and sizes.
func TestBatchTickLines(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	for _, id := range []string{"bat", "row"} {
		resp := createTenant(t, ts.URL, id, testTenantBody)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d", id, resp.StatusCode)
		}
		resp.Body.Close()
	}
	stBat := openTickStream(t, ts.URL, "bat")
	stRow := openTickStream(t, ts.URL, "row")
	defer stBat.close()
	defer stRow.close()

	const n, batch = 96, 12
	all := make([][]float64, n)
	for tk := range all {
		all[tk] = e2eRow(tk, 0)
	}
	for a := 0; a < n; a += batch {
		outs, err := stBat.sendBatch(uint64(a+1), all[a:a+batch])
		if err != nil {
			t.Fatalf("batch %d: %v", a, err)
		}
		if len(outs) != batch {
			t.Fatalf("batch %d: %d acks, want %d", a, len(outs), batch)
		}
		for r, got := range outs {
			want, err := stRow.send(all[a+r])
			if err != nil {
				t.Fatalf("rowwise %d: %v", a+r, err)
			}
			if got.Duplicate || got.Tick != want.Tick || got.Seq != want.Seq {
				t.Fatalf("tick %d: batch ack %+v, rowwise %+v", a+r, got, want)
			}
			if len(got.Values) != len(want.Values) {
				t.Fatalf("tick %d: %d values vs %d", a+r, len(got.Values), len(want.Values))
			}
			for i := range want.Values {
				if got.Values[i] != want.Values[i] {
					t.Fatalf("tick %d stream %d: batch %v, rowwise %v", a+r, i, got.Values[i], want.Values[i])
				}
			}
			if fmt.Sprint(got.Imputed) != fmt.Sprint(want.Imputed) {
				t.Fatalf("tick %d: imputed %v vs %v", a+r, got.Imputed, want.Imputed)
			}
		}
	}

	// Replaying an already-applied batch acks every row as a duplicate.
	outs, err := stBat.sendBatch(1, all[:batch])
	if err != nil {
		t.Fatal(err)
	}
	for r, got := range outs {
		if !got.Duplicate || got.Seq != uint64(r+1) || len(got.Values) != 0 {
			t.Fatalf("replayed row %d: %+v", r, got)
		}
	}

	// Metrics: 9 batches of 12 rows (8 live + 1 replayed) were observed.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"tkcm_ticks_batched_total 108",
		`tkcm_tick_batch_size_bucket{le="16"} 9`,
		`tkcm_tick_batch_size_bucket{le="+Inf"} 9`,
		"tkcm_tick_batch_size_sum 108",
		"tkcm_tick_batch_size_count 9",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	// A line setting both values and rows is refused.
	stBad := openTickStream(t, ts.URL, "bat")
	defer stBad.close()
	if err := stBad.enc.Encode(map[string]any{"values": []float64{1, 2, 3, 4}, "rows": [][]float64{{1, 2, 3, 4}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := stBad.sendBatch(109, all[:1]); err == nil || !strings.Contains(err.Error(), "both values and rows") {
		t.Fatalf("mixed line: err = %v, want refusal", err)
	}
}
