package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"time"

	"tkcm/internal/shard"
)

// Rebalancer policy constants. The rebalancer is deliberately conservative:
// it moves at most one tenant per interval, and only when one shard is
// clearly hotter than the fleet — migration is cheap but not free (the
// tenant's requests park for one snapshot+restore), so oscillation costs
// more than mild imbalance.
const (
	// rebalanceRatio is how far above the mean per-shard tick rate the
	// hottest shard must sit before a move is considered.
	rebalanceRatio = 1.25
	// rebalanceMinGap is the minimum hot−cold rate gap (ticks per interval)
	// worth acting on; below it the imbalance is noise.
	rebalanceMinGap = 64
)

// MigrateTenant moves tenant id onto shard dst, serialized with checkpoint
// activity: holding ckMu guarantees no CheckpointAll can run while the
// tenant is invisible in transit — its listing would otherwise miss the
// tenant and prune the checkpoint and write-ahead log that make the
// migration crash-safe. Returns the source shard.
func (s *Server) MigrateTenant(ctx context.Context, id string, dst int) (int, error) {
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	return s.m.Migrate(ctx, id, dst)
}

// migrateRequest is the POST /v1/tenants/{id}/migrate body. Shard is a
// pointer so "shard": 0 and a missing field are distinguishable.
type migrateRequest struct {
	Shard *int `json:"shard"`
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req migrateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if req.Shard == nil {
		writeError(w, http.StatusBadRequest, "body must carry the destination: {\"shard\": n}")
		return
	}
	// The move should complete even if the client hangs up mid-way: a
	// half-cancelled migration rolls back cleanly, but finishing it is
	// cheaper and leaves no work undone.
	src, err := s.MigrateTenant(context.WithoutCancel(r.Context()), id, *req.Shard)
	if err != nil {
		// statusFor's default 400 is for malformed input; a migration can
		// also fail on server-side faults (snapshot encode, restore, WAL,
		// routing-table I/O), which must report as 500 or the caller will
		// treat an out-of-disk condition as its own bad request.
		status := statusFor(err)
		if status == http.StatusBadRequest && !errors.Is(err, shard.ErrBadShard) && !errors.Is(err, shard.ErrBadTable) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, "migrating tenant %q: %v", id, err)
		return
	}
	s.log.Info("tenant migrated", "tenant", id, "from", src, "to", *req.Shard)
	writeJSON(w, http.StatusOK, map[string]any{"tenant": id, "from": src, "to": *req.Shard})
}

// routingDoc is the GET /v1/cluster/routing response.
type routingDoc struct {
	shard.RoutingInfo
	// MigrationsTotal counts completed tenant migrations since start.
	MigrationsTotal uint64 `json:"migrations_total"`
	// Imbalance is the rebalancer's last per-shard tick-rate imbalance
	// sample (max/mean; 1.0 = balanced, 0 = no traffic observed yet).
	Imbalance float64 `json:"imbalance"`
}

func (s *Server) handleRouting(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, routingDoc{
		RoutingInfo:     s.m.RoutingInfo(),
		MigrationsTotal: s.m.Migrations(),
		Imbalance:       s.imbalanceValue(),
	})
}

// imbalanceValue reads the last sampled imbalance gauge.
func (s *Server) imbalanceValue() float64 {
	return math.Float64frombits(s.imbalance.Load())
}

// tenantRate is one tenant's tick rate over the last rebalance interval,
// with the shard currently hosting it.
type tenantRate struct {
	id    string
	shard int
	rate  float64
}

// planRebalance decides the next move from per-shard tick rates and
// per-tenant rates: when the hottest shard runs at least rebalanceRatio
// above the mean and the hot−cold gap is worth acting on, it picks the
// tenant on the hot shard whose rate is closest to half the gap — the move
// that most evens the pair without overshooting — destined for the coldest
// shard. Pure function, unit-tested directly.
func planRebalance(shardRates []float64, tenants []tenantRate) (id string, dst int, ok bool) {
	if len(shardRates) < 2 {
		return "", 0, false
	}
	hot, cold := 0, 0
	var total float64
	for i, r := range shardRates {
		total += r
		if r > shardRates[hot] {
			hot = i
		}
		if r < shardRates[cold] {
			cold = i
		}
	}
	mean := total / float64(len(shardRates))
	gap := shardRates[hot] - shardRates[cold]
	if mean <= 0 || shardRates[hot] < rebalanceRatio*mean || gap < rebalanceMinGap {
		return "", 0, false
	}
	best := -1
	target := gap / 2
	for i, t := range tenants {
		if t.shard != hot || t.rate <= 0 || t.rate >= gap {
			// Moving a tenant hotter than the whole gap would just swap
			// which shard is overloaded.
			continue
		}
		if best < 0 || math.Abs(t.rate-target) < math.Abs(tenants[best].rate-target) {
			best = i
		}
	}
	if best < 0 {
		return "", 0, false
	}
	return tenants[best].id, cold, true
}

// rebalanceOnce samples per-shard and per-tenant tick rates against the
// previous sample, publishes the imbalance gauge, and executes at most one
// planned migration. The first call only establishes the baseline.
func (s *Server) rebalanceOnce(ctx context.Context) {
	stats := s.m.Stats()
	infos, err := s.m.Tenants(ctx)
	if err != nil {
		s.log.Error("rebalance: listing tenants", "err", err)
		return
	}
	shardTicks := make([]uint64, len(stats))
	for _, st := range stats {
		shardTicks[st.Shard] = st.Ticks
	}
	tenantTicks := make(map[string]uint64, len(infos))
	for _, info := range infos {
		tenantTicks[info.ID] = info.Seq
	}
	prevShards, prevTenants := s.rbShards, s.rbTenants
	s.rbShards, s.rbTenants = shardTicks, tenantTicks
	if prevShards == nil || len(prevShards) != len(shardTicks) {
		return // first sample (or shard count changed): baseline only
	}

	rates := make([]float64, len(shardTicks))
	var total, max float64
	for i := range shardTicks {
		rates[i] = float64(shardTicks[i] - prevShards[i])
		total += rates[i]
		if rates[i] > max {
			max = rates[i]
		}
	}
	imbalance := 0.0
	if total > 0 {
		imbalance = max / (total / float64(len(rates)))
	}
	s.imbalance.Store(math.Float64bits(imbalance))

	tenants := make([]tenantRate, 0, len(infos))
	for _, info := range infos {
		prev, seen := prevTenants[info.ID]
		if !seen {
			continue // a tenant created this interval has no rate yet
		}
		tenants = append(tenants, tenantRate{id: info.ID, shard: info.Shard, rate: float64(info.Seq - prev)})
	}
	id, dst, ok := planRebalance(rates, tenants)
	if !ok {
		return
	}
	s.log.Info("rebalancing hot shard", "tenant", id, "to", dst, "imbalance", imbalance)
	if _, err := s.MigrateTenant(ctx, id, dst); err != nil {
		s.log.Error("rebalance migration", "tenant", id, "to", dst, "err", err)
	}
}

// StartRebalancer launches the periodic load-aware rebalancer (no-op when
// the server was built without a rebalance interval). It stops with the
// checkpoint loop during Shutdown.
func (s *Server) StartRebalancer() {
	if s.rbInterval <= 0 {
		return
	}
	s.ckWG.Add(1)
	go func() {
		defer s.ckWG.Done()
		t := time.NewTicker(s.rbInterval)
		defer t.Stop()
		for {
			select {
			case <-s.stopCk:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), s.rbInterval)
				s.rebalanceOnce(ctx)
				cancel()
			}
		}
	}()
}
