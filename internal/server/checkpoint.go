package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tkcm/internal/core"
	"tkcm/internal/shard"
)

// checkpointExt is the on-disk suffix of tenant snapshots: <dir>/<id>.tkcm.
const checkpointExt = ".tkcm"

// CheckpointAll snapshots every hosted tenant into the checkpoint directory,
// one atomically-renamed file per tenant. It returns how many tenants were
// written; on partial failure it keeps going and returns the first error
// alongside the successful count.
func (s *Server) CheckpointAll(ctx context.Context) (int, error) {
	if s.dir == "" {
		return 0, errors.New("server: no checkpoint directory configured")
	}
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return 0, fmt.Errorf("server: checkpoint dir: %w", err)
	}
	infos, err := s.m.Tenants(ctx)
	if err != nil {
		return 0, err
	}
	var firstErr error
	n := 0
	for _, info := range infos {
		// A parked tenant's engine was evicted: its checkpoint plus WAL tail
		// already hold everything it has ever acked, frozen at the sequence it
		// parked with. Snapshotting it would force a hydration just to rewrite
		// bytes that cannot have changed — skip it (prune below still sees it
		// as hosted, so its files stay).
		if !info.Resident {
			continue
		}
		if err := s.checkpointTenant(ctx, info.ID); err != nil {
			s.checkpointErrs.Add(1)
			s.log.Error("checkpoint failed", "tenant", info.ID, "err", err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.checkpoints.Add(1)
		n++
	}
	s.pruneCheckpoints(infos)
	return n, firstErr
}

// pruneCheckpoints removes snapshot files whose tenant is no longer hosted —
// a backstop against stray files (manual copies, a removal that failed and
// was only logged) feeding RestoreFromCheckpoints. It cannot repair a crash
// that lands between the engine delete and the file removal: that delete was
// never acknowledged, and the restart legitimately re-hosts the tenant.
// Safe under ckMu: only CheckpointAll writes these files, and a tenant
// created after the listing cannot have one yet.
func (s *Server) pruneCheckpoints(infos []shard.TenantInfo) {
	hosted := make(map[string]bool, len(infos))
	for _, info := range infos {
		hosted[info.ID] = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		// Real checkpoints first: ".tmp-" may legally appear inside a tenant
		// id, but checkpointTenant's temp names end in random digits, never
		// in the .tkcm suffix.
		if strings.HasSuffix(name, checkpointExt) {
			if id := strings.TrimSuffix(name, checkpointExt); !hosted[id] {
				if rerr := os.Remove(filepath.Join(s.dir, name)); rerr == nil {
					s.log.Info("pruned checkpoint of unhosted tenant", "tenant", id)
				}
			}
			continue
		}
		// Temp files from a checkpointTenant that crashed mid-write are stale
		// by construction here: only CheckpointAll creates them, and it holds
		// ckMu.
		if strings.Contains(name, ".tmp-") {
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		// Routing-table temp files ("routing-*.tmp") are reaped only once
		// they are old: unlike checkpoint temps, not every table save is
		// serialized with CheckpointAll by ckMu (Manager.Delete flushes the
		// table after its shard op, outside any server lock), so a fresh
		// temp may belong to a save in flight — unlinking it would make the
		// rename fail and silently drop the save. A live save completes in
		// milliseconds; an hour-old temp is a crash leftover.
		if strings.HasPrefix(name, "routing-") && strings.HasSuffix(name, ".tmp") {
			if info, err := ent.Info(); err == nil && time.Since(info.ModTime()) > time.Hour {
				os.Remove(filepath.Join(s.dir, name))
			}
		}
	}
	// Same backstop for write-ahead logs: a log whose tenant is no longer
	// hosted would only warn forever at the next restore.
	if s.wal != nil {
		ids, err := s.wal.Tenants()
		if err != nil {
			return
		}
		for _, id := range ids {
			if !hosted[id] {
				if err := s.wal.Remove(id); err == nil {
					s.log.Info("pruned write-ahead log of unhosted tenant", "tenant", id)
				}
			}
		}
	}
}

// removeCheckpoint deletes tenant id's snapshot file so the tenant stays
// deleted across restarts. Callers must hold ckMu (alongside the engine
// delete) to keep an in-flight CheckpointAll from re-creating the file. A
// missing file (never checkpointed, or no checkpoint directory) is not an
// error.
func (s *Server) removeCheckpoint(id string) error {
	if s.dir == "" {
		return nil
	}
	err := os.Remove(filepath.Join(s.dir, id+checkpointExt))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// checkpointTenant writes one tenant's snapshot via temp file + rename, so a
// crash mid-write never clobbers the previous good checkpoint. Once the
// rename lands, the tenant's write-ahead log is truncated up to the sequence
// number the snapshot covers: recovery never needs those records again.
func (s *Server) checkpointTenant(ctx context.Context, id string) error {
	f, err := os.CreateTemp(s.dir, id+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	seq, err := s.m.Snapshot(ctx, id, f)
	if err == nil {
		// Flush to stable storage before the rename: without the fsync a
		// power loss could materialize the rename but not the data, tearing
		// the previous good checkpoint.
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, id+checkpointExt)); err != nil {
		return err
	}
	// Make the rename itself durable before reclaiming the log it
	// supersedes: without the directory fsync a power loss could persist
	// the truncation's unlinks but not the rename, leaving the OLD
	// checkpoint on disk with the records between the two checkpoints
	// already deleted.
	if err := syncDir(s.dir); err != nil {
		return err
	}
	if s.wal != nil {
		// Best-effort: a failed truncation costs disk space, not
		// correctness — replay skips records the checkpoint already covers.
		if err := s.wal.Truncate(id, seq); err != nil {
			s.log.Warn("wal truncation after checkpoint", "tenant", id, "seq", seq, "err", err)
		}
	}
	return nil
}

// syncDir fsyncs a directory, making renames and unlinks inside it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// RestoreFromCheckpoints scans the checkpoint directory and re-hosts every
// saved tenant (file <id>.tkcm → tenant id), replaying its write-ahead log
// on top of the snapshot when a WAL is configured — together they restore
// every acknowledged tick, including everything since the last checkpoint.
// Returns how many tenants were restored. A tenant that already exists
// (e.g. hot-restart overlap) is skipped; an unreadable snapshot or corrupt
// log aborts with an error, since silently serving a fresh engine under a
// tenant id that has durable state would be data loss.
func (s *Server) RestoreFromCheckpoints(ctx context.Context) (int, error) {
	if s.dir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.dir)
	if errors.Is(err, os.ErrNotExist) {
		entries = nil
	} else if err != nil {
		return 0, fmt.Errorf("server: reading checkpoint dir: %w", err)
	}
	n := 0
	restored := make(map[string]bool)
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, checkpointExt) {
			continue
		}
		id := strings.TrimSuffix(name, checkpointExt)
		if !tenantIDPattern.MatchString(id) {
			s.log.Warn("skipping checkpoint with invalid tenant id", "file", name)
			continue
		}
		eng, err := s.restoreOne(filepath.Join(s.dir, name))
		if err != nil {
			return n, fmt.Errorf("server: restoring tenant %q: %w", id, err)
		}
		replayed, err := s.replayWAL(id, eng)
		if err != nil {
			eng.Close()
			return n, fmt.Errorf("server: replaying WAL of tenant %q: %w", id, err)
		}
		if err := s.m.Attach(ctx, id, eng); err != nil {
			if errors.Is(err, shard.ErrTenantExists) {
				eng.Close()
				continue
			}
			eng.Close()
			return n, err
		}
		restored[id] = true
		s.log.Info("tenant restored", "tenant", id, "ticks", eng.Stats.Ticks, "wal_replayed", replayed)
		n++
	}
	// A log directory without a checkpoint should be impossible (tenant
	// creation writes the base image before acking) — if one exists anyway,
	// refuse to silently discard it but don't host a tenant we have no
	// config for.
	if s.wal != nil {
		ids, err := s.wal.Tenants()
		if err != nil {
			return n, err
		}
		for _, id := range ids {
			if !restored[id] {
				s.log.Warn("write-ahead log has no matching checkpoint; not restored", "tenant", id)
			}
		}
	}
	return n, nil
}

// replayWAL feeds every logged row newer than the restored engine's
// sequence number back through the engine. Rows were validated before they
// were logged, so a replay error means real corruption, not a bad row.
func (s *Server) replayWAL(id string, eng *core.Engine) (uint64, error) {
	if s.wal == nil {
		return 0, nil
	}
	var replayed uint64
	_, err := s.wal.ReplayTenant(id, eng.Seq()+1, func(seq uint64, values []float64) error {
		if _, _, err := eng.Tick(values); err != nil {
			return fmt.Errorf("row %d: %w", seq, err)
		}
		replayed++
		return nil
	})
	return replayed, err
}

func (s *Server) restoreOne(path string) (*core.Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.RestoreEngine(f)
}

// CheckpointHydrator adapts a checkpoint directory into the restore hook the
// residency tier needs (shard.Options.Hydrate): it rebuilds a parked tenant's
// engine from <dir>/<id>.tkcm, memory-mapping the window region where the
// platform and snapshot layout allow so hydration cost is page faults, not an
// up-front read of the whole image. The shard manager replays the WAL tail on
// top and enforces the parked sequence number itself.
//
// It is a free function, not a method: the hook must exist before the shard
// manager does, and the manager before the Server — pass the same directory
// here and in Options.CheckpointDir.
func CheckpointHydrator(dir string) func(id string) (*core.Engine, error) {
	return func(id string) (*core.Engine, error) {
		return core.RestoreEngineFile(filepath.Join(dir, id+checkpointExt))
	}
}

// CheckpointParkable is the eviction veto that pairs with CheckpointHydrator
// (shard.Options.Parkable): a tenant may only park once its checkpoint file
// exists. It closes the create-time race — a tenant is hosted the moment
// Manager.Create returns, but its base image lands on disk a beat later; an
// eviction in that window would park a tenant hydration cannot rebuild.
func CheckpointParkable(dir string) func(id string) bool {
	return func(id string) bool {
		_, err := os.Stat(filepath.Join(dir, id+checkpointExt))
		return err == nil
	}
}

// StartCheckpointLoop launches the periodic checkpointer (no-op without a
// checkpoint directory). Stop it via Shutdown.
func (s *Server) StartCheckpointLoop() {
	if s.dir == "" {
		return
	}
	s.ckWG.Add(1)
	go func() {
		defer s.ckWG.Done()
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stopCk:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), s.interval)
				n, err := s.CheckpointAll(ctx)
				cancel()
				if err != nil {
					s.log.Error("periodic checkpoint", "written", n, "err", err)
				} else {
					s.log.Debug("periodic checkpoint", "written", n)
				}
			}
		}
	}()
}

// BeginDrain tells every long-lived tick stream to terminate before its
// next row (with an NDJSON error line instructing the client to replay from
// its last acked tick). Call it before http.Server.Shutdown so streaming
// connections end promptly and every acked row precedes the final
// checkpoint. Idempotent.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() { close(s.draining) })
}

// Shutdown finishes the serving subsystem: it begins the drain (if
// BeginDrain wasn't already called), stops the checkpoint loop, takes a
// final checkpoint of every tenant (call it after the HTTP server has
// drained, so in-flight ticks are already applied), and closes the shard
// manager, which drains its queues and closes every engine. Idempotent:
// later calls return the first call's outcome. Pass a live ctx — an
// already-expired one would make the final checkpoint fail.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		s.BeginDrain()
		s.StopFollower()
		s.stopOnce.Do(func() { close(s.stopCk) })
		s.ckWG.Wait()
		if s.dir != "" {
			n, err := s.CheckpointAll(ctx)
			if err != nil {
				s.log.Error("final checkpoint", "written", n, "err", err)
				s.shutErr = err
			} else {
				s.log.Info("final checkpoint", "written", n)
			}
		}
		s.m.Close()
	})
	return s.shutErr
}
