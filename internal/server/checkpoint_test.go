package server

import (
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tkcm/internal/shard"
	"tkcm/internal/wal"
)

// newWALTestServer builds a server with both persistence legs over dir.
func newWALTestServer(t *testing.T, dir string) (*Server, *shard.Manager, *wal.Manager) {
	t.Helper()
	wm := wal.NewManager(filepath.Join(dir, "wal"), wal.Options{SyncInterval: time.Millisecond})
	m := shard.New(shard.Options{Shards: 2, QueueLen: 16, WAL: wm})
	s := New(Options{
		Manager:       m,
		CheckpointDir: filepath.Join(dir, "ck"),
		WAL:           wm,
		Log:           quietLog(),
	})
	t.Cleanup(func() {
		m.Close()
		wm.Close()
	})
	return s, m, wm
}

// TestPruneRemovesOrphanArtifacts covers the prune backstops one by one:
// a checkpoint with no tenant, a stale checkpoint temp file, a stale
// routing-table temp file, and a write-ahead log with no tenant all vanish
// on the next CheckpointAll; the routing table itself and files of hosted
// tenants stay.
func TestPruneRemovesOrphanArtifacts(t *testing.T) {
	dir := t.TempDir()
	s, m, wm := newWALTestServer(t, dir)
	ctx := context.Background()
	ckDir := filepath.Join(dir, "ck")

	if err := m.Create(ctx, "alive", testCoreConfig(), []string{"s", "r1", "r2", "r3"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CheckpointAll(ctx); err != nil {
		t.Fatal(err)
	}

	// Plant every species of orphan.
	orphans := []string{
		"ghost.tkcm",        // checkpoint of an unhosted tenant
		"alive.tmp-12345",   // crashed checkpointTenant temp
		"routing-99999.tmp", // crashed routing-table save temp (old)
	}
	for _, name := range orphans {
		if err := os.WriteFile(filepath.Join(ckDir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Routing temps are reaped by age (a fresh one may be a save in
	// flight): age the orphan past the threshold, and plant a fresh one
	// that must survive.
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(filepath.Join(ckDir, "routing-99999.tmp"), old, old); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ckDir, "routing-11111.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The routing table file must survive pruning (it is not a checkpoint).
	routingPath := filepath.Join(ckDir, "routing.tkcmrt")
	if err := os.WriteFile(routingPath, []byte("placeholder"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An orphan WAL directory: a tenant with logs but no checkpoint/engine.
	if _, err := wm.Open("wal-ghost"); err != nil {
		t.Fatal(err)
	}
	if _, err := wm.Append("wal-ghost", 1, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := wm.Get("wal-ghost").Sync(); err != nil {
		t.Fatal(err)
	}
	// Close the manager's handle so prune's Remove can delete the directory
	// out from under nobody.
	if err := wm.Remove("wal-ghost"); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "wal", "wal-ghost"), 0o755); err != nil {
		t.Fatal(err)
	}

	if _, err := s.CheckpointAll(ctx); err != nil {
		t.Fatal(err)
	}

	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(ckDir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("orphan %s survived pruning (err=%v)", name, err)
		}
	}
	if _, err := os.Stat(routingPath); err != nil {
		t.Errorf("routing table was pruned: %v", err)
	}
	if _, err := os.Stat(filepath.Join(ckDir, "routing-11111.tmp")); err != nil {
		t.Errorf("fresh routing temp (possible save in flight) was pruned: %v", err)
	}
	if _, err := os.Stat(filepath.Join(ckDir, "alive.tkcm")); err != nil {
		t.Errorf("live checkpoint was pruned: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal", "wal-ghost")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("orphan WAL directory survived pruning (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal", "alive")); err != nil {
		t.Errorf("live WAL was pruned: %v", err)
	}
}

// TestCheckpointAllCountsPartialFailure: one tenant's snapshot failing must
// not stop the others, and the error counter must tick.
func TestCheckpointAllCountsPartialFailure(t *testing.T) {
	dir := t.TempDir()
	m := shard.New(shard.Options{Shards: 2, QueueLen: 16})
	defer m.Close()
	s := New(Options{Manager: m, CheckpointDir: filepath.Join(dir, "nested", "ck"), Log: quietLog()})
	ctx := context.Background()
	for _, id := range []string{"p1", "p2"} {
		if err := m.Create(ctx, id, testCoreConfig(), []string{"s", "r1", "r2", "r3"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// First checkpoint succeeds and creates the directory.
	if n, err := s.CheckpointAll(ctx); err != nil || n != 2 {
		t.Fatalf("checkpoint: n=%d err=%v", n, err)
	}
	if got := s.checkpoints.Load(); got != 2 {
		t.Fatalf("checkpoints counter %d, want 2", got)
	}

	// Sabotage: delete one tenant's engine out from under the listing by
	// deleting it between the listing and its snapshot — instead, simulate
	// failure more directly by making the checkpoint dir read-only.
	if err := os.Chmod(filepath.Join(dir, "nested", "ck"), 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(filepath.Join(dir, "nested", "ck"), 0o755)
	n, err := s.CheckpointAll(ctx)
	if err == nil {
		t.Skip("running as privileged user; read-only dir does not fail writes")
	}
	if n != 0 {
		t.Fatalf("read-only dir wrote %d checkpoints", n)
	}
	if got := s.checkpointErrs.Load(); got == 0 {
		t.Fatal("checkpoint error counter did not tick")
	}
}

// TestCheckpointAllWithoutDirErrors covers the unconfigured-persistence
// guard on both the method and the endpoint.
func TestCheckpointAllWithoutDirErrors(t *testing.T) {
	m := shard.New(shard.Options{Shards: 1})
	defer m.Close()
	s := New(Options{Manager: m, Log: quietLog()})
	if _, err := s.CheckpointAll(context.Background()); err == nil {
		t.Fatal("CheckpointAll without a directory succeeded")
	}
	// StartCheckpointLoop and StartRebalancer are no-ops without config —
	// Shutdown must still complete cleanly.
	s.StartCheckpointLoop()
	s.StartRebalancer()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreSkipsInvalidCheckpointNames: files in the checkpoint directory
// whose names cannot be tenant ids (path traversal, pattern violations) are
// skipped with a warning, not restored, not fatal.
func TestRestoreSkipsInvalidCheckpointNames(t *testing.T) {
	dir := t.TempDir()
	ckDir := filepath.Join(dir, "ck")
	if err := os.MkdirAll(ckDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Legal tenant id characters but an illegal leading dash.
	if err := os.WriteFile(filepath.Join(ckDir, "-bad.tkcm"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := shard.New(shard.Options{Shards: 1})
	defer m.Close()
	s := New(Options{Manager: m, CheckpointDir: ckDir, Log: quietLog()})
	n, err := s.RestoreFromCheckpoints(context.Background())
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if n != 0 {
		t.Fatalf("restored %d tenants from invalid files", n)
	}
}

// TestRestoreUnreadableCheckpointFails: a corrupt snapshot for a valid
// tenant id must abort the restore loudly — serving a fresh engine under an
// id with durable state would be silent data loss.
func TestRestoreUnreadableCheckpointFails(t *testing.T) {
	dir := t.TempDir()
	ckDir := filepath.Join(dir, "ck")
	if err := os.MkdirAll(ckDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ckDir, "valid-id.tkcm"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := shard.New(shard.Options{Shards: 1})
	defer m.Close()
	s := New(Options{Manager: m, CheckpointDir: ckDir, Log: quietLog()})
	if _, err := s.RestoreFromCheckpoints(context.Background()); err == nil {
		t.Fatal("restore of a corrupt checkpoint succeeded")
	}
}

// TestWALWithoutCheckpointNotRestored: a WAL directory whose tenant has no
// checkpoint is warned about and left alone — the server cannot invent the
// tenant's config, but it must not delete evidence either (prune only runs
// under CheckpointAll, where the operator has live state).
func TestWALWithoutCheckpointNotRestored(t *testing.T) {
	dir := t.TempDir()
	s, _, wm := newWALTestServer(t, dir)
	if _, err := wm.Open("orphan"); err != nil {
		t.Fatal(err)
	}
	if err := wm.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := s.RestoreFromCheckpoints(context.Background())
	if err != nil {
		t.Fatalf("restore with orphan WAL: %v", err)
	}
	if n != 0 {
		t.Fatalf("restored %d tenants, want 0", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal", "orphan")); err != nil {
		t.Fatalf("restore deleted the orphan WAL: %v", err)
	}
}

// TestDeleteTenantPrunesRoutingAssignment: deleting a migrated tenant drops
// its explicit routing entry, so a future tenant under the same id follows
// the default hash route.
func TestDeleteTenantPrunesRoutingAssignment(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir())
	defer s.m.Close()
	defer ts.Close()
	ctx := context.Background()
	resp := createTenant(t, ts.URL, "dr", testTenantBody)
	resp.Body.Close()
	info, err := s.m.Info(ctx, "dr")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.m.Migrate(ctx, "dr", (info.Shard+1)%3); err != nil {
		t.Fatal(err)
	}
	if len(s.m.RoutingInfo().Assignments) != 1 {
		t.Fatal("migration did not record an assignment")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/tenants/dr", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	if n := len(s.m.RoutingInfo().Assignments); n != 0 {
		t.Fatalf("delete left %d routing assignments", n)
	}
}

// TestPruneSkipsTmpDashTenantIDs pins the suffix-first prune ordering: a
// hosted tenant whose id contains ".tmp-" keeps its checkpoint.
func TestPruneSkipsTmpDashTenantIDs(t *testing.T) {
	dir := t.TempDir()
	m := shard.New(shard.Options{Shards: 2, QueueLen: 16})
	defer m.Close()
	ckDir := filepath.Join(dir, "ck")
	s := New(Options{Manager: m, CheckpointDir: ckDir, Log: quietLog()})
	ctx := context.Background()
	const oddID = "x.tmp-tenant"
	if err := m.Create(ctx, oddID, testCoreConfig(), []string{"s", "r1", "r2", "r3"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CheckpointAll(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CheckpointAll(ctx); err != nil { // second run exercises prune against the existing file
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(ckDir, oddID+checkpointExt)); err != nil {
		t.Fatalf("checkpoint of %q was pruned: %v", oddID, err)
	}
	if !strings.HasSuffix(oddID+checkpointExt, checkpointExt) {
		t.Fatal("sanity")
	}
}
