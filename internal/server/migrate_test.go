package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tkcm/client"
	"tkcm/internal/core"
	"tkcm/internal/shard"
)

// postMigrate drives the migration endpoint raw and returns the response.
func postMigrate(t *testing.T, base, id string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/tenants/"+id+"/migrate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestMigrateEndpointAndRoutingDoc(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir())
	defer s.m.Close()

	resp := createTenant(t, ts.URL, "me1", testTenantBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	c := client.New(ts.URL)
	ctx := context.Background()
	before, err := c.Routing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before.Shards != 3 || before.DefaultMod != 3 {
		t.Fatalf("routing doc before: %+v", before)
	}

	info, err := c.GetTenant(ctx, "me1")
	if err != nil {
		t.Fatal(err)
	}
	dst := (info.Shard + 1) % 3
	res, err := c.MigrateTenant(ctx, "me1", dst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenant != "me1" || res.From != info.Shard || res.To != dst {
		t.Fatalf("migrate result %+v, want from %d to %d", res, info.Shard, dst)
	}
	after, err := c.GetTenant(ctx, "me1")
	if err != nil {
		t.Fatal(err)
	}
	if after.Shard != dst {
		t.Fatalf("tenant on shard %d after migration to %d", after.Shard, dst)
	}
	doc, err := c.Routing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version <= before.Version {
		t.Fatalf("routing version %d did not advance past %d", doc.Version, before.Version)
	}
	if doc.MigrationsTotal != 1 {
		t.Fatalf("migrations_total %d, want 1", doc.MigrationsTotal)
	}
	if got, ok := doc.Assignments["me1"]; !ok || got != dst {
		t.Fatalf("assignments %v, want me1→%d", doc.Assignments, dst)
	}

	// The metrics exposition carries the migration counter and the gauge.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "tkcm_shard_migrations_total 1") {
		t.Fatal("metrics missing tkcm_shard_migrations_total")
	}
	if !strings.Contains(metrics, "tkcm_shard_imbalance") {
		t.Fatal("metrics missing tkcm_shard_imbalance")
	}

	// Error surface: unknown tenant, bad shard, missing body field.
	for _, tc := range []struct {
		id, body string
		status   int
	}{
		{"ghost", `{"shard": 1}`, http.StatusNotFound},
		{"me1", `{"shard": 99}`, http.StatusBadRequest},
		{"me1", `{}`, http.StatusBadRequest},
		{"me1", `not json`, http.StatusBadRequest},
	} {
		resp := postMigrate(t, ts.URL, tc.id, tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("migrate %q body %q: status %d, want %d", tc.id, tc.body, resp.StatusCode, tc.status)
		}
	}
}

// TestMigrationStreamEquivalence is the property-test satellite: a client
// streaming sequenced rows straight through several live migrations must
// observe ack values byte-identical to a never-migrated control engine, and
// the final migrated engine must equal the control bit-for-bit. Afterwards,
// rows replayed across the flips are deduplicated exactly once.
func TestMigrationStreamEquivalence(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir())
	defer s.m.Close()
	resp := createTenant(t, ts.URL, "eq", testTenantBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	const total = 400
	rowFor := func(n int) []float64 {
		return e2eRow(n, 0.7)
	}

	c := client.New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := c.OpenStream(ctx, "eq", client.StreamOptions{Sequenced: true, MaxInFlight: 32})
	if err != nil {
		t.Fatal(err)
	}

	// Control: the same rows through an engine that never migrates.
	control, err := core.NewEngine(testCoreConfig(), []string{"s", "r1", "r2", "r3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	want := make([][]float64, total+1)
	for n := 1; n <= total; n++ {
		out, _, err := control.Tick(rowFor(n))
		if err != nil {
			t.Fatal(err)
		}
		want[n] = append([]float64(nil), out...)
	}

	var acked atomic.Uint64
	sendErr := make(chan error, 1)
	go func() {
		for n := 1; n <= total; n++ {
			if err := st.Send(ctx, rowFor(n)); err != nil {
				sendErr <- fmt.Errorf("send %d: %w", n, err)
				return
			}
		}
		sendErr <- nil
	}()
	recvDone := make(chan error, 1)
	go func() {
		for got := 0; got < total; got++ {
			ack, err := st.Recv(ctx)
			if err != nil {
				recvDone <- fmt.Errorf("recv after %d acks: %w", got, err)
				return
			}
			if ack.Duplicate {
				recvDone <- fmt.Errorf("seq %d acked as duplicate on first delivery", ack.Seq)
				return
			}
			w := want[ack.Seq]
			if len(ack.Values) != len(w) {
				recvDone <- fmt.Errorf("seq %d: %d values, want %d", ack.Seq, len(ack.Values), len(w))
				return
			}
			for i := range w {
				// Byte-identical: same float64 bits, no tolerance.
				if math.Float64bits(ack.Values[i]) != math.Float64bits(w[i]) {
					recvDone <- fmt.Errorf("seq %d stream %d: %x != control %x",
						ack.Seq, i, math.Float64bits(ack.Values[i]), math.Float64bits(w[i]))
					return
				}
			}
			acked.Store(ack.Seq)
		}
		recvDone <- nil
	}()

	// Walk the tenant across all three shards while the stream runs, pacing
	// each move on ack progress (a zero-pause migrate loop would starve the
	// single-P scheduler; real moves are endpoint-paced too).
	migrations := 0
	for done := false; !done; {
		select {
		case err := <-recvDone:
			if err != nil {
				t.Fatal(err)
			}
			done = true
		default:
			if _, err := c.MigrateTenant(ctx, "eq", migrations%3); err != nil {
				t.Fatalf("migration %d: %v", migrations, err)
			}
			migrations++
			before := acked.Load()
			for acked.Load() == before && acked.Load() < total {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if migrations < 2 {
		t.Fatalf("only %d migrations ran during the stream", migrations)
	}

	// The migrated engine is bit-identical to the control.
	var snap bytes.Buffer
	if _, err := c.Snapshot(ctx, "eq", &snap); err != nil {
		t.Fatal(err)
	}
	migrated, err := core.RestoreEngine(&snap)
	if err != nil {
		t.Fatal(err)
	}
	defer migrated.Close()
	if migrated.Seq() != control.Seq() {
		t.Fatalf("migrated seq %d, control %d", migrated.Seq(), control.Seq())
	}
	for i := 0; i < 4; i++ {
		g, w := migrated.Window().Snapshot(i), control.Window().Snapshot(i)
		if len(g) != len(w) {
			t.Fatalf("stream %d: %d ticks, want %d", i, len(g), len(w))
		}
		for j := range w {
			if math.Float64bits(g[j]) != math.Float64bits(w[j]) {
				t.Fatalf("stream %d tick %d: %x != %x", i, j, math.Float64bits(g[j]), math.Float64bits(w[j]))
			}
		}
	}

	// Exactly-once dedup across the flips: replay a tail of already-applied
	// sequenced rows on a fresh connection — every one must come back as a
	// duplicate, and the engine must not advance.
	raw := openTickStream(t, ts.URL, "eq")
	for n := total - 20; n <= total; n++ {
		out, err := raw.sendSeq(uint64(n), rowFor(n))
		if err != nil {
			t.Fatalf("replaying seq %d: %v", n, err)
		}
		if !out.Duplicate {
			t.Fatalf("replayed seq %d not marked duplicate", n)
		}
	}
	// And the next fresh row still applies normally.
	out, err := raw.sendSeq(total+1, rowFor(total+1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Duplicate || out.Seq != total+1 {
		t.Fatalf("row after replay: %+v", out)
	}
	raw.close()
}

// sendSeq writes one sequenced row and returns the server's ack line.
func (st *tickStream) sendSeq(seq uint64, row []float64) (tickOut, error) {
	vals := make([]*float64, len(row))
	for i := range row {
		if !math.IsNaN(row[i]) {
			v := row[i]
			vals[i] = &v
		}
	}
	if err := st.enc.Encode(tickIn{Seq: seq, Values: vals}); err != nil {
		return tickOut{}, err
	}
	return st.readAck()
}

// readAck consumes one response line (waiting for headers first if needed).
func (st *tickStream) readAck() (tickOut, error) {
	if st.resp == nil {
		select {
		case st.resp = <-st.rc:
		case err := <-st.ec:
			return tickOut{}, err
		case <-time.After(10 * time.Second):
			st.t.Fatal("timeout waiting for response headers")
		}
		st.sc = bufio.NewScanner(st.resp.Body)
		st.sc.Buffer(make([]byte, 1<<20), 1<<20)
	}
	if !st.sc.Scan() {
		if err := st.sc.Err(); err != nil {
			return tickOut{}, err
		}
		return tickOut{}, io.EOF
	}
	line := st.sc.Bytes()
	var e apiError
	if json.Unmarshal(line, &e) == nil && e.Error != "" {
		return tickOut{}, fmt.Errorf("server error line: %s", e.Error)
	}
	var out tickOut
	if err := json.Unmarshal(line, &out); err != nil {
		return tickOut{}, fmt.Errorf("bad line %q: %w", line, err)
	}
	return out, nil
}

// TestRestartWithMoreShardsKeepsPlacement proves the resharding contract
// end-to-end: a server restarted over the same directories with a larger
// -shards keeps every tenant where it was — explicit assignments and
// default-routed tenants alike — and the new shards are usable targets.
func TestRestartWithMoreShardsKeepsPlacement(t *testing.T) {
	dir := t.TempDir()
	ckDir := filepath.Join(dir, "ck")
	ctx := context.Background()

	open := func(shards int) (*Server, *httptest.Server, *shard.Manager) {
		tb, err := shard.OpenTable(filepath.Join(ckDir, "routing.tkcmrt"), shards)
		if err != nil {
			t.Fatal(err)
		}
		m := shard.New(shard.Options{Routing: tb, QueueLen: 16})
		s := New(Options{Manager: m, CheckpointDir: ckDir, Log: quietLog()})
		if _, err := s.RestoreFromCheckpoints(ctx); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		return s, ts, m
	}

	s, ts, m := open(2)
	for _, id := range []string{"ra", "rb", "rc"} {
		resp := createTenant(t, ts.URL, id, testTenantBody)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d", id, resp.StatusCode)
		}
	}
	c := client.New(ts.URL)
	infoA, err := c.GetTenant(ctx, "ra")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.MigrateTenant(ctx, "ra", 1-infoA.Shard); err != nil {
		t.Fatal(err)
	}
	placement := map[string]int{}
	tenants, err := c.ListTenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range tenants {
		placement[info.ID] = info.Shard
	}
	ts.Close()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	_ = m

	// Reopen with twice the shards.
	s4, ts4, m4 := open(4)
	defer func() {
		ts4.Close()
		m4.Close()
	}()
	c4 := client.New(ts4.URL)
	tenants4, err := c4.ListTenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants4) != 3 {
		t.Fatalf("restored %d tenants, want 3", len(tenants4))
	}
	for _, info := range tenants4 {
		if info.Shard != placement[info.ID] {
			t.Fatalf("tenant %q moved from shard %d to %d across the grow",
				info.ID, placement[info.ID], info.Shard)
		}
	}
	doc, err := c4.Routing(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Shards != 4 {
		t.Fatalf("routing doc shards %d, want 4", doc.Shards)
	}
	// The grown shard is reachable.
	if _, err := c4.MigrateTenant(ctx, "rb", 3); err != nil {
		t.Fatal(err)
	}
	info, err := c4.GetTenant(ctx, "rb")
	if err != nil {
		t.Fatal(err)
	}
	if info.Shard != 3 {
		t.Fatalf("rb on shard %d after migration to grown shard 3", info.Shard)
	}
	_ = s4
}

func TestPlanRebalance(t *testing.T) {
	cases := []struct {
		name   string
		rates  []float64
		ten    []tenantRate
		wantID string
		wantTo int
		wantOK bool
	}{
		{
			name:  "balanced fleet stands pat",
			rates: []float64{100, 100, 100},
			ten:   []tenantRate{{"a", 0, 100}, {"b", 1, 100}, {"c", 2, 100}},
		},
		{
			name:  "gap below noise floor stands pat",
			rates: []float64{40, 10, 10},
			ten:   []tenantRate{{"a", 0, 40}},
		},
		{
			name:   "hot shard sheds the half-gap tenant",
			rates:  []float64{240, 12, 0},
			ten:    []tenantRate{{"x", 0, 150}, {"y", 0, 60}, {"z", 0, 30}, {"w", 1, 12}},
			wantID: "x",
			wantTo: 2,
			wantOK: true,
		},
		{
			name:  "single dominant tenant cannot improve",
			rates: []float64{200, 0},
			ten:   []tenantRate{{"only", 0, 200}},
		},
		{
			name:  "idle fleet stands pat",
			rates: []float64{0, 0, 0},
			ten:   nil,
		},
		{
			name:  "one shard is never rebalanced",
			rates: []float64{500},
			ten:   []tenantRate{{"a", 0, 500}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			id, to, ok := planRebalance(tc.rates, tc.ten)
			if ok != tc.wantOK || id != tc.wantID || (ok && to != tc.wantTo) {
				t.Fatalf("planRebalance = (%q, %d, %v), want (%q, %d, %v)",
					id, to, ok, tc.wantID, tc.wantTo, tc.wantOK)
			}
		})
	}
}

// TestRebalancerMovesHotTenant drives rebalanceOnce directly (the loop is a
// ticker around it): after a baseline sample, a hot shard with several busy
// tenants must shed its half-gap tenant to the idlest shard, and the
// imbalance gauge must reflect the skew.
func TestRebalancerMovesHotTenant(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir())
	defer s.m.Close()
	defer ts.Close()
	ctx := context.Background()
	for _, id := range []string{"h1", "h2", "cold"} {
		resp := createTenant(t, ts.URL, id, testTenantBody)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d", id, resp.StatusCode)
		}
	}
	// Pin placement: h1+h2 share shard 0, cold sits on 1, shard 2 idle.
	for id, dst := range map[string]int{"h1": 0, "h2": 0, "cold": 1} {
		if _, err := s.m.Migrate(ctx, id, dst); err != nil {
			t.Fatal(err)
		}
	}

	s.rebalanceOnce(ctx) // baseline sample

	var rsp shard.TickResponse
	feed := func(id string, n int) {
		for i := 0; i < n; i++ {
			if err := s.m.Tick(ctx, id, 0, e2eRow(i, 0), &rsp); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed("h1", 150)
	feed("h2", 60)
	feed("cold", 12)

	s.rebalanceOnce(ctx)
	if got := s.imbalanceValue(); got < 1.5 {
		t.Fatalf("imbalance gauge %.2f, want the hot-shard skew (≥1.5)", got)
	}
	// h1 (closest to half the 210-tick gap) moves to the idle shard 2.
	info, err := s.m.Info(ctx, "h1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Shard != 2 {
		t.Fatalf("hot tenant on shard %d after rebalance, want 2", info.Shard)
	}
	if s.m.Migrations() == 0 {
		t.Fatal("rebalance did not migrate")
	}
}
