package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tkcm/internal/audit"
	"tkcm/internal/core"
	"tkcm/internal/shard"
	"tkcm/internal/wal"
)

// newFollowerServer assembles a follower stack pulling from primaryURL.
// FollowInterval is huge: tests drive rounds deterministically via
// followRound instead of sleeping.
func newFollowerServer(t *testing.T, ckDir, walDir, primaryURL string, key []byte) (*Server, *wal.Manager) {
	t.Helper()
	walMgr := wal.NewManager(walDir, wal.Options{SyncInterval: time.Millisecond, Key: key})
	m := shard.New(shard.Options{Shards: 2, QueueLen: 16, WAL: walMgr})
	s := New(Options{Manager: m, CheckpointDir: ckDir, WAL: walMgr,
		FollowURL: primaryURL, FollowInterval: time.Hour, Log: quietLog()})
	t.Cleanup(func() { m.Close(); walMgr.Close() })
	return s, walMgr
}

func getHealth(t *testing.T, base string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, doc
}

// TestFollowerReplicatesAndPromotes is the failover acceptance test, fully
// in-process: a WAL-enabled primary streams acked ticks, an async follower
// mirrors them (every byte verified), the primary dies with no drain and no
// final checkpoint, and the promoted follower must serve every acknowledged
// tick — proven both by the API and by the offline audit of both directory
// trees.
func TestFollowerReplicatesAndPromotes(t *testing.T) {
	key := []byte("failover-test-key")
	ckA, walA := t.TempDir(), t.TempDir()
	ckB, walB := t.TempDir(), t.TempDir()
	walOpts := wal.Options{SyncInterval: time.Millisecond, SegmentBytes: 4096, Key: key}

	s1, m1, wal1 := newWALServer(t, ckA, walA, walOpts)
	ts1 := newHTTPServer(t, s1)
	if resp := createTenant(t, ts1.URL, "fo", testTenantBody); resp.StatusCode != 201 {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	direct, err := core.NewEngine(testCoreConfig(), []string{"s", "r1", "r2", "r3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()

	s2, _ := newFollowerServer(t, ckB, walB, ts1.URL, key)
	ts2 := newHTTPServer(t, s2)

	// Unpromoted follower: health says so with a 503, and API traffic is
	// refused with a retryable 503 naming the primary.
	code, doc := getHealth(t, ts2.URL)
	if code != http.StatusServiceUnavailable || doc["status"] != "follower" {
		t.Fatalf("follower health = %d %v, want 503/follower", code, doc)
	}
	if doc["primary"] != ts1.URL {
		t.Fatalf("health primary = %v, want %s", doc["primary"], ts1.URL)
	}
	resp, err := http.Get(ts2.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	var gate struct {
		Error string `json:"error"`
		Retry bool   `json:"retry"`
	}
	json.NewDecoder(resp.Body).Decode(&gate)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !gate.Retry || !strings.Contains(gate.Error, "follower") {
		t.Fatalf("gated route = %d %+v, want retryable 503 naming the follower state", resp.StatusCode, gate)
	}

	// Stream acked rows, replicating every few rows so rounds interleave
	// with live appends (partial-segment deltas, not one final copy).
	st := openTickStream(t, ts1.URL, "fo")
	const rows = 40
	for n := 1; n <= rows; n++ {
		row := []float64{20.5 + float64(n%4), 19.2, 21.4, 20.9}
		if n > 10 && n%3 == 0 {
			row[0] = math.NaN()
		}
		if _, err := st.send(row); err != nil {
			t.Fatalf("tick %d: %v", n, err)
		}
		if _, _, err := direct.Tick(row); err != nil {
			t.Fatal(err)
		}
		if n%10 == 0 {
			if err := s2.followRound(); err != nil {
				t.Fatalf("follow round at tick %d: %v", n, err)
			}
		}
	}
	if err := s2.followRound(); err != nil {
		t.Fatalf("final follow round: %v", err)
	}
	if got := s2.replLagSeconds(); got > 60 {
		t.Fatalf("replication lag %.1fs after a fresh round", got)
	}

	// Primary dies: no drain, no final checkpoint — the follower has only
	// what it already verified and fsynced.
	st.close()
	ts1.Close()
	wal1.Close()
	_ = m1

	// Promote over HTTP (the SIGHUP path calls the same method).
	presp, err := http.Post(ts2.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var promoted struct {
		Promoted bool `json:"promoted"`
		Already  bool `json:"already"`
	}
	json.NewDecoder(presp.Body).Decode(&promoted)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK || !promoted.Promoted || promoted.Already {
		t.Fatalf("promote = %d %+v", presp.StatusCode, promoted)
	}
	defer s2.Shutdown(context.Background())

	code, doc = getHealth(t, ts2.URL)
	if code != http.StatusOK || doc["status"] != "ok" {
		t.Fatalf("post-promotion health = %d %v, want 200/ok", code, doc)
	}

	// Every acked tick is served, and the engine matches the uninterrupted
	// control within the restore tolerance.
	info, err := s2.m.Info(context.Background(), "fo")
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != rows {
		t.Fatalf("promoted tenant seq = %d, want %d (acked ticks lost in failover)", info.Seq, rows)
	}
	var buf bytes.Buffer
	if _, err := s2.m.Snapshot(context.Background(), "fo", &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := core.RestoreEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	for i := 0; i < 4; i++ {
		got, want := restored.Window().Snapshot(i), direct.Window().Snapshot(i)
		if len(got) != len(want) {
			t.Fatalf("stream %d: %d ticks, want %d", i, len(got), len(want))
		}
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-9 {
				t.Fatalf("stream %d tick %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}

	// Idempotent promotion.
	presp2, err := http.Post(ts2.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(presp2.Body).Decode(&promoted)
	presp2.Body.Close()
	if presp2.StatusCode != http.StatusOK || !promoted.Already {
		t.Fatalf("second promote = %d %+v, want already=true", presp2.StatusCode, promoted)
	}

	// Both directory trees audit clean through every acked tick — the dead
	// primary's (post-mortem) and the promoted follower's.
	for _, dirs := range []struct{ name, ck, wal string }{
		{"primary", ckA, walA},
		{"follower", ckB, walB},
	} {
		results, err := audit.All(dirs.ck, dirs.wal, key)
		if err != nil {
			t.Fatalf("audit %s: %v", dirs.name, err)
		}
		found := false
		for _, res := range results {
			if res.Tenant != "fo" {
				continue
			}
			found = true
			if res.Err != nil {
				t.Fatalf("audit %s: %v", dirs.name, res.Err)
			}
			if res.Report.DurableThrough < rows {
				t.Fatalf("audit %s: durable through %d, want >= %d", dirs.name, res.Report.DurableThrough, rows)
			}
		}
		if !found {
			t.Fatalf("audit %s: tenant fo not found", dirs.name)
		}
	}
}

// TestFollowerPrunesDeletedTenants: a tenant deleted on the primary is
// removed from the follower on the next round; one that merely fails to
// sync stays.
func TestFollowerPrunesDeletedTenants(t *testing.T) {
	key := []byte("prune-test-key")
	ckA, walA := t.TempDir(), t.TempDir()
	ckB, walB := t.TempDir(), t.TempDir()
	s1, _, _ := newWALServer(t, ckA, walA, wal.Options{SyncInterval: time.Millisecond, Key: key})
	ts1 := newHTTPServer(t, s1)
	for _, id := range []string{"keep", "doomed"} {
		if resp := createTenant(t, ts1.URL, id, testTenantBody); resp.StatusCode != 201 {
			t.Fatalf("create %s: %d", id, resp.StatusCode)
		}
	}
	s2, _ := newFollowerServer(t, ckB, walB, ts1.URL, key)
	if err := s2.followRound(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"keep", "doomed"} {
		if _, err := os.Stat(filepath.Join(ckB, id+checkpointExt)); err != nil {
			t.Fatalf("checkpoint of %s not replicated: %v", id, err)
		}
		if _, err := os.Stat(filepath.Join(walB, id)); err != nil {
			t.Fatalf("WAL of %s not replicated: %v", id, err)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts1.URL+"/v1/tenants/doomed", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if err := s2.followRound(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(ckB, "doomed"+checkpointExt)); !os.IsNotExist(err) {
		t.Fatalf("deleted tenant's checkpoint still on follower: %v", err)
	}
	if _, err := os.Stat(filepath.Join(walB, "doomed")); !os.IsNotExist(err) {
		t.Fatalf("deleted tenant's WAL still on follower: %v", err)
	}
	if _, err := os.Stat(filepath.Join(walB, "keep")); err != nil {
		t.Fatalf("surviving tenant pruned: %v", err)
	}
}

// TestFollowerRejectsWrongKey: a follower keyed differently from its primary
// must refuse every manifest — nothing lands on its disk.
func TestFollowerRejectsWrongKey(t *testing.T) {
	ckA, walA := t.TempDir(), t.TempDir()
	ckB, walB := t.TempDir(), t.TempDir()
	s1, _, _ := newWALServer(t, ckA, walA, wal.Options{SyncInterval: time.Millisecond, Key: []byte("key-A")})
	ts1 := newHTTPServer(t, s1)
	if resp := createTenant(t, ts1.URL, "kx", testTenantBody); resp.StatusCode != 201 {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	s2, _ := newFollowerServer(t, ckB, walB, ts1.URL, []byte("key-B"))
	err := s2.followRound()
	if err == nil || !strings.Contains(err.Error(), "HMAC") {
		t.Fatalf("follow round under mismatched keys: err = %v, want HMAC refusal", err)
	}
	if _, serr := os.Stat(filepath.Join(walB, "kx")); !os.IsNotExist(serr) {
		t.Fatal("bytes landed on the follower despite the key mismatch")
	}
}

// FuzzManifestMAC hardens the manifest authenticator: arbitrary bodies and
// MAC strings must never panic, and only the genuine MAC may verify.
func FuzzManifestMAC(f *testing.F) {
	key := []byte("fuzz-manifest-key")
	body := []byte(`{"generated_unix_nano":1,"tenants":[]}`)
	f.Add(body, manifestMAC(key, body))
	f.Add([]byte(`{}`), "deadbeef")
	f.Add([]byte(nil), "")
	f.Fuzz(func(t *testing.T, body []byte, mac string) {
		m := &replManifest{Body: body, MAC: mac}
		err := verifyManifestMAC(key, m)
		// Hex is case-insensitive, so "accepted" means the DECODED bytes
		// match the genuine MAC — an uppercase spelling of the right MAC is
		// a valid encoding, not a forgery.
		if err == nil && !strings.EqualFold(mac, manifestMAC(key, body)) {
			t.Fatalf("forged MAC %q accepted for body %q", mac, body)
		}
	})
}
