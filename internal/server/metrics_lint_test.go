package server

import (
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"tkcm/internal/obs"
	"tkcm/internal/wal"
)

// TestMetricsExpositionConformance scrapes a live, fully-exercised server
// and lints the whole exposition: every family carries HELP and TYPE, every
// histogram's buckets are cumulative-monotonic and end in +Inf, and each
// series' _count equals its +Inf cumulative. This covers the core counters,
// the per-shard stage histograms, and the runtime telemetry in one pass.
func TestMetricsExpositionConformance(t *testing.T) {
	walOpts := wal.Options{SyncInterval: time.Millisecond}
	s, _, _ := newWALServer(t, t.TempDir(), t.TempDir(), walOpts)
	ts := newHTTPServer(t, s)

	for _, id := range []string{"lint-a", "lint-b"} {
		if resp := createTenant(t, ts.URL, id, testTenantBody); resp.StatusCode != 201 {
			t.Fatalf("create %s: %d", id, resp.StatusCode)
		}
	}
	// Exercise both the single-row and the batched decode paths so the
	// stage histograms and the batch-size histogram hold real counts.
	st := openTickStream(t, ts.URL, "lint-a")
	for i := 0; i < 5; i++ {
		if _, err := st.send(e2eRow(i, 0)); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	st.close()
	bst := openTickStream(t, ts.URL, "lint-b")
	if _, err := bst.sendBatch(1, [][]float64{e2eRow(0, 1), e2eRow(1, 1), e2eRow(2, 1)}); err != nil {
		t.Fatalf("batch: %v", err)
	}
	bst.close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := obs.ParseProm(string(raw))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if len(sc.Samples) == 0 {
		t.Fatal("empty exposition")
	}

	// Every sample's family must be announced with HELP and TYPE.
	for _, sm := range sc.Samples {
		fam, _ := obs.FamilyOf(sm.Name)
		if sc.Help[fam] == "" {
			t.Errorf("family %s (sample %s) has no # HELP", fam, sm.Name)
		}
		if sc.Type[fam] == "" {
			t.Errorf("family %s (sample %s) has no # TYPE", fam, sm.Name)
		}
	}

	// Histogram lint: group _bucket samples by family + labels-minus-le, in
	// exposition order.
	type group struct {
		les  []string
		cums []float64
	}
	groups := map[string]*group{}
	counts := map[string]float64{}
	sums := map[string]bool{}
	seriesKey := func(name string, labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString(name)
		for _, k := range keys {
			b.WriteString("|" + k + "=" + labels[k])
		}
		return b.String()
	}
	for _, sm := range sc.Samples {
		fam, hist := obs.FamilyOf(sm.Name)
		if !hist {
			continue
		}
		if sc.Type[fam] != "histogram" {
			t.Errorf("%s has histogram suffixes but TYPE %q", fam, sc.Type[fam])
			continue
		}
		key := seriesKey(fam, sm.LabelMap)
		switch {
		case strings.HasSuffix(sm.Name, "_bucket"):
			g := groups[key]
			if g == nil {
				g = &group{}
				groups[key] = g
			}
			g.les = append(g.les, sm.LabelMap["le"])
			g.cums = append(g.cums, sm.Value)
		case strings.HasSuffix(sm.Name, "_count"):
			counts[key] = sm.Value
		case strings.HasSuffix(sm.Name, "_sum"):
			sums[key] = true
			if sm.Value < 0 {
				t.Errorf("%s _sum negative: %v", key, sm.Value)
			}
		}
	}
	if len(groups) == 0 {
		t.Fatal("no histogram series found")
	}
	for key, g := range groups {
		last := len(g.les) - 1
		if g.les[last] != "+Inf" {
			t.Errorf("%s: last bucket le=%q, want +Inf", key, g.les[last])
		}
		prev := math.Inf(-1)
		for i, cum := range g.cums {
			if cum < prev {
				t.Errorf("%s: cumulative decreased at le=%s (%v after %v)", key, g.les[i], cum, prev)
			}
			prev = cum
		}
		if c, ok := counts[key]; !ok || c != g.cums[last] {
			t.Errorf("%s: _count %v != +Inf cumulative %v (present=%v)", key, c, g.cums[last], ok)
		}
		if !sums[key] {
			t.Errorf("%s: missing _sum", key)
		}
	}

	// The families this PR exists for must be present with live counts:
	// every stage on every shard (zero-count series still expose their
	// buckets), the end-to-end family, and the runtime telemetry.
	names := map[string]bool{}
	for _, sm := range sc.Samples {
		names[sm.Name] = true
	}
	for _, want := range []string{"tkcm_tick_stage_seconds_bucket", "tkcm_ack_seconds_bucket", "tkcm_trace_lines_total", "tkcm_go_goroutines", "tkcm_wal_appends_total"} {
		if !names[want] {
			t.Errorf("exposition missing %s", want)
		}
	}
	stageSeen := map[string]bool{}
	var ackTotal float64
	for _, sm := range sc.Samples {
		if sm.Name == "tkcm_tick_stage_seconds_bucket" {
			stageSeen[sm.LabelMap["stage"]] = true
		}
		if sm.Name == "tkcm_ack_seconds_count" {
			ackTotal += sm.Value
		}
	}
	for st := 0; st < obs.NumStages; st++ {
		if !stageSeen[obs.Stage(st).String()] {
			t.Errorf("no tkcm_tick_stage_seconds series for stage %q", obs.Stage(st))
		}
	}
	// 5 single rows + 1 batched line = 6 observed tick lines, all acked
	// before their streams closed; the observations land shortly after.
	if ackTotal < 1 {
		t.Errorf("tkcm_ack_seconds recorded %v lines, want ≥ 1", ackTotal)
	}
}
