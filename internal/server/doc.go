// Package server exposes the sharded multi-tenant imputation engines of
// internal/shard over HTTP — the network face of tkcm-serve.
//
// # API (v1)
//
//	GET    /healthz                     liveness + tenant/shard counts
//	GET    /metrics                     Prometheus text exposition
//	GET    /v1/tenants                  list hosted tenants
//	POST   /v1/tenants/{id}             create a tenant (JSON body below)
//	DELETE /v1/tenants/{id}             delete a tenant
//	POST   /v1/tenants/{id}/ticks      NDJSON streaming ingest (below)
//	GET    /v1/tenants/{id}/snapshot    download the engine snapshot (binary)
//	POST   /v1/checkpoint               checkpoint every tenant to disk now
//
// Create body: {"streams": ["s","r1","r2","r3"], "config": {"k":5,
// "pattern_length":72, "d":3, "window_length":4032, "workers":0,
// "profiler":"auto", "skip_diagnostics":false}, "refs": {"s":["r1","r2",
// "r3"]}}. Omitted config fields take the paper's defaults; refs is
// optional (reference sets are correlation-ranked from the data otherwise).
//
// # Streaming ticks
//
// POST /v1/tenants/{id}/ticks is a single long-lived request: the client
// streams newline-delimited JSON rows and the server streams one completed
// row back per input line, flushed immediately, so the connection behaves
// like a duplex imputation pipe:
//
//	→ {"values": [21.3, null, 19.8, 20.1]}
//	← {"tick": 4031, "values": [21.3, 20.44, 19.8, 20.1], "imputed": [1]}
//
// null (or NaN-absent) entries mark missing measurements. A row the engine
// rejects (wrong width, ±Inf) terminates the stream with an {"error": ...}
// line; everything before it was applied.
//
// # Checkpoints
//
// With a checkpoint directory configured, a background loop periodically
// writes every tenant's engine snapshot (core snapshot format v1, written
// atomically via rename) to <dir>/<tenant>.tkcm; Server.Shutdown takes a
// final checkpoint after in-flight ticks drain, and RestoreFromCheckpoints
// re-hosts every saved tenant on startup — the recoverable-service loop of
// the ROADMAP's production north star.
package server
