package server

import (
	"fmt"
	"io"
	"net/http"

	"tkcm/internal/obs"
)

// handleMetrics serves the Prometheus text exposition: the service counters
// (writeCoreMetrics), the per-shard per-stage tick latency histograms, the
// end-to-end ack histogram, the trace-line counter, and the Go runtime
// telemetry. When any tenant WAL has latched fail-stop the endpoint answers
// 503 — consistent with /healthz and /v1/debug/tenants — but still writes
// the full body, so a scraper sees the degradation *and* the counters that
// explain it.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if len(s.failedWALTenants()) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	s.writeCoreMetrics(w)
	s.writeStageMetrics(w)
	s.rt.WriteProm(w)
}

// writeStageMetrics emits the stage-latency surface: one family header per
// metric, then the per-shard (and per-stage) histogram series with their
// prerendered labels. Reading the atomic buckets races benignly with
// concurrent Observes; each emitted bucket line is still internally
// consistent because _count derives from the same cumulative walk.
func (s *Server) writeStageMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP tkcm_tick_stage_seconds Per-stage tick latency (decode, queue, engine, wal_commit, ack), by shard.\n# TYPE tkcm_tick_stage_seconds histogram\n")
	for i := range s.latency {
		sl := &s.latency[i]
		for st := 0; st < obs.NumStages; st++ {
			sl.stages[st].WriteProm(w, "tkcm_tick_stage_seconds", sl.stageLabels[st])
		}
	}
	fmt.Fprintf(w, "# HELP tkcm_ack_seconds End-to-end tick latency, wire decode to ack write, by shard.\n# TYPE tkcm_ack_seconds histogram\n")
	for i := range s.latency {
		sl := &s.latency[i]
		sl.ack.WriteProm(w, "tkcm_ack_seconds", sl.ackLabel)
	}
	fmt.Fprintf(w, "# HELP tkcm_trace_lines_total Slow-tick and sampled trace lines logged.\n# TYPE tkcm_trace_lines_total counter\ntkcm_trace_lines_total %d\n", s.traceLines.Load())
}

// writeCoreMetrics writes the pre-instrumentation service metrics: tenant,
// shard, ingest, checkpoint, WAL, and replication counters.
func (s *Server) writeCoreMetrics(w io.Writer) {
	stats := s.m.Stats()
	var tenants int64
	var ticks, imputations, backpressure, processed uint64
	for _, st := range stats {
		tenants += st.Tenants
		ticks += st.Ticks
		imputations += st.Imputations
		backpressure += st.Backpressure
		processed += st.Processed
	}
	fmt.Fprintf(w, "# HELP tkcm_tenants Hosted tenant engines.\n# TYPE tkcm_tenants gauge\ntkcm_tenants %d\n", tenants)
	fmt.Fprintf(w, "# HELP tkcm_shards Engine shards.\n# TYPE tkcm_shards gauge\ntkcm_shards %d\n", len(stats))
	fmt.Fprintf(w, "# HELP tkcm_ticks_total Rows ingested across all tenants.\n# TYPE tkcm_ticks_total counter\ntkcm_ticks_total %d\n", ticks)
	fmt.Fprintf(w, "# HELP tkcm_imputations_total Missing values imputed.\n# TYPE tkcm_imputations_total counter\ntkcm_imputations_total %d\n", imputations)
	fmt.Fprintf(w, "# HELP tkcm_shard_requests_total Requests processed per shard.\n# TYPE tkcm_shard_requests_total counter\n")
	for _, st := range stats {
		fmt.Fprintf(w, "tkcm_shard_requests_total{shard=\"%d\"} %d\n", st.Shard, st.Processed)
	}
	fmt.Fprintf(w, "# HELP tkcm_shard_queue_depth Instantaneous queued requests per shard.\n# TYPE tkcm_shard_queue_depth gauge\n")
	for _, st := range stats {
		fmt.Fprintf(w, "tkcm_shard_queue_depth{shard=\"%d\"} %d\n", st.Shard, st.QueueDepth)
	}
	fmt.Fprintf(w, "# HELP tkcm_shard_backpressure_total Submissions that found a full shard queue.\n# TYPE tkcm_shard_backpressure_total counter\n")
	for _, st := range stats {
		fmt.Fprintf(w, "tkcm_shard_backpressure_total{shard=\"%d\"} %d\n", st.Shard, st.Backpressure)
	}
	fmt.Fprintf(w, "# HELP tkcm_shard_migrations_total Completed live tenant migrations.\n# TYPE tkcm_shard_migrations_total counter\ntkcm_shard_migrations_total %d\n", s.m.Migrations())
	fmt.Fprintf(w, "# HELP tkcm_shard_imbalance Hottest shard's tick rate over the mean, last rebalance sample (1 = balanced, 0 = no sample).\n# TYPE tkcm_shard_imbalance gauge\ntkcm_shard_imbalance %g\n", s.imbalanceValue())
	fmt.Fprintf(w, "# HELP tkcm_http_requests_total HTTP requests served.\n# TYPE tkcm_http_requests_total counter\ntkcm_http_requests_total %d\n", s.requests.Load())
	fmt.Fprintf(w, "# HELP tkcm_tick_rows_total NDJSON tick rows streamed.\n# TYPE tkcm_tick_rows_total counter\ntkcm_tick_rows_total %d\n", s.tickRows.Load())
	fmt.Fprintf(w, "# HELP tkcm_ticks_batched_total Tick rows that arrived on batched lines.\n# TYPE tkcm_ticks_batched_total counter\ntkcm_ticks_batched_total %d\n", s.batchedRows.Load())
	fmt.Fprintf(w, "# HELP tkcm_tick_batch_size Rows per batched tick line.\n# TYPE tkcm_tick_batch_size histogram\n")
	cum := uint64(0)
	for i, le := range batchSizeBuckets {
		cum += s.batchBuckets[i].Load()
		fmt.Fprintf(w, "tkcm_tick_batch_size_bucket{le=\"%d\"} %d\n", le, cum)
	}
	cum += s.batchBuckets[len(batchSizeBuckets)].Load()
	fmt.Fprintf(w, "tkcm_tick_batch_size_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "tkcm_tick_batch_size_sum %d\n", s.batchSum.Load())
	fmt.Fprintf(w, "tkcm_tick_batch_size_count %d\n", s.batchCount.Load())
	res := s.m.Residency()
	fmt.Fprintf(w, "# HELP tkcm_engines_resident Tenants with a live in-memory engine.\n# TYPE tkcm_engines_resident gauge\ntkcm_engines_resident %d\n", res.Resident)
	fmt.Fprintf(w, "# HELP tkcm_engines_parked Tenants evicted to durable state (checkpoint + WAL tail).\n# TYPE tkcm_engines_parked gauge\ntkcm_engines_parked %d\n", res.Parked)
	fmt.Fprintf(w, "# HELP tkcm_engines_failed Tenants latched fail-stopped by hydration failures.\n# TYPE tkcm_engines_failed gauge\ntkcm_engines_failed %d\n", res.Failed)
	fmt.Fprintf(w, "# HELP tkcm_engine_evictions_total Engines parked to disk by the residency budget.\n# TYPE tkcm_engine_evictions_total counter\ntkcm_engine_evictions_total %d\n", res.Evictions)
	fmt.Fprintf(w, "# HELP tkcm_engine_hydrations_total Parked engines rebuilt from checkpoint + WAL tail.\n# TYPE tkcm_engine_hydrations_total counter\ntkcm_engine_hydrations_total %d\n", res.Hydrations)
	fmt.Fprintf(w, "# HELP tkcm_hydration_seconds Latency of hydrating a parked engine (restore + tail replay).\n# TYPE tkcm_hydration_seconds histogram\n")
	s.m.HydrationHist().WriteProm(w, "tkcm_hydration_seconds", "")
	fmt.Fprintf(w, "# HELP tkcm_checkpoints_total Tenant snapshots written to disk.\n# TYPE tkcm_checkpoints_total counter\ntkcm_checkpoints_total %d\n", s.checkpoints.Load())
	fmt.Fprintf(w, "# HELP tkcm_checkpoint_errors_total Failed tenant snapshot writes.\n# TYPE tkcm_checkpoint_errors_total counter\ntkcm_checkpoint_errors_total %d\n", s.checkpointErrs.Load())
	if s.wal != nil {
		ws := s.wal.Stats()
		fmt.Fprintf(w, "# HELP tkcm_wal_appends_total Tick records appended to write-ahead logs.\n# TYPE tkcm_wal_appends_total counter\ntkcm_wal_appends_total %d\n", ws.Appends)
		fmt.Fprintf(w, "# HELP tkcm_wal_syncs_total WAL group commits (fsync batches) completed.\n# TYPE tkcm_wal_syncs_total counter\ntkcm_wal_syncs_total %d\n", ws.Syncs)
		fmt.Fprintf(w, "# HELP tkcm_wal_sync_errors_total WAL fsyncs that failed (their batch was never acked).\n# TYPE tkcm_wal_sync_errors_total counter\ntkcm_wal_sync_errors_total %d\n", ws.SyncErrors)
		fmt.Fprintf(w, "# HELP tkcm_wal_bytes_total WAL bytes written, framing included.\n# TYPE tkcm_wal_bytes_total counter\ntkcm_wal_bytes_total %d\n", ws.Bytes)
		fmt.Fprintf(w, "# HELP tkcm_wal_truncations_total WAL segment files reclaimed after checkpoints.\n# TYPE tkcm_wal_truncations_total counter\ntkcm_wal_truncations_total %d\n", ws.Truncations)
		fmt.Fprintf(w, "# HELP tkcm_wal_open_logs Tenants with an open write-ahead log.\n# TYPE tkcm_wal_open_logs gauge\ntkcm_wal_open_logs %d\n", ws.OpenLogs)
		fmt.Fprintf(w, "# HELP tkcm_wal_failed_logs Tenants whose write-ahead log has fail-stopped (appends refused, acks withheld).\n# TYPE tkcm_wal_failed_logs gauge\ntkcm_wal_failed_logs %d\n", len(s.wal.FailedTenants()))
	}
	if s.follower {
		fmt.Fprintf(w, "# HELP tkcm_repl_lag_seconds Age of the last fully-applied replication manifest.\n# TYPE tkcm_repl_lag_seconds gauge\ntkcm_repl_lag_seconds %g\n", s.replLagSeconds())
		fmt.Fprintf(w, "# HELP tkcm_repl_rounds_total Replication rounds completed.\n# TYPE tkcm_repl_rounds_total counter\ntkcm_repl_rounds_total %d\n", s.replRounds.Load())
		fmt.Fprintf(w, "# HELP tkcm_repl_errors_total Replication rounds or tenant syncs that failed.\n# TYPE tkcm_repl_errors_total counter\ntkcm_repl_errors_total %d\n", s.replErrors.Load())
		fmt.Fprintf(w, "# HELP tkcm_repl_segments_total Segment fetches applied (verified deltas).\n# TYPE tkcm_repl_segments_total counter\ntkcm_repl_segments_total %d\n", s.replSegmentsCtr.Load())
		fmt.Fprintf(w, "# HELP tkcm_repl_bytes_total WAL bytes fetched and verified from the primary.\n# TYPE tkcm_repl_bytes_total counter\ntkcm_repl_bytes_total %d\n", s.replBytesCtr.Load())
		promoted := 0
		if s.promoted.Load() {
			promoted = 1
		}
		fmt.Fprintf(w, "# HELP tkcm_repl_promoted Whether this follower has been promoted to primary.\n# TYPE tkcm_repl_promoted gauge\ntkcm_repl_promoted %d\n", promoted)
	}
}
