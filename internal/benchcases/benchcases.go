// Package benchcases holds the pinned hot-path micro-benchmark bodies shared
// by the root bench_test.go wrappers (go test -bench) and the tkcm-bench
// "pinned" experiment (testing.Benchmark), which CI runs as a regression gate
// against the committed BENCH_engine.json. One definition guarantees the gate
// measures exactly what the named benchmarks measure.
//
// Every engine case streams the same deterministic daily-periodic workload:
// width 4, window 4032, stream 0 missing every 20th measured tick (the
// loadgen default 5% missing rate) — so the row-at-a-time baseline and the
// columnar batch path are directly comparable ns-per-tick numbers.
package benchcases

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tkcm"
	"tkcm/internal/core"
	"tkcm/internal/shard"
	"tkcm/internal/wal"
)

// Case is one pinned micro-benchmark: a stable name (the regression-gate
// key), the ingest batch size it runs at, and the benchmark body.
type Case struct {
	// Name keys the measurement in BENCH_engine.json's pinned rows.
	Name string
	// Batch is the ingest batch size (1 = row-at-a-time).
	Batch int
	// Fn is the benchmark body; ns/op is per tick (engine cases) or per
	// appended row (WAL cases).
	Fn func(b *testing.B)
}

// Cases returns the pinned micro-benchmarks, baseline first.
func Cases() []Case {
	return []Case{
		{Name: "engine-tick", Batch: 1, Fn: EngineTick},
		{Name: "engine-tick-columns-64", Batch: 64, Fn: func(b *testing.B) { EngineTickColumns(b, 64) }},
		{Name: "wal-append", Batch: 1, Fn: WALAppend},
		{Name: "wal-append-batch-64", Batch: 64, Fn: func(b *testing.B) { WALAppendBatch(b, 64) }},
		{Name: "shard-tick", Batch: 1, Fn: ShardTick},
		{Name: "shard-tick-cold", Batch: 1, Fn: ShardTickCold},
	}
}

// benchWidth/benchWindow fix the engine cases' shape.
const (
	benchWidth  = 4
	benchWindow = 4032
)

// fillTick writes the deterministic measurement of global tick t into
// dst[0:benchWidth]. Stream 0 goes missing every 20th tick once the window
// is warm.
func fillTick(t int, dst []float64) {
	ph := 2 * math.Pi * float64(t) / 288
	state := uint64(t)*2654435761 + 17
	noise := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1000) / 2000
	}
	dst[0] = math.Sin(ph) + noise()
	dst[1] = math.Sin(ph-1.0) + noise()
	dst[2] = math.Cos(ph+0.4) + noise()
	dst[3] = math.Sin(2*ph) + noise()
	if t >= benchWindow && t%20 == 0 {
		dst[0] = tkcm.Missing
	}
}

// newWarmEngine builds the shared engine and streams the first benchWindow
// (complete) ticks so every case measures the warm steady state.
func newWarmEngine(b *testing.B) *tkcm.Engine {
	b.Helper()
	cfg := tkcm.Config{K: 5, PatternLength: 72, D: 3, WindowLength: benchWindow}
	eng, err := tkcm.NewEngine(cfg, []string{"s", "r1", "r2", "r3"}, map[string]tkcm.ReferenceSet{
		"s": {Stream: "s", Candidates: []string{"r1", "r2", "r3"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	row := make([]float64, benchWidth)
	for t := 0; t < benchWindow; t++ {
		fillTick(t, row)
		if _, _, err := eng.Tick(row); err != nil {
			b.Fatal(err)
		}
	}
	return eng
}

// EngineTick is the row-at-a-time baseline: one Tick per measured tick.
func EngineTick(b *testing.B) {
	eng := newWarmEngine(b)
	defer eng.Close()
	row := make([]float64, benchWidth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fillTick(benchWindow+i, row)
		if _, _, err := eng.Tick(row); err != nil {
			b.Fatal(err)
		}
	}
}

// EngineTickColumns streams the same workload through the columnar batch
// path, batch ticks per TickColumns call; ns/op stays per tick.
func EngineTickColumns(b *testing.B, batch int) {
	eng := newWarmEngine(b)
	defer eng.Close()
	buf := make([][]float64, benchWidth)
	for j := range buf {
		buf[j] = make([]float64, batch)
	}
	cols := make(tkcm.Columns, benchWidth)
	row := make([]float64, benchWidth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := batch
		if rest := b.N - i; rest < n {
			n = rest
		}
		for t := 0; t < n; t++ {
			fillTick(benchWindow+i+t, row)
			for j := range buf {
				buf[j][t] = row[j]
			}
		}
		for j := range cols {
			cols[j] = buf[j][:n]
		}
		if _, _, err := eng.TickColumns(cols); err != nil {
			b.Fatal(err)
		}
	}
}

// walRows builds n identical width-8 rows for the WAL cases.
func walRows(n int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{20.5, 19.25, 21, 20, 18.5, 22, 20.75, 19}
	}
	return rows
}

// syncEvery is the WAL cases' backpressure quantum: an explicit Sync (off
// the clock) every this many rows. Production appenders are throttled by
// Commit.Wait/MaxInFlight, so the log's in-memory backlog stays bounded; an
// unthrottled bench loop instead grows the append buffer without limit and
// ends up measuring growslice memmove. The off-clock sync recycles the
// double-buffer the way a draining flusher does, leaving the timed region
// to the append path itself (encode + CRC + group-commit bookkeeping).
const syncEvery = 4096

// newBenchLog opens a log in a throwaway directory. The group-commit window
// is effectively infinite — the cases sync explicitly, off the clock.
func newBenchLog(b *testing.B) (*wal.Log, func()) {
	b.Helper()
	dir, err := os.MkdirTemp("", "tkcm-walbench")
	if err != nil {
		b.Fatal(err)
	}
	l, err := wal.Open(dir, wal.Options{SyncInterval: time.Minute, SegmentBytes: 1 << 30})
	if err != nil {
		os.RemoveAll(dir)
		b.Fatal(err)
	}
	return l, func() {
		l.Close()
		os.RemoveAll(dir)
	}
}

// WALAppend is the per-row WAL baseline: one record, one CRC, one
// group-commit slot per row.
func WALAppend(b *testing.B) {
	l, done := newBenchLog(b)
	rows := walRows(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(uint64(i+1), rows[0]); err != nil {
			b.Fatal(err)
		}
		if (i+1)%syncEvery == 0 {
			b.StopTimer()
			if err := l.Sync(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	done()
}

// WALAppendBatch appends the same rows batch-at-a-time: one record, one CRC,
// one group-commit slot per batch; ns/op stays per row.
func WALAppendBatch(b *testing.B, batch int) {
	l, done := newBenchLog(b)
	rows := walRows(batch)
	seq := uint64(1)
	sinceSync := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := batch
		if rest := b.N - i; rest < n {
			n = rest
		}
		if _, err := l.AppendBatch(seq, rows[:n]); err != nil {
			b.Fatal(err)
		}
		seq += uint64(n)
		if sinceSync += n; sinceSync >= syncEvery {
			sinceSync = 0
			b.StopTimer()
			if err := l.Sync(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	done()
}

// ShardTick measures the full shard-layer tick path — routing lookup,
// bounded-queue handoff, the shard goroutine's dispatch, and the engine tick
// — against the EngineTick baseline, so the serving overhead (including the
// stage clocks added for the latency histograms) is a pinned number rather
// than a guess. One shard, one tenant, warm window; ns/op is per tick.
func ShardTick(b *testing.B) {
	m := shard.New(shard.Options{Shards: 1, QueueLen: 64})
	defer m.Close()
	ctx := context.Background()
	cfg := tkcm.Config{K: 5, PatternLength: 72, D: 3, WindowLength: benchWindow}
	err := m.Create(ctx, "bench", cfg, []string{"s", "r1", "r2", "r3"}, map[string]tkcm.ReferenceSet{
		"s": {Stream: "s", Candidates: []string{"r1", "r2", "r3"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	row := make([]float64, benchWidth)
	var rsp shard.TickResponse
	for t := 0; t < benchWindow; t++ {
		fillTick(t, row)
		if err := m.Tick(ctx, "bench", 0, row, &rsp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fillTick(benchWindow+i, row)
		if err := m.Tick(ctx, "bench", 0, row, &rsp); err != nil {
			b.Fatal(err)
		}
	}
}

// ShardTickCold measures the residency tier's worst case against ShardTick's
// warm baseline: every measured tick lands on a PARKED tenant, so ns/op is
// hydration (memory-mapped checkpoint restore + residency bookkeeping) plus
// the tick itself. Two tenants alternate under a one-engine budget — each
// tick hydrates its tenant and parks the other — and the re-checkpoint that
// keeps hydration valid for the next round happens off the clock, via temp
// file + rename so the live engine's mapped window is never overwritten in
// place.
func ShardTickCold(b *testing.B) {
	dir, err := os.MkdirTemp("", "tkcm-coldbench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := func(id string) string { return filepath.Join(dir, id+".ckpt") }
	m := shard.New(shard.Options{
		Shards: 1, QueueLen: 64, ResidentEngines: 1,
		Hydrate: func(id string) (*core.Engine, error) { return core.RestoreEngineFile(ckpt(id)) },
	})
	defer m.Close()
	ctx := context.Background()

	// One warm image seeds both tenants; attaching the second parks the
	// first, so the loop below starts with a parked tenant on deck.
	seed := newWarmEngine(b)
	var img bytes.Buffer
	if err := seed.Snapshot(&img); err != nil {
		b.Fatal(err)
	}
	seed.Close()
	ids := []string{"cold-a", "cold-b"}
	for _, id := range ids {
		if err := os.WriteFile(ckpt(id), img.Bytes(), 0o644); err != nil {
			b.Fatal(err)
		}
		eng, err := core.RestoreEngineFile(ckpt(id))
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Attach(ctx, id, eng); err != nil {
			b.Fatal(err)
		}
	}

	// recheckpoint refreshes id's on-disk image (off the clock) so its next
	// eviction/hydration round-trips to the sequence it just reached.
	recheckpoint := func(id string) {
		f, err := os.CreateTemp(dir, "ck-*")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Snapshot(ctx, id, f); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		if err := os.Rename(f.Name(), ckpt(id)); err != nil {
			b.Fatal(err)
		}
	}

	row := make([]float64, benchWidth)
	var rsp shard.TickResponse
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%2]
		fillTick(benchWindow+i, row)
		if err := m.Tick(ctx, id, 0, row, &rsp); err != nil {
			b.Fatal(fmt.Errorf("cold tick %d (%s): %w", i, id, err))
		}
		b.StopTimer()
		recheckpoint(id)
		b.StartTimer()
	}
}
