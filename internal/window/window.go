// Package window maintains the streaming window W = {tn-L+1, ..., tn} over a
// set of co-evolving streams. Each stream is backed by a ring.Buffer of
// capacity L; advancing the current time is O(1) per stream (Lemma 6.1).
//
// The window is the substrate the TKCM imputer (internal/core) and the
// streaming baselines operate on: at every tick each stream receives exactly
// one value (possibly missing), and imputers overwrite the newest slot of
// incomplete streams so the retained history is always complete.
package window

import (
	"fmt"
	"math"

	"tkcm/internal/ring"
)

// Window holds the last L values of a fixed set of named streams.
type Window struct {
	length  int
	names   []string
	index   map[string]int
	buffers []*ring.Buffer
	// tick is the index of the current time tn, counted from the first
	// Advance call (first tick is 0). It is -1 before any data arrives.
	tick int
}

// New creates a window of length L over the given stream names.
// It panics if L <= 0, if no names are given, or on duplicate names.
func New(length int, names ...string) *Window {
	if length <= 0 {
		panic(fmt.Sprintf("window: length must be positive, got %d", length))
	}
	if len(names) == 0 {
		panic("window: at least one stream is required")
	}
	w := &Window{
		length: length,
		names:  append([]string(nil), names...),
		index:  make(map[string]int, len(names)),
		tick:   -1,
	}
	for i, name := range names {
		if _, dup := w.index[name]; dup {
			panic(fmt.Sprintf("window: duplicate stream name %q", name))
		}
		w.index[name] = i
		w.buffers = append(w.buffers, ring.New(length))
	}
	return w
}

// Length returns L, the number of ticks retained per stream.
func (w *Window) Length() int { return w.length }

// Width returns the number of streams.
func (w *Window) Width() int { return len(w.buffers) }

// Names returns the stream names in declaration order.
func (w *Window) Names() []string { return w.names }

// Tick returns the index of the current time tn (-1 before any Advance).
func (w *Window) Tick() int { return w.tick }

// SetTick overwrites the tick counter. It exists for snapshot restore, where
// the retained values are replayed through Advance (yielding tick Filled()-1)
// but the window logically sits at a later absolute tick. It panics if t is
// smaller than Filled()-1 — a restored window cannot predate its contents.
func (w *Window) SetTick(t int) {
	if t < w.Filled()-1 {
		panic(fmt.Sprintf("window: tick %d predates the %d retained values", t, w.Filled()))
	}
	w.tick = t
}

// Filled returns the number of ticks currently retained (≤ L).
func (w *Window) Filled() int {
	if len(w.buffers) == 0 {
		return 0
	}
	return w.buffers[0].Len()
}

// Warm reports whether the window retains L full ticks.
func (w *Window) Warm() bool { return w.Filled() == w.length }

// Advance moves the current time to the next tick and records one value per
// stream. row must have one entry per stream, in declaration order; NaN marks
// a missing measurement. It returns the new tick index.
func (w *Window) Advance(row []float64) int {
	if len(row) != len(w.buffers) {
		panic(fmt.Sprintf("window: row has %d values, window has %d streams", len(row), len(w.buffers)))
	}
	for i, v := range row {
		w.buffers[i].Push(v)
	}
	w.tick++
	return w.tick
}

// AdvanceColumns advances the current time by to−from ticks at once, reading
// the values from stream-major columns: cols[i][t] is stream i's measurement
// at batch tick t. Each stream's run [from, to) lands in its ring buffer as
// one bulk push, so the per-tick cost is one float copy per stream instead of
// per-element ring arithmetic. It is equivalent to calling Advance row by row
// and returns the new tick index. It panics on a width mismatch or a column
// shorter than to.
func (w *Window) AdvanceColumns(cols [][]float64, from, to int) int {
	if len(cols) != len(w.buffers) {
		panic(fmt.Sprintf("window: %d columns, window has %d streams", len(cols), len(w.buffers)))
	}
	for i, col := range cols {
		w.buffers[i].PushBulk(col[from:to])
	}
	w.tick += to - from
	return w.tick
}

// Stream returns the ring buffer of stream i. Mutating the buffer through
// Set/SetNewest is how imputers write recovered values back (Algorithm 1
// line 26 stores sˆ(tn) into s[O]).
func (w *Window) Stream(i int) *ring.Buffer { return w.buffers[i] }

// StreamByName returns the buffer for the named stream, or nil if unknown.
func (w *Window) StreamByName(name string) *ring.Buffer {
	if i, ok := w.index[name]; ok {
		return w.buffers[i]
	}
	return nil
}

// IndexOf returns the position of the named stream, or -1 if unknown.
func (w *Window) IndexOf(name string) int {
	if i, ok := w.index[name]; ok {
		return i
	}
	return -1
}

// At returns the value of stream i at logical window index j (0 = oldest
// retained tick, Filled()-1 = tn).
func (w *Window) At(i, j int) float64 { return w.buffers[i].At(j) }

// Current returns the value of stream i at the current time tn.
func (w *Window) Current(i int) float64 { return w.buffers[i].Newest() }

// CurrentMissing reports whether stream i is missing its value at tn.
func (w *Window) CurrentMissing(i int) bool { return math.IsNaN(w.buffers[i].Newest()) }

// SetCurrent overwrites the value of stream i at the current time tn.
func (w *Window) SetCurrent(i int, v float64) { w.buffers[i].SetNewest(v) }

// MissingNow returns the indices of all streams whose value at tn is missing.
func (w *Window) MissingNow() []int {
	var out []int
	for i, b := range w.buffers {
		if b.Len() > 0 && math.IsNaN(b.Newest()) {
			out = append(out, i)
		}
	}
	return out
}

// Snapshot copies the retained history of stream i (oldest first).
func (w *Window) Snapshot(i int) []float64 { return w.buffers[i].Snapshot(nil) }

// SnapshotInto copies the retained history of stream i (oldest first) into
// dst, reusing its storage when it is large enough; it returns the filled
// slice of length Filled(). Imputers use this to materialize reference
// histories into per-engine scratch without allocating per tick.
func (w *Window) SnapshotInto(i int, dst []float64) []float64 {
	n := w.buffers[i].Len()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	return w.buffers[i].Snapshot(dst[:n])
}

// Views returns the retained history of stream i as at most two contiguous
// segments of the backing ring storage, oldest first (see ring.Buffer.Views).
// The segments alias the buffer and are valid until the next Advance.
func (w *Window) Views(i int) (a, b []float64) { return w.buffers[i].Views() }
