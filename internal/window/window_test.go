package window

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero length":    func() { New(0, "a") },
		"no streams":     func() { New(3) },
		"duplicate name": func() { New(3, "a", "a") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			fn()
		}()
	}
}

func TestAdvanceAndAccessors(t *testing.T) {
	w := New(3, "x", "y")
	if w.Tick() != -1 || w.Filled() != 0 || w.Warm() {
		t.Fatal("fresh window state wrong")
	}
	if got := w.Advance([]float64{1, 10}); got != 0 {
		t.Fatalf("first tick = %d, want 0", got)
	}
	w.Advance([]float64{2, 20})
	w.Advance([]float64{3, 30})
	if !w.Warm() || w.Filled() != 3 || w.Tick() != 2 {
		t.Fatalf("window not warm after L ticks: filled=%d tick=%d", w.Filled(), w.Tick())
	}
	w.Advance([]float64{4, 40})
	if w.Tick() != 3 {
		t.Fatalf("tick = %d, want 3", w.Tick())
	}
	if got := w.Snapshot(0); !reflect.DeepEqual(got, []float64{2, 3, 4}) {
		t.Fatalf("x snapshot = %v", got)
	}
	if w.At(1, 0) != 20 || w.Current(1) != 40 {
		t.Fatalf("y accessors wrong: oldest=%v current=%v", w.At(1, 0), w.Current(1))
	}
}

func TestAdvanceWidthMismatch(t *testing.T) {
	w := New(3, "a")
	defer func() {
		if recover() == nil {
			t.Fatal("row width mismatch accepted")
		}
	}()
	w.Advance([]float64{1, 2})
}

func TestMissingDetection(t *testing.T) {
	w := New(2, "a", "b", "c")
	w.Advance([]float64{1, math.NaN(), math.NaN()})
	if !w.CurrentMissing(1) || w.CurrentMissing(0) {
		t.Fatal("CurrentMissing wrong")
	}
	if got := w.MissingNow(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("MissingNow = %v, want [1 2]", got)
	}
	w.SetCurrent(1, 5)
	if got := w.MissingNow(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("after SetCurrent: %v, want [2]", got)
	}
}

func TestNamesAndLookup(t *testing.T) {
	w := New(2, "a", "b")
	if !reflect.DeepEqual(w.Names(), []string{"a", "b"}) {
		t.Fatalf("names = %v", w.Names())
	}
	if w.IndexOf("b") != 1 || w.IndexOf("zz") != -1 {
		t.Fatal("IndexOf wrong")
	}
	if w.StreamByName("a") != w.Stream(0) || w.StreamByName("zz") != nil {
		t.Fatal("StreamByName wrong")
	}
	if w.Length() != 2 || w.Width() != 2 {
		t.Fatal("shape accessors wrong")
	}
}

// TestSnapshotIntoReusesStorage: SnapshotInto must grow once and then reuse
// the caller's buffer, returning the logical contents oldest-first.
func TestSnapshotIntoReusesStorage(t *testing.T) {
	w := New(3, "a", "b")
	w.Advance([]float64{1, 10})
	w.Advance([]float64{2, 20})
	got := w.SnapshotInto(1, nil)
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("snapshot = %v, want [10 20]", got)
	}
	w.Advance([]float64{3, 30})
	w.Advance([]float64{4, 40}) // wrapped
	buf := make([]float64, 0, 8)
	got = w.SnapshotInto(1, buf)
	if len(got) != 3 || got[0] != 20 || got[1] != 30 || got[2] != 40 {
		t.Fatalf("snapshot = %v, want [20 30 40]", got)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("SnapshotInto must reuse the provided buffer's storage")
	}
}

// TestWindowViews: the zero-copy segments concatenate to the retained
// history of each stream.
func TestWindowViews(t *testing.T) {
	w := New(3, "a", "b")
	for i := 0; i < 5; i++ {
		w.Advance([]float64{float64(i), float64(10 * i)})
	}
	for s := 0; s < 2; s++ {
		a, b := w.Views(s)
		joined := append(append([]float64(nil), a...), b...)
		if len(joined) != w.Filled() {
			t.Fatalf("stream %d: views cover %d, want %d", s, len(joined), w.Filled())
		}
		for j, got := range joined {
			if want := w.At(s, j); got != want {
				t.Fatalf("stream %d: views[%d] = %v, want %v", s, j, got, want)
			}
		}
	}
}

// TestWindowMatchesSliceModel drives the window against a slice model per
// stream under random advance sequences (testing/quick).
func TestWindowMatchesSliceModel(t *testing.T) {
	f := func(rows []uint32, lenRaw uint8) bool {
		L := int(lenRaw)%6 + 2
		w := New(L, "p", "q")
		var mp, mq []float64
		for _, r := range rows {
			pv := float64(r & 0xffff)
			qv := float64(r >> 16)
			w.Advance([]float64{pv, qv})
			mp = append(mp, pv)
			mq = append(mq, qv)
			if len(mp) > L {
				mp, mq = mp[1:], mq[1:]
			}
			if w.Filled() != len(mp) {
				return false
			}
			for i := range mp {
				if w.At(0, i) != mp[i] || w.At(1, i) != mq[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
