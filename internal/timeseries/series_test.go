package timeseries

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestMissingMarker(t *testing.T) {
	if !IsMissing(Missing) {
		t.Fatal("Missing must be missing")
	}
	if IsMissing(0) || IsMissing(-3.5) || IsMissing(math.Inf(1)) {
		t.Fatal("finite and infinite values are not missing")
	}
}

func TestSamplingTimeMath(t *testing.T) {
	sp := Sampling{Start: time.Date(2014, 3, 11, 0, 0, 0, 0, time.UTC), Interval: 5 * time.Minute}
	if got := sp.TimeAt(0); !got.Equal(sp.Start) {
		t.Fatalf("TimeAt(0) = %v", got)
	}
	if got := sp.TimeAt(12); !got.Equal(sp.Start.Add(time.Hour)) {
		t.Fatalf("TimeAt(12) = %v, want +1h", got)
	}
	if got := sp.TickOf(sp.Start.Add(25 * time.Minute)); got != 5 {
		t.Fatalf("TickOf(+25m) = %d, want 5", got)
	}
	if got := sp.TicksPerDay(); got != 288 {
		t.Fatalf("TicksPerDay = %d, want 288", got)
	}
	var zero Sampling
	if zero.TicksPerDay() != 0 || zero.TickOf(time.Now()) != 0 {
		t.Fatal("zero sampling must degrade gracefully")
	}
}

func TestSeriesBasics(t *testing.T) {
	s := New("t", []float64{1, Missing, 3})
	if s.Len() != 3 || s.At(0) != 1 || !s.MissingAt(1) {
		t.Fatalf("unexpected series state: %+v", s)
	}
	s.Set(1, 2)
	if s.MissingAt(1) || s.At(1) != 2 {
		t.Fatal("Set failed")
	}
	s.Append(4)
	if s.Len() != 4 || s.At(3) != 4 {
		t.Fatal("Append failed")
	}
	if s.CountMissing() != 0 || !s.Complete() || s.FirstMissing() != -1 {
		t.Fatal("completeness accounting wrong")
	}
}

func TestNewEmpty(t *testing.T) {
	s := NewEmpty("e", 4)
	if s.Len() != 4 || s.CountMissing() != 4 || s.FirstMissing() != 0 {
		t.Fatalf("NewEmpty wrong: %+v", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New("a", []float64{1, 2})
	c := s.Clone()
	c.Set(0, 99)
	if s.At(0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestSliceSharesStorage(t *testing.T) {
	s := New("a", []float64{1, 2, 3, 4})
	v := s.Slice(1, 3)
	v.Set(0, 99)
	if s.At(1) != 99 {
		t.Fatal("Slice must share storage")
	}
	if v.Len() != 2 {
		t.Fatalf("slice length = %d, want 2", v.Len())
	}
}

func TestGaps(t *testing.T) {
	s := New("g", []float64{Missing, 1, Missing, Missing, 2, Missing})
	gaps := s.Gaps()
	want := []Gap{{0, 1}, {2, 2}, {5, 1}}
	if !reflect.DeepEqual(gaps, want) {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	if lg := s.LongestGap(); lg != (Gap{2, 2}) {
		t.Fatalf("longest gap = %v, want {2 2}", lg)
	}
	if g := (Gap{Start: 2, Length: 2}); g.End() != 4 {
		t.Fatalf("gap end = %d, want 4", g.End())
	}
	if len(New("c", []float64{1, 2}).Gaps()) != 0 {
		t.Fatal("complete series must have no gaps")
	}
}

// TestGapsPartitionProperty: the gaps plus the present positions partition
// the index range, for random missingness.
func TestGapsPartitionProperty(t *testing.T) {
	f := func(mask uint32) bool {
		s := New("p", make([]float64, 32))
		missing := 0
		for i := 0; i < 32; i++ {
			if mask&(1<<i) != 0 {
				s.Set(i, Missing)
				missing++
			} else {
				s.Set(i, float64(i))
			}
		}
		total := 0
		for _, g := range s.Gaps() {
			if g.Length <= 0 {
				return false
			}
			for i := g.Start; i < g.End(); i++ {
				if !s.MissingAt(i) {
					return false
				}
			}
			// Maximality: neighbours must be present.
			if g.Start > 0 && s.MissingAt(g.Start-1) {
				return false
			}
			if g.End() < 32 && s.MissingAt(g.End()) {
				return false
			}
			total += g.Length
		}
		return total == missing && s.CountMissing() == missing
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEraseBlock(t *testing.T) {
	s := New("e", []float64{1, 2, 3, 4, 5})
	truth := s.EraseBlock(1, 3)
	if !reflect.DeepEqual(truth, []float64{2, 3, 4}) {
		t.Fatalf("truth = %v", truth)
	}
	if s.CountMissing() != 3 || !s.MissingAt(1) || !s.MissingAt(3) || s.MissingAt(0) {
		t.Fatalf("erase wrong: %v", s.Values)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range erase must panic")
		}
	}()
	s.EraseBlock(3, 5)
}

func TestShift(t *testing.T) {
	s := New("sh", []float64{1, 2, 3, 4})
	if got := s.Shift(1).Values; !reflect.DeepEqual(got, []float64{4, 1, 2, 3}) {
		t.Fatalf("shift +1 = %v", got)
	}
	if got := s.Shift(-1).Values; !reflect.DeepEqual(got, []float64{2, 3, 4, 1}) {
		t.Fatalf("shift -1 = %v", got)
	}
	if got := s.Shift(4).Values; !reflect.DeepEqual(got, s.Values) {
		t.Fatalf("full-period shift = %v", got)
	}
	if got := s.Shift(6).Values; !reflect.DeepEqual(got, s.Shift(2).Values) {
		t.Fatalf("shift wraps: %v", got)
	}
}

// TestShiftRoundTrip: Shift(d) then Shift(-d) is the identity.
func TestShiftRoundTrip(t *testing.T) {
	f := func(seed int64, dRaw int8) bool {
		n := 17
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64((seed>>uint(i%32))&0xff) + float64(i)
		}
		s := New("rt", vals)
		d := int(dRaw)
		return reflect.DeepEqual(s.Shift(d).Shift(-d).Values, s.Values)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrame(t *testing.T) {
	a := New("a", []float64{1, 2, 3})
	b := New("b", []float64{4, 5, 6})
	f := NewFrame(a, b)
	if f.Len() != 3 || f.Width() != 2 {
		t.Fatalf("frame shape %dx%d", f.Len(), f.Width())
	}
	if f.ByName("b") != b || f.ByName("zzz") != nil {
		t.Fatal("ByName wrong")
	}
	if f.IndexOf("a") != 0 || f.IndexOf("b") != 1 || f.IndexOf("c") != -1 {
		t.Fatal("IndexOf wrong")
	}
	if !reflect.DeepEqual(f.Names(), []string{"a", "b"}) {
		t.Fatalf("names = %v", f.Names())
	}
	if !reflect.DeepEqual(f.Row(1), []float64{2, 5}) {
		t.Fatalf("row = %v", f.Row(1))
	}
}

func TestFramePanics(t *testing.T) {
	f := NewFrame(New("a", []float64{1, 2}))
	mustPanic(t, "misaligned series", func() { f.Add(New("b", []float64{1})) })
	mustPanic(t, "duplicate name", func() { f.Add(New("a", []float64{3, 4})) })
}

func TestFrameCloneAndSlice(t *testing.T) {
	f := NewFrame(New("a", []float64{1, 2, 3}), New("b", []float64{4, 5, 6}))
	c := f.Clone()
	c.ByName("a").Set(0, 99)
	if f.ByName("a").At(0) != 99 && f.ByName("a").At(0) != 1 {
		t.Fatal("unexpected")
	}
	if f.ByName("a").At(0) == 99 {
		t.Fatal("Clone shares storage")
	}
	sl := f.SliceTicks(1, 3)
	if sl.Len() != 2 || sl.ByName("b").At(0) != 5 {
		t.Fatalf("slice wrong: %+v", sl.ByName("b").Values)
	}
	sl.ByName("b").Set(0, 50)
	if f.ByName("b").At(1) != 50 {
		t.Fatal("SliceTicks must share storage")
	}
}

func TestFrameEmpty(t *testing.T) {
	f := NewFrame()
	if f.Len() != 0 || f.Width() != 0 {
		t.Fatal("empty frame must have zero shape")
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}
