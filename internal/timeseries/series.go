// Package timeseries provides the core time-series primitives used across
// the TKCM reproduction: regularly sampled series with explicit missing
// values, aligned multi-series frames, and utilities for describing and
// manipulating gaps.
//
// A missing value (the paper's NIL) is represented as an IEEE-754 NaN so a
// series is a flat []float64 with no side-band bitmap. All helpers in this
// package treat any NaN as missing.
package timeseries

import (
	"fmt"
	"math"
	"time"
)

// Missing is the canonical missing-value marker (NaN). Any NaN is treated
// as missing; Missing is provided so call sites read as intent.
var Missing = math.NaN()

// IsMissing reports whether v denotes a missing measurement.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Sampling describes the regular time grid of a stream: the wall-clock time
// of tick 0 and the fixed interval between consecutive ticks. The paper's
// datasets use 5-minute (SBR, Chlorine) and 1-minute (Flights) intervals.
type Sampling struct {
	Start    time.Time
	Interval time.Duration
}

// TimeAt returns the wall-clock time of tick i.
func (sp Sampling) TimeAt(i int) time.Time {
	return sp.Start.Add(time.Duration(i) * sp.Interval)
}

// TickOf returns the tick index of time t, truncating toward zero.
func (sp Sampling) TickOf(t time.Time) int {
	if sp.Interval <= 0 {
		return 0
	}
	return int(t.Sub(sp.Start) / sp.Interval)
}

// TicksPerDay returns the number of ticks covering 24 hours, or 0 if the
// interval is non-positive.
func (sp Sampling) TicksPerDay() int {
	if sp.Interval <= 0 {
		return 0
	}
	return int(24 * time.Hour / sp.Interval)
}

// Series is a regularly sampled stream of measurements. Values[i] is the
// measurement at tick i; NaN marks a missing measurement. The zero value is
// an empty, unnamed series ready to append to.
type Series struct {
	Name     string
	Sampling Sampling
	Values   []float64
}

// New returns a named series with the given values. The slice is used
// directly (not copied).
func New(name string, values []float64) *Series {
	return &Series{Name: name, Values: values}
}

// NewEmpty returns a named series of length n with every value missing.
func NewEmpty(name string, n int) *Series {
	v := make([]float64, n)
	for i := range v {
		v[i] = Missing
	}
	return &Series{Name: name, Values: v}
}

// Len returns the number of ticks in the series.
func (s *Series) Len() int { return len(s.Values) }

// At returns the value at tick i.
func (s *Series) At(i int) float64 { return s.Values[i] }

// Set assigns the value at tick i.
func (s *Series) Set(i int, v float64) { s.Values[i] = v }

// MissingAt reports whether the value at tick i is missing.
func (s *Series) MissingAt(i int) bool { return IsMissing(s.Values[i]) }

// Append adds a measurement at the end of the series.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	v := make([]float64, len(s.Values))
	copy(v, s.Values)
	return &Series{Name: s.Name, Sampling: s.Sampling, Values: v}
}

// Slice returns a view of ticks [from, to) sharing the underlying storage.
func (s *Series) Slice(from, to int) *Series {
	return &Series{Name: s.Name, Sampling: s.Sampling, Values: s.Values[from:to]}
}

// CountMissing returns the number of missing values in the series.
func (s *Series) CountMissing() int {
	n := 0
	for _, v := range s.Values {
		if IsMissing(v) {
			n++
		}
	}
	return n
}

// Complete reports whether the series has no missing values.
func (s *Series) Complete() bool { return s.CountMissing() == 0 }

// FirstMissing returns the index of the first missing value, or -1 if the
// series is complete.
func (s *Series) FirstMissing() int {
	for i, v := range s.Values {
		if IsMissing(v) {
			return i
		}
	}
	return -1
}

// Gap describes a maximal run of consecutive missing values:
// ticks [Start, Start+Length).
type Gap struct {
	Start  int
	Length int
}

// End returns the first tick after the gap.
func (g Gap) End() int { return g.Start + g.Length }

// Gaps returns all maximal runs of missing values, in order.
func (s *Series) Gaps() []Gap {
	var gaps []Gap
	i := 0
	for i < len(s.Values) {
		if !IsMissing(s.Values[i]) {
			i++
			continue
		}
		start := i
		for i < len(s.Values) && IsMissing(s.Values[i]) {
			i++
		}
		gaps = append(gaps, Gap{Start: start, Length: i - start})
	}
	return gaps
}

// LongestGap returns the longest gap, or a zero Gap if the series is
// complete. Ties resolve to the earliest gap.
func (s *Series) LongestGap() Gap {
	var best Gap
	for _, g := range s.Gaps() {
		if g.Length > best.Length {
			best = g
		}
	}
	return best
}

// EraseBlock marks ticks [from, from+length) missing and returns the erased
// values so callers (e.g. the experiment harness) can later compute errors
// against the ground truth. It panics if the block is out of range.
func (s *Series) EraseBlock(from, length int) []float64 {
	if from < 0 || from+length > len(s.Values) {
		panic(fmt.Sprintf("timeseries: erase block [%d,%d) out of range [0,%d)", from, from+length, len(s.Values)))
	}
	erased := make([]float64, length)
	copy(erased, s.Values[from:from+length])
	for i := from; i < from+length; i++ {
		s.Values[i] = Missing
	}
	return erased
}

// Shift returns a copy of the series circularly shifted right by delta ticks
// (delta may be negative). A shift models the paper's SBR-1d construction
// where each reference series is displaced by up to one day.
func (s *Series) Shift(delta int) *Series {
	n := len(s.Values)
	out := make([]float64, n)
	if n > 0 {
		delta = ((delta % n) + n) % n
		for i := 0; i < n; i++ {
			out[(i+delta)%n] = s.Values[i]
		}
	}
	return &Series{Name: s.Name, Sampling: s.Sampling, Values: out}
}

// Frame is an ordered collection of equally long, time-aligned series — the
// paper's set S of streaming time series.
type Frame struct {
	Sampling Sampling
	Series   []*Series
	index    map[string]int
}

// NewFrame builds a frame from the given series. All series must have the
// same length; NewFrame panics otherwise, since misaligned streams are a
// programming error in this codebase.
func NewFrame(series ...*Series) *Frame {
	f := &Frame{index: make(map[string]int, len(series))}
	for _, s := range series {
		f.Add(s)
	}
	return f
}

// Add appends a series to the frame.
func (f *Frame) Add(s *Series) {
	if len(f.Series) > 0 && s.Len() != f.Series[0].Len() {
		panic(fmt.Sprintf("timeseries: series %q has length %d, frame has %d", s.Name, s.Len(), f.Series[0].Len()))
	}
	if f.index == nil {
		f.index = make(map[string]int)
	}
	if _, dup := f.index[s.Name]; dup {
		panic(fmt.Sprintf("timeseries: duplicate series name %q", s.Name))
	}
	if len(f.Series) == 0 && f.Sampling.Interval == 0 {
		f.Sampling = s.Sampling
	}
	f.index[s.Name] = len(f.Series)
	f.Series = append(f.Series, s)
}

// Len returns the number of ticks common to all series (0 for an empty frame).
func (f *Frame) Len() int {
	if len(f.Series) == 0 {
		return 0
	}
	return f.Series[0].Len()
}

// Width returns the number of series in the frame.
func (f *Frame) Width() int { return len(f.Series) }

// ByName returns the series with the given name, or nil if absent.
func (f *Frame) ByName(name string) *Series {
	if i, ok := f.index[name]; ok {
		return f.Series[i]
	}
	return nil
}

// IndexOf returns the position of the named series, or -1 if absent.
func (f *Frame) IndexOf(name string) int {
	if i, ok := f.index[name]; ok {
		return i
	}
	return -1
}

// Names returns the series names in frame order.
func (f *Frame) Names() []string {
	names := make([]string, len(f.Series))
	for i, s := range f.Series {
		names[i] = s.Name
	}
	return names
}

// Row returns the values of every series at tick i, in frame order.
func (f *Frame) Row(i int) []float64 {
	row := make([]float64, len(f.Series))
	for j, s := range f.Series {
		row[j] = s.Values[i]
	}
	return row
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	out := &Frame{Sampling: f.Sampling, index: make(map[string]int, len(f.Series))}
	for _, s := range f.Series {
		out.index[s.Name] = len(out.Series)
		out.Series = append(out.Series, s.Clone())
	}
	return out
}

// SliceTicks returns a frame over ticks [from, to); the underlying value
// storage is shared with the receiver.
func (f *Frame) SliceTicks(from, to int) *Frame {
	out := &Frame{Sampling: f.Sampling, index: make(map[string]int, len(f.Series))}
	for _, s := range f.Series {
		out.index[s.Name] = len(out.Series)
		out.Series = append(out.Series, s.Slice(from, to))
	}
	return out
}
