package shard

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"path/filepath"

	"tkcm/internal/core"
	"tkcm/internal/wal"
)

func testConfig() core.Config {
	return core.Config{K: 2, PatternLength: 3, D: 2, WindowLength: 24}
}

func testStreams() []string { return []string{"a", "b", "c", "d"} }

func testRow(t int, width int) []float64 {
	row := make([]float64, width)
	for i := range row {
		row[i] = 5 + math.Sin(float64(t)/4+float64(i))
	}
	return row
}

func TestManagerLifecycle(t *testing.T) {
	ctx := context.Background()
	m := New(Options{Shards: 3, QueueLen: 8})
	defer m.Close()

	if err := m.Create(ctx, "t1", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Create(ctx, "t1", testConfig(), testStreams(), nil); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := m.Create(ctx, "t2", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}

	var rsp TickResponse
	for tk := 0; tk < 60; tk++ {
		row := testRow(tk, 4)
		if tk > 30 && tk%5 == 0 {
			row[1] = math.NaN()
		}
		if err := m.Tick(ctx, "t1", 0, row, &rsp); err != nil {
			t.Fatalf("tick %d: %v", tk, err)
		}
		if rsp.Tick != tk {
			t.Fatalf("tick index %d, want %d", rsp.Tick, tk)
		}
		for i, v := range rsp.Row {
			if math.IsNaN(v) {
				t.Fatalf("tick %d: row[%d] still missing", tk, i)
			}
		}
		if tk > 30 && tk%5 == 0 && (len(rsp.Imputed) != 1 || rsp.Imputed[0] != 1) {
			t.Fatalf("tick %d: imputed %v, want [1]", tk, rsp.Imputed)
		}
	}

	infos, err := m.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].ID != "t1" || infos[1].ID != "t2" {
		t.Fatalf("tenants %+v", infos)
	}
	if infos[0].Ticks != 60 {
		t.Fatalf("t1 ticks %d, want 60", infos[0].Ticks)
	}

	if err := m.Tick(ctx, "nope", 0, testRow(0, 4), &rsp); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("tick unknown tenant: %v", err)
	}
	if err := m.Delete(ctx, "t2"); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(ctx, "t2"); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("double delete: %v", err)
	}

	var snap bytes.Buffer
	if _, err := m.Snapshot(ctx, "t1", &snap); err != nil {
		t.Fatal(err)
	}
	if _, err := core.RestoreEngine(&snap); err != nil {
		t.Fatalf("manager snapshot not restorable: %v", err)
	}
}

// TestManagerMatchesDirectEngine: a tenant driven through the manager must
// produce bit-identical rows to a directly driven engine on the same input.
func TestManagerMatchesDirectEngine(t *testing.T) {
	ctx := context.Background()
	m := New(Options{Shards: 2})
	defer m.Close()
	if err := m.Create(ctx, "t", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	direct, err := core.NewEngine(testConfig(), testStreams(), nil)
	if err != nil {
		t.Fatal(err)
	}

	var rsp TickResponse
	for tk := 0; tk < 120; tk++ {
		row := testRow(tk, 4)
		if tk > 30 && tk%4 == 0 {
			row[0] = math.NaN()
		}
		want, _, err := direct.Tick(append([]float64(nil), row...))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Tick(ctx, "t", 0, row, &rsp); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if rsp.Row[i] != want[i] {
				t.Fatalf("tick %d stream %d: manager %v, direct %v", tk, i, rsp.Row[i], want[i])
			}
		}
	}
}

// TestManagerConcurrentTenants drives many tenants from many goroutines
// (meaningful under -race): per-tenant ordering is the caller's, cross-tenant
// work interleaves freely across shards.
func TestManagerConcurrentTenants(t *testing.T) {
	ctx := context.Background()
	m := New(Options{Shards: 4, QueueLen: 2})
	defer m.Close()

	const tenants, ticks = 9, 80
	ids := make([]string, tenants)
	for i := range ids {
		ids[i] = string(rune('a'+i)) + "-tenant"
		if err := m.Create(ctx, ids[i], testConfig(), testStreams(), nil); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, tenants)
	for _, id := range ids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rsp TickResponse
			for tk := 0; tk < ticks; tk++ {
				row := testRow(tk, 4)
				if tk > 30 && tk%3 == 0 {
					row[2] = math.NaN()
				}
				if err := m.Tick(ctx, id, 0, row, &rsp); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	total := uint64(0)
	for _, s := range m.Stats() {
		total += s.Ticks
	}
	if total != tenants*ticks {
		t.Fatalf("ticks across shards %d, want %d", total, tenants*ticks)
	}
}

// TestManagerCloseDrains: Close must complete queued work, then reject new
// submissions with ErrClosed.
func TestManagerCloseDrains(t *testing.T) {
	ctx := context.Background()
	m := New(Options{Shards: 1, QueueLen: 4})
	if err := m.Create(ctx, "t", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rsp TickResponse
			if err := m.Tick(ctx, "t", 0, testRow(i, 4), &rsp); err == nil {
				mu.Lock()
				done++
				mu.Unlock()
			} else if !errors.Is(err, ErrClosed) {
				t.Errorf("tick: %v", err)
			}
		}()
	}
	m.Close()
	wg.Wait()
	var rsp TickResponse
	if err := m.Tick(ctx, "t", 0, testRow(0, 4), &rsp); !errors.Is(err, ErrClosed) {
		t.Fatalf("tick after close: %v", err)
	}
	if err := m.Create(ctx, "u", testConfig(), testStreams(), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
}

// TestManagerContextCancelUnderBackpressure: a submitter stuck on a full
// queue must observe its context.
func TestManagerContextCancelUnderBackpressure(t *testing.T) {
	m := New(Options{Shards: 1, QueueLen: 1})
	defer m.Close()
	ctx := context.Background()
	if err := m.Create(ctx, "t", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}

	// Stall the shard goroutine with a blocking op and wait until it is
	// actually executing it: launching the three submissions concurrently
	// would let them race into the queue in any order, and if the cancellable
	// one slipped in it would wait on its (never-run) op while the test waits
	// on errc before releasing the shard — a deadlock.
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.do(ctx, "t", func(*shard) error { close(entered); <-release; return nil })
	}()
	<-entered
	// One queued request occupies the buffer slot; wait until it is visibly
	// enqueued before submitting the cancellable request.
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.do(ctx, "t", func(*shard) error { return nil })
	}()
	for deadline := time.Now().Add(10 * time.Second); m.Stats()[0].QueueDepth != 1; {
		if time.Now().After(deadline) {
			t.Fatal("queued request never became visible (QueueDepth != 1)")
		}
		time.Sleep(time.Millisecond)
	}
	// With the shard blocked and the queue full, the next submission must
	// block and then honor cancellation.
	cctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errc <- m.do(cctx, "t", func(*shard) error { return nil })
	}()
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submission: err = %v, want context.Canceled", err)
	}
	close(release)
	wg.Wait()
}

// TestSequencedTickSemantics pins the exactly-once contract at the shard
// boundary: in-order seqs apply, already-applied seqs ack as duplicates
// without mutating the engine, and gaps are refused.
func TestSequencedTickSemantics(t *testing.T) {
	ctx := context.Background()
	walMgr := wal.NewManager(t.TempDir(), wal.Options{})
	defer walMgr.Close()
	m := New(Options{Shards: 2, WAL: walMgr})
	defer m.Close()
	if err := m.Create(ctx, "t", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}

	var rsp TickResponse
	for seq := uint64(1); seq <= 5; seq++ {
		if err := m.Tick(ctx, "t", seq, testRow(int(seq), 4), &rsp); err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if rsp.Seq != seq || rsp.Duplicate {
			t.Fatalf("seq %d: rsp %+v", seq, rsp)
		}
		if err := rsp.Durable.Wait(); err != nil {
			t.Fatalf("seq %d durability: %v", seq, err)
		}
	}

	// Replaying an old seq acks idempotently and leaves the engine alone.
	if err := m.Tick(ctx, "t", 3, testRow(3, 4), &rsp); err != nil {
		t.Fatal(err)
	}
	if !rsp.Duplicate || rsp.Seq != 3 {
		t.Fatalf("replayed seq 3: rsp %+v", rsp)
	}
	// The duplicate ack carries a verify handle: Wait must confirm the
	// original append is still on stable storage.
	if err := rsp.Durable.Wait(); err != nil {
		t.Fatalf("duplicate durability: %v", err)
	}
	info, err := m.Info(ctx, "t")
	if err != nil || info.Seq != 5 {
		t.Fatalf("info after duplicate: %+v, %v", info, err)
	}

	// A gap means lost rows: refuse it.
	if err := m.Tick(ctx, "t", 9, testRow(9, 4), &rsp); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap seq: err = %v, want ErrSeqGap", err)
	}
	// The WAL and the engine stayed in lockstep throughout.
	if err := m.Tick(ctx, "t", 6, testRow(6, 4), &rsp); err != nil {
		t.Fatalf("seq 6 after gap refusal: %v", err)
	}
}

// TestAttachCheckpointNewerThanLog: restoring from a checkpoint newer than
// the WAL tail (the signature of a kill -9 between a checkpoint rename and
// the covering fsync) fast-forwards the log. The raise must not leave a
// sequence gap inside the old segment — a later reopen would read it as a
// torn tail and truncate every record appended after the restore.
func TestAttachCheckpointNewerThanLog(t *testing.T) {
	ctx := context.Background()
	walDir := t.TempDir()

	// Session 1: seqs 1..3 reach the log; the checkpoint that survives the
	// crash was taken at seq 5, ahead of the log tail.
	walMgr := wal.NewManager(walDir, wal.Options{})
	m := New(Options{Shards: 1, WAL: walMgr})
	if err := m.Create(ctx, "t", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	var rsp TickResponse
	for seq := uint64(1); seq <= 3; seq++ {
		if err := m.Tick(ctx, "t", seq, testRow(int(seq), 4), &rsp); err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if err := rsp.Durable.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	if err := walMgr.Close(); err != nil {
		t.Fatal(err)
	}

	// The restored engine ran ahead of the log: seq 5.
	eng, err := core.NewEngine(testConfig(), testStreams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 5; seq++ {
		if _, _, err := eng.Tick(testRow(seq, 4)); err != nil {
			t.Fatal(err)
		}
	}

	walMgr2 := wal.NewManager(walDir, wal.Options{})
	m2 := New(Options{Shards: 1, WAL: walMgr2})
	if err := m2.Attach(ctx, "t", eng); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(6); seq <= 8; seq++ {
		if err := m2.Tick(ctx, "t", seq, testRow(int(seq), 4), &rsp); err != nil {
			t.Fatalf("seq %d after attach: %v", seq, err)
		}
		if err := rsp.Durable.Wait(); err != nil {
			t.Fatalf("seq %d durability: %v", seq, err)
		}
	}
	m2.Close()
	if err := walMgr2.Close(); err != nil {
		t.Fatal(err)
	}

	// Full reopen + replay from the checkpoint boundary: every acked
	// post-restore row must still be there.
	walMgr3 := wal.NewManager(walDir, wal.Options{})
	defer walMgr3.Close()
	var seqs []uint64
	last, err := walMgr3.ReplayTenant("t", 6, func(seq uint64, values []float64) error {
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil || last != 8 || len(seqs) != 3 || seqs[0] != 6 {
		t.Fatalf("replay after attach+reopen: last=%d seqs=%v err=%v", last, seqs, err)
	}
	l, err := walMgr3.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 9 {
		t.Fatalf("reopened NextSeq = %d, want 9", got)
	}
}

// TestTickRejectsInvalidRowBeforeWAL: a row the engine would refuse must
// not reach the log (the two sequence spaces may never diverge).
func TestTickRejectsInvalidRowBeforeWAL(t *testing.T) {
	ctx := context.Background()
	walDir := t.TempDir()
	walMgr := wal.NewManager(walDir, wal.Options{})
	defer walMgr.Close()
	m := New(Options{Shards: 1, WAL: walMgr})
	defer m.Close()
	if err := m.Create(ctx, "t", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	var rsp TickResponse
	bad := []float64{1, math.Inf(1), 3, 4}
	if err := m.Tick(ctx, "t", 0, bad, &rsp); err == nil {
		t.Fatal("±Inf row was accepted")
	}
	if err := m.Tick(ctx, "t", 0, testRow(0, 4), &rsp); err != nil {
		t.Fatal(err)
	}
	last, err := wal.Replay(filepath.Join(walDir, "t"), 1, func(seq uint64, values []float64) error {
		for _, v := range values {
			if math.IsInf(v, 0) {
				t.Fatalf("rejected row reached the WAL: %v", values)
			}
		}
		return nil
	})
	if err != nil || last != 1 {
		t.Fatalf("replay: last=%d err=%v (want exactly the one valid row)", last, err)
	}
}

// TestCreateResetsStaleWAL: re-creating a tenant id whose old log directory
// survived (e.g. its checkpoint was lost) must start a fresh log, not
// resume the dead tenant's sequence numbers.
func TestCreateResetsStaleWAL(t *testing.T) {
	ctx := context.Background()
	walDir := t.TempDir()
	stale := wal.NewManager(walDir, wal.Options{})
	l, err := stale.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 7; seq++ {
		if _, err := l.Append(seq, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	stale.Close()

	walMgr := wal.NewManager(walDir, wal.Options{})
	defer walMgr.Close()
	m := New(Options{Shards: 1, WAL: walMgr})
	defer m.Close()
	if err := m.Create(ctx, "t", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	var rsp TickResponse
	if err := m.Tick(ctx, "t", 1, testRow(1, 4), &rsp); err != nil {
		t.Fatalf("first tick of re-created tenant: %v", err)
	}
	if rsp.Seq != 1 {
		t.Fatalf("seq %d, want 1", rsp.Seq)
	}
}

// TestTickBatchMatchesTick: a tenant driven with TickBatch must produce
// bit-identical completed rows, sequence numbers, and imputation lists to a
// tenant driven row by row — with the WAL on, so the batched append path is
// exercised too.
func TestTickBatchMatchesTick(t *testing.T) {
	ctx := context.Background()
	walMgr := wal.NewManager(t.TempDir(), wal.Options{})
	defer walMgr.Close()
	m := New(Options{Shards: 2, WAL: walMgr})
	defer m.Close()
	if err := m.Create(ctx, "batched", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Create(ctx, "rowwise", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}

	const n, batch = 120, 16
	rows := make([][]float64, n)
	for tk := range rows {
		rows[tk] = testRow(tk, 4)
		if tk > 30 && tk%4 == 0 {
			rows[tk][0] = math.NaN()
		}
		if tk > 30 && tk%37 == 0 {
			for i := range rows[tk] { // entirely missing tick
				rows[tk][i] = math.NaN()
			}
		}
	}
	var rsp TickResponse
	var brsp BatchResponse
	for a := 0; a < n; a += batch {
		b := a + batch
		if b > n {
			b = n
		}
		if err := m.TickBatch(ctx, "batched", uint64(a+1), rows[a:b], &brsp); err != nil {
			t.Fatalf("batch %d:%d: %v", a, b, err)
		}
		if err := brsp.Durable.Wait(); err != nil {
			t.Fatalf("batch %d:%d durability: %v", a, b, err)
		}
		if len(brsp.Rows) != b-a {
			t.Fatalf("batch %d:%d: %d results, want %d", a, b, len(brsp.Rows), b-a)
		}
		for r, got := range brsp.Rows {
			tk := a + r
			if err := m.Tick(ctx, "rowwise", uint64(tk+1), rows[tk], &rsp); err != nil {
				t.Fatalf("rowwise tick %d: %v", tk, err)
			}
			if got.Duplicate || got.Seq != rsp.Seq || got.Tick != rsp.Tick {
				t.Fatalf("tick %d: batch rsp {seq %d tick %d dup %v}, rowwise {seq %d tick %d}",
					tk, got.Seq, got.Tick, got.Duplicate, rsp.Seq, rsp.Tick)
			}
			for i := range rsp.Row {
				if got.Row[i] != rsp.Row[i] {
					t.Fatalf("tick %d stream %d: batch %v, rowwise %v", tk, i, got.Row[i], rsp.Row[i])
				}
			}
			if len(got.Imputed) != len(rsp.Imputed) {
				t.Fatalf("tick %d: imputed %v vs %v", tk, got.Imputed, rsp.Imputed)
			}
			for i := range rsp.Imputed {
				if got.Imputed[i] != rsp.Imputed[i] {
					t.Fatalf("tick %d: imputed %v vs %v", tk, got.Imputed, rsp.Imputed)
				}
			}
		}
	}
	bi, err := m.Info(ctx, "batched")
	if err != nil {
		t.Fatal(err)
	}
	ri, err := m.Info(ctx, "rowwise")
	if err != nil {
		t.Fatal(err)
	}
	if bi.Seq != ri.Seq || bi.Ticks != ri.Ticks {
		t.Fatalf("batched info %+v, rowwise %+v", bi, ri)
	}
}

// TestTickBatchSequencedSemantics pins the exactly-once contract for
// batches: a fully-replayed batch acks as duplicates, a batch straddling the
// engine's sequence number applies only the unseen suffix, and a batch
// skipping ahead is refused whole.
func TestTickBatchSequencedSemantics(t *testing.T) {
	ctx := context.Background()
	walMgr := wal.NewManager(t.TempDir(), wal.Options{})
	defer walMgr.Close()
	m := New(Options{Shards: 1, WAL: walMgr})
	defer m.Close()
	if err := m.Create(ctx, "t", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	rows := func(from, n int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			out[i] = testRow(from+i, 4)
		}
		return out
	}
	var rsp BatchResponse
	if err := m.TickBatch(ctx, "t", 1, rows(1, 6), &rsp); err != nil {
		t.Fatal(err)
	}
	if err := rsp.Durable.Wait(); err != nil {
		t.Fatal(err)
	}

	// Full replay: every row acked as a duplicate, durability re-verified.
	if err := m.TickBatch(ctx, "t", 1, rows(1, 6), &rsp); err != nil {
		t.Fatal(err)
	}
	for r, got := range rsp.Rows {
		if !got.Duplicate || got.Seq != uint64(r+1) {
			t.Fatalf("row %d of replayed batch: %+v", r, got)
		}
	}
	if err := rsp.Durable.Wait(); err != nil {
		t.Fatalf("duplicate batch durability: %v", err)
	}

	// Straddling batch (seqs 4..9 against engine seq 6): 4..6 duplicate,
	// 7..9 applied.
	if err := m.TickBatch(ctx, "t", 4, rows(4, 6), &rsp); err != nil {
		t.Fatal(err)
	}
	for r, got := range rsp.Rows {
		seq := uint64(4 + r)
		if got.Seq != seq || got.Duplicate != (seq <= 6) {
			t.Fatalf("straddling row %d: %+v", r, got)
		}
		if !got.Duplicate && len(got.Row) != 4 {
			t.Fatalf("applied row %d has no completed values: %+v", r, got)
		}
	}
	if err := rsp.Durable.Wait(); err != nil {
		t.Fatal(err)
	}
	info, err := m.Info(ctx, "t")
	if err != nil || info.Seq != 9 {
		t.Fatalf("info after straddling batch: %+v, %v", info, err)
	}

	// A gap refuses the whole batch and applies nothing.
	if err := m.TickBatch(ctx, "t", 11, rows(11, 3), &rsp); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap batch: err = %v, want ErrSeqGap", err)
	}
	if info, _ := m.Info(ctx, "t"); info.Seq != 9 {
		t.Fatalf("gap batch advanced seq to %d", info.Seq)
	}
}

// TestTickBatchRejectsInvalidRowBeforeWAL: one bad row refuses the whole
// batch — nothing is logged, nothing applied, and the error names the row.
func TestTickBatchRejectsInvalidRowBeforeWAL(t *testing.T) {
	ctx := context.Background()
	walDir := t.TempDir()
	walMgr := wal.NewManager(walDir, wal.Options{})
	defer walMgr.Close()
	m := New(Options{Shards: 1, WAL: walMgr})
	defer m.Close()
	if err := m.Create(ctx, "t", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	batch := [][]float64{testRow(0, 4), testRow(1, 4), {1, math.Inf(1), 3, 4}, testRow(3, 4)}
	var rsp BatchResponse
	err := m.TickBatch(ctx, "t", 1, batch, &rsp)
	if err == nil || !strings.Contains(err.Error(), "batch row 2") {
		t.Fatalf("bad batch: err = %v, want one naming row 2", err)
	}
	if info, _ := m.Info(ctx, "t"); info.Seq != 0 {
		t.Fatalf("rejected batch advanced seq to %d", info.Seq)
	}
	if err := m.TickBatch(ctx, "t", 1, batch[:2], &rsp); err != nil {
		t.Fatal(err)
	}
	last, err := wal.Replay(filepath.Join(walDir, "t"), 1, func(seq uint64, values []float64) error {
		for _, v := range values {
			if math.IsInf(v, 0) {
				t.Fatalf("rejected batch reached the WAL: %v", values)
			}
		}
		return nil
	})
	if err != nil || last != 2 {
		t.Fatalf("replay: last=%d err=%v (want exactly the valid rows)", last, err)
	}
}

// TestTickBatchWALReplayAfterCrash is the kill -9 story for batched ingest:
// rows acked through batched appends must replay from the log into a state
// bit-identical to a never-crashed engine fed the same rows one at a time.
func TestTickBatchWALReplayAfterCrash(t *testing.T) {
	ctx := context.Background()
	walDir := t.TempDir()
	walMgr := wal.NewManager(walDir, wal.Options{})
	m := New(Options{Shards: 1, WAL: walMgr})
	if err := m.Create(ctx, "t", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	const n, batch = 90, 13
	rows := make([][]float64, n)
	for tk := range rows {
		rows[tk] = testRow(tk, 4)
		if tk > 30 && tk%5 == 0 {
			rows[tk][1] = math.NaN()
		}
	}
	var brsp BatchResponse
	for a := 0; a < n; a += batch {
		b := a + batch
		if b > n {
			b = n
		}
		if err := m.TickBatch(ctx, "t", uint64(a+1), rows[a:b], &brsp); err != nil {
			t.Fatal(err)
		}
		if err := brsp.Durable.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// kill -9: the manager and WAL handles just vanish (no checkpoint, no
	// clean close of the engines).
	m.Close()
	walMgr.Close()

	// Recovery: fresh engine, replay the log row by row (exactly what the
	// server's restore path does).
	recovered, err := core.NewEngine(testConfig(), testStreams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	walMgr2 := wal.NewManager(walDir, wal.Options{})
	defer walMgr2.Close()
	last, err := walMgr2.ReplayTenant("t", 1, func(seq uint64, values []float64) error {
		if seq != recovered.Seq()+1 {
			t.Fatalf("replay seq %d, engine expects %d", seq, recovered.Seq()+1)
		}
		_, _, err := recovered.Tick(values)
		return err
	})
	if err != nil || last != n {
		t.Fatalf("replay: last=%d err=%v, want %d", last, err, n)
	}

	// Reference: the same rows, never crashed, fed one at a time.
	direct, err := core.NewEngine(testConfig(), testStreams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for tk := range rows {
		if _, _, err := direct.Tick(rows[tk]); err != nil {
			t.Fatal(err)
		}
	}
	if recovered.Stats != direct.Stats {
		t.Fatalf("recovered stats %+v, direct %+v", recovered.Stats, direct.Stats)
	}
	// Continued ingest stays bit-identical.
	for tk := n; tk < n+30; tk++ {
		row := testRow(tk, 4)
		if tk%3 == 0 {
			row[2] = math.NaN()
		}
		want, _, err := direct.Tick(append([]float64(nil), row...))
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := recovered.Tick(row)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("post-replay tick %d stream %d: %v != %v", tk, i, got[i], want[i])
			}
		}
	}
}
