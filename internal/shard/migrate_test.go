package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tkcm/internal/core"
	"tkcm/internal/wal"
)

// restoreSnapshot pulls the tenant's engine image out of the manager and
// rebuilds it, so tests can inspect window contents without reaching into
// shard internals.
func restoreSnapshot(t *testing.T, m *Manager, id string) *core.Engine {
	t.Helper()
	var buf bytes.Buffer
	if _, err := m.Snapshot(context.Background(), id, &buf); err != nil {
		t.Fatalf("snapshot of %q: %v", id, err)
	}
	eng, err := core.RestoreEngine(&buf)
	if err != nil {
		t.Fatalf("restoring snapshot of %q: %v", id, err)
	}
	return eng
}

// requireWindowsEqual compares every retained tick of every stream exactly:
// snapshot/restore preserves float bits and replay is deterministic, so a
// migrated engine has no excuse for even one ULP of drift.
func requireWindowsEqual(t *testing.T, got, want *core.Engine, width int) {
	t.Helper()
	if got.Seq() != want.Seq() {
		t.Fatalf("seq %d, want %d", got.Seq(), want.Seq())
	}
	for i := 0; i < width; i++ {
		g := got.Window().Snapshot(i)
		w := want.Window().Snapshot(i)
		if len(g) != len(w) {
			t.Fatalf("stream %d: %d retained ticks, want %d", i, len(g), len(w))
		}
		for j := range w {
			if g[j] != w[j] && !(math.IsNaN(g[j]) && math.IsNaN(w[j])) {
				t.Fatalf("stream %d tick %d: %v, want %v", i, j, g[j], w[j])
			}
		}
	}
}

func TestMigrateMovesTenantLive(t *testing.T) {
	ctx := context.Background()
	m := New(Options{Shards: 3, QueueLen: 8})
	defer m.Close()
	if err := m.Create(ctx, "mt", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	control, err := core.NewEngine(testConfig(), testStreams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()

	feed := func(from, to int) {
		var rsp TickResponse
		for tk := from; tk < to; tk++ {
			row := testRow(tk, 4)
			if tk > 10 && tk%4 == 0 {
				row[2] = math.NaN()
			}
			if err := m.Tick(ctx, "mt", 0, row, &rsp); err != nil {
				t.Fatalf("tick %d: %v", tk, err)
			}
			row = testRow(tk, 4)
			if tk > 10 && tk%4 == 0 {
				row[2] = math.NaN()
			}
			if _, _, err := control.Tick(row); err != nil {
				t.Fatalf("control tick %d: %v", tk, err)
			}
		}
	}

	feed(0, 40)
	src, err := m.Info(ctx, "mt")
	if err != nil {
		t.Fatal(err)
	}
	dst := (src.Shard + 1) % 3
	gotSrc, err := m.Migrate(ctx, "mt", dst)
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if gotSrc != src.Shard {
		t.Fatalf("migrate reported source %d, want %d", gotSrc, src.Shard)
	}
	info, err := m.Info(ctx, "mt")
	if err != nil {
		t.Fatal(err)
	}
	if info.Shard != dst {
		t.Fatalf("tenant hosted on shard %d after migration to %d", info.Shard, dst)
	}
	if info.Seq != 40 {
		t.Fatalf("seq %d after migration, want 40", info.Seq)
	}
	// The migrations counter and routing table must both reflect the move.
	if m.Migrations() != 1 {
		t.Fatalf("migrations counter %d, want 1", m.Migrations())
	}
	if got := m.routing.ShardFor("mt"); got != dst {
		t.Fatalf("routing table says shard %d, want %d", got, dst)
	}

	// Ticks keep flowing on the destination and the tenant behaves exactly
	// like an engine that never moved.
	feed(40, 80)
	requireWindowsEqual(t, restoreSnapshot(t, m, "mt"), control, 4)

	// Migrating onto the current shard is a verified no-op.
	if _, err := m.Migrate(ctx, "mt", dst); err != nil {
		t.Fatalf("same-shard migrate: %v", err)
	}
	if m.Migrations() != 1 {
		t.Fatalf("no-op migration bumped the counter to %d", m.Migrations())
	}
}

func TestMigrateErrors(t *testing.T) {
	ctx := context.Background()
	m := New(Options{Shards: 2})
	defer m.Close()
	if _, err := m.Migrate(ctx, "ghost", 5); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	if _, err := m.Migrate(ctx, "ghost", 1); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("migrating unknown tenant: %v", err)
	}
	// A failed migration leaves no residue: the next operation resolves
	// normally (nothing parked, no migration marker).
	if err := m.Create(ctx, "ghost", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	var rsp TickResponse
	if err := m.Tick(ctx, "ghost", 0, testRow(0, 4), &rsp); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateUnderSequencedLoad is the manager-level liveness + exactly-once
// property: a sequenced writer streams without pause while the tenant
// ping-pongs between shards. Every row must be acked exactly once, in
// order, and the final engine must be indistinguishable from one that never
// moved.
func TestMigrateUnderSequencedLoad(t *testing.T) {
	ctx := context.Background()
	m := New(Options{Shards: 4, QueueLen: 8, HandoffLen: 4})
	defer m.Close()
	if err := m.Create(ctx, "hot", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}

	const total = 600
	rowFor := func(n int) []float64 {
		row := testRow(n, 4)
		if n > 20 && n%3 == 0 {
			row[1] = math.NaN()
		}
		return row
	}

	var acked atomic.Uint64
	tickErr := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var rsp TickResponse
		for n := 1; n <= total; n++ {
			if err := m.Tick(ctx, "hot", uint64(n), rowFor(n), &rsp); err != nil {
				tickErr <- err
				return
			}
			if rsp.Seq != uint64(n) || rsp.Duplicate {
				tickErr <- errors.New("ack out of order or duplicated")
				return
			}
			acked.Store(uint64(n))
		}
		tickErr <- nil
	}()

	// Ping-pong the tenant across all four shards until the writer is done,
	// pacing on writer progress: back-to-back migrations with no pause form
	// a channel wake ping-pong with the shard goroutines that can starve
	// every other goroutine on a GOMAXPROCS=1 box (runnext scheduling) —
	// real migrations are endpoint- or rebalancer-paced, so the test paces
	// too, on ack progress rather than wall time to stay deterministic.
	migrations := 0
	for {
		select {
		case <-done:
		default:
			if _, err := m.Migrate(ctx, "hot", migrations%4); err != nil {
				t.Fatalf("migration %d: %v", migrations, err)
			}
			migrations++
			before := acked.Load()
			for acked.Load() == before {
				select {
				case <-done:
				case <-time.After(100 * time.Microsecond):
					continue
				}
				break
			}
			continue
		}
		break
	}
	if err := <-tickErr; err != nil {
		t.Fatal(err)
	}
	if migrations == 0 {
		t.Fatal("no migrations ran during the stream")
	}

	control, err := core.NewEngine(testConfig(), testStreams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	for n := 1; n <= total; n++ {
		if _, _, err := control.Tick(rowFor(n)); err != nil {
			t.Fatal(err)
		}
	}
	requireWindowsEqual(t, restoreSnapshot(t, m, "hot"), control, 4)
}

// TestMigrateWithWALKeepsDurabilityAndDedup drives the durability contract
// across a flip: appends stay contiguous in the tenant's log, rows
// replayed after the migration are acked as duplicates whose durability
// handle verifies, and a fresh manager restores the full history.
func TestMigrateWithWALKeepsDurabilityAndDedup(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	wm := wal.NewManager(filepath.Join(dir, "wal"), wal.Options{SyncInterval: time.Millisecond})
	defer wm.Close()
	m := New(Options{Shards: 2, WAL: wm})
	if err := m.Create(ctx, "w1", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}

	var rsp TickResponse
	for n := 1; n <= 30; n++ {
		if err := m.Tick(ctx, "w1", uint64(n), testRow(n, 4), &rsp); err != nil {
			t.Fatal(err)
		}
		if err := rsp.Durable.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	src, _ := m.Info(ctx, "w1")
	if _, err := m.Migrate(ctx, "w1", 1-src.Shard); err != nil {
		t.Fatal(err)
	}

	// A client replaying across the flip: rows 21..30 again → duplicates
	// whose durability promise still verifies; 31 onward applies normally.
	for n := 21; n <= 30; n++ {
		if err := m.Tick(ctx, "w1", uint64(n), testRow(n, 4), &rsp); err != nil {
			t.Fatalf("replayed row %d: %v", n, err)
		}
		if !rsp.Duplicate {
			t.Fatalf("replayed row %d not deduplicated", n)
		}
		if err := rsp.Durable.Wait(); err != nil {
			t.Fatalf("replayed row %d durability: %v", n, err)
		}
	}
	for n := 31; n <= 60; n++ {
		if err := m.Tick(ctx, "w1", uint64(n), testRow(n, 4), &rsp); err != nil {
			t.Fatalf("row %d after migration: %v", n, err)
		}
		if rsp.Duplicate || rsp.Seq != uint64(n) {
			t.Fatalf("row %d: duplicate=%v seq=%d", n, rsp.Duplicate, rsp.Seq)
		}
		if err := rsp.Durable.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Sequence gaps are still refused after the flip.
	if err := m.Tick(ctx, "w1", 99, testRow(99, 4), &rsp); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap after migration: %v", err)
	}
	m.Close()

	// The log must replay the complete, contiguous history onto a fresh
	// engine — migration left no seam.
	eng, err := core.NewEngine(testConfig(), testStreams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	last, err := wal.Replay(filepath.Join(dir, "wal", "w1"), 1, func(seq uint64, values []float64) error {
		replayed++
		_, _, err := eng.Tick(values)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 60 || replayed != 60 {
		t.Fatalf("replay reached seq %d over %d records, want 60/60", last, replayed)
	}
	control, err := core.NewEngine(testConfig(), testStreams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	for n := 1; n <= 60; n++ {
		if _, _, err := control.Tick(testRow(n, 4)); err != nil {
			t.Fatal(err)
		}
	}
	requireWindowsEqual(t, eng, control, 4)
	eng.Close()
}

// TestMigratePersistedRouteSurvivesReopen pins the restart contract: a
// migration's route outlives the manager via the table file, and a new
// manager over the same table hosts the tenant on the migrated shard.
func TestMigratePersistedRouteSurvivesReopen(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "routing.tkcmrt")
	tb, err := OpenTable(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Options{Routing: tb, QueueLen: 8})
	if err := m.Create(ctx, "pr", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	info, _ := m.Info(ctx, "pr")
	dst := (info.Shard + 1) % 3
	if _, err := m.Migrate(ctx, "pr", dst); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if _, err := m.Snapshot(ctx, "pr", &snap); err != nil {
		t.Fatal(err)
	}
	m.Close()

	tb2, err := OpenTable(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(Options{Routing: tb2, QueueLen: 8})
	defer m2.Close()
	eng, err := core.RestoreEngine(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Attach(ctx, "pr", eng); err != nil {
		t.Fatal(err)
	}
	got, err := m2.Info(ctx, "pr")
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != dst {
		t.Fatalf("after reopen, tenant on shard %d, want migrated shard %d", got.Shard, dst)
	}
}

// TestMigrateConcurrentOpsDoNotError floods the manager with mixed
// operations (ticks, info, list, snapshot) for several tenants while one of
// them migrates repeatedly: nothing may fail, and nothing may deadlock.
func TestMigrateConcurrentOpsDoNotError(t *testing.T) {
	ctx := context.Background()
	m := New(Options{Shards: 3, QueueLen: 4, HandoffLen: 2})
	defer m.Close()
	for _, id := range []string{"c1", "c2", "c3"} {
		if err := m.Create(ctx, id, testConfig(), testStreams(), nil); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for _, id := range []string{"c1", "c2", "c3"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			var rsp TickResponse
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := m.Tick(ctx, id, 0, testRow(n, 4), &rsp); err != nil {
					errc <- err
					return
				}
				if _, err := m.Info(ctx, id); err != nil {
					errc <- err
					return
				}
			}
		}(id)
	}
	// A listing racing the moves must never lose a tenant to the transit
	// window: mid-migration the engine is in no shard map, and Tenants
	// resolves it through the park path instead of omitting it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			infos, err := m.Tenants(ctx)
			if err != nil {
				errc <- err
				return
			}
			if len(infos) != 3 {
				errc <- fmt.Errorf("listing during migration returned %d tenants, want 3", len(infos))
				return
			}
		}
	}()
	for i := 0; i < 12; i++ {
		if _, err := m.Migrate(ctx, "c1", i%3); err != nil {
			t.Fatalf("migration %d: %v", i, err)
		}
		// Pace the moves so the tick goroutines get scheduled between them
		// (see TestMigrateUnderSequencedLoad on runnext starvation).
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("concurrent op failed during migrations: %v", err)
	default:
	}
}
