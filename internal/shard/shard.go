package shard

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"tkcm/internal/core"
	"tkcm/internal/obs"
	"tkcm/internal/wal"
)

// Sentinel errors of the manager boundary. Tenant-specific occurrences are
// wrapped with the tenant id; match with errors.Is.
var (
	// ErrClosed is returned by every operation after Close has begun.
	ErrClosed = errors.New("shard: manager closed")
	// ErrTenantExists is returned by Create/Attach for an id already hosted.
	ErrTenantExists = errors.New("shard: tenant already exists")
	// ErrNoTenant is returned for operations on an unknown tenant id.
	ErrNoTenant = errors.New("shard: no such tenant")
	// ErrSeqGap is returned by a sequenced Tick whose client sequence number
	// skips ahead of the engine — rows in between were never applied, so
	// accepting the row would silently lose them.
	ErrSeqGap = errors.New("shard: sequence gap")
	// ErrBadShard is returned by Migrate for a destination outside the
	// manager's shard range — a caller error, distinct from the internal
	// failures (snapshot, restore, table save) a migration can also hit.
	ErrBadShard = errors.New("shard: no such shard")
)

// Options configures a Manager.
type Options struct {
	// Shards is the number of single-goroutine engine shards (default 4).
	// Ignored when Routing is set: the table's shard count wins, so the
	// routes it persists can never point off the end of the shard slice.
	Shards int
	// QueueLen bounds each shard's request queue (default 64). A full queue
	// blocks submitters — the backpressure making overload visible upstream.
	QueueLen int
	// HandoffLen bounds the parked-request buffer of a live migration
	// (default 256): requests for the migrating tenant queue here while its
	// engine is in transit and replay on the destination after the flip.
	// When full, submitters block until the flip — the migration-time
	// equivalent of a full shard queue.
	HandoffLen int
	// Routing is the tenant→shard routing table. nil gets an ephemeral
	// default table over Shards shards (pure hash routing, no persistence).
	Routing *Table
	// WAL, when non-nil, write-ahead-logs every tick before it is applied:
	// Create/Attach open the tenant's log, Delete removes it, and Tick
	// appends the raw row and hands back the group-commit handle in
	// TickResponse.Durable. The caller acks only after Durable.Wait().
	WAL *wal.Manager
	// Hydrate rebuilds an evicted tenant's engine from its newest durable
	// checkpoint (the WAL tail is replayed on top by the shard). Setting it
	// enables the residency tier: without a hydrator no tenant is ever
	// evicted, whatever the caps say. The hook runs on a shard goroutine, so
	// it must not call back into the Manager.
	Hydrate func(tenantID string) (*core.Engine, error)
	// ResidentEngines caps how many tenant engines stay in memory across the
	// manager (0 = unlimited). The budget splits evenly across shards
	// (rounded up, at least 1 each); a shard over its share parks its
	// least-recently-used tenants. Requires Hydrate — and, to not lose ticks
	// appended since the base checkpoint, a WAL.
	ResidentEngines int
	// ResidentBytes caps the estimated in-memory engine footprint
	// (core.Engine.MemoryBytes) the same way (0 = unlimited). Both caps may
	// be set; either one over budget triggers eviction.
	ResidentBytes int64
	// Parkable, when set, vetoes eviction of tenants it returns false for.
	// The serving layer uses it to keep a tenant resident until its base
	// checkpoint exists on disk — evicting earlier would park a tenant that
	// hydration cannot rebuild. Runs on a shard goroutine; keep it cheap
	// (a stat, not a read).
	Parkable func(tenantID string) bool
}

// TickResponse receives the outcome of one Manager.Tick. Its slices are
// reused across calls on the same TickResponse, so a caller streaming many
// ticks allocates only once.
type TickResponse struct {
	// Tick is the tenant engine's window tick index after this row.
	Tick int
	// Seq is the engine's sequence number for this row (rows ingested over
	// the tenant's lifetime; the first row is 1).
	Seq uint64
	// Duplicate reports that a sequenced row was already applied (its seq ≤
	// the engine's): the row was skipped and acked idempotently, with Row
	// and Imputed left empty. This is what makes client replay after a
	// reconnect exactly-once.
	Duplicate bool
	// Durable is the write-ahead-log commit handle: Wait returns once the
	// row is on stable storage. For a Duplicate it verifies (forcing a sync
	// if needed) that the original append's record is still covered. The
	// zero value (WAL disabled) waits for nothing.
	Durable wal.Commit
	// Row is the completed row: the input with every missing value imputed.
	Row []float64
	// Imputed lists the stream indices that were missing in the input.
	Imputed []int

	// Stage clocks (internal/obs), always on — capturing them is two clock
	// reads per leg, cheap enough that sampling never gates measurement.
	// QueueNanos is the time the operation waited between submission and
	// running on the shard goroutine (backpressure made visible per tick);
	// EngineNanos is the engine compute time; AppliedAt is the obs.Now
	// timestamp at which the shard operation finished (row applied, WAL
	// record appended) — the anchor the caller measures the group-commit
	// durability wait from.
	QueueNanos  int64
	EngineNanos int64
	AppliedAt   int64
}

// RowResult is one row's outcome inside a BatchResponse — the per-row
// fields of TickResponse without the durability handle, which the whole
// batch shares.
type RowResult struct {
	// Tick, Seq, Duplicate, Row, Imputed mirror the TickResponse fields of
	// the same names.
	Tick      int
	Seq       uint64
	Duplicate bool
	Row       []float64
	Imputed   []int
}

// BatchResponse receives the outcome of one Manager.TickBatch. Its slices
// (including each RowResult's) are reused across calls on the same value, so
// a caller streaming many batches allocates only in the first few.
type BatchResponse struct {
	// Durable is the single write-ahead-log commit handle covering EVERY row
	// of the batch: the rows share one log record and one group-commit slot.
	// For a batch of duplicates it verifies coverage like TickResponse's.
	// The zero value (WAL disabled) waits for nothing.
	Durable wal.Commit
	// Rows holds one entry per input row, in order.
	Rows []RowResult

	// QueueNanos, EngineNanos and AppliedAt are the batch-level stage clocks,
	// with the same meaning as TickResponse's: the whole batch shares one
	// queue wait, one engine ingest, and one WAL record.
	QueueNanos  int64
	EngineNanos int64
	AppliedAt   int64

	cols core.Columns // transpose scratch, reused across calls
}

// request is one queued operation; done is buffered so the shard goroutine
// never blocks handing back the result.
type request struct {
	op   func(*shard) error
	done chan error
}

// shard owns a disjoint subset of the tenants. Its state (the tenants map
// and every engine in it) is touched only by the shard goroutine; the
// counters are atomics so Stats can read them from outside.
type shard struct {
	id      int
	reqs    chan *request
	tenants map[string]*core.Engine

	// Residency tier (shard-goroutine only): parked holds evicted tenants'
	// footprints, lru/lruAt order the resident tenants by recency (front =
	// hottest), resBytes sums their estimated engine memory.
	parked   map[string]*parked
	lru      *list.List
	lruAt    map[string]*list.Element
	resBytes int64

	ntenants  atomic.Int64
	nresident atomic.Int64
	nparked   atomic.Int64
	processed atomic.Uint64
	ticks     atomic.Uint64
	imputed   atomic.Uint64
	waited    atomic.Uint64 // submissions that found the queue full
}

// Manager routes tenant operations onto shards.
type Manager struct {
	shards  []*shard
	routing *Table
	handoff int
	wal     *wal.Manager // nil = durability disabled
	senders sync.WaitGroup
	closed  atomic.Bool
	closing sync.Once
	wg      sync.WaitGroup

	// Residency tier: per-shard budgets (0 = unlimited), the hydration hook,
	// transition counters, and the fail-stop registry the health path reads.
	residentCap      int
	residentBytesCap int64
	hydrate          func(string) (*core.Engine, error)
	parkable         func(string) bool
	evictions        atomic.Uint64
	hydrations       atomic.Uint64
	hydrationHist    obs.Histogram
	failedMu         sync.Mutex
	failedTenants    map[string]error

	// Live-migration state: at most one tenant is in transit at a time
	// (migrateMu), and the hot path discovers it with one atomic load.
	migrateMu  sync.Mutex
	migrating  atomic.Pointer[migration]
	migrations atomic.Uint64
}

// New starts a manager with one goroutine per shard. The shard count comes
// from opts.Routing when set (so persisted routes always resolve), from
// opts.Shards otherwise.
func New(opts Options) *Manager {
	rt := opts.Routing
	if rt == nil {
		n := opts.Shards
		if n <= 0 {
			n = 4
		}
		rt = NewTable(n)
	}
	n := rt.NumShards()
	q := opts.QueueLen
	if q <= 0 {
		q = 64
	}
	h := opts.HandoffLen
	if h <= 0 {
		h = 256
	}
	m := &Manager{routing: rt, handoff: h, wal: opts.WAL, failedTenants: make(map[string]error)}
	if opts.Hydrate != nil {
		m.hydrate = opts.Hydrate
		m.parkable = opts.Parkable
		if opts.ResidentEngines > 0 {
			m.residentCap = (opts.ResidentEngines + n - 1) / n
		}
		if opts.ResidentBytes > 0 {
			m.residentBytesCap = (opts.ResidentBytes + int64(n) - 1) / int64(n)
		}
	}
	for i := 0; i < n; i++ {
		sh := &shard{id: i, reqs: make(chan *request, q), tenants: make(map[string]*core.Engine), parked: make(map[string]*parked)}
		sh.lru, sh.lruAt = newLRU()
		m.shards = append(m.shards, sh)
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			sh.loop()
		}()
	}
	return m
}

// loop executes requests until the queue is closed and drained, then closes
// every hosted engine (releasing their tick worker pools).
func (sh *shard) loop() {
	for req := range sh.reqs {
		req.done <- req.op(sh)
		sh.processed.Add(1)
	}
	for _, eng := range sh.tenants {
		eng.Close()
	}
}

// Shards returns the shard count.
func (m *Manager) Shards() int { return len(m.shards) }

// RoutingInfo snapshots the routing table for the cluster routing endpoint.
func (m *Manager) RoutingInfo() RoutingInfo { return m.routing.Info() }

// Migrations counts completed tenant migrations.
func (m *Manager) Migrations() uint64 { return m.migrations.Load() }

// shardFor resolves a tenant id through the routing table — one lock-free
// table lookup per request (explicit assignment, else default hash).
func (m *Manager) shardFor(tenantID string) *shard {
	return m.shards[m.routing.ShardFor(tenantID)]
}

// ShardOf reports which shard tenantID currently routes to — the same
// lock-free, allocation-free lookup the request path uses. The answer is a
// snapshot: a live migration can move the tenant right after. Metric
// attribution (which shard's histogram a tick lands in) is its intended
// consumer, where a stale read mislabels at most a migration-window of
// ticks.
func (m *Manager) ShardOf(tenantID string) int { return m.routing.ShardFor(tenantID) }

// errMisrouted reports that an operation ran on a shard the tenant had
// already migrated away from (it was queued behind the migration's capture
// step). Internal: do retries it against the current route; it never
// escapes to callers.
var errMisrouted = errors.New("shard: tenant rerouted mid-operation")

// do routes op to the tenant's shard and waits for the result. A full
// queue blocks (recorded as a backpressure event) until space frees, ctx is
// done, or the manager closes. Once accepted, the operation always runs —
// even if ctx expires meanwhile — because Close drains accepted requests.
// While the tenant is mid-migration, op parks in the migration's bounded
// handoff buffer instead and runs on whichever shard the migration
// concludes on.
func (m *Manager) do(ctx context.Context, tenantID string, op func(*shard) error) error {
	for {
		if mig := m.migrating.Load(); mig != nil && mig.tenant == tenantID {
			err, handled := m.park(ctx, mig, op)
			if handled {
				return err
			}
			continue // migration concluded while we looked — re-resolve
		}
		err := m.submit(ctx, m.shardFor(tenantID), op)
		if errors.Is(err, errMisrouted) {
			continue
		}
		return err
	}
}

// misrouted reports that tenantID does not currently route to sh — the
// operation raced a migration (it was queued behind the capture step, or
// resolved the route just before the flip) and must be retried on the
// tenant's current shard. Called from op bodies on the shard goroutine, so
// a miss in sh.tenants plus a still-matching route is a genuinely unknown
// tenant: the map and the route only diverge while a migration is in
// flight, which the first check catches.
func (m *Manager) misrouted(sh *shard, tenantID string) bool {
	if mig := m.migrating.Load(); mig != nil && mig.tenant == tenantID {
		return true
	}
	return m.shards[m.routing.ShardFor(tenantID)] != sh
}

// missing classifies a tenant lookup miss on sh: a rerouted tenant retries,
// anything else is ErrNoTenant.
func (m *Manager) missing(sh *shard, tenantID string) error {
	if m.misrouted(sh, tenantID) {
		return errMisrouted
	}
	return fmt.Errorf("%w: %q", ErrNoTenant, tenantID)
}

// park enqueues op in the migration's handoff buffer. It returns
// handled=false when the caller must re-resolve the route: the migration
// has concluded, or the buffer is full and the flip arrived while waiting.
func (m *Manager) park(ctx context.Context, mig *migration, op func(*shard) error) (error, bool) {
	mig.mu.Lock()
	if mig.done {
		mig.mu.Unlock()
		return nil, false
	}
	if len(mig.parked) < m.handoff {
		req := &request{op: op, done: make(chan error, 1)}
		mig.parked = append(mig.parked, req)
		mig.mu.Unlock()
		// Accepted: like a queued request, it always runs (the migration's
		// conclusion forwards it, answering with ErrClosed if the manager
		// shut down meanwhile), so waiting without ctx mirrors submit.
		return <-req.done, true
	}
	mig.mu.Unlock()
	// Handoff buffer full — the migration-time backpressure. Wait for the
	// flip (or give up with the caller's context), then re-resolve.
	select {
	case <-mig.flipped:
		return nil, false
	case <-ctx.Done():
		return ctx.Err(), true
	}
}

func (m *Manager) submit(ctx context.Context, sh *shard, op func(*shard) error) error {
	// The senders WaitGroup brackets the send so Close can wait out every
	// in-flight submission before closing the queues; the closed check sits
	// after Add, which makes the pair race-free: either we see closed and
	// back out, or Close's Wait covers our send.
	m.senders.Add(1)
	if m.closed.Load() {
		m.senders.Done()
		return ErrClosed
	}
	req := &request{op: op, done: make(chan error, 1)}
	select {
	case sh.reqs <- req:
	default:
		sh.waited.Add(1)
		select {
		case sh.reqs <- req:
		case <-ctx.Done():
			m.senders.Done()
			return ctx.Err()
		}
	}
	m.senders.Done()
	return <-req.done
}

// Create hosts a new tenant engine over the named streams. refs may be nil
// (reference sets are then ranked from the data on first need). With a WAL
// configured, the tenant's log is opened before the tenant is visible; a
// tenant whose ticks cannot be made durable is refused outright.
func (m *Manager) Create(ctx context.Context, tenantID string, cfg core.Config, streams []string, refs map[string]core.ReferenceSet) error {
	return m.do(ctx, tenantID, func(sh *shard) error {
		if _, ok := sh.tenants[tenantID]; ok {
			return fmt.Errorf("%w: %q", ErrTenantExists, tenantID)
		}
		if _, ok := sh.parked[tenantID]; ok {
			// A parked tenant exists exactly like a resident one — and a
			// fail-stopped one must never be silently re-created over.
			return fmt.Errorf("%w: %q", ErrTenantExists, tenantID)
		}
		if m.misrouted(sh, tenantID) {
			// The id migrated away while this create was queued: creating
			// here would host a second engine under an id that lives on
			// another shard. Retry on the current route (where it will
			// correctly collide).
			return errMisrouted
		}
		eng, err := core.NewEngine(cfg, streams, refs)
		if err != nil {
			return err
		}
		if m.wal != nil {
			// A fresh tenant must start a fresh log. A stale directory can
			// survive a lost checkpoint (the restore path refuses to host a
			// tenant whose config it cannot recover); resuming it would pin
			// the log at the dead tenant's sequence numbers and make every
			// tick of the new one fail as out-of-order.
			if err := m.wal.Remove(tenantID); err != nil {
				eng.Close()
				return err
			}
			if _, err := m.wal.Open(tenantID); err != nil {
				eng.Close()
				return err
			}
		}
		sh.install(tenantID, eng)
		sh.ntenants.Add(1)
		m.maybeEvict(sh)
		return nil
	})
}

// Attach hosts an existing engine — typically one restored from a snapshot
// (+ WAL replay) — as tenant tenantID. The manager takes ownership (it will
// Close the engine). With a WAL configured, the tenant's log is opened and
// fast-forwarded past the engine's sequence number, so the next tick
// appends contiguously even when the checkpoint is newer than the log.
func (m *Manager) Attach(ctx context.Context, tenantID string, eng *core.Engine) error {
	return m.do(ctx, tenantID, func(sh *shard) error {
		if _, ok := sh.tenants[tenantID]; ok {
			return fmt.Errorf("%w: %q", ErrTenantExists, tenantID)
		}
		if _, ok := sh.parked[tenantID]; ok {
			return fmt.Errorf("%w: %q", ErrTenantExists, tenantID)
		}
		if m.misrouted(sh, tenantID) {
			return errMisrouted
		}
		if m.wal != nil {
			l, err := m.wal.Open(tenantID)
			if err != nil {
				return err
			}
			if err := l.SetNextSeq(eng.Seq() + 1); err != nil {
				return err
			}
		}
		sh.install(tenantID, eng)
		sh.ntenants.Add(1)
		m.maybeEvict(sh)
		return nil
	})
}

// Delete removes a tenant, closes its engine, and deletes its write-ahead
// log (a deleted tenant must not resurrect from its log on restart). The
// tenant's explicit routing assignment, if any, is dropped inside the same
// shard operation: flipping the route after the op returned would let a
// concurrent Create of the same id land on the stale shard and then be
// orphaned by the flip. Inside the op, such a Create either queues behind
// this one on the old shard (its miss then classifies as misrouted and
// retries on the new route) or resolves the new route directly. The
// unassign itself is best-effort — a stale entry only pins where a future
// tenant of the same id would land. Only the in-memory flip runs on the
// shard goroutine; the table save (an fsync) happens after the op, off the
// shard's critical path.
func (m *Manager) Delete(ctx context.Context, tenantID string) error {
	flipped := false
	err := m.do(ctx, tenantID, func(sh *shard) error {
		if _, ok := sh.tenants[tenantID]; ok {
			sh.detach(tenantID).Close()
		} else if _, ok := sh.parked[tenantID]; ok {
			// A parked tenant deletes without hydrating — there is no engine
			// state to tear down, only the footprint, the durable files, and
			// (for a fail-stopped tenant) the latched error. Delete is the
			// one operation that clears a fail-stop.
			delete(sh.parked, tenantID)
			sh.nparked.Add(-1)
			m.clearFailed(tenantID)
		} else {
			return m.missing(sh, tenantID)
		}
		sh.ntenants.Add(-1)
		flipped = m.routing.UnassignMem(tenantID)
		if m.wal != nil {
			return m.wal.Remove(tenantID)
		}
		return nil
	})
	if flipped {
		m.routing.Flush()
	}
	return err
}

// Tick feeds one row (NaN = missing) to the tenant's engine and copies the
// completed row into rsp. rsp's slices are reused across calls.
//
// seq makes the tick idempotent for replaying clients: 0 means unsequenced
// (always applied); otherwise the row is applied only when seq is exactly
// the engine's next sequence number, acked as a Duplicate when it was
// already applied, and refused with ErrSeqGap when rows in between are
// missing. With a WAL configured the raw row is validated, then logged,
// then applied — rsp.Durable resolves when the log record is fsynced, and
// only then may the caller acknowledge the row.
func (m *Manager) Tick(ctx context.Context, tenantID string, seq uint64, row []float64, rsp *TickResponse) error {
	enq := obs.Now()
	return m.do(ctx, tenantID, func(sh *shard) error {
		// Queue wait: submission to running on the shard goroutine. A
		// misrouted retry re-enters here, so the clock accumulates the full
		// wait across requeues — which is exactly what the tick experienced.
		rsp.QueueNanos = obs.Now() - enq
		rsp.EngineNanos = 0
		eng, err := m.resident(sh, tenantID)
		if err != nil {
			return err
		}
		engSeq := eng.Seq()
		rsp.Duplicate = false
		rsp.Durable = wal.Commit{}
		if seq != 0 {
			if seq <= engSeq {
				// Already applied — but "applied" is not "durable": the
				// original append's group commit may still be pending, or may
				// have failed after the row reached the engine. A duplicate
				// ack is a durability promise like any other, so hand back a
				// handle that verifies (and if needed forces) coverage at
				// Wait time, on the caller's goroutine — syncing here would
				// block every tenant on this shard behind an fsync.
				if m.wal != nil {
					l := m.wal.Get(tenantID)
					if l == nil {
						return fmt.Errorf("shard: tenant %q has no open log", tenantID)
					}
					rsp.Durable = l.DurableCommit(seq)
				}
				rsp.Seq = seq
				rsp.Tick = eng.Window().Tick()
				rsp.Row = rsp.Row[:0]
				rsp.Imputed = rsp.Imputed[:0]
				rsp.Duplicate = true
				rsp.AppliedAt = obs.Now()
				return nil
			}
			if seq != engSeq+1 {
				return fmt.Errorf("%w: tenant %q: client seq %d, next is %d", ErrSeqGap, tenantID, seq, engSeq+1)
			}
		}
		if m.wal != nil {
			// Validate first so the logged row can never be rejected by the
			// engine — neither on the next line nor on crash replay — keeping
			// the log and the engine sequence in lockstep. Engine.Tick will
			// re-run the same check; that duplicate scan is deliberate
			// (independent safety of the public engine API) and costs one
			// pass over the row, noise next to the WAL encode that follows.
			if err := eng.ValidateRow(row); err != nil {
				return err
			}
			commit, err := m.wal.Append(tenantID, engSeq+1, row)
			if err != nil {
				return fmt.Errorf("shard: tenant %q: %w", tenantID, err)
			}
			rsp.Durable = commit
		}
		e0 := obs.Now()
		out, _, err := eng.Tick(row)
		if err != nil {
			return err
		}
		rsp.EngineNanos = obs.Now() - e0
		sh.ticks.Add(1)
		rsp.Tick = eng.Window().Tick()
		rsp.Seq = eng.Seq()
		rsp.Row = append(rsp.Row[:0], out...)
		rsp.Imputed = rsp.Imputed[:0]
		for i, v := range row {
			if math.IsNaN(v) {
				rsp.Imputed = append(rsp.Imputed, i)
			}
		}
		sh.imputed.Add(uint64(len(rsp.Imputed)))
		rsp.AppliedAt = obs.Now()
		return nil
	})
}

// TickBatch feeds a batch of consecutive rows to the tenant's engine in one
// shard-queue operation: one routing lookup, one queue slot, one
// write-ahead-log record (and thus one group-commit slot), and one columnar
// engine ingest for the whole batch — the amortization that makes batched
// streaming scale. Results are bit-identical to feeding the rows through
// Tick one at a time.
//
// seq carries the sequence number of rows[0]; row i carries seq+i. As with
// Tick, 0 means unsequenced. A batch whose tail the engine has already
// applied is acked as duplicates row by row; a batch straddling the engine's
// sequence number applies only the unseen suffix (the duplicate prefix is
// acked in place), and a batch skipping ahead is refused whole with
// ErrSeqGap. A row the engine would reject (wrong width, ±Inf) refuses the
// WHOLE batch before any row is logged or applied: the error names the
// offending row.
func (m *Manager) TickBatch(ctx context.Context, tenantID string, seq uint64, rows [][]float64, rsp *BatchResponse) error {
	if len(rows) == 0 {
		return errors.New("shard: empty batch")
	}
	enq := obs.Now()
	return m.do(ctx, tenantID, func(sh *shard) error {
		rsp.QueueNanos = obs.Now() - enq
		rsp.EngineNanos = 0
		eng, err := m.resident(sh, tenantID)
		if err != nil {
			return err
		}
		engSeq := eng.Seq()
		rsp.Durable = wal.Commit{}
		if cap(rsp.Rows) < len(rows) {
			rsp.Rows = append(rsp.Rows[:cap(rsp.Rows)], make([]RowResult, len(rows)-cap(rsp.Rows))...)
		}
		rsp.Rows = rsp.Rows[:len(rows)]

		skip := 0 // duplicate prefix length (sequenced client replay)
		if seq != 0 {
			if seq > engSeq+1 {
				return fmt.Errorf("%w: tenant %q: client seq %d, next is %d", ErrSeqGap, tenantID, seq, engSeq+1)
			}
			if last := seq + uint64(len(rows)) - 1; last <= engSeq {
				skip = len(rows)
			} else if seq <= engSeq {
				skip = int(engSeq + 1 - seq)
			}
		}
		for r := 0; r < skip; r++ {
			out := &rsp.Rows[r]
			out.Duplicate = true
			out.Seq = seq + uint64(r)
			out.Tick = eng.Window().Tick()
			out.Row = out.Row[:0]
			out.Imputed = out.Imputed[:0]
		}
		live := rows[skip:]
		if len(live) == 0 {
			// Every row was already applied; promise durability the same way
			// a duplicate Tick does — verified (and forced if needed) at Wait
			// time on the caller's goroutine.
			if m.wal != nil {
				l := m.wal.Get(tenantID)
				if l == nil {
					return fmt.Errorf("shard: tenant %q has no open log", tenantID)
				}
				rsp.Durable = l.DurableCommit(seq + uint64(len(rows)) - 1)
			}
			rsp.AppliedAt = obs.Now()
			return nil
		}
		// Validate every live row up front so the batch is atomic — the WAL
		// record below must never hold a row the engine would refuse, neither
		// on the ingest that follows nor on crash replay.
		for r, row := range live {
			if err := eng.ValidateRow(row); err != nil {
				return fmt.Errorf("shard: tenant %q: batch row %d: %w", tenantID, skip+r, err)
			}
		}
		if m.wal != nil {
			commit, err := m.wal.AppendBatch(tenantID, engSeq+1, live)
			if err != nil {
				return fmt.Errorf("shard: tenant %q: %w", tenantID, err)
			}
			// One commit slot covers the live rows, and — fsync being
			// sequential — everything appended before them, so the duplicate
			// prefix (if any) is covered by the same Wait.
			rsp.Durable = commit
		}
		// Transpose into the stream-major scratch and ingest columnar.
		width := len(live[0])
		if cap(rsp.cols) < width {
			rsp.cols = make(core.Columns, width)
		}
		rsp.cols = rsp.cols[:width]
		for i := range rsp.cols {
			if cap(rsp.cols[i]) < len(live) {
				rsp.cols[i] = make([]float64, len(live))
			}
			rsp.cols[i] = rsp.cols[i][:len(live)]
			for r, row := range live {
				rsp.cols[i][r] = row[i]
			}
		}
		e0 := obs.Now()
		outCols, _, err := eng.TickColumns(rsp.cols)
		if err != nil {
			return err // unreachable: every row was validated above
		}
		rsp.EngineNanos = obs.Now() - e0
		sh.ticks.Add(uint64(len(live)))
		baseTick := eng.Window().Tick() - len(live)
		baseSeq := eng.Seq() - uint64(len(live))
		for r := range live {
			out := &rsp.Rows[skip+r]
			out.Duplicate = false
			out.Tick = baseTick + r + 1
			out.Seq = baseSeq + uint64(r) + 1
			out.Row = out.Row[:0]
			for i := 0; i < width; i++ {
				out.Row = append(out.Row, outCols[i][r])
			}
			out.Imputed = out.Imputed[:0]
			for i, v := range live[r] {
				if math.IsNaN(v) {
					out.Imputed = append(out.Imputed, i)
				}
			}
			sh.imputed.Add(uint64(len(out.Imputed)))
		}
		rsp.AppliedAt = obs.Now()
		return nil
	})
}

// Snapshot streams the tenant engine's snapshot (core snapshot format) to
// w, serialized with the tenant's ticks on its shard goroutine, and
// returns the engine sequence number the snapshot covers — the safe
// truncation point for the tenant's write-ahead log.
func (m *Manager) Snapshot(ctx context.Context, tenantID string, w io.Writer) (uint64, error) {
	var seq uint64
	err := m.do(ctx, tenantID, func(sh *shard) error {
		// An explicit snapshot download hydrates a parked tenant: the caller
		// wants the full image, and the disk already holds everything needed
		// to rebuild it.
		eng, err := m.resident(sh, tenantID)
		if err != nil {
			return err
		}
		seq = eng.Seq()
		return eng.Snapshot(w)
	})
	return seq, err
}

// TenantInfo describes one hosted tenant.
type TenantInfo struct {
	ID      string   `json:"id"`
	Shard   int      `json:"shard"`
	Streams []string `json:"streams"`
	Ticks   int      `json:"ticks"`
	// Seq is the engine's sequence number: rows ingested over the tenant's
	// lifetime. A sequenced client resumes sending at Seq+1.
	Seq uint64 `json:"seq"`
	// Imputations counts the missing values this tenant's engine has filled.
	Imputations int `json:"imputations"`
	// Resident reports whether the tenant's engine is in memory; a parked
	// tenant serves this listing from its footprint without hydrating.
	Resident bool `json:"resident"`
	// Failed reports a tenant latched fail-stopped by a hydration failure.
	Failed bool `json:"failed,omitempty"`
}

// infoFor builds the TenantInfo of a resident engine. Shard-goroutine only.
func infoFor(sh *shard, id string, eng *core.Engine) TenantInfo {
	return TenantInfo{
		ID:          id,
		Shard:       sh.id,
		Streams:     eng.Window().Names(),
		Ticks:       eng.Stats.Ticks,
		Seq:         eng.Seq(),
		Imputations: eng.Stats.Imputations,
		Resident:    true,
	}
}

// infoForParked builds the TenantInfo of a parked tenant from its footprint.
func infoForParked(sh *shard, id string, p *parked) TenantInfo {
	return TenantInfo{
		ID:          id,
		Shard:       sh.id,
		Streams:     p.streams,
		Ticks:       p.ticks,
		Seq:         p.seq,
		Imputations: p.imputations,
		Failed:      p.failed != nil,
	}
}

// Info describes a single tenant, or ErrNoTenant. A parked tenant answers
// from its footprint — metadata queries must not churn the residency tier.
func (m *Manager) Info(ctx context.Context, tenantID string) (TenantInfo, error) {
	var info TenantInfo
	err := m.do(ctx, tenantID, func(sh *shard) error {
		if eng, ok := sh.tenants[tenantID]; ok {
			info = infoFor(sh, tenantID, eng)
			return nil
		}
		if p, ok := sh.parked[tenantID]; ok {
			info = infoForParked(sh, tenantID, p)
			return nil
		}
		return m.missing(sh, tenantID)
	})
	return info, err
}

// Tenants lists every hosted tenant, sorted by id. The walk holds
// migrateMu: a tenant mid-migration is in no shard map while its image is
// in transit, and one moving ahead of (or behind) the shard iterator would
// be listed twice or not at all. Tenants change shards only inside
// Migrate, so excluding migrations for the walk's duration makes the
// listing a consistent snapshot — a listing that races a move waits it out
// (the same transient delay every per-tenant operation already accepts)
// instead of showing a live tenant as deleted.
func (m *Manager) Tenants(ctx context.Context) ([]TenantInfo, error) {
	m.migrateMu.Lock()
	defer m.migrateMu.Unlock()
	var all []TenantInfo
	for _, sh := range m.shards {
		err := m.submit(ctx, sh, func(sh *shard) error {
			for id, eng := range sh.tenants {
				all = append(all, infoFor(sh, id, eng))
			}
			for id, p := range sh.parked {
				all = append(all, infoForParked(sh, id, p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all, nil
}

// ShardStats is one shard's activity counters.
type ShardStats struct {
	Shard        int    `json:"shard"`
	Tenants      int64  `json:"tenants"`
	Resident     int64  `json:"resident"`
	Parked       int64  `json:"parked"`
	QueueDepth   int    `json:"queue_depth"`
	QueueCap     int    `json:"queue_cap"`
	Processed    uint64 `json:"processed"`
	Ticks        uint64 `json:"ticks"`
	Imputations  uint64 `json:"imputations"`
	Backpressure uint64 `json:"backpressure"` // submissions that found the queue full
}

// Stats samples every shard's counters (lock-free; queue depth is a racy
// instantaneous read, fine for metrics).
func (m *Manager) Stats() []ShardStats {
	out := make([]ShardStats, len(m.shards))
	for i, sh := range m.shards {
		out[i] = ShardStats{
			Shard:        sh.id,
			Tenants:      sh.ntenants.Load(),
			Resident:     sh.nresident.Load(),
			Parked:       sh.nparked.Load(),
			QueueDepth:   len(sh.reqs),
			QueueCap:     cap(sh.reqs),
			Processed:    sh.processed.Load(),
			Ticks:        sh.ticks.Load(),
			Imputations:  sh.imputed.Load(),
			Backpressure: sh.waited.Load(),
		}
	}
	return out
}

// Close drains and stops the manager: new submissions fail with ErrClosed,
// requests already accepted (including queued ones) still complete, then the
// shard goroutines close their engines and exit. Idempotent; safe to call
// concurrently.
func (m *Manager) Close() {
	m.closed.Store(true)
	m.closing.Do(func() {
		m.senders.Wait()
		for _, sh := range m.shards {
			close(sh.reqs)
		}
	})
	m.wg.Wait()
}
