package shard

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableDefaultMatchesFNV(t *testing.T) {
	tb := NewTable(7)
	for _, id := range []string{"a", "plant-a", "loadgen-123-0007", "x.y_z-9"} {
		h := fnv.New32a()
		h.Write([]byte(id))
		want := int(h.Sum32() % 7)
		if got := tb.ShardFor(id); got != want {
			t.Fatalf("ShardFor(%q) = %d, want FNV default %d", id, got, want)
		}
	}
}

func TestTableAssignPersistsAndReloads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "routing.tkcmrt")
	tb, err := OpenTable(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	v0 := tb.Version()
	def := tb.ShardFor("plant-a")
	dst := (def + 1) % 4
	if err := tb.Assign("plant-a", dst); err != nil {
		t.Fatal(err)
	}
	if got := tb.ShardFor("plant-a"); got != dst {
		t.Fatalf("after assign: shard %d, want %d", got, dst)
	}
	if tb.Version() <= v0 {
		t.Fatalf("version %d did not advance past %d", tb.Version(), v0)
	}

	// Reload from disk: the assignment and version must survive.
	tb2, err := OpenTable(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := tb2.ShardFor("plant-a"); got != dst {
		t.Fatalf("reloaded: shard %d, want %d", got, dst)
	}
	if tb2.Version() != tb.Version() {
		t.Fatalf("reloaded version %d, want %d", tb2.Version(), tb.Version())
	}

	// Assigning back to the default route removes the explicit entry.
	if err := tb2.Assign("plant-a", def); err != nil {
		t.Fatal(err)
	}
	if n := len(tb2.Info().Assignments); n != 0 {
		t.Fatalf("assignment back to default left %d explicit entries", n)
	}
	if got := tb2.ShardFor("plant-a"); got != def {
		t.Fatalf("after default re-assign: shard %d, want %d", got, def)
	}
}

func TestTableUnassign(t *testing.T) {
	tb := NewTable(4)
	def := tb.ShardFor("x1")
	if err := tb.Assign("x1", (def+1)%4); err != nil {
		t.Fatal(err)
	}
	v := tb.Version()
	if err := tb.Unassign("x1"); err != nil {
		t.Fatal(err)
	}
	if got := tb.ShardFor("x1"); got != def {
		t.Fatalf("after unassign: shard %d, want default %d", got, def)
	}
	if tb.Version() != v+1 {
		t.Fatalf("unassign version %d, want %d", tb.Version(), v+1)
	}
	// Unassigning a tenant with no entry is a free no-op.
	if err := tb.Unassign("never-assigned"); err != nil {
		t.Fatal(err)
	}
	if tb.Version() != v+1 {
		t.Fatalf("no-op unassign bumped version to %d", tb.Version())
	}
}

func TestTableAssignValidates(t *testing.T) {
	tb := NewTable(4)
	if err := tb.Assign("ok", 4); !errors.Is(err, ErrBadTable) {
		t.Fatalf("out-of-range shard: %v", err)
	}
	if err := tb.Assign("ok", -1); !errors.Is(err, ErrBadTable) {
		t.Fatalf("negative shard: %v", err)
	}
	if err := tb.Assign("", 0); !errors.Is(err, ErrBadTable) {
		t.Fatalf("empty id: %v", err)
	}
	if err := tb.Assign("-leading-dash", 0); !errors.Is(err, ErrBadTable) {
		t.Fatalf("bad leading char: %v", err)
	}
	if err := tb.Assign(strings.Repeat("a", 65), 0); !errors.Is(err, ErrBadTable) {
		t.Fatalf("overlong id: %v", err)
	}
}

// TestTableGrowKeepsDefaultRoutes is the resharding contract: reopening the
// table with more shards must not move a single default-routed tenant —
// the pinned modulus, not the live shard count, drives the hash.
func TestTableGrowKeepsDefaultRoutes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "routing.tkcmrt")
	tb, err := OpenTable(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"t1", "t2", "t3", "plant-a", "plant-b", "x-9"}
	before := map[string]int{}
	for _, id := range ids {
		before[id] = tb.ShardFor(id)
	}
	if err := tb.Assign("plant-a", (before["plant-a"]+1)%3); err != nil {
		t.Fatal(err)
	}

	grown, err := OpenTable(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if grown.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", grown.NumShards())
	}
	for _, id := range ids {
		want := before[id]
		if id == "plant-a" {
			want = (before[id] + 1) % 3
		}
		if got := grown.ShardFor(id); got != want {
			t.Fatalf("after growth, %q routes to %d, want %d", id, got, want)
		}
	}
	// New shards are reachable through explicit assignment.
	if err := grown.Assign("t1", 7); err != nil {
		t.Fatal(err)
	}
	if got := grown.ShardFor("t1"); got != 7 {
		t.Fatalf("assignment to grown shard: %d, want 7", got)
	}
}

func TestTableShrinkRefusedWhileOccupied(t *testing.T) {
	path := filepath.Join(t.TempDir(), "routing.tkcmrt")
	tb, err := OpenTable(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The default modulus spans 4 shards: shrinking below it must fail.
	if _, err := OpenTable(path, 2); err == nil {
		t.Fatal("shrink below the default modulus was accepted")
	}
	// Growth then shrink back to the modulus is fine while no explicit
	// assignment points above it.
	if _, err := OpenTable(path, 6); err != nil {
		t.Fatal(err)
	}
	tb6, err := OpenTable(path, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb6.Assign("pinned", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTable(path, 4); err == nil {
		t.Fatal("shrink below an explicit assignment was accepted")
	}
	if err := tb6.Unassign("pinned"); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTable(path, 4); err != nil {
		t.Fatalf("shrink back to the modulus after unassign: %v", err)
	}
	_ = tb
}

// craftTable builds a CRC-valid table image from raw payload bytes — the
// adversary's toolkit: the checksum is right, the content lies.
func craftTable(payload []byte) []byte {
	out := make([]byte, 0, len(tableMagic)+8+len(payload))
	out = append(out, tableMagic...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(payload)))
	out = append(out, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// craftPayload assembles version/numShards/defaultMod/nEntries + entries.
func craftPayload(version uint64, numShards, defaultMod, nEntries uint32, entries []byte) []byte {
	p := make([]byte, 20, 20+len(entries))
	binary.LittleEndian.PutUint64(p[0:8], version)
	binary.LittleEndian.PutUint32(p[8:12], numShards)
	binary.LittleEndian.PutUint32(p[12:16], defaultMod)
	binary.LittleEndian.PutUint32(p[16:20], nEntries)
	return append(p, entries...)
}

func entry(id string, shard uint32) []byte {
	b := make([]byte, 2, 2+len(id)+4)
	binary.LittleEndian.PutUint16(b, uint16(len(id)))
	b = append(b, id...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], shard)
	return append(b, u32[:]...)
}

// TestTableDecodeRejectsCrafted mirrors the RestoreEngine hardening: every
// image here carries a correct CRC, and every one must still be refused.
func TestTableDecodeRejectsCrafted(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", []byte(tableMagic)},
		{"bad magic", append([]byte("NOTATBL0"), craftTable(craftPayload(1, 4, 4, 0, nil))[8:]...)},
		{"truncated payload", craftTable(craftPayload(1, 4, 4, 0, nil))[:len(tableMagic)+8+10]},
		{"zero shards", craftTable(craftPayload(1, 0, 0, 0, nil))},
		{"huge shards", craftTable(craftPayload(1, MaxShards+1, 1, 0, nil))},
		{"zero default mod", craftTable(craftPayload(1, 4, 0, 0, nil))},
		{"default mod above shards", craftTable(craftPayload(1, 4, 5, 0, nil))},
		{"out-of-range shard id", craftTable(craftPayload(1, 4, 4, 1, entry("t1", 4)))},
		{"duplicate tenant", craftTable(craftPayload(1, 4, 4, 2, append(entry("t1", 0), entry("t1", 1)...)))},
		{"entry count beyond bytes", craftTable(craftPayload(1, 4, 4, 1000, entry("t1", 0)))},
		{"truncated entry id", craftTable(craftPayload(1, 4, 4, 1, entry("t1", 0)[:3]))},
		{"truncated entry shard", craftTable(craftPayload(1, 4, 4, 1, entry("t1", 0)[:4]))},
		{"zero-length id", craftTable(craftPayload(1, 4, 4, 1, entry("", 0)))},
		{"invalid id bytes", craftTable(craftPayload(1, 4, 4, 1, entry("bad/slash", 0)))},
		{"trailing garbage", craftTable(append(craftPayload(1, 4, 4, 1, entry("t1", 0)), 0xAA))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := decodeTable(tc.data); err == nil {
				t.Fatalf("crafted image %q decoded without error", tc.name)
			} else if !errors.Is(err, ErrBadTable) {
				t.Fatalf("crafted image %q: error %v is not ErrBadTable", tc.name, err)
			}
		})
	}
	// A wrong CRC is also refused (the only non-CRC-valid case).
	good := craftTable(craftPayload(1, 4, 4, 0, nil))
	good[12] ^= 0xFF
	if _, err := decodeTable(good); !errors.Is(err, ErrBadTable) {
		t.Fatalf("bad checksum: %v", err)
	}
}

func TestTableEncodeDecodeRoundtrip(t *testing.T) {
	v := &routeView{version: 42, numShards: 9, defaultMod: 3, assigned: map[string]int{
		"a": 8, "plant-b": 0, "x.y_z-9": 5,
	}}
	got, err := decodeTable(encodeTable(v))
	if err != nil {
		t.Fatal(err)
	}
	if got.version != v.version || got.numShards != v.numShards || got.defaultMod != v.defaultMod {
		t.Fatalf("header roundtrip: %+v vs %+v", got, v)
	}
	if len(got.assigned) != len(v.assigned) {
		t.Fatalf("entries roundtrip: %v vs %v", got.assigned, v.assigned)
	}
	for id, s := range v.assigned {
		if got.assigned[id] != s {
			t.Fatalf("entry %q: %d, want %d", id, got.assigned[id], s)
		}
	}
	// Encoding is deterministic (sorted entries) — byte-identical images
	// for equal tables, so repeated saves of an unchanged table are stable.
	if !bytes.Equal(encodeTable(v), encodeTable(got)) {
		t.Fatal("re-encoding a decoded table produced different bytes")
	}
}

func TestOpenTableRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "routing.tkcmrt")
	if err := os.WriteFile(path, []byte("garbage that is not a table"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTable(path, 4); !errors.Is(err, ErrBadTable) {
		t.Fatalf("corrupt table file: %v", err)
	}
}

// FuzzTableDecode hammers the routing-table decoder with mutated images.
// Whatever the bytes, the decoder must never panic, and anything it accepts
// must be internally consistent and re-encode to an image that decodes to
// the same table.
func FuzzTableDecode(f *testing.F) {
	f.Add(encodeTable(&routeView{version: 1, numShards: 4, defaultMod: 4, assigned: map[string]int{}}))
	f.Add(encodeTable(&routeView{version: 9, numShards: 8, defaultMod: 2, assigned: map[string]int{
		"plant-a": 7, "t2": 0,
	}}))
	f.Add(craftTable(craftPayload(3, 16, 4, 1, entry("hot-tenant", 15))))
	f.Add(craftTable(craftPayload(1, 4, 4, 1, entry("t1", 4))))               // out of range
	f.Add(craftTable(append(craftPayload(1, 4, 4, 1, entry("t1", 0)), 0x00))) // trailing
	f.Add([]byte(tableMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := decodeTable(data)
		if err != nil {
			if v != nil {
				t.Fatal("error with non-nil table")
			}
			return
		}
		if v.numShards < 1 || v.numShards > MaxShards {
			t.Fatalf("accepted shard count %d", v.numShards)
		}
		if v.defaultMod < 1 || v.defaultMod > v.numShards {
			t.Fatalf("accepted default modulus %d over %d shards", v.defaultMod, v.numShards)
		}
		for id, s := range v.assigned {
			if s < 0 || s >= v.numShards {
				t.Fatalf("accepted assignment %q → %d over %d shards", id, s, v.numShards)
			}
			if !validTenantID(id) {
				t.Fatalf("accepted invalid tenant id %q", id)
			}
		}
		back, err := decodeTable(encodeTable(v))
		if err != nil {
			t.Fatalf("accepted table does not re-encode: %v", err)
		}
		if back.version != v.version || back.numShards != v.numShards ||
			back.defaultMod != v.defaultMod || len(back.assigned) != len(v.assigned) {
			t.Fatal("re-encoded table differs")
		}
	})
}

// TestShardForAllocates pins the routing hot path at zero allocations: it
// runs once per request, and an allocation here would show up at every
// tick of every tenant.
func TestShardForAllocates(t *testing.T) {
	tb := NewTable(8)
	if err := tb.Assign("assigned-tenant", 5); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"assigned-tenant", "default-routed-tenant"} {
		if n := testing.AllocsPerRun(200, func() { tb.ShardFor(id) }); n != 0 {
			t.Fatalf("ShardFor(%q) allocates %.1f per call, want 0", id, n)
		}
	}
	m := New(Options{Routing: tb})
	defer m.Close()
	if n := testing.AllocsPerRun(200, func() { m.shardFor("default-routed-tenant") }); n != 0 {
		t.Fatalf("Manager.shardFor allocates %.1f per call, want 0", n)
	}
}

// BenchmarkTableShardFor guards the routing lookup that sits on the tick
// hot path — run with -benchmem; any allocation or lock here is a
// regression.
func BenchmarkTableShardFor(b *testing.B) {
	tb := NewTable(16)
	for i := 0; i < 64; i++ {
		tb.Assign("assigned-"+string(rune('a'+i%26))+"0", i%16)
	}
	ids := []string{"assigned-a0", "some-default-routed-tenant", "plant-a", "loadgen-1234-0042"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.ShardFor(ids[i&3])
	}
}
