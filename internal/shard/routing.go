package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Routing table file format — one self-verifying image:
//
//	magic       "TKCMRT01" (8 bytes)
//	payloadLen  uint32 LE (bytes of payload)
//	crc         uint32 LE, IEEE CRC-32 of the payload
//	payload:
//	    version     uint64 LE  (bumped on every mutation)
//	    numShards   uint32 LE  (shard count the table was saved against)
//	    defaultMod  uint32 LE  (modulus of the default hash route, 1..numShards)
//	    nEntries    uint32 LE
//	    entries:    tenantLen uint16 LE | tenant bytes | shard uint32 LE
//
// The image is written atomically (temp + rename + fsync of file and
// directory), so a crash mid-save leaves the previous good table intact.
const (
	tableMagic = "TKCMRT01"
	// MaxShards bounds the shard count a routing table (and therefore a
	// manager) will accept — far above any deployment this process model
	// supports, low enough that a crafted image cannot demand absurdity.
	MaxShards = 1 << 12
	// maxTenantIDLen mirrors the server's tenant id pattern bound.
	maxTenantIDLen = 64
	// maxTablePayload bounds a table image against crafted length fields:
	// the largest legal payload is nEntries × (2 + 64 + 4) + 20 header
	// bytes, and far fewer tenants than this fit in one process anyway.
	maxTablePayload = 1 << 26
)

// ErrBadTable is returned when a routing-table image cannot be decoded —
// wrong magic, bad checksum, truncated entries, out-of-range shard ids,
// duplicate tenants. Match with errors.Is.
var ErrBadTable = errors.New("shard: bad routing table")

// RoutingInfo is a point-in-time description of the routing table, as
// exposed on GET /v1/cluster/routing.
type RoutingInfo struct {
	// Version counts table mutations; it bumps on every assignment flip.
	Version uint64 `json:"version"`
	// Shards is the shard count the table routes onto.
	Shards int `json:"shards"`
	// DefaultMod is the modulus of the default hash route. It is pinned at
	// table creation so growing the shard count never reroutes tenants that
	// have no explicit assignment.
	DefaultMod int `json:"default_mod"`
	// Assignments maps explicitly-routed tenants to their shards; tenants
	// absent here follow the default hash route.
	Assignments map[string]int `json:"assignments"`
}

// routeView is one immutable version of the table. Lookups load it with a
// single atomic read; mutations build a fresh view and swap the pointer, so
// the tick hot path never takes a lock.
type routeView struct {
	version    uint64
	numShards  int
	defaultMod int
	assigned   map[string]int
}

// Table is the persisted, versioned tenant→shard routing table: explicit
// assignments (created by migrations and the rebalancer) over a default
// FNV-1a hash route whose modulus is pinned at creation. Pinning the
// modulus is what lets -shards grow across restarts without silently
// rerouting every tenant: unassigned tenants keep hashing onto the original
// shard range, and new shards only receive tenants through explicit
// (persisted) assignments.
//
// Lookups (ShardFor) are lock-free and allocation-free. Mutations publish
// immutable views by compare-and-swap, so a memory-only mutation
// (UnassignMem, called on a shard goroutine) never waits on a disk write;
// saveMu serializes only the file I/O. Assign persists and fsyncs the new
// view before swapping it in — a reader can never observe an assignment
// that would not survive a crash.
type Table struct {
	path string // "" = ephemeral (never touches disk)

	// saveMu serializes disk writes only — never held across a view swap.
	// savedVersion (guarded by saveMu) is the highest version written: a
	// save of an older image is skipped, so racing savers cannot regress
	// the on-disk table behind a flip that was already made durable.
	saveMu       sync.Mutex
	savedVersion uint64
	view         atomic.Pointer[routeView]
}

// NewTable creates an ephemeral table over shards shards (no persistence) —
// the default for managers constructed without a routing path.
func NewTable(shards int) *Table {
	t := &Table{}
	t.view.Store(&routeView{
		version:    1,
		numShards:  shards,
		defaultMod: shards,
		assigned:   map[string]int{},
	})
	return t
}

// OpenTable loads the table at path, creating and persisting a fresh one
// (defaultMod = shards) if none exists. An existing table is validated
// against the requested shard count: growth re-saves the table with the new
// count (new shards start empty — the default modulus is pinned), shrinking
// is allowed only while no route, explicit or default, points at a removed
// shard; otherwise the open fails and the operator must migrate tenants off
// the doomed shards first.
func OpenTable(path string, shards int) (*Table, error) {
	if shards <= 0 || shards > MaxShards {
		return nil, fmt.Errorf("shard: routing table needs 1..%d shards, got %d", MaxShards, shards)
	}
	t := &Table{path: path}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		v := &routeView{version: 1, numShards: shards, defaultMod: shards, assigned: map[string]int{}}
		if err := t.save(v); err != nil {
			return nil, err
		}
		t.view.Store(v)
		return t, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shard: reading routing table: %w", err)
	}
	v, err := decodeTable(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if shards != v.numShards {
		if shards < v.defaultMod {
			return nil, fmt.Errorf("shard: %d shards requested but the routing table's default route spans %d — migrate tenants off shards ≥ %d first", shards, v.defaultMod, shards)
		}
		for id, s := range v.assigned {
			if s >= shards {
				return nil, fmt.Errorf("shard: %d shards requested but tenant %q is assigned to shard %d — migrate it first", shards, id, s)
			}
		}
		grown := v.clone()
		grown.numShards = shards
		grown.version++
		if err := t.save(grown); err != nil {
			return nil, err
		}
		v = grown
	}
	t.view.Store(v)
	return t, nil
}

// clone copies the view (a fresh assignment map included).
func (v *routeView) clone() *routeView {
	m := make(map[string]int, len(v.assigned))
	for k, s := range v.assigned {
		m[k] = s
	}
	return &routeView{version: v.version, numShards: v.numShards, defaultMod: v.defaultMod, assigned: m}
}

// NumShards returns the shard count the table routes onto.
func (t *Table) NumShards() int { return t.view.Load().numShards }

// Version returns the table's mutation counter.
func (t *Table) Version() uint64 { return t.view.Load().version }

// fnv32a is FNV-1a over the tenant id, inlined so the routing hot path —
// consulted once per request — allocates nothing (hash.Hash32 would escape).
// It matches hash/fnv bit-for-bit, preserving historical default placements.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// ShardFor resolves a tenant id to its shard: the explicit assignment when
// one exists, the default hash route otherwise. Lock-free and
// allocation-free — this is consulted once per request on the tick path
// (guarded by BenchmarkTableShardFor and TestShardForAllocates).
func (t *Table) ShardFor(tenantID string) int {
	v := t.view.Load()
	if s, ok := v.assigned[tenantID]; ok {
		return s
	}
	return int(fnv32a(tenantID) % uint32(v.defaultMod))
}

// Assign routes tenant explicitly onto shard, persists the new table, and
// only then makes it visible — the atomic flip of a migration. Assigning a
// tenant to the shard its default route already names removes the explicit
// entry instead (same routing outcome, smaller table). Returns ErrBadTable
// wrapped errors for out-of-range shards or invalid tenant ids.
func (t *Table) Assign(tenant string, shard int) error {
	if !validTenantID(tenant) {
		return fmt.Errorf("%w: invalid tenant id %q", ErrBadTable, tenant)
	}
	for {
		v := t.view.Load()
		if shard < 0 || shard >= v.numShards {
			return fmt.Errorf("%w: shard %d out of range [0,%d)", ErrBadTable, shard, v.numShards)
		}
		next := v.clone()
		if int(fnv32a(tenant)%uint32(next.defaultMod)) == shard {
			delete(next.assigned, tenant)
		} else {
			next.assigned[tenant] = shard
		}
		next.version++
		if err := t.save(next); err != nil {
			return err
		}
		if t.view.CompareAndSwap(v, next) {
			return nil
		}
		// A concurrent memory-only mutation (UnassignMem) slipped in between
		// the load and the swap: the saved image is built on a stale view.
		// Retry from the fresh view — the re-save overwrites the stale image
		// before anyone acts on the flip, and a crash in the window just
		// leaves a valid (slightly older) table.
	}
}

// Unassign drops tenant's explicit assignment (a deleted tenant should not
// pin a stale route forever). Unassigning a tenant with no entry is a no-op
// that does not bump the version or touch the disk.
func (t *Table) Unassign(tenant string) error {
	if !t.UnassignMem(tenant) {
		return nil
	}
	return t.Flush()
}

// UnassignMem drops tenant's explicit assignment in memory only, reporting
// whether anything changed; pair with Flush to persist. Tenant delete uses
// the split because its route flip must happen inside the delete's shard
// operation (so a racing Create of the same id cannot land on the stale
// shard and be orphaned by a later flip) while no disk wait may run on the
// shard goroutine (it would head-of-line-block every co-resident tenant's
// ticks) — hence CAS, not a lock an Assign could hold across its fsync.
// Flipping before saving is safe here, unlike Assign: a crash that loses
// the save leaves a stale entry pointing at the shard the deleted tenant
// lived on — it pins where a future tenant of that id lands, nothing more.
func (t *Table) UnassignMem(tenant string) bool {
	for {
		v := t.view.Load()
		if _, ok := v.assigned[tenant]; !ok {
			return false
		}
		next := v.clone()
		delete(next.assigned, tenant)
		next.version++
		if t.view.CompareAndSwap(v, next) {
			return true
		}
	}
}

// Flush persists the current in-memory table.
func (t *Table) Flush() error {
	return t.save(t.view.Load())
}

// Info snapshots the table for the routing endpoint.
func (t *Table) Info() RoutingInfo {
	v := t.view.Load()
	m := make(map[string]int, len(v.assigned))
	for k, s := range v.assigned {
		m[k] = s
	}
	return RoutingInfo{Version: v.version, Shards: v.numShards, DefaultMod: v.defaultMod, Assignments: m}
}

// validTenantID mirrors the server's tenant id pattern
// (^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$) without a regexp dependency.
func validTenantID(s string) bool {
	if len(s) == 0 || len(s) > maxTenantIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case i > 0 && (c == '_' || c == '.' || c == '-'):
		default:
			return false
		}
	}
	return true
}

// encodeTable serializes v (entries in sorted tenant order, so identical
// tables produce identical bytes).
func encodeTable(v *routeView) []byte {
	ids := make([]string, 0, len(v.assigned))
	for id := range v.assigned {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	payload := make([]byte, 0, 20+len(ids)*(2+maxTenantIDLen+4))
	var u64 [8]byte
	var u32 [4]byte
	var u16 [2]byte
	binary.LittleEndian.PutUint64(u64[:], v.version)
	payload = append(payload, u64[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(v.numShards))
	payload = append(payload, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(v.defaultMod))
	payload = append(payload, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(ids)))
	payload = append(payload, u32[:]...)
	for _, id := range ids {
		binary.LittleEndian.PutUint16(u16[:], uint16(len(id)))
		payload = append(payload, u16[:]...)
		payload = append(payload, id...)
		binary.LittleEndian.PutUint32(u32[:], uint32(v.assigned[id]))
		payload = append(payload, u32[:]...)
	}
	out := make([]byte, 0, len(tableMagic)+8+len(payload))
	out = append(out, tableMagic...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(payload)))
	out = append(out, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], crc32.ChecksumIEEE(payload))
	out = append(out, u32[:]...)
	return append(out, payload...)
}

// decodeTable parses and validates one table image. Every length is checked
// against the bytes that actually remain before it is trusted, shard ids
// must fall inside the declared shard count, tenant ids must be valid and
// unique — a crafted CRC-valid image cannot smuggle a table that would
// route requests off the end of the shard slice or panic the manager.
func decodeTable(data []byte) (*routeView, error) {
	if len(data) < len(tableMagic)+8 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrBadTable, len(data))
	}
	if string(data[:len(tableMagic)]) != tableMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTable, data[:len(tableMagic)])
	}
	payloadLen := binary.LittleEndian.Uint32(data[8:12])
	crc := binary.LittleEndian.Uint32(data[12:16])
	rest := data[16:]
	if payloadLen > maxTablePayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrBadTable, payloadLen)
	}
	if uint32(len(rest)) != payloadLen {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrBadTable, len(rest), payloadLen)
	}
	if got := crc32.ChecksumIEEE(rest); got != crc {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadTable)
	}
	if len(rest) < 20 {
		return nil, fmt.Errorf("%w: payload truncated before the entry count", ErrBadTable)
	}
	v := &routeView{
		version:    binary.LittleEndian.Uint64(rest[0:8]),
		numShards:  int(binary.LittleEndian.Uint32(rest[8:12])),
		defaultMod: int(binary.LittleEndian.Uint32(rest[12:16])),
	}
	n := binary.LittleEndian.Uint32(rest[16:20])
	rest = rest[20:]
	if v.numShards < 1 || v.numShards > MaxShards {
		return nil, fmt.Errorf("%w: shard count %d out of range [1,%d]", ErrBadTable, v.numShards, MaxShards)
	}
	if v.defaultMod < 1 || v.defaultMod > v.numShards {
		return nil, fmt.Errorf("%w: default modulus %d out of range [1,%d]", ErrBadTable, v.defaultMod, v.numShards)
	}
	// The smallest possible entry is 2 (len) + 1 (id) + 4 (shard) bytes; a
	// count the remaining bytes cannot hold is a lie, not an allocation size.
	if uint64(n) > uint64(len(rest))/7 {
		return nil, fmt.Errorf("%w: %d entries cannot fit in %d remaining bytes", ErrBadTable, n, len(rest))
	}
	v.assigned = make(map[string]int, n)
	for i := uint32(0); i < n; i++ {
		if len(rest) < 2 {
			return nil, fmt.Errorf("%w: entry %d truncated before its id length", ErrBadTable, i)
		}
		idLen := int(binary.LittleEndian.Uint16(rest[0:2]))
		rest = rest[2:]
		if idLen < 1 || idLen > maxTenantIDLen {
			return nil, fmt.Errorf("%w: entry %d id length %d out of range [1,%d]", ErrBadTable, i, idLen, maxTenantIDLen)
		}
		if len(rest) < idLen+4 {
			return nil, fmt.Errorf("%w: entry %d truncated (%d bytes left, need %d)", ErrBadTable, i, len(rest), idLen+4)
		}
		id := string(rest[:idLen])
		shard := int(binary.LittleEndian.Uint32(rest[idLen : idLen+4]))
		rest = rest[idLen+4:]
		if !validTenantID(id) {
			return nil, fmt.Errorf("%w: entry %d has invalid tenant id %q", ErrBadTable, i, id)
		}
		if _, dup := v.assigned[id]; dup {
			return nil, fmt.Errorf("%w: duplicate tenant %q", ErrBadTable, id)
		}
		if shard < 0 || shard >= v.numShards {
			return nil, fmt.Errorf("%w: tenant %q assigned to shard %d, out of range [0,%d)", ErrBadTable, id, shard, v.numShards)
		}
		v.assigned[id] = shard
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last entry", ErrBadTable, len(rest))
	}
	return v, nil
}

// save persists v atomically: temp file + fsync + rename + directory fsync,
// the same discipline the checkpoint path uses. An ephemeral table (no
// path) skips the disk entirely. saveMu serializes concurrent savers (an
// Assign racing a Flush) so renames cannot interleave; it is never held
// while the in-memory view swaps, so lookups and memory-only mutations
// never wait on the disk.
func (t *Table) save(v *routeView) error {
	if t.path == "" {
		return nil
	}
	t.saveMu.Lock()
	defer t.saveMu.Unlock()
	if v.version < t.savedVersion {
		// A newer image is already durable; writing this one would roll the
		// disk back. (A skipped Assign save cannot leak an undurable flip:
		// savedVersion ≥ its version implies the view has already moved on,
		// so its CompareAndSwap fails and it retries on the fresh view.)
		return nil
	}
	dir := filepath.Dir(t.path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: routing table dir: %w", err)
	}
	f, err := os.CreateTemp(dir, "routing-*.tmp")
	if err != nil {
		return fmt.Errorf("shard: saving routing table: %w", err)
	}
	tmp := f.Name()
	_, err = f.Write(encodeTable(v))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, t.path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("shard: saving routing table: %w", err)
	}
	// The rename must be durable before the new route is acted on: a crash
	// that kept the old table while ticks already flowed to the new shard
	// would re-home the tenant on restart — harmless for durability (the WAL
	// is shard-agnostic) but a silent routing rollback all the same.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("shard: saving routing table: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("shard: saving routing table: %w", err)
	}
	t.savedVersion = v.version
	return nil
}
