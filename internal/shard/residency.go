package shard

import (
	"container/list"
	"errors"
	"fmt"
	"sort"

	"tkcm/internal/core"
	"tkcm/internal/obs"
)

// Engine residency: a shard hosts up to millions of tenants but keeps only a
// budgeted subset of their engines in memory. A cold tenant is EVICTED —
// parked as a footprint struct while its durable state (the base checkpoint
// written at create plus every WAL record through its sequence number) stays
// on disk untouched, so eviction writes nothing. The next operation that
// needs the engine HYDRATES it: the Options.Hydrate hook restores the
// checkpoint (memory-mapped where the platform allows), the WAL tail replays
// on top, and the rebuilt engine must land exactly on the parked sequence
// number — anything less means acked ticks would be lost, which fail-stops
// the tenant instead of silently serving a rewound engine.
//
// Everything here runs on the shard goroutine, inside the same queued
// operations that touch engines today — no new locking discipline. The only
// cross-goroutine state is the manager's failed-tenant registry (its own
// mutex) and the residency counters (atomics), both read by the serving
// layer for /metrics and health.

// ErrTenantFailed marks a tenant latched fail-stopped by a hydration
// failure: its durable state cannot rebuild the engine that was parked.
// Every operation on the tenant reports it (wrapped, with the cause) until
// the tenant is deleted; match with errors.Is.
var ErrTenantFailed = errors.New("shard: tenant fail-stopped")

// parked is the in-memory footprint of an evicted tenant — just enough for
// Info and Tenants to answer without hydrating, plus the sequence number the
// hydrated engine must reach and the latched failure, if any.
type parked struct {
	seq         uint64
	tick        int
	streams     []string
	ticks       int
	imputations int
	failed      error
}

// install makes eng resident as tenant id: engine map, LRU front, and the
// residency accounting. Shard-goroutine only.
func (sh *shard) install(id string, eng *core.Engine) {
	sh.tenants[id] = eng
	sh.lruAt[id] = sh.lru.PushFront(id)
	sh.resBytes += eng.MemoryBytes()
	sh.nresident.Add(1)
}

// detach removes tenant id's resident engine from the shard (map, LRU,
// accounting) and returns it — the caller decides whether it is closed
// (evict, delete) or travels (migrate). Shard-goroutine only.
func (sh *shard) detach(id string) *core.Engine {
	eng := sh.tenants[id]
	delete(sh.tenants, id)
	if el, ok := sh.lruAt[id]; ok {
		sh.lru.Remove(el)
		delete(sh.lruAt, id)
	}
	sh.resBytes -= eng.MemoryBytes()
	sh.nresident.Add(-1)
	return eng
}

// touch marks tenant id most-recently-used. Called exactly once per shard
// operation that resolves the engine — a TickBatch counts once, same as a
// Tick, so batch size does not distort eviction order.
func (sh *shard) touch(id string) {
	if el, ok := sh.lruAt[id]; ok {
		sh.lru.MoveToFront(el)
	}
}

// overBudget reports whether the shard exceeds its residency budget (count
// or estimated bytes; zero caps are unlimited).
func (sh *shard) overBudget(m *Manager) bool {
	if m.residentCap > 0 && int(sh.nresident.Load()) > m.residentCap {
		return true
	}
	return m.residentBytesCap > 0 && sh.resBytes > m.residentBytesCap
}

// resolveResident returns tenant id's engine, hydrating a parked one in
// place. ok=false means the tenant is not on this shard at all (the caller
// classifies the miss); ok=true with an error means it IS here but cannot
// serve (fail-stopped, or this hydration attempt failed).
func (m *Manager) resolveResident(sh *shard, id string) (*core.Engine, bool, error) {
	if eng, ok := sh.tenants[id]; ok {
		sh.touch(id)
		return eng, true, nil
	}
	p, ok := sh.parked[id]
	if !ok {
		return nil, false, nil
	}
	if p.failed != nil {
		return nil, true, p.failed
	}
	eng, err := m.hydrateParked(sh, id, p)
	return eng, true, err
}

// resident is resolveResident with the standard miss classification (a
// rerouted tenant retries, anything else is ErrNoTenant) — the lookup at the
// top of every engine-touching operation.
func (m *Manager) resident(sh *shard, id string) (*core.Engine, error) {
	eng, ok, err := m.resolveResident(sh, id)
	if !ok {
		return nil, m.missing(sh, id)
	}
	return eng, err
}

// hydrateParked rebuilds tenant id's engine from durable state: checkpoint
// restore via the hook, then WAL tail replay, then the sequence check that
// proves no acked tick was lost. On success the engine is installed resident
// (possibly evicting a colder tenant to make room) and the parked entry
// dropped; on any failure the tenant latches fail-stopped.
func (m *Manager) hydrateParked(sh *shard, id string, p *parked) (*core.Engine, error) {
	if m.hydrate == nil {
		// A tenant can only park when eviction ran, which requires the hook;
		// do not latch — this is a wiring bug, not lost durable state.
		return nil, fmt.Errorf("shard: tenant %q is parked but no hydrator is configured", id)
	}
	t0 := obs.Now()
	eng, err := m.hydrate(id)
	if err != nil {
		return nil, m.latchFailed(id, p, err)
	}
	if m.wal != nil {
		// ReplayTail syncs first, so records that were still in the
		// group-commit buffer when the tenant parked are on stable storage
		// before the scan — the eviction/ack race closes here.
		_, err = m.wal.ReplayTenantTail(id, eng.Seq()+1, func(seq uint64, values []float64) error {
			if seq != eng.Seq()+1 {
				return fmt.Errorf("wal record %d does not follow engine seq %d", seq, eng.Seq())
			}
			_, _, terr := eng.Tick(values)
			return terr
		})
		if err != nil {
			eng.Close()
			return nil, m.latchFailed(id, p, err)
		}
	}
	if eng.Seq() != p.seq {
		err := fmt.Errorf("checkpoint + log rebuild reaches seq %d, tenant was parked at seq %d", eng.Seq(), p.seq)
		eng.Close()
		return nil, m.latchFailed(id, p, err)
	}
	delete(sh.parked, id)
	sh.nparked.Add(-1)
	sh.install(id, eng)
	m.hydrations.Add(1)
	m.hydrationHist.Observe(obs.Now() - t0)
	m.maybeEvict(sh)
	return eng, nil
}

// latchFailed fail-stops tenant id: the parked entry keeps the wrapped
// error (every operation reports it) and the manager's registry surfaces the
// tenant on the degraded-health path. Only Delete clears it — a tenant whose
// durable state cannot rebuild its engine must never be silently re-created.
func (m *Manager) latchFailed(id string, p *parked, cause error) error {
	err := fmt.Errorf("%w: %q: hydration failed: %v", ErrTenantFailed, id, cause)
	p.failed = err
	m.failedMu.Lock()
	m.failedTenants[id] = err
	m.failedMu.Unlock()
	return err
}

// clearFailed drops tenant id from the fail-stop registry (tenant deleted).
func (m *Manager) clearFailed(id string) {
	m.failedMu.Lock()
	delete(m.failedTenants, id)
	m.failedMu.Unlock()
}

// FailedTenants lists tenants latched fail-stopped by hydration failures,
// sorted — the serving layer's degraded-health report.
func (m *Manager) FailedTenants() []string {
	m.failedMu.Lock()
	defer m.failedMu.Unlock()
	ids := make([]string, 0, len(m.failedTenants))
	for id := range m.failedTenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// maybeEvict parks cold tenants from the LRU tail while the shard is over
// its residency budget. The front of the list — the tenant the current
// operation just touched or installed — is never a candidate, and neither is
// a tenant whose WAL log is missing or has latched fail-stop: parking one
// would strand acked ticks that only its in-memory engine still holds.
func (m *Manager) maybeEvict(sh *shard) {
	if m.hydrate == nil {
		return
	}
	for sh.overBudget(m) {
		victim := ""
		for el := sh.lru.Back(); el != nil && el != sh.lru.Front(); el = el.Prev() {
			id := el.Value.(string)
			if !m.evictable(id) {
				continue
			}
			victim = id
			break
		}
		if victim == "" {
			return
		}
		m.evict(sh, victim)
	}
}

// evictable reports whether tenant id's ticks are fully recoverable from
// disk: the Parkable veto (typically "its base checkpoint exists") passes,
// and its log is open and healthy (with the WAL disabled the hook's
// checkpoint must carry everything, which the post-hydration sequence check
// still enforces).
func (m *Manager) evictable(id string) bool {
	if m.parkable != nil && !m.parkable(id) {
		return false
	}
	if m.wal == nil {
		return true
	}
	l := m.wal.Get(id)
	return l != nil && l.Failed() == nil
}

// evict parks tenant id: the engine leaves memory while the durable state
// that rebuilds it stays put — eviction performs no I/O at all. The parked
// footprint answers Info/Tenants and pins the sequence number hydration
// must reach.
func (m *Manager) evict(sh *shard, id string) {
	eng := sh.detach(id)
	sh.parked[id] = &parked{
		seq:         eng.Seq(),
		tick:        eng.Window().Tick(),
		streams:     append([]string(nil), eng.Window().Names()...),
		ticks:       eng.Stats.Ticks,
		imputations: eng.Stats.Imputations,
	}
	sh.nparked.Add(1)
	eng.Close()
	m.evictions.Add(1)
}

// Residency is a point-in-time snapshot of the residency tier across every
// shard.
type Residency struct {
	// Resident counts tenants with a live in-memory engine.
	Resident int64
	// Parked counts tenants whose engine is evicted to durable state.
	Parked int64
	// Failed counts tenants latched fail-stopped by hydration failures.
	Failed int
	// Evictions and Hydrations count residency transitions since start.
	Evictions  uint64
	Hydrations uint64
}

// Residency samples the residency counters (lock-free except the failed
// registry).
func (m *Manager) Residency() Residency {
	r := Residency{Evictions: m.evictions.Load(), Hydrations: m.hydrations.Load()}
	for _, sh := range m.shards {
		r.Resident += sh.nresident.Load()
		r.Parked += sh.nparked.Load()
	}
	m.failedMu.Lock()
	r.Failed = len(m.failedTenants)
	m.failedMu.Unlock()
	return r
}

// HydrationHist exposes the hydration latency histogram (seconds buckets,
// internal/obs geometry) for the serving layer's /metrics.
func (m *Manager) HydrationHist() *obs.Histogram { return &m.hydrationHist }

// newLRU builds the residency bookkeeping for one shard.
func newLRU() (*list.List, map[string]*list.Element) {
	return list.New(), make(map[string]*list.Element)
}
