package shard

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tkcm/internal/core"
	"tkcm/internal/wal"
)

// fileHydrator restores a tenant engine from <dir>/<id>.ckpt — the test
// stand-in for the serving layer's checkpoint-directory hydrator, using the
// same mmap-backed restore path.
func fileHydrator(dir string) func(string) (*core.Engine, error) {
	return func(id string) (*core.Engine, error) {
		return core.RestoreEngineFile(filepath.Join(dir, id+".ckpt"))
	}
}

// writeCheckpoint snapshots tenant id into the hydrator's directory — the
// base checkpoint eviction relies on.
func writeCheckpoint(t *testing.T, m *Manager, dir, id string) {
	t.Helper()
	var img bytes.Buffer
	if _, err := m.Snapshot(context.Background(), id, &img); err != nil {
		t.Fatalf("checkpoint %s: %v", id, err)
	}
	if err := os.WriteFile(filepath.Join(dir, id+".ckpt"), img.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// residencyManager builds a single-shard manager with a WAL, a file
// hydrator, and a resident-engine cap — the standard churn fixture.
func residencyManager(t *testing.T, cap int) (*Manager, string) {
	t.Helper()
	ckDir := t.TempDir()
	m := New(Options{
		Shards:          1,
		WAL:             wal.NewManager(t.TempDir(), wal.Options{SyncInterval: time.Millisecond}),
		Hydrate:         fileHydrator(ckDir),
		ResidentEngines: cap,
	})
	return m, ckDir
}

// createWithCheckpoint creates tenant id and writes its base checkpoint —
// the invariant production maintains (a tenant is evictable from birth).
func createWithCheckpoint(t *testing.T, m *Manager, ckDir, id string) {
	t.Helper()
	if err := m.Create(context.Background(), id, testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	writeCheckpoint(t, m, ckDir, id)
}

// TestHydrationStreamEquivalence is the residency property test: a
// sequenced stream pushed through repeated evict→hydrate cycles must produce
// ack values and a final window bit-identical to a never-evicted engine —
// including a duplicate-seq replay straddling a hydration boundary.
func TestHydrationStreamEquivalence(t *testing.T) {
	ctx := context.Background()
	m, ckDir := residencyManager(t, 1) // one resident slot: every swap is an evict+hydrate
	defer m.Close()
	createWithCheckpoint(t, m, ckDir, "prop")
	createWithCheckpoint(t, m, ckDir, "pest")

	direct, err := core.NewEngine(testConfig(), testStreams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()

	var rsp, pestRsp TickResponse
	const n = 160
	for seq := uint64(1); seq <= n; seq++ {
		row := testRow(int(seq), 4)
		if seq%7 == 0 {
			row[2] = math.NaN()
		}
		want, _, err := direct.Tick(append([]float64(nil), row...))
		if err != nil {
			t.Fatal(err)
		}
		// Touching the pest first forces prop out of the single resident
		// slot, so every prop tick below crosses a hydration boundary.
		if err := m.Tick(ctx, "pest", 0, testRow(int(seq), 4), &pestRsp); err != nil {
			t.Fatalf("pest tick %d: %v", seq, err)
		}
		if err := m.Tick(ctx, "prop", seq, row, &rsp); err != nil {
			t.Fatalf("prop tick %d: %v", seq, err)
		}
		if err := rsp.Durable.Wait(); err != nil {
			t.Fatalf("prop tick %d durability: %v", seq, err)
		}
		if rsp.Seq != seq || rsp.Duplicate {
			t.Fatalf("tick %d: seq %d duplicate=%v", seq, rsp.Seq, rsp.Duplicate)
		}
		for i := range want {
			if math.Float64bits(rsp.Row[i]) != math.Float64bits(want[i]) {
				t.Fatalf("tick %d stream %d: hydrated-path %v, never-evicted %v (not bit-identical)", seq, i, rsp.Row[i], want[i])
			}
		}
		if seq%31 == 0 {
			// Duplicate replay across a hydration boundary: evict prop again,
			// then re-send an already-acked sequence number. The hydrated
			// engine must ack it idempotently, with durability re-verified.
			if err := m.Tick(ctx, "pest", 0, testRow(int(seq), 4), &pestRsp); err != nil {
				t.Fatal(err)
			}
			if err := m.Tick(ctx, "prop", seq, row, &rsp); err != nil {
				t.Fatalf("duplicate replay of seq %d: %v", seq, err)
			}
			if !rsp.Duplicate {
				t.Fatalf("replayed seq %d not acked as duplicate", seq)
			}
			if err := rsp.Durable.Wait(); err != nil {
				t.Fatalf("duplicate seq %d durability: %v", seq, err)
			}
		}
	}

	r := m.Residency()
	if r.Hydrations < 100 {
		t.Fatalf("only %d hydrations — the churn fixture is not exercising the boundary", r.Hydrations)
	}
	if r.Evictions < r.Hydrations {
		t.Fatalf("evictions %d < hydrations %d", r.Evictions, r.Hydrations)
	}

	// The final windows must match bit for bit.
	var img bytes.Buffer
	if _, err := m.Snapshot(ctx, "prop", &img); err != nil {
		t.Fatal(err)
	}
	got, err := core.RestoreEngine(&img)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.Seq() != direct.Seq() || got.Stats != direct.Stats {
		t.Fatalf("final state: seq %d stats %+v, want seq %d stats %+v", got.Seq(), got.Stats, direct.Seq(), direct.Stats)
	}
	gw, dw := got.Window(), direct.Window()
	for i := 0; i < dw.Width(); i++ {
		for j := 0; j < dw.Filled(); j++ {
			if math.Float64bits(gw.At(i, j)) != math.Float64bits(dw.At(i, j)) {
				t.Fatalf("final window stream %d index %d: %v, want %v", i, j, gw.At(i, j), dw.At(i, j))
			}
		}
	}
}

// TestEvictionLRUOrder pins the eviction order: least-recently-used parks
// first, and a TickBatch counts as ONE touch — batch size must not distort
// recency.
func TestEvictionLRUOrder(t *testing.T) {
	ctx := context.Background()
	m, ckDir := residencyManager(t, 2)
	defer m.Close()
	for _, id := range []string{"a", "b", "c"} {
		createWithCheckpoint(t, m, ckDir, id)
	}
	// Creation order a,b,c with cap 2 already parked a (the coldest).
	requireResidency(t, m, ctx, map[string]bool{"a": false, "b": true, "c": true})

	// Touch b via a large batch (one touch), then hydrate a: the LRU tail is
	// now c — if each batch row counted as a touch, the order would be the
	// same, but a later single-tick on c must outrank the whole batch.
	var brsp BatchResponse
	rows := make([][]float64, 16)
	for i := range rows {
		rows[i] = testRow(i, 4)
	}
	if err := m.TickBatch(ctx, "b", 0, rows, &brsp); err != nil {
		t.Fatal(err)
	}
	var rsp TickResponse
	if err := m.Tick(ctx, "c", 0, testRow(0, 4), &rsp); err != nil {
		t.Fatal(err)
	}
	// Recency now c > b: hydrating a must evict b, not c.
	if err := m.Tick(ctx, "a", 0, testRow(0, 4), &rsp); err != nil {
		t.Fatal(err)
	}
	requireResidency(t, m, ctx, map[string]bool{"a": true, "b": false, "c": true})

	r := m.Residency()
	if r.Resident != 2 || r.Parked != 1 {
		t.Fatalf("residency %+v, want 2 resident / 1 parked", r)
	}
}

func requireResidency(t *testing.T, m *Manager, ctx context.Context, want map[string]bool) {
	t.Helper()
	for id, resident := range want {
		info, err := m.Info(ctx, id)
		if err != nil {
			t.Fatalf("info %s: %v", id, err)
		}
		if info.Resident != resident {
			t.Fatalf("tenant %s resident=%v, want %v", id, info.Resident, resident)
		}
	}
}

// TestParkedTenantServesMetadata: Info and Tenants answer for a parked
// tenant from its footprint — sequence number, tick counts and stream names
// intact — without triggering a hydration.
func TestParkedTenantServesMetadata(t *testing.T) {
	ctx := context.Background()
	m, ckDir := residencyManager(t, 1)
	defer m.Close()
	createWithCheckpoint(t, m, ckDir, "a")
	var rsp TickResponse
	for seq := uint64(1); seq <= 30; seq++ {
		if err := m.Tick(ctx, "a", seq, testRow(int(seq), 4), &rsp); err != nil {
			t.Fatal(err)
		}
	}
	createWithCheckpoint(t, m, ckDir, "b") // parks a
	before := m.Residency().Hydrations

	info, err := m.Info(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Resident || info.Seq != 30 || info.Ticks != 30 || len(info.Streams) != 4 {
		t.Fatalf("parked info %+v", info)
	}
	all, err := m.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("listed %d tenants, want 2", len(all))
	}
	for _, ti := range all {
		if ti.ID == "a" && (ti.Resident || ti.Seq != 30) {
			t.Fatalf("parked listing %+v", ti)
		}
	}
	if got := m.Residency().Hydrations; got != before {
		t.Fatalf("metadata queries hydrated (%d -> %d)", before, got)
	}
}

// TestDeleteParkedTenant: deleting a parked tenant needs no hydration — the
// footprint, route and WAL go away, and the id is immediately reusable.
func TestDeleteParkedTenant(t *testing.T) {
	ctx := context.Background()
	m, ckDir := residencyManager(t, 1)
	defer m.Close()
	createWithCheckpoint(t, m, ckDir, "a")
	createWithCheckpoint(t, m, ckDir, "b") // parks a
	before := m.Residency()

	if err := m.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Info(ctx, "a"); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("deleted parked tenant still answers: %v", err)
	}
	if got := m.Residency(); got.Hydrations != before.Hydrations {
		t.Fatalf("delete of a parked tenant hydrated it (%d -> %d)", before.Hydrations, got.Hydrations)
	}
	if err := m.Create(ctx, "a", testConfig(), testStreams(), nil); err != nil {
		t.Fatalf("recreate after parked delete: %v", err)
	}
	var rsp TickResponse
	if err := m.Tick(ctx, "a", 1, testRow(0, 4), &rsp); err != nil || rsp.Seq != 1 {
		t.Fatalf("fresh tenant after parked delete: seq %d err %v", rsp.Seq, err)
	}
}

// TestHydrationFailureFailStops: a parked tenant whose checkpoint is gone or
// corrupt latches ErrTenantFailed on first touch — every subsequent
// operation reports it, the tenant is never silently re-created, and only
// Delete clears the latch.
func TestHydrationFailureFailStops(t *testing.T) {
	ctx := context.Background()
	m, ckDir := residencyManager(t, 1)
	defer m.Close()
	createWithCheckpoint(t, m, ckDir, "a")
	var rsp TickResponse
	for seq := uint64(1); seq <= 10; seq++ {
		if err := m.Tick(ctx, "a", seq, testRow(int(seq), 4), &rsp); err != nil {
			t.Fatal(err)
		}
	}
	createWithCheckpoint(t, m, ckDir, "b") // parks a

	// Corrupt the parked tenant's checkpoint.
	path := filepath.Join(ckDir, "a.ckpt")
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0x5a
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := m.Tick(ctx, "a", 11, testRow(11, 4), &rsp); !errors.Is(err, ErrTenantFailed) {
		t.Fatalf("tick against corrupt checkpoint: %v, want ErrTenantFailed", err)
	}
	// Latched: a later op reports the same failure without retrying restore.
	if _, err := m.Snapshot(ctx, "a", &bytes.Buffer{}); !errors.Is(err, ErrTenantFailed) {
		t.Fatalf("snapshot after latch: %v", err)
	}
	if got := m.FailedTenants(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("failed tenants %v, want [a]", got)
	}
	info, err := m.Info(ctx, "a")
	if err != nil || !info.Failed {
		t.Fatalf("failed tenant info %+v err %v", info, err)
	}
	// Not silently re-created: the id still exists.
	if err := m.Create(ctx, "a", testConfig(), testStreams(), nil); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("create over fail-stopped tenant: %v", err)
	}
	// Delete clears the latch; the id is reusable.
	if err := m.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if got := m.FailedTenants(); len(got) != 0 {
		t.Fatalf("failed tenants after delete: %v", got)
	}
	if err := m.Create(ctx, "a", testConfig(), testStreams(), nil); err != nil {
		t.Fatalf("recreate after fail-stop delete: %v", err)
	}
}

// TestHydrationRefusesRewoundEngine: a checkpoint that restores but cannot
// reach the parked sequence number (stale image + truncated-away WAL would
// rewind acked ticks) must fail-stop, not serve the rewound engine.
func TestHydrationRefusesRewoundEngine(t *testing.T) {
	ctx := context.Background()
	ckDir := t.TempDir()
	// No WAL: the checkpoint alone must carry the full state, so a stale one
	// is detectable purely by the sequence check.
	m := New(Options{Shards: 1, Hydrate: fileHydrator(ckDir), ResidentEngines: 1})
	defer m.Close()
	if err := m.Create(ctx, "a", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err)
	}
	var rsp TickResponse
	for seq := uint64(1); seq <= 10; seq++ {
		if err := m.Tick(ctx, "a", seq, testRow(int(seq), 4), &rsp); err != nil {
			t.Fatal(err)
		}
	}
	writeCheckpoint(t, m, ckDir, "a") // checkpoint at seq 10
	for seq := uint64(11); seq <= 20; seq++ {
		if err := m.Tick(ctx, "a", seq, testRow(int(seq), 4), &rsp); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Create(ctx, "b", testConfig(), testStreams(), nil); err != nil {
		t.Fatal(err) // parks a at seq 20; its checkpoint only reaches 10
	}
	err := m.Tick(ctx, "a", 21, testRow(21, 4), &rsp)
	if !errors.Is(err, ErrTenantFailed) {
		t.Fatalf("hydration of a rewound engine: %v, want ErrTenantFailed", err)
	}
}

// TestMigrateParkedTenant: a parked tenant migrates by hydrating inside the
// capture step — the image that travels is the full engine, and the tenant
// lands resident on the destination with its state intact.
func TestMigrateParkedTenant(t *testing.T) {
	ctx := context.Background()
	ckDir := t.TempDir()
	m := New(Options{
		Shards:          2,
		WAL:             wal.NewManager(t.TempDir(), wal.Options{SyncInterval: time.Millisecond}),
		Hydrate:         fileHydrator(ckDir),
		ResidentEngines: 2, // 1 per shard
		Routing:         NewTable(2),
	})
	defer m.Close()
	createWithCheckpoint(t, m, ckDir, "mover")
	var rsp TickResponse
	for seq := uint64(1); seq <= 25; seq++ {
		if err := m.Tick(ctx, "mover", seq, testRow(int(seq), 4), &rsp); err != nil {
			t.Fatal(err)
		}
	}
	src := m.ShardOf("mover")
	// Park it: a second tenant on the same shard takes the only slot.
	for _, id := range []string{"filler0", "filler1", "filler2"} {
		createWithCheckpoint(t, m, ckDir, id)
	}
	info, err := m.Info(ctx, "mover")
	if err != nil {
		t.Fatal(err)
	}
	if info.Resident {
		t.Skip("fillers landed elsewhere; mover never parked") // hash-routing dependent; avoid a false failure
	}
	dst := 1 - src
	if _, err := m.Migrate(ctx, "mover", dst); err != nil {
		t.Fatalf("migrating parked tenant: %v", err)
	}
	info, err = m.Info(ctx, "mover")
	if err != nil {
		t.Fatal(err)
	}
	if info.Shard != dst || info.Seq != 25 || !info.Resident {
		t.Fatalf("post-migration info %+v, want shard %d seq 25 resident", info, dst)
	}
	if err := m.Tick(ctx, "mover", 26, testRow(26, 4), &rsp); err != nil || rsp.Seq != 26 {
		t.Fatalf("tick after parked migration: seq %d err %v", rsp.Seq, err)
	}
}

// TestResidencyBytesCap: the bytes budget evicts like the count budget,
// sized by Engine.MemoryBytes.
func TestResidencyBytesCap(t *testing.T) {
	ctx := context.Background()
	ckDir := t.TempDir()
	eng, err := core.NewEngine(testConfig(), testStreams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	one := eng.MemoryBytes()
	eng.Close()
	m := New(Options{
		Shards:        1,
		WAL:           wal.NewManager(t.TempDir(), wal.Options{SyncInterval: time.Millisecond}),
		Hydrate:       fileHydrator(ckDir),
		ResidentBytes: one + one/2, // room for one engine, not two
	})
	defer m.Close()
	createWithCheckpoint(t, m, ckDir, "a")
	createWithCheckpoint(t, m, ckDir, "b")
	requireResidency(t, m, ctx, map[string]bool{"a": false, "b": true})
}
