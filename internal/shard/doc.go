// Package shard hosts many tenant imputation engines inside one process and
// serializes all access to them through a fixed set of single-goroutine
// shards — the concurrency substrate of the tkcm-serve subsystem.
//
// # Model
//
// A tenant is one named core.Engine (its own streams, config, window, and
// profiler state). Tenants are hashed (FNV-1a) onto N shards; each shard owns
// its tenants exclusively and executes every operation — create, tick,
// snapshot, delete — on one persistent goroutine fed by a bounded request
// queue. This gives three properties at once:
//
//   - Engine calls need no locks: core.Engine.Tick and Engine.Snapshot are
//     documented single-goroutine APIs, and the shard goroutine is that
//     goroutine.
//   - Cross-tenant parallelism scales with the shard count while each
//     tenant's ticks stay strictly ordered.
//   - Backpressure is structural: when a shard's queue is full the submitter
//     blocks (counted in Stats as a backpressure event) until space frees or
//     its context is done, so a hot tenant slows its own callers instead of
//     growing unbounded buffers.
//
// The worker discipline mirrors the engine's internal tick pool (PR 2):
// persistent goroutines ranging over a channel, stopped by closing it.
// Manager.Close first waits out in-flight submitters, then closes every
// queue; the shard goroutines drain what was already accepted — completing
// those requests — close their engines, and exit, which is what makes the
// server's graceful shutdown lossless.
package shard
