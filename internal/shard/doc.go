// Package shard hosts many tenant imputation engines inside one process and
// serializes all access to them through a fixed set of single-goroutine
// shards — the concurrency substrate of the tkcm-serve subsystem.
//
// # Model
//
// A tenant is one named core.Engine (its own streams, config, window, and
// profiler state). Tenants are routed onto N shards by a versioned routing
// Table — explicit, persisted assignments over a default FNV-1a hash route —
// and each shard owns its tenants exclusively, executing every operation —
// create, tick, snapshot, delete — on one persistent goroutine fed by a
// bounded request queue. This gives three properties at once:
//
//   - Engine calls need no locks: core.Engine.Tick and Engine.Snapshot are
//     documented single-goroutine APIs, and the shard goroutine is that
//     goroutine.
//   - Cross-tenant parallelism scales with the shard count while each
//     tenant's ticks stay strictly ordered.
//   - Backpressure is structural: when a shard's queue is full the submitter
//     blocks (counted in Stats as a backpressure event) until space frees or
//     its context is done, so a hot tenant slows its own callers instead of
//     growing unbounded buffers.
//
// The worker discipline mirrors the engine's internal tick pool (PR 2):
// persistent goroutines ranging over a channel, stopped by closing it.
// Manager.Close first waits out in-flight submitters, then closes every
// queue; the shard goroutines drain what was already accepted — completing
// those requests — close their engines, and exit, which is what makes the
// server's graceful shutdown lossless.
//
// # Routing and live migration
//
// The Table decouples tenant placement from the hash: Manager.Migrate moves
// a tenant between shards while it serves traffic. The tenant's queued
// operations drain on the source shard (the capture op runs behind them on
// the shard goroutine), new operations park in a bounded handoff buffer,
// the engine image travels through Engine.Snapshot/core.RestoreEngine with
// its WAL sequence handed off, and the routing table is persisted and
// fsynced before the in-memory route flips — then the parked operations
// replay on the destination. Durability is unaffected throughout: the
// write-ahead log and checkpoints are keyed by tenant, not shard, so a
// crash at any instant of a migration restores the tenant whole, on exactly
// one shard, from its checkpoint plus log. Pinning the default hash modulus
// in the Table is what lets the shard count grow across restarts without
// rerouting existing tenants; new shards start empty and receive tenants
// through explicit migrations (typically the server's rebalancer).
package shard
