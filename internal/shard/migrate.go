package shard

import (
	"bytes"
	"context"
	"fmt"
	"sync"

	"tkcm/internal/core"
)

// migration is one tenant move in flight. The hot path (do) discovers it
// with a single atomic load and parks the tenant's requests in the bounded
// handoff buffer; the migration's conclusion forwards them to whichever
// shard ended up hosting the tenant — the destination on success, the
// source after a rollback.
type migration struct {
	tenant string

	mu     sync.Mutex
	parked []*request
	done   bool

	// flipped closes when the migration concludes (either way), releasing
	// submitters blocked on a full handoff buffer to re-resolve the route.
	flipped chan struct{}
}

// Migrate moves tenant tenantID onto shard dst live: the tenant's queued
// operations drain on the source shard, new ones park in a bounded handoff
// buffer, the engine image travels via Engine.Snapshot/core.RestoreEngine
// with its write-ahead-log sequence handed off intact, the routing table is
// persisted (fsynced) and atomically flipped, and the parked operations
// replay on the destination. Acked ⇒ durable holds throughout: the WAL and
// checkpoints are shard-agnostic, so a crash at any point during the
// migration restores the tenant — whole, on exactly one shard — from its
// checkpoint plus log.
//
// Migrations are serialized (one tenant in transit at a time). Returns the
// source shard; migrating a tenant onto the shard it already occupies
// verifies the tenant exists and is otherwise a no-op.
func (m *Manager) Migrate(ctx context.Context, tenantID string, dst int) (int, error) {
	if dst < 0 || dst >= len(m.shards) {
		return 0, fmt.Errorf("%w: destination %d out of range [0,%d)", ErrBadShard, dst, len(m.shards))
	}
	m.migrateMu.Lock()
	defer m.migrateMu.Unlock()
	if m.closed.Load() {
		return 0, ErrClosed
	}
	src := m.routing.ShardFor(tenantID)
	if src == dst {
		_, err := m.Info(ctx, tenantID)
		return src, err
	}

	mig := &migration{tenant: tenantID, flipped: make(chan struct{})}
	m.migrating.Store(mig)
	// conclude flips the route state and replays the parked requests on the
	// shard that hosts the tenant now. Every return path runs it exactly
	// once — a migration must never leave requests parked forever.
	conclude := func(target *shard) {
		mig.mu.Lock()
		mig.done = true
		parked := mig.parked
		mig.parked = nil
		mig.mu.Unlock()
		m.migrating.Store(nil)
		close(mig.flipped)
		for _, req := range parked {
			m.forward(target, req)
		}
	}

	// Quiesce and capture: this op runs on the source shard goroutine after
	// every previously-queued operation for the tenant, so the snapshot sees
	// a settled engine. The engine leaves the shard map here but stays alive
	// for rollback until the destination commit is final.
	var (
		img   bytes.Buffer
		moved *core.Engine
	)
	err := m.submit(ctx, m.shards[src], func(sh *shard) error {
		// A parked tenant migrates too: hydrate it first — the image that
		// travels must be the full engine, not the footprint. A fail-stopped
		// tenant refuses here with its latched error, same as every other op.
		eng, ok, rerr := m.resolveResident(sh, tenantID)
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoTenant, tenantID)
		}
		if rerr != nil {
			return rerr
		}
		if err := eng.Snapshot(&img); err != nil {
			return fmt.Errorf("shard: snapshotting %q for migration: %w", tenantID, err)
		}
		sh.detach(tenantID)
		sh.ntenants.Add(-1)
		moved = eng
		return nil
	})
	if err != nil {
		conclude(m.shards[src])
		return src, err
	}

	// Rebuild the engine from its image off both shard goroutines — neither
	// the source nor the destination stalls its other tenants on the decode.
	restored, err := core.RestoreEngine(&img)
	if err != nil {
		err = fmt.Errorf("shard: restoring %q on shard %d: %w", tenantID, dst, err)
		m.rollback(ctx, tenantID, src, moved, nil, conclude)
		return src, err
	}

	// Install on the destination, handing the write-ahead log's sequence
	// across the move. The log is process-wide and stays open, so the raise
	// is normally a no-op; it still runs so the append invariant (next seq =
	// engine seq + 1) is enforced at the handoff rather than assumed.
	err = m.submit(ctx, m.shards[dst], func(sh *shard) error {
		if _, ok := sh.tenants[tenantID]; ok {
			return fmt.Errorf("%w: %q (already on destination shard %d)", ErrTenantExists, tenantID, dst)
		}
		if _, ok := sh.parked[tenantID]; ok {
			return fmt.Errorf("%w: %q (already parked on destination shard %d)", ErrTenantExists, tenantID, dst)
		}
		if m.wal != nil {
			l, err := m.wal.Open(tenantID)
			if err != nil {
				return err
			}
			if err := l.SetNextSeq(restored.Seq() + 1); err != nil {
				return err
			}
		}
		sh.install(tenantID, restored)
		sh.ntenants.Add(1)
		m.maybeEvict(sh)
		return nil
	})
	if err != nil {
		m.rollback(ctx, tenantID, src, moved, restored, conclude)
		return src, err
	}

	// The point of no return: persist the new route, fsync it, and only
	// then flip it in memory. A crash before the save restores the tenant
	// onto the source shard from checkpoint + WAL; after it, onto the
	// destination — wholly on one shard either way.
	if err := m.routing.Assign(tenantID, dst); err != nil {
		derr := m.submit(context.WithoutCancel(ctx), m.shards[dst], func(sh *shard) error {
			sh.detach(tenantID)
			sh.ntenants.Add(-1)
			return nil
		})
		if derr != nil {
			// The destination kept the engine (e.g. manager closing); do not
			// double-host — let the rollback release the source copy only.
			restored = nil
		}
		m.rollback(ctx, tenantID, src, moved, restored, conclude)
		return src, fmt.Errorf("shard: persisting route of %q: %w", tenantID, err)
	}
	m.migrations.Add(1)
	conclude(m.shards[dst])
	moved.Close()
	return src, nil
}

// rollback re-hosts the original engine on the source shard after a failed
// migration, closes the half-built destination engine (when non-nil), and
// concludes the migration back onto the source. The reattach deliberately
// ignores the caller's context: a migration aborted BY a context expiry
// must still put the tenant back, not leave it unhosted until a restart.
func (m *Manager) rollback(ctx context.Context, tenantID string, src int, moved, restored *core.Engine, conclude func(*shard)) {
	if restored != nil {
		restored.Close()
	}
	err := m.submit(context.WithoutCancel(ctx), m.shards[src], func(sh *shard) error {
		sh.install(tenantID, moved)
		sh.ntenants.Add(1)
		m.maybeEvict(sh)
		return nil
	})
	if err != nil {
		// The manager is closing: the in-memory engine is unhostable, but
		// its durable state — checkpoint plus WAL — restores it on the next
		// start, on the source shard the routing table still names.
		moved.Close()
	}
	conclude(m.shards[src])
}

// forward hands a parked request to target's queue, honoring the same
// closed-manager discipline as submit; a request accepted into the handoff
// buffer is always answered.
func (m *Manager) forward(target *shard, req *request) {
	m.senders.Add(1)
	if m.closed.Load() {
		m.senders.Done()
		req.done <- ErrClosed
		return
	}
	target.reqs <- req
	m.senders.Done()
}
