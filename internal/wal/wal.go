package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Record framing — every record is self-verifying:
//
//	payloadLen  uint32 LE (bytes of payload)
//	crc         uint32 LE, IEEE CRC-32 of the payload
//	payload:    seq uint64 LE | count uint32 LE | count × float64 bits LE
//
// A BATCH record (AppendBatch) packs k consecutive rows of one width into a
// single frame — one length, one CRC, one group-commit slot for the lot. It
// is distinguished by bit 31 of the count field (no legal single record can
// set it: maxRecordValues is far below):
//
//	payload:    seq uint64 LE | width|batchCountFlag uint32 LE |
//	            rows uint32 LE | rows × width × float64 bits LE
//
// seq is the FIRST row's sequence number; row i carries seq+i. Replay
// delivers batch rows one by one, so readers never see the difference. A
// torn batch frame loses the whole batch — safe, because its single commit
// slot means no row of it was acknowledged before the covering fsync.
//
// Each segment file starts with the 8-byte magic "TKCMWAL1" and is named
// seg-<firstSeq>.wal (20-digit zero-padded decimal), so the segment order
// and the sequence range it covers are recoverable from the directory
// listing alone.
const (
	segMagic  = "TKCMWAL1"
	segPrefix = "seg-"
	segSuffix = ".wal"
	// recHeader is the fixed framing prefix: payloadLen + crc.
	recHeader = 8
	// maxRecordValues bounds one record's value count — and one batch
	// record's total value count (rows × width) — against corrupt or
	// crafted length fields (a row wider than this could not have been
	// appended: core.MaxWindowLength bounds engines far below it).
	maxRecordValues = 1 << 24
	// batchCountFlag marks the count field of a batch record; the low bits
	// then hold the per-row width and a rows uint32 follows.
	batchCountFlag = 1 << 31
)

// Sentinel errors of the log boundary; match with errors.Is.
var (
	// ErrClosed is returned by operations on a closed Log.
	ErrClosed = errors.New("wal: log closed")
	// ErrOutOfOrder is returned by Append when seq is not the log's next
	// expected sequence number.
	ErrOutOfOrder = errors.New("wal: out-of-order sequence number")
	// ErrCorrupt is returned by Replay when a non-final segment contains an
	// unreadable record — acked data after it cannot be recovered, which the
	// caller must surface rather than silently skip.
	ErrCorrupt = errors.New("wal: corrupt segment")
)

// Options tunes a Log. The zero value gets conservative defaults.
type Options struct {
	// SyncInterval is the group-commit window: appends are batched and one
	// fsync makes the whole batch durable, so ack latency is bounded by the
	// interval while the fsync cost amortizes over every record in the
	// batch. Zero or negative syncs every append (slowest, strictest).
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 64 MiB). Smaller segments make truncation reclaim space
	// sooner; each rotation costs one fsync + file creation.
	SegmentBytes int64
	// Key authenticates the log's integrity layer: commit frames and the
	// per-tenant head file carry HMAC-SHA256 tags under this key, so a log
	// directory cannot be substituted or re-signed without it. An empty key
	// still gets the full Merkle machinery — integrity without authenticity:
	// accidental corruption is detected, a key-holding forger is not.
	Key []byte

	// Test-only fault injection seam: each hook, when non-nil, runs before
	// the corresponding disk operation and its error is treated as that
	// operation failing. Unexported — only in-package tests can set them —
	// so the latch paths (fsync failure mid-batch, rotation failure, head
	// save failure) are deterministically coverable.
	failWrite  func() error       // before writing a batch to the segment
	failSync   func() error       // before fsyncing the segment
	failCreate func(string) error // before creating a segment file
	failHead   func() error       // before saving the head file
}

// WithFailSync returns a copy of o whose sync path runs fn immediately
// before every segment fsync; a non-nil error from fn is treated as the
// fsync failing (latching the log fail-stopped like a real I/O error).
// This is the one fault seam exposed outside the package: callers — the
// serving layer's slow-tick-trace and degraded-mode tests — use a sleeping
// fn to stretch the group-commit durability window deterministically, or an
// erroring fn to latch fail-stop, without reaching into package internals.
func (o Options) WithFailSync(fn func() error) Options {
	o.failSync = fn
	return o
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return 64 << 20
	}
	return o.SegmentBytes
}

// counters aggregates activity across the logs of one Manager (atomics live
// in Manager; a standalone Log carries its own private set).
type counters struct {
	appends   func(uint64)
	syncs     func(uint64)
	syncErrs  func(uint64)
	bytes     func(uint64)
	truncates func(uint64)
}

func noopCounters() *counters {
	f := func(uint64) {}
	return &counters{appends: f, syncs: f, syncErrs: f, bytes: f, truncates: f}
}

// batch is one group commit in flight: every Append between two syncs shares
// it. done closes after the covering fsync; err then holds its outcome.
type batch struct {
	done chan struct{}
	err  error
}

// Commit is the durability handle of one Append: Wait blocks until the fsync
// covering the record completes and reports its outcome. Acknowledge a write
// only after Wait returns nil.
type Commit struct {
	b *batch
	// Verify mode (DurableCommit): Wait instead ensures the record with
	// sequence number seq is on stable storage, forcing a sync when needed.
	l   *Log
	seq uint64
}

// Wait blocks until the record's group commit has been fsynced.
func (c Commit) Wait() error {
	if c.l != nil {
		if c.l.durable.Load() >= c.seq {
			return nil
		}
		if err := c.l.Sync(); err != nil {
			return err
		}
		if c.l.durable.Load() < c.seq {
			return fmt.Errorf("wal: record %d is not on stable storage (its log record was lost)", c.seq)
		}
		return nil
	}
	if c.b == nil {
		return nil
	}
	<-c.b.done
	return c.b.err
}

// DurableCommit returns a Commit whose Wait verifies that the record with
// sequence number seq is on stable storage, syncing the pending batch if it
// is not yet covered. It lets a caller that must re-promise durability for an
// already-applied record (acking a replayed duplicate) push the fsync onto
// the goroutine that Waits instead of the one producing ticks.
func (l *Log) DurableCommit(seq uint64) Commit { return Commit{l: l, seq: seq} }

// Log is one tenant's append-only tick log.
//
// Locking discipline: mu guards only the in-memory state — the encode
// buffer, the pending batch, and the sequence counter — so Append costs a
// memcpy and never waits on disk (critical: the serving layer appends from
// a shard goroutine that hosts many tenants). All file I/O (write, fsync,
// rotation) happens under syncMu, held by at most one syncer at a time
// (the flusher goroutine, or Append/Sync/Close in strict paths), with mu
// released before the disk is touched.
type Log struct {
	dir  string
	opts Options
	ctr  *counters

	mu      sync.Mutex
	buf     []byte // encoded records awaiting the next sync
	pending *batch // nil when every appended record is part of a sync
	nextSeq uint64
	closed  bool
	// failed latches the first write/fsync error permanently: the records
	// of the failed batch are gone while nextSeq already moved past them,
	// so accepting further appends would bury a sequence gap under later,
	// successfully-synced (and therefore acked) records. Fail-stop instead:
	// every subsequent Append reports the original error and nothing more
	// is acknowledged; reopening the log after the disk recovers rescans
	// the tail and resumes at the true next sequence number.
	failed error

	syncMu   sync.Mutex
	f        *os.File // active segment; touched only under syncMu
	spare    []byte   // recycled buffer handed back to buf
	segStart uint64   // first seq of the active segment
	segSize  int64

	// Integrity state, touched only under syncMu (hashing rides the sync
	// path, never Append): identity binds the chain to the tenant directory,
	// head mirrors the on-disk head.tkcmh, cs accumulates the active
	// segment's Merkle tree (cs.prevChain = chain through sealed segments),
	// and lastRec is the last record seq written to the active segment
	// (0 = none), which every commit frame must equal.
	identity string
	head     *headState
	cs       chainScan
	lastRec  uint64

	// durable is the highest sequence number known to be on stable storage
	// (everything ≤ it survived every fsync so far). Monotone; read by the
	// serving layer to decide whether a replayed row may be acked as a
	// duplicate without re-syncing.
	durable atomic.Uint64

	wake chan struct{} // arms the flusher after the first append of a batch
	quit chan struct{}
	done chan struct{} // flusher exited
}

// Open opens (creating if necessary) the log in dir. The final segment's
// tail is scanned and a torn final record — the signature of a crash during
// an unacknowledged append — is truncated away; every complete record is
// preserved. The next expected sequence number becomes lastSeq+1 (1 for an
// empty log); raise it with SetNextSeq after restoring from a newer
// checkpoint.
func Open(dir string, opts Options) (*Log, error) {
	return open(dir, opts, noopCounters())
}

func open(dir string, opts Options, ctr *counters) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	identity := filepath.Base(filepath.Clean(dir))
	head, headRaw, err := loadHead(dir)
	if err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		dir:      dir,
		opts:     opts,
		ctr:      ctr,
		identity: identity,
		wake:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	l.cs = chainScan{identity: identity, key: opts.Key, checkMAC: true}
	if head == nil {
		if len(segs) > 0 {
			return nil, fmt.Errorf("%w: %s: segments exist but %s is missing (deleted, or a pre-integrity log — see docs/OPERATIONS.md)",
				ErrCorrupt, identity, HeadFileName)
		}
		// Fresh log: anchor the chain before the first segment exists — a
		// crash between the two is the provably-empty state Open recreates.
		head = &headState{identity: identity, baseChain: chainGenesis(identity), activeFirstSeq: 1}
		if err := saveHead(dir, head, opts.Key); err != nil {
			return nil, err
		}
		l.head = head
		l.cs.prevChain = head.baseChain
		l.nextSeq = 1
		if err := l.createSegment(1); err != nil {
			return nil, err
		}
	} else {
		if err := verifyHeadMAC(headRaw, opts.Key); err != nil {
			return nil, err
		}
		if head.identity != identity {
			return nil, fmt.Errorf("%w: head identity %q does not match directory %q (log directory copied or renamed?)",
				ErrCorrupt, head.identity, identity)
		}
		if err := l.adoptExisting(head, segs); err != nil {
			return nil, err
		}
	}
	l.durable.Store(l.nextSeq - 1) // everything commit-covered on disk is durable
	go l.flusher()
	return l, nil
}

// adoptExisting reconciles a verified head against the directory's segment
// inventory and rebuilds the in-memory chain state. It handles every
// one-step-behind crash window the write orderings can leave — a truncation
// leftover below the chain base, a rotation that saved the head but never
// created the new segment, and replicated successor segments a follower
// fetched before its head update — and reports everything else as
// ErrCorrupt.
func (l *Log) adoptExisting(head *headState, segs []segment) error {
	sealedAt := make(map[uint64]int, len(head.sealed))
	for i, s := range head.sealed {
		sealedAt[s.firstSeq] = i
	}
	present := make(map[uint64]bool, len(segs))
	var extras []segment
	activeFound := false
	for _, seg := range segs {
		switch {
		case seg.firstSeq == head.activeFirstSeq:
			activeFound = true
		case seg.firstSeq > head.activeFirstSeq:
			extras = append(extras, seg)
		default:
			if _, ok := sealedAt[seg.firstSeq]; ok {
				present[seg.firstSeq] = true
				break
			}
			if seg.firstSeq <= head.baseSeq {
				// Truncation leftover: the head's base was raised past this
				// segment before its unlink landed. Finish the job.
				os.Remove(filepath.Join(l.dir, seg.name))
				break
			}
			return fmt.Errorf("%w: %s: segment %s is not in the signed head inventory", ErrCorrupt, l.identity, seg.name)
		}
	}
	for _, s := range head.sealed {
		if !present[s.firstSeq] {
			return fmt.Errorf("%w: %s: sealed segment %s (seqs %d..%d) is missing",
				ErrCorrupt, l.identity, segmentName(s.firstSeq), s.firstSeq, s.lastSeq)
		}
	}
	l.head = head
	l.cs.prevChain = head.chainThroughSealed()
	if !activeFound {
		if len(extras) > 0 {
			return fmt.Errorf("%w: %s: active segment %s is missing but later segments exist",
				ErrCorrupt, l.identity, segmentName(head.activeFirstSeq))
		}
		if head.durableSeq > head.activeFirstSeq-1 {
			return fmt.Errorf("%w: %s: active segment %s is missing and the head proves records durable through seq %d",
				ErrCorrupt, l.identity, segmentName(head.activeFirstSeq), head.durableSeq)
		}
		// Rotation crash window: the head was anchored, the new segment was
		// never created, and nothing durable could have entered it.
		l.nextSeq = head.activeFirstSeq
		return l.createSegment(head.activeFirstSeq)
	}
	if err := l.openActive(head.activeFirstSeq, len(extras) > 0); err != nil {
		return err
	}
	if len(extras) == 0 {
		if head.durableSeq > l.durableOnDisk() {
			return fmt.Errorf("%w: %s: head proves records durable through seq %d but the segments only prove %d (active segment truncated or substituted)",
				ErrCorrupt, l.identity, head.durableSeq, l.durableOnDisk())
		}
		return nil
	}
	// Replicated successors beyond the head's active segment (a follower
	// fetched segments before its head update, then crashed): verify each
	// against the chain, seal its predecessor, and adopt the last as the new
	// active segment — then re-anchor the head so the adoption is durable.
	for i, seg := range extras {
		if l.lastRec == 0 || seg.firstSeq <= l.lastRec {
			return fmt.Errorf("%w: %s: segment %s overlaps its predecessor (last seq %d)",
				ErrCorrupt, l.identity, seg.name, l.lastRec)
		}
		root := l.cs.sealRoot()
		l.head.sealed = append(l.head.sealed, sealedSegment{firstSeq: l.segStart, lastSeq: l.lastRec, root: root})
		l.cs.prevChain = chainNext(l.cs.prevChain, root)
		l.cs.acc.reset()
		l.f.Close()
		l.f = nil
		if err := l.openActive(seg.firstSeq, i < len(extras)-1); err != nil {
			return err
		}
	}
	l.head.activeFirstSeq = l.segStart
	l.head.durableSeq = l.durableOnDisk()
	if err := saveHead(l.dir, l.head, l.opts.Key); err != nil {
		return err
	}
	return nil
}

// durableOnDisk is the highest seq the on-disk state proves durable: the
// last commit in the active segment, or (for an empty active segment)
// everything before its base — sealed ranges plus any checkpoint-covered
// SetNextSeq gap.
func (l *Log) durableOnDisk() uint64 {
	if l.lastRec != 0 {
		return l.cs.lastCommitSeq
	}
	return l.segStart - 1
}

// openActive opens the segment starting at firstSeq as the active segment:
// it chain-scans the content (verifying every commit frame's root and MAC),
// truncates anything past the last commit frame — a crash-torn write, or
// complete records whose covering fsync never returned; neither was ever
// acknowledged — and positions the log to append. With mustSeal the segment
// is a replicated predecessor that must be commit-terminated exactly at EOF.
// The damage/tail disambiguation: an unreadable frame followed anywhere by a
// surviving commit frame cannot be crash damage (fsynced bytes don't tear),
// so it is ErrCorrupt rather than a healable tail.
func (l *Log) openActive(firstSeq uint64, mustSeal bool) error {
	path := filepath.Join(l.dir, segmentName(firstSeq))
	l.cs.segFirstSeq = firstSeq
	l.cs.acc.reset()
	l.cs.lastCommitSeq, l.cs.lastCommitOff, l.cs.commits, l.cs.records, l.cs.sawCommit = 0, 0, 0, 0, false
	var accAtCommit merkleAcc
	prevOnCommit := l.cs.onCommitHook
	l.cs.onCommitHook = func() { accAtCommit = l.cs.snapshotAcc() }
	_, end, err := scanSegment(path, firstSeq, nil, &l.cs)
	l.cs.onCommitHook = prevOnCommit
	var torn *tornError
	if err != nil && !errors.As(err, &torn) {
		return err
	}
	if err != nil {
		// Unreadable frame: healable only if nothing commit-covered follows.
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return fmt.Errorf("wal: %w", rerr)
		}
		if int64(len(raw)) > end && hasCommitBeyond(raw[end:]) {
			return fmt.Errorf("%w: %s: unreadable frame at offset %d with committed records beyond it (segment tampered)",
				ErrCorrupt, filepath.Base(path), end)
		}
	}
	cut := l.cs.lastCommitOff
	if !l.cs.sawCommit {
		cut = int64(len(segMagic))
	}
	f, ferr := os.OpenFile(path, os.O_RDWR, 0o644)
	if ferr != nil {
		return fmt.Errorf("wal: %w", ferr)
	}
	if mustSeal && (err != nil || end != cut) {
		f.Close()
		return fmt.Errorf("%w: %s: replicated segment is not commit-terminated", ErrCorrupt, filepath.Base(path))
	}
	if err := f.Truncate(cut); err != nil {
		f.Close()
		return fmt.Errorf("wal: truncating uncommitted tail: %w", err)
	}
	if cut < int64(len(segMagic)) {
		// The crash tore the magic itself (segment created, header not yet
		// durable): rewrite it — the segment provably has no records.
		if _, err := f.WriteString(segMagic); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		cut = int64(len(segMagic))
	} else if _, err := f.Seek(cut, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.segStart = firstSeq
	l.segSize = cut
	if l.cs.sawCommit {
		l.cs.acc = accAtCommit
		l.lastRec = l.cs.lastCommitSeq
		l.nextSeq = l.cs.lastCommitSeq + 1
	} else {
		l.cs.acc.reset()
		l.lastRec = 0
		l.nextSeq = firstSeq
	}
	return nil
}

// NextSeq returns the sequence number the next Append must carry.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// SetNextSeq raises the next expected sequence number — used after a restore
// whose checkpoint is newer than the log's tail (e.g. after a crash between
// a checkpoint rename and the fsync covering the last appends, or when the
// WAL was enabled on an installation that already had checkpoints). Lowering
// it is refused: re-issuing sequence numbers would corrupt the order
// invariant.
//
// When the active segment already holds records, raising the sequence past
// its tail rotates to a fresh segment named with the new first seq. Leaving
// the gap inside one segment would make scanSegment read the jump as a torn
// tail on the next Open and truncate every record after it — losing acked
// data the checkpoint does not cover.
func (l *Log) SetNextSeq(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if seq < l.nextSeq {
		cur := l.nextSeq
		l.mu.Unlock()
		return fmt.Errorf("%w: cannot lower next seq %d to %d", ErrOutOfOrder, cur, seq)
	}
	if seq == l.nextSeq {
		l.mu.Unlock()
		return nil
	}
	hasPending := len(l.buf) > 0 || l.pending != nil
	l.mu.Unlock()
	if hasPending {
		// Records buffered for the old sequence range belong in the old
		// segment; push them out before deciding whether it is empty.
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	// mu is held across the rotation — rare restore-path file I/O — so no
	// append can slip a record with an old sequence number into the new
	// segment between the flush above and the raise below.
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return fmt.Errorf("wal: log failed, refusing seq change: %w", l.failed)
	}
	if len(l.buf) > 0 || l.pending != nil || seq < l.nextSeq {
		return fmt.Errorf("wal: appends raced SetNextSeq(%d)", seq)
	}
	if seq > l.nextSeq && l.segSize > int64(len(segMagic)) {
		if err := l.rotate(seq); err != nil {
			l.failed = err
			return err
		}
	}
	l.nextSeq = seq
	// The skipped-over range is covered by the checkpoint that justified
	// the jump; for durability queries it counts as on stable storage.
	raiseMax(&l.durable, seq-1)
	return nil
}

// DurableThrough returns the highest sequence number on stable storage.
func (l *Log) DurableThrough() uint64 { return l.durable.Load() }

// raiseMax lifts v to at least x (v is monotone under concurrent raisers).
func raiseMax(v *atomic.Uint64, x uint64) {
	for {
		cur := v.Load()
		if cur >= x || v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Append encodes one record (seq must be exactly NextSeq) into the log's
// memory buffer and returns its durability handle. Append never waits on
// disk (group-commit mode): the flusher writes and fsyncs the batch within
// Options.SyncInterval, and Commit.Wait blocks until then. With
// SyncInterval ≤ 0 the record is written and fsynced before Append returns.
// values is copied out before Append returns; the caller may reuse it.
func (l *Log) Append(seq uint64, values []float64) (Commit, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return Commit{}, ErrClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return Commit{}, fmt.Errorf("wal: log failed, refusing append: %w", err)
	}
	if seq != l.nextSeq {
		l.mu.Unlock()
		return Commit{}, fmt.Errorf("%w: got %d, want %d", ErrOutOfOrder, seq, l.nextSeq)
	}

	payload := 8 + 4 + 8*len(values)
	need := recHeader + payload
	off := len(l.buf)
	l.buf = append(l.buf, make([]byte, need)...)
	b := l.buf[off : off+need]
	binary.LittleEndian.PutUint32(b[0:4], uint32(payload))
	binary.LittleEndian.PutUint64(b[8:16], seq)
	binary.LittleEndian.PutUint32(b[16:20], uint32(len(values)))
	for i, v := range values {
		binary.LittleEndian.PutUint64(b[20+8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(b[recHeader:]))

	l.nextSeq++
	l.ctr.appends(1)
	l.ctr.bytes(uint64(need))

	if l.opts.SyncInterval <= 0 {
		// Strict mode: write + fsync before returning.
		l.mu.Unlock()
		return Commit{}, l.syncNow()
	}
	if l.pending == nil {
		l.pending = &batch{done: make(chan struct{})}
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	c := Commit{b: l.pending}
	l.mu.Unlock()
	return c, nil
}

// AppendBatch encodes rows as ONE record carrying sequence numbers
// seq..seq+len(rows)-1 (seq must be exactly NextSeq and every row must have
// the same width). The whole batch shares a single length/CRC frame and a
// single group-commit slot, so the per-record framing, buffer bookkeeping
// and Commit allocation amortize over the batch; the returned Commit covers
// every row. Rows are copied out before AppendBatch returns. A single-row
// batch degrades to a plain Append.
func (l *Log) AppendBatch(seq uint64, rows [][]float64) (Commit, error) {
	if len(rows) == 0 {
		return Commit{}, errors.New("wal: empty batch")
	}
	if len(rows) == 1 {
		return l.Append(seq, rows[0])
	}
	width := len(rows[0])
	for i, r := range rows[1:] {
		if len(r) != width {
			return Commit{}, fmt.Errorf("wal: batch row %d has %d values, want %d", i+1, len(r), width)
		}
	}
	if width*len(rows) > maxRecordValues {
		return Commit{}, fmt.Errorf("wal: batch of %d×%d values exceeds the record limit", len(rows), width)
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return Commit{}, ErrClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return Commit{}, fmt.Errorf("wal: log failed, refusing append: %w", err)
	}
	if seq != l.nextSeq {
		l.mu.Unlock()
		return Commit{}, fmt.Errorf("%w: got %d, want %d", ErrOutOfOrder, seq, l.nextSeq)
	}

	payload := 8 + 4 + 4 + 8*width*len(rows)
	need := recHeader + payload
	off := len(l.buf)
	l.buf = append(l.buf, make([]byte, need)...)
	b := l.buf[off : off+need]
	binary.LittleEndian.PutUint32(b[0:4], uint32(payload))
	binary.LittleEndian.PutUint64(b[8:16], seq)
	binary.LittleEndian.PutUint32(b[16:20], uint32(width)|batchCountFlag)
	binary.LittleEndian.PutUint32(b[20:24], uint32(len(rows)))
	at := 24
	for _, r := range rows {
		for _, v := range r {
			binary.LittleEndian.PutUint64(b[at:], math.Float64bits(v))
			at += 8
		}
	}
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(b[recHeader:]))

	l.nextSeq = seq + uint64(len(rows))
	l.ctr.appends(uint64(len(rows)))
	l.ctr.bytes(uint64(need))

	if l.opts.SyncInterval <= 0 {
		l.mu.Unlock()
		return Commit{}, l.syncNow()
	}
	if l.pending == nil {
		l.pending = &batch{done: make(chan struct{})}
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	c := Commit{b: l.pending}
	l.mu.Unlock()
	return c, nil
}

// Sync forces the pending batch to stable storage immediately.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.mu.Unlock()
	return l.syncNow()
}

// syncNow is the only path that touches the segment file: it detaches the
// buffered records and the pending batch under mu, then writes, fsyncs and
// (when due) rotates under syncMu alone — appends proceed concurrently into
// a fresh buffer and the next batch.
func (l *Log) syncNow() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.syncLocked()
}

// syncLocked is syncNow's body; the caller holds syncMu.
func (l *Log) syncLocked() error {
	l.mu.Lock()
	data := l.buf
	b := l.pending
	l.buf = l.spare[:0]
	l.pending = nil
	firstSeq := l.nextSeq // lower bound for a rotated segment's records
	failed := l.failed
	l.mu.Unlock()
	if len(data) == 0 && b == nil {
		return failed
	}
	if failed != nil {
		// A previous sync failed and its records are a hole: writing these
		// later records would bury the gap under valid-looking data. Refuse
		// and fail their producers instead.
		l.spare = data[:0]
		if b != nil {
			b.err = failed
			close(b.done)
		}
		return failed
	}

	var err error
	if len(data) > 0 {
		// Integrity rides the batch it covers: hash every record frame into
		// the segment's Merkle tree (the ONLY hashing in the whole write
		// path — Append stays a memcpy), then append one signed commit frame
		// so the root and chain position land in the same write and the same
		// fsync as the records. No extra I/O, one hash pass per group commit.
		commitSeq := firstSeq - 1
		l.lastRec, err = walkFrames(data, &l.cs, l.lastRec)
		if err == nil {
			root := l.cs.acc.root()
			chain := chainNext(l.cs.prevChain, root)
			data = appendCommitFrame(data, l.opts.Key, l.identity, l.segStart, commitSeq, root, chain)
		}
		if err == nil && l.opts.failWrite != nil {
			err = l.opts.failWrite()
		}
		if err == nil {
			_, err = l.f.Write(data)
		}
		if err == nil {
			l.segSize += int64(len(data))
			if l.opts.failSync != nil {
				err = l.opts.failSync()
			}
			if err == nil {
				err = l.f.Sync()
			}
		}
		if err == nil {
			// The on-disk segment now ends at the commit frame just written.
			l.cs.lastCommitSeq = commitSeq
			l.cs.lastCommitOff = l.segSize
			l.cs.sawCommit = true
			l.cs.commits++
		}
	}
	l.spare = data[:0] // recycle: the other buffer is in use by appenders
	if err != nil {
		err = fmt.Errorf("wal: sync: %w", err)
		l.ctr.syncErrs(1)
		// The failed batch's records are lost but nextSeq already moved past
		// them: latch the error so no later append can be acked over the gap.
		l.mu.Lock()
		if l.failed == nil {
			l.failed = err
		}
		l.mu.Unlock()
	} else {
		l.ctr.syncs(1)
		// Every record below the swapped-out nextSeq is now on disk.
		raiseMax(&l.durable, firstSeq-1)
	}
	if b != nil {
		b.err = err
		close(b.done)
	}
	if err == nil && l.segSize >= l.opts.segmentBytes() {
		// Rotation needs no extra fsync: everything in the old segment was
		// just made durable, and records appended since firstSeq are still
		// in memory, destined for the new segment.
		if rerr := l.rotate(firstSeq); rerr != nil {
			// The batch just acked is durable, but the log has no usable
			// active segment: latch so subsequent appends fail fast with the
			// root cause instead of erroring later against a stale file.
			l.mu.Lock()
			if l.failed == nil {
				l.failed = rerr
			}
			l.mu.Unlock()
			return rerr
		}
	}
	return err
}

// rotate seals the active segment and opens a fresh one whose name encodes
// firstSeq. Write ordering: the head — now carrying the sealed segment's
// Merkle root and the new active name — is anchored BEFORE the new segment
// exists, so a crash between the two leaves the provably-empty state
// adoptExisting recreates, never an unanchored segment. Caller holds syncMu;
// on failure the caller must latch l.failed (under its own mu discipline) so
// appends fail fast.
func (l *Log) rotate(firstSeq uint64) error {
	root := l.cs.acc.root()
	h := l.head.clone()
	h.sealed = append(h.sealed, sealedSegment{firstSeq: l.segStart, lastSeq: l.lastRec, root: root})
	h.activeFirstSeq = firstSeq
	h.durableSeq = l.durable.Load()
	var err error
	if l.opts.failHead != nil {
		err = l.opts.failHead()
	}
	if err == nil {
		err = saveHead(l.dir, h, l.opts.Key)
	}
	if err == nil {
		l.head = h
		if cerr := l.f.Close(); cerr != nil {
			err = fmt.Errorf("wal: rotate: %w", cerr)
		}
	}
	if err == nil {
		l.cs.prevChain = chainNext(l.cs.prevChain, root)
		l.cs.acc.reset()
		l.cs.segFirstSeq = firstSeq
		l.cs.lastCommitSeq, l.cs.lastCommitOff, l.cs.commits, l.cs.sawCommit = 0, 0, 0, false
		l.lastRec = 0
		err = l.createSegment(firstSeq)
	}
	if err != nil {
		l.ctr.syncErrs(1)
	}
	return err
}

// flusher is the group-commit loop: armed by the first append of a batch, it
// sleeps the sync interval (letting the batch accumulate), then fsyncs.
func (l *Log) flusher() {
	defer close(l.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-l.quit:
			return
		case <-l.wake:
		}
		timer.Reset(l.opts.SyncInterval)
		select {
		case <-l.quit:
			if !timer.Stop() {
				<-timer.C
			}
			// Close syncs the final batch itself; nothing to do here.
			return
		case <-timer.C:
		}
		l.syncNow()
	}
}

// createSegment opens a fresh segment whose name encodes firstSeq and
// writes the magic. Called under syncMu (or from Open, before the flusher
// starts).
func (l *Log) createSegment(firstSeq uint64) error {
	name := filepath.Join(l.dir, segmentName(firstSeq))
	if l.opts.failCreate != nil {
		if err := l.opts.failCreate(name); err != nil {
			return fmt.Errorf("wal: creating segment: %w", err)
		}
	}
	f, err := os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	l.f = f
	l.segStart = firstSeq
	l.segSize = int64(len(segMagic))
	return nil
}

// Truncate removes whole sealed segments whose every record has sequence
// number ≤ uptoSeq — call it after a checkpoint covering uptoSeq is durable.
// The active segment is never removed; space before the checkpoint inside it
// is reclaimed at the next rotation. Write ordering: the head — its chain
// base raised over the removed segments' roots — is anchored BEFORE any
// unlink, so a crash between the two leaves only ignorable below-base
// leftovers, never a chain the head can no longer explain.
func (l *Log) Truncate(uptoSeq uint64) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	failed := l.failed
	l.mu.Unlock()
	if failed != nil {
		// A failed log's in-memory head may be ahead of the disk (a rotation
		// that latched after mutating it); refusing keeps the anchored state
		// self-consistent for the post-mortem audit.
		return fmt.Errorf("wal: log failed, refusing truncate: %w", failed)
	}
	// syncMu stabilizes the active segment (no rotation mid-truncate).
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	n := 0
	for _, s := range l.head.sealed {
		if s.lastSeq > uptoSeq {
			break
		}
		n++
	}
	if n == 0 {
		return nil
	}
	h := l.head.clone()
	removed := h.sealed[:n]
	h.baseSeq = removed[n-1].lastSeq
	for _, s := range removed {
		h.baseChain = chainNext(h.baseChain, s.root)
	}
	h.sealed = append([]sealedSegment(nil), h.sealed[n:]...)
	h.durableSeq = l.durable.Load()
	if l.opts.failHead != nil {
		if err := l.opts.failHead(); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	if err := saveHead(l.dir, h, l.opts.Key); err != nil {
		return err
	}
	l.head = h
	for _, s := range removed {
		if err := os.Remove(filepath.Join(l.dir, segmentName(s.firstSeq))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("wal: truncate: %w", err)
		}
		l.ctr.truncates(1)
	}
	return nil
}

// Segments reports how many segment files the log currently holds.
func (l *Log) Segments() int {
	segs, err := listSegments(l.dir)
	if err != nil {
		return 0
	}
	return len(segs)
}

// Failed reports the log's latched fail-stop error (nil while healthy).
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// SegmentInfo describes one on-disk segment for replication and auditing.
type SegmentInfo struct {
	Name     string
	FirstSeq uint64
	// LastSeq is the last commit-covered record seq (0 for an empty segment).
	LastSeq uint64
	// Size is the committed byte length: for the active segment, everything
	// up to and including its last commit frame — stable bytes a replica may
	// fetch; un-fsynced appends past it are invisible here.
	Size   int64
	Sealed bool
	// Root is the segment's Merkle root (sealed segments only; the active
	// segment's root is still moving).
	Root []byte
}

// ReplState is a point-in-time replication snapshot of one log: a signed
// head image carrying the current durable watermark plus the committed
// extent of every segment. Taken under the sync lock, so the sizes are
// mutually consistent and every byte inside them is fsynced.
type ReplState struct {
	Head       []byte
	DurableSeq uint64
	Segments   []SegmentInfo
}

// ReplState snapshots the log for a replication manifest.
func (l *Log) ReplState() (ReplState, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ReplState{}, ErrClosed
	}
	failed := l.failed
	l.mu.Unlock()
	if failed != nil {
		return ReplState{}, fmt.Errorf("wal: log failed, refusing replication snapshot: %w", failed)
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	h := l.head.clone()
	h.durableSeq = l.durable.Load()
	st := ReplState{Head: encodeHead(h, l.opts.Key), DurableSeq: h.durableSeq}
	for _, s := range l.head.sealed {
		fi, err := os.Stat(filepath.Join(l.dir, segmentName(s.firstSeq)))
		if err != nil {
			return ReplState{}, fmt.Errorf("wal: replication snapshot: %w", err)
		}
		st.Segments = append(st.Segments, SegmentInfo{
			Name:     segmentName(s.firstSeq),
			FirstSeq: s.firstSeq,
			LastSeq:  s.lastSeq,
			Size:     fi.Size(),
			Sealed:   true,
			Root:     append([]byte(nil), s.root[:]...),
		})
	}
	st.Segments = append(st.Segments, SegmentInfo{
		Name:     segmentName(l.segStart),
		FirstSeq: l.segStart,
		LastSeq:  l.cs.lastCommitSeq,
		Size:     l.committedSizeLocked(),
	})
	return st, nil
}

// committedSizeLocked is the active segment's commit-covered byte length.
// Caller holds syncMu; with no sync in flight the file ends at its last
// commit frame, so this equals the file size — but it is derived from the
// scan state, never the file, so a concurrent crash cannot inflate it.
func (l *Log) committedSizeLocked() int64 {
	if l.cs.sawCommit {
		return l.cs.lastCommitOff
	}
	return int64(len(segMagic))
}

// Close syncs the pending batch and releases the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.done // flusher exited; syncNow below is the final syncer
	err := l.syncNow()
	l.syncMu.Lock()
	l.mu.Lock()
	failed := l.failed
	l.mu.Unlock()
	if failed == nil {
		// Anchor the final durable watermark: with it, deleting or rolling
		// back the active segment of a cleanly-closed log — damage a crash
		// cannot cause — is detectable on the next Open, not just a flipped
		// byte inside it.
		h := l.head.clone()
		h.durableSeq = l.durable.Load()
		if herr := saveHead(l.dir, h, l.opts.Key); herr != nil {
			if err == nil {
				err = herr
			}
		} else {
			l.head = h
		}
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	l.syncMu.Unlock()
	return err
}

// errStopScan aborts a segment scan early from inside its fn callback;
// Replay uses it to stop delivering at the final segment's commit boundary.
var errStopScan = errors.New("wal: stop scan")

// Replay streams every commit-covered record with sequence number ≥ fromSeq,
// in order, to fn, and returns the last sequence number delivered (0 if
// none). The head's segment inventory is verified structurally — every
// sealed segment must be present, commit-terminated, and match its pinned
// Merkle root and sequence range — so a deleted, truncated, or substituted
// segment surfaces as ErrCorrupt, never as a silent hole. Records past the
// final segment's last commit frame are NOT delivered: their covering fsync
// never completed, so they were never acknowledged (the client re-sends
// them), and delivering them would let an attacker forge appends by writing
// record frames without the key. fn's error aborts the replay. The head MAC
// is not checked here (the restore path does not hold the key); Open and
// VerifyTenant do.
func Replay(dir string, fromSeq uint64, fn func(seq uint64, values []float64) error) (uint64, error) {
	identity := filepath.Base(filepath.Clean(dir))
	head, _, err := loadHead(dir)
	if err != nil {
		return 0, err
	}
	segs, err := listSegments(dir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if head == nil {
		if len(segs) > 0 {
			return 0, fmt.Errorf("%w: %s: segments exist but %s is missing (deleted, or a pre-integrity log — see docs/OPERATIONS.md)",
				ErrCorrupt, identity, HeadFileName)
		}
		return 0, nil
	}
	if head.identity != identity {
		return 0, fmt.Errorf("%w: head identity %q does not match directory %q (log directory copied or renamed?)",
			ErrCorrupt, head.identity, identity)
	}
	sealedAt := make(map[uint64]*sealedSegment, len(head.sealed))
	for i := range head.sealed {
		sealedAt[head.sealed[i].firstSeq] = &head.sealed[i]
	}
	present := make(map[uint64]bool, len(segs))
	var kept []segment
	activeFound := false
	for _, seg := range segs {
		switch {
		case seg.firstSeq == head.activeFirstSeq:
			activeFound = true
			kept = append(kept, seg)
		case seg.firstSeq > head.activeFirstSeq:
			// Replicated successor a follower fetched before its head update.
			kept = append(kept, seg)
		default:
			if _, ok := sealedAt[seg.firstSeq]; ok {
				present[seg.firstSeq] = true
				kept = append(kept, seg)
				break
			}
			if seg.firstSeq <= head.baseSeq {
				continue // truncation leftover below the chain base — ignorable
			}
			return 0, fmt.Errorf("%w: %s: segment %s is not in the signed head inventory", ErrCorrupt, identity, seg.name)
		}
	}
	for _, s := range head.sealed {
		if !present[s.firstSeq] {
			return 0, fmt.Errorf("%w: %s: sealed segment %s (seqs %d..%d) is missing",
				ErrCorrupt, identity, segmentName(s.firstSeq), s.firstSeq, s.lastSeq)
		}
	}
	if !activeFound {
		if len(kept) > 0 && kept[len(kept)-1].firstSeq > head.activeFirstSeq {
			return 0, fmt.Errorf("%w: %s: active segment %s is missing but later segments exist",
				ErrCorrupt, identity, segmentName(head.activeFirstSeq))
		}
		if head.durableSeq > head.activeFirstSeq-1 {
			return 0, fmt.Errorf("%w: %s: active segment %s is missing and the head proves records durable through seq %d",
				ErrCorrupt, identity, segmentName(head.activeFirstSeq), head.durableSeq)
		}
	}
	var last uint64
	// next tracks contiguity ACROSS segments (scanSegment enforces it
	// within one). 0 = no record seen yet; the chain restarts after a skip
	// (the skipped range is covered by the checkpoint replay starts from).
	var next uint64
	// proven is the highest seq the on-disk segments demonstrably made
	// durable; a head claiming more has lost data (rolled-back or truncated
	// active segment). Sealed ranges and SetNextSeq gaps sit below the
	// active segment's base, and every segment beyond the active one proves
	// its predecessors were committed in full.
	proven := head.activeFirstSeq - 1
	for i, seg := range kept {
		seg := seg
		if p := seg.firstSeq - 1; seg.firstSeq > head.activeFirstSeq && p > proven {
			proven = p
		}
		// Skip segments wholly below fromSeq: the next segment's first seq
		// bounds this one's records.
		if i+1 < len(kept) && kept[i+1].firstSeq <= fromSeq {
			next = 0
			continue
		}
		path := filepath.Join(dir, seg.name)
		entry := sealedAt[seg.firstSeq]
		final := i == len(kept)-1
		cs := &chainScan{identity: identity, segFirstSeq: seg.firstSeq}
		deliver := func(seq uint64, values []float64) error {
			if next != 0 && seq != next {
				return fmt.Errorf("%w: %s: records %d..%d missing (segment deleted, or range covered only by a checkpoint?)", ErrCorrupt, seg.name, next, seq-1)
			}
			next = seq + 1
			if seq < fromSeq {
				return nil
			}
			if err := fn(seq, values); err != nil {
				return err
			}
			last = seq
			return nil
		}
		if entry != nil || !final {
			// Frozen segment — sealed in the head, or followed by a later
			// segment: it must scan clean and end exactly at a commit frame.
			lastInSeg, end, serr := scanSegment(path, seg.firstSeq, deliver, cs)
			if serr != nil {
				var torn *tornError
				if errors.As(serr, &torn) {
					return last, fmt.Errorf("%w: %s: %v", ErrCorrupt, seg.name, torn.cause)
				}
				return last, serr
			}
			if !cs.sawCommit || cs.lastCommitOff != end {
				return last, fmt.Errorf("%w: %s: frozen segment is not commit-terminated", ErrCorrupt, seg.name)
			}
			if entry != nil && (lastInSeg != entry.lastSeq || cs.sealRoot() != entry.root) {
				return last, fmt.Errorf("%w: %s: content does not match its sealed head entry", ErrCorrupt, seg.name)
			}
			if cs.lastCommitSeq > proven {
				proven = cs.lastCommitSeq
			}
			continue
		}
		// Final, unsealed segment (the active one, or a successor a follower
		// adopted late). Pass 1 verifies structure and finds the last commit;
		// an unreadable tail is fine ONLY if nothing commit-covered follows it
		// (fsynced bytes don't tear — damage beyond a commit is tampering).
		_, end, serr := scanSegment(path, seg.firstSeq, nil, cs)
		if serr != nil {
			var torn *tornError
			if !errors.As(serr, &torn) {
				return last, serr
			}
			raw, rerr := os.ReadFile(path)
			if rerr != nil {
				return last, fmt.Errorf("wal: %w", rerr)
			}
			if int64(len(raw)) > end && hasCommitBeyond(raw[end:]) {
				return last, fmt.Errorf("%w: %s: unreadable frame at offset %d with committed records beyond it (segment tampered)",
					ErrCorrupt, seg.name, end)
			}
		}
		if !cs.sawCommit {
			continue
		}
		if cs.lastCommitSeq > proven {
			proven = cs.lastCommitSeq
		}
		stop := cs.lastCommitSeq
		_, _, serr = scanSegment(path, seg.firstSeq, func(seq uint64, values []float64) error {
			if seq > stop {
				return errStopScan
			}
			return deliver(seq, values)
		}, nil)
		if serr != nil && !errors.Is(serr, errStopScan) {
			var torn *tornError
			if !errors.As(serr, &torn) {
				return last, serr
			}
			// Pass 1 vetted everything up to the commit cut; damage past it
			// was already cleared as a healable crash tail.
		}
	}
	if head.durableSeq > proven {
		return last, fmt.Errorf("%w: %s: head proves records durable through seq %d but the segments only prove %d (active segment truncated or substituted)",
			ErrCorrupt, identity, head.durableSeq, proven)
	}
	return last, nil
}

// tornError marks a record that could not be decoded — a torn tail when it
// is the last thing in the last segment, corruption anywhere else.
type tornError struct {
	off   int64
	cause error
}

func (e *tornError) Error() string {
	return fmt.Sprintf("wal: unreadable record at offset %d: %v", e.off, e.cause)
}

// scanSegment reads one segment sequentially, calling fn (when non-nil) for
// every complete record and feeding cs (when non-nil) every record frame and
// commit frame — the integrity verification rides the same pass. It returns
// the last valid record seq (0 if none) and the file offset just past the
// last valid frame. Decode failures are returned as *tornError so callers
// can distinguish tail damage from mid-log corruption; fn and cs errors
// abort the scan verbatim.
func scanSegment(path string, firstSeq uint64, fn func(seq uint64, values []float64) error, cs *chainScan) (uint64, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)

	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, 0, &tornError{off: 0, cause: fmt.Errorf("short magic: %w", err)}
	}
	if string(magic) != segMagic {
		return 0, 0, fmt.Errorf("%w: %s: bad segment magic %q", ErrCorrupt, filepath.Base(path), magic)
	}

	// The segment name's firstSeq is a lower bound, not necessarily the first
	// record's seq: SetNextSeq may have raised the sequence inside an empty
	// segment. Contiguity is enforced from the first record actually read.
	var (
		lastSeq uint64
		off     = int64(len(segMagic))
		hdr     [recHeader]byte
		buf     []byte
		values  []float64
		wantSeq uint64
	)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return lastSeq, off, nil
			}
			return lastSeq, off, &tornError{off: off, cause: err}
		}
		payloadLen := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if payloadLen < 12 || payloadLen > 16+8*maxRecordValues {
			return lastSeq, off, &tornError{off: off, cause: fmt.Errorf("implausible payload length %d", payloadLen)}
		}
		if cap(buf) < int(payloadLen) {
			buf = make([]byte, payloadLen)
		}
		buf = buf[:payloadLen]
		if _, err := io.ReadFull(r, buf); err != nil {
			return lastSeq, off, &tornError{off: off, cause: err}
		}
		if got := crc32.ChecksumIEEE(buf); got != crc {
			return lastSeq, off, &tornError{off: off, cause: fmt.Errorf("checksum mismatch")}
		}
		seq := binary.LittleEndian.Uint64(buf[0:8])
		n := binary.LittleEndian.Uint32(buf[8:12])
		if n&batchCountFlag == 0 && n&commitFlag != 0 {
			// Commit frame: it validates the records before it and carries no
			// rows, so it is invisible to fn and to sequence contiguity.
			if n != commitFlag || payloadLen != commitPayloadLen || lastSeq == 0 || seq != lastSeq {
				return lastSeq, off, &tornError{off: off, cause: fmt.Errorf("malformed commit frame")}
			}
			if cs != nil {
				if err := cs.onCommit(buf, seq, off+int64(recHeader)+int64(payloadLen)); err != nil {
					return lastSeq, off, err
				}
			}
			off += int64(recHeader) + int64(payloadLen)
			continue
		}
		// Batch records (bit 31 of the count field) carry rows × width values
		// for seqs seq..seq+rows-1; plain records are a 1-row batch of width n.
		width, nrows, base := int(n), 1, 12
		if n&batchCountFlag != 0 {
			if len(buf) < 16 {
				return lastSeq, off, &tornError{off: off, cause: fmt.Errorf("batch record shorter than its header")}
			}
			width = int(n &^ batchCountFlag)
			nrows = int(binary.LittleEndian.Uint32(buf[12:16]))
			base = 16
			if nrows == 0 {
				return lastSeq, off, &tornError{off: off, cause: fmt.Errorf("batch record with zero rows")}
			}
		}
		if uint64(len(buf)) != uint64(base)+8*uint64(width)*uint64(nrows) {
			return lastSeq, off, &tornError{off: off, cause: fmt.Errorf("value count %d×%d disagrees with payload length %d", nrows, width, payloadLen)}
		}
		if wantSeq == 0 {
			if seq < firstSeq {
				return lastSeq, off, &tornError{off: off, cause: fmt.Errorf("first record seq %d below segment base %d", seq, firstSeq)}
			}
		} else if seq != wantSeq {
			return lastSeq, off, &tornError{off: off, cause: fmt.Errorf("sequence jump: got %d, want %d", seq, wantSeq)}
		}
		if cs != nil {
			cs.onRecord(hdr[:], buf)
		}
		if fn != nil {
			if cap(values) < width {
				values = make([]float64, width)
			}
			values = values[:width]
			for r := 0; r < nrows; r++ {
				at := base + 8*width*r
				for i := range values {
					values[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[at+8*i:]))
				}
				if err := fn(seq+uint64(r), values); err != nil {
					return lastSeq, off, err
				}
			}
		}
		lastSeq = seq + uint64(nrows) - 1
		wantSeq = lastSeq + 1
		off += int64(recHeader) + int64(payloadLen)
	}
}

// segment is one on-disk segment file, identified by its first seq.
type segment struct {
	name     string
	firstSeq uint64
}

// listSegments returns the directory's segments sorted by first seq.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		seq, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segment{name: name, firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix)
}
