package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Manager hosts one Log per tenant under a common root directory
// (<root>/<tenant>/seg-*.wal) and aggregates their activity counters for
// the service's /metrics endpoint. All methods are safe for concurrent use.
type Manager struct {
	root string
	opts Options

	mu   sync.Mutex
	logs map[string]*Log

	appends   atomic.Uint64
	syncs     atomic.Uint64
	syncErrs  atomic.Uint64
	bytes     atomic.Uint64
	truncates atomic.Uint64
}

// NewManager creates a manager rooted at dir. Logs are opened lazily by
// Open; nothing touches the filesystem until then.
func NewManager(dir string, opts Options) *Manager {
	return &Manager{root: dir, opts: opts, logs: make(map[string]*Log)}
}

// Root returns the manager's root directory.
func (m *Manager) Root() string { return m.root }

// dir returns tenant's log directory. Tenant ids are validated upstream
// (server.tenantIDPattern) to be safe path segments.
func (m *Manager) dir(tenant string) string {
	return filepath.Join(m.root, tenant)
}

// Open opens (or returns the already-open) log of tenant, healing any torn
// tail left by a crash.
func (m *Manager) Open(tenant string) (*Log, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if l, ok := m.logs[tenant]; ok {
		return l, nil
	}
	ctr := &counters{
		appends:   func(n uint64) { m.appends.Add(n) },
		syncs:     func(n uint64) { m.syncs.Add(n) },
		syncErrs:  func(n uint64) { m.syncErrs.Add(n) },
		bytes:     func(n uint64) { m.bytes.Add(n) },
		truncates: func(n uint64) { m.truncates.Add(n) },
	}
	l, err := open(m.dir(tenant), m.opts, ctr)
	if err != nil {
		return nil, fmt.Errorf("wal: tenant %q: %w", tenant, err)
	}
	m.logs[tenant] = l
	return l, nil
}

// Get returns tenant's open log, or nil if Open was never called for it.
func (m *Manager) Get(tenant string) *Log {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.logs[tenant]
}

// Append appends one record to tenant's log (which must be open).
func (m *Manager) Append(tenant string, seq uint64, values []float64) (Commit, error) {
	l := m.Get(tenant)
	if l == nil {
		return Commit{}, fmt.Errorf("wal: tenant %q has no open log", tenant)
	}
	return l.Append(seq, values)
}

// AppendBatch appends rows as one batch record to tenant's log (which must
// be open); the returned Commit covers every row. See Log.AppendBatch.
func (m *Manager) AppendBatch(tenant string, seq uint64, rows [][]float64) (Commit, error) {
	l := m.Get(tenant)
	if l == nil {
		return Commit{}, fmt.Errorf("wal: tenant %q has no open log", tenant)
	}
	return l.AppendBatch(seq, rows)
}

// Truncate drops tenant's segments wholly covered by a checkpoint at
// uptoSeq. A tenant without an open log is a no-op.
func (m *Manager) Truncate(tenant string, uptoSeq uint64) error {
	l := m.Get(tenant)
	if l == nil {
		return nil
	}
	return l.Truncate(uptoSeq)
}

// Remove closes tenant's log and deletes its directory — the durable
// counterpart of a tenant delete. Removing a tenant that has no log (or no
// directory) is not an error.
func (m *Manager) Remove(tenant string) error {
	m.mu.Lock()
	l := m.logs[tenant]
	delete(m.logs, tenant)
	m.mu.Unlock()
	if l != nil {
		l.Close()
	}
	if err := os.RemoveAll(m.dir(tenant)); err != nil {
		return fmt.Errorf("wal: removing tenant %q: %w", tenant, err)
	}
	return nil
}

// ReplayTenant replays tenant's log from fromSeq (see Replay). A tenant
// without a log directory replays nothing.
func (m *Manager) ReplayTenant(tenant string, fromSeq uint64, fn func(seq uint64, values []float64) error) (uint64, error) {
	return Replay(m.dir(tenant), fromSeq, fn)
}

// Tenants lists the tenant ids that have a log directory on disk (open or
// not) — the restore path walks this to find WALs to replay.
func (m *Manager) Tenants() ([]string, error) {
	entries, err := os.ReadDir(m.root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var ids []string
	for _, ent := range entries {
		if ent.IsDir() {
			ids = append(ids, ent.Name())
		}
	}
	return ids, nil
}

// Key returns the integrity key the manager opens logs with.
func (m *Manager) Key() []byte { return m.opts.Key }

// FailedTenants lists tenants whose open log has latched its fail-stop
// error, sorted — the health endpoint's degraded report.
func (m *Manager) FailedTenants() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ids []string
	for id, l := range m.logs {
		if l.Failed() != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// OpenTenants lists tenants with an open log, sorted — the replication
// manifest walks this (a tenant without an open log has taken no writes).
func (m *Manager) OpenTenants() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.logs))
	for id := range m.logs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ReplState snapshots tenant's log for a replication manifest (the log must
// be open).
func (m *Manager) ReplState(tenant string) (ReplState, error) {
	l := m.Get(tenant)
	if l == nil {
		return ReplState{}, fmt.Errorf("wal: tenant %q has no open log", tenant)
	}
	return l.ReplState()
}

// Close closes every open log. The manager must not be used afterwards.
func (m *Manager) Close() error {
	m.mu.Lock()
	logs := m.logs
	m.logs = make(map[string]*Log)
	m.mu.Unlock()
	var firstErr error
	for _, l := range logs {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats is a point-in-time aggregate of WAL activity across all tenants.
type Stats struct {
	// Appends counts records appended.
	Appends uint64
	// Syncs counts group commits (fsync batches) completed.
	Syncs uint64
	// SyncErrors counts fsyncs that failed — every record in such a batch
	// reported the error to its producer instead of acking.
	SyncErrors uint64
	// Bytes counts record bytes written (framing included).
	Bytes uint64
	// Truncations counts segment files reclaimed after checkpoints.
	Truncations uint64
	// OpenLogs is the number of tenants with an open log.
	OpenLogs int
}

// Stats samples the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	open := len(m.logs)
	m.mu.Unlock()
	return Stats{
		Appends:     m.appends.Load(),
		Syncs:       m.syncs.Load(),
		SyncErrors:  m.syncErrs.Load(),
		Bytes:       m.bytes.Load(),
		Truncations: m.truncates.Load(),
		OpenLogs:    open,
	}
}
