// Package wal implements the per-tenant write-ahead log that makes
// tkcm-serve's tick acknowledgements durable: every acked row survives a
// hard crash (kill -9, power loss) and is replayed on the next start on top
// of the newest checkpoint.
//
// # Design
//
// Each tenant owns an append-only log of its raw input rows (NaN marks a
// missing value, exactly as ingested). Because the engine's imputation is
// deterministic, replaying the raw rows through a restored engine
// reconstructs byte-for-byte the state an uninterrupted engine would hold —
// the log never needs to record imputed values or profiler internals.
//
// Records are CRC-framed (length + IEEE CRC-32 + payload) and carry the
// engine's sequence number, so replay can start exactly where a checkpoint
// ends and any corruption is detected rather than consumed. Logs are split
// into size-rotated segments named seg-<firstSeq>.wal; after a checkpoint
// covering sequence S is durable, Truncate reclaims every segment whose
// records are all ≤ S.
//
// # Durability and group commit
//
// Append buffers the record and returns a Commit handle; a per-log flusher
// fsyncs the accumulated batch every Options.SyncInterval, amortizing the
// fsync over every record in the window while bounding ack latency by the
// interval. Commit.Wait returns once the covering fsync completed — the
// serving layer acknowledges a tick only after that, which is the entire
// "acked ⇒ durable" contract.
//
// # Crash anatomy
//
// A crash can tear at most the tail of the final segment — records that
// were appended but whose group commit never completed, hence were never
// acknowledged. Open detects the torn tail via the CRC framing, truncates
// it, and continues appending after the last complete record. Damage
// anywhere else (a CRC mismatch in a non-final segment) means acknowledged
// data is unreadable; Replay surfaces that as ErrCorrupt instead of
// silently dropping rows.
package wal
