package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fetchFromDir serves segment bytes the way the primary's replication
// endpoint does: the file's contents from an absolute offset.
func fetchFromDir(dir string) func(name string, from int64) ([]byte, error) {
	return func(name string, from int64) ([]byte, error) {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if from > int64(len(data)) {
			return nil, fmt.Errorf("offset %d past end %d", from, len(data))
		}
		return data[from:], nil
	}
}

func primaryAppend(t *testing.T, l *Log, from uint64, n int) uint64 {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append(from, []float64{float64(from), float64(from) * 0.5}); err != nil {
			t.Fatalf("append %d: %v", from, err)
		}
		from++
	}
	return from
}

func TestReplicaMirrorsPrimaryIncrementally(t *testing.T) {
	key := []byte("repl-key")
	pdir := filepath.Join(t.TempDir(), "t1")
	rdir := filepath.Join(t.TempDir(), "t1")
	l, err := Open(pdir, Options{SegmentBytes: 200, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	seq := primaryAppend(t, l, 1, 8)

	rep := NewReplica(rdir, key)
	st1, err := syncFrom(l, rep, pdir)
	if err != nil {
		t.Fatalf("first sync: %v", err)
	}
	if st1.SegmentsFetched == 0 || st1.BytesFetched == 0 {
		t.Fatalf("first sync fetched nothing: %+v", st1)
	}
	if st1.DurableSeq != seq-1 {
		t.Fatalf("DurableSeq = %d, want %d", st1.DurableSeq, seq-1)
	}
	assertMirror(t, rdir, key, seq-1)

	// Steady state: nothing new on the primary → nothing fetched.
	st2, err := syncFrom(l, rep, pdir)
	if err != nil {
		t.Fatalf("idle sync: %v", err)
	}
	if st2.BytesFetched != 0 {
		t.Fatalf("idle sync fetched %d bytes, want 0", st2.BytesFetched)
	}

	// Incremental: new appends cost only the delta, not a refetch.
	seq = primaryAppend(t, l, seq, 5)
	st3, err := syncFrom(l, rep, pdir)
	if err != nil {
		t.Fatalf("incremental sync: %v", err)
	}
	if st3.BytesFetched == 0 || st3.BytesFetched >= st1.BytesFetched {
		t.Fatalf("incremental sync fetched %d bytes, want a delta smaller than the initial %d", st3.BytesFetched, st1.BytesFetched)
	}
	assertMirror(t, rdir, key, seq-1)

	// Truncation propagates: the primary retires sealed segments, the next
	// round's head raises the base and the replica prunes the same files.
	if err := l.Truncate(6); err != nil {
		t.Fatal(err)
	}
	if _, err := syncFrom(l, rep, pdir); err != nil {
		t.Fatalf("sync after truncate: %v", err)
	}
	psegs, _ := listSegments(pdir)
	rsegs, _ := listSegments(rdir)
	if len(rsegs) != len(psegs) {
		t.Fatalf("replica holds %d segments after truncation, primary %d", len(rsegs), len(psegs))
	}
	rep2, err := VerifyTenant(rdir, key)
	if err != nil {
		t.Fatalf("verify after truncation: %v", err)
	}
	if rep2.Retired == 0 {
		t.Fatal("replica head did not pick up the raised chain base")
	}
}

// syncFrom snapshots the primary and runs one replica round against it.
func syncFrom(l *Log, rep *Replica, pdir string) (SyncStats, error) {
	st, err := l.ReplState()
	if err != nil {
		return SyncStats{}, err
	}
	return rep.Sync(st.Head, st.Segments, fetchFromDir(pdir))
}

// assertMirror audits the replica directory and replays it fully.
func assertMirror(t *testing.T, rdir string, key []byte, wantThrough uint64) {
	t.Helper()
	rep, err := VerifyTenant(rdir, key)
	if err != nil {
		t.Fatalf("verify replica: %v", err)
	}
	if rep.DurableThrough != wantThrough {
		t.Fatalf("replica DurableThrough = %d, want %d", rep.DurableThrough, wantThrough)
	}
	var seqs []uint64
	if _, err := Replay(rdir, 1, func(seq uint64, values []float64) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatalf("replay replica: %v", err)
	}
	if len(seqs) == 0 || seqs[len(seqs)-1] != wantThrough {
		t.Fatalf("replica replays through %v, want %d", seqs, wantThrough)
	}
}

func TestReplicaRejectsTamperedFetch(t *testing.T) {
	key := []byte("repl-key")
	pdir := filepath.Join(t.TempDir(), "t1")
	rdir := filepath.Join(t.TempDir(), "t1")
	l, err := Open(pdir, Options{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	primaryAppend(t, l, 1, 4)
	st, err := l.ReplState()
	if err != nil {
		t.Fatal(err)
	}

	rep := NewReplica(rdir, key)
	honest := fetchFromDir(pdir)
	for _, flipAt := range []int{len(segMagic) + 2, 40} {
		tampered := func(name string, from int64) ([]byte, error) {
			data, err := honest(name, from)
			if err != nil {
				return nil, err
			}
			if int(from)+len(data) > flipAt && flipAt >= int(from) {
				data[flipAt-int(from)] ^= 0x01
			}
			return data, nil
		}
		if _, err := rep.Sync(st.Head, st.Segments, tampered); err == nil {
			t.Fatalf("sync with byte %d flipped in transit succeeded", flipAt)
		}
		// Nothing unverified was persisted: the directory is still only the
		// (possibly empty) verified prefix.
		if segs, _ := listSegments(rdir); len(segs) != 0 {
			t.Fatalf("tampered round left %d segment files on disk", len(segs))
		}
	}
	// The same replica recovers with an honest transport.
	if _, err := rep.Sync(st.Head, st.Segments, honest); err != nil {
		t.Fatalf("honest sync after tampered rounds: %v", err)
	}
	assertMirror(t, rdir, key, 4)
}

func TestReplicaRejectsForgedHead(t *testing.T) {
	pdir := filepath.Join(t.TempDir(), "t1")
	rdir := filepath.Join(t.TempDir(), "t1")
	l, err := Open(pdir, Options{Key: []byte("the-real-key")})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	primaryAppend(t, l, 1, 2)
	st, err := l.ReplState()
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplica(rdir, []byte("a-different-key"))
	if _, err := rep.Sync(st.Head, st.Segments, fetchFromDir(pdir)); err == nil {
		t.Fatal("replica accepted a head signed under a different key")
	}
	// A manifest listing a segment the head does not explain is rejected too.
	rep2 := NewReplica(rdir, []byte("the-real-key"))
	extra := append(append([]SegmentInfo(nil), st.Segments...),
		SegmentInfo{Name: segmentName(900), FirstSeq: 900, Size: int64(len(segMagic))})
	if _, err := rep2.Sync(st.Head, extra, fetchFromDir(pdir)); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unsigned extra segment: err = %v, want ErrCorrupt", err)
	}
}

func TestReplicaRejectsStaleManifest(t *testing.T) {
	key := []byte("repl-key")
	pdir := filepath.Join(t.TempDir(), "t1")
	rdir := filepath.Join(t.TempDir(), "t1")
	l, err := Open(pdir, Options{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	primaryAppend(t, l, 1, 3)
	old, err := l.ReplState()
	if err != nil {
		t.Fatal(err)
	}
	oldFetch := make(map[string][]byte)
	for _, sg := range old.Segments {
		data, err := os.ReadFile(filepath.Join(pdir, sg.Name))
		if err != nil {
			t.Fatal(err)
		}
		oldFetch[sg.Name] = data
	}
	primaryAppend(t, l, 4, 3)

	rep := NewReplica(rdir, key)
	if _, err := syncFrom(l, rep, pdir); err != nil {
		t.Fatalf("sync to fresh state: %v", err)
	}
	// Replaying the older snapshot (e.g. a lagging proxy, or a primary rolled
	// back behind the replica) must be refused, not silently regress.
	_, err = rep.Sync(old.Head, old.Segments, func(name string, from int64) ([]byte, error) {
		return oldFetch[name][from:], nil
	})
	if err == nil || !strings.Contains(err.Error(), "regresses") {
		t.Fatalf("stale manifest: err = %v, want durable-seq regression refusal", err)
	}
	assertMirror(t, rdir, key, 6)
}

func TestReplicaRestartRescansAndHealsTornTail(t *testing.T) {
	key := []byte("repl-key")
	pdir := filepath.Join(t.TempDir(), "t1")
	rdir := filepath.Join(t.TempDir(), "t1")
	l, err := Open(pdir, Options{Key: key})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	seq := primaryAppend(t, l, 1, 5)
	if _, err := syncFrom(l, NewReplica(rdir, key), pdir); err != nil {
		t.Fatal(err)
	}

	// Crash-torn tail on the replica: garbage appended past the last commit
	// (a WriteAt that died before its fsync). A fresh Replica — cold cache,
	// as after a process restart — must heal it and converge.
	active := segmentName(1)
	f, err := os.OpenFile(filepath.Join(rdir, active), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	seq = primaryAppend(t, l, seq, 2)
	rep := NewReplica(rdir, key)
	if _, err := syncFrom(l, rep, pdir); err != nil {
		t.Fatalf("sync over torn tail: %v", err)
	}
	assertMirror(t, rdir, key, seq-1)
}
