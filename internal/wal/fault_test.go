package wal

import (
	"errors"
	"strings"
	"testing"
)

// The fault-injection seam (Options.failWrite / failSync / failCreate /
// failHead) exercises the fail-stop latch on every I/O edge the sync path
// has: once any write, fsync, rotation or head save fails, the log must
// refuse further appends, truncations and sequence changes — and what is
// already on disk must still audit clean.

func TestFailSyncLatchesLog(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected fsync failure")
	arm := false
	l, err := Open(dir, Options{failSync: func() error {
		if arm {
			return boom
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []float64{1}); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	arm = true
	if _, err := l.Append(2, []float64{2}); !errors.Is(err, boom) {
		t.Fatalf("append during injected fsync failure: err = %v, want %v", err, boom)
	}
	if l.Failed() == nil {
		t.Fatal("log did not latch after failed sync")
	}
	if _, err := l.Append(3, []float64{3}); err == nil || !strings.Contains(err.Error(), "log failed") {
		t.Fatalf("append after latch: err = %v, want fail-fast", err)
	}
	if err := l.Truncate(1); err == nil || !strings.Contains(err.Error(), "refusing truncate") {
		t.Fatalf("truncate after latch: err = %v, want refusal", err)
	}
	if err := l.SetNextSeq(100); err == nil || !strings.Contains(err.Error(), "refusing seq change") {
		t.Fatalf("SetNextSeq after latch: err = %v, want refusal", err)
	}
	if _, err := l.ReplState(); err == nil {
		t.Fatal("ReplState after latch: want refusal (a failed log must not feed replication)")
	}
	// The durable prefix written before the fault still audits clean.
	rep, err := VerifyTenant(dir, nil)
	if err != nil {
		t.Fatalf("verify after latch: %v", err)
	}
	if rep.DurableThrough < 1 {
		t.Fatalf("DurableThrough = %d, want >= 1", rep.DurableThrough)
	}
}

func TestFailWriteLosesOnlyUnackedBatch(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected write failure")
	arm := false
	l, err := Open(dir, Options{failWrite: func() error {
		if arm {
			return boom
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(uint64(i), []float64{float64(i)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	arm = true
	if _, err := l.Append(4, []float64{4}); !errors.Is(err, boom) {
		t.Fatalf("append during injected write failure: err = %v, want %v", err, boom)
	}
	if got := l.DurableThrough(); got != 3 {
		t.Fatalf("DurableThrough after failed write = %d, want 3", got)
	}
	// Nothing of the failed batch reached the file: the audit proves exactly
	// the acked prefix.
	rep, err := VerifyTenant(dir, nil)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rep.DurableThrough != 3 {
		t.Fatalf("audited DurableThrough = %d, want 3", rep.DurableThrough)
	}
}

func TestFailedRotationRecoversOnReopen(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected segment-create failure")
	arm := false
	l, err := Open(dir, Options{SegmentBytes: 64, failCreate: func(string) error {
		if arm {
			return boom
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	arm = true
	// One record overflows the 64-byte threshold: the sync succeeds (the
	// record is acked and durable) but the rotation's segment create fails
	// after the head — now naming the next segment — was anchored.
	_, err = l.Append(1, []float64{1, 2, 3})
	if !errors.Is(err, boom) {
		t.Fatalf("append triggering failed rotation: err = %v, want %v", err, boom)
	}
	if got := l.DurableThrough(); got != 1 {
		t.Fatalf("DurableThrough = %d, want 1 (the batch was synced before the rotation)", got)
	}
	if l.Failed() == nil {
		t.Fatal("log did not latch after failed rotation")
	}
	// Abandon without Close: this is exactly the rotation crash window the
	// head anchors. Reopen must recreate the missing active segment and
	// continue, losing nothing acked.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after failed rotation: %v", err)
	}
	if got := l2.NextSeq(); got != 2 {
		t.Fatalf("NextSeq after reopen = %d, want 2", got)
	}
	if _, err := l2.Append(2, []float64{4}); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, dir, 1)
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("replayed seqs %v, want [1 2]", seqs)
	}
	if _, err := VerifyTenant(dir, nil); err != nil {
		t.Fatalf("verify after recovery: %v", err)
	}
}

func TestFailedHeadSaveDuringTruncateIsRetryable(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected head-save failure")
	arm := false
	l, err := Open(dir, Options{SegmentBytes: 64, failHead: func() error {
		if arm {
			return boom
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if _, err := l.Append(uint64(i), []float64{float64(i), float64(i)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	before := l.Segments()
	if before < 2 {
		t.Fatalf("want at least 2 segments before truncate, have %d", before)
	}
	arm = true
	if err := l.Truncate(3); !errors.Is(err, boom) {
		t.Fatalf("truncate with injected head failure: err = %v, want %v", err, boom)
	}
	// The failure happened before anything was unlinked or latched: the log
	// keeps serving, and the same truncation succeeds once the fault clears.
	if l.Failed() != nil {
		t.Fatalf("truncate head failure latched the log: %v", l.Failed())
	}
	if got := l.Segments(); got != before {
		t.Fatalf("segments after failed truncate = %d, want %d (nothing unlinked)", got, before)
	}
	arm = false
	if err := l.Truncate(3); err != nil {
		t.Fatalf("retried truncate: %v", err)
	}
	if got := l.Segments(); got >= before {
		t.Fatalf("segments after retried truncate = %d, want < %d", got, before)
	}
	if _, err := l.Append(7, []float64{7, 7}); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyTenant(dir, nil); err != nil {
		t.Fatalf("verify: %v", err)
	}
}
