package wal

import (
	"errors"
	"testing"
	"time"
)

// collectTail replays the open log's tail from fromSeq into memory.
func collectTail(t *testing.T, l *Log, fromSeq uint64) (seqs []uint64, rows [][]float64) {
	t.Helper()
	last, err := l.ReplayTail(fromSeq, func(seq uint64, values []float64) error {
		seqs = append(seqs, seq)
		rows = append(rows, append([]float64(nil), values...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay tail: %v", err)
	}
	if len(seqs) > 0 && last != seqs[len(seqs)-1] {
		t.Fatalf("ReplayTail returned last=%d, delivered through %d", last, seqs[len(seqs)-1])
	}
	return seqs, rows
}

// TestReplayTailMatchesReplay: the open-log fast path must deliver exactly
// what the offline Replay delivers, across segment rotations and for every
// starting point — including from inside a sealed segment and past the end.
func TestReplayTailMatchesReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncInterval: time.Millisecond, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 60
	for i := 1; i <= n; i++ {
		c, err := l.Append(uint64(i), []float64{float64(i), float64(-i)})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := c.Wait(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if l.Segments() < 2 {
		t.Fatalf("want rotation, have %d segments", l.Segments())
	}
	for _, from := range []uint64{1, 2, n / 2, n, n + 1} {
		gotSeqs, gotRows := collectTail(t, l, from)
		wantSeqs, wantRows := collect(t, dir, from)
		if len(gotSeqs) != len(wantSeqs) {
			t.Fatalf("from %d: tail delivered %d rows, Replay %d", from, len(gotSeqs), len(wantSeqs))
		}
		for i := range wantSeqs {
			if gotSeqs[i] != wantSeqs[i] {
				t.Fatalf("from %d row %d: seq %d, want %d", from, i, gotSeqs[i], wantSeqs[i])
			}
			for j := range wantRows[i] {
				if gotRows[i][j] != wantRows[i][j] {
					t.Fatalf("from %d row %d value %d: %v, want %v", from, i, j, gotRows[i][j], wantRows[i][j])
				}
			}
		}
	}
}

// TestReplayTailForcesPendingBatch: records sitting in the group-commit
// buffer — appended, possibly acked, but not yet fsynced — must be made
// durable and delivered, not lost to the eviction/hydration race.
func TestReplayTailForcesPendingBatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncInterval: time.Hour}) // flusher will not fire
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, []float64{42}); err != nil {
		t.Fatal(err)
	}
	seqs, _ := collectTail(t, l, 1)
	if len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("tail delivered %v, want the buffered record", seqs)
	}
	if l.DurableThrough() != 1 {
		t.Fatalf("durable watermark %d after tail replay, want 1", l.DurableThrough())
	}
}

func TestReplayTailClosed(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.ReplayTail(1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("replay tail on closed log: %v, want ErrClosed", err)
	}
}

// TestManagerReplayTenantTail covers both manager arms: an open log takes
// the fast path, a never-opened tenant falls back to offline Replay.
func TestManagerReplayTenantTail(t *testing.T) {
	m := NewManager(t.TempDir(), Options{SyncInterval: time.Millisecond})
	defer m.Close()
	l, err := m.Open("alpha")
	if err != nil {
		t.Fatal(err)
	}
	c, err := l.Append(1, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	var got int
	if _, err := m.ReplayTenantTail("alpha", 1, func(uint64, []float64) error { got++; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("open-log tail replay delivered %d records, want 1", got)
	}
	if _, err := m.ReplayTenantTail("ghost", 1, func(uint64, []float64) error { return nil }); err != nil {
		t.Fatalf("fallback replay of absent tenant: %v", err)
	}
}
