package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Replica mirrors one tenant's log directory from a primary's replication
// snapshots (ReplState on the primary, transported however the caller
// likes). Its contract is verify-before-fsync: no fetched byte reaches the
// local disk until it has extended the segment's Merkle tree, proved every
// commit frame's root, chain position and HMAC, and — for a sealed segment —
// matched the root the signed head pins. A primary (or a middlebox) cannot
// make the replica persist anything the integrity key does not vouch for.
//
// Write ordering per round: segment bytes are fsynced first, the head image
// is installed atomically second, pruning runs last — so a crash at any
// instant leaves either the old state or segments AHEAD of the head, which
// Open's adoption path (and Replay) already tolerate. The replica never
// signs anything: it installs the primary's head image byte-for-byte, so it
// can run without the key (integrity only) and promotion needs no re-keying.
type Replica struct {
	dir      string
	key      []byte
	identity string
	// segs caches per-segment verification state so steady-state rounds cost
	// one fetch of the active segment's delta, not a rescan of the world.
	segs map[string]*replicaSeg
}

// replicaSeg is the cached verification state of one local segment file.
type replicaSeg struct {
	size     int64 // verified, fsynced byte length (commit-terminated)
	complete bool  // sealed and matched against its pinned head root
	root     [hashSize]byte
	// Live tree state while the segment is still growing (!complete):
	acc     merkleAcc // Merkle tree over every record so far
	lastRec uint64    // last verified record seq (0 = none)
}

// NewReplica prepares a replica of the tenant log in dir (the directory's
// base name is the log identity, as for Open). key verifies the primary's
// HMACs; nil still verifies roots, chains and CRCs.
func NewReplica(dir string, key []byte) *Replica {
	return &Replica{
		dir:      dir,
		key:      key,
		identity: filepath.Base(filepath.Clean(dir)),
		segs:     make(map[string]*replicaSeg),
	}
}

// SyncStats reports what one Sync round did.
type SyncStats struct {
	SegmentsFetched int
	BytesFetched    int64
	// DurableSeq is the manifest head's durable watermark — after a clean
	// Sync, the local directory restores through at least this seq.
	DurableSeq uint64
}

// Sync brings the local directory up to one replication snapshot: headRaw
// and segs are the primary's ReplState, fetch returns a segment's bytes
// from an absolute file offset (from=0 includes the magic). Partial
// progress is kept — a failed round resumes where the last verified commit
// frame left it. Any verification failure returns ErrCorrupt and persists
// nothing unverified.
func (r *Replica) Sync(headRaw []byte, segs []SegmentInfo, fetch func(name string, from int64) ([]byte, error)) (SyncStats, error) {
	var st SyncStats
	head, err := decodeHead(headRaw)
	if err != nil {
		return st, err
	}
	if err := verifyHeadMAC(headRaw, r.key); err != nil {
		return st, err
	}
	if head.identity != r.identity {
		return st, fmt.Errorf("%w: manifest head identity %q does not match replica directory %q",
			ErrCorrupt, head.identity, r.identity)
	}
	st.DurableSeq = head.durableSeq
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return st, fmt.Errorf("wal: replica: %w", err)
	}

	// The manifest's segment list must be exactly what the signed head can
	// explain: every sealed entry present with its pinned range and root,
	// plus the head's active segment — nothing else, nothing out of order.
	// The name check doubles as path hygiene (names reach filepath.Join).
	sealedAt := make(map[uint64]*sealedSegment, len(head.sealed))
	for i := range head.sealed {
		sealedAt[head.sealed[i].firstSeq] = &head.sealed[i]
	}
	want := make(map[string]bool, len(segs))
	prevChain := head.baseChain
	var prevFirst uint64
	for _, seg := range segs {
		if seg.Name != segmentName(seg.FirstSeq) {
			return st, fmt.Errorf("%w: manifest segment name %q does not encode first seq %d", ErrCorrupt, seg.Name, seg.FirstSeq)
		}
		if seg.FirstSeq <= prevFirst {
			return st, fmt.Errorf("%w: manifest segments out of order at %s", ErrCorrupt, seg.Name)
		}
		prevFirst = seg.FirstSeq
		want[seg.Name] = true
		entry := sealedAt[seg.FirstSeq]
		switch {
		case entry != nil:
			if !seg.Sealed || seg.LastSeq != entry.lastSeq || !bytes.Equal(seg.Root, entry.root[:]) {
				return st, fmt.Errorf("%w: manifest entry for %s disagrees with the signed head", ErrCorrupt, seg.Name)
			}
		case seg.FirstSeq == head.activeFirstSeq:
			if seg.Sealed {
				return st, fmt.Errorf("%w: manifest seals the head's active segment %s", ErrCorrupt, seg.Name)
			}
		default:
			return st, fmt.Errorf("%w: manifest segment %s is not in the signed head", ErrCorrupt, seg.Name)
		}
		if err := r.syncSegment(seg, entry, prevChain, fetch, &st); err != nil {
			return st, err
		}
		if entry != nil {
			prevChain = chainNext(prevChain, entry.root)
		}
	}
	for _, s := range head.sealed {
		if !want[segmentName(s.firstSeq)] {
			return st, fmt.Errorf("%w: manifest omits sealed segment %s", ErrCorrupt, segmentName(s.firstSeq))
		}
	}
	if !want[segmentName(head.activeFirstSeq)] {
		return st, fmt.Errorf("%w: manifest omits the active segment %s", ErrCorrupt, segmentName(head.activeFirstSeq))
	}

	// Every byte the head can claim is fsynced; anchor the head itself.
	headPath := filepath.Join(r.dir, HeadFileName)
	cur, err := os.ReadFile(headPath)
	switch {
	case err != nil && !errors.Is(err, os.ErrNotExist):
		return st, fmt.Errorf("wal: replica: %w", err)
	case err == nil && bytes.Equal(cur, headRaw):
		// Unchanged — skip the fsync; pruning already ran on the round that
		// installed this head.
		return st, nil
	case err == nil:
		if local, derr := decodeHead(cur); derr == nil && local.durableSeq > head.durableSeq {
			return st, fmt.Errorf("wal: replica: %s: manifest durable seq %d regresses the local head's %d (stale primary?)",
				r.identity, head.durableSeq, local.durableSeq)
		}
	}
	if err := installHeadImage(r.dir, headRaw); err != nil {
		return st, err
	}
	// Prune what the new head retired. Only below-base segments go: a local
	// segment above the base that the manifest no longer lists is divergence
	// the promotion-time audit must surface, not something to paper over.
	local, err := listSegments(r.dir)
	if err != nil {
		return st, fmt.Errorf("wal: replica: %w", err)
	}
	for _, ls := range local {
		if !want[ls.name] && ls.firstSeq <= head.baseSeq {
			os.Remove(filepath.Join(r.dir, ls.name))
			delete(r.segs, ls.name)
		}
	}
	return st, nil
}

// syncSegment brings one segment up to its manifest extent, verifying every
// fetched byte before it is written. prevChain is the chain value after the
// segment's sealed predecessors.
func (r *Replica) syncSegment(seg SegmentInfo, entry *sealedSegment, prevChain [hashSize]byte, fetch func(name string, from int64) ([]byte, error), st *SyncStats) error {
	path := filepath.Join(r.dir, seg.Name)
	state := r.segs[seg.Name]
	if state != nil {
		// The cache vouches for bytes on disk; if the file moved under us
		// (deleted, truncated, externally grown), rebuild from what's there.
		fi, err := os.Stat(path)
		if err != nil || fi.Size() != state.size {
			state = nil
			delete(r.segs, seg.Name)
		}
	}
	if state == nil {
		var err error
		if state, err = r.rescanLocal(path, seg.FirstSeq, prevChain); err != nil {
			return err
		}
		r.segs[seg.Name] = state
	}
	if state.complete {
		if entry != nil && state.root == entry.root {
			return nil
		}
		return fmt.Errorf("%w: %s: sealed segment diverges from the signed head", ErrCorrupt, r.identity+"/"+seg.Name)
	}
	if state.size > seg.Size {
		// The manifest lags bytes we already verified (snapshot raced an
		// earlier round); nothing to do until it catches up.
		return nil
	}
	if state.size < seg.Size {
		from := state.size
		data, err := fetch(seg.Name, from)
		if err != nil {
			return fmt.Errorf("wal: replica: fetching %s from offset %d: %w", seg.Name, from, err)
		}
		if int64(len(data)) < seg.Size-from {
			return fmt.Errorf("wal: replica: short fetch of %s: got %d bytes, want at least %d", seg.Name, len(data), seg.Size-from)
		}
		chunk := data
		if from == 0 {
			if len(chunk) < len(segMagic) || string(chunk[:len(segMagic)]) != segMagic {
				return fmt.Errorf("%w: %s: fetched segment has bad magic", ErrCorrupt, seg.Name)
			}
			chunk = chunk[len(segMagic):]
		}
		// Verify the delta in memory BEFORE any byte reaches disk: each
		// record extends the cached Merkle tree, each commit frame must prove
		// the extended root (and its HMAC), and the delta must end exactly at
		// a commit frame — the primary only serves commit-covered bytes.
		cs := &chainScan{identity: r.identity, key: r.key, checkMAC: true, segFirstSeq: seg.FirstSeq, prevChain: prevChain, acc: state.acc}
		lastRec, err := walkFrames(chunk, cs, state.lastRec)
		if err != nil {
			delete(r.segs, seg.Name) // cached tree state was consumed; rescan disk next round
			return fmt.Errorf("%s: %w", r.identity+"/"+seg.Name, err)
		}
		// An empty chunk is a freshly-rotated active segment (magic only) —
		// nothing to prove yet. Anything longer must end at a commit frame.
		if len(chunk) > 0 && (!cs.sawCommit || cs.lastCommitOff != int64(len(chunk))) {
			delete(r.segs, seg.Name)
			return fmt.Errorf("%w: %s: replication delta is not commit-terminated", ErrCorrupt, r.identity+"/"+seg.Name)
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("wal: replica: %w", err)
		}
		_, err = f.WriteAt(data, from)
		if err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			delete(r.segs, seg.Name)
			return fmt.Errorf("wal: replica: writing %s: %w", seg.Name, err)
		}
		state.size = from + int64(len(data))
		state.acc = cs.acc
		state.lastRec = lastRec
		st.SegmentsFetched++
		st.BytesFetched += int64(len(data))
	}
	if entry != nil {
		// The head seals this segment: the bytes we hold must be the exact
		// history it pinned, or someone swapped content of the right length.
		if state.lastRec != entry.lastSeq || state.acc.root() != entry.root {
			delete(r.segs, seg.Name)
			return fmt.Errorf("%w: %s: fetched segment does not match its sealed head entry", ErrCorrupt, r.identity+"/"+seg.Name)
		}
		state.complete = true
		state.root = entry.root
		state.acc = merkleAcc{}
	}
	return nil
}

// rescanLocal rebuilds verification state from a local segment file (first
// sight of it this process, or after the cache was invalidated). Anything
// past the last commit frame — our own crash-torn tail — is truncated away;
// a file with no commit at all, or one that fails verification, is removed
// whole and refetched from the primary, whose bytes are verified on the way
// back in. A missing file is simply an empty starting state.
func (r *Replica) rescanLocal(path string, firstSeq uint64, prevChain [hashSize]byte) (*replicaSeg, error) {
	state := &replicaSeg{}
	cs := &chainScan{identity: r.identity, key: r.key, checkMAC: true, segFirstSeq: firstSeq, prevChain: prevChain}
	var accAtCommit merkleAcc
	cs.onCommitHook = func() { accAtCommit = cs.snapshotAcc() }
	_, end, err := scanSegment(path, firstSeq, nil, cs)
	if errors.Is(err, os.ErrNotExist) {
		return state, nil
	}
	var torn *tornError
	if (err != nil && !errors.As(err, &torn)) || !cs.sawCommit {
		if rerr := os.Remove(path); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			return nil, fmt.Errorf("wal: replica: %w", rerr)
		}
		return state, nil
	}
	if err != nil || end != cs.lastCommitOff {
		if terr := os.Truncate(path, cs.lastCommitOff); terr != nil {
			return nil, fmt.Errorf("wal: replica: truncating %s: %w", filepath.Base(path), terr)
		}
	}
	state.size = cs.lastCommitOff
	state.acc = accAtCommit
	state.lastRec = cs.lastCommitSeq
	return state, nil
}
