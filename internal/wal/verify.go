package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// LoadKeyFile reads an integrity key from path: the file's bytes with
// surrounding whitespace trimmed (so a trailing newline does not silently
// change the key). An empty path yields a nil key — integrity without
// authenticity.
func LoadKeyFile(path string) ([]byte, error) {
	if path == "" {
		return nil, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: integrity key: %w", err)
	}
	key := strings.TrimSpace(string(raw))
	if key == "" {
		return nil, fmt.Errorf("wal: integrity key file %s is empty", path)
	}
	return []byte(key), nil
}

// SeqRange is an inclusive range of sequence numbers.
type SeqRange struct {
	From uint64
	To   uint64
}

// VerifyReport summarizes a full offline audit of one tenant's log. A
// non-nil report means every check passed; the report then carries the
// provable durability statement and anything worth an operator's eye.
type VerifyReport struct {
	Tenant string
	// DurableThrough is the highest sequence number the on-disk log proves
	// durable: every record 1..DurableThrough is either in a verified,
	// commit-covered frame, inside a Retired/Gaps range (which the caller
	// must cover with a checkpoint), or below the chain base.
	DurableThrough uint64
	// HeadDurable is the signed head's durable claim (≤ DurableThrough, or
	// the audit fails — a head claiming more than the segments prove means
	// acknowledged records were lost).
	HeadDurable uint64
	// Retired is the highest sequence number removed by Truncate; records
	// 1..Retired live only in checkpoints.
	Retired uint64
	// Gaps are sequence ranges absent from the log because SetNextSeq
	// jumped over them — legitimate only when a checkpoint covers them,
	// which is the caller's cross-check.
	Gaps     []SeqRange
	Segments int
	Sealed   int
	Records  uint64 // record frames verified (a batch frame counts once)
	Commits  int    // commit frames verified (root + chain + HMAC)
	Warnings []string
}

// VerifyTenant audits dir's full history offline with the integrity key:
// head HMAC, segment inventory, every record frame's CRC and sequence
// contiguity, every commit frame's Merkle root, chain position and HMAC,
// sealed roots against the head's pinned entries, and the head's durable
// claim against what the segments actually prove. Any mismatch returns
// ErrCorrupt; crash artifacts that lose nothing acknowledged (an un-fsynced
// torn tail, a truncation leftover, a rotation that never created its
// segment) pass with a warning.
func VerifyTenant(dir string, key []byte) (*VerifyReport, error) {
	identity := filepath.Base(filepath.Clean(dir))
	rep := &VerifyReport{Tenant: identity}
	head, headRaw, err := loadHead(dir)
	if err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if errors.Is(err, os.ErrNotExist) {
		segs = nil
	} else if err != nil {
		return nil, err
	}
	if head == nil {
		if len(segs) > 0 {
			return nil, fmt.Errorf("%w: %s: segments exist but %s is missing (deleted, or a pre-integrity log — see docs/OPERATIONS.md)",
				ErrCorrupt, identity, HeadFileName)
		}
		return rep, nil // no log at all: nothing claimed, nothing proven
	}
	if err := verifyHeadMAC(headRaw, key); err != nil {
		return nil, err
	}
	if head.identity != identity {
		return nil, fmt.Errorf("%w: head identity %q does not match directory %q (log directory copied or renamed?)",
			ErrCorrupt, head.identity, identity)
	}
	rep.HeadDurable = head.durableSeq
	rep.Retired = head.baseSeq

	sealedAt := make(map[uint64]*sealedSegment, len(head.sealed))
	for i := range head.sealed {
		sealedAt[head.sealed[i].firstSeq] = &head.sealed[i]
	}
	present := make(map[uint64]bool, len(segs))
	var kept []segment
	activeFound := false
	for _, seg := range segs {
		switch {
		case seg.firstSeq == head.activeFirstSeq:
			activeFound = true
			kept = append(kept, seg)
		case seg.firstSeq > head.activeFirstSeq:
			kept = append(kept, seg)
		default:
			if _, ok := sealedAt[seg.firstSeq]; ok {
				present[seg.firstSeq] = true
				kept = append(kept, seg)
				break
			}
			if seg.firstSeq <= head.baseSeq {
				rep.Warnings = append(rep.Warnings,
					fmt.Sprintf("segment %s is a truncation leftover below the chain base (crash between head save and unlink; ignorable)", seg.name))
				continue
			}
			return nil, fmt.Errorf("%w: %s: segment %s is not in the signed head inventory", ErrCorrupt, identity, seg.name)
		}
	}
	for _, s := range head.sealed {
		if !present[s.firstSeq] {
			return nil, fmt.Errorf("%w: %s: sealed segment %s (seqs %d..%d) is missing",
				ErrCorrupt, identity, segmentName(s.firstSeq), s.firstSeq, s.lastSeq)
		}
	}
	if !activeFound {
		if len(kept) > 0 && kept[len(kept)-1].firstSeq > head.activeFirstSeq {
			return nil, fmt.Errorf("%w: %s: active segment %s is missing but later segments exist",
				ErrCorrupt, identity, segmentName(head.activeFirstSeq))
		}
		if head.durableSeq > head.activeFirstSeq-1 {
			return nil, fmt.Errorf("%w: %s: active segment %s is missing and the head proves records durable through seq %d",
				ErrCorrupt, identity, segmentName(head.activeFirstSeq), head.durableSeq)
		}
		rep.Warnings = append(rep.Warnings,
			fmt.Sprintf("active segment %s not yet created (crash between rotation's head save and segment create; recreated empty on next open)",
				segmentName(head.activeFirstSeq)))
	}

	proven := head.activeFirstSeq - 1
	prevChain := head.baseChain
	prevLast := head.baseSeq // last seq accounted for, for gap detection
	for i, seg := range kept {
		entry := sealedAt[seg.firstSeq]
		final := i == len(kept)-1
		cs := &chainScan{identity: identity, key: key, checkMAC: true, segFirstSeq: seg.firstSeq, prevChain: prevChain}
		var firstRec, lastRec uint64
		fn := func(seq uint64, _ []float64) error {
			if firstRec == 0 {
				firstRec = seq
			}
			lastRec = seq
			return nil
		}
		lastInSeg, end, serr := scanSegment(filepath.Join(dir, seg.name), seg.firstSeq, fn, cs)
		if entry != nil || !final {
			// Frozen segment: clean scan, commit-terminated, and (when
			// sealed) byte-for-byte the history the head pinned.
			if serr != nil {
				var torn *tornError
				if errors.As(serr, &torn) {
					return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, seg.name, torn.cause)
				}
				return nil, serr
			}
			if !cs.sawCommit || cs.lastCommitOff != end {
				return nil, fmt.Errorf("%w: %s: frozen segment is not commit-terminated", ErrCorrupt, identity+"/"+seg.name)
			}
			if entry != nil && (lastInSeg != entry.lastSeq || cs.sealRoot() != entry.root) {
				return nil, fmt.Errorf("%w: %s: content does not match its sealed head entry", ErrCorrupt, identity+"/"+seg.name)
			}
		} else if serr != nil {
			var torn *tornError
			if !errors.As(serr, &torn) {
				return nil, serr
			}
			raw, rerr := os.ReadFile(filepath.Join(dir, seg.name))
			if rerr != nil {
				return nil, fmt.Errorf("wal: %w", rerr)
			}
			if int64(len(raw)) > end && hasCommitBeyond(raw[end:]) {
				return nil, fmt.Errorf("%w: %s: unreadable frame at offset %d with committed records beyond it (segment tampered)",
					ErrCorrupt, seg.name, end)
			}
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("%s: unreadable tail at offset %d (un-fsynced crash tail; healed on next open)", seg.name, end))
		}
		if final && entry == nil && lastRec > cs.lastCommitSeq {
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("%s: records %d..%d past the last commit were never acknowledged and will be dropped on next open",
					seg.name, cs.lastCommitSeq+1, lastRec))
		}
		if firstRec != 0 && firstRec > prevLast+1 {
			rep.Gaps = append(rep.Gaps, SeqRange{From: prevLast + 1, To: firstRec - 1})
		}
		rep.Records += cs.records
		rep.Commits += cs.commits
		rep.Segments++
		if entry != nil {
			rep.Sealed++
			prevChain = chainNext(prevChain, entry.root)
			prevLast = entry.lastSeq
		} else {
			if !final {
				prevChain = chainNext(prevChain, cs.sealRoot())
			}
			if cs.sawCommit {
				prevLast = cs.lastCommitSeq
			}
		}
		if cs.sawCommit && cs.lastCommitSeq > proven {
			proven = cs.lastCommitSeq
		}
	}
	if head.durableSeq > proven {
		return nil, fmt.Errorf("%w: %s: head proves records durable through seq %d but the segments only prove %d (active segment truncated or substituted)",
			ErrCorrupt, identity, head.durableSeq, proven)
	}
	rep.DurableThrough = proven
	return rep, nil
}
