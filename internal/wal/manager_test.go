package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// TestManagerOpenIsIdempotent: opening the same tenant twice returns the
// same log, and Get observes it without opening.
func TestManagerOpenIsIdempotent(t *testing.T) {
	m := NewManager(t.TempDir(), Options{})
	defer m.Close()
	if m.Get("a") != nil {
		t.Fatal("Get before Open returned a log")
	}
	l1, err := m.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := m.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Fatal("second Open returned a different log")
	}
	if m.Get("a") != l1 {
		t.Fatal("Get returned a different log than Open")
	}
}

// TestManagerAppendRequiresOpen: appending to a tenant that was never
// opened fails instead of silently creating a log.
func TestManagerAppendRequiresOpen(t *testing.T) {
	m := NewManager(t.TempDir(), Options{})
	defer m.Close()
	if _, err := m.Append("nope", 1, []float64{1}); err == nil {
		t.Fatal("append without open succeeded")
	}
	// Truncate of an unopened tenant is an explicit no-op.
	if err := m.Truncate("nope", 10); err != nil {
		t.Fatalf("truncate without open: %v", err)
	}
	// Replay of a tenant with no directory replays nothing.
	n, err := m.ReplayTenant("nope", 1, func(uint64, []float64) error {
		t.Fatal("callback ran for a tenant with no log")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("replay of missing tenant: n=%d err=%v", n, err)
	}
}

// TestManagerTenantsListsDirectories: Tenants reflects what is on disk —
// open or not — which is exactly what the restore path walks.
func TestManagerTenantsListsDirectories(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(filepath.Join(dir, "wal"), Options{})
	defer m.Close()

	// No root directory yet: empty listing, no error.
	ids, err := m.Tenants()
	if err != nil || len(ids) != 0 {
		t.Fatalf("empty manager: ids=%v err=%v", ids, err)
	}

	for _, id := range []string{"b", "a", "c"} {
		if _, err := m.Open(id); err != nil {
			t.Fatal(err)
		}
	}
	// A stray file in the root must not be listed as a tenant.
	if err := os.WriteFile(filepath.Join(dir, "wal", "stray.txt"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err = m.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(ids)
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Fatalf("tenants %v, want [a b c]", ids)
	}
}

// TestManagerStatsAggregate: the manager's counters sum activity across all
// tenant logs — appends, syncs, bytes, truncations, and the open-log gauge.
func TestManagerStatsAggregate(t *testing.T) {
	m := NewManager(t.TempDir(), Options{SegmentBytes: 256})
	defer m.Close()
	for _, id := range []string{"s1", "s2"} {
		if _, err := m.Open(id); err != nil {
			t.Fatal(err)
		}
		for seq := uint64(1); seq <= 20; seq++ {
			if _, err := m.Append(id, seq, []float64{1, 2, 3, 4}); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Get(id).Sync(); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Appends != 40 {
		t.Fatalf("appends %d, want 40", st.Appends)
	}
	if st.Syncs == 0 {
		t.Fatal("no syncs counted")
	}
	if st.Bytes == 0 {
		t.Fatal("no bytes counted")
	}
	if st.OpenLogs != 2 {
		t.Fatalf("open logs %d, want 2", st.OpenLogs)
	}
	// Truncate across rotated segments ticks the truncation counter.
	if err := m.Truncate("s1", 20); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Truncations == 0 {
		t.Fatal("no truncations counted after truncate over rotated segments")
	}
}

// TestManagerRemoveIsIdempotent: removing a tenant that has no log (or was
// already removed) is not an error; removing an open one closes it first.
func TestManagerRemoveIsIdempotent(t *testing.T) {
	root := t.TempDir()
	m := NewManager(root, Options{})
	defer m.Close()
	if err := m.Remove("never-existed"); err != nil {
		t.Fatalf("removing a tenant with no log: %v", err)
	}
	l, err := m.Open("r1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append("r1", 1, []float64{9}); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "r1")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tenant directory survived Remove: %v", err)
	}
	// The closed log refuses further use.
	if _, err := l.Append(2, []float64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append to removed log: %v", err)
	}
	if err := m.Remove("r1"); err != nil {
		t.Fatalf("double remove: %v", err)
	}
}

// TestManagerCloseClosesAllLogs: Close releases every open log exactly
// once and leaves the manager unusable-but-safe.
func TestManagerCloseClosesAllLogs(t *testing.T) {
	m := NewManager(t.TempDir(), Options{SyncInterval: time.Millisecond})
	var logs []*Log
	for _, id := range []string{"c1", "c2", "c3"} {
		l, err := m.Open(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Append(id, 1, []float64{1}); err != nil {
			t.Fatal(err)
		}
		logs = append(logs, l)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	for i, l := range logs {
		if _, err := l.Append(2, []float64{2}); !errors.Is(err, ErrClosed) {
			t.Fatalf("log %d alive after manager close: %v", i, err)
		}
	}
	// Close is idempotent.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestManagerReplayTenantRoundtrip: records appended through the manager
// replay through the manager, observing fromSeq.
func TestManagerReplayTenantRoundtrip(t *testing.T) {
	m := NewManager(t.TempDir(), Options{})
	defer m.Close()
	if _, err := m.Open("rt"); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if _, err := m.Append("rt", seq, []float64{float64(seq), -float64(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	last, err := m.ReplayTenant("rt", 4, func(seq uint64, values []float64) error {
		if values[0] != float64(seq) || values[1] != -float64(seq) {
			t.Fatalf("seq %d: values %v", seq, values)
		}
		got = append(got, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 10 || len(got) != 7 || got[0] != 4 {
		t.Fatalf("replay from 4: last=%d got=%v", last, got)
	}
}
