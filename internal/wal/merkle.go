package wal

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Tamper-evident integrity layer.
//
// Every record frame is a Merkle LEAF: leaf = SHA-256(0x00 ‖ frame bytes).
// Leaves accumulate into a per-segment Merkle tree through a mountain-range
// accumulator (O(log n) memory, O(1) amortized hashes per leaf); interior
// nodes hash as SHA-256(0x01 ‖ left ‖ right). The tree is left-leaning:
// finalization folds the pending peaks right-to-left, so the root is a pure
// function of the leaf sequence — an offline verifier recomputes it from the
// segment bytes alone.
//
// Hashing happens on the SYNC path, not the append path: the group-commit
// syncer walks the batch it is about to write, hashes each frame, and then
// appends one COMMIT FRAME to the same write — so integrity rides the fsync
// the batch already pays, and Append stays a memcpy. A commit frame carries
// the durable sequence number, the segment's Merkle root over every record
// so far, and an HMAC-SHA256 binding (identity, segment, seq, chain value)
// under the server key. The chain value links segments:
//
//	chain₀   = SHA-256("tkcm-chain-genesis\x00" ‖ identity)
//	chainₖ   = SHA-256(0x02 ‖ chainₖ₋₁ ‖ rootₖ)     (segment k sealed)
//
// so substituting, reordering, or truncating whole segments breaks the chain
// even though every segment is internally consistent.
//
// The per-tenant HEAD file (head.tkcmh, temp+rename+fsync like the routing
// table) is the signed anchor: the chain base (raised by Truncate once a
// checkpoint covers removed segments), one entry per sealed segment
// {firstSeq, lastSeq, root}, the active segment's name, and the highest
// sequence number proven durable at the last head save — all under one
// HMAC-SHA256. Open refuses a log whose head is missing (while segments
// exist), whose MAC fails, or whose inventory disagrees with the directory.
const (
	headMagic = "TKCMHD01"
	// HeadFileName is the per-tenant signed chain anchor inside the log dir.
	HeadFileName = "head.tkcmh"
	// commitFlag marks the count field of a commit frame (bit 30; batch
	// records use bit 31, plain counts stay below 1<<24).
	commitFlag = 1 << 30
	// commitPayloadLen: seq u64 | flags u32 | root 32 | mac 32.
	commitPayloadLen = 8 + 4 + 32 + 32
	// maxHeadSealed bounds the sealed-entry count a head decoder accepts;
	// segments rotate at tens of MiB and truncate after checkpoints, so even
	// a pathological deployment stays far below it.
	maxHeadSealed = 1 << 20
)

// hashSize is the byte length of every hash in the chain (SHA-256).
const hashSize = sha256.Size

// chainGenesis derives the chain's starting value from the log identity
// (the tenant's directory name), binding the whole chain to the tenant so a
// byte-identical copy of another tenant's log cannot be substituted.
func chainGenesis(identity string) [hashSize]byte {
	h := sha256.New()
	h.Write([]byte("tkcm-chain-genesis\x00"))
	h.Write([]byte(identity))
	var out [hashSize]byte
	h.Sum(out[:0])
	return out
}

// chainNext advances the cross-segment chain over a sealed segment's root.
func chainNext(prev, root [hashSize]byte) [hashSize]byte {
	h := sha256.New()
	h.Write([]byte{0x02})
	h.Write(prev[:])
	h.Write(root[:])
	var out [hashSize]byte
	h.Sum(out[:0])
	return out
}

// leafHash hashes one record frame, given as its header and payload slices
// (contiguous in some callers, separate buffers in the segment scanner).
func leafHash(hdr, payload []byte) [hashSize]byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(hdr)
	h.Write(payload)
	var out [hashSize]byte
	h.Sum(out[:0])
	return out
}

// nodeHash combines two subtree hashes.
func nodeHash(left, right [hashSize]byte) [hashSize]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(left[:])
	h.Write(right[:])
	var out [hashSize]byte
	h.Sum(out[:0])
	return out
}

// emptyRoot is the Merkle root of a segment with no records.
var emptyRoot = sha256.Sum256([]byte("tkcm-merkle-empty"))

// merkleAcc is the mountain-range accumulator: peaks[i] holds the root of a
// complete subtree; heights strictly decrease left to right. Pushing a leaf
// merges equal-height peaks, so memory stays O(log n) for any segment size.
type merkleAcc struct {
	peaks   [][hashSize]byte
	heights []uint8
	leaves  uint64
}

func (a *merkleAcc) reset() {
	a.peaks = a.peaks[:0]
	a.heights = a.heights[:0]
	a.leaves = 0
}

// push adds one leaf hash.
func (a *merkleAcc) push(leaf [hashSize]byte) {
	a.peaks = append(a.peaks, leaf)
	a.heights = append(a.heights, 0)
	a.leaves++
	for n := len(a.peaks); n >= 2 && a.heights[n-1] == a.heights[n-2]; n = len(a.peaks) {
		a.peaks[n-2] = nodeHash(a.peaks[n-2], a.peaks[n-1])
		a.heights[n-2]++
		a.peaks = a.peaks[:n-1]
		a.heights = a.heights[:n-1]
	}
}

// root folds the pending peaks right-to-left into the current Merkle root
// without disturbing the accumulator (more leaves may follow).
func (a *merkleAcc) root() [hashSize]byte {
	if len(a.peaks) == 0 {
		return emptyRoot
	}
	r := a.peaks[len(a.peaks)-1]
	for i := len(a.peaks) - 2; i >= 0; i-- {
		r = nodeHash(a.peaks[i], r)
	}
	return r
}

// commitMAC binds a commit frame to the log identity, its segment, the
// durable sequence number, and the chain value, under the server key. An
// empty key still yields a deterministic MAC — integrity without
// authenticity — so the format is identical with and without key material.
func commitMAC(key []byte, identity string, segFirstSeq, seq uint64, chain [hashSize]byte) [hashSize]byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("tkcm-commit\x00"))
	mac.Write([]byte(identity))
	var n [16]byte
	binary.LittleEndian.PutUint64(n[0:8], segFirstSeq)
	binary.LittleEndian.PutUint64(n[8:16], seq)
	mac.Write(n[:])
	mac.Write(chain[:])
	var out [hashSize]byte
	mac.Sum(out[:0])
	return out
}

// appendCommitFrame encodes one commit frame (standard record framing, flag
// bit 30) onto dst and returns the extended slice.
func appendCommitFrame(dst []byte, key []byte, identity string, segFirstSeq, seq uint64, root, chain [hashSize]byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, recHeader+commitPayloadLen)...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b[0:4], commitPayloadLen)
	binary.LittleEndian.PutUint64(b[8:16], seq)
	binary.LittleEndian.PutUint32(b[16:20], commitFlag)
	copy(b[20:52], root[:])
	mac := commitMAC(key, identity, segFirstSeq, seq, chain)
	copy(b[52:84], mac[:])
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(b[recHeader:recHeader+commitPayloadLen]))
	return dst
}

// sealedSegment is one head entry: a rotated-away segment whose content is
// frozen and whose Merkle root is pinned.
type sealedSegment struct {
	firstSeq uint64
	lastSeq  uint64
	root     [hashSize]byte
}

// headState is the decoded (or in-memory) head file.
type headState struct {
	identity string
	// baseSeq is the highest sequence number retired by Truncate: every
	// record still on disk has seq > baseSeq, and the chain restarts at
	// baseChain (genesis for a never-truncated log).
	baseSeq   uint64
	baseChain [hashSize]byte
	// durableSeq is the highest sequence number proven durable at the last
	// head save. The live log's durable watermark runs ahead of it between
	// saves (commit frames cover the gap); a log whose on-disk records prove
	// LESS than durableSeq has lost acknowledged data.
	durableSeq uint64
	// activeFirstSeq names the active segment (seg-<activeFirstSeq>.wal).
	activeFirstSeq uint64
	sealed         []sealedSegment
}

// chainThroughSealed folds the base chain through every sealed root.
func (h *headState) chainThroughSealed() [hashSize]byte {
	c := h.baseChain
	for _, s := range h.sealed {
		c = chainNext(c, s.root)
	}
	return c
}

// clone deep-copies h so a mutation can be prepared, saved, and only then
// installed — a failed save leaves the in-memory head untouched.
func (h *headState) clone() *headState {
	c := *h
	c.sealed = append([]sealedSegment(nil), h.sealed...)
	return &c
}

// encodeHead serializes h and appends the HMAC trailer.
func encodeHead(h *headState, key []byte) []byte {
	buf := make([]byte, 0, len(headMagic)+2+len(h.identity)+8+hashSize+8+8+4+len(h.sealed)*(16+hashSize)+hashSize)
	buf = append(buf, headMagic...)
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(h.identity)))
	buf = append(buf, tmp[:2]...)
	buf = append(buf, h.identity...)
	binary.LittleEndian.PutUint64(tmp[:], h.baseSeq)
	buf = append(buf, tmp[:]...)
	buf = append(buf, h.baseChain[:]...)
	binary.LittleEndian.PutUint64(tmp[:], h.durableSeq)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], h.activeFirstSeq)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(h.sealed)))
	buf = append(buf, tmp[:4]...)
	for _, s := range h.sealed {
		binary.LittleEndian.PutUint64(tmp[:], s.firstSeq)
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], s.lastSeq)
		buf = append(buf, tmp[:]...)
		buf = append(buf, s.root[:]...)
	}
	mac := headMAC(key, buf)
	buf = append(buf, mac[:]...)
	return buf
}

func headMAC(key, body []byte) [hashSize]byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("tkcm-head\x00"))
	mac.Write(body)
	var out [hashSize]byte
	mac.Sum(out[:0])
	return out
}

// decodeHead parses a head image. Every length is bounded against the bytes
// that remain, trailing bytes are rejected, and the sealed entries must be
// strictly ordered — the decoder survives crafted images (fuzzed by
// FuzzHeadDecode). The MAC is NOT checked here: callers that hold the key
// call verifyHeadMAC with the raw image.
func decodeHead(raw []byte) (*headState, error) {
	bad := func(format string, args ...any) (*headState, error) {
		return nil, fmt.Errorf("%w: head: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
	if len(raw) < len(headMagic)+2 {
		return bad("truncated (%d bytes)", len(raw))
	}
	if string(raw[:len(headMagic)]) != headMagic {
		return bad("bad magic %q", raw[:len(headMagic)])
	}
	p := raw[len(headMagic):]
	idLen := int(binary.LittleEndian.Uint16(p[:2]))
	p = p[2:]
	if len(p) < idLen {
		return bad("identity length %d exceeds remaining %d bytes", idLen, len(p))
	}
	h := &headState{identity: string(p[:idLen])}
	p = p[idLen:]
	const fixed = 8 + hashSize + 8 + 8 + 4
	if len(p) < fixed {
		return bad("truncated after identity")
	}
	h.baseSeq = binary.LittleEndian.Uint64(p[0:8])
	copy(h.baseChain[:], p[8:8+hashSize])
	p = p[8+hashSize:]
	h.durableSeq = binary.LittleEndian.Uint64(p[0:8])
	h.activeFirstSeq = binary.LittleEndian.Uint64(p[8:16])
	n := binary.LittleEndian.Uint32(p[16:20])
	p = p[20:]
	const entryLen = 16 + hashSize
	if n > maxHeadSealed || uint64(len(p)) < uint64(n)*entryLen+hashSize {
		return bad("sealed count %d exceeds remaining %d bytes", n, len(p))
	}
	h.sealed = make([]sealedSegment, n)
	prevLast := h.baseSeq
	for i := range h.sealed {
		s := &h.sealed[i]
		s.firstSeq = binary.LittleEndian.Uint64(p[0:8])
		s.lastSeq = binary.LittleEndian.Uint64(p[8:16])
		copy(s.root[:], p[16:16+hashSize])
		p = p[entryLen:]
		if s.firstSeq == 0 || s.firstSeq <= prevLast || s.lastSeq < s.firstSeq {
			return bad("sealed entry %d out of order (%d..%d after %d)", i, s.firstSeq, s.lastSeq, prevLast)
		}
		prevLast = s.lastSeq
	}
	if h.activeFirstSeq <= prevLast {
		return bad("active segment seq %d not past sealed tail %d", h.activeFirstSeq, prevLast)
	}
	if h.durableSeq < h.baseSeq {
		return bad("durable seq %d below base %d", h.durableSeq, h.baseSeq)
	}
	if len(p) != hashSize {
		return bad("%d trailing bytes", len(p)-hashSize)
	}
	return h, nil
}

// verifyHeadMAC checks a raw head image's HMAC trailer against key.
func verifyHeadMAC(raw, key []byte) error {
	if len(raw) < hashSize {
		return fmt.Errorf("%w: head: truncated", ErrCorrupt)
	}
	body, mac := raw[:len(raw)-hashSize], raw[len(raw)-hashSize:]
	want := headMAC(key, body)
	if !hmac.Equal(mac, want[:]) {
		return fmt.Errorf("%w: head: HMAC mismatch (tampered, or wrong integrity key)", ErrCorrupt)
	}
	return nil
}

// loadHead reads and decodes dir's head file. A missing file returns
// (nil, nil): the caller decides whether that is a fresh log or corruption.
func loadHead(dir string) (*headState, []byte, error) {
	raw, err := os.ReadFile(filepath.Join(dir, HeadFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("wal: reading head: %w", err)
	}
	h, err := decodeHead(raw)
	if err != nil {
		return nil, nil, err
	}
	return h, raw, nil
}

// saveHead writes dir's head atomically: temp file, fsync, rename, dir sync
// — the same discipline as checkpoints and the routing table, so a crash at
// any instant leaves either the old head or the new one, never a tear.
func saveHead(dir string, h *headState, key []byte) error {
	return installHeadImage(dir, encodeHead(h, key))
}

// installHeadImage atomically writes an already-encoded head image — the
// replica installs the primary's verified image byte-for-byte, so the MACs
// transfer without the follower ever re-signing anything.
func installHeadImage(dir string, buf []byte) error {
	f, err := os.CreateTemp(dir, HeadFileName+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: head: %w", err)
	}
	tmp := f.Name()
	_, err = f.Write(buf)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(dir, HeadFileName))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: head: %w", err)
	}
	if err := syncDirFS(dir); err != nil {
		return fmt.Errorf("wal: head: %w", err)
	}
	return nil
}

// syncDirFS fsyncs a directory, making renames inside it durable.
func syncDirFS(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// chainScan verifies one segment's frames as they stream past: record
// frames feed the Merkle accumulator, commit frames are checked against the
// recomputed root, the cross-segment chain value, and (when a key is held)
// the HMAC. It is shared by Open (active-segment rebuild), Replay (restore-
// path verification), and VerifyTenant (the offline audit).
type chainScan struct {
	identity    string
	key         []byte
	checkMAC    bool
	segFirstSeq uint64
	prevChain   [hashSize]byte // chain value after the previous sealed segment
	acc         merkleAcc

	// Outputs, valid after the scan.
	lastCommitSeq uint64 // durable-through proven by the last valid commit
	lastCommitOff int64  // file offset just past that commit frame
	commits       int
	records       uint64 // record frames seen (batch rows counted per frame)
	sawCommit     bool

	// onCommitHook, when set, runs after each successfully validated commit
	// frame — Open uses it to snapshot the accumulator at the commit boundary.
	onCommitHook func()
}

// onRecord feeds one record frame (header + payload) into the tree.
func (cs *chainScan) onRecord(hdr, payload []byte) {
	cs.acc.push(leafHash(hdr, payload))
	cs.records++
}

// onCommit validates one commit frame at endOff (offset just past it).
func (cs *chainScan) onCommit(payload []byte, seq uint64, endOff int64) error {
	var root, mac [hashSize]byte
	copy(root[:], payload[12:12+hashSize])
	copy(mac[:], payload[12+hashSize:12+2*hashSize])
	want := cs.acc.root()
	if root != want {
		return fmt.Errorf("%w: commit at offset %d: Merkle root mismatch (records tampered)", ErrCorrupt, endOff)
	}
	if cs.checkMAC {
		chain := chainNext(cs.prevChain, root)
		wantMAC := commitMAC(cs.key, cs.identity, cs.segFirstSeq, seq, chain)
		if !hmac.Equal(mac[:], wantMAC[:]) {
			return fmt.Errorf("%w: commit at offset %d: HMAC mismatch (tampered, or wrong integrity key)", ErrCorrupt, endOff)
		}
	}
	cs.lastCommitSeq = seq
	cs.lastCommitOff = endOff
	cs.commits++
	cs.sawCommit = true
	if cs.onCommitHook != nil {
		cs.onCommitHook()
	}
	return nil
}

// sealRoot returns the segment's final Merkle root.
func (cs *chainScan) sealRoot() [hashSize]byte { return cs.acc.root() }

// snapshotAcc copies the accumulator's current peaks — taken at each commit
// frame so a scan can hand back the tree state AT the last commit even when
// uncommitted record frames follow it.
func (cs *chainScan) snapshotAcc() merkleAcc {
	return merkleAcc{
		peaks:   append([][hashSize]byte(nil), cs.acc.peaks...),
		heights: append([]uint8(nil), cs.acc.heights...),
		leaves:  cs.acc.leaves,
	}
}

// hasCommitBeyond reports whether data contains a structurally valid,
// CRC-correct commit frame at ANY byte offset. It is the tamper/torn-tail
// disambiguator: crash damage is confined to the one un-fsynced write at the
// end of a segment, so an unreadable frame FOLLOWED by a surviving commit
// frame cannot be crash damage — records that were fsynced (and possibly
// acknowledged) have been tampered with. Only runs on the damage path.
func hasCommitBeyond(data []byte) bool {
	const frame = recHeader + commitPayloadLen
	for i := 0; i+frame <= len(data); i++ {
		if binary.LittleEndian.Uint32(data[i:]) != commitPayloadLen {
			continue
		}
		// flags field sits at payload offset 8 (after the seq u64).
		if binary.LittleEndian.Uint32(data[i+recHeader+8:]) != commitFlag {
			continue
		}
		if crc32.ChecksumIEEE(data[i+recHeader:i+frame]) == binary.LittleEndian.Uint32(data[i+4:]) {
			return true
		}
	}
	return false
}

// walkFrames parses a buffer of complete frames (the in-memory group-commit
// batch, or a replication delta) and feeds each into cs. Record frames become
// leaves; commit frames are validated like scanSegment does. lastSeq carries
// the running last record seq across calls (0 = none yet).
func walkFrames(data []byte, cs *chainScan, lastSeq uint64) (uint64, error) {
	off := 0
	for off < len(data) {
		if off+recHeader > len(data) {
			return lastSeq, fmt.Errorf("%w: truncated frame header at offset %d", ErrCorrupt, off)
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off:]))
		if payloadLen < 12 || payloadLen > 16+8*maxRecordValues || off+recHeader+payloadLen > len(data) {
			return lastSeq, fmt.Errorf("%w: implausible frame length %d at offset %d", ErrCorrupt, payloadLen, off)
		}
		frame := data[off : off+recHeader+payloadLen]
		payload := frame[recHeader:]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(frame[4:8]) {
			return lastSeq, fmt.Errorf("%w: frame checksum mismatch at offset %d", ErrCorrupt, off)
		}
		n := binary.LittleEndian.Uint32(payload[8:12])
		if n&batchCountFlag == 0 && n&commitFlag != 0 {
			seq := binary.LittleEndian.Uint64(payload[0:8])
			if n != commitFlag || payloadLen != commitPayloadLen || seq != lastSeq || lastSeq == 0 {
				return lastSeq, fmt.Errorf("%w: malformed commit frame at offset %d", ErrCorrupt, off)
			}
			if err := cs.onCommit(payload, seq, int64(off+len(frame))); err != nil {
				return lastSeq, err
			}
		} else {
			seq := binary.LittleEndian.Uint64(payload[0:8])
			rows := uint64(1)
			if n&batchCountFlag != 0 {
				if payloadLen < 16 {
					return lastSeq, fmt.Errorf("%w: short batch frame at offset %d", ErrCorrupt, off)
				}
				rows = uint64(binary.LittleEndian.Uint32(payload[12:16]))
				if rows == 0 {
					return lastSeq, fmt.Errorf("%w: empty batch frame at offset %d", ErrCorrupt, off)
				}
			}
			cs.onRecord(frame[:recHeader], payload)
			lastSeq = seq + rows - 1
		}
		off += len(frame)
	}
	return lastSeq, nil
}
