package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestMerkleAccumulatorIsOrderSensitiveAndDeterministic(t *testing.T) {
	leaf := func(b byte) [hashSize]byte {
		return leafHash([]byte{b, 0, 0, 0, 0, 0, 0, 0}, []byte{b})
	}
	var a, b merkleAcc
	for i := 0; i < 7; i++ { // 7 leaves: uneven tree, peaks at 3 heights
		a.push(leaf(byte(i)))
		b.push(leaf(byte(i)))
	}
	if a.root() != b.root() {
		t.Fatal("same leaves produced different roots")
	}
	// root() must not consume the accumulator: pushing after a root read
	// continues the same tree.
	r7 := a.root()
	a.push(leaf(7))
	b.push(leaf(7))
	if a.root() != b.root() {
		t.Fatal("root() mutated the accumulator")
	}
	if a.root() == r7 {
		t.Fatal("appending a leaf did not change the root")
	}
	var c merkleAcc
	for i := 7; i >= 0; i-- { // same leaves, reversed order
		c.push(leaf(byte(i)))
	}
	if c.root() == a.root() {
		t.Fatal("leaf order does not affect the root")
	}
	var empty merkleAcc
	if empty.root() != emptyRoot {
		t.Fatal("empty accumulator root != emptyRoot sentinel")
	}
	empty.push(leaf(1))
	empty.reset()
	if empty.root() != emptyRoot {
		t.Fatal("reset did not restore the empty root")
	}
}

func TestHeadEncodeDecodeRoundtrip(t *testing.T) {
	key := []byte("roundtrip-key")
	h := &headState{
		identity: "tenant-x",
		baseSeq:  41,
		sealed: []sealedSegment{
			{firstSeq: 42, lastSeq: 99, root: leafHash([]byte("a"), []byte("b"))},
			{firstSeq: 100, lastSeq: 180, root: leafHash([]byte("c"), []byte("d"))},
		},
		activeFirstSeq: 181,
		durableSeq:     205,
	}
	h.baseChain = chainNext(chainGenesis("tenant-x"), leafHash([]byte("z"), nil))
	raw := encodeHead(h, key)
	if err := verifyHeadMAC(raw, key); err != nil {
		t.Fatalf("MAC of a fresh head: %v", err)
	}
	if err := verifyHeadMAC(raw, []byte("other-key")); err == nil {
		t.Fatal("head MAC verified under the wrong key")
	}
	got, err := decodeHead(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.identity != h.identity || got.baseSeq != h.baseSeq || got.baseChain != h.baseChain ||
		got.durableSeq != h.durableSeq || got.activeFirstSeq != h.activeFirstSeq ||
		len(got.sealed) != len(h.sealed) {
		t.Fatalf("decoded head differs: %+v vs %+v", got, h)
	}
	for i := range h.sealed {
		if got.sealed[i] != h.sealed[i] {
			t.Fatalf("sealed[%d] = %+v, want %+v", i, got.sealed[i], h.sealed[i])
		}
	}
	// Every byte of the image is load-bearing: any flip must break either
	// the decoder or the MAC.
	for i := range raw {
		raw[i] ^= 0x01
		if _, derr := decodeHead(raw); derr == nil {
			if merr := verifyHeadMAC(raw, key); merr == nil {
				t.Fatalf("flipping byte %d of the head image went undetected", i)
			}
		}
		raw[i] ^= 0x01
	}
}

// TestFlipAnyByteAnywhereFailsAudit is the tamper-evidence property test: a
// gracefully closed log (head durableSeq anchored) is audited after flipping
// every single byte of every file in turn — each flip must fail VerifyTenant.
// This covers record payloads (CRC), commit frames (root/chain/HMAC), segment
// magic, sealed-segment content (pinned roots) and the head image (MAC).
func TestFlipAnyByteAnywhereFailsAudit(t *testing.T) {
	dir := t.TempDir()
	key := []byte("flip-test-key")
	l, err := Open(dir, Options{SegmentBytes: 200, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	seq := uint64(1)
	for i := 0; i < 6; i++ {
		if _, err := l.Append(seq, []float64{float64(i), float64(i) * 2}); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if _, err := l.AppendBatch(seq, rows); err != nil {
		t.Fatal(err)
	}
	seq += uint64(len(rows))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if rep, err := VerifyTenant(dir, key); err != nil {
		t.Fatalf("pristine audit: %v", err)
	} else if rep.DurableThrough != seq-1 {
		t.Fatalf("pristine DurableThrough = %d, want %d", rep.DurableThrough, seq-1)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("want multiple segments plus head, have %d files", len(entries))
	}
	for _, ent := range entries {
		path := filepath.Join(dir, ent.Name())
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mut := bytes.Clone(orig)
		for i := range mut {
			mut[i] ^= 0x01
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, verr := VerifyTenant(dir, key); verr == nil {
				t.Fatalf("flipping byte %d of %s went undetected", i, ent.Name())
			}
			mut[i] ^= 0x01
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := VerifyTenant(dir, key); err != nil {
		t.Fatalf("audit after restoring all bytes: %v", err)
	}
}

// FuzzHeadDecode hardens the head decoder against arbitrary bytes: it must
// never panic or over-allocate, and anything it accepts must re-encode into
// an image it accepts again (a decode/encode fixpoint).
func FuzzHeadDecode(f *testing.F) {
	key := []byte("fuzz-key")
	h := &headState{identity: "t1", baseChain: chainGenesis("t1"), activeFirstSeq: 1}
	f.Add(encodeHead(h, key))
	h2 := &headState{
		identity:  "tenant-with-longer-name",
		baseSeq:   7,
		baseChain: chainNext(chainGenesis("tenant-with-longer-name"), emptyRoot),
		sealed: []sealedSegment{
			{firstSeq: 8, lastSeq: 20, root: emptyRoot},
		},
		activeFirstSeq: 21,
		durableSeq:     25,
	}
	f.Add(encodeHead(h2, key))
	f.Add([]byte(headMagic))
	f.Fuzz(func(t *testing.T, raw []byte) {
		got, err := decodeHead(raw)
		if err != nil {
			return
		}
		again, err := decodeHead(encodeHead(got, key))
		if err != nil {
			t.Fatalf("re-encoded accepted head failed to decode: %v", err)
		}
		if again.identity != got.identity || again.durableSeq != got.durableSeq ||
			again.baseSeq != got.baseSeq || len(again.sealed) != len(got.sealed) {
			t.Fatalf("decode/encode/decode drifted: %+v vs %+v", again, got)
		}
	})
}
