package wal

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// collect replays dir from fromSeq into memory.
func collect(t *testing.T, dir string, fromSeq uint64) (seqs []uint64, rows [][]float64) {
	t.Helper()
	_, err := Replay(dir, fromSeq, func(seq uint64, values []float64) error {
		seqs = append(seqs, seq)
		rows = append(rows, append([]float64(nil), values...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, rows
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{
		{1, 2, 3},
		{4, math.NaN(), 6},
		{},
		{7.5},
	}
	var commits []Commit
	for i, row := range want {
		c, err := l.Append(uint64(i+1), row)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		commits = append(commits, c)
	}
	for i, c := range commits {
		if err := c.Wait(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	seqs, rows := collect(t, dir, 1)
	if len(rows) != len(want) {
		t.Fatalf("replayed %d rows, want %d", len(rows), len(want))
	}
	for i := range want {
		if seqs[i] != uint64(i+1) {
			t.Fatalf("row %d: seq %d, want %d", i, seqs[i], i+1)
		}
		if len(rows[i]) != len(want[i]) {
			t.Fatalf("row %d: %d values, want %d", i, len(rows[i]), len(want[i]))
		}
		for j := range want[i] {
			if math.IsNaN(want[i][j]) != math.IsNaN(rows[i][j]) ||
				(!math.IsNaN(want[i][j]) && rows[i][j] != want[i][j]) {
				t.Fatalf("row %d value %d: got %v, want %v", i, j, rows[i][j], want[i][j])
			}
		}
	}
}

func TestAppendEnforcesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(5, []float64{1}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("append seq 5 on fresh log: err = %v, want ErrOutOfOrder", err)
	}
	if _, err := l.Append(1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []float64{1}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("duplicate seq: err = %v, want ErrOutOfOrder", err)
	}
	if err := l.SetNextSeq(1); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("lowering next seq: err = %v, want ErrOutOfOrder", err)
	}
	if err := l.SetNextSeq(100); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(100, []float64{2}); err != nil {
		t.Fatal(err)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if _, err := l.Append(uint64(i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 11 {
		t.Fatalf("reopened NextSeq = %d, want 11", got)
	}
	if _, err := l.Append(11, []float64{11}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, dir, 1)
	if len(seqs) != 11 || seqs[10] != 11 {
		t.Fatalf("replayed seqs %v, want 1..11", seqs)
	}
}

func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every few records rotate.
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 1; i <= n; i++ {
		if _, err := l.Append(uint64(i), []float64{float64(i), float64(-i)}); err != nil {
			t.Fatal(err)
		}
	}
	if segs := l.Segments(); segs < 3 {
		t.Fatalf("expected multiple segments, got %d", segs)
	}
	seqs, _ := collect(t, dir, 1)
	if len(seqs) != n {
		t.Fatalf("replayed %d rows across segments, want %d", len(seqs), n)
	}

	// Truncating at seq 30 must drop early segments but keep everything > 30.
	before := l.Segments()
	if err := l.Truncate(30); err != nil {
		t.Fatal(err)
	}
	if after := l.Segments(); after >= before {
		t.Fatalf("truncate reclaimed nothing: %d -> %d segments", before, after)
	}
	seqs, _ = collect(t, dir, 31)
	if len(seqs) == 0 || seqs[0] != 31 || seqs[len(seqs)-1] != n {
		t.Fatalf("post-truncate replay from 31: seqs %v", seqs)
	}
	// Records below the truncation point that share a surviving segment may
	// remain; a replay from 1 must still be contiguous from its first seq.
	if _, err := Replay(dir, 1, func(uint64, []float64) error { return nil }); err != nil {
		t.Fatalf("full replay after truncate: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTornFinalRecordIsHealed(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := l.Append(uint64(i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon the log WITHOUT Close — a crash. (A clean Close anchors the
	// durable watermark in the head, after which a shortened segment is
	// tampering, not a torn tail, and is rejected as ErrCorrupt.)

	// Tear the tail: chop a few bytes off the segment, shearing the last
	// commit frame mid-write.
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	path := filepath.Join(dir, segs[0].name)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	// Replay tolerates the torn tail: rows 1..4 survive, row 5 is gone.
	seqs, _ := collect(t, dir, 1)
	if len(seqs) != 4 || seqs[3] != 4 {
		t.Fatalf("replay after torn tail: seqs %v, want 1..4", seqs)
	}

	// Reopen heals the tail and appending seq 5 again works.
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 5 {
		t.Fatalf("NextSeq after torn tail = %d, want 5", got)
	}
	if _, err := l.Append(5, []float64{55}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, rows := collect(t, dir, 1)
	if len(seqs) != 5 || rows[4][0] != 55 {
		t.Fatalf("replay after heal: seqs %v rows %v", seqs, rows)
	}
}

func TestCorruptMidSegmentFailsReplay(t *testing.T) {
	dir := t.TempDir()
	// Force several segments, then flip a payload byte in the FIRST one:
	// acknowledged data in later segments becomes unreachable, which must be
	// an error, not a silent skip.
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if _, err := l.Append(uint64(i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want ≥2 segments, got %v (%v)", segs, err)
	}
	path := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, 1, func(uint64, []float64) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over corrupt first segment: err = %v, want ErrCorrupt", err)
	}
	// A replay starting past the corrupt segment still works.
	if _, err := Replay(dir, segs[1].firstSeq, func(uint64, []float64) error { return nil }); err != nil {
		t.Fatalf("replay from %d: %v", segs[1].firstSeq, err)
	}
}

func TestGroupCommitBatchesSyncs(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir, Options{SyncInterval: 20 * time.Millisecond})
	l, err := m.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	commits := make([]Commit, 0, n)
	for i := 1; i <= n; i++ {
		c, err := l.Append(uint64(i), []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, c)
	}
	for _, c := range commits {
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Appends != n {
		t.Fatalf("appends = %d, want %d", st.Appends, n)
	}
	// All appends landed within one 20ms window, so the batch count must be
	// far below the record count (tolerate a few windows for slow CI).
	if st.Syncs >= n/2 {
		t.Fatalf("group commit did not batch: %d syncs for %d appends", st.Syncs, n)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestManagerRemoveDeletesDir(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir, Options{})
	l, err := m.Open("gone")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gone")); !os.IsNotExist(err) {
		t.Fatalf("tenant dir survived Remove: %v", err)
	}
	if err := m.Remove("never-existed"); err != nil {
		t.Fatalf("removing unknown tenant: %v", err)
	}
	tenants, err := m.Tenants()
	if err != nil || len(tenants) != 0 {
		t.Fatalf("tenants after remove: %v (%v)", tenants, err)
	}
	m.Close()
}

// TestTornTailBadLength covers a tear that lands in the framing itself,
// leaving an implausible length field rather than a short read.
func TestTornTailBadLength(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0].name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Garbage header claiming a huge payload.
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 1<<31)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	seqs, _ := collect(t, dir, 1)
	if len(seqs) != 1 {
		t.Fatalf("replay past bad-length tail: seqs %v, want just 1", seqs)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 2 {
		t.Fatalf("NextSeq = %d, want 2", got)
	}
	l.Close()
}

// TestSetNextSeqReopenPreservesAckedRecords pins the checkpoint-newer-than-
// log recovery path: raising the sequence past the tail of a NON-empty
// active segment (e.g. after a kill -9 between a checkpoint rename and the
// covering fsync) must not leave a sequence gap inside that segment — the
// next Open would read the jump as a torn tail and truncate every record
// after it, silently dropping fsynced, acknowledged ticks.
func TestSetNextSeqReopenPreservesAckedRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{}) // strict: every append is synced
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(uint64(i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A checkpoint covering seq 99 justified the jump.
	if err := l.SetNextSeq(100); err != nil {
		t.Fatal(err)
	}
	if segs := l.Segments(); segs != 2 {
		t.Fatalf("segments after raise over non-empty tail = %d, want 2 (rotation)", segs)
	}
	for i := 100; i <= 102; i++ {
		if _, err := l.Append(uint64(i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.DurableThrough(); got != 102 {
		t.Fatalf("DurableThrough = %d, want 102", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: nothing acked may have been truncated away.
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 103 {
		t.Fatalf("reopened NextSeq = %d, want 103", got)
	}
	if _, err := l.Append(103, []float64{103}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Replay from the checkpoint boundary — the only fromSeq recovery uses.
	seqs, rows := collect(t, dir, 100)
	if len(seqs) != 4 || seqs[0] != 100 || seqs[3] != 103 || rows[3][0] != 103 {
		t.Fatalf("replay from 100 after reopen: seqs %v", seqs)
	}
	// The pre-jump records also survived in their own segment.
	seqs, _ = collect(t, dir, 101)
	if len(seqs) != 3 {
		t.Fatalf("replay from 101: seqs %v", seqs)
	}
}

// TestSetNextSeqEmptySegmentNoRotation: raising inside an empty active
// segment needs no new file — the segment name is only a lower bound.
func TestSetNextSeqEmptySegmentNoRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetNextSeq(50); err != nil {
		t.Fatal(err)
	}
	if segs := l.Segments(); segs != 1 {
		t.Fatalf("segments after raise in empty log = %d, want 1", segs)
	}
	if _, err := l.Append(50, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 51 {
		t.Fatalf("reopened NextSeq = %d, want 51", got)
	}
	l.Close()
}

// TestDurableCommitVerifies: the duplicate-ack handle forces the pending
// batch out when the seq is not yet covered, and refuses to promise
// durability for a record the log never made stable.
func TestDurableCommitVerifies(t *testing.T) {
	dir := t.TempDir()
	// A long interval so the batch is still pending when Wait runs.
	l, err := Open(dir, Options{SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableThrough(); got != 0 {
		t.Fatalf("DurableThrough before sync = %d, want 0", got)
	}
	if err := l.DurableCommit(1).Wait(); err != nil {
		t.Fatalf("DurableCommit(1).Wait: %v", err)
	}
	if got := l.DurableThrough(); got != 1 {
		t.Fatalf("DurableThrough after verify = %d, want 1", got)
	}
	// Already-covered seqs wait for nothing and never error.
	if err := l.DurableCommit(1).Wait(); err != nil {
		t.Fatal(err)
	}
	// A seq the log has never seen cannot be promised durable.
	if err := l.DurableCommit(5).Wait(); err == nil {
		t.Fatal("DurableCommit(5).Wait() = nil for a record that was never appended")
	}
}

// TestReplayDetectsMissingMiddleSegment: a deleted middle segment is a hole
// in acked history, never a silent skip.
func TestReplayDetectsMissingMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if _, err := l.Append(uint64(i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %v (%v)", segs, err)
	}
	if err := os.Remove(filepath.Join(dir, segs[1].name)); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, 1, func(uint64, []float64) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay across a missing segment: err = %v, want ErrCorrupt", err)
	}
}

// TestAppendBatchReplayRoundtrip: a batch record replays as its individual
// rows — same seqs, same values — indistinguishable from per-row appends,
// including when plain and batch records interleave in one segment.
func TestAppendBatchReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []float64{1, -1}); err != nil {
		t.Fatal(err)
	}
	c, err := l.AppendBatch(2, [][]float64{{2, -2}, {3, math.NaN()}, {4, -4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(5, []float64{5, -5}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(6, [][]float64{{6, -6}, {7, -7}}); err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 8 {
		t.Fatalf("NextSeq after batches = %d, want 8", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	seqs, rows := collect(t, dir, 1)
	if len(seqs) != 7 {
		t.Fatalf("replayed %d rows, want 7 (seqs %v)", len(seqs), seqs)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("row %d: seq %d, want %d", i, seq, i+1)
		}
		if len(rows[i]) != 2 || rows[i][0] != float64(i+1) {
			t.Fatalf("row %d: values %v", i, rows[i])
		}
		if i == 2 {
			if !math.IsNaN(rows[i][1]) {
				t.Fatalf("row 3 second value %v, want NaN", rows[i][1])
			}
		} else if rows[i][1] != -float64(i+1) {
			t.Fatalf("row %d second value %v, want %v", i, rows[i][1], -float64(i+1))
		}
	}

	// Replay from the middle of a batch record delivers only the tail rows.
	seqs, _ = collect(t, dir, 3)
	if len(seqs) != 5 || seqs[0] != 3 {
		t.Fatalf("replay from 3: seqs %v, want 3..7", seqs)
	}

	// Reopen continues the sequence past the batched rows.
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 8 {
		t.Fatalf("reopened NextSeq = %d, want 8", got)
	}
	l.Close()
}

// TestAppendBatchValidates: sequence, shape, and emptiness checks reject the
// batch without mutating the log.
func TestAppendBatchValidates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendBatch(1, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := l.AppendBatch(2, [][]float64{{1}}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("batch at seq 2 on fresh log: err = %v, want ErrOutOfOrder", err)
	}
	if _, err := l.AppendBatch(1, [][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged batch accepted")
	}
	if got := l.NextSeq(); got != 1 {
		t.Fatalf("NextSeq moved to %d by rejected batches", got)
	}
	// A single-row batch is a plain append on disk and in sequence terms.
	if _, err := l.AppendBatch(1, [][]float64{{9}}); err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 2 {
		t.Fatalf("NextSeq after 1-row batch = %d, want 2", got)
	}
}

// TestTornBatchTailIsHealed: a batch frame torn mid-write loses the WHOLE
// batch (it had one unacknowledged commit slot), and the log heals to the
// last complete record — exactly the single-record torn-tail contract.
func TestTornBatchTailIsHealed(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(uint64(i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.AppendBatch(4, [][]float64{{4}, {5}, {6}}); err != nil {
		t.Fatal(err)
	}
	// Abandon WITHOUT Close — a crash (see TestTornFinalRecordIsHealed).
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0].name)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the batch's commit frame: the batch loses its covering
	// commit and with it the whole (never-acknowledged) batch.
	if err := os.Truncate(path, fi.Size()-9); err != nil {
		t.Fatal(err)
	}

	seqs, _ := collect(t, dir, 1)
	if len(seqs) != 3 || seqs[2] != 3 {
		t.Fatalf("replay after torn batch: seqs %v, want 1..3", seqs)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 4 {
		t.Fatalf("NextSeq after torn batch heal = %d, want 4", got)
	}
	// Re-appending the lost batch works and the log is whole again.
	if _, err := l.AppendBatch(4, [][]float64{{4}, {5}, {6}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, rows := collect(t, dir, 1)
	if len(seqs) != 6 || rows[5][0] != 6 {
		t.Fatalf("replay after re-append: seqs %v", seqs)
	}
}

// TestAppendBatchDurability: DurableCommit covers every row of a synced
// batch, and a batch straddling rotation thresholds stays replayable.
func TestAppendBatchDurability(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncInterval: time.Hour, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]float64, 40)
	for i := range batch {
		batch[i] = []float64{float64(i + 1), float64(-(i + 1))}
	}
	if _, err := l.AppendBatch(1, batch); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableThrough(); got != 0 {
		t.Fatalf("DurableThrough before sync = %d", got)
	}
	// DurableCommit must force the hour-long pending batch out and then
	// cover every row of it.
	if err := l.DurableCommit(40).Wait(); err != nil {
		t.Fatalf("DurableCommit(40): %v", err)
	}
	if got := l.DurableThrough(); got != 40 {
		t.Fatalf("DurableThrough = %d, want 40", got)
	}
	// More batches force rotation (one frame exceeds SegmentBytes).
	for seq := uint64(41); seq <= 200; seq += 40 {
		rows := make([][]float64, 40)
		for i := range rows {
			rows[i] = []float64{float64(seq) + float64(i)}
		}
		if _, err := l.AppendBatch(seq, rows); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if segs := l.Segments(); segs < 2 {
		t.Fatal("no rotation across the batched appends")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, dir, 1)
	if len(seqs) != 200 || seqs[199] != 200 {
		t.Fatalf("replayed %d rows, want 200", len(seqs))
	}
}
