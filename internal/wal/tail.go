package wal

import (
	"errors"
	"fmt"
	"path/filepath"
)

// ReplayTail streams every commit-covered record with sequence number ≥
// fromSeq from the OPEN log to fn, in order, and returns the last sequence
// number delivered (0 if none). It is the hydration fast path: where Replay
// re-loads the head, re-lists the directory and re-proves every sealed
// segment against its pinned Merkle root, ReplayTail trusts the in-memory
// inventory that Open already verified and this log has maintained since —
// one pass over only the segments that can hold records ≥ fromSeq, with the
// active segment's commit boundary known up front instead of re-discovered
// by a structure pass.
//
// Durability first: the pending group-commit batch is synced before the scan,
// so every record whose ack a caller may have observed is on stable storage
// and therefore delivered — without this, an eviction racing a not-yet-synced
// batch could hydrate an engine missing acked ticks.
//
// The scan runs under the sync lock, pausing group commits of THIS log only.
// The intended caller hydrates a parked tenant, which has no engine and so
// cannot be appending concurrently; other tenants' logs are untouched.
func (l *Log) ReplayTail(fromSeq uint64, fn func(seq uint64, values []float64) error) (uint64, error) {
	// Sync outside syncMu (Sync takes it itself); it also surfaces a latched
	// fail-stop error before we bother scanning.
	if err := l.Sync(); err != nil {
		return 0, err
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if f := l.failed; f != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: log failed, refusing replay: %w", f)
	}
	l.mu.Unlock()

	var last uint64
	// next tracks contiguity across segments, restarting (0) after a segment
	// skip — the skipped range is covered by the checkpoint replay starts from.
	var next uint64
	deliver := func(seq uint64, values []float64) error {
		if next != 0 && seq != next {
			return fmt.Errorf("%w: %s: records %d..%d missing", ErrCorrupt, l.identity, next, seq-1)
		}
		next = seq + 1
		if seq < fromSeq {
			return nil
		}
		if err := fn(seq, values); err != nil {
			return err
		}
		last = seq
		return nil
	}

	for _, s := range l.head.sealed {
		if s.lastSeq < fromSeq {
			next = 0
			continue
		}
		path := filepath.Join(l.dir, segmentName(s.firstSeq))
		lastInSeg, _, err := scanSegment(path, s.firstSeq, deliver, nil)
		if err != nil {
			var torn *tornError
			if errors.As(err, &torn) {
				return last, fmt.Errorf("%w: %s: %v", ErrCorrupt, segmentName(s.firstSeq), torn.cause)
			}
			return last, err
		}
		if lastInSeg != s.lastSeq {
			return last, fmt.Errorf("%w: %s: content does not match its sealed head entry", ErrCorrupt, segmentName(s.firstSeq))
		}
	}

	// Active segment: the in-memory scan state already knows its last commit
	// boundary — deliver up to it and stop, skipping the structure pass
	// Replay needs on an unverified directory.
	if !l.cs.sawCommit || l.cs.lastCommitSeq < fromSeq {
		return last, nil
	}
	stop := l.cs.lastCommitSeq
	path := filepath.Join(l.dir, segmentName(l.segStart))
	_, _, err := scanSegment(path, l.segStart, func(seq uint64, values []float64) error {
		if seq > stop {
			return errStopScan
		}
		return deliver(seq, values)
	}, nil)
	if err != nil && !errors.Is(err, errStopScan) {
		var torn *tornError
		if errors.As(err, &torn) {
			// Everything through the commit boundary was fsynced; an
			// unreadable frame below it is corruption, not a healable tail.
			if torn.off < l.cs.lastCommitOff {
				return last, fmt.Errorf("%w: %s: %v", ErrCorrupt, segmentName(l.segStart), torn.cause)
			}
			return last, nil
		}
		return last, err
	}
	return last, nil
}

// ReplayTenantTail replays tenant's OPEN log from fromSeq via Log.ReplayTail
// — the hydration fast path. A tenant whose log is not open falls back to the
// full offline Replay over its directory.
func (m *Manager) ReplayTenantTail(tenant string, fromSeq uint64, fn func(seq uint64, values []float64) error) (uint64, error) {
	l := m.Get(tenant)
	if l == nil {
		return Replay(m.dir(tenant), fromSeq, fn)
	}
	return l.ReplayTail(fromSeq, fn)
}
