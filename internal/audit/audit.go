// Package audit is the offline integrity auditor behind tkcm-verify: it
// proves, from a server's data directories alone, the highest sequence
// number each tenant can be restored through — checkpoint CRC, WAL Merkle
// roots, chain continuity, sequence contiguity, and the cross-check that
// every range missing from the WAL (truncated or jumped) is covered by the
// checkpoint. It lives outside cmd/ so the chaos tests can audit a
// kill -9'd server's directories in-process.
package audit

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tkcm/internal/core"
	"tkcm/internal/wal"
)

// checkpointExt mirrors the server's checkpoint file suffix (<id>.tkcm).
const checkpointExt = ".tkcm"

// TenantReport is one tenant's successful audit.
type TenantReport struct {
	Tenant string
	// DurableThrough is the provable restore bound: every tick 1..S is
	// recoverable from the checkpoint plus the verified WAL.
	DurableThrough uint64
	HasCheckpoint  bool
	CheckpointSeq  uint64
	WAL            *wal.VerifyReport
}

// Result pairs a tenant with its audit outcome; Err is nil on a clean pass.
type Result struct {
	Tenant string
	Report *TenantReport
	Err    error
}

// Tenant audits one tenant. ckDir and walRoot are the server's
// -checkpoint-dir and -wal-dir; either may be "" when that subsystem is not
// configured. key verifies the WAL's HMACs (nil = integrity only).
func Tenant(ckDir, walRoot, tenant string, key []byte) (*TenantReport, error) {
	rep := &TenantReport{Tenant: tenant}
	if ckDir != "" {
		path := filepath.Join(ckDir, tenant+checkpointExt)
		f, err := os.Open(path)
		switch {
		case os.IsNotExist(err):
			// No checkpoint yet — fine as long as the WAL is whole from seq 1.
		case err != nil:
			return nil, fmt.Errorf("checkpoint %s: %v", path, err)
		default:
			eng, rerr := core.RestoreEngine(f)
			f.Close()
			if rerr != nil {
				return nil, fmt.Errorf("checkpoint %s: %v", path, rerr)
			}
			rep.HasCheckpoint = true
			rep.CheckpointSeq = eng.Seq()
		}
	}
	wrep := &wal.VerifyReport{Tenant: tenant}
	if walRoot != "" {
		var err error
		wrep, err = wal.VerifyTenant(filepath.Join(walRoot, tenant), key)
		if err != nil {
			return nil, err
		}
	}
	rep.WAL = wrep
	// Cross-coverage: every sequence range the WAL no longer holds must be
	// inside the checkpoint, or the history has a hole no restore can fill.
	if wrep.Retired > rep.CheckpointSeq {
		return nil, fmt.Errorf("records 1..%d were truncated from the WAL but the checkpoint covers only seq %d",
			wrep.Retired, rep.CheckpointSeq)
	}
	for _, g := range wrep.Gaps {
		if g.To > rep.CheckpointSeq {
			return nil, fmt.Errorf("records %d..%d are in no checkpoint and missing from the WAL", g.From, g.To)
		}
	}
	rep.DurableThrough = wrep.DurableThrough
	if rep.CheckpointSeq > rep.DurableThrough {
		rep.DurableThrough = rep.CheckpointSeq
	}
	return rep, nil
}

// All audits every tenant found in either directory, sorted by tenant id.
func All(ckDir, walRoot string, key []byte) ([]Result, error) {
	ids := map[string]bool{}
	if ckDir != "" {
		entries, err := os.ReadDir(ckDir)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("audit: %w", err)
		}
		for _, ent := range entries {
			name := ent.Name()
			if !ent.IsDir() && strings.HasSuffix(name, checkpointExt) {
				ids[strings.TrimSuffix(name, checkpointExt)] = true
			}
		}
	}
	if walRoot != "" {
		entries, err := os.ReadDir(walRoot)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("audit: %w", err)
		}
		for _, ent := range entries {
			if ent.IsDir() {
				ids[ent.Name()] = true
			}
		}
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	results := make([]Result, 0, len(sorted))
	for _, id := range sorted {
		rep, err := Tenant(ckDir, walRoot, id, key)
		results = append(results, Result{Tenant: id, Report: rep, Err: err})
	}
	return results, nil
}
