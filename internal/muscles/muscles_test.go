package muscles

import (
	"math"
	"testing"

	"tkcm/internal/stats"
)

func TestNewTrackerValidation(t *testing.T) {
	cases := []Config{
		{P: 0, Lambda: 1},
		{P: 6, Lambda: 0},
		{P: 6, Lambda: 1.5},
	}
	for i, cfg := range cases {
		if _, err := NewTracker(cfg, 3, 0); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
	if _, err := NewTracker(DefaultConfig(), 3, 3); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, err := NewTracker(DefaultConfig(), 3, -1); err == nil {
		t.Error("negative target accepted")
	}
}

func TestStepWidthMismatchPanics(t *testing.T) {
	tr, err := NewTracker(DefaultConfig(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch accepted")
		}
	}()
	tr.Step([]float64{1})
}

// TestLearnsLinearRelation: with the target an exact linear function of the
// co-evolving streams, MUSCLES must recover missing values near-exactly —
// the regime it is designed for.
func TestLearnsLinearRelation(t *testing.T) {
	const n = 1200
	data := make([][]float64, n)
	var truth []float64
	for i := 0; i < n; i++ {
		a := math.Sin(2 * math.Pi * float64(i) / 97)
		b := math.Cos(2 * math.Pi * float64(i) / 61)
		s := 2*a - 0.5*b + 1
		row := []float64{s, a, b}
		if i >= 900 && i < 960 {
			truth = append(truth, s)
			row[0] = math.NaN()
		}
		data[i] = row
	}
	out, err := Recover(DefaultConfig(), data, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := out[900:960]
	if rmse := stats.RMSE(truth, rec); rmse > 0.01 {
		t.Fatalf("RMSE on exact linear relation = %v, want ≈ 0", rmse)
	}
}

// TestDegradesOnShiftedStreams: with phase-shifted references and an
// unpredictable amplitude modulation (so neither AR extrapolation nor the
// linear combination of shifted references can track the target), MUSCLES
// must degrade clearly relative to the same modulation with in-phase
// references — the weakness the TKCM paper exploits. (With a *noiseless
// deterministic* signal an AR(6) model is exact, so the test must inject
// unpredictability to be meaningful.)
func TestDegradesOnShiftedStreams(t *testing.T) {
	const n = 1500
	shape := func(x float64) float64 {
		return math.Sin(x) + 0.5*math.Sin(2*x+0.7) + 0.3*math.Sin(3*x+1.3)
	}
	run := func(shift1, shift2 float64) float64 {
		// Slow unpredictable amplitude modulation shared by all streams,
		// each stream seeing it at its own phase shift.
		state := uint64(11)
		next := func() float64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return float64(state%2000)/1000 - 1
		}
		mod := make([]float64, n+600)
		level := 1.0
		for i := range mod {
			if i%24 == 0 {
				level += 0.12 * next()
				if level < 0.4 {
					level = 0.4
				}
				if level > 1.6 {
					level = 1.6
				}
			}
			mod[i] = level
		}
		at := func(i int, shift float64) float64 {
			ph := 2 * math.Pi * float64(i) / 288
			lag := int(shift * 288 / (2 * math.Pi))
			return mod[i+300-lag] * shape(ph-shift)
		}
		data := make([][]float64, n)
		var truth []float64
		for i := 0; i < n; i++ {
			s := at(i, 0)
			row := []float64{s, at(i, shift1), at(i, shift2)}
			if i >= 1100 && i < 1388 {
				truth = append(truth, s)
				row[0] = math.NaN()
			}
			data[i] = row
		}
		out, err := Recover(DefaultConfig(), data, 0)
		if err != nil {
			t.Fatal(err)
		}
		rmse := stats.RMSE(truth, out[1100:1388])
		if math.IsNaN(rmse) || math.IsInf(rmse, 0) {
			t.Fatalf("RMSE = %v; recovery must stay finite", rmse)
		}
		return rmse
	}
	inPhase := run(0, 0)      // references identical to the target
	shifted := run(-1.9, 2.4) // references phase shifted
	if shifted < 3*inPhase {
		t.Fatalf("shifted RMSE %v not clearly worse than in-phase RMSE %v", shifted, inPhase)
	}
}

// TestClampPreventsRunaway: a pathological long gap must not diverge —
// every imputed value stays within the widened observed range.
func TestClampPreventsRunaway(t *testing.T) {
	const n = 3000
	data := make([][]float64, n)
	for i := 0; i < n; i++ {
		v := math.Sin(float64(i) / 10)
		row := []float64{v, math.Sin(float64(i)/10 + 2), math.Cos(float64(i) / 7)}
		if i >= 500 { // 83% of the stream missing
			row[0] = math.NaN()
		}
		data[i] = row
	}
	out, err := Recover(DefaultConfig(), data, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 10 {
			t.Fatalf("tick %d: imputation %v escaped the clamp", i, v)
		}
	}
}

func TestPassThroughWhenPresent(t *testing.T) {
	tr, err := NewTracker(DefaultConfig(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		v := float64(i)
		got := tr.Step([]float64{v, v * 2})
		if got != v {
			t.Fatalf("tick %d: present value altered: %v", i, got)
		}
	}
}

func TestColdStartCarriesForward(t *testing.T) {
	tr, err := NewTracker(Config{P: 4, Lambda: 1, Delta: 1e4}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Step([]float64{7, 1})
	got := tr.Step([]float64{math.NaN(), 2})
	if got != 7 {
		t.Fatalf("cold-start fill = %v, want carry-forward 7", got)
	}
}

func TestMissingReferencePatched(t *testing.T) {
	// Missing non-target values must not poison the tracker.
	tr, err := NewTracker(Config{P: 3, Lambda: 1, Delta: 1e4}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		row := []float64{float64(i), float64(2 * i)}
		if i%5 == 0 {
			row[1] = math.NaN()
		}
		got := tr.Step(row)
		if math.IsNaN(got) {
			t.Fatalf("tick %d produced NaN", i)
		}
	}
}

func TestRecoverEmpty(t *testing.T) {
	out, err := Recover(DefaultConfig(), nil, 0)
	if err != nil || out != nil {
		t.Fatalf("empty recover = %v, %v", out, err)
	}
}
