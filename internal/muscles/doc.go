// Package muscles implements the MUSCLES baseline (Yi et al., ICDE 2000):
// online imputation of a missing stream value via multivariate
// autoregression whose coefficients are tracked with Recursive Least
// Squares under an exponential forgetting factor λ.
//
// The estimate for the incomplete stream s at time t uses, as regressors,
// the most recent p values of s itself and the values of every co-evolving
// stream within the same tracking window p (the paper's Sec. 2 description).
// After p consecutive missing values the model necessarily feeds on its own
// imputations, which is the error-accumulation weakness the TKCM paper
// exploits in the comparison (Sec. 7.3.3).
//
// Following the TKCM paper's experimental setup (Sec. 7.1): tracking window
// p = 6 and forgetting factor λ = 1.
package muscles
