package muscles

import (
	"fmt"
	"math"

	"tkcm/internal/linalg"
)

// Config parameterizes a MUSCLES tracker.
type Config struct {
	// P is the tracking window: how many past ticks of each stream feed the
	// regression (paper setting: 6).
	P int
	// Lambda is the exponential forgetting factor (paper setting: 1).
	Lambda float64
	// Delta scales the RLS prior P₀ = Delta·I (uninformative prior).
	Delta float64
}

// DefaultConfig returns the settings used in the TKCM paper's evaluation.
func DefaultConfig() Config { return Config{P: 6, Lambda: 1, Delta: 1e4} }

// Tracker imputes one target stream from n co-evolving streams.
type Tracker struct {
	cfg     Config
	target  int
	width   int
	dim     int
	rls     *linalg.RLS
	history [][]float64 // history[i] = last P values of stream i, newest last
	warm    int
	// Running range of the *observed* target values; imputations are
	// clamped to a widened version of it. Without the clamp, the
	// imputed-feedback loop can diverge numerically on long gaps (the
	// error-accumulation problem Sec. 2 describes), which would turn a
	// qualitative weakness into a float overflow.
	obsLo, obsHi float64
	obsSeen      bool
}

// NewTracker creates a tracker for the stream at index target among width
// co-evolving streams.
func NewTracker(cfg Config, width, target int) (*Tracker, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("muscles: tracking window p must be positive, got %d", cfg.P)
	}
	if cfg.Lambda <= 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("muscles: forgetting factor λ must be in (0,1], got %g", cfg.Lambda)
	}
	if target < 0 || target >= width {
		return nil, fmt.Errorf("muscles: target %d out of range [0,%d)", target, width)
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 1e4
	}
	// Features: bias + p lags of the target + (p-1 lags + current) of every
	// other stream.
	dim := 1 + cfg.P + (width-1)*cfg.P
	t := &Tracker{
		cfg:    cfg,
		target: target,
		width:  width,
		dim:    dim,
		rls:    linalg.NewRLS(dim, cfg.Lambda, cfg.Delta),
	}
	t.history = make([][]float64, width)
	for i := range t.history {
		t.history[i] = make([]float64, 0, cfg.P)
	}
	return t, nil
}

// features assembles the regression vector for the current tick. current
// holds the values of all streams at this tick; the target's entry is
// ignored (it is the value being predicted).
func (t *Tracker) features(current []float64) []float64 {
	x := make([]float64, 0, t.dim)
	x = append(x, 1) // bias
	// p most recent past values of the target (newest first).
	h := t.history[t.target]
	for lag := 1; lag <= t.cfg.P; lag++ {
		x = append(x, h[len(h)-lag])
	}
	// For every other stream: current value + p−1 most recent past values.
	for i := 0; i < t.width; i++ {
		if i == t.target {
			continue
		}
		x = append(x, current[i])
		hi := t.history[i]
		for lag := 1; lag <= t.cfg.P-1; lag++ {
			x = append(x, hi[len(hi)-lag])
		}
	}
	return x
}

// Step consumes one tick. current holds all stream values at this tick; the
// target entry may be NaN (missing). Other streams' missing values are
// filled with their most recent known value before use. Step returns the
// target's value for this tick: the observation when present, otherwise the
// model's imputation. The returned value is also what the model trains on
// when the observation is missing — the error-feedback loop characteristic
// of MUSCLES.
func (t *Tracker) Step(current []float64) float64 {
	if len(current) != t.width {
		panic(fmt.Sprintf("muscles: row width %d != %d", len(current), t.width))
	}
	row := make([]float64, t.width)
	copy(row, current)
	// Patch missing non-target values with last known.
	for i := range row {
		if i == t.target {
			continue
		}
		if math.IsNaN(row[i]) {
			row[i] = t.lastKnown(i)
		}
	}
	if v := row[t.target]; !math.IsNaN(v) {
		if !t.obsSeen || v < t.obsLo {
			t.obsLo = v
		}
		if !t.obsSeen || v > t.obsHi {
			t.obsHi = v
		}
		t.obsSeen = true
	}
	var out float64
	if t.warm < t.cfg.P {
		// Not enough lags yet: pass through, or carry forward when missing.
		out = row[t.target]
		if math.IsNaN(out) {
			out = t.lastKnown(t.target)
		}
	} else {
		x := t.features(row)
		pred := t.clamp(t.rls.Predict(x))
		if math.IsNaN(row[t.target]) {
			out = pred
		} else {
			out = row[t.target]
		}
		// Train on the (possibly imputed) value.
		t.rls.Update(x, out)
	}
	if math.IsNaN(out) {
		out = 0
	}
	// Push into history.
	for i := range t.history {
		v := row[i]
		if i == t.target {
			v = out
		}
		if math.IsNaN(v) {
			v = 0
		}
		t.history[i] = append(t.history[i], v)
		if len(t.history[i]) > t.cfg.P {
			t.history[i] = t.history[i][1:]
		}
	}
	t.warm++
	return out
}

// clamp bounds a prediction to the observed target range widened by half its
// span on each side, preventing numeric runaway during long imputed-feedback
// stretches.
func (t *Tracker) clamp(v float64) float64 {
	if !t.obsSeen || math.IsNaN(v) {
		return v
	}
	span := t.obsHi - t.obsLo
	if span == 0 {
		span = math.Abs(t.obsHi)
		if span == 0 {
			span = 1
		}
	}
	lo, hi := t.obsLo-span/2, t.obsHi+span/2
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// lastKnown returns the most recent non-NaN value in stream i's history,
// or 0 if none exists.
func (t *Tracker) lastKnown(i int) float64 {
	h := t.history[i]
	for j := len(h) - 1; j >= 0; j-- {
		if !math.IsNaN(h[j]) {
			return h[j]
		}
	}
	return 0
}

// Recover imputes the missing values of the target column of data (rows =
// ticks, one column per stream; NaN = missing) by streaming through it.
// It returns the completed target series. This is the batch driver used by
// the experiment harness.
func Recover(cfg Config, data [][]float64, target int) ([]float64, error) {
	if len(data) == 0 {
		return nil, nil
	}
	tr, err := NewTracker(cfg, len(data[0]), target)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(data))
	for i, row := range data {
		out[i] = tr.Step(row)
	}
	return out, nil
}
