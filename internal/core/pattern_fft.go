package core

import (
	"math"

	"tkcm/internal/fft"
)

// dissimilarityProfileFFT computes the L2 dissimilarity profile of
// dissimilarityProfile in O(d · L · log L) instead of O(d · l · L),
// implementing the paper's Sec. 8 future-work direction of speeding up the
// pattern extraction phase. It decomposes each per-reference contribution
//
//	Σ_x (r[j+x] − q[x])² = E_r[j] + E_q − 2·(r ⋆ q)[j]
//
// into the sliding window energy E_r (prefix sums of squares), the constant
// query energy E_q, and a cross-correlation computed via FFT. The result is
// mathematically identical to the naive profile; floating-point rounding of
// the FFT path differs in the last few ulps, which is why exact tie
// resolution in the DP may occasionally pick a different but equally good
// anchor set.
func dissimilarityProfileFFT(refs [][]float64, l int, dst []float64) []float64 {
	refs, filled := trimToNewest(refs)
	nCand := filled - 2*l + 1
	if nCand < 0 {
		nCand = 0
	}
	if dst == nil {
		dst = make([]float64, nCand)
	}
	dst = dst[:nCand]
	for j := range dst {
		dst[j] = 0
	}
	qStart := filled - l
	for _, r := range refs {
		q := r[qStart:]
		// Query energy.
		eq := 0.0
		for _, v := range q {
			eq += v * v
		}
		// Sliding window energies via prefix sums of squares.
		prefix := make([]float64, filled+1)
		for i, v := range r {
			prefix[i+1] = prefix[i] + v*v
		}
		// Sliding dot products via FFT. Only the first nCand lags are
		// needed, but the correlation yields all filled−l+1 of them.
		cross := fft.CrossCorrelate(r, q)
		for j := 0; j < nCand; j++ {
			er := prefix[j+l] - prefix[j]
			contrib := er + eq - 2*cross[j]
			if contrib < 0 {
				contrib = 0 // guard FFT rounding below zero
			}
			dst[j] += contrib
		}
	}
	for j := range dst {
		dst[j] = math.Sqrt(dst[j])
	}
	return dst
}
