package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"tkcm/internal/window"
)

// TestImputeWindowEquivalence: on random data, the ring-buffer streaming
// form (ImputeWindow) and the slice form (Impute) must produce identical
// results — including after the window has wrapped, which exercises the
// modular index arithmetic of Algorithm 1.
func TestImputeWindowEquivalence(t *testing.T) {
	f := func(seed int64, extraRaw uint8) bool {
		const L = 60
		cfg := Config{K: 3, PatternLength: 4, D: 2, WindowLength: L, Norm: L2, Selection: SelectDP}
		extra := int(extraRaw)%100 + 1 // force wrap-around by over-filling

		data := randomRefs(seed, 3, L+extra) // row 0 = s, rows 1-2 = refs
		w := window.New(L, "s", "r1", "r2")
		for i := 0; i < L+extra; i++ {
			w.Advance([]float64{data[0][i], data[1][i], data[2][i]})
		}
		// Mark the newest value of s missing in both forms.
		w.SetCurrent(0, math.NaN())
		lo := extra
		s := append([]float64(nil), data[0][lo:]...)
		s[len(s)-1] = math.NaN()
		refs := [][]float64{data[1][lo:], data[2][lo:]}

		sliceRes, err1 := Impute(cfg, s, refs)
		winRes, err2 := ImputeWindow(cfg, w, 0, []int{1, 2})
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if sliceRes.Value != winRes.Value || sliceRes.Epsilon != winRes.Epsilon {
			return false
		}
		if len(sliceRes.Anchors) != len(winRes.Anchors) {
			return false
		}
		for i := range sliceRes.Anchors {
			if sliceRes.Anchors[i] != winRes.Anchors[i] {
				return false
			}
		}
		// The window must now hold the imputed value at tn.
		return w.Current(0) == sliceRes.Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestImputeWindowAllNorms runs the equivalence across every norm once.
func TestImputeWindowAllNorms(t *testing.T) {
	for _, norm := range []Norm{L2, L1, LInf} {
		const L = 40
		cfg := Config{K: 2, PatternLength: 3, D: 2, WindowLength: L, Norm: norm, Selection: SelectDP}
		data := randomRefs(7, 3, L+13)
		w := window.New(L, "s", "r1", "r2")
		for i := range data[0] {
			w.Advance([]float64{data[0][i], data[1][i], data[2][i]})
		}
		w.SetCurrent(0, math.NaN())
		s := append([]float64(nil), data[0][13:]...)
		s[len(s)-1] = math.NaN()
		sliceRes, err := Impute(cfg, s, [][]float64{data[1][13:], data[2][13:]})
		if err != nil {
			t.Fatalf("%v slice: %v", norm, err)
		}
		winRes, err := ImputeWindow(cfg, w, 0, []int{1, 2})
		if err != nil {
			t.Fatalf("%v window: %v", norm, err)
		}
		if sliceRes.Value != winRes.Value {
			t.Fatalf("%v: slice %v != window %v", norm, sliceRes.Value, winRes.Value)
		}
	}
}

// TestEngineWindowAlwaysComplete: after every tick, the retained window has
// no missing values — the core invariant of continuous imputation (Sec. 3).
func TestEngineWindowAlwaysComplete(t *testing.T) {
	f := func(missMask uint64) bool {
		const period = 48
		cfg := Config{K: 2, PatternLength: 6, D: 1, WindowLength: 2 * period, Norm: L2}
		eng, err := NewEngine(cfg, []string{"s", "r"}, map[string]ReferenceSet{
			"s": {Stream: "s", Candidates: []string{"r"}},
		})
		if err != nil {
			return false
		}
		for i := 0; i < 4*period; i++ {
			ph := 2 * math.Pi * float64(i) / period
			sv := math.Sin(ph)
			if i >= 64 && missMask&(1<<(uint(i)%64)) != 0 {
				sv = math.NaN()
			}
			if _, _, err := eng.Tick([]float64{sv, math.Cos(ph)}); err != nil {
				return false
			}
			w := eng.Window()
			for j := 0; j < w.Width(); j++ {
				if w.Stream(j).CountMissing() != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineReferenceFailureInjection: when every candidate reference is
// missing at the same tick as the target, the engine must fall back to a
// cold fill rather than failing or leaving a hole.
func TestEngineReferenceFailureInjection(t *testing.T) {
	const period = 48
	cfg := Config{K: 2, PatternLength: 6, D: 1, WindowLength: 2 * period, Norm: L2}
	eng, err := NewEngine(cfg, []string{"s", "r"}, map[string]ReferenceSet{
		"s": {Stream: "s", Candidates: []string{"r"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*period; i++ {
		ph := 2 * math.Pi * float64(i) / period
		row := []float64{math.Sin(ph), math.Cos(ph)}
		if i == 3*period-1 {
			row[0] = math.NaN()
			row[1] = math.NaN() // the reference fails simultaneously
		}
		out, results, err := eng.Tick(row)
		if err != nil {
			t.Fatal(err)
		}
		if i == 3*period-1 {
			if results[0] != nil {
				t.Fatal("TKCM ran without a usable reference")
			}
			if math.IsNaN(out[0]) {
				t.Fatal("missing value left unfilled")
			}
		}
	}
	if eng.Stats.ReferenceErrors == 0 {
		t.Fatal("reference failure not counted")
	}
	// The reference stream itself is never imputed by TKCM (it has no
	// reference set entry and auto-ranking needs the target present), but
	// the window must still be complete.
	if eng.Window().Stream(1).CountMissing() != 0 {
		t.Fatal("reference hole left in the window")
	}
}

// wideScenario streams a randomized wide/sparse missing pattern through a
// set of identically fed engines and returns, per engine, the imputed value
// of every (tick, stream) that was missing, in a fixed order. The first half
// of the streams are targets that may go missing; the second half is an
// always-present reference pool, so reference values never depend on
// same-tick imputation order and serial vs parallel ticks are exactly
// comparable.
func wideScenario(t *testing.T, cfgs []Config, labels []string, seed uint64) [][]float64 {
	t.Helper()
	const (
		width   = 12
		targets = width / 2
		period  = 48
		n       = 7 * period
	)
	names := make([]string, width)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	refs := make(map[string]ReferenceSet, targets)
	for i := 0; i < targets; i++ {
		// Overlapping reference sets drawn from the always-present pool, so
		// the per-tick contribution cache sees shared reference streams.
		refs[names[i]] = ReferenceSet{Stream: names[i], Candidates: []string{
			names[targets+i%(width-targets)],
			names[targets+(i+2)%(width-targets)],
			names[targets+(i+4)%(width-targets)],
		}}
	}
	engines := make([]*Engine, len(cfgs))
	for x, cfg := range cfgs {
		eng, err := NewEngine(cfg, names, cloneRefs(refs))
		if err != nil {
			t.Fatalf("%s: %v", labels[x], err)
		}
		defer eng.Close()
		engines[x] = eng
	}
	imputed := make([][]float64, len(engines))
	state := seed*6364136223846793005 + 1442695040888963407
	rnd := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	row := make([]float64, width)
	for tick := 0; tick < n; tick++ {
		ph := 2 * math.Pi * float64(tick) / period
		for j := range row {
			row[j] = math.Sin(ph+0.37*float64(j)) + 0.2*math.Cos(2*ph+float64(j)) +
				float64(rnd()%1000)/12000
		}
		if tick > 4*period {
			// Sparse randomized losses: each target independently missing
			// with probability 1/4, occasionally a wide burst losing every
			// target at once.
			burst := rnd()%23 == 0
			for j := 0; j < targets; j++ {
				if burst || rnd()%4 == 0 {
					row[j] = math.NaN()
				}
			}
		}
		for x, eng := range engines {
			rowCopy := append([]float64(nil), row...)
			out, _, err := eng.Tick(rowCopy)
			if err != nil {
				t.Fatalf("%s tick %d: %v", labels[x], tick, err)
			}
			for j := 0; j < targets; j++ {
				if math.IsNaN(row[j]) {
					imputed[x] = append(imputed[x], out[j])
				}
			}
		}
	}
	if len(imputed[0]) == 0 {
		t.Fatal("scenario produced no imputations")
	}
	for x := 1; x < len(engines); x++ {
		if engines[x].Stats.Imputations != engines[0].Stats.Imputations {
			t.Fatalf("%s performed %d imputations, %s performed %d",
				labels[x], engines[x].Stats.Imputations, labels[0], engines[0].Stats.Imputations)
		}
	}
	return imputed
}

func cloneRefs(refs map[string]ReferenceSet) map[string]ReferenceSet {
	out := make(map[string]ReferenceSet, len(refs))
	for k, v := range refs {
		out[k] = v
	}
	return out
}

// TestEngineLazyEagerNaiveEquivalence: on randomized wide/sparse missing
// patterns, the demand-driven incremental engine, the eager incremental
// engine (PR 1 behavior), and the naive-profiler engine must produce
// identical imputations within 1e-6 — the end-to-end guarantee of the lazy
// catch-up refactor.
func TestEngineLazyEagerNaiveEquivalence(t *testing.T) {
	base := Config{K: 3, PatternLength: 7, D: 2, WindowLength: 3 * 48, Norm: L2}
	lazy := base
	lazy.Profiler = ProfilerIncremental
	eager := lazy
	eager.EagerProfiler = true
	naive := base
	naive.Profiler = ProfilerNaive
	f := func(seed uint64) bool {
		vals := wideScenario(t, []Config{naive, eager, lazy}, []string{"naive", "eager", "lazy"}, seed)
		for x := 1; x < len(vals); x++ {
			if len(vals[x]) != len(vals[0]) {
				return false
			}
			for i := range vals[0] {
				if math.Abs(vals[x][i]-vals[0][i]) > 1e-6 {
					return false
				}
			}
		}
		// Lazy and eager run the same arithmetic (modulo rebuild points) and
		// must agree with each other especially tightly.
		for i := range vals[1] {
			if math.Abs(vals[2][i]-vals[1][i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineSerialPoolEquivalence: ticks fanned out across the persistent
// worker pool must impute exactly what the serial tick imputes whenever no
// target references another same-tick-missing stream (guaranteed here by
// the always-present reference pool).
func TestEngineSerialPoolEquivalence(t *testing.T) {
	base := Config{K: 3, PatternLength: 7, D: 2, WindowLength: 3 * 48, Norm: L2, Profiler: ProfilerIncremental}
	pool := base
	pool.Workers = 4
	poolLean := pool
	poolLean.SkipDiagnostics = true
	f := func(seed uint64) bool {
		vals := wideScenario(t, []Config{base, pool, poolLean}, []string{"serial", "pool", "pool-lean"}, seed)
		for x := 1; x < len(vals); x++ {
			if len(vals[x]) != len(vals[0]) {
				return false
			}
			for i := range vals[0] {
				if vals[x][i] != vals[0][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineLongBlockFeedback: a multi-day gap is imputed tick by tick with
// earlier imputations feeding later ones; the error must stay bounded on
// periodic data (resilience to consecutively missing values, Sec. 7.3.2).
func TestEngineLongBlockFeedback(t *testing.T) {
	const period = 96
	const n = 8 * period
	cfg := Config{K: 3, PatternLength: 12, D: 2, WindowLength: 4 * period, Norm: L2}
	eng, err := NewEngine(cfg, []string{"s", "r1", "r2"}, map[string]ReferenceSet{
		"s": {Stream: "s", Candidates: []string{"r1", "r2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	blockFrom := n - 2*period // the last two periods are one long gap
	worst := 0.0
	for i := 0; i < n; i++ {
		ph := 2 * math.Pi * float64(i) / period
		truth := math.Sin(ph) + 0.3*math.Sin(3*ph)
		row := []float64{truth, math.Sin(ph - 1.1), math.Cos(ph + 0.4)}
		if i >= blockFrom {
			row[0] = math.NaN()
		}
		out, _, err := eng.Tick(row)
		if err != nil {
			t.Fatal(err)
		}
		if i >= blockFrom {
			if e := math.Abs(out[0] - truth); e > worst {
				worst = e
			}
		}
	}
	if worst > 1e-6 {
		t.Fatalf("worst error %v across a 2-period gap on noiseless data", worst)
	}
}
