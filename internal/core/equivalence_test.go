package core

import (
	"math"
	"testing"
	"testing/quick"

	"tkcm/internal/window"
)

// TestImputeWindowEquivalence: on random data, the ring-buffer streaming
// form (ImputeWindow) and the slice form (Impute) must produce identical
// results — including after the window has wrapped, which exercises the
// modular index arithmetic of Algorithm 1.
func TestImputeWindowEquivalence(t *testing.T) {
	f := func(seed int64, extraRaw uint8) bool {
		const L = 60
		cfg := Config{K: 3, PatternLength: 4, D: 2, WindowLength: L, Norm: L2, Selection: SelectDP}
		extra := int(extraRaw)%100 + 1 // force wrap-around by over-filling

		data := randomRefs(seed, 3, L+extra) // row 0 = s, rows 1-2 = refs
		w := window.New(L, "s", "r1", "r2")
		for i := 0; i < L+extra; i++ {
			w.Advance([]float64{data[0][i], data[1][i], data[2][i]})
		}
		// Mark the newest value of s missing in both forms.
		w.SetCurrent(0, math.NaN())
		lo := extra
		s := append([]float64(nil), data[0][lo:]...)
		s[len(s)-1] = math.NaN()
		refs := [][]float64{data[1][lo:], data[2][lo:]}

		sliceRes, err1 := Impute(cfg, s, refs)
		winRes, err2 := ImputeWindow(cfg, w, 0, []int{1, 2})
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if sliceRes.Value != winRes.Value || sliceRes.Epsilon != winRes.Epsilon {
			return false
		}
		if len(sliceRes.Anchors) != len(winRes.Anchors) {
			return false
		}
		for i := range sliceRes.Anchors {
			if sliceRes.Anchors[i] != winRes.Anchors[i] {
				return false
			}
		}
		// The window must now hold the imputed value at tn.
		return w.Current(0) == sliceRes.Value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestImputeWindowAllNorms runs the equivalence across every norm once.
func TestImputeWindowAllNorms(t *testing.T) {
	for _, norm := range []Norm{L2, L1, LInf} {
		const L = 40
		cfg := Config{K: 2, PatternLength: 3, D: 2, WindowLength: L, Norm: norm, Selection: SelectDP}
		data := randomRefs(7, 3, L+13)
		w := window.New(L, "s", "r1", "r2")
		for i := range data[0] {
			w.Advance([]float64{data[0][i], data[1][i], data[2][i]})
		}
		w.SetCurrent(0, math.NaN())
		s := append([]float64(nil), data[0][13:]...)
		s[len(s)-1] = math.NaN()
		sliceRes, err := Impute(cfg, s, [][]float64{data[1][13:], data[2][13:]})
		if err != nil {
			t.Fatalf("%v slice: %v", norm, err)
		}
		winRes, err := ImputeWindow(cfg, w, 0, []int{1, 2})
		if err != nil {
			t.Fatalf("%v window: %v", norm, err)
		}
		if sliceRes.Value != winRes.Value {
			t.Fatalf("%v: slice %v != window %v", norm, sliceRes.Value, winRes.Value)
		}
	}
}

// TestEngineWindowAlwaysComplete: after every tick, the retained window has
// no missing values — the core invariant of continuous imputation (Sec. 3).
func TestEngineWindowAlwaysComplete(t *testing.T) {
	f := func(missMask uint64) bool {
		const period = 48
		cfg := Config{K: 2, PatternLength: 6, D: 1, WindowLength: 2 * period, Norm: L2}
		eng, err := NewEngine(cfg, []string{"s", "r"}, map[string]ReferenceSet{
			"s": {Stream: "s", Candidates: []string{"r"}},
		})
		if err != nil {
			return false
		}
		for i := 0; i < 4*period; i++ {
			ph := 2 * math.Pi * float64(i) / period
			sv := math.Sin(ph)
			if i >= 64 && missMask&(1<<(uint(i)%64)) != 0 {
				sv = math.NaN()
			}
			if _, _, err := eng.Tick([]float64{sv, math.Cos(ph)}); err != nil {
				return false
			}
			w := eng.Window()
			for j := 0; j < w.Width(); j++ {
				if w.Stream(j).CountMissing() != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineReferenceFailureInjection: when every candidate reference is
// missing at the same tick as the target, the engine must fall back to a
// cold fill rather than failing or leaving a hole.
func TestEngineReferenceFailureInjection(t *testing.T) {
	const period = 48
	cfg := Config{K: 2, PatternLength: 6, D: 1, WindowLength: 2 * period, Norm: L2}
	eng, err := NewEngine(cfg, []string{"s", "r"}, map[string]ReferenceSet{
		"s": {Stream: "s", Candidates: []string{"r"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*period; i++ {
		ph := 2 * math.Pi * float64(i) / period
		row := []float64{math.Sin(ph), math.Cos(ph)}
		if i == 3*period-1 {
			row[0] = math.NaN()
			row[1] = math.NaN() // the reference fails simultaneously
		}
		out, results, err := eng.Tick(row)
		if err != nil {
			t.Fatal(err)
		}
		if i == 3*period-1 {
			if results[0] != nil {
				t.Fatal("TKCM ran without a usable reference")
			}
			if math.IsNaN(out[0]) {
				t.Fatal("missing value left unfilled")
			}
		}
	}
	if eng.Stats.ReferenceErrors == 0 {
		t.Fatal("reference failure not counted")
	}
	// The reference stream itself is never imputed by TKCM (it has no
	// reference set entry and auto-ranking needs the target present), but
	// the window must still be complete.
	if eng.Window().Stream(1).CountMissing() != 0 {
		t.Fatal("reference hole left in the window")
	}
}

// TestEngineLongBlockFeedback: a multi-day gap is imputed tick by tick with
// earlier imputations feeding later ones; the error must stay bounded on
// periodic data (resilience to consecutively missing values, Sec. 7.3.2).
func TestEngineLongBlockFeedback(t *testing.T) {
	const period = 96
	const n = 8 * period
	cfg := Config{K: 3, PatternLength: 12, D: 2, WindowLength: 4 * period, Norm: L2}
	eng, err := NewEngine(cfg, []string{"s", "r1", "r2"}, map[string]ReferenceSet{
		"s": {Stream: "s", Candidates: []string{"r1", "r2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	blockFrom := n - 2*period // the last two periods are one long gap
	worst := 0.0
	for i := 0; i < n; i++ {
		ph := 2 * math.Pi * float64(i) / period
		truth := math.Sin(ph) + 0.3*math.Sin(3*ph)
		row := []float64{truth, math.Sin(ph - 1.1), math.Cos(ph + 0.4)}
		if i >= blockFrom {
			row[0] = math.NaN()
		}
		out, _, err := eng.Tick(row)
		if err != nil {
			t.Fatal(err)
		}
		if i >= blockFrom {
			if e := math.Abs(out[0] - truth); e > worst {
				worst = e
			}
		}
	}
	if worst > 1e-6 {
		t.Fatalf("worst error %v across a 2-period gap on noiseless data", worst)
	}
}
