package core

import (
	"math"
	"slices"
	"sort"
)

// orderByDissimilarity sorts order ascending by d (index ascending on
// ties — a total order, so stability is irrelevant) without the
// reflection-closure allocations of sort.Slice.
func orderByDissimilarity(order []int, d []float64) {
	slices.SortFunc(order, func(a, b int) int {
		switch {
		case d[a] < d[b]:
			return -1
		case d[a] > d[b]:
			return 1
		default:
			return a - b
		}
	})
}

// selectScratch provides reusable storage for anchor selection so hot
// callers avoid per-imputation allocations: the flat DP table, the
// sort-order permutation of the greedy/overlapping strategies, and the
// chosen-index slice every strategy returns. The zero value is ready to use;
// buffers grow on first use and are reused afterwards. Selections performed
// with the same scratch overwrite each other's returned index slice.
type selectScratch struct {
	dp    []float64
	order []int
	idx   []int
}

// idxBuf returns a length-0, capacity-≥k index slice backed by the scratch
// (freshly allocated when sc is nil).
func (sc *selectScratch) idxBuf(k int) []int {
	if sc == nil {
		return make([]int, 0, k)
	}
	if cap(sc.idx) < k {
		sc.idx = make([]int, 0, k)
	}
	return sc.idx[:0]
}

// orderBuf returns a length-n order slice backed by the scratch.
func (sc *selectScratch) orderBuf(n int) []int {
	if sc == nil {
		return make([]int, n)
	}
	if cap(sc.order) < n {
		sc.order = make([]int, n)
	}
	return sc.order[:n]
}

// selectAnchors picks k anchors from the dissimilarity profile d (d[j] is
// the dissimilarity of the j-th candidate pattern, whose anchor sits at
// window-local index l-1+j) under the configured strategy. It returns the
// chosen candidate indices (ascending) and the sum of their dissimilarities.
// ok is false when fewer than k anchors can be selected under the strategy's
// constraints.
// sc, when non-nil, provides reusable storage for the DP table, the sort
// order, and the returned index slice (which then aliases the scratch and is
// valid until the next selection with the same scratch).
func selectAnchors(d []float64, k, l int, sel Selection, sc *selectScratch) (idx []int, sum float64, ok bool) {
	switch sel {
	case SelectGreedy:
		return selectGreedy(d, k, l, sc)
	case SelectOverlapping:
		return selectOverlapping(d, k, sc)
	default:
		return selectDPInto(d, k, l, sc)
	}
}

// selectDP implements the paper's dynamic program (Eq. 5).
//
// With candidates numbered j = 1..n (n = len(d)), M[i][j] is the minimum sum
// of dissimilarities achievable by picking i mutually non-overlapping
// patterns among the first j candidates. Two candidate patterns overlap iff
// their anchor indices differ by less than l, so picking candidate j leaves
// candidates 1..j−l available:
//
//	M[i][j] = 0                                       if i = 0
//	M[i][j] = +inf                                    if i > j
//	M[i][j] = min(M[i][j−1], D[j] + M[i−1][max(j−l,0)]) otherwise
//
// The answer is M[k][n]; backtracking recovers the chosen candidates
// (Algorithm 1, lines 8–23).
func selectDP(d []float64, k, l int) (idx []int, sum float64, ok bool) {
	return selectDPInto(d, k, l, nil)
}

// selectDPInto is selectDP with caller-provided table storage (grown in
// place and reused across calls when sc is non-nil).
func selectDPInto(d []float64, k, l int, sc *selectScratch) (idx []int, sum float64, ok bool) {
	n := len(d)
	if n == 0 || k <= 0 {
		return nil, 0, k <= 0
	}
	// M is (k+1) × (n+1), rolled out flat. M[i][j] at m[i*(n+1)+j].
	size := (k + 1) * (n + 1)
	var m []float64
	if sc != nil && cap(sc.dp) >= size {
		m = sc.dp[:size]
	} else {
		m = make([]float64, size)
		if sc != nil {
			sc.dp = m
		}
	}
	row := n + 1
	for j := 0; j <= n; j++ {
		m[0*row+j] = 0
	}
	for i := 1; i <= k; i++ {
		for j := 0; j <= n; j++ {
			if i > j {
				m[i*row+j] = math.Inf(1)
				continue
			}
			skip := m[i*row+j-1]
			prev := j - l
			if prev < 0 {
				prev = 0
			}
			take := d[j-1] + m[(i-1)*row+prev]
			if take < skip {
				m[i*row+j] = take
			} else {
				m[i*row+j] = skip
			}
		}
	}
	sum = m[k*row+n]
	if math.IsInf(sum, 1) {
		return nil, 0, false
	}
	// Backtrack.
	idx = sc.idxBuf(k)
	i, j := k, n
	for i > 0 {
		if j > i && m[i*row+j] == m[i*row+j-1] {
			j--
			continue
		}
		idx = append(idx, j-1) // 0-based candidate index
		i--
		j -= l
		if j < 0 {
			j = 0
		}
	}
	// Reverse to ascending order.
	for a, b := 0, len(idx)-1; a < b; a, b = a+1, b-1 {
		idx[a], idx[b] = idx[b], idx[a]
	}
	return idx, sum, true
}

// selectGreedy sorts candidates by dissimilarity and keeps the first k that
// do not overlap any already-kept candidate. Sec. 6.1 notes this fails to
// minimize the total dissimilarity; it exists for the ablation bench.
func selectGreedy(d []float64, k, l int, sc *selectScratch) (idx []int, sum float64, ok bool) {
	order := sc.orderBuf(len(d))
	for i := range order {
		order[i] = i
	}
	orderByDissimilarity(order, d)
	idx = sc.idxBuf(k)
	for _, j := range order {
		overlap := false
		for _, chosen := range idx {
			if abs(chosen-j) < l {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		idx = append(idx, j)
		sum += d[j]
		if len(idx) == k {
			break
		}
	}
	if len(idx) < k {
		return nil, 0, false
	}
	sort.Ints(idx)
	return idx, sum, true
}

// selectOverlapping picks the k globally smallest dissimilarities with no
// overlap constraint (the near-duplicate failure mode of Sec. 4.1).
func selectOverlapping(d []float64, k int, sc *selectScratch) (idx []int, sum float64, ok bool) {
	if len(d) < k {
		return nil, 0, false
	}
	order := sc.orderBuf(len(d))
	for i := range order {
		order[i] = i
	}
	orderByDissimilarity(order, d)
	idx = append(sc.idxBuf(k), order[:k]...)
	for _, j := range idx {
		sum += d[j]
	}
	sort.Ints(idx)
	return idx, sum, true
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
