package core

import (
	"fmt"
	"testing"
)

// BenchmarkSelectAnchors isolates the anchor-selection phase (the ~8%
// companion of pattern extraction, Sec. 7.4) across strategies, anchor
// counts and window lengths. All strategies run through the shared
// selection scratch, so the numbers measure the algorithms, not the
// allocator.
func BenchmarkSelectAnchors(b *testing.B) {
	const l = 72
	for _, sel := range []Selection{SelectDP, SelectGreedy, SelectOverlapping} {
		for _, L := range []int{1024, 8760} {
			for _, k := range []int{3, 5, 10} {
				n := L - 2*l + 1
				d := randomProfile(17, n)
				b.Run(fmt.Sprintf("%s/L%d/k%d", sel, L, k), func(b *testing.B) {
					var sc selectScratch
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, _, ok := selectAnchors(d, k, l, sel, &sc); !ok {
							b.Fatal("selection infeasible")
						}
					}
				})
			}
		}
	}
}

// profileWindowBench advances an incremental profiler over `width` streams
// to a full window, then measures one tick of steady-state work: one
// Advance per stream followed by one ProfileWindow per target. With shared
// reference sets every target consults the same streams, so the per-tick
// contribution cache collapses the assembly to cached-vector sums; with
// disjoint sets each target pays its own catch-up and cache fill.
func profileWindowBench(b *testing.B, targets, d int, shared bool) {
	const (
		L = 8760
		l = 72
	)
	width := targets * d
	if shared {
		width = d
	}
	p := NewIncrementalProfiler(l, width, L)
	data := randomRefs(23, width, 2*L)
	for n := 0; n < L; n++ {
		for i := 0; i < width; i++ {
			p.Advance(i, data[i][n])
		}
	}
	refSets := make([][]int, targets)
	for t := range refSets {
		refs := make([]int, d)
		for x := range refs {
			if shared {
				refs[x] = x
			} else {
				refs[x] = t*d + x
			}
		}
		refSets[t] = refs
	}
	dst := make([]float64, L-2*l+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := L + i%L
		for s := 0; s < width; s++ {
			p.Advance(s, data[s][n])
		}
		for _, refs := range refSets {
			p.ProfileWindow(refs, dst)
		}
	}
}

// BenchmarkProfileWindow contrasts profile assembly for 8 targets × 3
// references when the targets share one reference set vs when every target
// has its own disjoint references (L = 8760, l = 72).
func BenchmarkProfileWindow(b *testing.B) {
	b.Run("shared", func(b *testing.B) { profileWindowBench(b, 8, 3, true) })
	b.Run("disjoint", func(b *testing.B) { profileWindowBench(b, 8, 3, false) })
}
