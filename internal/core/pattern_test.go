package core

import (
	"math"
	"testing"
	"testing/quick"
)

// TestExample3Dissimilarity checks δ(P(14:00), P(14:20)) on the running
// example. The paper's prose reports 0.43, but summing the squared
// differences it itself lists — (0.2² + 0.3² + 0.1²) for r1 and
// (0.3² + 0.1² + 0²) for r2 — gives √0.24 ≈ 0.4899; we pin the value implied
// by the listed terms.
func TestExample3Dissimilarity(t *testing.T) {
	refs := [][]float64{table2R1, table2R2}
	q := ExtractPattern(refs, 11, 3) // P(14:20)
	p := ExtractPattern(refs, 7, 3)  // P(14:00)
	got := Dissimilarity(p, q, L2)
	want := math.Sqrt(0.24)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("δ(P(14:00), P(14:20)) = %v, want %v", got, want)
	}
}

func TestExtractPatternLayout(t *testing.T) {
	refs := [][]float64{
		{10, 11, 12, 13, 14},
		{20, 21, 22, 23, 24},
	}
	p := ExtractPattern(refs, 3, 2) // anchor index 3, length 2 → ticks 2..3
	if p.Anchor != 3 {
		t.Fatalf("anchor = %d, want 3", p.Anchor)
	}
	if len(p.Values) != 2 || len(p.Values[0]) != 2 {
		t.Fatalf("pattern shape = %dx%d, want 2x2", len(p.Values), len(p.Values[0]))
	}
	// Chronological columns: anchor value in the last column (Def. 1).
	if p.Values[0][0] != 12 || p.Values[0][1] != 13 {
		t.Errorf("row 0 = %v, want [12 13]", p.Values[0])
	}
	if p.Values[1][0] != 22 || p.Values[1][1] != 23 {
		t.Errorf("row 1 = %v, want [22 23]", p.Values[1])
	}
}

func TestExtractPatternCopies(t *testing.T) {
	ref := []float64{1, 2, 3}
	p := ExtractPattern([][]float64{ref}, 2, 2)
	ref[1] = 99
	if p.Values[0][0] != 2 {
		t.Fatalf("pattern must own its storage; got %v after mutating source", p.Values[0])
	}
}

func TestDissimilarityIdentity(t *testing.T) {
	refs := [][]float64{table2R1, table2R2, table2R3}
	p := ExtractPattern(refs, 5, 3)
	for _, norm := range []Norm{L2, L1, LInf} {
		if d := Dissimilarity(p, p, norm); d != 0 {
			t.Errorf("δ(p, p) under %v = %v, want 0", norm, d)
		}
	}
}

func TestDissimilaritySymmetry(t *testing.T) {
	refs := [][]float64{table2R1, table2R2}
	p := ExtractPattern(refs, 4, 3)
	q := ExtractPattern(refs, 9, 3)
	for _, norm := range []Norm{L2, L1, LInf} {
		if d1, d2 := Dissimilarity(p, q, norm), Dissimilarity(q, p, norm); d1 != d2 {
			t.Errorf("δ not symmetric under %v: %v vs %v", norm, d1, d2)
		}
	}
}

func TestNormOrdering(t *testing.T) {
	// For any pair: LInf ≤ L2 ≤ L1.
	refs := [][]float64{table2R1, table2R2}
	p := ExtractPattern(refs, 3, 3)
	q := ExtractPattern(refs, 8, 3)
	linf := Dissimilarity(p, q, LInf)
	l2 := Dissimilarity(p, q, L2)
	l1 := Dissimilarity(p, q, L1)
	if !(linf <= l2+1e-12 && l2 <= l1+1e-12) {
		t.Fatalf("norm ordering violated: LInf=%v L2=%v L1=%v", linf, l2, l1)
	}
}

// TestLemma51Monotonicity verifies Lemma 5.1: for any threshold τ, the
// number of candidate patterns within τ of the query does not increase when
// the pattern length grows, on randomized reference series.
func TestLemma51Monotonicity(t *testing.T) {
	f := func(seed int64) bool {
		refs := randomRefs(seed, 2, 120)
		// Count candidates within τ for l and l+1. The candidate sets
		// differ in size; Lemma 5.1 compares counts over the anchors valid
		// for the longer pattern, where δ is monotonically non-decreasing
		// in l. We verify the per-anchor monotonicity directly, which
		// implies the count statement.
		for l := 1; l <= 8; l++ {
			dShort := dissimilarityProfile(refs, l, L2, nil)
			dLong := dissimilarityProfile(refs, l+1, L2, nil)
			// Candidate j of the longer profile anchors at tick j+l; the
			// same anchor in the shorter profile is candidate j+1.
			for j := 0; j < len(dLong); j++ {
				if dLong[j] < dShort[j+1]-1e-9 {
					t.Logf("l=%d anchor %d: δ_{l+1}=%v < δ_l=%v", l, j, dLong[j], dShort[j+1])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDissimilarityProfileMatchesPatternAPI(t *testing.T) {
	refs := [][]float64{table2R1, table2R2}
	for _, norm := range []Norm{L2, L1, LInf} {
		profile := dissimilarityProfile(refs, 3, norm, nil)
		q := ExtractPattern(refs, 11, 3)
		if len(profile) != 7 {
			t.Fatalf("profile length = %d, want 7", len(profile))
		}
		for j, got := range profile {
			p := ExtractPattern(refs, j+2, 3)
			want := Dissimilarity(p, q, norm)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("%v profile[%d] = %v, want %v", norm, j, got, want)
			}
		}
	}
}

func TestDissimilarityProfileReuse(t *testing.T) {
	refs := [][]float64{table2R1, table2R2}
	buf := make([]float64, 32)
	got := dissimilarityProfile(refs, 3, L2, buf)
	if len(got) != 7 {
		t.Fatalf("reused profile length = %d, want 7", len(got))
	}
	if &got[0] != &buf[0] {
		t.Fatal("profile did not reuse the provided buffer")
	}
}

// randomRefs builds deterministic pseudo-random reference histories for
// property tests.
func randomRefs(seed int64, d, n int) [][]float64 {
	state := uint64(seed)*2654435761 + 1
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%2000)/100 - 10
	}
	refs := make([][]float64, d)
	for i := range refs {
		refs[i] = make([]float64, n)
		for j := range refs[i] {
			refs[i][j] = next()
		}
	}
	return refs
}
