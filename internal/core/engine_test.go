package core

import (
	"fmt"
	"math"
	"testing"

	"tkcm/internal/window"
)

// newTable2Window loads the running example into a streaming window with
// streams [s, r1, r2, r3] and s(14:20) missing.
func newTable2Window(t *testing.T) *window.Window {
	t.Helper()
	w := window.New(12, "s", "r1", "r2", "r3")
	for i := 0; i < 12; i++ {
		sv := table2S[i]
		if i == 11 {
			sv = math.NaN()
		}
		w.Advance([]float64{sv, table2R1[i], table2R2[i], table2R3[i]})
	}
	return w
}

// TestReferencePick replicates Example 1: with candidates ⟨r1, r2, r3⟩ and
// d = 2, the reference set is {r1, r2} when all are present, and {r1, r3}
// when r2 is missing at the current time.
func TestReferencePick(t *testing.T) {
	rs := ReferenceSet{Stream: "s", Candidates: []string{"r1", "r2", "r3"}}

	w := newTable2Window(t)
	idx, err := rs.Pick(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 || idx[0] != w.IndexOf("r1") || idx[1] != w.IndexOf("r2") {
		t.Fatalf("picked %v, want [r1 r2]", idx)
	}

	// Now make r2's current value missing: the pick must fall through to r3.
	w.SetCurrent(w.IndexOf("r2"), math.NaN())
	idx, err = rs.Pick(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 || idx[0] != w.IndexOf("r1") || idx[1] != w.IndexOf("r3") {
		t.Fatalf("picked %v, want [r1 r3]", idx)
	}
}

func TestReferencePickErrors(t *testing.T) {
	w := newTable2Window(t)
	rs := ReferenceSet{Stream: "s", Candidates: []string{"r1", "nope"}}
	if _, err := rs.Pick(w, 2); err == nil {
		t.Fatal("unknown candidate accepted")
	}
	rs = ReferenceSet{Stream: "s", Candidates: []string{"r1"}}
	if _, err := rs.Pick(w, 2); err == nil {
		t.Fatal("too few candidates accepted")
	}
}

func TestRankCandidates(t *testing.T) {
	n := 200
	target := make([]float64, n)
	linear := make([]float64, n)
	noisy := make([]float64, n)
	anti := make([]float64, n)
	state := uint64(42)
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1000)/500 - 1
	}
	for i := 0; i < n; i++ {
		base := math.Sin(float64(i) / 7)
		target[i] = base
		linear[i] = 2*base + 1   // |ρ| = 1
		anti[i] = -base          // |ρ| = 1 (negative correlation still useful)
		noisy[i] = base + next() // weaker correlation
	}
	rs := RankCandidates("t", map[string][]float64{
		"t": target, "linear": linear, "noisy": noisy, "anti": anti,
	})
	if rs.Stream != "t" || len(rs.Candidates) != 3 {
		t.Fatalf("unexpected reference set %+v", rs)
	}
	// linear and anti tie at |ρ| = 1 and sort by name; noisy comes last.
	if rs.Candidates[2] != "noisy" {
		t.Fatalf("ranking = %v, want noisy last", rs.Candidates)
	}
	if rs.Candidates[0] != "anti" || rs.Candidates[1] != "linear" {
		t.Fatalf("ranking = %v, want [anti linear ...] (tie broken by name)", rs.Candidates)
	}
}

func TestRankCandidatesUnknownTarget(t *testing.T) {
	rs := RankCandidates("missing", map[string][]float64{"a": {1, 2}})
	if len(rs.Candidates) != 0 {
		t.Fatalf("expected empty ranking, got %v", rs.Candidates)
	}
}

// TestEngineContinuousImputation streams phase-shifted sines with scattered
// missing values in the target and checks TKCM recovers them accurately once
// the window is warm.
func TestEngineContinuousImputation(t *testing.T) {
	const period = 120
	const n = 6 * period
	cfg := Config{K: 3, PatternLength: 20, D: 2, WindowLength: 4 * period, Norm: L2, Selection: SelectDP}
	refs := map[string]ReferenceSet{
		"s": {Stream: "s", Candidates: []string{"r1", "r2"}},
	}
	eng, err := NewEngine(cfg, []string{"s", "r1", "r2"}, refs)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	imputations := 0
	for i := 0; i < n; i++ {
		ph := 2 * math.Pi * float64(i) / period
		truth := math.Sin(ph)
		sVal := truth
		// Drop every 7th tick of s once the window holds k full periods, so
		// k exact historical matches exist (Lemma 5.3 needs L ≥ kP + l).
		missing := i >= cfg.WindowLength+period/2 && i%7 == 0
		if missing {
			sVal = math.NaN()
		}
		row := []float64{sVal, math.Sin(ph - 1), math.Cos(ph + 0.5)}
		out, results, err := eng.Tick(row)
		if err != nil {
			t.Fatal(err)
		}
		if missing && results[0] != nil {
			imputations++
			if e := math.Abs(out[0] - truth); e > worst {
				worst = e
			}
		}
	}
	if imputations == 0 {
		t.Fatal("engine never imputed")
	}
	if worst > 1e-6 {
		t.Fatalf("worst imputation error %v, want ≈ 0 on noiseless sines", worst)
	}
	if eng.Stats.Imputations != imputations {
		t.Fatalf("stats.Imputations = %d, want %d", eng.Stats.Imputations, imputations)
	}
}

// TestEngineColdStart: missing values before the window is warm are filled
// by carry-forward, not TKCM.
func TestEngineColdStart(t *testing.T) {
	cfg := Config{K: 2, PatternLength: 3, D: 1, WindowLength: 30, Norm: L2}
	eng, err := NewEngine(cfg, []string{"s", "r"}, map[string]ReferenceSet{
		"s": {Stream: "s", Candidates: []string{"r"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, results, err := eng.Tick([]float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 5 {
		t.Fatalf("present value altered: %v", out[0])
	}
	out, results, err = eng.Tick([]float64{math.NaN(), 2})
	if err != nil {
		t.Fatal(err)
	}
	if results[0] != nil {
		t.Fatal("TKCM ran without enough history")
	}
	if out[0] != 5 {
		t.Fatalf("cold fill = %v, want carry-forward 5", out[0])
	}
	if eng.Stats.ColdStartFills != 1 || eng.Stats.InsufficientHist != 1 {
		t.Fatalf("unexpected stats %+v", eng.Stats)
	}
}

// TestEngineColdStartNoHistory: a stream that starts missing falls back to
// the row mean of the other streams.
func TestEngineColdStartNoHistory(t *testing.T) {
	cfg := Config{K: 2, PatternLength: 3, D: 1, WindowLength: 30, Norm: L2}
	eng, err := NewEngine(cfg, []string{"s", "a", "b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := eng.Tick([]float64{math.NaN(), 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 6 {
		t.Fatalf("fallback fill = %v, want row mean 6", out[0])
	}
}

func TestEngineAutoRanksReferences(t *testing.T) {
	const period = 60
	cfg := Config{K: 2, PatternLength: 10, D: 1, WindowLength: 3 * period, Norm: L2}
	eng, err := NewEngine(cfg, []string{"s", "good", "junk"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	state := uint64(9)
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1000)/500 - 1
	}
	for i := 0; i < 5*period; i++ {
		ph := 2 * math.Pi * float64(i) / period
		sv := math.Sin(ph)
		if i == 5*period-1 {
			sv = math.NaN()
		}
		if _, _, err := eng.Tick([]float64{sv, math.Sin(ph), next()}); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Stats.Imputations != 1 {
		t.Fatalf("imputations = %d, want 1", eng.Stats.Imputations)
	}
	// The auto-ranked reference must be the correlated stream.
	truth := math.Sin(2 * math.Pi * float64(5*period-1) / period)
	got := eng.Window().Current(0)
	if math.Abs(got-truth) > 0.05 {
		t.Fatalf("imputed %v, want ≈ %v — auto-ranking likely picked the junk reference", got, truth)
	}
}

// warmEngine builds an engine over width streams (first half targets with
// reference sets into the always-present second half) and streams warm ticks
// until the window is full.
func warmEngine(t testing.TB, cfg Config, width int) (*Engine, []float64) {
	t.Helper()
	names := make([]string, width)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	refs := make(map[string]ReferenceSet, width/2)
	for i := 0; i < width/2; i++ {
		refs[names[i]] = ReferenceSet{Stream: names[i], Candidates: names[width/2:]}
	}
	eng, err := NewEngine(cfg, names, refs)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, width)
	for tick := 0; tick < cfg.WindowLength+8; tick++ {
		ph := 2 * math.Pi * float64(tick) / 48
		for j := range row {
			row[j] = math.Sin(ph + 0.3*float64(j))
		}
		if _, _, err := eng.Tick(row); err != nil {
			t.Fatal(err)
		}
	}
	return eng, row
}

// TestTickNothingMissingZeroAllocs pins the nothing-missing fast path: a
// steady-state Tick over a complete row must not allocate, whatever the
// profiler, so impute-free ingest is pure ring-buffer work.
func TestTickNothingMissingZeroAllocs(t *testing.T) {
	for _, kind := range []ProfilerKind{ProfilerIncremental, ProfilerNaive} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Config{K: 3, PatternLength: 6, D: 2, WindowLength: 144, Profiler: kind}
			eng, row := warmEngine(t, cfg, 8)
			defer eng.Close()
			if allocs := testing.AllocsPerRun(200, func() {
				if _, _, err := eng.Tick(row); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Fatalf("nothing-missing Tick performed %v allocations, want 0", allocs)
			}
		})
	}
}

// TestTickSkipDiagnosticsZeroAllocs pins the throughput mode end to end:
// with SkipDiagnostics set, even a tick that imputes missing values through
// the incremental profiler stays allocation-free once the scratch buffers
// are warm (serial path; the pool path additionally pays only channel
// traffic).
func TestTickSkipDiagnosticsZeroAllocs(t *testing.T) {
	cfg := Config{K: 3, PatternLength: 6, D: 2, WindowLength: 144, Profiler: ProfilerIncremental, SkipDiagnostics: true}
	eng, row := warmEngine(t, cfg, 8)
	defer eng.Close()
	missingRow := append([]float64(nil), row...)
	missingRow[0] = math.NaN()
	missingRow[2] = math.NaN()
	// One warm run to grow every scratch buffer.
	if _, _, err := eng.Tick(missingRow); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		out, results, err := eng.Tick(missingRow)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(out[0]) || math.IsNaN(out[2]) {
			t.Fatal("missing values left unfilled")
		}
		if results[0] != nil {
			t.Fatal("diagnostics allocated despite SkipDiagnostics")
		}
	}); allocs != 0 {
		t.Fatalf("SkipDiagnostics Tick performed %v allocations, want 0", allocs)
	}
}

func TestEngineRowWidthMismatch(t *testing.T) {
	cfg := Config{K: 2, PatternLength: 3, D: 1, WindowLength: 30}
	eng, err := NewEngine(cfg, []string{"a", "b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Tick([]float64{1}); err == nil {
		t.Fatal("row width mismatch accepted")
	}
}

func TestNewEngineRejectsBadConfig(t *testing.T) {
	if _, err := NewEngine(Config{}, []string{"a"}, nil); err == nil {
		t.Fatal("zero config accepted")
	}
}
