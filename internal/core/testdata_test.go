package core

// The running example of the paper (Table 2): twelve 5-minute measurements
// from 13:25 to 14:20. s(14:20) is missing (NaN is injected by the tests
// that need it). Index 0 = 13:25, index 11 = 14:20.
var (
	table2S  = []float64{22.8, 21.4, 21.8, 23.1, 23.5, 22.8, 21.2, 21.9, 23.5, 22.8, 21.2, 0}
	table2R1 = []float64{16.5, 17.2, 17.8, 16.6, 15.8, 16.2, 17.4, 17.7, 15.3, 16.3, 17.1, 17.5}
	table2R2 = []float64{20.3, 19.8, 18.6, 18.8, 20.0, 20.5, 19.8, 18.2, 20.1, 20.2, 19.9, 18.2}
	table2R3 = []float64{14.0, 14.8, 13.6, 13.0, 14.5, 14.3, 14.0, 15.0, 13.0, 14.5, 14.3, 14.6}
)

// table2Config is the running example's parameterization: window L = 12,
// pattern length l = 3, k = 2 anchors over d = 2 reference series.
func table2Config() Config {
	return Config{
		K:             2,
		PatternLength: 3,
		D:             2,
		WindowLength:  12,
		Norm:          L2,
		Selection:     SelectDP,
	}
}

// fig8D is the dissimilarity profile of the paper's Fig. 8 example:
// candidates P(t6)..P(t10) with l = 3 in a window of length L = 10.
var fig8D = []float64{0.5, 0.3, 2.1, 0.7, 4.0}
