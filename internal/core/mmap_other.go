//go:build !unix

package core

import (
	"errors"
	"os"
)

// mapFile reports that memory mapping is unavailable on this platform;
// RestoreEngineFile then falls back to reading the file into memory.
func mapFile(*os.File, int64) ([]byte, func(), error) {
	return nil, nil, errors.New("core: mmap unsupported on this platform")
}
