package core

import (
	"fmt"
	"math"
	"testing"

	"tkcm/internal/ring"
	"tkcm/internal/window"
)

// profileTol is the agreement tolerance between profiler implementations.
// The FFT and incremental paths reassociate the floating-point sums, so they
// differ from the naive loop in the last ulps; the acceptance bound for
// imputed values is 1e-6 and the profiles themselves stay far inside it.
const profileTol = 1e-6

// TestProfilerSliceEquivalence: on random slice histories, every Profiler
// implementation must agree with the naive Def. 2 loop across norms,
// pattern lengths and reference counts.
func TestProfilerSliceEquivalence(t *testing.T) {
	profilers := []Profiler{NaiveProfiler{}, FFTProfiler{}, NewIncrementalProfiler(1, 1, 1)}
	for _, norm := range []Norm{L2, L1, LInf} {
		for _, l := range []int{1, 3, 8, 17} {
			for _, d := range []int{1, 2, 4} {
				n := 6*l + 11
				refs := randomRefs(int64(100*l+10*d+int(norm)), d, n)
				want := dissimilarityProfile(refs, l, norm, nil)
				for _, p := range profilers {
					got := p.Profile(refs, l, norm, nil)
					if len(got) != len(want) {
						t.Fatalf("%s norm=%v l=%d d=%d: profile length %d != %d", p.Name(), norm, l, d, len(got), len(want))
					}
					for j := range want {
						if math.Abs(got[j]-want[j]) > profileTol {
							t.Fatalf("%s norm=%v l=%d d=%d: profile[%d] = %v, want %v", p.Name(), norm, l, d, j, got[j], want[j])
						}
					}
				}
			}
		}
	}
}

// TestIncrementalProfilerMatchesNaive drives the stateful incremental
// profiler tick by tick through warm-up, steady state and hundreds of ring
// wraps, checking the maintained L2 profile against a from-scratch naive
// profile at every tick.
func TestIncrementalProfilerMatchesNaive(t *testing.T) {
	const (
		L     = 64
		l     = 5
		ticks = 500
		d     = 3
	)
	data := randomRefs(42, d, ticks)
	bufs := make([]*ring.Buffer, d)
	for i := range bufs {
		bufs[i] = ring.New(L)
	}
	p := NewIncrementalProfiler(l, d, L)
	refIdx := []int{0, 1, 2}
	snaps := make([][]float64, d)
	for n := 0; n < ticks; n++ {
		for i, b := range bufs {
			b.Push(data[i][n])
			p.Advance(i, data[i][n])
		}
		m := bufs[0].Len()
		if m < 2*l {
			continue
		}
		for i, b := range bufs {
			snaps[i] = b.Snapshot(nil)
		}
		want := dissimilarityProfile(snaps, l, L2, nil)
		got := p.ProfileWindow(refIdx, nil)
		if len(got) != len(want) {
			t.Fatalf("tick %d: %d candidates, want %d", n, len(got), len(want))
		}
		for j := range want {
			if math.Abs(got[j]-want[j]) > profileTol {
				t.Fatalf("tick %d: profile[%d] = %v, want %v (diff %g)", n, j, got[j], want[j], got[j]-want[j])
			}
		}
	}
}

// TestIncrementalProfilerSubsetAssembly: profiles assembled over a subset of
// the maintained streams must match the naive profile over that subset (the
// aggregates are per stream, shared by every imputation of a tick).
func TestIncrementalProfilerSubsetAssembly(t *testing.T) {
	const (
		L = 48
		l = 4
		d = 4
	)
	data := randomRefs(7, d, 3*L)
	bufs := make([]*ring.Buffer, d)
	for i := range bufs {
		bufs[i] = ring.New(L)
	}
	p := NewIncrementalProfiler(l, d, L)
	for n := 0; n < 3*L; n++ {
		for i, b := range bufs {
			b.Push(data[i][n])
			p.Advance(i, data[i][n])
		}
	}
	for _, subset := range [][]int{{0}, {2}, {1, 3}, {3, 0, 2}} {
		snaps := make([][]float64, len(subset))
		for x, i := range subset {
			snaps[x] = bufs[i].Snapshot(nil)
		}
		want := dissimilarityProfile(snaps, l, L2, nil)
		got := p.ProfileWindow(subset, nil)
		for j := range want {
			if math.Abs(got[j]-want[j]) > profileTol {
				t.Fatalf("subset %v: profile[%d] = %v, want %v", subset, j, got[j], want[j])
			}
		}
	}
}

// streamEngines runs identically configured engines over the same row
// sequence and asserts their completed rows agree within tol wherever a
// value was missing.
func streamEngines(t *testing.T, cfgs []Config, labels []string, tol float64) {
	t.Helper()
	const (
		period = 48
		n      = 6 * period
		width  = 4
	)
	names := []string{"s", "r1", "r2", "r3"}
	refs := func() map[string]ReferenceSet {
		return map[string]ReferenceSet{
			"s":  {Stream: "s", Candidates: []string{"r1", "r2", "r3"}},
			"r1": {Stream: "r1", Candidates: []string{"r2", "r3", "s"}},
		}
	}
	engines := make([]*Engine, len(cfgs))
	for i, cfg := range cfgs {
		eng, err := NewEngine(cfg, names, refs())
		if err != nil {
			t.Fatalf("%s: %v", labels[i], err)
		}
		engines[i] = eng
	}
	state := uint64(11)
	noise := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1000) / 5000
	}
	for tick := 0; tick < n; tick++ {
		ph := 2 * math.Pi * float64(tick) / period
		row := make([]float64, width)
		row[0] = math.Sin(ph) + noise()
		row[1] = math.Sin(ph-1.0) + noise()
		row[2] = math.Cos(ph+0.4) + noise()
		row[3] = math.Sin(2*ph) + noise()
		// Scattered single and double losses once the window is warm.
		if tick > 3*period {
			if tick%5 == 0 {
				row[0] = math.NaN()
			}
			if tick%7 == 0 {
				row[1] = math.NaN()
			}
		}
		outs := make([][]float64, len(engines))
		for i, eng := range engines {
			rowCopy := append([]float64(nil), row...)
			out, _, err := eng.Tick(rowCopy)
			if err != nil {
				t.Fatalf("%s tick %d: %v", labels[i], tick, err)
			}
			outs[i] = out
		}
		for i := 1; i < len(engines); i++ {
			for j := range outs[0] {
				if !math.IsNaN(row[j]) {
					continue
				}
				if math.Abs(outs[i][j]-outs[0][j]) > tol {
					t.Fatalf("tick %d stream %d: %s imputed %v, %s imputed %v (diff %g)",
						tick, j, labels[i], outs[i][j], labels[0], outs[0][j], outs[i][j]-outs[0][j])
				}
			}
		}
	}
	for i := 1; i < len(engines); i++ {
		if engines[i].Stats.Imputations != engines[0].Stats.Imputations {
			t.Fatalf("%s performed %d imputations, %s performed %d",
				labels[i], engines[i].Stats.Imputations, labels[0], engines[0].Stats.Imputations)
		}
	}
}

// TestEngineProfilerEquivalence: the streaming engine must impute the same
// values (within FFT/incremental rounding) whichever profiler drives
// pattern extraction — the end-to-end equivalence the refactor promises.
func TestEngineProfilerEquivalence(t *testing.T) {
	base := Config{K: 3, PatternLength: 12, D: 2, WindowLength: 4 * 48, Norm: L2, Selection: SelectDP}
	var cfgs []Config
	var labels []string
	for _, kind := range []ProfilerKind{ProfilerNaive, ProfilerFFT, ProfilerIncremental} {
		cfg := base
		cfg.Profiler = kind
		cfgs = append(cfgs, cfg)
		labels = append(labels, kind.String())
	}
	streamEngines(t, cfgs, labels, 1e-6)
}

// TestEngineParallelEquivalence: a parallel tick must produce the same
// imputations as the serial tick when no stream references another stream
// that is missing in the same tick (the only case where serial order
// matters, which parallel ticks intentionally forgo).
func TestEngineParallelEquivalence(t *testing.T) {
	for _, kind := range []ProfilerKind{ProfilerNaive, ProfilerIncremental} {
		t.Run(kind.String(), func(t *testing.T) {
			serial := Config{K: 3, PatternLength: 12, D: 2, WindowLength: 4 * 48, Norm: L2, Profiler: kind}
			parallel := serial
			parallel.Workers = 4
			streamEngines(t, []Config{serial, parallel}, []string{"serial", "parallel"}, 0)
		})
	}
}

// TestEngineNonL2FallsBackToNaive: non-L2 norms have no FFT/incremental
// decomposition; every kind must degrade to the naive loop and still impute.
func TestEngineNonL2FallsBackToNaive(t *testing.T) {
	for _, kind := range []ProfilerKind{ProfilerAuto, ProfilerFFT, ProfilerIncremental} {
		cfg := Config{K: 2, PatternLength: 6, D: 1, WindowLength: 96, Norm: L1, Profiler: kind}
		eng, err := NewEngine(cfg, []string{"s", "r"}, map[string]ReferenceSet{
			"s": {Stream: "s", Candidates: []string{"r"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if name := eng.Profiler().Name(); name != "naive" {
			t.Fatalf("kind %v under L1 resolved to %q, want naive", kind, name)
		}
		for i := 0; i < 120; i++ {
			ph := 2 * math.Pi * float64(i) / 48
			sv := math.Sin(ph)
			if i == 119 {
				sv = math.NaN()
			}
			out, _, err := eng.Tick([]float64{sv, math.Cos(ph)})
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(out[0]) {
				t.Fatalf("tick %d left NaN", i)
			}
		}
		if eng.Stats.Imputations != 1 {
			t.Fatalf("imputations = %d, want 1", eng.Stats.Imputations)
		}
	}
}

// TestTickBatchMatchesTick: batch ingest is tick-for-tick identical to the
// loop it replaces.
func TestTickBatchMatchesTick(t *testing.T) {
	cfg := Config{K: 2, PatternLength: 6, D: 1, WindowLength: 96}
	mk := func() *Engine {
		eng, err := NewEngine(cfg, []string{"s", "r"}, map[string]ReferenceSet{
			"s": {Stream: "s", Candidates: []string{"r"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	a, b := mk(), mk()
	rows := make([][]float64, 300)
	for i := range rows {
		ph := 2 * math.Pi * float64(i) / 48
		sv := math.Sin(ph)
		if i > 200 && i%9 == 0 {
			sv = math.NaN()
		}
		rows[i] = []float64{sv, math.Cos(ph)}
	}
	outs, ress, err := a.TickBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(rows) || len(ress) != len(rows) {
		t.Fatalf("batch returned %d/%d rows, want %d", len(outs), len(ress), len(rows))
	}
	for i, row := range rows {
		out, res, err := b.Tick(append([]float64(nil), row...))
		if err != nil {
			t.Fatal(err)
		}
		for j := range out {
			if out[j] != outs[i][j] {
				t.Fatalf("row %d stream %d: batch %v != tick %v", i, j, outs[i][j], out[j])
			}
		}
		if (res[0] == nil) != (ress[i][0] == nil) {
			t.Fatalf("row %d: result presence differs", i)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestTickBatchWidthError: a malformed row aborts the batch with its index.
func TestTickBatchWidthError(t *testing.T) {
	eng, err := NewEngine(Config{K: 2, PatternLength: 3, D: 1, WindowLength: 30}, []string{"s", "r"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	outs, _, err := eng.TickBatch([][]float64{{1, 2}, {3}})
	if err == nil {
		t.Fatal("want error for short row")
	}
	if len(outs) != 1 {
		t.Fatalf("completed rows = %d, want 1", len(outs))
	}
}

// TestParseProfilerKind round-trips every kind and rejects junk.
func TestParseProfilerKind(t *testing.T) {
	for _, k := range []ProfilerKind{ProfilerAuto, ProfilerNaive, ProfilerFFT, ProfilerIncremental} {
		got, err := ParseProfilerKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v, err %v", k, got, err)
		}
	}
	if _, err := ParseProfilerKind("stomp"); err == nil {
		t.Fatal("want error for unknown profiler name")
	}
}

// TestImputeWindowHonorsProfilerConfig: the streaming one-shot path must
// produce equivalent results under every profiler kind, including the FFT
// fast path that was previously slice-only.
func TestImputeWindowHonorsProfilerConfig(t *testing.T) {
	const L = 60
	data := randomRefs(3, 3, L+17)
	mkWindow := func() *window.Window {
		w := window.New(L, "s", "r1", "r2")
		for i := range data[0] {
			w.Advance([]float64{data[0][i], data[1][i], data[2][i]})
		}
		w.SetCurrent(0, math.NaN())
		return w
	}
	var want *Result
	for _, kind := range []ProfilerKind{ProfilerNaive, ProfilerFFT, ProfilerIncremental} {
		cfg := Config{K: 3, PatternLength: 4, D: 2, WindowLength: L, Profiler: kind}
		res, err := ImputeWindow(cfg, mkWindow(), 0, []int{1, 2})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if want == nil {
			want = res
			continue
		}
		if math.Abs(res.Value-want.Value) > profileTol {
			t.Fatalf("%v imputed %v, want %v", kind, res.Value, want.Value)
		}
	}
}

// BenchmarkIncrementalAdvance contrasts the demand-driven O(1) Advance
// (aggregates caught up only on consult) with the eager per-tick
// maintenance it replaced as the engine default.
func BenchmarkIncrementalAdvance(b *testing.B) {
	for _, eager := range []bool{false, true} {
		mode := "lazy"
		if eager {
			mode = "eager"
		}
		for _, L := range []int{4032, 8760} {
			b.Run(fmt.Sprintf("%s/L%d", mode, L), func(b *testing.B) {
				data := randomRefs(5, 1, 2*L)[0]
				p := NewIncrementalProfiler(72, 1, L)
				p.SetEager(eager)
				for n := 0; n < L; n++ {
					p.Advance(0, data[n])
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Advance(0, data[L+i%L])
				}
			})
		}
	}
}
