package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// warmSnapEngine builds a width-5 engine and streams warm ticks with
// imputations, the donor for the v3 section tests.
func warmSnapEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := NewEngine(snapTestConfig(), snapTestNames(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	var row []float64
	for tk := 0; tk < 150; tk++ {
		row = snapTestRow(tk, 5, row)
		if _, _, err := e.Tick(row); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// snapImage snapshots e into a byte slice.
func snapImage(t testing.TB, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireSameEngineState asserts that two engines hold bit-identical
// windows, counters, and stats (NaN compares equal via bit patterns).
func requireSameEngineState(t *testing.T, got, want *Engine) {
	t.Helper()
	if got.Seq() != want.Seq() {
		t.Fatalf("seq %d, want %d", got.Seq(), want.Seq())
	}
	if got.Stats != want.Stats {
		t.Fatalf("stats %+v, want %+v", got.Stats, want.Stats)
	}
	gw, ww := got.Window(), want.Window()
	if gw.Tick() != ww.Tick() || gw.Filled() != ww.Filled() || gw.Width() != ww.Width() {
		t.Fatalf("window shape (%d,%d,%d), want (%d,%d,%d)",
			gw.Tick(), gw.Filled(), gw.Width(), ww.Tick(), ww.Filled(), ww.Width())
	}
	for i := 0; i < ww.Width(); i++ {
		for j := 0; j < ww.Filled(); j++ {
			g, w := gw.At(i, j), ww.At(i, j)
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("stream %d index %d: %v, want %v (not bit-identical)", i, j, g, w)
			}
		}
	}
}

// TestSnapshotV3Layout pins the on-disk geometry of a freshly written image:
// version 3, a 4096-aligned window region of exactly width×filled float64s,
// minimal zero padding, and a total length with no slack — the contract the
// mmap restore path slices by.
func TestSnapshotV3Layout(t *testing.T) {
	e := warmSnapEngine(t)
	defer e.Close()
	img := snapImage(t, e)

	if got := binary.LittleEndian.Uint32(img[8:12]); got != 3 {
		t.Fatalf("snapshot version %d, want 3", got)
	}
	metaLen := int(binary.LittleEndian.Uint64(img[12:20]))
	windowOff := int(binary.LittleEndian.Uint64(img[20+metaLen-8 : 20+metaLen]))
	if windowOff%snapAlign != 0 {
		t.Fatalf("window offset %d not %d-aligned", windowOff, snapAlign)
	}
	if windowOff < 20+metaLen+4 || windowOff-(20+metaLen+4) >= snapAlign {
		t.Fatalf("window offset %d not minimally padded past meta end %d", windowOff, 20+metaLen+4)
	}
	wantBytes := e.Window().Width() * e.Window().Filled() * 8
	if got, want := len(img), windowOff+wantBytes+4; got != want {
		t.Fatalf("image length %d, want %d", got, want)
	}
	for i, b := range img[20+metaLen+4 : windowOff] {
		if b != 0 {
			t.Fatalf("nonzero padding byte at %d", 20+metaLen+4+i)
		}
	}
	// Slicing the region directly must reproduce stream 0's retained values.
	hist := e.Window().Snapshot(0)
	for j, want := range hist {
		got := math.Float64frombits(binary.LittleEndian.Uint64(img[windowOff+j*8:]))
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("region value %d = %v, want %v", j, got, want)
		}
	}
}

// TestRestoreEngineBytesMatchesReader: the in-memory (mmap) decoder and the
// streaming decoder must produce bit-identical engines from the same image.
func TestRestoreEngineBytesMatchesReader(t *testing.T) {
	e := warmSnapEngine(t)
	defer e.Close()
	img := snapImage(t, e)

	fromBytes, err := RestoreEngineBytes(img)
	if err != nil {
		t.Fatalf("bytes restore: %v", err)
	}
	defer fromBytes.Close()
	fromReader, err := RestoreEngine(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("reader restore: %v", err)
	}
	defer fromReader.Close()
	requireSameEngineState(t, fromBytes, e)
	requireSameEngineState(t, fromReader, fromBytes)
}

// TestRestoreEngineFile round-trips an image through a file — the actual
// hydration path, memory-mapped where the platform supports it.
func TestRestoreEngineFile(t *testing.T) {
	e := warmSnapEngine(t)
	defer e.Close()
	path := filepath.Join(t.TempDir(), "img.tkcm")
	if err := os.WriteFile(path, snapImage(t, e), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreEngineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	requireSameEngineState(t, r, e)

	if _, err := RestoreEngineFile(filepath.Join(t.TempDir(), "absent.tkcm")); err == nil {
		t.Fatal("restore of a missing file succeeded")
	}
}

// TestRestoreAcceptsV2Image: a hand-encoded version-2 image (the pre-mmap
// single-payload layout) must restore to a bit-identical engine — old
// checkpoints survive the format bump.
func TestRestoreAcceptsV2Image(t *testing.T) {
	e := warmSnapEngine(t)
	defer e.Close()
	v2 := encodeLegacyImage(t, e, 2)
	r, err := RestoreEngine(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("v2 image rejected: %v", err)
	}
	defer r.Close()
	requireSameEngineState(t, r, e)

	rb, err := RestoreEngineBytes(v2)
	if err != nil {
		t.Fatalf("v2 image rejected by bytes path: %v", err)
	}
	defer rb.Close()
	requireSameEngineState(t, rb, e)
}

// patchWindowOff rewrites the image's windowOff field (the last 8 bytes of
// the meta section) and re-seals the meta CRC, so the crafted geometry
// reaches the validator instead of dying at the checksum.
func patchWindowOff(img []byte, off uint64) []byte {
	cp := bytes.Clone(img)
	metaLen := int(binary.LittleEndian.Uint64(cp[12:20]))
	binary.LittleEndian.PutUint64(cp[20+metaLen-8:20+metaLen], off)
	binary.LittleEndian.PutUint32(cp[20+metaLen:20+metaLen+4], crc32.ChecksumIEEE(cp[20:20+metaLen]))
	return cp
}

// TestRestoreV3RejectsCraftedGeometry drives CRC-valid images with hostile
// section geometry — misaligned, overlapping, inflated, truncated, padded
// with garbage, or trailing extra bytes — through both decoders and expects
// a descriptive error every time, never a panic or a silently wrong engine.
func TestRestoreV3RejectsCraftedGeometry(t *testing.T) {
	e := warmSnapEngine(t)
	defer e.Close()
	img := snapImage(t, e)
	metaLen := int(binary.LittleEndian.Uint64(img[12:20]))
	windowOff := int(binary.LittleEndian.Uint64(img[20+metaLen-8 : 20+metaLen]))

	cases := []struct {
		name string
		data []byte
		want string
		// readerTolerates marks crafts only the exact-length (mmap) decoder
		// can detect: a stream has no end-of-image notion, so the streaming
		// decoder cannot see bytes past the window CRC.
		readerTolerates bool
	}{
		{name: "misaligned-offset", data: patchWindowOff(img, uint64(windowOff+8)), want: "aligned"},
		{name: "overlapping-offset", data: patchWindowOff(img, 0), want: "overlaps"},
		{name: "inflated-offset", data: patchWindowOff(img, uint64(windowOff+snapAlign)), want: "padding"},
		{name: "truncated-region", data: img[:len(img)-16]},
		{name: "trailing-bytes", data: append(bytes.Clone(img), 0xEE), want: "trailing", readerTolerates: true},
		{name: "nonzero-padding", data: func() []byte {
			cp := bytes.Clone(img)
			cp[20+metaLen+4] = 0x5a // first padding byte
			return cp
		}(), want: "padding"},
		{name: "corrupt-window", data: func() []byte {
			cp := bytes.Clone(img)
			cp[windowOff+9] ^= 0x5a
			return cp
		}(), want: "window checksum"},
		{name: "corrupt-meta", data: func() []byte {
			cp := bytes.Clone(img)
			cp[22] ^= 0x5a
			return cp
		}(), want: "meta checksum"},
		{name: "truncated-meta", data: img[:20+metaLen/2]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RestoreEngineBytes(tc.data)
			if err == nil {
				t.Fatal("bytes path accepted the crafted image")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("bytes path error %q does not mention %q", err, tc.want)
			}
			if _, err := RestoreEngine(bytes.NewReader(tc.data)); err == nil && !tc.readerTolerates {
				t.Fatal("reader path accepted the crafted image")
			}
		})
	}
}

// FuzzSnapshotSectionDecode fuzzes the v3 section decoder (and, through the
// version dispatch, the legacy one): arbitrary bytes must either fail with
// an error or produce an engine that the independent streaming decoder
// agrees on and that can re-snapshot itself. Seeds cover a valid v3 image,
// a legacy v2 image, and each crafted-geometry attack.
func FuzzSnapshotSectionDecode(f *testing.F) {
	e, err := NewEngine(snapTestConfig(), snapTestNames(3), nil)
	if err != nil {
		f.Fatal(err)
	}
	defer e.Close()
	var row []float64
	for tk := 0; tk < 90; tk++ {
		row = snapTestRow(tk, 3, row)
		if _, _, err := e.Tick(row); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		f.Fatal(err)
	}
	img := buf.Bytes()
	metaLen := int(binary.LittleEndian.Uint64(img[12:20]))
	windowOff := int(binary.LittleEndian.Uint64(img[20+metaLen-8 : 20+metaLen]))

	f.Add(bytes.Clone(img))
	f.Add(encodeLegacyImage(f, e, 2))
	f.Add(encodeLegacyImage(f, e, 1))
	f.Add(img[:len(img)-16])
	f.Add(img[:20+metaLen/2])
	f.Add(patchWindowOff(img, uint64(windowOff+8)))
	f.Add(patchWindowOff(img, 0))
	f.Add(append(bytes.Clone(img), 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := RestoreEngineBytes(data)
		if err != nil {
			return
		}
		defer r.Close()
		// An image the mmap-style decoder accepts must also satisfy the
		// streaming decoder — the two run in production (hydration vs
		// snapshot upload), and divergence would mean one of them skipped a
		// validation the other enforces.
		r2, err := RestoreEngine(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("bytes path restored an image the reader path rejects: %v", err)
		}
		defer r2.Close()
		var out bytes.Buffer
		if err := r.Snapshot(&out); err != nil {
			t.Fatalf("restored engine cannot re-snapshot: %v", err)
		}
	})
}
