package core

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// TestRunningExample replays the paper's running example end to end
// (Table 2 / Example 4): imputing s(14:20) with l = 3, k = 2 over
// Rs = {r1, r2} must pick the anchors 14:00 and 13:35 (window indices 7 and
// 2) and impute (21.9 + 21.8) / 2 = 21.85 °C.
func TestRunningExample(t *testing.T) {
	s := append([]float64(nil), table2S...)
	s[11] = math.NaN()
	res, err := Impute(table2Config(), s, [][]float64{table2R1, table2R2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Anchors, []int{2, 7}) {
		t.Fatalf("anchors = %v, want [2 7] (13:35 and 14:00)", res.Anchors)
	}
	if math.Abs(res.Value-21.85) > 1e-9 {
		t.Fatalf("imputed value = %v, want 21.85", res.Value)
	}
	if math.Abs(res.Epsilon-0.1) > 1e-9 {
		t.Fatalf("ε = %v, want 0.1 (Example 9)", res.Epsilon)
	}
	if !res.PatternDetermining(0.1) {
		t.Error("running example must be pattern-determining at ε = 0.1")
	}
	if res.PatternDetermining(0.05) {
		t.Error("ε tolerance below the spread must report false")
	}
}

// TestImputeWindowMatchesSliceForm runs the running example through the
// ring-buffer streaming form and checks it agrees with the slice form and
// stores the value back into the window (Algorithm 1 line 26).
func TestImputeWindowMatchesSliceForm(t *testing.T) {
	w := newTable2Window(t)
	res, err := ImputeWindow(table2Config(), w, 0, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-21.85) > 1e-9 {
		t.Fatalf("window imputed value = %v, want 21.85", res.Value)
	}
	if got := w.Current(0); math.Abs(got-21.85) > 1e-9 {
		t.Fatalf("window not updated: s[tn] = %v, want 21.85", got)
	}
}

// TestLemma53PhaseShiftedSines: for phase-shifted sine waves (zero linear
// correlation) with l > 1, TKCM imputes with error ≈ 0, because sines are
// pattern-determining (Lemma 5.3) — the headline analytical claim.
func TestLemma53PhaseShiftedSines(t *testing.T) {
	const period = 360 // ticks per full period
	const n = 4*period + 80
	s := make([]float64, n)
	r := make([]float64, n)
	for i := 0; i < n; i++ {
		deg := float64(i)
		s[i] = math.Sin(deg * math.Pi / 180)
		r[i] = math.Sin((deg - 90) * math.Pi / 180) // shifted: ρ ≈ 0
	}
	truth := s[n-1]
	s[n-1] = math.NaN()
	cfg := Config{K: 3, PatternLength: 60, D: 1, WindowLength: n, Norm: L2, Selection: SelectDP}
	res, err := Impute(cfg, s, [][]float64{r})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-truth) > 1e-9 {
		t.Fatalf("imputed %v, want %v (error %v)", res.Value, truth, math.Abs(res.Value-truth))
	}
	if res.Epsilon > 1e-9 {
		t.Fatalf("ε = %v, want ≈ 0 for pattern-determining sines", res.Epsilon)
	}
}

// TestShortPatternAmbiguity shows the failure mode of Examples 6–8: with
// l = 1 on a 90°-shifted reference, the anchor set mixes up- and down-slope
// situations, so ε is large; with a long pattern ε collapses.
func TestShortPatternAmbiguity(t *testing.T) {
	const period = 360
	const n = 4*period + 80
	s := make([]float64, n)
	r := make([]float64, n)
	for i := 0; i < n; i++ {
		deg := float64(i)
		s[i] = math.Sin(deg * math.Pi / 180)
		r[i] = math.Sin((deg - 90) * math.Pi / 180)
	}
	s[n-1] = math.NaN()
	short := Config{K: 4, PatternLength: 1, D: 1, WindowLength: n, Norm: L2, Selection: SelectDP}
	long := Config{K: 4, PatternLength: 60, D: 1, WindowLength: n, Norm: L2, Selection: SelectDP}
	resShort, err := Impute(short, s, [][]float64{r})
	if err != nil {
		t.Fatal(err)
	}
	resLong, err := Impute(long, s, [][]float64{r})
	if err != nil {
		t.Fatal(err)
	}
	if resShort.Epsilon < 0.5 {
		t.Fatalf("l=1 ε = %v, expected the up/down-slope ambiguity (ε ≥ 0.5)", resShort.Epsilon)
	}
	if resLong.Epsilon > 1e-6 {
		t.Fatalf("l=60 ε = %v, want ≈ 0", resLong.Epsilon)
	}
}

// TestLemma52Consistency: whenever the reference series pattern-determine s
// (ε small), the imputed value lies within ε of every anchor value — the
// consistency guarantee.
func TestLemma52Consistency(t *testing.T) {
	f := func(seed int64) bool {
		refs := randomRefs(seed, 2, 100)
		s := randomRefs(seed^0x55aa, 1, 100)[0]
		s[99] = math.NaN()
		cfg := Config{K: 3, PatternLength: 4, D: 2, WindowLength: 100, Norm: L2, Selection: SelectDP}
		res, err := Impute(cfg, s, refs)
		if err != nil {
			return false
		}
		// Consistency (Def. 6): |sˆ(t) − sˆ(tn)| ≤ ε for every anchor t.
		for _, v := range res.AnchorValues {
			if math.Abs(v-res.Value) > res.Epsilon+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestImputeUnequalReferenceLengths: histories of unequal length must align
// at the newest tick. The seed code computed filled = min(len(s), len(refs))
// but passed the untruncated refs to the profile, which re-derived the
// window from len(refs[0]) — mis-anchoring the query pattern when refs[0]
// was longer and panicking when it was shorter.
func TestImputeUnequalReferenceLengths(t *testing.T) {
	cfg := table2Config()
	s := append([]float64(nil), table2S...)
	s[11] = math.NaN()
	want, err := Impute(cfg, s, [][]float64{table2R1, table2R2})
	if err != nil {
		t.Fatal(err)
	}

	// Case 1: refs longer than s (extra old history) — must impute as if the
	// extra prefix were never retained.
	longR1 := append([]float64{99, -99, 42}, table2R1...)
	res, err := Impute(cfg, s, [][]float64{longR1, table2R2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want.Value {
		t.Fatalf("long refs[0]: imputed %v, want %v", res.Value, want.Value)
	}
	if len(res.Anchors) != len(want.Anchors) {
		t.Fatalf("long refs[0]: anchors %v, want %v", res.Anchors, want.Anchors)
	}
	for i := range want.Anchors {
		if res.Anchors[i] != want.Anchors[i] {
			t.Fatalf("long refs[0]: anchors %v, want %v", res.Anchors, want.Anchors)
		}
	}

	// Case 2: refs[0] longer than refs[1] — the seed panicked indexing the
	// shorter series past its end.
	res, err = Impute(cfg, append([]float64(nil), s...), [][]float64{longR1, table2R2[:]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want.Value {
		t.Fatalf("mixed ref lengths: imputed %v, want %v", res.Value, want.Value)
	}

	// Case 3: s longer than the refs — s must be end-aligned too.
	longS := append([]float64{1, 2}, s...)
	res, err = Impute(cfg, longS, [][]float64{table2R1, table2R2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want.Value {
		t.Fatalf("long s: imputed %v, want %v", res.Value, want.Value)
	}
}

func TestImputeValidation(t *testing.T) {
	bad := []Config{
		{K: 0, PatternLength: 3, D: 1, WindowLength: 12},
		{K: 2, PatternLength: 0, D: 1, WindowLength: 12},
		{K: 2, PatternLength: 3, D: 0, WindowLength: 12},
		{K: 2, PatternLength: 3, D: 1, WindowLength: 0},
		{K: 2, PatternLength: 7, D: 1, WindowLength: 13}, // L < 2l
		{K: 5, PatternLength: 3, D: 1, WindowLength: 12}, // k patterns don't fit
	}
	s := make([]float64, 12)
	refs := [][]float64{make([]float64, 12)}
	for i, cfg := range bad {
		if _, err := Impute(cfg, s, refs); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
}

func TestImputeInsufficientHistory(t *testing.T) {
	cfg := table2Config()
	s := []float64{1, 2, 3, math.NaN()}
	refs := [][]float64{{1, 2, 3, 4}, {4, 3, 2, 1}}
	if _, err := Impute(cfg, s, refs); err != ErrInsufficientHistory {
		t.Fatalf("err = %v, want ErrInsufficientHistory", err)
	}
}

func TestImputeMissingInQueryPattern(t *testing.T) {
	cfg := table2Config()
	s := append([]float64(nil), table2S...)
	s[11] = math.NaN()
	r1 := append([]float64(nil), table2R1...)
	r1[10] = math.NaN() // inside the l = 3 query pattern
	if _, err := Impute(cfg, s, [][]float64{r1, table2R2}); err != ErrMissingInQueryPattern {
		t.Fatalf("err = %v, want ErrMissingInQueryPattern", err)
	}
}

func TestImputeSkipsMissingAnchorValues(t *testing.T) {
	// If s is missing at one anchor, the mean uses the remaining anchors.
	s := append([]float64(nil), table2S...)
	s[11] = math.NaN()
	s[2] = math.NaN() // the 13:35 anchor of the running example
	res, err := Impute(table2Config(), s, [][]float64{table2R1, table2R2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-21.9) > 1e-9 {
		t.Fatalf("imputed %v, want 21.9 (the remaining anchor)", res.Value)
	}
}

func TestWeightedMean(t *testing.T) {
	s := append([]float64(nil), table2S...)
	s[11] = math.NaN()
	cfg := table2Config()
	cfg.WeightedMean = true
	res, err := Impute(cfg, s, [][]float64{table2R1, table2R2})
	if err != nil {
		t.Fatal(err)
	}
	// Weighted mean must stay within the anchor value range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range res.AnchorValues {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if res.Value < lo-1e-9 || res.Value > hi+1e-9 {
		t.Fatalf("weighted value %v outside anchor range [%v, %v]", res.Value, lo, hi)
	}
	// The 14:00 anchor is more similar, so the weighted value must lean
	// toward s(14:00) = 21.9 relative to the plain mean 21.85.
	if res.Value <= 21.85 {
		t.Fatalf("weighted value %v does not lean toward the more similar anchor", res.Value)
	}
}

func TestImputeProfiledAgrees(t *testing.T) {
	s := append([]float64(nil), table2S...)
	s[11] = math.NaN()
	plain, err := Impute(table2Config(), s, [][]float64{table2R1, table2R2})
	if err != nil {
		t.Fatal(err)
	}
	profiled, timings, err := ImputeProfiled(table2Config(), s, [][]float64{table2R1, table2R2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Value != profiled.Value || !reflect.DeepEqual(plain.Anchors, profiled.Anchors) {
		t.Fatalf("profiled result differs: %+v vs %+v", plain, profiled)
	}
	if timings.Total() <= 0 {
		t.Fatal("profiled timings must be positive")
	}
	if f := timings.ExtractionFraction(); f < 0 || f > 1 {
		t.Fatalf("extraction fraction %v out of [0,1]", f)
	}
}

// TestSelectionVariantsOnExample exercises the greedy and overlapping
// ablations through the public Impute path.
func TestSelectionVariantsOnExample(t *testing.T) {
	for _, sel := range []Selection{SelectGreedy, SelectOverlapping} {
		s := append([]float64(nil), table2S...)
		s[11] = math.NaN()
		cfg := table2Config()
		cfg.Selection = sel
		res, err := Impute(cfg, s, [][]float64{table2R1, table2R2})
		if err != nil {
			t.Fatalf("%v: %v", sel, err)
		}
		if math.IsNaN(res.Value) {
			t.Fatalf("%v produced NaN", sel)
		}
		if sel == SelectOverlapping {
			continue
		}
		for i := 1; i < len(res.Anchors); i++ {
			if res.Anchors[i]-res.Anchors[i-1] < cfg.PatternLength {
				t.Fatalf("%v anchors overlap: %v", sel, res.Anchors)
			}
		}
	}
}

// TestDPNeverWorseThanGreedyOnDissimilarity checks Def. 3 condition 3 via
// the public API on random inputs.
func TestDPNeverWorseThanGreedyOnDissimilarity(t *testing.T) {
	f := func(seed int64) bool {
		refs := randomRefs(seed, 2, 80)
		s := randomRefs(seed^0x77, 1, 80)[0]
		s[79] = math.NaN()
		base := Config{K: 3, PatternLength: 5, D: 2, WindowLength: 80, Norm: L2}
		dpCfg, gCfg := base, base
		dpCfg.Selection = SelectDP
		gCfg.Selection = SelectGreedy
		dp, err1 := Impute(dpCfg, s, refs)
		greedy, err2 := Impute(gCfg, s, refs)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return dp.SumDissimilarity <= greedy.SumDissimilarity+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
